/**
 * @file
 * Tests for the Chrome-trace exporter: golden document structure,
 * per-lane metadata, monotone scheduler timestamps, folded-repeat
 * labeling, and JSON escaping edge cases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "profiler/chrome_trace.hh"
#include "util/logging.hh"

namespace mmgen::profiler {
namespace {

ProfileResult
smallProfile()
{
    graph::Pipeline p;
    p.name = "toy";
    graph::Stage s;
    s.name = "stage_a";
    s.iterations = 5;
    s.emit = [](graph::GraphBuilder& b, std::int64_t) {
        b.conv2d(TensorDesc({1, 8, 16, 16}, DType::F16), 8);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 64, 64,
                    16);
    };
    p.stages.push_back(std::move(s));
    ProfileOptions opts;
    opts.keepOpRecords = true;
    return Profiler(opts).profile(p);
}

/** A profile whose plan streams weights onto the copy lane. */
ProfileResult
overlappedProfile()
{
    graph::Pipeline p;
    p.name = "streamer";
    graph::Stage s;
    s.name = "mlp";
    s.iterations = 2;
    s.emit = [](graph::GraphBuilder& b, std::int64_t) {
        // 4096x4096 f16 weights: 32 MiB of memory-bound traffic.
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
    };
    p.stages.push_back(std::move(s));
    ProfileOptions opts;
    opts.keepOpRecords = true;
    opts.lowering.splitWeightStreams = true;
    opts.schedule.streams = 2;
    return Profiler(opts).profile(p);
}

std::size_t
countOccurrences(const std::string& s, const std::string& needle)
{
    std::size_t n = 0, pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

/** All "ts" values in emission order. */
std::vector<double>
timestamps(const std::string& json)
{
    std::vector<double> out;
    std::size_t pos = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        out.push_back(std::stod(json.substr(pos)));
    }
    return out;
}

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(jsonEscape(""), "");
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x02')), "\\u0002");
    // Last control char below the printable range...
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
    // ...and the first printable char passes through untouched.
    EXPECT_EQ(jsonEscape(" "), " ");
    EXPECT_EQ(jsonEscape("mix\"ed\\and\nplain"),
              "mix\\\"ed\\\\and\\nplain");
}

TEST(ChromeTrace, RequiresRecords)
{
    ProfileResult empty; // keepOpRecords=false retains no plan
    std::ostringstream oss;
    EXPECT_THROW(writeChromeTrace(oss, empty), FatalError);
}

TEST(ChromeTrace, EmitsWellFormedEvents)
{
    const ProfileResult res = smallProfile();
    std::ostringstream oss;
    writeChromeTrace(oss, res);
    const std::string json = oss.str();

    // Structural sanity: balanced-ish JSON with the expected keys.
    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\""), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Events carry kernel labels, lowercase kernel-class categories,
    // and the op's scope.
    EXPECT_NE(json.find("\"name\":\"conv2d"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"flash_fused"), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"conv\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"gemm\""), std::string::npos);
    // Stage lane metadata (process) and stream lane metadata (thread).
    EXPECT_NE(json.find("\"name\":\"process_name\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stage_a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stream 0 (compute)\""),
              std::string::npos);
    // Braces balance.
    std::int64_t depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char c : json) {
        if (c == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            depth += c == '{';
            depth -= c == '}';
        }
        prev = c;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(ChromeTrace, GoldenEventStructure)
{
    const ProfileResult res = smallProfile();
    std::ostringstream oss;
    writeChromeTrace(oss, res);
    const std::string json = oss.str();

    // One stage lane, one stream lane, and 2 nodes x min(5, 3 default)
    // repeat instances.
    EXPECT_EQ(countOccurrences(json, "\"name\":\"process_name\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"name\":\"thread_name\""), 1u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 6u);
    // Every complete event sits on the stage's pid and stream 0's tid.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\",\"pid\":1,\"tid\":1"),
              6u);
    // Both folded nodes advertise the elision.
    EXPECT_EQ(countOccurrences(json, " [x5, showing 3]\""), 6u);

    // Scheduler timestamps are monotone: the serial schedule emits
    // back-to-back slices in program order.
    const std::vector<double> ts = timestamps(json);
    ASSERT_EQ(ts.size(), 6u);
    EXPECT_EQ(ts.front(), 0.0);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_GE(ts[i], ts[i - 1]) << "event " << i;
}

TEST(ChromeTrace, RepeatInstancesCapped)
{
    const ProfileResult res = smallProfile(); // ops repeat 5x
    std::ostringstream capped, expanded;
    ChromeTraceOptions one;
    one.maxRepeatInstances = 1;
    writeChromeTrace(capped, res, one);
    ChromeTraceOptions many;
    many.maxRepeatInstances = 100;
    writeChromeTrace(expanded, res, many);

    EXPECT_EQ(countOccurrences(capped.str(), "\"ph\":\"X\""), 2u);
    // 2 ops x 5 repeats, nothing elided, so no folded labels.
    EXPECT_EQ(countOccurrences(expanded.str(), "\"ph\":\"X\""), 10u);
    EXPECT_EQ(countOccurrences(expanded.str(), "showing"), 0u);

    // The capped document labels the fold on every drawn slice.
    EXPECT_NE(capped.str().find("\"conv2d [x5, showing 1]\""),
              std::string::npos);
    EXPECT_NE(capped.str().find("\"flash_fused [x5, showing 1]\""),
              std::string::npos);

    ChromeTraceOptions zero;
    zero.maxRepeatInstances = 0;
    std::ostringstream oss;
    EXPECT_THROW(writeChromeTrace(oss, res, zero), FatalError);
}

TEST(ChromeTrace, OverlappedScheduleShowsBothStreamLanes)
{
    const ProfileResult res = overlappedProfile();
    ASSERT_NE(res.plan, nullptr);
    ASSERT_TRUE(res.plan->hasWeightStreams);
    std::ostringstream oss;
    writeChromeTrace(oss, res);
    const std::string json = oss.str();

    EXPECT_NE(json.find("\"name\":\"stream 0 (compute)\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stream 1 (copy)\""),
              std::string::npos);
    EXPECT_NE(json.find("weight_stream"), std::string::npos);
    EXPECT_NE(json.find("\"lane\":\"copy\""), std::string::npos);
    EXPECT_NE(json.find("\"lane\":\"compute\""), std::string::npos);
}

} // namespace
} // namespace mmgen::profiler
