/**
 * @file
 * Tests for the Chrome-trace exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "profiler/chrome_trace.hh"
#include "util/logging.hh"

namespace mmgen::profiler {
namespace {

ProfileResult
smallProfile()
{
    graph::Pipeline p;
    p.name = "toy";
    graph::Stage s;
    s.name = "stage_a";
    s.iterations = 5;
    s.emit = [](graph::GraphBuilder& b, std::int64_t) {
        b.conv2d(TensorDesc({1, 8, 16, 16}, DType::F16), 8);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 64, 64,
                    16);
    };
    p.stages.push_back(std::move(s));
    ProfileOptions opts;
    opts.keepOpRecords = true;
    return Profiler(opts).profile(p);
}

TEST(JsonEscape, HandlesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x02')), "\\u0002");
}

TEST(ChromeTrace, RequiresRecords)
{
    ProfileResult empty;
    std::ostringstream oss;
    EXPECT_THROW(writeChromeTrace(oss, empty), FatalError);
}

TEST(ChromeTrace, EmitsWellFormedEvents)
{
    const ProfileResult res = smallProfile();
    std::ostringstream oss;
    writeChromeTrace(oss, res);
    const std::string json = oss.str();

    // Structural sanity: balanced-ish JSON with the expected keys.
    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\""), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"conv2d\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"attention\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stage_a\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"Convolution\""), std::string::npos);
    // Braces balance.
    std::int64_t depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char c : json) {
        if (c == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            depth += c == '{';
            depth -= c == '}';
        }
        prev = c;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(ChromeTrace, RepeatInstancesCapped)
{
    const ProfileResult res = smallProfile(); // ops repeat 5x
    std::ostringstream capped, expanded;
    ChromeTraceOptions one;
    one.maxRepeatInstances = 1;
    writeChromeTrace(capped, res, one);
    ChromeTraceOptions many;
    many.maxRepeatInstances = 100;
    writeChromeTrace(expanded, res, many);

    auto count_events = [](const std::string& s) {
        std::size_t n = 0, pos = 0;
        while ((pos = s.find("\"ph\":\"X\"", pos)) !=
               std::string::npos) {
            ++n;
            ++pos;
        }
        return n;
    };
    EXPECT_EQ(count_events(capped.str()), 2u);
    EXPECT_EQ(count_events(expanded.str()), 10u); // 2 ops x 5 repeats
}

} // namespace
} // namespace mmgen::profiler
