/**
 * @file
 * Tests for the profiling engine and its reports.
 */

#include <gtest/gtest.h>

#include "models/model_suite.hh"
#include "models/stable_diffusion.hh"
#include "profiler/engine.hh"
#include "util/logging.hh"
#include "verify/verify.hh"

namespace mmgen::profiler {
namespace {

using graph::AttentionBackend;
using graph::GraphBuilder;
using graph::Pipeline;
using graph::Stage;

Pipeline
toyDiffusion(std::int64_t steps)
{
    Pipeline p;
    p.name = "toy";
    p.klass = graph::ModelClass::DiffusionLatent;
    Stage s;
    s.name = "unet";
    s.iterations = steps;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        const TensorDesc x({1, 8, 16, 16}, DType::F16);
        b.conv2d(x, 8);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 256, 256,
                    16);
    };
    p.stages.push_back(std::move(s));
    return p;
}

TEST(Profiler, IterationFoldingScalesLinearly)
{
    Profiler prof;
    const ProfileResult one = prof.profile(toyDiffusion(1));
    const ProfileResult fifty = prof.profile(toyDiffusion(50));
    EXPECT_NEAR(fifty.totalSeconds, 50.0 * one.totalSeconds, 1e-12);
    EXPECT_NEAR(fifty.totalFlops, 50.0 * one.totalFlops, 1e-3);
    // The traced series is one fundamental period either way...
    EXPECT_EQ(one.seqLens.series().size(),
              fifty.seqLens.series().size());
    // ...but the histogram weights by executed iterations (Fig. 8).
    EXPECT_EQ(fifty.seqLens.histogram().totalWeight(),
              50 * one.seqLens.histogram().totalWeight());
}

TEST(Profiler, PerIterationStagesTraceEveryStep)
{
    Pipeline p;
    p.name = "ar";
    Stage s;
    s.name = "decode";
    s.iterations = 10;
    s.perIterationShapes = true;
    s.emit = [](GraphBuilder& b, std::int64_t iter) {
        b.attention(graph::AttentionKind::CausalSelf, 1, 2, 1, iter + 1,
                    16);
    };
    p.stages.push_back(std::move(s));
    const ProfileResult res = Profiler().profile(p);
    ASSERT_EQ(res.seqLens.series().size(), 10u);
    EXPECT_EQ(res.seqLens.series().front(), 1);
    EXPECT_EQ(res.seqLens.series().back(), 10);
}

TEST(Profiler, BackendChangesAttentionTimeOnly)
{
    ProfileOptions base_opts;
    base_opts.backend = AttentionBackend::Baseline;
    const ProfileResult base =
        Profiler(base_opts).profile(toyDiffusion(4));
    const ProfileResult flash = Profiler().profile(toyDiffusion(4));
    EXPECT_GT(base.attentionSeconds(), flash.attentionSeconds());
    EXPECT_DOUBLE_EQ(base.breakdown.categorySeconds(
                         graph::OpCategory::Convolution),
                     flash.breakdown.categorySeconds(
                         graph::OpCategory::Convolution));
}

TEST(Profiler, StageBreakdownsPartitionTheTotal)
{
    const ProfileResult res =
        Profiler().profile(models::buildStableDiffusion());
    ASSERT_EQ(res.stageBreakdowns.size(), 3u);
    for (graph::OpCategory c : graph::allCategories()) {
        double sum = 0.0;
        for (const auto& [name, bd] : res.stageBreakdowns)
            sum += bd.categorySeconds(c);
        EXPECT_NEAR(sum, res.breakdown.categorySeconds(c),
                    1e-9 * (res.breakdown.categorySeconds(c) + 1e-12))
            << graph::opCategoryName(c);
    }
    // The VAE stage is convolution-dominated, with only the single
    // bottleneck attention block.
    const BreakdownReport& vae = res.stageBreakdowns[2].second;
    EXPECT_GT(vae.categorySeconds(graph::OpCategory::Convolution),
              3.0 * vae.categorySeconds(graph::OpCategory::Attention));
    EXPECT_GT(vae.categorySeconds(graph::OpCategory::Attention), 0.0);
}

TEST(Profiler, StageSecondsSumToTotal)
{
    const ProfileResult res =
        Profiler().profile(models::buildStableDiffusion());
    double sum = 0.0;
    for (const auto& [name, s] : res.stageSeconds)
        sum += s;
    EXPECT_NEAR(sum, res.totalSeconds, 1e-9 * res.totalSeconds);
    ASSERT_EQ(res.stageSeconds.size(), 3u);
    EXPECT_EQ(res.stageSeconds[1].first, "unet");
}

TEST(Profiler, KernelClassSecondsSumToTotal)
{
    ProfileOptions opts;
    opts.backend = AttentionBackend::Baseline;
    const ProfileResult res =
        Profiler(opts).profile(models::buildStableDiffusion());
    double sum = 0.0;
    for (const auto& [klass, seconds] : res.kernelClassSeconds)
        sum += seconds;
    EXPECT_NEAR(sum, res.totalSeconds, 1e-9 * res.totalSeconds);
    // Baseline attention splits across gemm, softmax and elementwise.
    EXPECT_GT(res.kernelClassSeconds.at(kernels::KernelClass::Softmax),
              0.0);
    EXPECT_GT(res.kernelClassSeconds.at(kernels::KernelClass::Conv),
              0.0);
}

TEST(Profiler, BreakdownFractionsSumToOne)
{
    const ProfileResult res =
        Profiler().profile(models::buildStableDiffusion());
    double total = 0.0;
    for (graph::OpCategory c : graph::allCategories())
        total += res.breakdown.categoryFraction(c);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Profiler, RecordsOnlyWhenRequested)
{
    EXPECT_TRUE(Profiler().profile(toyDiffusion(2)).records.empty());
    ProfileOptions opts;
    opts.keepOpRecords = true;
    const ProfileResult res = Profiler(opts).profile(toyDiffusion(2));
    ASSERT_EQ(res.records.size(), 2u);
    EXPECT_EQ(res.records[0].stage, "unet");
    EXPECT_EQ(res.records[0].repeat, 2);
    EXPECT_EQ(res.records[1].seqLen, 256);
    EXPECT_EQ(res.records[1].seqKv, 256);
    EXPECT_FALSE(res.recordsTruncated);
}

TEST(Profiler, MaxOpRecordsCapsRetentionWithoutSkewingTotals)
{
    // A per-iteration-shape stage emits records every iteration; the
    // cap must bound retention, set the truncation flag, and leave
    // aggregate metrics untouched.
    Pipeline p;
    p.name = "ar";
    Stage s;
    s.name = "decode";
    s.iterations = 64;
    s.perIterationShapes = true;
    s.emit = [](GraphBuilder& b, std::int64_t iter) {
        b.attention(graph::AttentionKind::CausalSelf, 1, 2, 1,
                    iter + 1, 16);
    };
    p.stages.push_back(std::move(s));

    ProfileOptions full;
    full.keepOpRecords = true;
    const ProfileResult all = Profiler(full).profile(p);
    ASSERT_EQ(all.records.size(), 64u);
    EXPECT_FALSE(all.recordsTruncated);

    ProfileOptions capped = full;
    capped.maxOpRecords = 10;
    const ProfileResult few = Profiler(capped).profile(p);
    EXPECT_EQ(few.records.size(), 10u);
    EXPECT_TRUE(few.recordsTruncated);
    // The first records are the retained prefix, and totals match.
    EXPECT_EQ(few.records[0].seqKv, all.records[0].seqKv);
    EXPECT_EQ(few.totalSeconds, all.totalSeconds);
    EXPECT_EQ(few.totalFlops, all.totalFlops);
    EXPECT_EQ(few.totalLaunches, all.totalLaunches);
}

TEST(Profiler, CrossAttentionExcludedFromSeqSeries)
{
    Pipeline p;
    p.name = "x";
    Stage s;
    s.name = "s";
    s.iterations = 1;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.attention(graph::AttentionKind::CrossText, 1, 2, 256, 77, 16);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 256, 256,
                    16);
    };
    p.stages.push_back(std::move(s));
    const ProfileResult res = Profiler().profile(p);
    ASSERT_EQ(res.seqLens.series().size(), 1u);
    EXPECT_EQ(res.seqLens.series()[0], 256);
    // Both still appear in the per-kind stats.
    EXPECT_EQ(res.attention
                  .entryFor(graph::AttentionKind::CrossText)
                  .calls,
              1);
}

TEST(ProfileResult, ArithmeticIntensityNeedsWeights)
{
    Pipeline p;
    p.name = "weightless";
    Stage s;
    s.name = "s";
    s.iterations = 1;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.matmul(1, 8, 8, 8);
    };
    p.stages.push_back(std::move(s));
    const ProfileResult res = Profiler().profile(p);
    EXPECT_THROW(res.modelArithmeticIntensity(), FatalError);
}

TEST(SequenceLengthTrace, MinMaxAndValidation)
{
    SequenceLengthTrace trace;
    EXPECT_EQ(trace.maxSeqLen(), 0);
    trace.record(256);
    trace.record(4096, 10);
    EXPECT_EQ(trace.minSeqLen(), 256);
    EXPECT_EQ(trace.maxSeqLen(), 4096);
    EXPECT_EQ(trace.histogram().totalWeight(), 11u);
    EXPECT_THROW(trace.record(0), FatalError);
}

TEST(Profiler, RuntimeChecksDoNotPerturbResults)
{
    // The verify passes (timeline, dataflow, memory) only ever read
    // the profile; toggling them must leave every reported number
    // bit-identical, and a capacity-infeasible model must still
    // profile (P010 is a warning inside the profiler, not a gate).
    ProfileOptions opts;
    opts.gpu = hw::GpuSpec::v100_32gb(); // SD fits; checks all run
    const Pipeline sd = models::buildStableDiffusion();

    const bool saved = verify::setRuntimeChecks(true);
    const ProfileResult checked = Profiler(opts).profile(sd);
    verify::setRuntimeChecks(false);
    const ProfileResult unchecked = Profiler(opts).profile(sd);
    verify::setRuntimeChecks(saved);

    // Exact double equality: the memory pass must be observation-only.
    EXPECT_EQ(checked.totalSeconds, unchecked.totalSeconds);
    EXPECT_EQ(checked.totalFlops, unchecked.totalFlops);
    EXPECT_EQ(checked.totalHbmBytes, unchecked.totalHbmBytes);
    EXPECT_EQ(checked.totalLaunches, unchecked.totalLaunches);
    EXPECT_EQ(checked.launchOverheadSeconds,
              unchecked.launchOverheadSeconds);
    EXPECT_EQ(checked.weightBytesRead, unchecked.weightBytesRead);
    EXPECT_EQ(checked.params, unchecked.params);
}

TEST(Profiler, CapacityInfeasibleModelStillProfiles)
{
    // Shrink the GPU until SD's ~2.2 GiB scheduled peak cannot fit
    // (the paper-scale analogue: Parti's 41 GiB of f16 weights on a
    // 32 GB V100). The memory pass reports P010 at Warn severity, so
    // profiling must succeed rather than throw.
    ProfileOptions opts;
    opts.gpu = hw::GpuSpec::a100_80gb();
    opts.gpu.name = "tiny-1GB";
    opts.gpu.hbmBytes = 1e9;
    const bool saved = verify::setRuntimeChecks(true);
    ProfileResult r;
    EXPECT_NO_THROW(
        r = Profiler(opts).profile(models::buildStableDiffusion()));
    verify::setRuntimeChecks(saved);
    EXPECT_GT(r.totalSeconds, 0.0);
}

TEST(AttentionKindStats, AccumulatesPerKind)
{
    AttentionKindStats stats;
    stats.add(graph::AttentionKind::Temporal, 1.0, 10.0, 2);
    stats.add(graph::AttentionKind::Temporal, 0.5, 5.0, 1);
    const auto e = stats.entryFor(graph::AttentionKind::Temporal);
    EXPECT_DOUBLE_EQ(e.seconds, 1.5);
    EXPECT_DOUBLE_EQ(e.flops, 15.0);
    EXPECT_EQ(e.calls, 3);
    EXPECT_EQ(stats.entryFor(graph::AttentionKind::CrossText).calls, 0);
}

} // namespace
} // namespace mmgen::profiler
