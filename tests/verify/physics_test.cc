/**
 * @file
 * Physics-consistency lint tests: the cost model must respect every
 * physics rule on real traces, and each rule must fire on fabricated
 * impossible observations.
 */

#include <gtest/gtest.h>

#include <limits>

#include "cache/attention_study.hh"
#include "models/model_suite.hh"
#include "verify/verify.hh"

namespace mmgen::verify {
namespace {

const hw::GpuSpec kGpu = hw::GpuSpec::a100_80gb();

TEST(PhysicsVerifier, CostModelRespectsPhysicsOnZooTraces)
{
    // One representative per family: latent diffusion (conv + three
    // attention flavours via MakeAVideo), AR decode (LLaMA).
    const std::vector<models::ModelId> reps = {
        models::ModelId::MakeAVideo, models::ModelId::LLaMA};
    const std::vector<graph::AttentionBackend> backends = {
        graph::AttentionBackend::Baseline,
        graph::AttentionBackend::Flash,
        graph::AttentionBackend::FlashDecode,
    };
    for (models::ModelId id : reps) {
        const graph::Pipeline p = models::buildModel(id);
        for (graph::AttentionBackend backend : backends) {
            const kernels::CostModel model(
                kGpu, backend, kernels::EfficiencyParams::defaults());
            for (std::size_t si = 0; si < p.stages.size(); ++si) {
                const graph::Trace t = p.traceStage(si, 0);
                const PhysicsContext ctx{p.name, p.stages[si].name};
                const DiagnosticReport report =
                    verifyTracePhysics(t, model, ctx);
                EXPECT_FALSE(report.hasErrors())
                    << p.name << " stage " << p.stages[si].name
                    << ":\n"
                    << report.render();
            }
        }
    }
}

TEST(PhysicsVerifier, CompulsoryBytesAreAFloorNotTraffic)
{
    // An embedding gather reads the gathered rows, not the table.
    graph::Op op;
    op.kind = graph::OpKind::Embedding;
    op.scope = "test.embed";
    graph::EmbeddingAttrs a;
    a.tokens = 77;
    a.dim = 1024;
    a.vocab = 50'000;
    op.attrs = a;
    const double floor = compulsoryOpBytes(op);
    EXPECT_DOUBLE_EQ(floor, 2.0 * 2.0 * 77.0 * 1024.0);
    EXPECT_LT(floor, 2.0 * 50'000.0 * 1024.0); // well below the table
}

TEST(PhysicsVerifier, ImpossibleFlopsFiresP001)
{
    DiagnosticReport report;
    checkObservation(SimObservation{"fabricated", 1e21, 1e9, 1.0,
                                    DType::F16},
                     kGpu, report);
    EXPECT_TRUE(report.fired(rules::AbovePeakFlops))
        << report.render();
}

TEST(PhysicsVerifier, ImpossibleBandwidthFiresP003)
{
    DiagnosticReport report;
    checkObservation(SimObservation{"fabricated", 1e9, 1e18, 1.0,
                                    DType::F16},
                     kGpu, report);
    EXPECT_TRUE(report.fired(rules::AbovePeakBandwidth))
        << report.render();
}

TEST(PhysicsVerifier, NonFiniteResultFiresP006)
{
    DiagnosticReport report;
    checkObservation(
        SimObservation{"fabricated",
                       std::numeric_limits<double>::quiet_NaN(), 0.0,
                       1.0, DType::F16},
        kGpu, report);
    EXPECT_TRUE(report.fired(rules::FiniteResult)) << report.render();

    DiagnosticReport negative;
    checkObservation(SimObservation{"fabricated", -1.0, 0.0, 1.0,
                                    DType::F16},
                     kGpu, negative);
    EXPECT_TRUE(negative.fired(rules::FiniteResult))
        << negative.render();
}

TEST(PhysicsVerifier, ZeroTimeWithWorkFiresP006)
{
    DiagnosticReport report;
    checkObservation(SimObservation{"fabricated", 1e9, 1e9, 0.0,
                                    DType::F16},
                     kGpu, report);
    EXPECT_TRUE(report.fired(rules::FiniteResult)) << report.render();
}

TEST(PhysicsVerifier, HitRateRangeFiresP004)
{
    DiagnosticReport report;
    checkHitRate("ok", 0.0, report);
    checkHitRate("ok", 1.0, report);
    checkHitRate("ok", 0.37, report);
    EXPECT_FALSE(report.hasErrors());
    checkHitRate("bad", 1.5, report);
    checkHitRate("bad", -0.1, report);
    EXPECT_EQ(report.forRule(rules::HitRateRange).size(), 2u);
}

TEST(PhysicsVerifier, CacheStudyHitRatesAreProbabilities)
{
    graph::AttentionAttrs a;
    a.kind = graph::AttentionKind::Temporal;
    a.batch = 64;
    a.heads = 4;
    a.seqQ = 8;
    a.seqKv = 8;
    a.headDim = 64;
    a.seqStrideElems = 64;
    a.featureStrideElems = 8 * 64;
    const cache::AttentionCacheReport study =
        cache::runAttentionCacheStudy(kGpu, a, DType::F16,
                                      /*max_batches=*/2);
    DiagnosticReport report;
    for (const auto& [klass, stats] : study.stats) {
        checkHitRate(kernels::kernelClassName(klass) + " L1",
                     study.l1HitRate(klass), report);
        checkHitRate(kernels::kernelClassName(klass) + " L2",
                     study.l2HitRate(klass), report);
    }
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(PhysicsVerifier, LatencyMonotonicityFiresP005OnDips)
{
    DiagnosticReport ok;
    checkLatencyMonotone("ok", {{1, 1.0}, {2, 1.5}, {4, 1.5}, {8, 3.0}},
                         ok);
    EXPECT_FALSE(ok.hasErrors()) << ok.render();

    DiagnosticReport dip;
    checkLatencyMonotone("dip", {{1, 1.0}, {2, 0.5}}, dip);
    EXPECT_TRUE(dip.fired(rules::LatencyMonotonicity))
        << dip.render();
}

} // namespace
} // namespace mmgen::verify
