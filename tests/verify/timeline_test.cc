/**
 * @file
 * Timeline physics tests: P007 (per-stream monotonicity and
 * dependency honoring) and P008 (makespan bounds) must pass on every
 * schedule the TimelineScheduler produces and fire on fabricated
 * impossible timelines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "models/model_suite.hh"
#include "verify/rules.hh"
#include "verify/timeline.hh"

namespace mmgen::verify {
namespace {

const hw::GpuSpec kGpu = hw::GpuSpec::a100_80gb();

exec::ExecutionPlan
loweredModel(models::ModelId id, bool split)
{
    const kernels::CostModel model(
        kGpu, graph::AttentionBackend::Flash,
        kernels::EfficiencyParams::defaults());
    exec::LoweringOptions options;
    options.splitWeightStreams = split;
    return exec::lowerPipeline(models::buildModel(id), model, options);
}

TEST(TimelineVerifier, SchedulerOutputsPassOnZooSchedules)
{
    const std::vector<exec::ScheduleOptions> configs = [] {
        std::vector<exec::ScheduleOptions> out(3);
        out[1].streams = 2;
        out[1].launchQueueDepth = 2;
        out[2].streams = 2;
        out[2].launchQueueDepth = 4;
        out[2].graphLaunch = true;
        out[2].graphReplayOverheadFraction = 0.1;
        return out;
    }();
    for (const models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Phenaki,
          models::ModelId::LLaMA}) {
        for (const bool split : {false, true}) {
            const exec::ExecutionPlan plan = loweredModel(id, split);
            for (const exec::ScheduleOptions& opts : configs) {
                const exec::Timeline tl =
                    exec::TimelineScheduler(kGpu, opts).schedule(plan);
                const DiagnosticReport report = verifyTimeline(
                    plan, tl, PhysicsContext{plan.model, ""});
                EXPECT_FALSE(report.hasErrors())
                    << plan.model << " split=" << split << " streams="
                    << opts.streams << ":\n"
                    << report.render();
            }
        }
    }
}

TEST(TimelineVerifier, EventCountMismatchFiresP007)
{
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    tl.events.pop_back();
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"muse", ""});
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.fired(rules::TimelineConsistency));
}

TEST(TimelineVerifier, BackwardsEventFiresP007)
{
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    std::swap(tl.events[0].startSeconds, tl.events[0].endSeconds);
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"muse", ""});
    EXPECT_TRUE(report.fired(rules::TimelineConsistency));
}

TEST(TimelineVerifier, StreamOverlapFiresP007)
{
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    ASSERT_GE(tl.events.size(), 2u);
    // Slide the second event under the first on the same stream.
    tl.events[1].startSeconds = tl.events[0].startSeconds;
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"muse", ""});
    EXPECT_TRUE(report.fired(rules::TimelineConsistency));
}

TEST(TimelineVerifier, DependencyViolationFiresP007)
{
    // A two-stream schedule has a cross-stream dependency (compute
    // kernel on its weight prefetch) that stream order alone cannot
    // explain away.
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::StableDiffusion, true);
    ASSERT_TRUE(plan.hasWeightStreams);
    exec::ScheduleOptions opts;
    opts.streams = 2;
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu, opts).schedule(plan);

    // Find a node with a Copy-lane dependency and start it before the
    // copy finishes.
    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        bool corrupted = false;
        for (const std::int32_t dep : plan.nodes[n].deps) {
            const auto d = static_cast<std::size_t>(dep);
            if (plan.nodes[d].lane == exec::Lane::Copy &&
                tl.events[d].endSeconds > 0.0) {
                const double width = tl.events[n].durationSeconds();
                tl.events[n].startSeconds =
                    tl.events[d].endSeconds * 0.25;
                tl.events[n].endSeconds =
                    tl.events[n].startSeconds + width;
                corrupted = true;
                break;
            }
        }
        if (corrupted)
            break;
    }
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"sd", ""});
    EXPECT_TRUE(report.fired(rules::TimelineConsistency));
}

TEST(TimelineVerifier, MakespanBelowStreamBusyTimeFiresP008)
{
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    // Claim the one stream did more work than the whole run lasted.
    // Event positions stay feasible, so only the makespan bound can
    // catch the inconsistent busy counter.
    tl.streamBusySeconds[0] = tl.makespan * 2.0;
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"muse", ""});
    EXPECT_TRUE(report.hasErrors());
    EXPECT_TRUE(report.fired(rules::MakespanBound));
}

TEST(TimelineVerifier, MakespanAboveSerializedWorkFiresP008)
{
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    // An in-order schedule that claims to have idled: makespan far
    // past total work. Push the last event out too so the
    // within-makespan check does not mask the bound.
    tl.makespan *= 3.0;
    const DiagnosticReport report =
        verifyTimeline(plan, tl, PhysicsContext{"muse", ""});
    EXPECT_TRUE(report.fired(rules::MakespanBound));
}

TEST(TimelineVerifier, CriticalPathMatchesSerialMakespan)
{
    // With one stream and no overlap every node chains through its
    // program-order dependency, so the critical path is the makespan.
    const exec::ExecutionPlan plan =
        loweredModel(models::ModelId::Muse, false);
    const exec::Timeline tl =
        exec::TimelineScheduler(kGpu).schedule(plan);
    EXPECT_NEAR(timelineCriticalPath(plan, tl), tl.makespan,
                1e-9 * tl.makespan);
}

TEST(TimelineRules, RegisteredInTheCatalog)
{
    bool p007 = false, p008 = false;
    for (const RuleInfo& r : allRules()) {
        p007 |= std::string(r.id) == rules::TimelineConsistency;
        p008 |= std::string(r.id) == rules::MakespanBound;
    }
    EXPECT_TRUE(p007);
    EXPECT_TRUE(p008);
}

} // namespace
} // namespace mmgen::verify
