/**
 * @file
 * The memory verification pass: S013 dataflow integrity over
 * deliberately corrupted plans, P011 conservation against tampered
 * cost-model traffic, caller-chosen P010 capacity severity, the
 * suppression contract (suppressing the noisy capacity rule can
 * never mask a dataflow error), registry coverage, and the golden
 * JSON serialization of a DiagnosticReport.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/memory.hh"
#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "kernels/cost_model.hh"
#include "models/model_suite.hh"
#include "verify/memory.hh"
#include "verify/rules.hh"

namespace mmgen::verify {
namespace {

struct Lowered
{
    exec::ExecutionPlan plan;
    exec::Timeline timeline;
};

Lowered
lowerStableDiffusion()
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const kernels::CostModel model(gpu, graph::AttentionBackend::Flash,
                                   kernels::EfficiencyParams::defaults());
    Lowered l;
    l.plan = exec::lowerPipeline(p, model);
    l.timeline = exec::TimelineScheduler(gpu).schedule(l.plan);
    return l;
}

PhysicsContext
ctxFor(const exec::ExecutionPlan& plan)
{
    return PhysicsContext{plan.model, ""};
}

TEST(PlanDataflow, CleanPlanHasNoFindings)
{
    const Lowered l = lowerStableDiffusion();
    DiagnosticReport report;
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_FALSE(report.hasErrors()) << report.render();
    EXPECT_FALSE(report.fired(rules::DanglingDefUse));
}

TEST(PlanDataflow, SelfDependencyFiresS013)
{
    Lowered l = lowerStableDiffusion();
    // A node depending on itself is the minimal forward edge: the
    // buffer it reads is defined by no strictly-earlier node.
    l.plan.nodes[5].deps.push_back(5);
    DiagnosticReport report;
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_TRUE(report.fired(rules::DanglingDefUse))
        << report.render();
    EXPECT_TRUE(report.hasErrors());
}

TEST(PlanDataflow, BrokenOpRangeFiresS013)
{
    Lowered l = lowerStableDiffusion();
    ASSERT_GT(l.plan.ops.size(), 1u);
    l.plan.ops[1].firstNode += 1; // ranges no longer tile the nodes
    DiagnosticReport report;
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_TRUE(report.fired(rules::DanglingDefUse));
}

TEST(PlanDataflow, BrokenComputeChainFiresS013)
{
    Lowered l = lowerStableDiffusion();
    // Find a compute node that chains to an earlier compute node and
    // cut every edge: its activation input is now defined by nobody.
    bool cut = false;
    std::size_t prev_compute = 0;
    bool seen_compute = false;
    for (std::size_t i = 0; i < l.plan.nodes.size() && !cut; ++i) {
        exec::PlanNode& n = l.plan.nodes[i];
        if (n.lane != exec::Lane::Compute)
            continue;
        if (seen_compute && !n.deps.empty() &&
            std::find(n.deps.begin(), n.deps.end(),
                      static_cast<std::int32_t>(prev_compute)) !=
                n.deps.end()) {
            n.deps.clear();
            cut = true;
        }
        prev_compute = i;
        seen_compute = true;
    }
    ASSERT_TRUE(cut) << "no chained compute node found";
    DiagnosticReport report;
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_TRUE(report.fired(rules::DanglingDefUse))
        << report.render();
}

TEST(PlanDataflow, ComputeLaneWeightStreamFiresS013)
{
    Lowered l = lowerStableDiffusion();
    // Weight staging must live on the Copy lane; a compute-lane
    // "prefetch" has no consumer in the liveness model.
    l.plan.nodes[3].weightStream = true;
    ASSERT_EQ(l.plan.nodes[3].lane, exec::Lane::Compute);
    DiagnosticReport report;
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_TRUE(report.fired(rules::DanglingDefUse));
}

TEST(MemoryRules, CleanProfilePassesOnBigGpu)
{
    const Lowered l = lowerStableDiffusion();
    const DiagnosticReport report =
        verifyMemory(l.plan, l.timeline, hw::GpuSpec::a100_80gb(),
                     ctxFor(l.plan));
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(MemoryRules, TamperedTrafficFiresP011)
{
    Lowered l = lowerStableDiffusion();
    // Zero the HBM traffic of an op that demands bytes: the liveness
    // accounting now claims bytes no kernel ever moved.
    std::size_t victim = l.plan.ops.size();
    for (std::size_t i = 0; i < l.plan.ops.size(); ++i) {
        const exec::PlanOp& op = l.plan.ops[i];
        if (op.inputBytes + op.outputBytes + op.weightReadBytes >
            0.0) {
            victim = i;
            break;
        }
    }
    ASSERT_LT(victim, l.plan.ops.size());
    const exec::PlanOp& op = l.plan.ops[victim];
    for (std::size_t n = op.firstNode; n < op.firstNode + op.nodeCount;
         ++n)
        l.plan.nodes[n].hbmBytes = 0.0;

    const DiagnosticReport report =
        verifyMemory(l.plan, l.timeline, hw::GpuSpec::a100_80gb(),
                     ctxFor(l.plan));
    EXPECT_TRUE(report.fired(rules::MemoryConservation))
        << report.render();
    EXPECT_TRUE(report.hasErrors());
}

TEST(MemoryRules, CapacitySeverityIsCallerChosen)
{
    const Lowered l = lowerStableDiffusion();
    hw::GpuSpec tiny = hw::GpuSpec::a100_80gb();
    tiny.name = "tiny-1GB";
    tiny.hbmBytes = 1e9; // SD's ~2.2 GiB peak cannot fit

    const DiagnosticReport hard = verifyMemory(
        l.plan, l.timeline, tiny, ctxFor(l.plan), Severity::Error);
    EXPECT_TRUE(hard.fired(rules::CapacityFeasible));
    EXPECT_TRUE(hard.hasErrors());

    // The profiler demotes capacity to Warn: the finding is still
    // reported, but it gates nothing.
    const DiagnosticReport soft = verifyMemory(
        l.plan, l.timeline, tiny, ctxFor(l.plan), Severity::Warn);
    EXPECT_TRUE(soft.fired(rules::CapacityFeasible));
    EXPECT_FALSE(soft.hasErrors()) << soft.render();
}

TEST(MemoryRules, SuppressingCapacityDoesNotMaskDataflow)
{
    Lowered l = lowerStableDiffusion();
    hw::GpuSpec tiny = hw::GpuSpec::a100_80gb();
    tiny.hbmBytes = 1e9;

    // Suppressed P010 findings vanish from the severity totals...
    DiagnosticReport report;
    report.suppressRule(rules::CapacityFeasible);
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    const exec::MemoryProfile mem =
        exec::analyzeMemory(l.plan, l.timeline);
    checkMemoryProfile(l.plan, mem, tiny, ctxFor(l.plan), report,
                       Severity::Error);
    EXPECT_FALSE(report.fired(rules::CapacityFeasible));
    EXPECT_GE(report.ruleSuppressedCount(), 1);
    EXPECT_FALSE(report.hasErrors()) << report.render();

    // ...but S013 errors on a corrupted plan still gate.
    l.plan.nodes[5].deps.push_back(5);
    checkPlanDataflow(l.plan, ctxFor(l.plan), report);
    EXPECT_TRUE(report.fired(rules::DanglingDefUse));
    EXPECT_TRUE(report.hasErrors());
}

TEST(MemoryRules, RegistryListsMemoryRules)
{
    for (const char* id :
         {rules::DanglingDefUse, rules::CapacityFeasible,
          rules::MemoryConservation}) {
        const RuleInfo& info = ruleInfo(id);
        EXPECT_STREQ(info.id, id);
        EXPECT_EQ(info.severity, Severity::Error);
    }
    EXPECT_STREQ(ruleInfo(rules::DanglingDefUse).family, "structural");
    EXPECT_STREQ(ruleInfo(rules::CapacityFeasible).family, "physics");
    EXPECT_STREQ(ruleInfo(rules::MemoryConservation).family,
                 "physics");
}

TEST(DiagnosticJson, GoldenWriterOutput)
{
    DiagnosticReport report;
    Diagnostic a;
    a.severity = Severity::Error;
    a.rule = rules::DanglingDefUse;
    a.model = "sd";
    a.stage = "unet";
    a.scope = "unet.down0.attn";
    a.message = "node 5 reads \"x\"\nundefined";
    a.hint = "fix deps";
    report.add(a);

    Diagnostic b;
    b.severity = Severity::Warn;
    b.rule = rules::CapacityFeasible;
    b.model = "sd";
    b.message = "peak 2.19 GiB exceeds 1.00 GiB";
    report.add(b);

    // Golden string: the exact byte sequence the util/json.hh Writer
    // produces, including escaping and compact separators.
    EXPECT_EQ(
        report.toJson(),
        "[{\"severity\":\"error\",\"rule\":\"S013\",\"model\":\"sd\","
        "\"stage\":\"unet\",\"scope\":\"unet.down0.attn\","
        "\"message\":\"node 5 reads \\\"x\\\"\\nundefined\","
        "\"hint\":\"fix deps\"},"
        "{\"severity\":\"warn\",\"rule\":\"P010\",\"model\":\"sd\","
        "\"stage\":\"\",\"scope\":\"\","
        "\"message\":\"peak 2.19 GiB exceeds 1.00 GiB\","
        "\"hint\":\"\"}]");
}

} // namespace
} // namespace mmgen::verify
