/**
 * @file
 * Golden-diagnostic tests: each hand-corrupted graph must trigger
 * exactly its expected rule id, and clean zoo pipelines none.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "models/model_suite.hh"
#include "util/logging.hh"
#include "verify/verify.hh"

namespace mmgen::verify {
namespace {

graph::Op
convOp(std::int64_t in_c, std::int64_t out_c, std::int64_t h,
       std::int64_t w, std::int64_t batch = 1, std::int64_t stride = 1)
{
    graph::ConvAttrs a;
    a.batch = batch;
    a.inChannels = in_c;
    a.outChannels = out_c;
    a.inH = h;
    a.inW = w;
    a.strideH = stride;
    a.strideW = stride;
    graph::Op op;
    op.kind = graph::OpKind::Conv2D;
    op.scope = "test.conv";
    op.attrs = a;
    return op;
}

graph::Op
attentionOp(graph::AttentionKind kind, std::int64_t batch,
            std::int64_t seq_q, std::int64_t seq_kv,
            std::int64_t seq_stride, std::int64_t feature_stride,
            bool causal = false)
{
    graph::AttentionAttrs a;
    a.kind = kind;
    a.batch = batch;
    a.heads = 8;
    a.seqQ = seq_q;
    a.seqKv = seq_kv;
    a.headDim = 64;
    a.causal = causal;
    a.seqStrideElems = seq_stride;
    a.featureStrideElems = feature_stride;
    graph::Op op;
    op.kind = graph::OpKind::Attention;
    op.scope = "test.attn";
    op.attrs = a;
    return op;
}

TraceContext
ctxF16()
{
    TraceContext ctx;
    ctx.model = "test";
    ctx.stage = "stage";
    ctx.dtype = DType::F16;
    return ctx;
}

/** The report must carry errors, all firing exactly `rule`. */
void
expectOnlyRule(const DiagnosticReport& report, const char* rule)
{
    EXPECT_TRUE(report.hasErrors()) << report.render();
    const std::vector<std::string> fired = report.firedRules();
    ASSERT_EQ(fired.size(), 1u) << report.render();
    EXPECT_EQ(fired[0], rule) << report.render();
}

TEST(StructuralVerifier, BadConvChainFiresChannelContinuity)
{
    graph::Trace t;
    t.append(convOp(64, 128, 32, 32));
    t.append(convOp(99, 128, 32, 32)); // producer emitted 128
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::ChannelContinuity);
}

TEST(StructuralVerifier, ResolutionJumpFiresChannelContinuity)
{
    graph::Trace t;
    t.append(convOp(64, 128, 32, 32));
    t.append(convOp(128, 128, 16, 16)); // no downsample in between
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::ChannelContinuity);
}

TEST(StructuralVerifier, SkipConcatIsNotAViolation)
{
    graph::Trace t;
    t.append(convOp(64, 128, 32, 32));
    t.append(convOp(128, 256, 32, 32));
    // UNet decoder concat: 256 live + 128 skip.
    t.append(convOp(256 + 128, 256, 32, 32));
    const DiagnosticReport report = verifyTrace(t, ctxF16());
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(StructuralVerifier, WrongTemporalStrideFiresTemporalRule)
{
    graph::Trace t;
    // 16 frames of 24x24 positions; feature stride should be F*H*W.
    t.append(attentionOp(graph::AttentionKind::Temporal, 576, 16, 16,
                         /*seq_stride=*/576,
                         /*feature_stride=*/576));
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::TemporalAttention);
}

TEST(StructuralVerifier, TemporalFrameMismatchAgainstConvState)
{
    graph::Trace t;
    graph::Op conv = convOp(64, 64, 24, 24);
    std::get<graph::ConvAttrs>(conv.attrs).inD = 16;
    conv.kind = graph::OpKind::Conv3D;
    t.append(conv);
    // Attends 8 frames while the feature map carries 16.
    t.append(attentionOp(graph::AttentionKind::Temporal, 576, 8, 8,
                         576, 8 * 576));
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::TemporalAttention);
}

TEST(StructuralVerifier, MismatchedDtypeFiresDtypeRule)
{
    graph::Trace t;
    graph::Op op = convOp(64, 64, 32, 32);
    op.dtype = DType::F32;
    t.append(op);
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::DtypeConsistency);
}

TEST(StructuralVerifier, NonPositiveDimFiresS001)
{
    graph::Trace t;
    graph::Op op;
    op.kind = graph::OpKind::Linear;
    op.scope = "test.linear";
    graph::LinearAttrs a;
    a.rows = 128;
    a.inFeatures = 512;
    a.outFeatures = 0;
    op.attrs = a;
    t.append(op);
    expectOnlyRule(verifyTrace(t, ctxF16()), rules::NonPositiveDim);
}

TEST(StructuralVerifier, IndivisibleStrideFiresS003)
{
    graph::Trace t;
    t.append(convOp(64, 64, 33, 33, 1, /*stride=*/2));
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::ConvStrideDivisibility);
}

TEST(StructuralVerifier, ZeroRepeatFiresRepeatSanity)
{
    graph::Trace t;
    graph::Op op = convOp(64, 64, 32, 32);
    op.repeat = 0;
    t.append(op);
    expectOnlyRule(verifyTrace(t, ctxF16()), rules::RepeatSanity);
}

TEST(StructuralVerifier, UnmaskedPrefillFiresCausalRule)
{
    graph::Trace t;
    t.append(attentionOp(graph::AttentionKind::CausalSelf, 1, 128, 128,
                         512, 1, /*causal=*/false));
    expectOnlyRule(verifyTrace(t, ctxF16()), rules::CausalAttention);
}

TEST(StructuralVerifier, DecodeStepWithoutMaskIsLegal)
{
    graph::Trace t;
    t.append(attentionOp(graph::AttentionKind::CausalSelf, 1, 1, 512,
                         512, 1, /*causal=*/false));
    const DiagnosticReport report = verifyTrace(t, ctxF16());
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(StructuralVerifier, WrongPromptLengthFiresCrossRule)
{
    TraceContext ctx = ctxF16();
    ctx.promptLen = 77;
    graph::Trace t;
    t.append(attentionOp(graph::AttentionKind::CrossText, 2, 4096, 64,
                         512, 1));
    expectOnlyRule(verifyTrace(t, ctx), rules::CrossAttention);
}

TEST(StructuralVerifier, SpatialSeqMismatchAgainstConvState)
{
    graph::Trace t;
    t.append(convOp(4, 320, 64, 64, 2));
    // 64x64 feature map has 4096 positions, not 1024.
    t.append(attentionOp(graph::AttentionKind::SelfSpatial, 2, 1024,
                         1024, 512, 1));
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::SpatialAttention);
}

TEST(StructuralVerifier, CausalSpatialAttentionFiresS005)
{
    graph::Trace t;
    t.append(attentionOp(graph::AttentionKind::SelfSpatial, 2, 4096,
                         4096, 512, 1, /*causal=*/true));
    expectOnlyRule(verifyTrace(t, ctxF16()),
                   rules::SpatialAttention);
}

TEST(StructuralVerifier, OverflowProductFiresS002)
{
    graph::Trace t;
    graph::Op op;
    op.kind = graph::OpKind::Matmul;
    op.scope = "test.matmul";
    graph::MatmulAttrs a;
    a.batch = 1 << 20;
    a.m = 1 << 20;
    a.n = 1 << 20;
    a.k = 1 << 20;
    op.attrs = a;
    t.append(op);
    expectOnlyRule(verifyTrace(t, ctxF16()), rules::OverflowRisk);
}

TEST(StructuralVerifier, ConvOutDimsRoundUp)
{
    graph::ConvAttrs a;
    a.inH = 33;
    a.inW = 66;
    a.strideH = 2;
    a.strideW = 4;
    EXPECT_EQ(a.outH(), 17); // ceil(33/2), not 16
    EXPECT_EQ(a.outW(), 17); // ceil(66/4), not 16
}

TEST(StructuralVerifier, PerIterationParamDriftFiresParamCount)
{
    graph::Pipeline p;
    p.name = "drift";
    p.klass = graph::ModelClass::LLM;
    graph::Stage st;
    st.name = "decode";
    st.iterations = 4;
    st.perIterationShapes = true;
    st.emit = [](graph::GraphBuilder& b, std::int64_t iter) {
        // Weight size depends on the iteration index: illegal.
        const TensorDesc x({1, 64}, b.dtype());
        b.linear(x, 64 * (iter + 1));
    };
    p.stages.push_back(st);
    const DiagnosticReport report = verifyPipeline(p);
    EXPECT_TRUE(report.fired(rules::ParamCount)) << report.render();
}

TEST(StructuralVerifier, ThrowingEmitterFiresTraceFailure)
{
    graph::Pipeline p;
    p.name = "broken";
    graph::Stage st;
    st.name = "bad";
    st.iterations = 1;
    st.emit = [](graph::GraphBuilder& b, std::int64_t) {
        const TensorDesc x({1, 64, 33, 33}, b.dtype());
        b.conv2d(x, 64, 3, /*stride=*/2); // builder rejects 33 % 2
    };
    p.stages.push_back(st);
    const DiagnosticReport report = verifyPipeline(p);
    expectOnlyRule(report, rules::TraceFailure);
}

TEST(StructuralVerifier, CleanZooPipelinesProduceNoErrors)
{
    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        const DiagnosticReport report = verifyPipeline(p);
        EXPECT_FALSE(report.hasErrors())
            << models::modelName(id) << ":\n"
            << report.render();
    }
}

TEST(StructuralVerifier, VerifyOrThrowThrowsOnCorruptPipeline)
{
    graph::Pipeline p;
    p.name = "empty-emitter";
    graph::Stage st;
    st.name = "none";
    st.iterations = 0;
    p.stages.push_back(st);
    EXPECT_THROW(verifyPipelineOrThrow(p), FatalError);
}

TEST(StructuralVerifier, RuntimeToggleRoundTrips)
{
    const bool initial = runtimeChecksEnabled();
    const bool previous = setRuntimeChecks(!initial);
    EXPECT_EQ(previous, initial);
    EXPECT_EQ(runtimeChecksEnabled(), !initial);
    setRuntimeChecks(initial);
    EXPECT_EQ(runtimeChecksEnabled(), initial);
}

TEST(StructuralVerifier, RuleRegistryIsConsistent)
{
    EXPECT_GE(allRules().size(), 17u);
    for (const RuleInfo& r : allRules()) {
        EXPECT_EQ(&ruleInfo(r.id), &r);
        EXPECT_TRUE(std::string(r.family) == "structural" ||
                    std::string(r.family) == "physics")
            << r.id;
    }
    EXPECT_THROW(ruleInfo("S999"), FatalError);
}

TEST(DiagnosticReport, SuppressionCapsPerRuleNoise)
{
    DiagnosticReport report;
    for (int i = 0; i < 20; ++i)
        report.add(Diagnostic{Severity::Error, rules::NonPositiveDim,
                              "m", "s", "op", "boom", ""});
    EXPECT_EQ(report.errorCount(), 20);
    EXPECT_EQ(static_cast<int>(report.diagnostics().size()),
              DiagnosticReport::kMaxPerRulePerStage);
    EXPECT_EQ(report.suppressedCount(),
              20 - DiagnosticReport::kMaxPerRulePerStage);
}

TEST(DiagnosticReport, JsonEscapesAndListsFindings)
{
    DiagnosticReport report;
    report.add(Diagnostic{Severity::Warn, "S001", "m\"x", "s", "op",
                          "line\nbreak", "hint"});
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
    EXPECT_NE(json.find("m\\\"x"), std::string::npos);
    EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

} // namespace
} // namespace mmgen::verify
