/**
 * @file
 * Model-zoo sweep: `lint` must report zero errors for every suite
 * model, the paper's scaling knobs must be latency-monotone, and the
 * profiler/serving debug hooks must reject corrupted pipelines.
 */

#include <gtest/gtest.h>

#include "core/lint.hh"
#include "models/stable_diffusion.hh"
#include "profiler/engine.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::core {
namespace {

using mmgen::verify::DiagnosticReport;

TEST(ZooLint, EverySuiteModelIsCleanUnderFullLint)
{
    LintOptions opts;
    for (models::ModelId id : models::allModels()) {
        const DiagnosticReport report = lintModel(id, opts);
        EXPECT_EQ(report.errorCount(), 0)
            << models::modelName(id) << ":\n"
            << report.render();
    }
}

TEST(ZooLint, StructuralOnlyLintIsAlsoClean)
{
    LintOptions opts;
    opts.physics = false;
    opts.probes = false;
    const DiagnosticReport report = lintAll(opts);
    EXPECT_EQ(report.errorCount(), 0) << report.render();
}

TEST(ZooLint, LatencyMonotoneInDenoiseStepsAndResolution)
{
    profiler::ProfileOptions popts;
    auto seconds = [&](const models::StableDiffusionConfig& cfg) {
        return profiler::Profiler(popts)
            .profile(models::buildStableDiffusion(cfg))
            .totalSeconds;
    };
    models::StableDiffusionConfig cfg;
    cfg.denoiseSteps = 10;
    const double base = seconds(cfg);
    cfg.denoiseSteps = 20;
    const double more_steps = seconds(cfg);
    cfg.imageSize = 1024;
    const double more_pixels = seconds(cfg);

    verify::DiagnosticReport report;
    verify::checkLatencyMonotone("sd denoise steps",
                                 {{10, base}, {20, more_steps}},
                                 report);
    verify::checkLatencyMonotone(
        "sd resolution", {{512, more_steps}, {1024, more_pixels}},
        report);
    EXPECT_FALSE(report.hasErrors()) << report.render();
}

TEST(ZooLint, ProfilerHookRejectsCorruptPipelineWhenEnabled)
{
    graph::Pipeline p;
    p.name = "corrupt";
    graph::Stage st;
    st.name = "stage";
    st.iterations = 1;
    st.emit = [](graph::GraphBuilder& b, std::int64_t) {
        // An unmasked multi-token "causal" prefill: emittable, but
        // the verifier must reject it (rule S011).
        b.attention(graph::AttentionKind::CausalSelf, 1, 8, 128, 128,
                    64, /*seq_stride=*/0, /*causal=*/false);
    };
    p.stages.push_back(st);

    const bool previous = verify::setRuntimeChecks(true);
    profiler::ProfileOptions popts;
    EXPECT_THROW(profiler::Profiler(popts).profile(p), FatalError);
    EXPECT_THROW(
        serving::profileLatencyModel(p, hw::GpuSpec::a100_80gb()),
        FatalError);
    verify::setRuntimeChecks(previous);
}

TEST(ZooLint, ProfilerHookAcceptsCleanPipelineWhenEnabled)
{
    const bool previous = verify::setRuntimeChecks(true);
    profiler::ProfileOptions popts;
    const profiler::ProfileResult res =
        profiler::Profiler(popts).profile(
            models::buildModel(models::ModelId::Muse));
    EXPECT_GT(res.totalSeconds, 0.0);
    verify::setRuntimeChecks(previous);
}

} // namespace
} // namespace mmgen::core
