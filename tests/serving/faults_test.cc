/**
 * @file
 * Tests for fault injection and resilience policies: plan
 * determinism, stream independence, retry/backoff math, admission
 * shedding, graceful degradation, and the bit-for-bit backward
 * compatibility of the extended simulator's default path.
 */

#include <gtest/gtest.h>

#include "models/stable_diffusion.hh"
#include "serving/faults.hh"
#include "serving/policies.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {
namespace {

LatencyModel
unitModel()
{
    LatencyModel m;
    m.baseSeconds = 1.0;
    m.overheadFraction = 0.0;
    return m;
}

FaultConfig
flakyFleet()
{
    FaultConfig f;
    f.failureMtbfSeconds = 200.0;
    f.failureMttrSeconds = 50.0;
    f.preemptionMtbfSeconds = 150.0;
    f.preemptionMeanSeconds = 10.0;
    return f;
}

TEST(FaultPlan, DeterministicAcrossRuns)
{
    const FleetFaultPlan a = planFaults(flakyFleet(), 4, 1000.0, 42);
    const FleetFaultPlan b = planFaults(flakyFleet(), 4, 1000.0, 42);
    ASSERT_EQ(a.gpus.size(), b.gpus.size());
    for (std::size_t g = 0; g < a.gpus.size(); ++g) {
        ASSERT_EQ(a.gpus[g].outages.size(), b.gpus[g].outages.size());
        for (std::size_t i = 0; i < a.gpus[g].outages.size(); ++i) {
            EXPECT_DOUBLE_EQ(a.gpus[g].outages[i].start,
                             b.gpus[g].outages[i].start);
            EXPECT_DOUBLE_EQ(a.gpus[g].outages[i].end,
                             b.gpus[g].outages[i].end);
        }
    }
}

TEST(FaultPlan, GpusHaveIndependentStreams)
{
    const FleetFaultPlan plan =
        planFaults(flakyFleet(), 2, 5000.0, 42);
    ASSERT_GE(plan.gpus[0].outages.size(), 1u);
    ASSERT_GE(plan.gpus[1].outages.size(), 1u);
    EXPECT_NE(plan.gpus[0].outages[0].start,
              plan.gpus[1].outages[0].start);
}

TEST(FaultPlan, OutagesDisjointSortedAndMtbfScales)
{
    const FleetFaultPlan plan =
        planFaults(flakyFleet(), 3, 20000.0, 7);
    for (const GpuFaultTimeline& g : plan.gpus) {
        for (std::size_t i = 0; i < g.outages.size(); ++i) {
            EXPECT_LT(g.outages[i].start, g.outages[i].end);
            if (i > 0)
                EXPECT_GT(g.outages[i].start, g.outages[i - 1].end);
        }
    }
    FaultConfig rare = flakyFleet();
    rare.failureMtbfSeconds *= 50.0;
    rare.preemptionMtbfSeconds *= 50.0;
    const FleetFaultPlan rare_plan = planFaults(rare, 3, 20000.0, 7);
    EXPECT_LT(rare_plan.totalOutages(), plan.totalOutages());
    EXPECT_GT(rare_plan.meanAvailability(20000.0),
              plan.meanAvailability(20000.0));
    EXPECT_GE(plan.meanAvailability(20000.0), 0.0);
    EXPECT_LE(plan.meanAvailability(20000.0), 1.0);
}

TEST(FaultPlan, StragglersAreSeededAndBounded)
{
    FaultConfig f;
    f.stragglerFraction = 0.5;
    f.stragglerSlowdown = 3.0;
    const FleetFaultPlan a = planFaults(f, 32, 100.0, 11);
    const FleetFaultPlan b = planFaults(f, 32, 100.0, 11);
    int stragglers = 0;
    for (std::size_t g = 0; g < a.gpus.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.gpus[g].slowdown, b.gpus[g].slowdown);
        if (a.gpus[g].slowdown > 1.0)
            ++stragglers;
    }
    EXPECT_GT(stragglers, 0);
    EXPECT_LT(stragglers, 32);
}

TEST(FaultPlan, Validation)
{
    FaultConfig f;
    f.stragglerFraction = 1.5;
    EXPECT_THROW(planFaults(f, 1, 100.0, 0), FatalError);
    f = FaultConfig{};
    f.stragglerSlowdown = 0.5;
    f.stragglerFraction = 0.1;
    EXPECT_THROW(planFaults(f, 1, 100.0, 0), FatalError);
}

TEST(FaultPlan, ZeroMtbfDisablesEachProcess)
{
    // MTBF = 0 means "off", even with a zero MTTR alongside — the
    // MTTR checks only apply to enabled processes.
    FaultConfig f;
    f.failureMtbfSeconds = 0.0;
    f.failureMttrSeconds = 0.0;
    f.preemptionMtbfSeconds = 0.0;
    f.preemptionMeanSeconds = 0.0;
    f.domainMtbfSeconds = 0.0;
    f.domainMttrSeconds = 0.0;
    EXPECT_FALSE(f.any());
    const FleetFaultPlan plan = planFaults(f, 8, 1000.0, 3);
    EXPECT_EQ(plan.totalOutages(), 0);
    EXPECT_DOUBLE_EQ(plan.meanAvailability(1000.0), 1.0);
}

TEST(FaultPlan, ZeroMttrWithActiveProcessThrows)
{
    FaultConfig f;
    f.failureMtbfSeconds = 100.0;
    f.failureMttrSeconds = 0.0;
    EXPECT_THROW(planFaults(f, 1, 100.0, 0), FatalError);
    f = FaultConfig{};
    f.preemptionMtbfSeconds = 100.0;
    f.preemptionMeanSeconds = 0.0;
    EXPECT_THROW(planFaults(f, 1, 100.0, 0), FatalError);
    f = FaultConfig{};
    f.domainMtbfSeconds = 100.0;
    f.domainSize = 2;
    f.domainMttrSeconds = 0.0;
    EXPECT_THROW(planFaults(f, 4, 100.0, 0), FatalError);
}

TEST(FaultPlan, OverlappingOutagesOnOneGpuMerge)
{
    // Failure and preemption windows that interleave on one GPU must
    // merge into disjoint windows, with a hard failure subsuming any
    // preemption it overlaps.
    std::vector<Outage> raw = {
        {10.0, 20.0, OutageKind::Preemption},
        {15.0, 40.0, OutageKind::Failure},
        {5.0, 12.0, OutageKind::Preemption},
        {50.0, 60.0, OutageKind::Preemption},
        {60.0, 70.0, OutageKind::Preemption}, // adjacent: merges
    };
    const std::vector<Outage> merged = mergeOutages(raw);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_DOUBLE_EQ(merged[0].start, 5.0);
    EXPECT_DOUBLE_EQ(merged[0].end, 40.0);
    EXPECT_EQ(merged[0].kind, OutageKind::Failure);
    EXPECT_DOUBLE_EQ(merged[1].start, 50.0);
    EXPECT_DOUBLE_EQ(merged[1].end, 70.0);
    EXPECT_EQ(merged[1].kind, OutageKind::Preemption);
}

TEST(FaultPlan, OutageAtTimeZeroStartsMidOutage)
{
    GpuFaultTimeline tl;
    tl.outages = {{0.0, 10.0, OutageKind::Failure}};
    EXPECT_TRUE(tl.downAt(0.0));
    EXPECT_TRUE(tl.downAt(9.9));
    EXPECT_FALSE(tl.downAt(10.0));
    EXPECT_DOUBLE_EQ(tl.availability(100.0), 0.9);
    // An outage longer than the horizon cannot drive availability
    // negative.
    GpuFaultTimeline longOutage;
    longOutage.outages = {{0.0, 500.0, OutageKind::Failure}};
    EXPECT_DOUBLE_EQ(longOutage.availability(100.0), 0.0);
}

TEST(FaultPlan, DomainMembersShareCorrelatedOutages)
{
    FaultConfig f;
    f.domainMtbfSeconds = 150.0;
    f.domainMttrSeconds = 30.0;
    const std::vector<int> domainOf = {0, 0, 1, 1};
    const FleetFaultPlan plan = planFaults(f, domainOf, 2000.0, 17);
    ASSERT_EQ(plan.gpus.size(), 4u);
    ASSERT_GT(plan.totalOutages(), 0);
    // With only domain faults active, co-domain members have
    // identical timelines and the domains differ from each other.
    ASSERT_EQ(plan.gpus[0].outages.size(), plan.gpus[1].outages.size());
    for (std::size_t i = 0; i < plan.gpus[0].outages.size(); ++i) {
        EXPECT_DOUBLE_EQ(plan.gpus[0].outages[i].start,
                         plan.gpus[1].outages[i].start);
        EXPECT_DOUBLE_EQ(plan.gpus[0].outages[i].end,
                         plan.gpus[1].outages[i].end);
    }
    EXPECT_NE(plan.gpus[0].availability(2000.0),
              plan.gpus[2].availability(2000.0));
    const std::vector<double> avail = plan.domainAvailability(2000.0);
    ASSERT_EQ(avail.size(), 2u);
    EXPECT_DOUBLE_EQ(avail[0], plan.gpus[0].availability(2000.0));
}

TEST(FaultPlan, DomainSizePartitionsThePool)
{
    FaultConfig f;
    f.domainMtbfSeconds = 200.0;
    f.domainSize = 2;
    const FleetFaultPlan plan = planFaults(f, 6, 2000.0, 9);
    ASSERT_EQ(plan.domainOf.size(), 6u);
    EXPECT_EQ(plan.domainOf[0], 0);
    EXPECT_EQ(plan.domainOf[1], 0);
    EXPECT_EQ(plan.domainOf[5], 2);
    EXPECT_EQ(plan.domainAvailability(2000.0).size(), 3u);
    // Missing domainSize is rejected.
    f.domainSize = 0;
    EXPECT_THROW(planFaults(f, 6, 2000.0, 9), FatalError);
}

TEST(FaultPlan, DisabledDomainFaultsAreBitIdenticalToSeedPlan)
{
    // Adding domain membership without a domain fault process must
    // not change a single per-GPU draw.
    FaultConfig f = flakyFleet();
    const FleetFaultPlan pool = planFaults(f, 4, 1000.0, 21);
    const FleetFaultPlan withDomains =
        planFaults(f, {0, 0, 1, 1}, 1000.0, 21);
    ASSERT_EQ(pool.gpus.size(), withDomains.gpus.size());
    for (std::size_t g = 0; g < pool.gpus.size(); ++g) {
        ASSERT_EQ(pool.gpus[g].outages.size(),
                  withDomains.gpus[g].outages.size());
        for (std::size_t i = 0; i < pool.gpus[g].outages.size(); ++i) {
            EXPECT_EQ(pool.gpus[g].outages[i].start,
                      withDomains.gpus[g].outages[i].start);
            EXPECT_EQ(pool.gpus[g].outages[i].end,
                      withDomains.gpus[g].outages[i].end);
        }
        EXPECT_EQ(pool.gpus[g].slowdown, withDomains.gpus[g].slowdown);
    }
}

TEST(RetryPolicy, ExponentialBackoffWithCap)
{
    RetryPolicy r;
    r.maxRetries = 5;
    r.backoffBaseSeconds = 2.0;
    r.backoffMultiplier = 3.0;
    r.backoffCapSeconds = 25.0;
    EXPECT_DOUBLE_EQ(r.backoffSeconds(1), 2.0);
    EXPECT_DOUBLE_EQ(r.backoffSeconds(2), 6.0);
    EXPECT_DOUBLE_EQ(r.backoffSeconds(3), 18.0);
    EXPECT_DOUBLE_EQ(r.backoffSeconds(4), 25.0); // capped
    EXPECT_THROW(r.backoffSeconds(0), FatalError);
}

TEST(Resilience, DefaultPathBitForBitWithSeedSimulator)
{
    ServingConfig cfg;
    cfg.arrivalRate = 3.0;
    cfg.numGpus = 2;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 500.0;
    const ServingReport a = simulateServing(cfg, unitModel());
    const ServingReport b =
        simulateServing(cfg, unitModel(), ResilienceConfig{});
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.drainCompleted, b.drainCompleted);
    EXPECT_EQ(a.backlog, b.backlog);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.meanBatch, b.meanBatch);
    EXPECT_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.drainGpuSeconds, b.drainGpuSeconds);
    // Resilience metrics are inert on the default path.
    EXPECT_EQ(b.retries, 0);
    EXPECT_EQ(b.shed, 0);
    EXPECT_EQ(b.expired, 0);
    EXPECT_EQ(b.dropped, 0);
    EXPECT_EQ(b.degraded, 0);
    EXPECT_DOUBLE_EQ(b.lostGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(b.meanAvailability, 1.0);
    // With no deadline, goodput is in-horizon throughput.
    EXPECT_DOUBLE_EQ(b.goodput, b.throughput);
}

TEST(Resilience, FaultsDoNotPerturbArrivals)
{
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.numGpus = 4;
    cfg.horizonSeconds = 800.0;
    ResilienceConfig res;
    res.faults = flakyFleet();
    const ServingReport clean = simulateServing(cfg, unitModel());
    const ServingReport faulty =
        simulateServing(cfg, unitModel(), res);
    EXPECT_EQ(clean.arrived, faulty.arrived);
    EXPECT_LT(faulty.meanAvailability, 1.0);
}

TEST(Resilience, FaultsDegradeServiceAndLoseWork)
{
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.numGpus = 4;
    cfg.horizonSeconds = 800.0;
    ResilienceConfig res;
    res.faults = flakyFleet();
    const ServingReport clean = simulateServing(cfg, unitModel());
    const ServingReport faulty =
        simulateServing(cfg, unitModel(), res);
    // Killed batches drop their requests (no retry budget).
    EXPECT_GT(faulty.dropped, 0);
    EXPECT_GT(faulty.lostGpuSeconds, 0.0);
    EXPECT_LT(faulty.completed, clean.completed);
}

TEST(Resilience, RetriesRecoverFaultedWork)
{
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.numGpus = 4;
    cfg.horizonSeconds = 800.0;
    ResilienceConfig no_retry;
    no_retry.faults = flakyFleet();
    ResilienceConfig with_retry = no_retry;
    with_retry.retry.maxRetries = 3;
    with_retry.retry.backoffBaseSeconds = 0.5;
    const ServingReport dropped =
        simulateServing(cfg, unitModel(), no_retry);
    const ServingReport retried =
        simulateServing(cfg, unitModel(), with_retry);
    EXPECT_GT(retried.retries, 0);
    EXPECT_GT(retried.completed, dropped.completed);
    EXPECT_LT(retried.dropped, dropped.dropped);
}

TEST(Resilience, StragglerTimeoutRescuesGoodput)
{
    // One of two GPUs runs 4x slow, so its completions always bust a
    // 2.5 s deadline. Batch timeouts + retry re-land that work on the
    // healthy GPU, where it can still beat the deadline.
    FaultConfig f;
    f.stragglerFraction = 0.5;
    f.stragglerSlowdown = 4.0;
    std::uint64_t seed = 0;
    for (std::uint64_t s = 1; s < 64; ++s) {
        const FleetFaultPlan p = planFaults(f, 2, 100.0, s);
        const int stragglers = (p.gpus[0].slowdown > 1.0 ? 1 : 0) +
                               (p.gpus[1].slowdown > 1.0 ? 1 : 0);
        if (stragglers == 1) {
            seed = s;
            break;
        }
    }
    ASSERT_NE(seed, 0u) << "no asymmetric fleet in seed range";

    ServingConfig cfg;
    cfg.arrivalRate = 0.5;
    cfg.numGpus = 2;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 1000.0;
    cfg.seed = seed;
    ResilienceConfig slow;
    slow.faults = f;
    slow.deadline.deadlineSeconds = 2.5;
    ResilienceConfig rescued = slow;
    rescued.deadline.batchTimeoutSeconds = 1.2;
    rescued.retry.maxRetries = 3;
    rescued.retry.backoffBaseSeconds = 0.05;
    const ServingReport slow_r =
        simulateServing(cfg, unitModel(), slow);
    const ServingReport rescued_r =
        simulateServing(cfg, unitModel(), rescued);
    EXPECT_GT(slow_r.deadlineMissRate, 0.1); // straggler busts SLO
    EXPECT_GT(rescued_r.retries, 0);
    EXPECT_GT(rescued_r.goodput, slow_r.goodput);
    EXPECT_LT(rescued_r.deadlineMissRate, slow_r.deadlineMissRate);
}

TEST(Resilience, AdmissionControlBoundsQueue)
{
    ServingConfig cfg;
    cfg.arrivalRate = 3.0; // 3x capacity
    cfg.numGpus = 1;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 400.0;
    ResilienceConfig res;
    res.admission.maxQueueLength = 10;
    const ServingReport open = simulateServing(cfg, unitModel());
    const ServingReport shed =
        simulateServing(cfg, unitModel(), res);
    EXPECT_GT(shed.shed, 0);
    EXPECT_GT(shed.shedFraction, 0.3);
    EXPECT_LE(shed.backlog, 11); // queue bound + one in flight
    EXPECT_LT(shed.backlog, open.backlog);
    // Served requests see bounded waiting instead of a divergent
    // queue.
    EXPECT_LT(shed.p95Latency, open.p95Latency);
}

TEST(Resilience, DeadlinesExpireQueuedWork)
{
    ServingConfig cfg;
    cfg.arrivalRate = 3.0;
    cfg.numGpus = 1;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 400.0;
    ResilienceConfig res;
    res.deadline.deadlineSeconds = 5.0;
    const ServingReport r = simulateServing(cfg, unitModel(), res);
    EXPECT_GT(r.expired, 0);
    EXPECT_GE(r.deadlineMissRate, 0.0);
    EXPECT_LE(r.deadlineMissRate, 1.0);
    EXPECT_LE(r.goodput, r.throughput);
    // Every counted completion beat the deadline or is a miss.
    EXPECT_NEAR(r.goodput * cfg.horizonSeconds +
                    r.deadlineMissRate *
                        static_cast<double>(r.completed),
                static_cast<double>(r.completed - r.drainCompleted),
                static_cast<double>(r.drainCompleted) + 1.0);
}

TEST(Resilience, DegradationRaisesGoodputUnderOverload)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.6; // 1.6x nominal capacity
    cfg.numGpus = 1;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 600.0;
    ResilienceConfig plain;
    plain.deadline.deadlineSeconds = 20.0;
    ResilienceConfig degrade = plain;
    degrade.degradation.queueThreshold = 4;
    degrade.degradation.serviceScale = 0.5;
    const ServingReport base =
        simulateServing(cfg, unitModel(), plain);
    const ServingReport deg =
        simulateServing(cfg, unitModel(), degrade);
    EXPECT_GT(deg.degraded, 0);
    EXPECT_GT(deg.degradedFraction, 0.0);
    EXPECT_GE(deg.goodput, base.goodput);
    EXPECT_GT(deg.completed, base.completed);
}

TEST(Resilience, PoliciesNeverLoseGoodputAcrossSweep)
{
    // Miniature version of bench/serving_resilience: at every
    // (availability x load) point the policy bundle must recover at
    // least the no-policy goodput.
    for (double mtbf : {0.0, 400.0, 150.0}) {
        for (double rate : {0.5, 1.2, 2.0}) {
            ServingConfig cfg;
            cfg.arrivalRate = rate;
            cfg.numGpus = 2;
            cfg.maxBatch = 2;
            cfg.horizonSeconds = 500.0;
            ResilienceConfig bare;
            bare.faults.failureMtbfSeconds = mtbf;
            bare.faults.failureMttrSeconds = 60.0;
            bare.deadline.deadlineSeconds = 30.0;
            ResilienceConfig resilient = bare;
            resilient.retry.maxRetries = 3;
            resilient.retry.backoffBaseSeconds = 0.5;
            resilient.degradation.queueThreshold = 6;
            resilient.degradation.serviceScale = 0.6;
            const ServingReport a =
                simulateServing(cfg, unitModel(), bare);
            const ServingReport b =
                simulateServing(cfg, unitModel(), resilient);
            EXPECT_GE(b.goodput, a.goodput)
                << "mtbf " << mtbf << " rate " << rate;
        }
    }
}

TEST(Degradation, FromProfiledPipelines)
{
    models::StableDiffusionConfig full;
    models::StableDiffusionConfig cheap = full;
    cheap.denoiseSteps = full.denoiseSteps / 2;
    const DegradationPolicy policy = degradationFromPipelines(
        models::buildStableDiffusion(full),
        models::buildStableDiffusion(cheap),
        hw::GpuSpec::a100_80gb(), 0.5);
    EXPECT_GT(policy.serviceScale, 0.3);
    EXPECT_LT(policy.serviceScale, 0.8);
    EXPECT_DOUBLE_EQ(policy.qualityCost, 0.5);
    // Faster pipeline as "full" is rejected.
    EXPECT_THROW(degradationFromPipelines(
                     models::buildStableDiffusion(cheap),
                     models::buildStableDiffusion(full),
                     hw::GpuSpec::a100_80gb(), 0.0),
                 FatalError);
}

} // namespace
} // namespace mmgen::serving
