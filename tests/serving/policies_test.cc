/**
 * @file
 * Tests for serving-config and resilience-policy validation, and the
 * overflow-guarded exponential backoff.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "serving/policies.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(ServingConfigValidation, RejectsBadArrivalRate)
{
    ServingConfig cfg;
    cfg.arrivalRate = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.arrivalRate = -1.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.arrivalRate = kInf;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.arrivalRate = kNan;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ServingConfigValidation, RejectsBadPoolShape)
{
    ServingConfig cfg;
    cfg.numGpus = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ServingConfig{};
    cfg.numGpus = -4;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = ServingConfig{};
    cfg.maxBatch = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ServingConfigValidation, RejectsBadHorizon)
{
    ServingConfig cfg;
    cfg.horizonSeconds = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.horizonSeconds = -100.0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.horizonSeconds = kInf;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(ServingConfigValidation, SimulatorRefusesToRunBadConfigs)
{
    LatencyModel m;
    ServingConfig cfg;
    cfg.arrivalRate = -2.0;
    EXPECT_THROW(simulateServing(cfg, m), FatalError);
    cfg = ServingConfig{};
    cfg.horizonSeconds = kNan;
    EXPECT_THROW(simulateServing(cfg, m, ResilienceConfig{}),
                 FatalError);
}

TEST(ResilienceValidation, RejectsEachBadKnob)
{
    const ResilienceConfig good;
    ASSERT_NO_THROW(good.validate());

    ResilienceConfig r = good;
    r.retry.maxRetries = -1;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.retry.backoffBaseSeconds = -0.5;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.retry.backoffMultiplier = 0.5;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.retry.backoffCapSeconds = kInf;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.deadline.deadlineSeconds = -10.0;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.deadline.batchTimeoutSeconds = kNan;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.admission.maxQueueLength = -8;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.degradation.queueThreshold = -1;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.degradation.serviceScale = 0.0;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.degradation.serviceScale = 1.5;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.faults.failureMtbfSeconds = -100.0;
    EXPECT_THROW(r.validate(), FatalError);
    r = good;
    r.faults.domainMtbfSeconds = kInf;
    EXPECT_THROW(r.validate(), FatalError);
}

TEST(RetryBackoff, SaturatesAtCapForHugeAttemptCounts)
{
    RetryPolicy p;
    p.backoffBaseSeconds = 1.0;
    p.backoffMultiplier = 2.0;
    p.backoffCapSeconds = 60.0;
    // 2^9999 overflows any double; the log-space guard must return
    // the cap, never inf or NaN.
    for (int attempt : {100, 1100, 10000, 1 << 30}) {
        const double b = p.backoffSeconds(attempt);
        EXPECT_TRUE(std::isfinite(b)) << attempt;
        EXPECT_EQ(b, 60.0) << attempt;
    }
}

TEST(RetryBackoff, ZeroBaseNeverProducesNaN)
{
    // 0 * inf is NaN; the zero-base early-out must keep backoff 0.
    RetryPolicy p;
    p.backoffBaseSeconds = 0.0;
    p.backoffMultiplier = 10.0;
    EXPECT_EQ(p.backoffSeconds(1), 0.0);
    EXPECT_EQ(p.backoffSeconds(100000), 0.0);
}

TEST(RetryBackoff, UncappedRegionMatchesClosedForm)
{
    RetryPolicy p;
    p.backoffBaseSeconds = 0.5;
    p.backoffMultiplier = 3.0;
    p.backoffCapSeconds = 1e6;
    EXPECT_DOUBLE_EQ(p.backoffSeconds(1), 0.5);
    EXPECT_DOUBLE_EQ(p.backoffSeconds(2), 1.5);
    EXPECT_DOUBLE_EQ(p.backoffSeconds(5), 0.5 * 81.0);
}

TEST(RetryBackoff, HugeMultiplierSaturatesImmediately)
{
    RetryPolicy p;
    p.backoffBaseSeconds = 1.0;
    p.backoffMultiplier = 1e300;
    p.backoffCapSeconds = 30.0;
    EXPECT_EQ(p.backoffSeconds(2), 30.0);
    EXPECT_EQ(p.backoffSeconds(50), 30.0);
}

TEST(RetryBackoff, RejectsMalformedParameters)
{
    RetryPolicy p;
    EXPECT_THROW(p.backoffSeconds(0), FatalError);
    p.backoffMultiplier = 0.9;
    EXPECT_THROW(p.backoffSeconds(1), FatalError);
    p = RetryPolicy{};
    p.backoffCapSeconds = kInf;
    EXPECT_THROW(p.backoffSeconds(1), FatalError);
    p = RetryPolicy{};
    p.backoffBaseSeconds = kNan;
    EXPECT_THROW(p.backoffSeconds(1), FatalError);
}

} // namespace
} // namespace mmgen::serving
