/**
 * @file
 * Tests for the cluster-resilience layer: bit-for-bit equivalence of
 * the single-pool trivial path with the base simulator, router
 * policies, circuit-breaker state machine, hedged requests,
 * checkpoint/restore wasted-work accounting, chaos scenarios, and
 * request conservation across every exit path.
 */

#include <gtest/gtest.h>

#include "models/stable_diffusion.hh"
#include "serving/cluster.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {
namespace {

LatencyModel
unitModel()
{
    LatencyModel m;
    m.baseSeconds = 1.0;
    m.overheadFraction = 0.0;
    return m;
}

/** Every field the base simulator produces, compared exactly.
 *  EXPECT_EQ on doubles is deliberate: the trivial path must replay
 *  the identical floating-point operation sequence. */
void
expectReportsIdentical(const ServingReport& a, const ServingReport& b)
{
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.drainCompleted, b.drainCompleted);
    EXPECT_EQ(a.backlog, b.backlog);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.meanBatch, b.meanBatch);
    EXPECT_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.drainGpuSeconds, b.drainGpuSeconds);
    EXPECT_EQ(a.goodput, b.goodput);
    EXPECT_EQ(a.deadlineMissRate, b.deadlineMissRate);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.shedFraction, b.shedFraction);
    EXPECT_EQ(a.expired, b.expired);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.degradedFraction, b.degradedFraction);
    EXPECT_EQ(a.lostGpuSeconds, b.lostGpuSeconds);
    EXPECT_EQ(a.meanAvailability, b.meanAvailability);
}

/** Every logical request ends in exactly one bucket. */
void
expectConservation(const ServingReport& r)
{
    EXPECT_EQ(r.arrived, r.completed + r.shed + r.expired + r.dropped +
                             r.backlog);
}

TEST(Cluster, SinglePoolBitForBitWithSimulator)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.4;
    cfg.numGpus = 2;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 400.0;
    cfg.seed = 11;
    const ServingReport base = simulateServing(cfg, unitModel());
    const ClusterReport cluster =
        simulateCluster(singlePoolCluster(cfg, unitModel()));
    expectReportsIdentical(base, cluster.serving);
    // Cluster-only machinery must not have run at all.
    EXPECT_EQ(cluster.serving.hedgesIssued, 0);
    EXPECT_EQ(cluster.serving.hedgesWon, 0);
    EXPECT_EQ(cluster.serving.hedgesCancelled, 0);
    EXPECT_EQ(cluster.serving.hedgeWastedSeconds, 0.0);
    EXPECT_EQ(cluster.serving.breakerOpens, 0);
    EXPECT_EQ(cluster.serving.breakerCloses, 0);
    EXPECT_EQ(cluster.serving.checkpointsTaken, 0);
    EXPECT_EQ(cluster.serving.resumes, 0);
    EXPECT_EQ(cluster.serving.checkpointOverheadSeconds, 0.0);
    EXPECT_EQ(cluster.serving.wastedGpuSeconds, 0.0);
    EXPECT_EQ(cluster.serving.restoredGpuSeconds, 0.0);
    ASSERT_EQ(cluster.replicas.size(), 1u);
    EXPECT_EQ(cluster.replicas[0].breakerOpens, 0);
    expectConservation(cluster.serving);
}

TEST(Cluster, SinglePoolBitForBitUnderResilience)
{
    // One replica, no breaker: the cluster loop schedules no probe,
    // hedge, or checkpoint events, so even with faults and every
    // single-pool policy active it must replay the fault-tolerant
    // simulator exactly.
    ServingConfig cfg;
    cfg.arrivalRate = 1.2;
    cfg.numGpus = 3;
    cfg.horizonSeconds = 500.0;
    cfg.seed = 23;
    ResilienceConfig res;
    res.faults.failureMtbfSeconds = 150.0;
    res.faults.failureMttrSeconds = 40.0;
    res.faults.preemptionMtbfSeconds = 120.0;
    res.faults.preemptionMeanSeconds = 8.0;
    res.faults.stragglerFraction = 0.3;
    res.faults.stragglerSlowdown = 2.0;
    res.retry.maxRetries = 3;
    res.retry.backoffBaseSeconds = 0.5;
    res.deadline.deadlineSeconds = 60.0;
    res.admission.maxQueueLength = 32;
    res.degradation.queueThreshold = 12;
    res.degradation.serviceScale = 0.5;
    const ServingReport base = simulateServing(cfg, unitModel(), res);
    ClusterConfig cc = singlePoolCluster(cfg, unitModel());
    cc.resilience = res;
    const ClusterReport cluster = simulateCluster(cc);
    expectReportsIdentical(base, cluster.serving);
    expectConservation(cluster.serving);
}

TEST(Cluster, ValidationRejectsBadKnobs)
{
    const ClusterConfig good;
    ASSERT_NO_THROW(good.validate());

    ClusterConfig c = good;
    c.arrivalRate = 0.0;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.replicas.clear();
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.replicas[0].numGpus = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.replicas[0].domain = -1;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.breaker.failureThreshold = 2;
    c.breaker.halfOpenSuccesses = 0;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.hedge.delaySeconds = -1.0;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.checkpoint.iterations = 10;
    c.checkpoint.intervalIterations = 20;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.probe.intervalSeconds = 0.0;
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.chaos.events.push_back(
        {10.0, ChaosEventKind::KillReplica, 5, 0.0, 1.0});
    EXPECT_THROW(c.validate(), FatalError);
    c = good;
    c.chaos.events.push_back(
        {10.0, ChaosEventKind::StraggleGpu, 0, 10.0, 0.5});
    EXPECT_THROW(c.validate(), FatalError);
}

ClusterConfig
twoReplicaCluster(double rate = 1.5)
{
    ClusterConfig c;
    c.arrivalRate = rate;
    c.maxBatch = 4;
    c.horizonSeconds = 400.0;
    c.seed = 5;
    c.replicas = {ReplicaSpec{unitModel(), 2, 0},
                  ReplicaSpec{unitModel(), 2, 1}};
    return c;
}

TEST(Cluster, RoundRobinSpreadsLoadAcrossReplicas)
{
    ClusterConfig c = twoReplicaCluster();
    const ClusterReport r = simulateCluster(c);
    ASSERT_EQ(r.replicas.size(), 2u);
    EXPECT_GT(r.replicas[0].dispatchedBatches, 0);
    EXPECT_GT(r.replicas[1].dispatchedBatches, 0);
    EXPECT_GT(r.replicas[0].completedRequests, 0);
    EXPECT_GT(r.replicas[1].completedRequests, 0);
    expectConservation(r.serving);
}

TEST(Cluster, LeastLoadedAvoidsSlowReplica)
{
    // Replica 1 is 4x slower; least-loaded routing should send it
    // less work than round-robin does.
    ClusterConfig c = twoReplicaCluster(1.0);
    c.replicas[1].latency.baseSeconds = 4.0;
    c.router = RouterPolicy::RoundRobin;
    const ClusterReport rr = simulateCluster(c);
    c.router = RouterPolicy::LeastLoaded;
    const ClusterReport ll = simulateCluster(c);
    EXPECT_LT(ll.replicas[1].completedRequests,
              rr.replicas[1].completedRequests);
    EXPECT_GE(ll.serving.goodput, rr.serving.goodput);
}

TEST(Cluster, FailureDomainAwareRoutesAroundDeadDomain)
{
    // Replicas 0 and 1 share domain 0; replica 2 is alone in domain
    // 1. Kill replica 0 mid-run: the domain-aware router should move
    // strictly more work to the clean domain than least-loaded does.
    auto build = [](RouterPolicy policy) {
        ClusterConfig c;
        c.arrivalRate = 1.2;
        c.horizonSeconds = 400.0;
        c.replicas = {ReplicaSpec{unitModel(), 1, 0},
                      ReplicaSpec{unitModel(), 1, 0},
                      ReplicaSpec{unitModel(), 1, 1}};
        c.router = policy;
        c.chaos.events.push_back(
            {100.0, ChaosEventKind::KillReplica, 0, 200.0, 1.0});
        c.resilience.retry.maxRetries = 2;
        return c;
    };
    const ClusterReport ll =
        simulateCluster(build(RouterPolicy::LeastLoaded));
    const ClusterReport fda =
        simulateCluster(build(RouterPolicy::FailureDomainAware));
    EXPECT_GE(fda.replicas[2].completedRequests,
              ll.replicas[2].completedRequests);
    expectConservation(fda.serving);
}

TEST(Cluster, BreakerOpensOnFailuresAndRecovers)
{
    ClusterConfig c = twoReplicaCluster(1.0);
    c.horizonSeconds = 600.0;
    c.chaos.events.push_back(
        {100.0, ChaosEventKind::KillReplica, 1, 100.0, 1.0});
    c.breaker.failureThreshold = 1;
    c.breaker.openSeconds = 30.0;
    c.resilience.retry.maxRetries = 3;
    c.probe.intervalSeconds = 5.0;
    const ClusterReport r = simulateCluster(c);
    // The kill aborts in-flight work -> breaker opens; after the
    // outage the half-open trial succeeds -> breaker closes again.
    EXPECT_GE(r.serving.breakerOpens, 1);
    EXPECT_GE(r.serving.breakerCloses, 1);
    EXPECT_GE(r.replicas[1].breakerOpens, 1);
    EXPECT_GT(r.replicas[1].abortedBatches, 0);
    EXPECT_LT(r.replicas[1].availability, 1.0);
    EXPECT_EQ(r.replicas[0].availability, 1.0);
    expectConservation(r.serving);
}

TEST(Cluster, BreakerImprovesGoodputUnderReplicaKill)
{
    ClusterConfig c = twoReplicaCluster(1.5);
    c.horizonSeconds = 600.0;
    c.chaos.events.push_back(
        {100.0, ChaosEventKind::KillReplica, 1, 200.0, 1.0});
    c.resilience.retry.maxRetries = 3;
    const ClusterReport bare = simulateCluster(c);
    c.breaker.failureThreshold = 1;
    c.probe.intervalSeconds = 2.0;
    const ClusterReport guarded = simulateCluster(c);
    EXPECT_GE(guarded.serving.goodput, bare.serving.goodput);
}

TEST(Cluster, HedgingRescuesStragglerTail)
{
    // Replica 0's only GPU straggles 6x for the whole run, and load
    // is light enough that queueing is negligible — the tail is pure
    // service time. Hedges fire shortly after dispatch, re-issue the
    // stuck request on replica 1, and win.
    ClusterConfig c;
    c.arrivalRate = 0.2;
    c.maxBatch = 1;
    c.horizonSeconds = 1000.0;
    c.replicas = {ReplicaSpec{unitModel(), 1, 0},
                  ReplicaSpec{unitModel(), 1, 1}};
    c.chaos.events.push_back(
        {0.0, ChaosEventKind::StraggleGpu, 0, 0.0, 6.0});
    const ClusterReport bare = simulateCluster(c);
    c.hedge.delaySeconds =
        1.2 * hedgeDelayForQuantile(unitModel(), c.maxBatch, 1.0);
    const ClusterReport hedged = simulateCluster(c);
    EXPECT_GT(hedged.serving.hedgesIssued, 0);
    EXPECT_GT(hedged.serving.hedgesWon, 0);
    EXPECT_GT(hedged.serving.hedgeWastedSeconds, 0.0);
    EXPECT_LE(hedged.serving.hedgesWon,
              hedged.serving.hedgesIssued);
    EXPECT_LT(hedged.serving.p95Latency, bare.serving.p95Latency);
    // No double counting: each logical request completes once.
    EXPECT_LE(hedged.serving.completed, hedged.serving.arrived);
    expectConservation(hedged.serving);
}

TEST(Cluster, HedgeDelayQuantileIsMonotone)
{
    const LatencyModel m = unitModel();
    const double lo = hedgeDelayForQuantile(m, 8, 0.5);
    const double hi = hedgeDelayForQuantile(m, 8, 1.0);
    EXPECT_LE(lo, hi);
    EXPECT_DOUBLE_EQ(hi, m.batchSeconds(8));
    EXPECT_THROW(hedgeDelayForQuantile(m, 8, 0.0), FatalError);
    EXPECT_THROW(hedgeDelayForQuantile(m, 8, 1.5), FatalError);
}

TEST(Cluster, CheckpointAddsOverheadWhenFaultFree)
{
    ClusterConfig c = twoReplicaCluster(0.8);
    c.checkpoint.iterations = 50;
    c.checkpoint.intervalIterations = 10;
    c.checkpoint.costSeconds = 0.01;
    const ClusterReport r = simulateCluster(c);
    EXPECT_GT(r.serving.checkpointsTaken, 0);
    EXPECT_GT(r.serving.checkpointOverheadSeconds, 0.0);
    // Nothing faulted, so nothing was wasted or restored.
    EXPECT_EQ(r.serving.wastedGpuSeconds, 0.0);
    EXPECT_EQ(r.serving.restoredGpuSeconds, 0.0);
    EXPECT_EQ(r.serving.resumes, 0);
    expectConservation(r.serving);
}

TEST(Cluster, CheckpointReducesWastedWorkUnderKills)
{
    // Long requests (100 s service) on a flaky fleet: without
    // checkpoints every fault re-runs the request from scratch; with
    // them only the tail past the last checkpoint is lost.
    ClusterConfig c;
    c.arrivalRate = 0.02;
    c.maxBatch = 1;
    c.horizonSeconds = 2000.0;
    LatencyModel longModel;
    longModel.baseSeconds = 100.0;
    longModel.overheadFraction = 0.0;
    c.replicas = {ReplicaSpec{longModel, 1, 0},
                  ReplicaSpec{longModel, 1, 1}};
    c.resilience.faults.failureMtbfSeconds = 300.0;
    c.resilience.faults.failureMttrSeconds = 60.0;
    c.resilience.retry.maxRetries = 8;
    const ClusterReport bare = simulateCluster(c);
    c.checkpoint.iterations = 50;
    c.checkpoint.intervalIterations = 5;
    c.checkpoint.costSeconds = 0.05;
    const ClusterReport ckpt = simulateCluster(c);
    ASSERT_GT(bare.serving.wastedGpuSeconds, 0.0);
    EXPECT_GT(ckpt.serving.resumes, 0);
    EXPECT_GT(ckpt.serving.restoredGpuSeconds, 0.0);
    EXPECT_LT(ckpt.serving.wastedGpuSeconds,
              bare.serving.wastedGpuSeconds);
    expectConservation(ckpt.serving);
}

TEST(Cluster, CheckpointFromPipelineUsesDominantStage)
{
    const CheckpointPolicy p = checkpointFromPipeline(
        models::buildStableDiffusion(), 5, 0.02);
    EXPECT_GT(p.iterations, 1);
    EXPECT_EQ(p.intervalIterations, 5);
    EXPECT_TRUE(p.enabled());
    EXPECT_THROW(checkpointFromPipeline(
                     models::buildStableDiffusion(), 0, 0.02),
                 FatalError);
}

TEST(Cluster, NamedChaosScenariosCompile)
{
    for (const char* name :
         {"none", "kill-replica", "kill-replica-at-zero",
          "rolling-kill", "degrade-domain", "straggle-gpu"}) {
        const ChaosScenario s = namedChaosScenario(name, 2, 600.0);
        ClusterConfig c = twoReplicaCluster(0.8);
        c.horizonSeconds = 600.0;
        c.chaos = s;
        c.resilience.retry.maxRetries = 3;
        const ClusterReport r = simulateCluster(c);
        EXPECT_GT(r.serving.completed, 0) << name;
        expectConservation(r.serving);
    }
    EXPECT_THROW(namedChaosScenario("no-such-scenario", 2, 600.0),
                 FatalError);
}

TEST(Cluster, KillAtTimeZeroStartsMidOutage)
{
    ClusterConfig c = twoReplicaCluster(1.0);
    c.horizonSeconds = 600.0;
    c.chaos = namedChaosScenario("kill-replica-at-zero", 2, 600.0);
    c.resilience.retry.maxRetries = 2;
    const ClusterReport r = simulateCluster(c);
    // The target replica is dark from t=0; all early work lands on
    // the survivor, and the fleet still makes progress.
    EXPECT_LT(r.replicas[1].availability, 1.0);
    EXPECT_GT(r.serving.completed, 0);
    EXPECT_LT(r.serving.meanAvailability, 1.0);
    expectConservation(r.serving);
}

TEST(Cluster, DegradeDomainSlowsOnlyThatDomain)
{
    ClusterConfig c = twoReplicaCluster(1.0);
    const ClusterReport clean = simulateCluster(c);
    c.chaos.events.push_back(
        {0.0, ChaosEventKind::DegradeDomain, 0, 0.0, 3.0});
    const ClusterReport degraded = simulateCluster(c);
    // Same arrivals (chaos never touches the arrival stream), worse
    // latency.
    EXPECT_EQ(clean.serving.arrived, degraded.serving.arrived);
    EXPECT_GT(degraded.serving.p95Latency,
              clean.serving.p95Latency);
    // Slowdowns are not downtime: availability is unchanged.
    EXPECT_EQ(degraded.serving.meanAvailability, 1.0);
}

TEST(Cluster, ReportIsDeterministicAcrossRuns)
{
    ClusterConfig c = twoReplicaCluster(1.3);
    c.horizonSeconds = 500.0;
    c.chaos = namedChaosScenario("rolling-kill", 2, 500.0);
    c.breaker.failureThreshold = 2;
    c.hedge.delaySeconds = 6.0;
    c.checkpoint.iterations = 40;
    c.checkpoint.intervalIterations = 8;
    c.checkpoint.costSeconds = 0.02;
    c.resilience.retry.maxRetries = 4;
    c.resilience.deadline.deadlineSeconds = 90.0;
    const ClusterReport a = simulateCluster(c);
    const ClusterReport b = simulateCluster(c);
    EXPECT_EQ(a.serving.arrived, b.serving.arrived);
    EXPECT_EQ(a.serving.completed, b.serving.completed);
    EXPECT_EQ(a.serving.goodput, b.serving.goodput);
    EXPECT_EQ(a.serving.p95Latency, b.serving.p95Latency);
    EXPECT_EQ(a.serving.hedgesIssued, b.serving.hedgesIssued);
    EXPECT_EQ(a.serving.hedgesWon, b.serving.hedgesWon);
    EXPECT_EQ(a.serving.breakerOpens, b.serving.breakerOpens);
    EXPECT_EQ(a.serving.checkpointsTaken, b.serving.checkpointsTaken);
    EXPECT_EQ(a.serving.wastedGpuSeconds, b.serving.wastedGpuSeconds);
    EXPECT_EQ(a.serving.restoredGpuSeconds,
              b.serving.restoredGpuSeconds);
    EXPECT_EQ(a.serving.hedgeWastedSeconds,
              b.serving.hedgeWastedSeconds);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
        EXPECT_EQ(a.replicas[i].dispatchedBatches,
                  b.replicas[i].dispatchedBatches);
        EXPECT_EQ(a.replicas[i].busySeconds,
                  b.replicas[i].busySeconds);
    }
    ASSERT_EQ(a.domainAvailability.size(),
              b.domainAvailability.size());
    for (std::size_t d = 0; d < a.domainAvailability.size(); ++d)
        EXPECT_EQ(a.domainAvailability[d], b.domainAvailability[d]);
}

TEST(Cluster, HeterogeneousReplicasReportPerReplicaStats)
{
    ClusterConfig c;
    c.arrivalRate = 1.0;
    c.horizonSeconds = 300.0;
    LatencyModel fast = unitModel();
    LatencyModel slow = unitModel();
    slow.baseSeconds = 2.0;
    c.replicas = {ReplicaSpec{fast, 2, 0}, ReplicaSpec{slow, 1, 1}};
    c.router = RouterPolicy::LeastLoaded;
    const ClusterReport r = simulateCluster(c);
    ASSERT_EQ(r.replicas.size(), 2u);
    EXPECT_GT(r.replicas[0].busySeconds, 0.0);
    EXPECT_EQ(r.serving.arrived,
              r.serving.completed + r.serving.backlog);
    ASSERT_EQ(r.domainAvailability.size(), 2u);
    EXPECT_EQ(r.domainAvailability[0], 1.0);
}

} // namespace
} // namespace mmgen::serving
