/**
 * @file
 * Memory-aware admission: the static liveness bound wired into the
 * serving simulators. A zero bound sheds every arrival before
 * dispatch, a positive bound clamps the batch below the configured
 * maximum, an unset or generous bound leaves the default path
 * bit-identical, and the policy constructor agrees with the analyzer
 * it wraps.
 */

#include <gtest/gtest.h>

#include "exec/memory.hh"
#include "models/model_suite.hh"
#include "serving/cluster.hh"
#include "serving/simulator.hh"
#include "serving/telemetry_hooks.hh"
#include "util/logging.hh"

namespace mmgen::serving {
namespace {

LatencyModel
unitModel()
{
    LatencyModel m;
    m.baseSeconds = 1.0;
    m.overheadFraction = 0.0;
    return m;
}

TEST(MemoryAdmission, ZeroBoundShedsEverything)
{
    ServingConfig cfg;
    cfg.arrivalRate = 0.5;
    cfg.horizonSeconds = 200.0;
    ResilienceConfig res;
    res.admission.memoryFeasibleBatch = 0;
    const ServingReport r = simulateServing(cfg, unitModel(), res);
    EXPECT_GT(r.arrived, 0);
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.shed, r.arrived);
    EXPECT_EQ(r.memoryShed, r.arrived);
    EXPECT_EQ(r.effectiveMaxBatch, 0);
    EXPECT_EQ(r.maxBatchDispatched, 0);
    EXPECT_EQ(r.gpuUtilization, 0.0);
}

TEST(MemoryAdmission, PositiveBoundClampsBatch)
{
    // Saturating load so the batcher would fill maxBatch = 4 if the
    // memory bound did not cap it at 2.
    ServingConfig cfg;
    cfg.arrivalRate = 3.0;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 300.0;
    ResilienceConfig res;
    res.admission.memoryFeasibleBatch = 2;
    const ServingReport r = simulateServing(cfg, unitModel(), res);
    EXPECT_EQ(r.effectiveMaxBatch, 2);
    EXPECT_GT(r.maxBatchDispatched, 0);
    EXPECT_LE(r.maxBatchDispatched, 2);
    EXPECT_LE(r.meanBatch, 2.0);

    ResilienceConfig unbounded;
    const ServingReport free_run =
        simulateServing(cfg, unitModel(), unbounded);
    EXPECT_EQ(free_run.maxBatchDispatched, 4);
}

TEST(MemoryAdmission, GenerousBoundIsBitIdentical)
{
    // A bound at or above maxBatch never alters a dispatch decision,
    // so the whole report must be byte-for-byte the default one.
    ServingConfig cfg;
    cfg.arrivalRate = 1.5;
    cfg.horizonSeconds = 400.0;
    ResilienceConfig plain;
    ResilienceConfig bounded;
    bounded.admission.memoryFeasibleBatch = exec::kUnboundedBatch;
    const ServingReport a = simulateServing(cfg, unitModel(), plain);
    const ServingReport b = simulateServing(cfg, unitModel(), bounded);
    EXPECT_TRUE(reportsBitIdentical(a, b));
}

TEST(MemoryAdmission, PolicyMatchesAnalyzer)
{
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const AdmissionPolicy policy = memoryAwareAdmission(sd, gpu, 64);
    EXPECT_EQ(policy.maxQueueLength, 64);
    EXPECT_TRUE(policy.hasMemoryBound());
    EXPECT_EQ(policy.memoryFeasibleBatch,
              exec::maxFeasibleBatch(sd, gpu));
    EXPECT_GT(policy.memoryFeasibleBatch, 0);

    ResilienceConfig res;
    res.admission = policy;
    EXPECT_FALSE(res.trivial());
    EXPECT_NO_THROW(res.validate());
}

TEST(MemoryAdmission, ValidateRejectsBelowUnset)
{
    ResilienceConfig res;
    res.admission.memoryFeasibleBatch = -2;
    EXPECT_THROW(res.validate(), FatalError);
}

TEST(MemoryAdmission, ClusterShedsOnZeroBound)
{
    ClusterConfig cfg;
    cfg.arrivalRate = 0.5;
    cfg.horizonSeconds = 200.0;
    cfg.replicas = {ReplicaSpec{unitModel(), 1, 0}};
    cfg.resilience.admission.memoryFeasibleBatch = 0;
    const ClusterReport r = simulateCluster(cfg);
    EXPECT_GT(r.serving.arrived, 0);
    EXPECT_EQ(r.serving.completed, 0);
    EXPECT_EQ(r.serving.memoryShed, r.serving.arrived);
    EXPECT_EQ(r.serving.maxBatchDispatched, 0);
}

TEST(MemoryAdmission, ClusterClampMirrorsSimulator)
{
    ClusterConfig cfg;
    cfg.arrivalRate = 3.0;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 300.0;
    cfg.replicas = {ReplicaSpec{unitModel(), 1, 0}};
    cfg.resilience.admission.memoryFeasibleBatch = 2;
    const ClusterReport r = simulateCluster(cfg);
    EXPECT_EQ(r.serving.effectiveMaxBatch, 2);
    EXPECT_GT(r.serving.maxBatchDispatched, 0);
    EXPECT_LE(r.serving.maxBatchDispatched, 2);
}

} // namespace
} // namespace mmgen::serving
