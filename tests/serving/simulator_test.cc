/**
 * @file
 * Tests for the serving simulator: queueing-theory sanity, batching
 * behaviour, determinism.
 */

#include <gtest/gtest.h>

#include "models/stable_diffusion.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {
namespace {

LatencyModel
unitModel()
{
    LatencyModel m;
    m.baseSeconds = 1.0;
    m.overheadFraction = 0.0; // service scales exactly with batch
    return m;
}

TEST(LatencyModel, BatchScaling)
{
    LatencyModel m;
    m.baseSeconds = 2.0;
    m.overheadFraction = 0.25;
    EXPECT_DOUBLE_EQ(m.batchSeconds(1), 2.0);
    EXPECT_DOUBLE_EQ(m.batchSeconds(4), 2.0 * (0.25 + 0.75 * 4));
    EXPECT_THROW(m.batchSeconds(0), FatalError);
}

TEST(LatencyModel, FromProfileIsPositiveAndBounded)
{
    const LatencyModel m = profileLatencyModel(
        models::buildStableDiffusion(), hw::GpuSpec::a100_80gb());
    EXPECT_GT(m.baseSeconds, 0.1);
    EXPECT_LT(m.baseSeconds, 10.0);
    EXPECT_GE(m.overheadFraction, 0.02);
    EXPECT_LE(m.overheadFraction, 0.5);
}

TEST(Simulator, Deterministic)
{
    ServingConfig cfg;
    cfg.arrivalRate = 0.5;
    cfg.horizonSeconds = 200.0;
    const ServingReport a = simulateServing(cfg, unitModel());
    const ServingReport b = simulateServing(cfg, unitModel());
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.p95Latency, b.p95Latency);
}

TEST(Simulator, LightLoadHasNoQueueing)
{
    // lambda = 0.1 req/s against 1 req/s capacity: latency ~ service.
    ServingConfig cfg;
    cfg.arrivalRate = 0.1;
    cfg.horizonSeconds = 2000.0;
    cfg.maxBatch = 1;
    const ServingReport r = simulateServing(cfg, unitModel());
    EXPECT_LT(r.offeredLoad, 0.2);
    EXPECT_NEAR(r.p50Latency, 1.0, 0.05);
    EXPECT_LT(r.p95Latency, 2.0);
    EXPECT_NEAR(r.gpuUtilization, 0.1, 0.03);
    EXPECT_NEAR(static_cast<double>(r.completed),
                static_cast<double>(r.arrived), 3.0);
}

TEST(Simulator, LatencyGrowsWithLoad)
{
    ServingConfig cfg;
    cfg.horizonSeconds = 1000.0;
    cfg.maxBatch = 1;
    double prev_p95 = 0.0;
    for (double rate : {0.2, 0.5, 0.8}) {
        cfg.arrivalRate = rate;
        const ServingReport r = simulateServing(cfg, unitModel());
        EXPECT_GT(r.p95Latency, prev_p95) << "rate " << rate;
        prev_p95 = r.p95Latency;
    }
}

TEST(Simulator, SaturationBuildsBacklog)
{
    ServingConfig cfg;
    cfg.arrivalRate = 2.0; // 2x a single server's capacity
    cfg.horizonSeconds = 300.0;
    cfg.maxBatch = 1;
    const ServingReport r = simulateServing(cfg, unitModel());
    EXPECT_GT(r.offeredLoad, 1.5);
    EXPECT_GT(r.backlog, 100);
    EXPECT_GT(r.gpuUtilization, 0.95);
}

TEST(Simulator, BatchingRescuesOverload)
{
    // 2 req/s against 1 req/s unbatched capacity: batch-4 service
    // with zero overhead fraction keeps per-request capacity at
    // 1 req/s... so allow amortization via overheadFraction.
    LatencyModel amortized;
    amortized.baseSeconds = 1.0;
    amortized.overheadFraction = 0.8; // batching is nearly free
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.horizonSeconds = 500.0;
    cfg.maxBatch = 8;
    const ServingReport batched = simulateServing(cfg, amortized);
    cfg.maxBatch = 1;
    const ServingReport unbatched = simulateServing(cfg, amortized);
    EXPECT_LT(batched.p95Latency, 0.3 * unbatched.p95Latency);
    EXPECT_GT(batched.meanBatch, 1.2);
    EXPECT_LT(batched.backlog, unbatched.backlog);
}

TEST(Simulator, MoreGpusLowerLatency)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.5;
    cfg.horizonSeconds = 500.0;
    cfg.maxBatch = 1;
    cfg.numGpus = 1;
    const ServingReport one = simulateServing(cfg, unitModel());
    cfg.numGpus = 4;
    const ServingReport four = simulateServing(cfg, unitModel());
    EXPECT_LT(four.p95Latency, one.p95Latency);
    EXPECT_LT(four.offeredLoad, one.offeredLoad);
}

TEST(Simulator, DeterministicFullReport)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.7;
    cfg.numGpus = 3;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 400.0;
    const ServingReport a = simulateServing(cfg, unitModel());
    const ServingReport b = simulateServing(cfg, unitModel());
    EXPECT_EQ(a.arrived, b.arrived);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.drainCompleted, b.drainCompleted);
    EXPECT_EQ(a.backlog, b.backlog);
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.meanBatch, b.meanBatch);
    EXPECT_EQ(a.gpuUtilization, b.gpuUtilization);
    EXPECT_EQ(a.drainGpuSeconds, b.drainGpuSeconds);
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
}

TEST(Simulator, SaturationBacklogGrowsWithHorizon)
{
    // At offered load > 1 the queue diverges: doubling the horizon
    // should roughly double the backlog, not plateau.
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 200.0;
    const ServingReport short_r = simulateServing(cfg, unitModel());
    cfg.horizonSeconds = 400.0;
    const ServingReport long_r = simulateServing(cfg, unitModel());
    EXPECT_GT(short_r.offeredLoad, 1.0);
    EXPECT_GT(long_r.backlog, short_r.backlog * 3 / 2);
}

TEST(Simulator, DrainWorkDoesNotInflateThroughput)
{
    // Saturated single GPU: the seed simulator drained completions
    // past the horizon into `throughput` and let busy time exceed the
    // horizon (masked by the min(1, .) clamp). In-horizon throughput
    // is bounded by service capacity, utilization by 1.
    ServingConfig cfg;
    cfg.arrivalRate = 3.0;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 300.0;
    const ServingReport r = simulateServing(cfg, unitModel());
    EXPECT_LE(r.throughput, 1.0 / unitModel().baseSeconds + 1e-9);
    EXPECT_LE(r.gpuUtilization, 1.0 + 1e-12);
    EXPECT_GT(r.gpuUtilization, 0.95);
    EXPECT_EQ(r.completed,
              static_cast<std::int64_t>(r.throughput *
                                        cfg.horizonSeconds + 0.5) +
                  r.drainCompleted);
}

TEST(Simulator, SingleLongRequestSpanningHorizon)
{
    // One request whose service time dwarfs the horizon: it never
    // completes, occupies its GPU to the horizon, and counts as
    // backlog — with no phantom throughput or over-unity utilization.
    LatencyModel slow;
    slow.baseSeconds = 1000.0;
    slow.overheadFraction = 0.0;
    ServingConfig cfg;
    cfg.arrivalRate = 0.05;
    cfg.maxBatch = 1;
    cfg.horizonSeconds = 100.0;
    const ServingReport r = simulateServing(cfg, slow);
    ASSERT_GE(r.arrived, 1);
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.drainCompleted, 0);
    EXPECT_DOUBLE_EQ(r.throughput, 0.0);
    EXPECT_EQ(r.backlog, r.arrived);
    EXPECT_GT(r.gpuUtilization, 0.0);
    EXPECT_LE(r.gpuUtilization, 1.0);
}

TEST(Simulator, MaxBatchOneNeverBatches)
{
    ServingConfig cfg;
    cfg.arrivalRate = 2.0;
    cfg.maxBatch = 1;
    cfg.numGpus = 2;
    cfg.horizonSeconds = 300.0;
    const ServingReport r = simulateServing(cfg, unitModel());
    EXPECT_DOUBLE_EQ(r.meanBatch, 1.0);
}

TEST(Simulator, Validation)
{
    ServingConfig cfg;
    cfg.arrivalRate = 0.0;
    EXPECT_THROW(simulateServing(cfg, unitModel()), FatalError);
    cfg.arrivalRate = 1.0;
    cfg.numGpus = 0;
    EXPECT_THROW(simulateServing(cfg, unitModel()), FatalError);
}

} // namespace
} // namespace mmgen::serving
