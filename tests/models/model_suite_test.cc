/**
 * @file
 * Structural tests over the eight-model suite: every model builds,
 * parameter counts land near the published sizes (paper Table I), and
 * pipeline structure matches the paper's Fig. 2 decomposition.
 */

#include <gtest/gtest.h>

#include <set>

#include "models/imagen.hh"
#include "models/llama.hh"
#include "models/make_a_video.hh"
#include "models/model_suite.hh"
#include "models/muse.hh"
#include "models/parti.hh"
#include "models/phenaki.hh"
#include "models/stable_diffusion.hh"
#include "util/logging.hh"

namespace mmgen::models {
namespace {

TEST(ModelSuite, EnumeratesEightModels)
{
    EXPECT_EQ(allModels().size(), 8u);
    EXPECT_EQ(imageVideoModels().size(), 7u);
    EXPECT_EQ(modelName(ModelId::StableDiffusion), "StableDiffusion");
}

/** Every model builds and produces a consistent pipeline. */
class BuildsAndTraces : public ::testing::TestWithParam<ModelId>
{};

TEST_P(BuildsAndTraces, AllStagesTraceable)
{
    const graph::Pipeline p = buildModel(GetParam());
    EXPECT_EQ(p.name, modelName(GetParam()));
    EXPECT_FALSE(p.stages.empty());
    for (std::size_t si = 0; si < p.stages.size(); ++si) {
        const graph::Trace t = p.traceStage(si, 0);
        EXPECT_FALSE(t.empty()) << p.stages[si].name;
        const graph::Trace last =
            p.traceStage(si, p.stages[si].iterations - 1);
        EXPECT_FALSE(last.empty());
    }
    EXPECT_GT(p.totalParams(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, BuildsAndTraces, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<ModelId>& info) {
        return modelName(info.param);
    });

TEST(ModelParams, LandNearPublishedSizes)
{
    // Paper Table I: SD 1.45B, Imagen 3B, Muse 3B, Parti 20B.
    // Our reproductions must land in the right ballpark (±50%).
    auto params_b = [](ModelId id) {
        return static_cast<double>(buildModel(id).totalParams()) / 1e9;
    };
    EXPECT_NEAR(params_b(ModelId::StableDiffusion), 1.2, 0.6);
    EXPECT_NEAR(params_b(ModelId::Imagen), 3.0, 1.5);
    EXPECT_NEAR(params_b(ModelId::Muse), 3.0, 1.5);
    EXPECT_NEAR(params_b(ModelId::Parti), 20.0, 6.0);
    EXPECT_NEAR(params_b(ModelId::LLaMA), 6.7, 1.0);
}

TEST(ModelClasses, MatchPaperTaxonomy)
{
    EXPECT_EQ(buildModel(ModelId::LLaMA).klass, graph::ModelClass::LLM);
    EXPECT_EQ(buildModel(ModelId::Imagen).klass,
              graph::ModelClass::DiffusionPixel);
    EXPECT_EQ(buildModel(ModelId::StableDiffusion).klass,
              graph::ModelClass::DiffusionLatent);
    EXPECT_EQ(buildModel(ModelId::ProdImage).klass,
              graph::ModelClass::DiffusionLatent);
    EXPECT_EQ(buildModel(ModelId::Muse).klass,
              graph::ModelClass::TransformerTTI);
    EXPECT_EQ(buildModel(ModelId::Parti).klass,
              graph::ModelClass::TransformerTTI);
    EXPECT_EQ(buildModel(ModelId::MakeAVideo).klass,
              graph::ModelClass::DiffusionTTV);
    EXPECT_EQ(buildModel(ModelId::Phenaki).klass,
              graph::ModelClass::TransformerTTV);
}

TEST(StableDiffusion, PipelineMatchesFig2)
{
    const graph::Pipeline p = buildStableDiffusion();
    ASSERT_EQ(p.stages.size(), 3u);
    EXPECT_EQ(p.stages[0].name, "text_encoder");
    EXPECT_EQ(p.stages[1].name, "unet");
    EXPECT_EQ(p.stages[1].iterations, 50);
    EXPECT_FALSE(p.stages[1].perIterationShapes);
    EXPECT_EQ(p.stages[2].name, "vae_decoder");
}

TEST(StableDiffusion, SequenceLengthsSpanTableIRange)
{
    // Self-attention at latent 64/32/16 plus the 8x8 mid block:
    // sequence lengths 4096, 1024, 256, 64 (paper Figs. 7/8).
    const graph::Pipeline p = buildStableDiffusion();
    const graph::Trace t = p.traceStage(1, 0);
    std::set<std::int64_t> seqs;
    for (const auto& op : t.ops()) {
        if (op.kind == graph::OpKind::Attention) {
            const auto& a = op.as<graph::AttentionAttrs>();
            if (a.kind == graph::AttentionKind::SelfSpatial)
                seqs.insert(a.seqQ);
        }
    }
    EXPECT_EQ(seqs, (std::set<std::int64_t>{64, 256, 1024, 4096}));
}

TEST(StableDiffusion, ClassifierFreeGuidanceDoublesUNetWork)
{
    StableDiffusionConfig cfg;
    cfg.classifierFreeGuidance = true;
    const graph::Pipeline guided = buildStableDiffusion(cfg);
    const graph::Pipeline plain = buildStableDiffusion();
    // UNet batch doubles; weights do not.
    const graph::Trace g = guided.traceStage(1, 0);
    const graph::Trace p = plain.traceStage(1, 0);
    EXPECT_EQ(g.totalParams(), p.totalParams());
    const auto& ga = g.ops()[0].as<graph::ConvAttrs>();
    const auto& pa = p.ops()[0].as<graph::ConvAttrs>();
    EXPECT_EQ(ga.batch, 2 * pa.batch);
}

TEST(StableDiffusion, ImageSizeValidation)
{
    StableDiffusionConfig cfg;
    cfg.imageSize = 500; // not divisible by the VAE scale
    EXPECT_THROW(buildStableDiffusion(cfg), FatalError);
}

TEST(Imagen, CascadeHasThreeDiffusionStages)
{
    const graph::Pipeline p = buildImagen();
    ASSERT_EQ(p.stages.size(), 4u);
    EXPECT_EQ(p.stages[1].name, "base_unet");
    EXPECT_EQ(p.stages[2].name, "sr1_unet");
    EXPECT_EQ(p.stages[3].name, "sr2_unet");

    // SR stages must not contain spatial self-attention (efficient
    // UNet drops it at high resolution; paper Section II-B).
    for (std::size_t si : {2u, 3u}) {
        const graph::Trace t = p.traceStage(si, 0);
        for (const auto& op : t.ops()) {
            if (op.kind != graph::OpKind::Attention)
                continue;
            EXPECT_NE(op.as<graph::AttentionAttrs>().kind,
                      graph::AttentionKind::SelfSpatial)
                << "self-attention found in SR stage " << si;
        }
    }
}

TEST(Llama, PrefillThenAutoregressiveDecode)
{
    const LlamaConfig cfg;
    const graph::Pipeline p = buildLlama(cfg);
    ASSERT_EQ(p.stages.size(), 2u);
    EXPECT_FALSE(p.stages[0].perIterationShapes);
    EXPECT_TRUE(p.stages[1].perIterationShapes);
    EXPECT_EQ(p.stages[1].iterations, cfg.decodeTokens);

    // KV length grows with the decode step.
    const graph::Trace first = p.traceStage(1, 0);
    const graph::Trace last = p.traceStage(1, cfg.decodeTokens - 1);
    auto kv_of = [](const graph::Trace& t) {
        for (const auto& op : t.ops())
            if (op.kind == graph::OpKind::Attention)
                return op.as<graph::AttentionAttrs>().seqKv;
        return std::int64_t{-1};
    };
    EXPECT_EQ(kv_of(first), cfg.promptLen + 1);
    EXPECT_EQ(kv_of(last), cfg.promptLen + cfg.decodeTokens);
}

TEST(Parti, DecodesEveryImageToken)
{
    const PartiConfig cfg;
    const graph::Pipeline p = buildParti(cfg);
    EXPECT_EQ(p.stages[1].iterations, cfg.imageTokens());
    EXPECT_TRUE(p.stages[1].perIterationShapes);
}

TEST(Muse, ParallelDecodingHasConstantShapes)
{
    const graph::Pipeline p = buildMuse();
    // Every refinement step has identical shapes: the engine may fold.
    EXPECT_FALSE(p.stages[1].perIterationShapes);
    EXPECT_GT(p.stages[1].iterations, 1);
}

TEST(MakeAVideo, TemporalLayersPresentInBaseAndInterp)
{
    const graph::Pipeline p = buildMakeAVideo();
    for (std::size_t si : {1u, 2u}) {
        const graph::Trace t = p.traceStage(si, 0);
        bool temporal_attn = false, conv3d = false;
        for (const auto& op : t.ops()) {
            if (op.kind == graph::OpKind::Attention &&
                op.as<graph::AttentionAttrs>().kind ==
                    graph::AttentionKind::Temporal) {
                temporal_attn = true;
            }
            conv3d |= op.kind == graph::OpKind::Conv3D;
        }
        EXPECT_TRUE(temporal_attn) << "stage " << si;
        EXPECT_TRUE(conv3d) << "stage " << si;
    }
}

TEST(Phenaki, ChunkedAutoregressiveInTime)
{
    const PhenakiConfig cfg;
    EXPECT_EQ(cfg.timeChunks(),
              (cfg.frames + cfg.framesPerChunk - 1) / cfg.framesPerChunk);
    const graph::Pipeline p = buildPhenaki(cfg);
    EXPECT_EQ(p.stages[1].iterations,
              cfg.maskgitSteps * cfg.timeChunks());
    // The C-ViViT decoder carries temporal attention.
    const graph::Trace t = p.traceStage(2, 0);
    bool temporal = false;
    for (const auto& op : t.ops()) {
        if (op.kind == graph::OpKind::Attention)
            temporal |= op.as<graph::AttentionAttrs>().kind ==
                        graph::AttentionKind::Temporal;
    }
    EXPECT_TRUE(temporal);
}

} // namespace
} // namespace mmgen::models
