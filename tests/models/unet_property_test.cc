/**
 * @file
 * Property tests over the UNet builder: for any valid configuration,
 * the forward pass preserves the input shape, consumes exactly its
 * skip connections, and its attention sequence lengths follow the
 * configured resolution ladder.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "models/blocks.hh"

namespace mmgen::models {
namespace {

using Param = std::tuple<std::int64_t /*latent*/, int /*levels*/,
                         int /*res blocks*/, bool /*temporal*/>;

class UNetSweep : public ::testing::TestWithParam<Param>
{};

TEST_P(UNetSweep, ShapePreservedAndLadderRespected)
{
    const auto [latent, levels, res_blocks, temporal] = GetParam();

    UNetConfig cfg;
    cfg.inChannels = 4;
    cfg.baseChannels = 32;
    cfg.channelMult.assign(levels, 1);
    for (int i = 1; i < levels; ++i)
        cfg.channelMult[i] = std::min<std::int64_t>(4, 1LL << i);
    cfg.numResBlocks = res_blocks;
    cfg.attnDownFactors = {1LL << (levels - 1)};
    cfg.crossAttnDownFactors = cfg.attnDownFactors;
    cfg.attnHeads = 4;
    cfg.temporal = temporal;
    cfg.frames = temporal ? 4 : 1;

    graph::Trace t;
    graph::GraphBuilder b(t);
    const TensorDesc out = unetForward(b, cfg, latent, latent);

    // Output shape equals input shape.
    const std::vector<std::int64_t> want =
        temporal ? std::vector<std::int64_t>{1, 4, 4, latent, latent}
                 : std::vector<std::int64_t>{1, 4, latent, latent};
    EXPECT_EQ(out.shape(), want);

    // Attention only at the configured factor's resolution.
    const std::int64_t want_res = latent / (1LL << (levels - 1));
    std::set<std::int64_t> self_seqs;
    for (const auto& op : t.ops()) {
        if (op.kind != graph::OpKind::Attention)
            continue;
        const auto& a = op.as<graph::AttentionAttrs>();
        if (a.kind == graph::AttentionKind::SelfSpatial)
            self_seqs.insert(a.seqQ);
        if (temporal && a.kind == graph::AttentionKind::Temporal) {
            EXPECT_EQ(a.seqQ, 4);
        }
    }
    EXPECT_EQ(self_seqs,
              (std::set<std::int64_t>{want_res * want_res}));

    // Parameter count is positive and independent of the input size.
    graph::Trace t2;
    graph::GraphBuilder b2(t2);
    unetForward(b2, cfg, latent * 2, latent * 2);
    EXPECT_EQ(t.totalParams(), t2.totalParams());
    EXPECT_GT(t.totalParams(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, UNetSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(16, 32, 64),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2),
                       ::testing::Values(false, true)));

} // namespace
} // namespace mmgen::models
