/**
 * @file
 * Tests for the architectural building blocks.
 */

#include <gtest/gtest.h>

#include <map>

#include "models/blocks.hh"
#include "util/logging.hh"

namespace mmgen::models {
namespace {

using graph::AttentionAttrs;
using graph::GraphBuilder;
using graph::Op;
using graph::OpKind;
using graph::Trace;

/** Count ops of a kind in a trace. */
std::int64_t
countKind(const Trace& t, OpKind kind)
{
    std::int64_t n = 0;
    for (const auto& op : t.ops())
        n += op.kind == kind;
    return n;
}

/** Collect attention ops. */
std::vector<AttentionAttrs>
attentions(const Trace& t)
{
    std::vector<AttentionAttrs> v;
    for (const auto& op : t.ops())
        if (op.kind == OpKind::Attention)
            v.push_back(op.as<AttentionAttrs>());
    return v;
}

TEST(TransformerStack, EmitsPerLayerStructure)
{
    Trace t;
    GraphBuilder b(t);
    TransformerConfig cfg;
    cfg.layers = 4;
    cfg.dim = 256;
    cfg.heads = 8;
    transformerStack(b, cfg, TensorDesc({1, 64, 256}, DType::F16));
    EXPECT_EQ(countKind(t, OpKind::Attention), 4);
    // q,k,v,o + 2 ffn per layer.
    EXPECT_EQ(countKind(t, OpKind::Linear), 4 * 6);
    const auto attn = attentions(t);
    EXPECT_EQ(attn[0].seqQ, 64);
    EXPECT_EQ(attn[0].headDim, 32);
    EXPECT_FALSE(attn[0].causal);
}

TEST(TransformerStack, CrossAttentionAddsSublayer)
{
    Trace t;
    GraphBuilder b(t);
    TransformerConfig cfg;
    cfg.layers = 2;
    cfg.dim = 256;
    cfg.heads = 8;
    cfg.crossAttention = true;
    cfg.contextLen = 77;
    transformerStack(b, cfg, TensorDesc({1, 64, 256}, DType::F16));
    const auto attn = attentions(t);
    EXPECT_EQ(attn.size(), 4u);
    EXPECT_EQ(attn[1].kind, graph::AttentionKind::CrossText);
    EXPECT_EQ(attn[1].seqKv, 77);
}

TEST(TransformerStack, ValidatesInput)
{
    Trace t;
    GraphBuilder b(t);
    TransformerConfig cfg;
    cfg.dim = 256;
    cfg.heads = 7; // does not divide
    EXPECT_THROW(
        transformerStack(b, cfg, TensorDesc({1, 8, 256}, DType::F16)),
        FatalError);
    cfg.heads = 8;
    EXPECT_THROW(
        transformerStack(b, cfg, TensorDesc({1, 8, 128}, DType::F16)),
        FatalError);
}

TEST(TransformerDecodeStep, SingleQueryAgainstCache)
{
    Trace t;
    GraphBuilder b(t);
    TransformerConfig cfg;
    cfg.layers = 3;
    cfg.dim = 512;
    cfg.heads = 8;
    cfg.causal = true;
    transformerDecodeStep(b, cfg, 1, 100);
    const auto attn = attentions(t);
    ASSERT_EQ(attn.size(), 3u);
    for (const auto& a : attn) {
        EXPECT_EQ(a.seqQ, 1);
        EXPECT_EQ(a.seqKv, 100);
    }
}

TEST(UNetConfig, LevelHelpers)
{
    UNetConfig cfg;
    cfg.baseChannels = 320;
    cfg.channelMult = {1, 2, 4, 4};
    cfg.attnDownFactors = {1, 2, 4};
    EXPECT_EQ(cfg.levelChannels(0), 320);
    EXPECT_EQ(cfg.levelChannels(2), 1280);
    EXPECT_THROW(cfg.levelChannels(4), FatalError);
    EXPECT_TRUE(cfg.hasAttnAt(2));
    EXPECT_FALSE(cfg.hasAttnAt(8));
    cfg.resBlocksPerLevel = {1, 2};
    EXPECT_THROW(cfg.resBlocksAt(0), FatalError); // arity mismatch
    cfg.resBlocksPerLevel = {1, 2, 3, 4};
    EXPECT_EQ(cfg.resBlocksAt(3), 4);
    cfg.attnHeadDim = 64;
    EXPECT_EQ(cfg.headsFor(1280), 20);
    EXPECT_THROW(cfg.headsFor(100), FatalError);
}

TEST(UNetForward, SymmetricLadderConsumesSkips)
{
    Trace t;
    GraphBuilder b(t);
    UNetConfig cfg;
    cfg.inChannels = 4;
    cfg.baseChannels = 32;
    cfg.channelMult = {1, 2};
    cfg.numResBlocks = 1;
    cfg.attnDownFactors = {2};
    cfg.crossAttnDownFactors = {2};
    const TensorDesc out = unetForward(b, cfg, 16, 16);
    EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 4, 16, 16}));
    EXPECT_GT(countKind(t, OpKind::Conv2D), 8);
    EXPECT_GT(countKind(t, OpKind::Attention), 0);
}

TEST(UNetForward, AttentionSitesFollowConfiguredFactors)
{
    Trace t;
    GraphBuilder b(t);
    UNetConfig cfg;
    cfg.inChannels = 4;
    cfg.baseChannels = 64;
    cfg.channelMult = {1, 2, 4};
    cfg.numResBlocks = 1;
    cfg.attnDownFactors = {2};
    cfg.crossAttnDownFactors = {};
    cfg.midBlockAttention = false;
    cfg.attnHeads = 8;
    unetForward(b, cfg, 32, 32);
    for (const auto& a : attentions(t)) {
        // Attention only at factor 2: 16x16 positions.
        EXPECT_EQ(a.seqQ, 256);
        EXPECT_EQ(a.kind, graph::AttentionKind::SelfSpatial);
    }
    EXPECT_GT(attentions(t).size(), 0u);
}

TEST(UNetForward, MidBlockAttentionFlag)
{
    UNetConfig cfg;
    cfg.inChannels = 4;
    cfg.baseChannels = 64;
    cfg.channelMult = {1, 2};
    cfg.numResBlocks = 1;
    cfg.attnDownFactors = {};
    cfg.crossAttnDownFactors = {};
    for (bool mid : {false, true}) {
        Trace t;
        GraphBuilder b(t);
        cfg.midBlockAttention = mid;
        unetForward(b, cfg, 16, 16);
        EXPECT_EQ(countKind(t, OpKind::Attention) > 0, mid);
    }
}

TEST(UNetForward, TemporalAddsTemporalAttentionAndConv3d)
{
    Trace t;
    GraphBuilder b(t);
    UNetConfig cfg;
    cfg.inChannels = 4;
    cfg.baseChannels = 32;
    cfg.channelMult = {1, 2};
    cfg.numResBlocks = 1;
    cfg.attnDownFactors = {2};
    cfg.crossAttnDownFactors = {2};
    cfg.temporal = true;
    cfg.frames = 8;
    unetForward(b, cfg, 16, 16);
    EXPECT_EQ(countKind(t, OpKind::Conv2D), 0);
    EXPECT_GT(countKind(t, OpKind::Conv3D), 0);
    bool saw_temporal = false;
    for (const auto& a : attentions(t)) {
        if (a.kind == graph::AttentionKind::Temporal) {
            saw_temporal = true;
            EXPECT_EQ(a.seqQ, 8);
            EXPECT_GT(a.featureStrideElems, 1);
            EXPECT_EQ(a.seqStrideElems, a.batch); // H*W positions
        }
    }
    EXPECT_TRUE(saw_temporal);
}

TEST(TextEncoder, EmitsEmbeddingAndStack)
{
    Trace t;
    GraphBuilder b(t);
    TextEncoderConfig cfg;
    cfg.layers = 2;
    cfg.dim = 128;
    cfg.heads = 4;
    cfg.seqLen = 77;
    const TensorDesc out = textEncoder(b, cfg);
    EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 77, 128}));
    EXPECT_EQ(countKind(t, OpKind::Embedding), 1);
    EXPECT_EQ(countKind(t, OpKind::Attention), 2);
}

TEST(ImageDecoder, UpsamplesToPixels)
{
    Trace t;
    GraphBuilder b(t);
    ImageDecoderConfig cfg;
    cfg.latentChannels = 4;
    cfg.baseChannels = 32;
    cfg.channelMult = {1, 2, 4, 4};
    const TensorDesc out = imageDecoder(b, cfg, 1, 64, 64);
    // Three upsamples (levels - 1): 64 -> 512.
    EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{1, 3, 512, 512}));
    EXPECT_EQ(countKind(t, OpKind::Upsample), 3);
}

TEST(Blocks, ResnetSkipProjectionOnlyOnChannelChange)
{
    UNetConfig cfg;
    Trace t1;
    GraphBuilder b1(t1);
    resnetBlock(b1, cfg, TensorDesc({1, 64, 8, 8}, DType::F16), 64);
    Trace t2;
    GraphBuilder b2(t2);
    resnetBlock(b2, cfg, TensorDesc({1, 64, 8, 8}, DType::F16), 128);
    EXPECT_EQ(countKind(t2, OpKind::Conv2D),
              countKind(t1, OpKind::Conv2D) + 1);
}

} // namespace
} // namespace mmgen::models
