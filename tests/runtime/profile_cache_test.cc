/**
 * @file
 * Tests for the profile memoization cache: counters, LRU eviction,
 * capacity bounds, single-flight miss coalescing, and equivalence of
 * cached vs direct profiles.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "models/model_suite.hh"
#include "profiler/engine.hh"
#include "runtime/parallel.hh"
#include "runtime/profile_cache.hh"

namespace mmgen::runtime {
namespace {

profiler::ProfileResult
resultWith(double seconds)
{
    profiler::ProfileResult res;
    res.totalSeconds = seconds;
    return res;
}

TEST(ProfileCache, CountsHitsAndMisses)
{
    ProfileCache cache(4);
    int computed = 0;
    const auto compute = [&] {
        ++computed;
        return resultWith(1.0);
    };
    EXPECT_EQ(cache.getOrCompute(42, compute)->totalSeconds, 1.0);
    EXPECT_EQ(cache.getOrCompute(42, compute)->totalSeconds, 1.0);
    EXPECT_EQ(computed, 1);
    const ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.entries, 1);
    EXPECT_EQ(stats.lookups(), 2);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(ProfileCache, EvictsLeastRecentlyUsed)
{
    ProfileCache cache(2);
    cache.getOrCompute(1, [] { return resultWith(1.0); });
    cache.getOrCompute(2, [] { return resultWith(2.0); });
    // Touch key 1 so key 2 becomes the eviction victim.
    cache.getOrCompute(1, [] { return resultWith(-1.0); });
    cache.getOrCompute(3, [] { return resultWith(3.0); });
    EXPECT_NE(cache.peek(1), nullptr);
    EXPECT_EQ(cache.peek(2), nullptr);
    EXPECT_NE(cache.peek(3), nullptr);
    const ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1);
    EXPECT_EQ(stats.entries, 2);
}

TEST(ProfileCache, StaysWithinCapacity)
{
    ProfileCache cache(4);
    EXPECT_EQ(cache.capacity(), 4u);
    for (std::uint64_t k = 0; k < 10; ++k)
        cache.getOrCompute(k, [k] {
            return resultWith(static_cast<double>(k));
        });
    const ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 4);
    EXPECT_EQ(stats.misses, 10);
    EXPECT_EQ(stats.evictions, 6);
    // The four most recent keys survive.
    for (std::uint64_t k = 6; k < 10; ++k)
        EXPECT_NE(cache.peek(k), nullptr) << "key " << k;
}

TEST(ProfileCache, ClearDropsEntriesButKeepsCounters)
{
    ProfileCache cache(4);
    cache.getOrCompute(7, [] { return resultWith(7.0); });
    cache.clear();
    EXPECT_EQ(cache.peek(7), nullptr);
    const ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0);
    EXPECT_EQ(stats.misses, 1);
}

TEST(ProfileCache, SingleFlightComputesOnceUnderContention)
{
    ProfileCache cache(8);
    std::atomic<int> computed{0};
    constexpr std::int64_t n = 64;
    ThreadPool::setGlobalJobs(8);
    const std::vector<double> out =
        parallelMap(n, [&](std::int64_t) {
            return cache
                .getOrCompute(99,
                              [&] {
                                  computed.fetch_add(1);
                                  return resultWith(9.0);
                              })
                ->totalSeconds;
        });
    ThreadPool::setGlobalJobs(0);
    EXPECT_EQ(computed.load(), 1);
    for (double v : out)
        EXPECT_EQ(v, 9.0);
    // Counters are schedule-independent: misses == unique keys no
    // matter how the lookups interleaved.
    const ProfileCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.hits, n - 1);
}

TEST(ProfileCache, ExceptionsPropagateAndNothingIsCached)
{
    ProfileCache cache(4);
    EXPECT_THROW(cache.getOrCompute(
                     5,
                     []() -> profiler::ProfileResult {
                         throw std::runtime_error("profile failed");
                     }),
                 std::runtime_error);
    EXPECT_EQ(cache.peek(5), nullptr);
    // The key is computable afterwards.
    EXPECT_EQ(
        cache.getOrCompute(5, [] { return resultWith(5.0); })
            ->totalSeconds,
        5.0);
}

TEST(ProfileCache, CachedProfileMatchesDirectProfile)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::Muse);
    profiler::ProfileOptions opts;
    opts.backend = graph::AttentionBackend::Flash;
    const profiler::ProfileResult direct =
        profiler::Profiler(opts).profile(p);
    const auto cached = cachedProfile(p, opts);
    EXPECT_EQ(cached->totalSeconds, direct.totalSeconds); // bitwise
    EXPECT_EQ(cached->totalFlops, direct.totalFlops);
    EXPECT_EQ(cached->totalHbmBytes, direct.totalHbmBytes);
    EXPECT_EQ(cached->totalLaunches, direct.totalLaunches);
}

TEST(ProfileCache, KeepOpRecordsBypassesGlobalCache)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::Muse);
    profiler::ProfileOptions opts;
    opts.keepOpRecords = true;
    const ProfileCacheStats before =
        ProfileCache::global().stats();
    const auto res = cachedProfile(p, opts);
    EXPECT_FALSE(res->records.empty());
    const ProfileCacheStats after = ProfileCache::global().stats();
    EXPECT_EQ(after.lookups(), before.lookups());
}

TEST(ProfileKey, SensitiveToEveryProfileInput)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const profiler::ProfileOptions base;
    const std::uint64_t key = profileKey(p, base);
    EXPECT_EQ(profileKey(p, base), key); // stable

    profiler::ProfileOptions backend = base;
    backend.backend = graph::AttentionBackend::Baseline;
    EXPECT_NE(profileKey(p, backend), key);

    profiler::ProfileOptions gpu = base;
    gpu.gpu = hw::GpuSpec::h100_80gb();
    EXPECT_NE(profileKey(p, gpu), key);

    profiler::ProfileOptions eff = base;
    eff.efficiency.gemmPeakFraction *= 0.5;
    EXPECT_NE(profileKey(p, eff), key);

    const graph::Pipeline other =
        models::buildModel(models::ModelId::Muse);
    EXPECT_NE(profileKey(other, base), key);
}

TEST(ProfileKey, SensitiveToLoweringAndScheduleKnobs)
{
    // Two runs that differ only in how the plan is lowered or
    // scheduled produce different results, so they must never alias
    // in the cache.
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const profiler::ProfileOptions base;
    const std::uint64_t key = profileKey(p, base);

    profiler::ProfileOptions split = base;
    split.lowering.splitWeightStreams = true;
    EXPECT_NE(profileKey(p, split), key);

    profiler::ProfileOptions threshold = base;
    threshold.lowering.minStreamedWeightBytes = 1 << 10;
    EXPECT_NE(profileKey(p, threshold), key);

    profiler::ProfileOptions streams = base;
    streams.schedule.streams = 2;
    EXPECT_NE(profileKey(p, streams), key);

    profiler::ProfileOptions queued = base;
    queued.schedule.launchQueueDepth = 4;
    EXPECT_NE(profileKey(p, queued), key);

    profiler::ProfileOptions graphed = base;
    graphed.schedule.graphLaunch = true;
    EXPECT_NE(profileKey(p, graphed), key);

    profiler::ProfileOptions replay = graphed;
    replay.schedule.graphReplayOverheadFraction = 0.25;
    EXPECT_NE(profileKey(p, replay), profileKey(p, graphed));

    // And the cached result under non-default knobs matches a direct
    // profile under the same knobs.
    profiler::ProfileOptions overlap = base;
    overlap.lowering.splitWeightStreams = true;
    overlap.schedule.streams = 2;
    const profiler::ProfileResult direct =
        profiler::Profiler(overlap).profile(p);
    const auto cached = cachedProfile(p, overlap);
    EXPECT_EQ(cached->totalSeconds, direct.totalSeconds); // bitwise
}

} // namespace
} // namespace mmgen::runtime
