/**
 * @file
 * Tests for the work-stealing thread pool and the deterministic
 * parallel loops: every index runs exactly once, results are ordered,
 * failure is deterministic, and seeded maps are bit-identical at any
 * job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"
#include "util/logging.hh"

namespace mmgen::runtime {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::int64_t n = 10000;
    std::vector<std::atomic<int>> counts(n);
    pool.forEach(n, [&](std::int64_t i) {
        counts[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    bool all_inline = true;
    pool.forEach(64, [&](std::int64_t) {
        all_inline &= std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(all_inline);
    EXPECT_EQ(pool.threads(), 1);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.forEach(0, [&](std::int64_t) { ++calls; });
    pool.forEach(-5, [&](std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, LowestThrowingIndexWins)
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> executed{0};
    try {
        pool.forEach(100, [&](std::int64_t i) {
            executed.fetch_add(1);
            if (i == 17 || i == 63)
                throw std::runtime_error("boom " + std::to_string(i));
        });
        FAIL() << "expected forEach to rethrow";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom 17");
    }
    // Failure is deterministic but not short-circuiting: every index
    // still ran.
    EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, NestedForEachRunsInlineWithoutDeadlock)
{
    ThreadPool pool(2);
    std::atomic<std::int64_t> total{0};
    pool.forEach(8, [&](std::int64_t) {
        // A nested loop from a worker must not wait on the pool.
        ThreadPool::global().forEach(
            16, [&](std::int64_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, SubmitDrainsBeforeDestruction)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 500; ++i)
            pool.submit([&] { ran.fetch_add(1); });
    } // destructor joins after the queue drains
    EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, ResolveJobsHonorsRequestAndClamps)
{
    EXPECT_EQ(ThreadPool::resolveJobs(5), 5);
    EXPECT_EQ(ThreadPool::resolveJobs(1), 1);
    EXPECT_EQ(ThreadPool::resolveJobs(100000), 256);
    const int autod = ThreadPool::resolveJobs(0);
    EXPECT_GE(autod, 1);
    EXPECT_LE(autod, 256);
}

TEST(ThreadPool, RejectsInvalidConstruction)
{
    EXPECT_THROW(ThreadPool pool(0), FatalError);
}

TEST(Parallel, MapReturnsResultsInIndexOrder)
{
    const std::vector<std::int64_t> out =
        parallelMap(257, [](std::int64_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::int64_t i = 0; i < 257; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(Parallel, SeededMapIsBitIdenticalAcrossJobCounts)
{
    constexpr std::uint64_t seed = 1234;
    constexpr std::int64_t n = 64;
    const auto draw = [](std::int64_t i, Rng& rng) {
        // Draw a task-dependent number of variates so any stream
        // sharing between tasks would skew later draws.
        double acc = 0.0;
        for (std::int64_t k = 0; k <= i % 7; ++k)
            acc += rng.normal();
        return acc;
    };
    ThreadPool::setGlobalJobs(1);
    const std::vector<double> serial =
        parallelMapSeeded(seed, n, draw);
    for (const int jobs : {2, 8}) {
        ThreadPool::setGlobalJobs(jobs);
        const std::vector<double> parallel =
            parallelMapSeeded(seed, n, draw);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i]) // bitwise, not NEAR
                << "jobs=" << jobs << " index=" << i;
    }
    ThreadPool::setGlobalJobs(0);
}

TEST(Parallel, StressManySmallLoops)
{
    ThreadPool::setGlobalJobs(8);
    std::int64_t grand = 0;
    for (int round = 0; round < 50; ++round) {
        const std::vector<std::int64_t> out =
            parallelMap(97, [&](std::int64_t i) { return i + round; });
        grand += std::accumulate(out.begin(), out.end(),
                                 std::int64_t{0});
    }
    // sum_{round<50} sum_{i<97} (i + round) = 50*4656 + 97*1225
    EXPECT_EQ(grand, 50 * (96 * 97 / 2) + 97 * (49 * 50 / 2));
    ThreadPool::setGlobalJobs(0);
}

} // namespace
} // namespace mmgen::runtime
