/**
 * @file
 * ThreadSanitizer stress driver for the work-stealing thread pool.
 *
 * Plain `main` (no gtest — the sanitize flow for this binary swaps
 * the whole toolchain to -fsanitize=thread, and TSan must see every
 * synchronizing object, so we keep the dependency surface to the pool
 * itself). Hammers every concurrency path: submit + work stealing,
 * the shared-cursor forEach, nested loops, exception propagation, and
 * pool teardown with queued work. Exits nonzero on any lost or
 * duplicated index; TSan failures abort the process by themselves.
 *
 * Built and run by the `tsan` CMake preset (MMGEN_TSAN=ON) and also
 * registered un-instrumented in the default test flow as a cheap
 * stress test.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"

namespace {

using mmgen::runtime::ThreadPool;

int failures = 0;

void
check(bool ok, const char* what)
{
    if (!ok) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ++failures;
    }
}

/** Every index of a large loop runs exactly once, many rounds. */
void
stressForEach()
{
    ThreadPool pool(8);
    constexpr std::int64_t n = 20000;
    for (int round = 0; round < 10; ++round) {
        std::vector<std::atomic<int>> counts(n);
        pool.forEach(n, [&](std::int64_t i) {
            counts[static_cast<std::size_t>(i)].fetch_add(
                1, std::memory_order_relaxed);
        });
        for (std::int64_t i = 0; i < n; ++i)
            if (counts[static_cast<std::size_t>(i)].load() != 1) {
                check(false, "forEach index count != 1");
                return;
            }
    }
}

/** Fire-and-forget submits racing work stealing and teardown. */
void
stressSubmit()
{
    std::atomic<std::int64_t> ran{0};
    {
        ThreadPool pool(8);
        for (int i = 0; i < 20000; ++i)
            pool.submit([&] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
    } // destructor must drain the queues before joining
    check(ran.load() == 20000, "submit drained before destruction");
}

/** Nested loops from inside workers must run inline, not deadlock. */
void
stressNested()
{
    ThreadPool pool(4);
    std::atomic<std::int64_t> total{0};
    pool.forEach(64, [&](std::int64_t) {
        ThreadPool::global().forEach(64, [&](std::int64_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    check(total.load() == 64 * 64, "nested forEach completed");
}

/** Exceptions under contention: lowest index wins, all indices run. */
void
stressExceptions()
{
    ThreadPool pool(8);
    for (int round = 0; round < 20; ++round) {
        std::atomic<std::int64_t> executed{0};
        bool threw = false;
        try {
            pool.forEach(512, [&](std::int64_t i) {
                executed.fetch_add(1, std::memory_order_relaxed);
                if (i % 31 == 7)
                    throw std::runtime_error("stress");
            });
        } catch (const std::runtime_error&) {
            threw = true;
        }
        check(threw, "exception propagated");
        check(executed.load() == 512, "all indices ran despite throw");
    }
}

/** Concurrent parallelMap through the global pool, resized midway. */
void
stressGlobalResize()
{
    for (const int jobs : {1, 2, 8, 4}) {
        ThreadPool::setGlobalJobs(jobs);
        const std::vector<std::int64_t> out =
            mmgen::runtime::parallelMap(
                4096, [](std::int64_t i) { return i; });
        for (std::int64_t i = 0; i < 4096; ++i)
            if (out[static_cast<std::size_t>(i)] != i) {
                check(false, "parallelMap order after resize");
                return;
            }
    }
    ThreadPool::setGlobalJobs(0);
}

} // namespace

int
main()
{
    stressForEach();
    stressSubmit();
    stressNested();
    stressExceptions();
    stressGlobalResize();
    if (failures == 0)
        std::printf("tsan_stress: all clear\n");
    return failures == 0 ? 0 : 1;
}
