/**
 * @file
 * End-to-end determinism of the parallel runtime: the harness outputs
 * that the bench drivers render — ProfileResults and ServingReports —
 * must be bit-identical at --jobs 1, 2, and 8. This is the test-suite
 * form of the contract the runtime_scaling bench enforces at the
 * report level.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/suite.hh"
#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"
#include "serving/cluster.hh"
#include "serving/simulator.hh"

namespace mmgen::runtime {
namespace {

std::vector<profiler::ProfileResult>
profileZoo()
{
    const std::vector<models::ModelId> ids = models::allModels();
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    return parallelMap(
        static_cast<std::int64_t>(ids.size()), [&](std::int64_t i) {
            profiler::ProfileOptions opts;
            opts.gpu = gpu;
            return profiler::Profiler(opts).profile(
                models::buildModel(ids[static_cast<std::size_t>(i)]));
        });
}

TEST(DeterminismAcrossJobs, ZooProfilesBitIdentical)
{
    ThreadPool::setGlobalJobs(1);
    const std::vector<profiler::ProfileResult> serial = profileZoo();
    for (const int jobs : {2, 8}) {
        ThreadPool::setGlobalJobs(jobs);
        const std::vector<profiler::ProfileResult> parallel =
            profileZoo();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            // Bitwise equality, not NEAR: determinism is the contract.
            EXPECT_EQ(parallel[i].totalSeconds,
                      serial[i].totalSeconds)
                << "jobs=" << jobs << " " << serial[i].model;
            EXPECT_EQ(parallel[i].totalFlops, serial[i].totalFlops);
            EXPECT_EQ(parallel[i].totalHbmBytes,
                      serial[i].totalHbmBytes);
            EXPECT_EQ(parallel[i].totalLaunches,
                      serial[i].totalLaunches);
        }
    }
    ThreadPool::setGlobalJobs(0);
}

std::vector<serving::ServingReport>
sweepServing(const serving::LatencyModel& latency)
{
    const std::vector<double> rates = {2.0, 8.0, 16.0, 24.0};
    return parallelMap(
        static_cast<std::int64_t>(rates.size()),
        [&](std::int64_t i) {
            serving::ServingConfig cfg;
            cfg.arrivalRate = rates[static_cast<std::size_t>(i)];
            cfg.numGpus = 4;
            cfg.maxBatch = 4;
            cfg.horizonSeconds = 120.0;
            return serving::simulateServing(cfg, latency);
        });
}

TEST(DeterminismAcrossJobs, ServingReportsBitIdentical)
{
    const serving::LatencyModel latency =
        serving::profileLatencyModel(
            models::buildModel(models::ModelId::Muse),
            hw::GpuSpec::a100_80gb());

    ThreadPool::setGlobalJobs(1);
    const std::vector<serving::ServingReport> serial =
        sweepServing(latency);
    for (const int jobs : {2, 8}) {
        ThreadPool::setGlobalJobs(jobs);
        const std::vector<serving::ServingReport> parallel =
            sweepServing(latency);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(parallel[i].p50Latency, serial[i].p50Latency)
                << "jobs=" << jobs << " point=" << i;
            EXPECT_EQ(parallel[i].p95Latency, serial[i].p95Latency);
            EXPECT_EQ(parallel[i].goodput, serial[i].goodput);
            EXPECT_EQ(parallel[i].meanBatch, serial[i].meanBatch);
            EXPECT_EQ(parallel[i].gpuUtilization,
                      serial[i].gpuUtilization);
            EXPECT_EQ(parallel[i].backlog, serial[i].backlog);
        }
    }
    ThreadPool::setGlobalJobs(0);
}

std::vector<serving::ClusterReport>
sweepCluster(const serving::LatencyModel& latency)
{
    const std::vector<double> rates = {1.0, 2.0, 4.0};
    return parallelMap(
        static_cast<std::int64_t>(rates.size()),
        [&](std::int64_t i) {
            serving::ClusterConfig cfg;
            cfg.arrivalRate = rates[static_cast<std::size_t>(i)];
            cfg.maxBatch = 4;
            cfg.horizonSeconds = 200.0;
            cfg.replicas = {serving::ReplicaSpec{latency, 2, 0},
                            serving::ReplicaSpec{latency, 2, 1}};
            cfg.chaos = serving::namedChaosScenario("kill-replica", 2,
                                                    200.0);
            cfg.breaker.failureThreshold = 2;
            cfg.hedge.delaySeconds = serving::hedgeDelayForQuantile(
                latency, cfg.maxBatch, 0.95);
            cfg.checkpoint.iterations = 40;
            cfg.checkpoint.intervalIterations = 8;
            cfg.checkpoint.costSeconds = 0.01;
            cfg.resilience.retry.maxRetries = 3;
            return serving::simulateCluster(cfg);
        });
}

TEST(DeterminismAcrossJobs, ClusterReportsBitIdentical)
{
    const serving::LatencyModel latency =
        serving::profileLatencyModel(
            models::buildModel(models::ModelId::StableDiffusion),
            hw::GpuSpec::a100_80gb());

    ThreadPool::setGlobalJobs(1);
    const std::vector<serving::ClusterReport> serial =
        sweepCluster(latency);
    for (const int jobs : {2, 8}) {
        ThreadPool::setGlobalJobs(jobs);
        const std::vector<serving::ClusterReport> parallel =
            sweepCluster(latency);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            const serving::ServingReport& a = parallel[i].serving;
            const serving::ServingReport& b = serial[i].serving;
            EXPECT_EQ(a.goodput, b.goodput)
                << "jobs=" << jobs << " point=" << i;
            EXPECT_EQ(a.p95Latency, b.p95Latency);
            EXPECT_EQ(a.hedgesIssued, b.hedgesIssued);
            EXPECT_EQ(a.hedgeWastedSeconds, b.hedgeWastedSeconds);
            EXPECT_EQ(a.breakerOpens, b.breakerOpens);
            EXPECT_EQ(a.wastedGpuSeconds, b.wastedGpuSeconds);
            EXPECT_EQ(a.restoredGpuSeconds, b.restoredGpuSeconds);
            EXPECT_EQ(a.checkpointsTaken, b.checkpointsTaken);
            ASSERT_EQ(parallel[i].replicas.size(),
                      serial[i].replicas.size());
            for (std::size_t r = 0; r < serial[i].replicas.size();
                 ++r) {
                EXPECT_EQ(parallel[i].replicas[r].busySeconds,
                          serial[i].replicas[r].busySeconds);
                EXPECT_EQ(parallel[i].replicas[r].completedRequests,
                          serial[i].replicas[r].completedRequests);
            }
        }
    }
    ThreadPool::setGlobalJobs(0);
}

TEST(DeterminismAcrossJobs, SuiteRunAllMatchesSerialBaseline)
{
    core::CharacterizationSuite suite;
    const std::vector<models::ModelId> ids = {
        models::ModelId::StableDiffusion, models::ModelId::Muse,
        models::ModelId::LLaMA};

    ThreadPool::setGlobalJobs(1);
    const std::vector<core::ModelRunResult> serial =
        suite.runAll(ids);
    ThreadPool::setGlobalJobs(8);
    const std::vector<core::ModelRunResult> parallel =
        suite.runAll(ids);
    ThreadPool::setGlobalJobs(0);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].id, serial[i].id);
        EXPECT_EQ(parallel[i].baseline.totalSeconds,
                  serial[i].baseline.totalSeconds);
        EXPECT_EQ(parallel[i].flash.totalSeconds,
                  serial[i].flash.totalSeconds);
        EXPECT_EQ(parallel[i].endToEndSpeedup(),
                  serial[i].endToEndSpeedup());
    }
}

} // namespace
} // namespace mmgen::runtime
