/**
 * @file
 * End-to-end telemetry tests against the serving simulators: the
 * zero-cost-disabled contract (reports bit-for-bit identical with
 * telemetry on or off, doubles compared exactly), sampling cadence,
 * chaos trace contents, the P009 consistency check, and byte-identical
 * exports across thread-pool job counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/thread_pool.hh"
#include "serving/cluster.hh"
#include "serving/simulator.hh"
#include "serving/telemetry_hooks.hh"
#include "telemetry/consistency.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"

namespace mmgen::serving {
namespace {

LatencyModel
unitModel()
{
    LatencyModel m;
    m.baseSeconds = 1.0;
    m.overheadFraction = 0.0;
    return m;
}

/**
 * A deliberately hostile cluster: rolling replica kills, a
 * hair-trigger breaker, and aggressive hedging, so every
 * instrumentation site (breaker transitions, hedge spans, retries,
 * sheds) actually fires within a short horizon.
 */
ClusterConfig
chaosCluster()
{
    ClusterConfig c;
    c.arrivalRate = 1.6;
    c.maxBatch = 4;
    c.horizonSeconds = 240.0;
    c.seed = 17;
    c.replicas = {ReplicaSpec{unitModel(), 2, 0},
                  ReplicaSpec{unitModel(), 2, 1}};
    c.router = RouterPolicy::LeastLoaded;
    c.chaos = namedChaosScenario("rolling-kill", 2, c.horizonSeconds);
    c.breaker.failureThreshold = 1;
    c.breaker.openSeconds = 10.0;
    c.probe.intervalSeconds = 5.0;
    c.hedge.delaySeconds = 2.0;
    c.resilience.retry.maxRetries = 3;
    c.resilience.faults.failureMtbfSeconds = 200.0;
    c.resilience.faults.failureMttrSeconds = 40.0;
    return c;
}

std::string
exportAll(const telemetry::MetricsRegistry& registry,
          const telemetry::TraceSink& sink)
{
    std::ostringstream out;
    telemetry::writeMetricsJsonLines(out, registry);
    telemetry::writePrometheus(out, registry);
    telemetry::writeChromeTrace(out, sink);
    return out.str();
}

std::size_t
countEvents(const telemetry::TraceSink& sink, const std::string& name)
{
    std::size_t n = 0;
    for (const telemetry::TraceEvent& ev : sink.events())
        n += ev.name == name ? 1 : 0;
    return n;
}

TEST(ServingTelemetry, SinglePoolReportBitIdenticalWithTelemetryOn)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.4;
    cfg.numGpus = 2;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = 400.0;
    cfg.seed = 11;
    ResilienceConfig res;
    res.faults.failureMtbfSeconds = 150.0;
    res.faults.failureMttrSeconds = 40.0;
    res.retry.maxRetries = 3;
    res.deadline.deadlineSeconds = 60.0;
    res.admission.maxQueueLength = 32;

    const ServingReport bare = simulateServing(cfg, unitModel(), res);

    telemetry::MetricsRegistry registry;
    telemetry::TraceSink sink;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.trace = &sink;
    tel.sampleIntervalSeconds = 5.0;
    const ServingReport instrumented =
        simulateServing(cfg, unitModel(), res, &tel);

    // Exact double equality is the contract, not a tolerance.
    EXPECT_EQ(bare.throughput, instrumented.throughput);
    EXPECT_EQ(bare.p95Latency, instrumented.p95Latency);
    EXPECT_EQ(bare.gpuUtilization, instrumented.gpuUtilization);
    EXPECT_TRUE(reportsBitIdentical(bare, instrumented));

    // And telemetry actually recorded something.
    EXPECT_GT(registry.size(), 0u);
    EXPECT_FALSE(sink.empty());
    EXPECT_GT(countEvents(sink, "admit"), 0u);
}

TEST(ServingTelemetry, NullAndAllDisabledTelemetryAreEquivalent)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.0;
    cfg.numGpus = 2;
    cfg.horizonSeconds = 300.0;
    const ServingReport viaNull =
        simulateServing(cfg, unitModel(), ResilienceConfig{}, nullptr);
    const telemetry::Telemetry disabled; // no registry, no sink
    const ServingReport viaDisabled =
        simulateServing(cfg, unitModel(), ResilienceConfig{},
                        &disabled);
    EXPECT_TRUE(reportsBitIdentical(viaNull, viaDisabled));
}

TEST(ServingTelemetry, ClusterReportBitIdenticalUnderChaos)
{
    const ClusterConfig cfg = chaosCluster();
    const ClusterReport bare = simulateCluster(cfg);

    telemetry::MetricsRegistry registry;
    telemetry::TraceSink sink;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.trace = &sink;
    tel.sampleIntervalSeconds = 2.0;
    const ClusterReport instrumented = simulateCluster(cfg, &tel);

    EXPECT_TRUE(
        reportsBitIdentical(bare.serving, instrumented.serving));
    ASSERT_EQ(bare.replicas.size(), instrumented.replicas.size());
    for (std::size_t i = 0; i < bare.replicas.size(); ++i) {
        EXPECT_EQ(bare.replicas[i].dispatchedBatches,
                  instrumented.replicas[i].dispatchedBatches);
        EXPECT_EQ(bare.replicas[i].busySeconds,
                  instrumented.replicas[i].busySeconds);
    }
}

TEST(ServingTelemetry, ChaosTraceContainsBreakerAndHedgeEvents)
{
    const ClusterConfig cfg = chaosCluster();
    telemetry::MetricsRegistry registry;
    telemetry::TraceSink sink;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.trace = &sink;
    const ClusterReport r = simulateCluster(cfg, &tel);

    // The scenario is harsh enough that every machine actually runs.
    ASSERT_GT(r.serving.breakerOpens, 0);
    ASSERT_GT(r.serving.hedgesIssued, 0);

    // Instants mirror the report counters one-to-one.
    EXPECT_EQ(countEvents(sink, "breaker_open"),
              static_cast<std::size_t>(r.serving.breakerOpens));
    EXPECT_EQ(countEvents(sink, "breaker_close"),
              static_cast<std::size_t>(r.serving.breakerCloses));
    EXPECT_GT(countEvents(sink, "breaker_half_open"), 0u);
    EXPECT_EQ(countEvents(sink, "hedge_issue"),
              static_cast<std::size_t>(r.serving.hedgesIssued));
    // Hedge spans exist for resolved hedges (won or cancelled).
    const std::size_t hedgeSpans = countEvents(sink, "hedged request");
    EXPECT_GT(hedgeSpans, 0u);
    EXPECT_LE(hedgeSpans,
              static_cast<std::size_t>(r.serving.hedgesIssued));
}

TEST(ServingTelemetry, SamplesLandOnCadenceAndEndAtHorizon)
{
    ServingConfig cfg;
    cfg.arrivalRate = 1.0;
    cfg.numGpus = 2;
    cfg.horizonSeconds = 100.0;
    telemetry::MetricsRegistry registry;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.sampleIntervalSeconds = 7.0;
    simulateServing(cfg, unitModel(), ResilienceConfig{}, &tel);

    const telemetry::TimeSeries* s =
        registry.findSeries("serving.queue_depth");
    ASSERT_NE(s, nullptr);
    // Sample k lands at exactly k * interval; the final sample is
    // clamped onto the horizon.
    ASSERT_EQ(s->points().size(), 15u);
    for (std::size_t i = 0; i + 1 < s->points().size(); ++i)
        EXPECT_EQ(s->points()[i].tSeconds,
                  7.0 * static_cast<double>(i + 1));
    EXPECT_EQ(s->points().back().tSeconds, 100.0);
}

TEST(ServingTelemetry, ConsistencyCheckPassesOnSampledChaosRun)
{
    const ClusterConfig cfg = chaosCluster();
    telemetry::MetricsRegistry registry;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.sampleIntervalSeconds = 2.0;
    const ClusterReport r = simulateCluster(cfg, &tel);

    telemetry::SeriesExpectations expect;
    expect.horizonSeconds = cfg.horizonSeconds;
    expect.totalGpus = cfg.totalGpus();
    expect.arrived = r.serving.arrived;
    expect.shed = r.serving.shed;
    expect.inHorizonCompleted =
        r.serving.completed - r.serving.drainCompleted;
    expect.retries = r.serving.retries;
    expect.hedgesIssued = r.serving.hedgesIssued;
    const verify::DiagnosticReport report =
        telemetry::checkSeriesConsistency(registry, expect);
    EXPECT_TRUE(report.diagnostics().empty()) << report.render();

    // The closing sample equals the report aggregate exactly.
    const telemetry::TimeSeries* completed =
        registry.findSeries("serving.completed_total");
    ASSERT_NE(completed, nullptr);
    EXPECT_EQ(completed->back().value,
              static_cast<double>(expect.inHorizonCompleted));
}

TEST(ServingTelemetry, ConsistencyCheckFiresOnCorruption)
{
    telemetry::SeriesExpectations expect;
    expect.horizonSeconds = 100.0;
    expect.totalGpus = 4;
    expect.arrived = 10;

    {
        // Cumulative series that decreases.
        telemetry::MetricsRegistry r;
        telemetry::TimeSeries& s = r.series("serving.arrived_total");
        s.record(10.0, 5.0);
        s.record(20.0, 3.0);
        EXPECT_TRUE(
            telemetry::checkSeriesConsistency(r, expect).hasErrors());
    }
    {
        // Final sample disagrees with the report aggregate.
        telemetry::MetricsRegistry r;
        r.series("serving.arrived_total").record(100.0, 9.0);
        EXPECT_TRUE(
            telemetry::checkSeriesConsistency(r, expect).hasErrors());
    }
    {
        // In-flight GPUs above the fleet size.
        telemetry::MetricsRegistry r;
        r.series("serving.in_flight_gpus").record(50.0, 5.0);
        EXPECT_TRUE(
            telemetry::checkSeriesConsistency(r, expect).hasErrors());
    }
    {
        // Breaker state outside {0, 1, 2}.
        telemetry::MetricsRegistry r;
        r.series("serving.replica.breaker_state",
                 telemetry::Labels{{"replica", "0"}})
            .record(50.0, 5.0);
        EXPECT_TRUE(
            telemetry::checkSeriesConsistency(r, expect).hasErrors());
    }
    {
        // Non-serving series are out of scope.
        telemetry::MetricsRegistry r;
        r.series("runtime.something").record(10.0, 5.0);
        r.series("runtime.something").record(20.0, 3.0);
        EXPECT_FALSE(
            telemetry::checkSeriesConsistency(r, expect).hasErrors());
    }
}

TEST(ServingTelemetry, ExportsByteIdenticalAcrossJobCounts)
{
    const ClusterConfig cfg = chaosCluster();
    std::string reference;
    for (int jobs : {1, 2, 8}) {
        runtime::ThreadPool::setGlobalJobs(jobs);
        telemetry::MetricsRegistry registry;
        telemetry::TraceSink sink;
        telemetry::Telemetry tel;
        tel.metrics = &registry;
        tel.trace = &sink;
        tel.sampleIntervalSeconds = 5.0;
        simulateCluster(cfg, &tel);
        const std::string exported = exportAll(registry, sink);
        if (reference.empty())
            reference = exported;
        else
            EXPECT_EQ(exported, reference) << "jobs=" << jobs;
    }
    runtime::ThreadPool::setGlobalJobs(0);
    EXPECT_FALSE(reference.empty());
}

} // namespace
} // namespace mmgen::serving
