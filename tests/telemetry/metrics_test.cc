/**
 * @file
 * Tests for the metrics registry: label canonicalization, typed
 * instruments, histogram quantile error bounds versus exact sorting,
 * time-series invariants, and deterministic export serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "telemetry/export.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen::telemetry {
namespace {

TEST(Labels, SortedAndOrderInsensitive)
{
    const Labels a{{"replica", "0"}, {"domain", "1"}};
    const Labels b{{"domain", "1"}, {"replica", "0"}};
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.str(), "domain=1,replica=0");
}

TEST(Labels, SetReplacesExistingKey)
{
    Labels l{{"replica", "0"}};
    l.set("replica", "3");
    l.set("gpu", "a100");
    EXPECT_EQ(l.str(), "gpu=a100,replica=3");
}

TEST(Counter, MonotoneAndRejectsNegativeDeltas)
{
    Counter c;
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    EXPECT_THROW(c.add(-1), FatalError);
}

TEST(Gauge, LastValueWinsAndRejectsNan)
{
    Gauge g;
    g.set(1.5);
    g.set(-2.0);
    EXPECT_EQ(g.value(), -2.0);
    EXPECT_THROW(g.set(std::numeric_limits<double>::quiet_NaN()),
                 FatalError);
}

TEST(HistogramSpec, ValidatesShape)
{
    EXPECT_THROW(HistogramSpec::linear(1.0, 1.0, 4).validate(),
                 FatalError);
    EXPECT_THROW(HistogramSpec::linear(0.0, 1.0, 0).validate(),
                 FatalError);
    EXPECT_THROW(HistogramSpec::exponential(0.0, 1.0, 4).validate(),
                 FatalError);
    EXPECT_NO_THROW(HistogramSpec::linear(0.0, 1.0, 4).validate());
    EXPECT_NO_THROW(
        HistogramSpec::exponential(1e-3, 1e3, 24).validate());
}

TEST(Histogram, CountsUnderAndOverflow)
{
    Histogram h(HistogramSpec::linear(0.0, 10.0, 10));
    h.observe(-1.0);
    h.observe(0.0);
    h.observe(9.99);
    h.observe(10.0); // at hi -> overflow by the [lo, hi) convention
    h.observe(25.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_THROW(
        h.observe(std::numeric_limits<double>::quiet_NaN()),
        FatalError);
}

/**
 * The documented contract: a linear histogram's quantile is within
 * half a bucket width of the exact (sorted) quantile.
 */
TEST(Histogram, LinearQuantileWithinHalfBucketOfExact)
{
    const double lo = 0.0, hi = 100.0;
    const int buckets = 50;
    const double halfWidth = 0.5 * (hi - lo) / buckets;
    Histogram h(HistogramSpec::linear(lo, hi, buckets));
    Rng rng(123);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        // Mixture: uniform bulk + a clustered mode, all inside range.
        const double v = (i % 3 == 0)
                             ? 40.0 + 5.0 * rng.uniform()
                             : lo + (hi - lo - 1e-9) * rng.uniform();
        values.push_back(v);
        h.observe(v);
    }
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
        const double exact = percentile(values, q * 100.0);
        const double approx = h.quantile(q);
        EXPECT_NEAR(approx, exact, halfWidth + 1e-9)
            << "q=" << q;
    }
}

/**
 * Log-bucket histograms bound the *relative* error by the bucket
 * growth factor: the reported quantile lies within one growth factor
 * of the exact quantile.
 */
TEST(Histogram, LogQuantileWithinOneGrowthFactorOfExact)
{
    const double lo = 1e-3, hi = 1e3;
    const int buckets = 60;
    const double growth =
        std::pow(hi / lo, 1.0 / static_cast<double>(buckets));
    Histogram h(HistogramSpec::exponential(lo, hi, buckets));
    Rng rng(7);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        // Log-uniform over the full span, the histogram's home turf.
        const double v =
            lo * std::pow(hi / lo, rng.uniform() * (1.0 - 1e-12));
        values.push_back(v);
        h.observe(v);
    }
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
        const double exact = percentile(values, q * 100.0);
        const double approx = h.quantile(q);
        EXPECT_GT(approx, exact / growth * (1.0 - 1e-9))
            << "q=" << q;
        EXPECT_LT(approx, exact * growth * (1.0 + 1e-9))
            << "q=" << q;
    }
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram h(HistogramSpec::linear(0.0, 8.0, 8));
    EXPECT_EQ(h.quantile(0.5), 0.0); // empty
    h.observe(3.2);
    // Single observation: every quantile reports its bucket midpoint.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
}

TEST(TimeSeries, EnforcesMonotoneTimeAndRejectsNan)
{
    TimeSeries s;
    s.record(0.0, 1.0);
    s.record(5.0, 2.0);
    s.record(5.0, 3.0); // equal timestamps allowed
    EXPECT_EQ(s.points().size(), 3u);
    EXPECT_THROW(s.record(4.0, 0.0), FatalError);
    EXPECT_THROW(
        s.record(6.0, std::numeric_limits<double>::quiet_NaN()),
        FatalError);
}

TEST(MetricsRegistry, AddressesByNameAndLabels)
{
    MetricsRegistry r;
    r.counter("req", Labels{{"replica", "0"}}).add(3);
    r.counter("req", Labels{{"replica", "1"}}).add(5);
    r.counter("req").add(1);
    EXPECT_EQ(r.findCounter("req", Labels{{"replica", "0"}})->value(),
              3);
    EXPECT_EQ(r.findCounter("req", Labels{{"replica", "1"}})->value(),
              5);
    EXPECT_EQ(r.findCounter("req")->value(), 1);
    EXPECT_EQ(r.findCounter("missing"), nullptr);
    EXPECT_EQ(r.size(), 3u);
}

TEST(MetricsRegistry, HistogramSpecFixedByFirstRegistration)
{
    MetricsRegistry r;
    r.histogram("lat", HistogramSpec::linear(0.0, 1.0, 4));
    EXPECT_NO_THROW(
        r.histogram("lat", HistogramSpec::linear(0.0, 1.0, 4)));
    EXPECT_THROW(
        r.histogram("lat", HistogramSpec::linear(0.0, 2.0, 4)),
        FatalError);
}

/** Export order must be a function of names, not insertion order. */
TEST(Exporters, SerializationIndependentOfRegistrationOrder)
{
    auto fill = [](MetricsRegistry& r, bool reversed) {
        std::vector<std::pair<std::string, std::int64_t>> metrics = {
            {"a.first", 1}, {"b.second", 2}, {"c.third", 3}};
        if (reversed)
            std::reverse(metrics.begin(), metrics.end());
        for (const auto& [name, v] : metrics)
            r.counter(name).add(v);
        r.gauge("z.gauge").set(0.25);
        r.series("s.series").record(1.0, 2.0);
    };
    MetricsRegistry fwd, rev;
    fill(fwd, false);
    fill(rev, true);
    std::ostringstream a, b, pa, pb;
    writeMetricsJsonLines(a, fwd);
    writeMetricsJsonLines(b, rev);
    writePrometheus(pa, fwd);
    writePrometheus(pb, rev);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(pa.str(), pb.str());
    EXPECT_NE(a.str().find("\"a.first\""), std::string::npos);
}

TEST(Exporters, PrometheusNamesSanitized)
{
    EXPECT_EQ(prometheusName("serving.queue_depth"),
              "serving_queue_depth");
    EXPECT_EQ(prometheusName("a-b c.d"), "a_b_c_d");
}

TEST(Exporters, PrometheusHistogramIsCumulativeWithInf)
{
    MetricsRegistry r;
    auto& h =
        r.histogram("lat", HistogramSpec::linear(0.0, 4.0, 4));
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0); // overflow
    std::ostringstream out;
    writePrometheus(out, r);
    const std::string text = out.str();
    EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("lat_count 3"), std::string::npos);
    // Cumulative: the le="2" bucket holds both finite observations.
    EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2"),
              std::string::npos);
}

} // namespace
} // namespace mmgen::telemetry
