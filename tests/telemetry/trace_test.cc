/**
 * @file
 * Tests for the trace sink: track interning, span/instant recording
 * invariants, sort-key overrides, exec-timeline merging with PlanNode
 * provenance, and the Chrome Trace Event export structure.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>

#include "models/stable_diffusion.hh"
#include "profiler/engine.hh"
#include "telemetry/export.hh"
#include "telemetry/trace.hh"
#include "util/logging.hh"

namespace mmgen::telemetry {
namespace {

std::string
labelValue(const Labels& labels, const std::string& key)
{
    for (const auto& [k, v] : labels.items())
        if (k == key)
            return v;
    return "";
}

std::size_t
countOccurrences(const std::string& haystack, const std::string& needle)
{
    std::size_t n = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(TraceSink, InternsTracksByProcessThreadPair)
{
    TraceSink sink;
    const int a = sink.track("serving", "lifecycle");
    const int b = sink.track("serving", "gpu 0");
    const int c = sink.track("serving", "lifecycle");
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    ASSERT_EQ(sink.tracks().size(), 2u);
    EXPECT_EQ(sink.tracks()[0].process, "serving");
    EXPECT_EQ(sink.tracks()[0].thread, "lifecycle");
    // Default sort keys follow registration order, 1-based.
    EXPECT_EQ(sink.tracks()[0].processSort, 1);
    EXPECT_EQ(sink.tracks()[1].processSort, 2);
}

TEST(TraceSink, RecordsSpansAndInstantsInInsertionOrder)
{
    TraceSink sink;
    const int t = sink.track("serving", "gpu 0");
    EXPECT_TRUE(sink.empty());
    sink.complete(t, "batch", 10.0, 2.5, "dispatch",
                  Labels{{"size", "4"}});
    sink.instant(t, "admit", 12.0, "lifecycle");
    EXPECT_FALSE(sink.empty());
    ASSERT_EQ(sink.events().size(), 2u);
    const TraceEvent& span = sink.events()[0];
    EXPECT_EQ(span.phase, TraceEvent::Phase::Complete);
    EXPECT_EQ(span.name, "batch");
    EXPECT_EQ(span.startSeconds, 10.0);
    EXPECT_EQ(span.durationSeconds, 2.5);
    EXPECT_EQ(span.args.str(), "size=4");
    EXPECT_EQ(sink.events()[1].phase, TraceEvent::Phase::Instant);
}

TEST(TraceSink, RejectsMalformedSpans)
{
    TraceSink sink;
    const int t = sink.track("p", "t");
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(sink.complete(t, "neg", 0.0, -1.0), FatalError);
    EXPECT_THROW(sink.complete(t, "nan", nan, 1.0), FatalError);
    EXPECT_THROW(sink.instant(t, "nan", nan), FatalError);
    // Zero-duration spans are fine (instant-sized work).
    EXPECT_NO_THROW(sink.complete(t, "zero", 5.0, 0.0));
}

TEST(TraceSink, SetTrackSortOverridesExportKeys)
{
    TraceSink sink;
    const int t = sink.track("exec", "stream 0");
    sink.setTrackSort(t, 7, 3);
    EXPECT_EQ(sink.tracks()[0].processSort, 7);
    EXPECT_EQ(sink.tracks()[0].threadSort, 3);
}

TEST(ChromeExport, GroupsTracksSharingAProcessUnderOnePid)
{
    TraceSink sink;
    const int life = sink.track("serving", "lifecycle");
    const int gpu = sink.track("serving", "gpu 0");
    const int other = sink.track("chaos", "events");
    sink.complete(gpu, "batch", 1.0, 2.0);
    sink.instant(life, "admit", 1.5);
    sink.instant(other, "kill", 3.0);
    std::ostringstream out;
    writeChromeTrace(out, sink);
    const std::string text = out.str();
    // One process_name metadata entry per distinct process.
    EXPECT_EQ(countOccurrences(text, "\"process_name\""), 2u);
    // Both serving lanes share the smallest processSort in the group.
    EXPECT_NE(text.find("\"name\":\"serving\""), std::string::npos);
    EXPECT_EQ(countOccurrences(text, "\"pid\":1"), 8u)
        << "2 process metas, 2x2 thread metas, and both serving "
        << "events share pid 1:\n"
        << text;
    // Complete spans export as ph:X with dur; instants as ph:i.
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"X\""), 1u);
    EXPECT_EQ(countOccurrences(text, "\"ph\":\"i\""), 2u);
    EXPECT_NE(text.find("\"dur\":"), std::string::npos);
    // Timestamps are microseconds: 1 s -> 1000000.000.
    EXPECT_NE(text.find("\"ts\":1000000.000"), std::string::npos);
}

TEST(ChromeExport, EscapesEventNamesAndArgs)
{
    TraceSink sink;
    const int t = sink.track("p", "t");
    sink.instant(t, "say \"hi\"\n", 0.0, "",
                 Labels{{"k", "v\\w"}});
    std::ostringstream out;
    writeChromeTrace(out, sink);
    EXPECT_NE(out.str().find("say \\\"hi\\\"\\n"), std::string::npos);
    EXPECT_NE(out.str().find("v\\\\w"), std::string::npos);
}

/** Shared fixture: one profiled plan with records kept. */
const profiler::ProfileResult&
profiledStableDiffusion()
{
    static const profiler::ProfileResult res = [] {
        profiler::ProfileOptions opts;
        opts.keepOpRecords = true;
        return profiler::Profiler(opts).profile(
            models::buildStableDiffusion());
    }();
    return res;
}

TEST(AppendTimeline, AddsStageLanesWithProvenance)
{
    const profiler::ProfileResult& res = profiledStableDiffusion();
    ASSERT_NE(res.plan, nullptr);
    TraceSink sink;
    appendTimeline(sink, *res.plan, res.timeline);
    ASSERT_FALSE(sink.events().empty());
    // Every track is a "stage: NAME" process with a stream thread.
    for (const TraceTrack& t : sink.tracks()) {
        EXPECT_EQ(t.process.rfind("stage: ", 0), 0u) << t.process;
        EXPECT_EQ(t.thread.rfind("stream ", 0), 0u) << t.thread;
    }
    // Spans carry PlanNode provenance in their args and have
    // non-negative durations in ascending per-lane time.
    for (const TraceEvent& ev : sink.events()) {
        EXPECT_EQ(ev.phase, TraceEvent::Phase::Complete);
        EXPECT_GE(ev.durationSeconds, 0.0);
        EXPECT_FALSE(labelValue(ev.args, "scope").empty());
        EXPECT_FALSE(labelValue(ev.args, "repeat").empty());
    }
}

TEST(AppendTimeline, FoldedRepeatsAreElidedWithAnnotation)
{
    const profiler::ProfileResult& res = profiledStableDiffusion();
    TraceSink sink;
    appendTimeline(sink, *res.plan, res.timeline,
                   /*maxRepeatInstances=*/2);
    // Diffusion denoising repeats far more than twice, so at least
    // one span must be flagged as showing a truncated expansion.
    bool sawElision = false;
    for (const TraceEvent& ev : sink.events())
        sawElision = sawElision ||
                     ev.name.find(", showing 2]") != std::string::npos;
    EXPECT_TRUE(sawElision);
    EXPECT_THROW(
        appendTimeline(sink, *res.plan, res.timeline, 0),
        FatalError);
}

TEST(AppendTimeline, ExecLanesSortBelowExistingServingTracks)
{
    const profiler::ProfileResult& res = profiledStableDiffusion();
    TraceSink sink;
    const int serving = sink.track("serving", "lifecycle");
    sink.setTrackSort(serving, 4, 1);
    appendTimeline(sink, *res.plan, res.timeline);
    for (std::size_t i = 1; i < sink.tracks().size(); ++i)
        EXPECT_GT(sink.tracks()[i].processSort, 4);
}

TEST(AppendTimeline, TimeOffsetShiftsEverySpan)
{
    const profiler::ProfileResult& res = profiledStableDiffusion();
    TraceSink base, shifted;
    appendTimeline(base, *res.plan, res.timeline);
    appendTimeline(shifted, *res.plan, res.timeline, 3, 100.0);
    ASSERT_EQ(base.events().size(), shifted.events().size());
    for (std::size_t i = 0; i < base.events().size(); ++i)
        EXPECT_DOUBLE_EQ(shifted.events()[i].startSeconds,
                         base.events()[i].startSeconds + 100.0);
}

TEST(AppendTimeline, ExportIsDeterministic)
{
    const profiler::ProfileResult& res = profiledStableDiffusion();
    std::ostringstream a, b;
    {
        TraceSink sink;
        appendTimeline(sink, *res.plan, res.timeline);
        writeChromeTrace(a, sink);
    }
    {
        TraceSink sink;
        appendTimeline(sink, *res.plan, res.timeline);
        writeChromeTrace(b, sink);
    }
    EXPECT_EQ(a.str(), b.str());
    EXPECT_FALSE(a.str().empty());
}

} // namespace
} // namespace mmgen::telemetry
