/**
 * @file
 * Tests for the graph builder: shape inference, scopes, emitted attrs.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "util/logging.hh"

namespace mmgen::graph {
namespace {

TEST(Builder, Conv2dShapeInference)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({1, 4, 64, 64}, DType::F16);
    const TensorDesc y = b.conv2d(x, 320, 3, 1);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 320, 64, 64}));
    const TensorDesc z = b.conv2d(y, 320, 3, 2);
    EXPECT_EQ(z.shape(), (std::vector<std::int64_t>{1, 320, 32, 32}));
    ASSERT_EQ(t.size(), 2u);
    const auto& a = t.ops()[0].as<ConvAttrs>();
    EXPECT_EQ(a.inChannels, 4);
    EXPECT_EQ(a.outChannels, 320);
    EXPECT_EQ(a.kernelH, 3);
}

TEST(Builder, Conv2dRejectsBadShapes)
{
    Trace t;
    GraphBuilder b(t);
    EXPECT_THROW(b.conv2d(TensorDesc({4, 64, 64}, DType::F16), 8),
                 FatalError);
    EXPECT_THROW(
        b.conv2d(TensorDesc({1, 4, 63, 64}, DType::F16), 8, 3, 2),
        FatalError);
    EXPECT_THROW(
        b.conv2d(TensorDesc({1, 4, 64, 64}, DType::F16), 8, 3, 1, 3),
        FatalError);
}

TEST(Builder, Conv3dTemporalKernel)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({1, 320, 16, 32, 32}, DType::F16);
    const TensorDesc y = b.conv3d(x, 320, 3, 1);
    EXPECT_EQ(y.shape(), x.shape());
    const auto& a = t.ops()[0].as<ConvAttrs>();
    EXPECT_EQ(a.kernelD, 3);
    EXPECT_EQ(a.kernelH, 1);
    EXPECT_EQ(a.inD, 16);
}

TEST(Builder, LinearFoldsLeadingDims)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({2, 77, 768}, DType::F16);
    const TensorDesc y = b.linear(x, 1024);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 77, 1024}));
    const auto& a = t.ops()[0].as<LinearAttrs>();
    EXPECT_EQ(a.rows, 2 * 77);
    EXPECT_EQ(a.inFeatures, 768);
    EXPECT_EQ(a.outFeatures, 1024);
    EXPECT_TRUE(a.hasBias);
}

TEST(Builder, AttentionDefaultsAndStrides)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc o =
        b.attention(AttentionKind::SelfSpatial, 2, 8, 4096, 4096, 40);
    EXPECT_EQ(o.shape(), (std::vector<std::int64_t>{2, 4096, 320}));
    const auto& a = t.ops()[0].as<AttentionAttrs>();
    EXPECT_EQ(a.seqStrideElems, 8 * 40);
    EXPECT_EQ(a.featureStrideElems, 1);
    EXPECT_FALSE(a.causal);

    b.attention(AttentionKind::Temporal, 256, 8, 16, 16, 64,
                /*seq_stride=*/256, /*causal=*/false,
                /*feature_stride=*/4096);
    const auto& ta = t.ops()[1].as<AttentionAttrs>();
    EXPECT_EQ(ta.seqStrideElems, 256);
    EXPECT_EQ(ta.featureStrideElems, 4096);
}

TEST(Builder, AttentionRejectsBadDims)
{
    Trace t;
    GraphBuilder b(t);
    EXPECT_THROW(
        b.attention(AttentionKind::SelfSpatial, 0, 8, 16, 16, 64),
        FatalError);
    EXPECT_THROW(b.attention(AttentionKind::SelfSpatial, 1, 8, 16, 16,
                             64, 0, false, 0),
                 FatalError);
}

TEST(Builder, ScopesNest)
{
    Trace t;
    GraphBuilder b(t);
    {
        auto s1 = b.scope("unet");
        {
            auto s2 = b.scope("down0");
            b.silu(TensorDesc({4}, DType::F16));
        }
        b.silu(TensorDesc({4}, DType::F16));
    }
    b.silu(TensorDesc({4}, DType::F16));
    EXPECT_EQ(t.ops()[0].scope, "unet.down0");
    EXPECT_EQ(t.ops()[1].scope, "unet");
    EXPECT_EQ(t.ops()[2].scope, "");
}

TEST(Builder, OpHooksObserveEveryEmission)
{
    Trace t;
    GraphBuilder b(t);
    std::vector<std::string> seen;
    b.onOp([&seen](const Op& op) {
        seen.push_back(opKindName(op.kind) + "@" + op.scope);
    });
    int attention_calls = 0;
    b.onOp([&attention_calls](const Op& op) {
        attention_calls += op.kind == OpKind::Attention;
    });
    {
        auto s = b.scope("unet");
        b.silu(TensorDesc({4}, DType::F16));
        b.attention(AttentionKind::SelfSpatial, 1, 2, 8, 8, 4);
    }
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "elementwise@unet");
    EXPECT_EQ(seen[1], "attention@unet");
    EXPECT_EQ(attention_calls, 1);
    EXPECT_THROW(b.onOp(GraphBuilder::OpHook()), FatalError);
}

TEST(Builder, ResampleAdjustsSpatialDims)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({1, 64, 16, 16}, DType::F16);
    EXPECT_EQ(b.upsample2x(x).shape(),
              (std::vector<std::int64_t>{1, 64, 32, 32}));
    EXPECT_EQ(b.downsample2x(x).shape(),
              (std::vector<std::int64_t>{1, 64, 8, 8}));
    const TensorDesc v({1, 64, 8, 16, 16}, DType::F16);
    EXPECT_EQ(b.upsample2x(v).shape(),
              (std::vector<std::int64_t>{1, 64, 8, 32, 32}));
    EXPECT_THROW(b.downsample2x(TensorDesc({1, 4, 3, 3}, DType::F16)),
                 FatalError);
}

TEST(Builder, ActivationCarriesFlopWeight)
{
    Trace t;
    GraphBuilder b(t);
    b.silu(TensorDesc({10}, DType::F16));
    b.gelu(TensorDesc({10}, DType::F16));
    EXPECT_DOUBLE_EQ(t.ops()[0].as<ElemAttrs>().flopsPerElement, 5.0);
    EXPECT_DOUBLE_EQ(t.ops()[1].as<ElemAttrs>().flopsPerElement, 8.0);
    EXPECT_EQ(t.ops()[0].as<ElemAttrs>().label, "silu");
}

TEST(Builder, SoftmaxRowsAndCols)
{
    Trace t;
    GraphBuilder b(t);
    b.softmax(TensorDesc({2, 8, 128, 128}, DType::F16));
    const auto& a = t.ops()[0].as<SoftmaxAttrs>();
    EXPECT_EQ(a.cols, 128);
    EXPECT_EQ(a.rows, 2 * 8 * 128);
}

TEST(Builder, EmbeddingAndCopy)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc e = b.embedding(77, 768, 49408);
    EXPECT_EQ(e.shape(), (std::vector<std::int64_t>{77, 768}));
    const TensorDesc c = b.copy(e.permute({1, 0}));
    EXPECT_TRUE(c.isContiguous());
    EXPECT_EQ(t.ops()[1].as<CopyAttrs>().bytes, 77 * 768 * 2);
}

} // namespace
} // namespace mmgen::graph
