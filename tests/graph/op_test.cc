/**
 * @file
 * Tests for operator metadata: categories, parameter counts, names.
 */

#include <gtest/gtest.h>

#include "graph/op.hh"

namespace mmgen::graph {
namespace {

Op
makeOp(OpKind kind, OpAttrs attrs)
{
    Op op;
    op.kind = kind;
    op.attrs = std::move(attrs);
    return op;
}

TEST(OpCategory, MatchesPaperBreakdownLegend)
{
    EXPECT_EQ(opCategory(makeOp(OpKind::Attention, AttentionAttrs{})),
              OpCategory::Attention);
    EXPECT_EQ(opCategory(makeOp(OpKind::Conv2D, ConvAttrs{})),
              OpCategory::Convolution);
    EXPECT_EQ(opCategory(makeOp(OpKind::Conv3D, ConvAttrs{})),
              OpCategory::Convolution);
    EXPECT_EQ(opCategory(makeOp(OpKind::Linear, LinearAttrs{})),
              OpCategory::Linear);
    EXPECT_EQ(opCategory(makeOp(OpKind::Matmul, MatmulAttrs{})),
              OpCategory::Linear);
    EXPECT_EQ(opCategory(makeOp(OpKind::GroupNorm, NormAttrs{})),
              OpCategory::GroupNorm);
    EXPECT_EQ(opCategory(makeOp(OpKind::LayerNorm, NormAttrs{})),
              OpCategory::OtherNorm);
    EXPECT_EQ(opCategory(makeOp(OpKind::Softmax, SoftmaxAttrs{})),
              OpCategory::Elementwise);
    EXPECT_EQ(opCategory(makeOp(OpKind::Elementwise, ElemAttrs{})),
              OpCategory::Elementwise);
    EXPECT_EQ(opCategory(makeOp(OpKind::Embedding, EmbeddingAttrs{})),
              OpCategory::Memory);
    EXPECT_EQ(opCategory(makeOp(OpKind::Upsample, ResampleAttrs{})),
              OpCategory::Memory);
    EXPECT_EQ(opCategory(makeOp(OpKind::Downsample, ResampleAttrs{})),
              OpCategory::Memory);
    EXPECT_EQ(opCategory(makeOp(OpKind::Copy, CopyAttrs{})),
              OpCategory::Memory);
}

TEST(OpParamCount, Conv3DCountsTemporalKernel)
{
    ConvAttrs a;
    a.inChannels = 64;
    a.outChannels = 64;
    a.kernelH = a.kernelW = 1;
    a.kernelD = 3;
    a.hasBias = true;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Conv3D, a)),
              3 * 64 * 64 + 64);
}

TEST(OpParamCount, LinearBiasAndLayerNormAffine)
{
    LinearAttrs l;
    l.inFeatures = 768;
    l.outFeatures = 3072;
    l.hasBias = true;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Linear, l)),
              768LL * 3072 + 3072);

    NormAttrs n;
    n.channels = 768;
    n.groups = 1;
    EXPECT_EQ(opParamCount(makeOp(OpKind::LayerNorm, n)), 2 * 768);
}

TEST(OpParamCount, ResampleSoftmaxEmbeddingEdges)
{
    // Resampling and copies move data; they own no weights.
    ResampleAttrs r;
    r.numelIn = 1 << 20;
    r.numelOut = 4 << 20;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Upsample, r)), 0);
    EXPECT_EQ(opParamCount(makeOp(OpKind::Downsample, r)), 0);

    SoftmaxAttrs s;
    s.rows = 4096;
    s.cols = 4096;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Softmax, s)), 0);

    CopyAttrs c;
    c.bytes = 1 << 30;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Copy, c)), 0);

    // An empty embedding table owns nothing; a real one vocab * dim.
    EmbeddingAttrs e;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Embedding, e)), 0);
    e.vocab = 49408;
    e.dim = 768;
    e.tokens = 77; // gathered tokens never add parameters
    EXPECT_EQ(opParamCount(makeOp(OpKind::Embedding, e)),
              49408LL * 768);
}

TEST(OpParamCount, ConvCountsWeightsAndBias)
{
    ConvAttrs a;
    a.inChannels = 320;
    a.outChannels = 640;
    a.kernelH = a.kernelW = 3;
    a.kernelD = 1;
    a.groups = 1;
    a.hasBias = true;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Conv2D, a)),
              3 * 3 * 320 * 640 + 640);
    a.hasBias = false;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Conv2D, a)),
              3 * 3 * 320 * 640);
    a.groups = 320;
    a.outChannels = 320;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Conv2D, a)), 3 * 3 * 320);
}

TEST(OpParamCount, LinearNormEmbedding)
{
    LinearAttrs l;
    l.inFeatures = 4096;
    l.outFeatures = 11008;
    l.hasBias = false;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Linear, l)), 4096LL * 11008);

    NormAttrs n;
    n.channels = 320;
    EXPECT_EQ(opParamCount(makeOp(OpKind::GroupNorm, n)), 640);

    EmbeddingAttrs e;
    e.vocab = 32000;
    e.dim = 4096;
    EXPECT_EQ(opParamCount(makeOp(OpKind::Embedding, e)),
              32000LL * 4096);
}

TEST(OpParamCount, WeightlessOpsAreZero)
{
    EXPECT_EQ(opParamCount(makeOp(OpKind::Attention, AttentionAttrs{})),
              0);
    EXPECT_EQ(opParamCount(makeOp(OpKind::Matmul, MatmulAttrs{})), 0);
    EXPECT_EQ(opParamCount(makeOp(OpKind::Elementwise, ElemAttrs{})), 0);
    EXPECT_EQ(opParamCount(makeOp(OpKind::Copy, CopyAttrs{})), 0);
}

TEST(AttentionAttrs, StrideWasteFactor)
{
    AttentionAttrs a;
    a.featureStrideElems = 1;
    EXPECT_DOUBLE_EQ(a.strideWasteFactor(32, 2), 1.0);
    a.featureStrideElems = 4; // partial waste
    EXPECT_DOUBLE_EQ(a.strideWasteFactor(32, 2), 4.0);
    a.featureStrideElems = 4096; // capped at sector/element
    EXPECT_DOUBLE_EQ(a.strideWasteFactor(32, 2), 16.0);
    EXPECT_DOUBLE_EQ(a.strideWasteFactor(32, 4), 8.0);
}

TEST(Names, AreStableStrings)
{
    EXPECT_EQ(opCategoryName(OpCategory::Convolution), "Convolution");
    EXPECT_EQ(opKindName(OpKind::GroupNorm), "group_norm");
    EXPECT_EQ(attentionKindName(AttentionKind::Temporal), "temporal");
    EXPECT_EQ(attentionBackendName(AttentionBackend::Flash), "flash");
    EXPECT_EQ(allCategories().size(), 7u);
}

} // namespace
} // namespace mmgen::graph
