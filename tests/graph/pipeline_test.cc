/**
 * @file
 * Tests for pipelines and traces: stage tracing, parameter counting.
 */

#include <gtest/gtest.h>

#include "graph/pipeline.hh"
#include "util/logging.hh"

namespace mmgen::graph {
namespace {

Pipeline
twoStagePipeline()
{
    Pipeline p;
    p.name = "toy";
    p.klass = ModelClass::DiffusionLatent;

    Stage enc;
    enc.name = "encoder";
    enc.iterations = 1;
    enc.emit = [](GraphBuilder& b, std::int64_t) {
        b.linear(TensorDesc({1, 8, 16}, DType::F16), 32);
    };
    p.stages.push_back(std::move(enc));

    Stage loop;
    loop.name = "loop";
    loop.iterations = 10;
    loop.perIterationShapes = true;
    loop.emit = [](GraphBuilder& b, std::int64_t iter) {
        // Shape depends on the iteration (KV growth).
        b.attention(AttentionKind::CausalSelf, 1, 4, 1, iter + 1, 16);
    };
    p.stages.push_back(std::move(loop));
    return p;
}

TEST(Pipeline, TraceStageScopesUnderStageName)
{
    const Pipeline p = twoStagePipeline();
    const Trace t = p.traceStage(0, 0);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.ops()[0].scope, "encoder");
}

TEST(Pipeline, TraceStageHonorsIteration)
{
    const Pipeline p = twoStagePipeline();
    const Trace t = p.traceStage(1, 7);
    const auto& a = t.ops()[0].as<AttentionAttrs>();
    EXPECT_EQ(a.seqKv, 8);
}

TEST(Pipeline, TraceStageValidates)
{
    const Pipeline p = twoStagePipeline();
    EXPECT_THROW(p.traceStage(2, 0), FatalError);
    EXPECT_THROW(p.traceStage(1, 10), FatalError);
    EXPECT_THROW(p.traceStage(1, -1), FatalError);
}

TEST(Pipeline, TotalParamsCountsEachStageOnce)
{
    const Pipeline p = twoStagePipeline();
    // encoder: 16*32 weights + 32 bias; the attention loop is
    // weightless.
    EXPECT_EQ(p.totalParams(), 16 * 32 + 32);
}

TEST(Pipeline, WeightSharingStagesNotDoubleCounted)
{
    Pipeline p;
    p.name = "shared";
    for (int i = 0; i < 2; ++i) {
        Stage s;
        s.name = i == 0 ? "prefill" : "decode";
        s.iterations = 1;
        s.reusesWeights = i == 1; // same weights as the first stage
        s.emit = [](GraphBuilder& b, std::int64_t) {
            b.linear(TensorDesc({1, 4}, DType::F16), 4, false);
        };
        p.stages.push_back(std::move(s));
    }
    EXPECT_EQ(p.totalParams(), 16);
}

TEST(Pipeline, DtypePropagatesToTracedOps)
{
    Pipeline p = twoStagePipeline();
    p.dtype = DType::I8;
    const Trace t = p.traceStage(0, 0);
    EXPECT_EQ(t.ops()[0].dtype, DType::I8);
}

TEST(ModelClass, Predicates)
{
    EXPECT_TRUE(isDiffusionClass(ModelClass::DiffusionPixel));
    EXPECT_TRUE(isDiffusionClass(ModelClass::DiffusionLatent));
    EXPECT_TRUE(isDiffusionClass(ModelClass::DiffusionTTV));
    EXPECT_FALSE(isDiffusionClass(ModelClass::TransformerTTI));
    EXPECT_TRUE(isVideoClass(ModelClass::DiffusionTTV));
    EXPECT_TRUE(isVideoClass(ModelClass::TransformerTTV));
    EXPECT_FALSE(isVideoClass(ModelClass::LLM));
    EXPECT_EQ(modelClassName(ModelClass::DiffusionLatent),
              "Diffusion (Latent)");
}

TEST(Trace, ClearAndAccumulate)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    GraphBuilder b(t);
    b.linear(TensorDesc({1, 4}, DType::F16), 4, false);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.totalParams(), 16);
    t.clear();
    EXPECT_TRUE(t.empty());
}

} // namespace
} // namespace mmgen::graph
