/**
 * @file
 * Tests for Pipeline::fingerprint(): the structural hash that keys
 * the profile memoization cache. Stable across rebuilds, sensitive to
 * every structural input, and distinct across the whole model zoo.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/pipeline.hh"
#include "models/model_suite.hh"

namespace mmgen::graph {
namespace {

Pipeline
toyPipeline()
{
    Pipeline p;
    p.name = "toy";
    p.klass = ModelClass::DiffusionLatent;

    Stage enc;
    enc.name = "encoder";
    enc.iterations = 1;
    enc.emit = [](GraphBuilder& b, std::int64_t) {
        b.linear(TensorDesc({1, 8, 16}, DType::F16), 32);
    };
    p.stages.push_back(std::move(enc));

    Stage loop;
    loop.name = "loop";
    loop.iterations = 10;
    loop.perIterationShapes = true;
    loop.emit = [](GraphBuilder& b, std::int64_t iter) {
        b.attention(AttentionKind::CausalSelf, 1, 4, 1, iter + 1, 16);
    };
    p.stages.push_back(std::move(loop));
    return p;
}

TEST(Fingerprint, StableAcrossRebuilds)
{
    // Two independently built pipelines with identical structure hash
    // identically — the property the profile cache keys on.
    EXPECT_EQ(toyPipeline().fingerprint(), toyPipeline().fingerprint());
    for (models::ModelId id : models::allModels())
        EXPECT_EQ(models::buildModel(id).fingerprint(),
                  models::buildModel(id).fingerprint())
            << models::modelName(id);
}

TEST(Fingerprint, SensitiveToName)
{
    Pipeline a = toyPipeline();
    Pipeline b = toyPipeline();
    b.name = "toy2";
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToDtype)
{
    Pipeline a = toyPipeline();
    Pipeline b = toyPipeline();
    b.dtype = DType::I8;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToIterationCount)
{
    Pipeline a = toyPipeline();
    Pipeline b = toyPipeline();
    b.stages[1].iterations = 20;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToTracedShapes)
{
    Pipeline a = toyPipeline();
    Pipeline b = toyPipeline();
    b.stages[0].emit = [](GraphBuilder& bld, std::int64_t) {
        bld.linear(TensorDesc({1, 8, 16}, DType::F16), 64);
    };
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SensitiveToStageOrder)
{
    Pipeline a = toyPipeline();
    Pipeline b = toyPipeline();
    std::swap(b.stages[0], b.stages[1]);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, ZooModelsArePairwiseDistinct)
{
    std::set<std::uint64_t> seen;
    for (models::ModelId id : models::allModels()) {
        const std::uint64_t fp = models::buildModel(id).fingerprint();
        EXPECT_TRUE(seen.insert(fp).second)
            << "fingerprint collision at " << models::modelName(id);
    }
}

} // namespace
} // namespace mmgen::graph
