/**
 * @file
 * Tests for the L1/L2 hierarchy and its write policy.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"

namespace mmgen::cache {
namespace {

using kernels::KernelClass;

TEST(GpuCacheModel, SizesFromSpec)
{
    const GpuCacheModel m(hw::GpuSpec::a100_80gb());
    EXPECT_EQ(m.numSms(), 108);
    EXPECT_EQ(m.lineBytes(), 32);
}

TEST(GpuCacheModel, L1HitDoesNotTouchL2)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x100, KernelClass::Gemm);
    m.access(0, 0x100, KernelClass::Gemm);
    const LevelStats s = m.statsFor(KernelClass::Gemm);
    EXPECT_EQ(s.l1.accesses, 2u);
    EXPECT_EQ(s.l1.hits, 1u);
    EXPECT_EQ(s.l2.accesses, 1u); // only the miss reached L2
}

TEST(GpuCacheModel, PrivateL1sDoNotShare)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x100, KernelClass::Gemm);
    m.access(1, 0x100, KernelClass::Gemm);
    const LevelStats s = m.statsFor(KernelClass::Gemm);
    // Second SM misses its own L1 but hits the shared L2.
    EXPECT_EQ(s.l1.hits, 0u);
    EXPECT_EQ(s.l2.accesses, 2u);
    EXPECT_EQ(s.l2.hits, 1u);
}

TEST(GpuCacheModel, WritesBypassL1AndAllocateL2)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x200, KernelClass::Gemm, /*is_write=*/true);
    const LevelStats g = m.statsFor(KernelClass::Gemm);
    EXPECT_EQ(g.l1.accesses, 0u); // stores invisible to L1 stats
    EXPECT_EQ(g.l2.accesses, 1u);

    // A later kernel reading the produced data hits in L2 (producer ->
    // consumer reuse), even from a different SM.
    m.access(5, 0x200, KernelClass::Softmax);
    const LevelStats s = m.statsFor(KernelClass::Softmax);
    EXPECT_EQ(s.l2.hits, 1u);
}

TEST(GpuCacheModel, InvalidateL1sKeepsL2AndStats)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x300, KernelClass::Gemm);
    m.invalidateL1s();
    // L1 lost the line...
    m.access(0, 0x300, KernelClass::Gemm);
    const LevelStats s = m.statsFor(KernelClass::Gemm);
    EXPECT_EQ(s.l1.hits, 0u);
    // ...but the L2 retained it, and earlier counters survived.
    EXPECT_EQ(s.l2.accesses, 2u);
    EXPECT_EQ(s.l2.hits, 1u);
}

TEST(GpuCacheModel, StatsSeparatedByKernelClass)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x400, KernelClass::Gemm);
    m.access(0, 0x400, KernelClass::Elementwise);
    EXPECT_EQ(m.statsFor(KernelClass::Gemm).l1.accesses, 1u);
    EXPECT_EQ(m.statsFor(KernelClass::Elementwise).l1.accesses, 1u);
    EXPECT_EQ(m.statsFor(KernelClass::Elementwise).l1.hits, 1u);
    EXPECT_EQ(m.statsFor(KernelClass::Softmax).l1.accesses, 0u);
}

TEST(GpuCacheModel, ResetClearsEverything)
{
    GpuCacheModel m(hw::GpuSpec::a100_80gb());
    m.access(0, 0x500, KernelClass::Gemm);
    m.reset();
    EXPECT_TRUE(m.stats().empty());
    m.access(0, 0x500, KernelClass::Gemm);
    EXPECT_EQ(m.statsFor(KernelClass::Gemm).l1.hits, 0u);
}

} // namespace
} // namespace mmgen::cache
