/**
 * @file
 * Tests for the kernel trace generators and the attention cache study.
 */

#include <gtest/gtest.h>

#include "cache/attention_study.hh"
#include "cache/trace_gen.hh"
#include "util/logging.hh"

namespace mmgen::cache {
namespace {

using kernels::KernelClass;

TEST(MatrixLayout, ContiguousAddressing)
{
    const MatrixLayout m =
        MatrixLayout::contiguous(/*base=*/1000, /*batch=*/4,
                                 /*rows=*/8, /*elems=*/16, /*bytes=*/2);
    EXPECT_EQ(m.batchCount(), 4);
    EXPECT_EQ(m.addr(0, 0, 0), 1000u);
    EXPECT_EQ(m.addr(0, 0, 1), 1002u);
    EXPECT_EQ(m.addr(0, 1, 0), 1000u + 16 * 2);
    EXPECT_EQ(m.addr(2, 0, 0), 1000u + 2 * 8 * 16 * 2);
}

TEST(MatrixLayout, MixedRadixBatchDecomposition)
{
    // Temporal layout: batch = (hw inner, heads, vb outer).
    MatrixLayout m;
    m.baseBytes = 0;
    m.rowStrideElems = 256;       // frame stride
    m.elemStrideElems = 16 * 256; // channel stride
    m.elemBytes = 2;
    m.batchDims = {{256, 1}, {8, 64 * 16 * 256}, {2, 8 * 64 * 16 * 256}};
    EXPECT_EQ(m.batchCount(), 256 * 8 * 2);
    // batch index 3 => hw=3, h=0, vb=0.
    EXPECT_EQ(m.addr(3, 0, 0), 3u * 2);
    // batch index 256 => hw=0, h=1.
    EXPECT_EQ(m.addr(256, 0, 0), 64u * 16 * 256 * 2);
    // row moves by the frame stride.
    EXPECT_EQ(m.addr(0, 2, 0), 2u * 256 * 2);
}

TEST(GemmTrace, ReusesBAcrossQueryTiles)
{
    // Long-M GEMM: later M-tiles re-read B and hit the private L1
    // (block CTA assignment keeps a batch's tiles on one SM). Use
    // enough batches that every SM runs several consecutive CTAs.
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    GemmTraceParams p;
    p.m = 256;
    p.n = 64;
    p.k = 64;
    p.tileM = 64;
    p.a = MatrixLayout::contiguous(0, 256, p.m, p.k, 2);
    p.b = MatrixLayout::contiguous(1 << 30, 256, p.n, p.k, 2);
    p.c = MatrixLayout::contiguous(1ULL << 31, 256, p.m, p.n, 2);
    runGemmTrace(model, p);
    const LevelStats s = model.statsFor(KernelClass::Gemm);
    // B is read by 4 M-tiles; most of the re-read passes hit.
    EXPECT_GT(s.l1.hitRate(), 0.3);
}

TEST(GemmTrace, SingleTileHasNoReuse)
{
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    GemmTraceParams p;
    p.m = 16;
    p.n = 16;
    p.k = 64;
    p.tileM = 64;
    p.a = MatrixLayout::contiguous(0, 64, p.m, p.k, 2);
    p.b = MatrixLayout::contiguous(1 << 24, 64, p.n, p.k, 2);
    p.c = MatrixLayout::contiguous(1 << 25, 64, p.m, p.n, 2);
    runGemmTrace(model, p);
    EXPECT_LT(model.statsFor(KernelClass::Gemm).l1.hitRate(), 0.05);
}

TEST(GemmTrace, MaxBatchesCapsWork)
{
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    GemmTraceParams p;
    p.m = p.n = p.k = 32;
    p.a = MatrixLayout::contiguous(0, 100, 32, 32, 2);
    p.b = MatrixLayout::contiguous(1 << 24, 100, 32, 32, 2);
    p.c = MatrixLayout::contiguous(1 << 25, 100, 32, 32, 2);
    p.maxBatches = 5;
    runGemmTrace(model, p);
    const std::uint64_t capped =
        model.statsFor(KernelClass::Gemm).l1.accesses +
        model.statsFor(KernelClass::Gemm).l2.accesses;
    model.reset();
    p.maxBatches = 0;
    runGemmTrace(model, p);
    const std::uint64_t full =
        model.statsFor(KernelClass::Gemm).l1.accesses +
        model.statsFor(KernelClass::Gemm).l2.accesses;
    EXPECT_NEAR(static_cast<double>(full),
                20.0 * static_cast<double>(capped), 0.01 * full);
}

TEST(SoftmaxTrace, LongRowsGetMultiPassReuse)
{
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    SoftmaxTraceParams p;
    p.rows = 64;
    p.cols = 1024; // 2 KiB rows: two read passes + write
    p.mat = MatrixLayout::contiguous(0, 1, p.rows, p.cols, 2);
    runSoftmaxTrace(model, p);
    const LevelStats s = model.statsFor(KernelClass::Softmax);
    // Second read pass hits: ~50% of load accesses.
    EXPECT_NEAR(s.l1.hitRate(), 0.5, 0.05);
}

TEST(SoftmaxTrace, TinyRowsSinglePass)
{
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    SoftmaxTraceParams p;
    p.rows = 256;
    p.cols = 16; // 32 B rows fit in registers
    p.mat = MatrixLayout::contiguous(0, 1, p.rows, p.cols, 2);
    runSoftmaxTrace(model, p);
    EXPECT_LT(model.statsFor(KernelClass::Softmax).l1.hitRate(), 0.05);
}

TEST(ElementwiseTrace, StreamsWithoutLoadReuse)
{
    GpuCacheModel model(hw::GpuSpec::a100_80gb());
    ElementwiseTraceParams p;
    p.rows = 128;
    p.cols = 256;
    p.mat = MatrixLayout::contiguous(0, 1, p.rows, p.cols, 2);
    runElementwiseTrace(model, p);
    EXPECT_LT(model.statsFor(KernelClass::Elementwise).l1.hitRate(),
              0.05);
}

TEST(AttentionStudy, OperandLayoutContiguousVsStrided)
{
    graph::AttentionAttrs a;
    a.batch = 4;
    a.heads = 2;
    a.seqQ = a.seqKv = 8;
    a.headDim = 16;
    a.seqStrideElems = 2 * 16;
    a.featureStrideElems = 1;
    const MatrixLayout c = attentionOperandLayout(a, 0, a.seqQ, 2);
    EXPECT_EQ(c.elemStrideElems, 1);
    EXPECT_EQ(c.batchCount(), 4 * 2);

    a.seqStrideElems = 64; // inner spatial extent
    a.featureStrideElems = 8 * 64;
    a.batch = 128; // 2 video batches x 64 positions
    const MatrixLayout s = attentionOperandLayout(a, 0, a.seqQ, 2);
    EXPECT_EQ(s.elemStrideElems, 8 * 64);
    EXPECT_EQ(s.batchCount(), 128 * 2);
}

TEST(AttentionStudy, StridedBatchMustDivide)
{
    graph::AttentionAttrs a;
    a.batch = 100;
    a.heads = 2;
    a.seqQ = a.seqKv = 8;
    a.headDim = 16;
    a.seqStrideElems = 64; // does not divide 100
    a.featureStrideElems = 512;
    EXPECT_THROW(attentionOperandLayout(a, 0, a.seqQ, 2), FatalError);
}

TEST(AttentionStudy, FlashBackendSkipsSimilarityKernels)
{
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    graph::AttentionAttrs a;
    a.kind = graph::AttentionKind::SelfSpatial;
    a.batch = 8;
    a.heads = 4;
    a.seqQ = a.seqKv = 128;
    a.headDim = 64;
    a.seqStrideElems = 256;
    const AttentionCacheReport flash = runAttentionCacheStudy(
        gpu, a, DType::F16, 0, graph::AttentionBackend::Flash);
    // No softmax/elementwise kernels exist under the fused backend.
    EXPECT_EQ(flash.stats.count(kernels::KernelClass::Softmax), 0u);
    EXPECT_EQ(flash.stats.count(kernels::KernelClass::Elementwise),
              0u);
    EXPECT_GT(flash.stats.at(kernels::KernelClass::Gemm).l1.accesses,
              0u);
    // Unsupported backend rejected.
    EXPECT_THROW(
        runAttentionCacheStudy(gpu, a, DType::F16, 0,
                               graph::AttentionBackend::FlashDecode),
        FatalError);
}

TEST(AttentionStudy, SpatialBeatsTemporalOnL1)
{
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    graph::AttentionAttrs spatial;
    spatial.kind = graph::AttentionKind::SelfSpatial;
    spatial.batch = 16;
    spatial.heads = 4;
    spatial.seqQ = spatial.seqKv = 256;
    spatial.headDim = 64;
    spatial.seqStrideElems = 256;

    graph::AttentionAttrs temporal;
    temporal.kind = graph::AttentionKind::Temporal;
    temporal.batch = 256;
    temporal.heads = 4;
    temporal.seqQ = temporal.seqKv = 16;
    temporal.headDim = 64;
    temporal.seqStrideElems = 256;
    temporal.featureStrideElems = 16 * 256;

    const AttentionCacheReport sp =
        runAttentionCacheStudy(gpu, spatial, DType::F16);
    const AttentionCacheReport tp =
        runAttentionCacheStudy(gpu, temporal, DType::F16);
    EXPECT_GT(sp.l1HitRate(KernelClass::Gemm),
              5.0 * tp.l1HitRate(KernelClass::Gemm) + 0.05);
    EXPECT_GT(sp.l1HitRate(KernelClass::Softmax),
              tp.l1HitRate(KernelClass::Softmax));
}

} // namespace
} // namespace mmgen::cache
