/**
 * @file
 * Tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"
#include "util/logging.hh"

namespace mmgen::cache {
namespace {

TEST(SetAssocCache, ValidatesGeometry)
{
    EXPECT_THROW(SetAssocCache("c", 0, 4, 32), FatalError);
    EXPECT_THROW(SetAssocCache("c", 1024, 4, 33), FatalError);
    EXPECT_THROW(SetAssocCache("c", 1000, 4, 32), FatalError);
    const SetAssocCache c("c", 4096, 4, 32);
    EXPECT_EQ(c.capacityBytes(), 4096);
    EXPECT_EQ(c.associativity(), 4);
    EXPECT_EQ(c.lineBytes(), 32);
}

TEST(SetAssocCache, ColdMissThenHit)
{
    SetAssocCache c("c", 4096, 4, 32);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101f)); // same line
    EXPECT_FALSE(c.access(0x1020)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_DOUBLE_EQ(c.stats().hitRate(), 0.5);
}

TEST(SetAssocCache, LruEvictsLeastRecent)
{
    // 2-way, line 32, capacity 64 => a single set.
    SetAssocCache c("c", 64, 2, 32);
    c.access(0 * 32);
    c.access(1 * 32);
    EXPECT_TRUE(c.access(0 * 32));  // 0 becomes MRU
    EXPECT_FALSE(c.access(2 * 32)); // evicts 1 (LRU)
    EXPECT_TRUE(c.access(0 * 32));
    EXPECT_FALSE(c.access(1 * 32)); // 1 was evicted
}

TEST(SetAssocCache, SetConflictsThrashDespiteCapacity)
{
    // Power-of-two strides camp on one set: the locality hazard of
    // strided attention views (paper Fig. 12).
    SetAssocCache c("c", 32 * 1024, 4, 32); // 256 sets
    const std::uint64_t stride = 256 * 32;  // maps to one set
    for (int rep = 0; rep < 3; ++rep) {
        for (std::uint64_t i = 0; i < 8; ++i)
            c.access(i * stride);
    }
    // 8 lines over 4 ways: every access misses after warmup too.
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(SetAssocCache, SequentialStreamFitsWithinCapacity)
{
    SetAssocCache c("c", 32 * 1024, 4, 32);
    for (std::uint64_t a = 0; a < 32 * 1024; a += 32)
        c.access(a);
    // Second pass over a working set equal to capacity: all hits.
    for (std::uint64_t a = 0; a < 32 * 1024; a += 32)
        EXPECT_TRUE(c.access(a));
}

TEST(SetAssocCache, ResetClearsContentsAndCounters)
{
    SetAssocCache c("c", 4096, 4, 32);
    c.access(0x40);
    c.access(0x40);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_FALSE(c.access(0x40));
}

TEST(CacheStats, Accumulate)
{
    CacheStats a{10, 4};
    CacheStats b{6, 3};
    a += b;
    EXPECT_EQ(a.accesses, 16u);
    EXPECT_EQ(a.hits, 7u);
    EXPECT_EQ(a.misses(), 9u);
}

/** Property: hit rate never exceeds (N-1)/N for N distinct lines. */
class HitRateBound : public ::testing::TestWithParam<int>
{};

TEST_P(HitRateBound, RepeatedScanOfNLines)
{
    SetAssocCache c("c", 1 << 20, 8, 32);
    const int n = GetParam();
    for (int rep = 0; rep < 4; ++rep)
        for (int i = 0; i < n; ++i)
            c.access(static_cast<std::uint64_t>(i) * 32);
    // Working set fits: exactly n cold misses.
    EXPECT_EQ(c.stats().misses(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HitRateBound,
                         ::testing::Values(1, 7, 64, 1000));

} // namespace
} // namespace mmgen::cache
