/**
 * @file
 * Tests for pipeline lowering: plan structure, op/stage provenance,
 * dependency edges, lane assignment and weight-stream splitting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "exec/plan.hh"
#include "graph/builder.hh"
#include "hw/gpu_spec.hh"
#include "models/model_suite.hh"
#include "util/logging.hh"

namespace mmgen::exec {
namespace {

using graph::AttentionBackend;
using graph::GraphBuilder;
using graph::Pipeline;
using graph::Stage;

kernels::CostModel
costModel(AttentionBackend backend = AttentionBackend::Flash)
{
    return kernels::CostModel(hw::GpuSpec::a100_80gb(), backend);
}

Pipeline
toyPipeline(std::int64_t steps)
{
    Pipeline p;
    p.name = "toy";
    Stage s;
    s.name = "unet";
    s.iterations = steps;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.conv2d(TensorDesc({1, 8, 16, 16}, DType::F16), 8);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 256, 256,
                    16);
    };
    p.stages.push_back(std::move(s));
    return p;
}

/** One stage of two big memory-bound linears (32 MiB f16 weights). */
Pipeline
mlpPipeline()
{
    Pipeline p;
    p.name = "mlp";
    Stage s;
    s.name = "ffn";
    s.iterations = 3;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
    };
    p.stages.push_back(std::move(s));
    return p;
}

TEST(LowerPipeline, FoldedStageKeepsProvenance)
{
    const kernels::CostModel model = costModel();
    const ExecutionPlan plan = lowerPipeline(toyPipeline(5), model);

    EXPECT_EQ(plan.model, "toy");
    EXPECT_EQ(plan.backend, AttentionBackend::Flash);
    ASSERT_EQ(plan.stageNames.size(), 1u);
    EXPECT_EQ(plan.stageNames[0], "unet");

    // Flash lowers attention to one fused kernel: 2 ops, 2 nodes.
    ASSERT_EQ(plan.ops.size(), 2u);
    ASSERT_EQ(plan.nodes.size(), 2u);
    EXPECT_FALSE(plan.hasWeightStreams);

    const PlanOp& conv = plan.ops[0];
    EXPECT_EQ(conv.kind, graph::OpKind::Conv2D);
    EXPECT_EQ(conv.stageIndex, 0u);
    EXPECT_EQ(conv.repeat, 5);
    EXPECT_GT(conv.paramCount, 0);
    EXPECT_EQ(conv.firstNode, 0u);
    EXPECT_EQ(conv.nodeCount, 1u);

    const PlanOp& attn = plan.ops[1];
    EXPECT_EQ(attn.kind, graph::OpKind::Attention);
    EXPECT_EQ(attn.seqQ, 256);
    EXPECT_EQ(attn.seqKv, 256);
    EXPECT_EQ(attn.attnKind, graph::AttentionKind::SelfSpatial);
    EXPECT_EQ(attn.firstNode, 1u);
    EXPECT_EQ(attn.nodeCount, 1u);

    EXPECT_EQ(plan.nodes[0].label, "conv2d");
    EXPECT_EQ(plan.nodes[1].label, "flash_fused");
    for (const PlanNode& node : plan.nodes) {
        EXPECT_EQ(node.lane, Lane::Compute);
        EXPECT_FALSE(node.weightStream);
        EXPECT_EQ(node.repeat, 5);
        EXPECT_GT(node.flops, 0.0);
        EXPECT_GT(node.hbmBytes, 0.0);
    }
    // Program-order chain: the first node has no predecessor, each
    // later one depends on the previous compute node.
    EXPECT_TRUE(plan.nodes[0].deps.empty());
    ASSERT_EQ(plan.nodes[1].deps.size(), 1u);
    EXPECT_EQ(plan.nodes[1].deps[0], 0);
}

TEST(LowerPipeline, BaselineAttentionLowersToKernelChain)
{
    const kernels::CostModel model =
        costModel(AttentionBackend::Baseline);
    const ExecutionPlan plan = lowerPipeline(toyPipeline(1), model);

    ASSERT_EQ(plan.ops.size(), 2u);
    const PlanOp& attn = plan.ops[1];
    // qk_gemm, scale, softmax, av_gemm (no causal mask here).
    ASSERT_EQ(attn.nodeCount, 4u);
    EXPECT_EQ(plan.nodes[attn.firstNode].label, "qk_gemm");
    EXPECT_EQ(plan.nodes[attn.firstNode + 3].label, "av_gemm");
    // The chain is dependency-linked node to node.
    for (std::size_t n = attn.firstNode + 1;
         n < attn.firstNode + attn.nodeCount; ++n) {
        ASSERT_EQ(plan.nodes[n].deps.size(), 1u);
        EXPECT_EQ(plan.nodes[n].deps[0],
                  static_cast<std::int32_t>(n) - 1);
    }
}

TEST(LowerPipeline, PerIterationStagesTraceEveryStep)
{
    Pipeline p;
    p.name = "ar";
    Stage s;
    s.name = "decode";
    s.iterations = 4;
    s.perIterationShapes = true;
    s.emit = [](GraphBuilder& b, std::int64_t iter) {
        b.attention(graph::AttentionKind::CausalSelf, 1, 2, 1, iter + 1,
                    16);
    };
    p.stages.push_back(std::move(s));
    const ExecutionPlan plan = lowerPipeline(p, costModel());

    ASSERT_EQ(plan.ops.size(), 4u);
    for (std::size_t oi = 0; oi < plan.ops.size(); ++oi) {
        EXPECT_EQ(plan.ops[oi].repeat, 1);
        EXPECT_EQ(plan.ops[oi].seqKv,
                  static_cast<std::int64_t>(oi) + 1);
    }
}

TEST(LowerPipeline, DepsAlwaysPointBackward)
{
    LoweringOptions split;
    split.splitWeightStreams = true;
    for (const ExecutionPlan& plan :
         {lowerPipeline(models::buildModel(models::ModelId::
                                               StableDiffusion),
                        costModel()),
          lowerPipeline(mlpPipeline(), costModel(), split)}) {
        for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
            for (const std::int32_t dep : plan.nodes[n].deps) {
                EXPECT_GE(dep, 0);
                EXPECT_LT(static_cast<std::size_t>(dep), n);
            }
        }
        // Node ownership partitions [0, nodes) in order.
        std::size_t next = 0;
        for (const PlanOp& op : plan.ops) {
            EXPECT_EQ(op.firstNode, next);
            EXPECT_GE(op.nodeCount, 1u);
            next += op.nodeCount;
        }
        EXPECT_EQ(next, plan.nodes.size());
    }
}

TEST(LowerPipeline, WeightSplittingPeelsCopyNodes)
{
    const kernels::CostModel model = costModel();
    const ExecutionPlan plain = lowerPipeline(mlpPipeline(), model);
    LoweringOptions split;
    split.splitWeightStreams = true;
    const ExecutionPlan streamed =
        lowerPipeline(mlpPipeline(), model, split);

    ASSERT_EQ(plain.ops.size(), 2u);
    EXPECT_FALSE(plain.hasWeightStreams);
    EXPECT_TRUE(streamed.hasWeightStreams);
    ASSERT_EQ(streamed.ops.size(), 2u);
    // Each linear gains one weight-stream node ahead of its kernel.
    ASSERT_EQ(streamed.nodes.size(), plain.nodes.size() + 2);

    for (std::size_t oi = 0; oi < streamed.ops.size(); ++oi) {
        const PlanOp& op = streamed.ops[oi];
        ASSERT_EQ(op.nodeCount, 2u);
        const PlanNode& w = streamed.nodes[op.firstNode];
        const PlanNode& k = streamed.nodes[op.firstNode + 1];
        EXPECT_TRUE(w.weightStream);
        EXPECT_EQ(w.lane, Lane::Copy);
        EXPECT_EQ(w.klass, kernels::KernelClass::Memory);
        EXPECT_EQ(w.label, "linear.weight_stream");
        EXPECT_EQ(w.flops, 0.0);
        EXPECT_EQ(w.launches, 0);
        EXPECT_GT(w.hbmBytes, static_cast<double>(1 << 20));

        EXPECT_FALSE(k.weightStream);
        EXPECT_EQ(k.lane, Lane::Compute);
        // The compute kernel depends on its weight prefetch, and
        // traffic is conserved: split bytes sum to the fused bytes.
        EXPECT_NE(std::find(k.deps.begin(), k.deps.end(),
                            static_cast<std::int32_t>(op.firstNode)),
                  k.deps.end());
        const PlanNode& fused = plain.nodes[plain.ops[oi].firstNode];
        EXPECT_DOUBLE_EQ(w.hbmBytes + k.hbmBytes, fused.hbmBytes);
        EXPECT_DOUBLE_EQ(k.flops, fused.flops);
        EXPECT_EQ(k.launches, fused.launches);
    }
    // The two copy nodes serialize against each other on their lane.
    const PlanNode& second_w =
        streamed.nodes[streamed.ops[1].firstNode];
    ASSERT_EQ(second_w.deps.size(), 1u);
    EXPECT_EQ(second_w.deps[0],
              static_cast<std::int32_t>(streamed.ops[0].firstNode));
    // Splitting adds no device launches.
    EXPECT_EQ(streamed.totalLaunches(), plain.totalLaunches());
}

TEST(LowerPipeline, SplitThresholdKeepsSmallWeightsFused)
{
    LoweringOptions split;
    split.splitWeightStreams = true;
    split.minStreamedWeightBytes = 1LL << 40; // nothing qualifies
    const ExecutionPlan plan =
        lowerPipeline(mlpPipeline(), costModel(), split);
    EXPECT_FALSE(plan.hasWeightStreams);
    for (const PlanNode& node : plan.nodes)
        EXPECT_FALSE(node.weightStream);
}

TEST(LowerPipeline, ComputeBoundWeightsStayFused)
{
    // A large-batch linear is compute-bound: streaming its weights
    // cannot shorten the critical path, so lowering leaves it alone.
    Pipeline p;
    p.name = "dense";
    Stage s;
    s.name = "s";
    s.iterations = 1;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.linear(TensorDesc({64, 4096, 4096}, DType::F16), 4096);
    };
    p.stages.push_back(std::move(s));
    LoweringOptions split;
    split.splitWeightStreams = true;
    const ExecutionPlan plan = lowerPipeline(p, costModel(), split);
    EXPECT_FALSE(plan.hasWeightStreams);
}

TEST(LowerPipeline, TotalLaunchesAppliesRepeats)
{
    const ExecutionPlan one = lowerPipeline(toyPipeline(1), costModel());
    const ExecutionPlan ten = lowerPipeline(toyPipeline(10), costModel());
    EXPECT_GT(one.totalLaunches(), 0);
    EXPECT_EQ(ten.totalLaunches(), 10 * one.totalLaunches());
}

TEST(Lane, Names)
{
    EXPECT_EQ(laneName(Lane::Compute), "compute");
    EXPECT_EQ(laneName(Lane::Copy), "copy");
}

} // namespace
} // namespace mmgen::exec
