/**
 * @file
 * Zoo-wide bit-identity of the lower+schedule profiler with the seed's
 * summed accounting.
 *
 * The refactor's core contract: with every lowering and scheduling
 * knob at its default, `Profiler::profile` must reproduce the old
 * accumulate-as-you-trace arithmetic *bit for bit* — per op
 * `(sum of part roofline seconds) * repeat`, accumulated in trace
 * order. The oracle below replays exactly that computation straight
 * from the traced stages via CostModel, independent of the exec
 * subsystem, and every comparison is EXPECT_EQ on doubles.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "kernels/cost_model.hh"
#include "models/model_suite.hh"
#include "profiler/engine.hh"

namespace mmgen::profiler {
namespace {

using graph::AttentionBackend;

/** The seed profiler's accumulation, replayed without exec::. */
struct SeedOracle
{
    double totalSeconds = 0.0;
    double totalFlops = 0.0;
    double totalHbmBytes = 0.0;
    std::int64_t totalLaunches = 0;
    std::vector<double> stageSeconds;
};

SeedOracle
seedProfile(const graph::Pipeline& pipeline,
            const ProfileOptions& opts)
{
    const kernels::CostModel model(opts.gpu, opts.backend,
                                   opts.efficiency);
    SeedOracle oracle;
    const auto accumulate = [&](const graph::Trace& trace,
                                std::int64_t repeat, double& stage_s) {
        for (const auto& op : trace.ops()) {
            const kernels::OpCost cost = model.cost(op);
            const kernels::OpTime time =
                model.time(cost, op.dtype, repeat);
            const double r = static_cast<double>(repeat);
            oracle.totalSeconds += time.seconds;
            stage_s += time.seconds;
            oracle.totalFlops += cost.totalFlops() * r;
            oracle.totalHbmBytes += cost.totalBytes() * r;
            oracle.totalLaunches += cost.totalLaunches() * repeat;
        }
    };
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        double stage_s = 0.0;
        if (stage.perIterationShapes) {
            for (std::int64_t it = 0; it < stage.iterations; ++it)
                accumulate(pipeline.traceStage(si, it), 1, stage_s);
        } else {
            accumulate(pipeline.traceStage(si, 0), stage.iterations,
                       stage_s);
        }
        oracle.stageSeconds.push_back(stage_s);
    }
    return oracle;
}

TEST(TimelineEquivalence, DefaultConfigIsBitIdenticalZooWide)
{
    for (const models::ModelId id : models::allModels()) {
        const graph::Pipeline pipeline = models::buildModel(id);
        for (const AttentionBackend backend :
             {AttentionBackend::Baseline, AttentionBackend::Flash,
              AttentionBackend::FlashDecode}) {
            ProfileOptions opts;
            opts.backend = backend;
            const ProfileResult res =
                Profiler(opts).profile(pipeline);
            const SeedOracle oracle = seedProfile(pipeline, opts);

            const std::string where =
                pipeline.name + " backend " +
                std::to_string(static_cast<int>(backend));
            // Bitwise, not NEAR: the scheduler must preserve the
            // seed's exact FP accumulation order.
            EXPECT_EQ(res.totalSeconds, oracle.totalSeconds) << where;
            EXPECT_EQ(res.totalFlops, oracle.totalFlops) << where;
            EXPECT_EQ(res.totalHbmBytes, oracle.totalHbmBytes)
                << where;
            EXPECT_EQ(res.totalLaunches, oracle.totalLaunches)
                << where;
            ASSERT_EQ(res.stageSeconds.size(),
                      oracle.stageSeconds.size())
                << where;
            for (std::size_t si = 0; si < oracle.stageSeconds.size();
                 ++si) {
                EXPECT_EQ(res.stageSeconds[si].second,
                          oracle.stageSeconds[si]) // bitwise
                    << where << " stage " << si;
            }
        }
    }
}

TEST(TimelineEquivalence, KernelClassBreakdownIsBitIdentical)
{
    const graph::Pipeline pipeline =
        models::buildModel(models::ModelId::StableDiffusion);
    ProfileOptions opts;
    opts.backend = AttentionBackend::Baseline;
    const ProfileResult res = Profiler(opts).profile(pipeline);

    // Replay the seed's per-kernel-class attribution.
    const kernels::CostModel model(opts.gpu, opts.backend,
                                   opts.efficiency);
    std::map<kernels::KernelClass, double> expected;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        ASSERT_FALSE(stage.perIterationShapes); // SD folds every stage
        const graph::Trace trace = pipeline.traceStage(si, 0);
        for (const auto& op : trace.ops()) {
            for (const auto& [klass, seconds] : model.timeByKernelClass(
                     model.cost(op), op.dtype, stage.iterations))
                expected[klass] += seconds;
        }
    }
    ASSERT_EQ(res.kernelClassSeconds.size(), expected.size());
    for (const auto& [klass, seconds] : expected)
        EXPECT_EQ(res.kernelClassSeconds.at(klass), seconds) // bitwise
            << kernels::kernelClassName(klass);
}

} // namespace
} // namespace mmgen::profiler
