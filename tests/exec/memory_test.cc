/**
 * @file
 * Static memory analysis over lowered plans: liveness interval
 * sanity, the reuse-bound ordering weights <= programPeak <=
 * scheduledPeak <= noReuse across the whole zoo and every attention
 * backend, byte-identical profiles at any --jobs count, and the
 * monotonicity + capacity contracts of the feasibility bound.
 */

#include <gtest/gtest.h>

#include <vector>

#include "exec/liveness.hh"
#include "exec/memory.hh"
#include "exec/schedule.hh"
#include "kernels/cost_model.hh"
#include "models/model_suite.hh"
#include "models/stable_diffusion.hh"
#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"

namespace mmgen::exec {
namespace {

MemoryProfile
profileModel(models::ModelId id, graph::AttentionBackend backend)
{
    const graph::Pipeline p = models::buildModel(id);
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const kernels::CostModel model(gpu, backend,
                                   kernels::EfficiencyParams::defaults());
    const ExecutionPlan plan = lowerPipeline(p, model);
    const Timeline timeline = TimelineScheduler(gpu).schedule(plan);
    return analyzeMemory(plan, timeline);
}

TEST(Liveness, IntervalsAreClosedAndOrdered)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const kernels::CostModel model(
        hw::GpuSpec::a100_80gb(), graph::AttentionBackend::Flash,
        kernels::EfficiencyParams::defaults());
    const ExecutionPlan plan = lowerPipeline(p, model);
    const Liveness live = deriveLiveness(plan);

    EXPECT_GT(live.weightBytes, 0.0);
    EXPECT_FALSE(live.buffers.empty());
    std::size_t prev_def = 0;
    for (const LiveBuffer& b : live.buffers) {
        EXPECT_LE(b.defNode, b.lastUseNode);
        EXPECT_LT(b.lastUseNode, plan.nodes.size());
        EXPECT_LT(b.opIndex, plan.ops.size());
        EXPECT_GE(b.bytes, 0.0);
        EXPECT_GE(b.defNode, prev_def) << "buffers not in def order";
        prev_def = b.defNode;
    }
}

TEST(MemoryProfile, BoundsOrderedForWholeZooEveryBackend)
{
    for (models::ModelId id : models::allModels()) {
        for (graph::AttentionBackend backend :
             {graph::AttentionBackend::Baseline,
              graph::AttentionBackend::Flash,
              graph::AttentionBackend::FlashDecode}) {
            const MemoryProfile m = profileModel(id, backend);
            const std::string what =
                models::buildModel(id).name + "/" +
                graph::attentionBackendName(backend);
            EXPECT_GT(m.weightBytes, 0.0) << what;
            EXPECT_LE(m.weightBytes, m.programPeakBytes) << what;
            EXPECT_LE(m.programPeakBytes, m.scheduledPeakBytes)
                << what;
            EXPECT_LE(m.scheduledPeakBytes, m.noReuseBytes) << what;
            EXPECT_GE(m.scheduledPeakSeconds, 0.0) << what;
            EXPECT_FALSE(m.peakNodes.empty()) << what;
            EXPECT_FALSE(m.stageResidency.empty()) << what;
            // Stage residency peaks are bounded by the global
            // program-order peak, and every stage holds the weights.
            for (const StageResidency& s : m.stageResidency) {
                EXPECT_GE(s.peakBytes, m.weightBytes) << what;
                EXPECT_LE(s.peakBytes, m.programPeakBytes) << what;
            }
        }
    }
}

std::vector<MemoryProfile>
sweepZoo()
{
    const std::vector<models::ModelId> ids = models::allModels();
    return runtime::parallelMap(
        static_cast<std::int64_t>(ids.size()), [&](std::int64_t i) {
            return profileModel(ids[static_cast<std::size_t>(i)],
                                graph::AttentionBackend::Flash);
        });
}

TEST(MemoryProfile, BitIdenticalAcrossJobs)
{
    runtime::ThreadPool::setGlobalJobs(1);
    const std::vector<MemoryProfile> serial = sweepZoo();
    for (const int jobs : {2, 8}) {
        runtime::ThreadPool::setGlobalJobs(jobs);
        const std::vector<MemoryProfile> parallel = sweepZoo();
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            // Bitwise equality, not NEAR: determinism is the contract.
            EXPECT_EQ(parallel[i].weightBytes, serial[i].weightBytes);
            EXPECT_EQ(parallel[i].programPeakBytes,
                      serial[i].programPeakBytes);
            EXPECT_EQ(parallel[i].scheduledPeakBytes,
                      serial[i].scheduledPeakBytes);
            EXPECT_EQ(parallel[i].scheduledPeakSeconds,
                      serial[i].scheduledPeakSeconds);
            EXPECT_EQ(parallel[i].noReuseBytes,
                      serial[i].noReuseBytes);
            EXPECT_EQ(parallel[i].peakNodes, serial[i].peakNodes);
            EXPECT_EQ(parallel[i].bufferCount,
                      serial[i].bufferCount);
        }
    }
    runtime::ThreadPool::setGlobalJobs(0);
}

TEST(Feasibility, BatchBoundMonotoneInImageSize)
{
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    std::int64_t prev = -1;
    for (std::int64_t image : {256, 512, 768}) {
        models::StableDiffusionConfig cfg;
        cfg.imageSize = image;
        const std::int64_t batch =
            maxFeasibleBatch(models::buildStableDiffusion(cfg), gpu);
        EXPECT_GT(batch, 0) << "image " << image;
        if (prev >= 0)
            EXPECT_LE(batch, prev)
                << "batch bound grew with image size " << image;
        prev = batch;
    }
}

TEST(Feasibility, PartiDoesNotFitV100)
{
    const graph::Pipeline parti =
        models::buildModel(models::ModelId::Parti);
    // 20B f16 parameters are ~41 GiB: infeasible at any batch on a
    // 32 GB V100, comfortably feasible on an 80 GB A100.
    EXPECT_EQ(maxFeasibleBatch(parti, hw::GpuSpec::v100_32gb()), 0);
    EXPECT_GE(maxFeasibleBatch(parti, hw::GpuSpec::a100_80gb()), 1);
}

TEST(Feasibility, ReportIsInternallyConsistent)
{
    const FeasibilityReport rep = analyzeFeasibility(
        models::buildModel(models::ModelId::StableDiffusion),
        hw::GpuSpec::a100_80gb());
    EXPECT_EQ(rep.weightBytes, rep.profile.weightBytes);
    EXPECT_GT(rep.dynamicBytes, 0.0);
    EXPECT_EQ(rep.capacityBytes, hw::GpuSpec::a100_80gb().hbmBytes);
    // The bound is exactly the floor of remaining capacity over the
    // per-request dynamic demand.
    const double room = rep.capacityBytes - rep.weightBytes;
    EXPECT_LE(static_cast<double>(rep.maxBatch) * rep.dynamicBytes,
              room);
    EXPECT_GT(static_cast<double>(rep.maxBatch + 1) *
                  rep.dynamicBytes,
              room);
}

} // namespace
} // namespace mmgen::exec
