/**
 * @file
 * Tests for the event-timeline scheduler: serial bit-equivalence with
 * summed roofline time, compute/copy overlap, launch-queue overhead
 * hiding, CUDA-graph amortization, and determinism.
 */

#include <gtest/gtest.h>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "graph/builder.hh"
#include "hw/gpu_spec.hh"
#include "hw/roofline.hh"
#include "models/model_suite.hh"
#include "util/logging.hh"

namespace mmgen::exec {
namespace {

using graph::AttentionBackend;
using graph::GraphBuilder;
using graph::Pipeline;
using graph::Stage;

const hw::GpuSpec&
gpu()
{
    static const hw::GpuSpec g = hw::GpuSpec::a100_80gb();
    return g;
}

kernels::CostModel
costModel(AttentionBackend backend = AttentionBackend::Flash)
{
    return kernels::CostModel(gpu(), backend);
}

Pipeline
toyPipeline(std::int64_t steps)
{
    Pipeline p;
    p.name = "toy";
    Stage s;
    s.name = "unet";
    s.iterations = steps;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.conv2d(TensorDesc({1, 8, 16, 16}, DType::F16), 8);
        b.attention(graph::AttentionKind::SelfSpatial, 1, 2, 256, 256,
                    16);
    };
    p.stages.push_back(std::move(s));
    return p;
}

Pipeline
mlpPipeline()
{
    Pipeline p;
    p.name = "mlp";
    Stage s;
    s.name = "ffn";
    s.iterations = 8;
    s.emit = [](GraphBuilder& b, std::int64_t) {
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 4096);
    };
    p.stages.push_back(std::move(s));
    return p;
}

ExecutionPlan
splitPlan(const Pipeline& p)
{
    LoweringOptions split;
    split.splitWeightStreams = true;
    return lowerPipeline(p, costModel(), split);
}

double
nodeRooflineSeconds(const PlanNode& node)
{
    hw::TimeEstimateInputs in;
    in.flops = node.flops;
    in.hbmBytes = node.hbmBytes;
    in.computeEfficiency = node.computeEff;
    in.memoryEfficiency = node.memEff;
    in.launches = node.launches;
    in.dtype = node.dtype;
    return hw::estimateTime(gpu(), in).seconds;
}

TEST(ScheduleOptions, DefaultDetection)
{
    EXPECT_TRUE(ScheduleOptions().isDefault());
    ScheduleOptions o;
    o.streams = 2;
    EXPECT_FALSE(o.isDefault());
    o = ScheduleOptions();
    o.launchQueueDepth = 1;
    EXPECT_FALSE(o.isDefault());
    o = ScheduleOptions();
    o.graphLaunch = true;
    EXPECT_FALSE(o.isDefault());
    o = ScheduleOptions();
    o.graphReplayOverheadFraction = 0.5;
    EXPECT_FALSE(o.isDefault());
}

TEST(TimelineScheduler, RejectsInvalidOptions)
{
    ScheduleOptions bad;
    bad.streams = 0;
    EXPECT_THROW(TimelineScheduler(gpu(), bad), FatalError);
    bad = ScheduleOptions();
    bad.launchQueueDepth = -1;
    EXPECT_THROW(TimelineScheduler(gpu(), bad), FatalError);
    bad = ScheduleOptions();
    bad.graphReplayOverheadFraction = 1.5;
    EXPECT_THROW(TimelineScheduler(gpu(), bad), FatalError);
}

TEST(TimelineScheduler, SerialScheduleMatchesSummedRoofline)
{
    const ExecutionPlan plan =
        lowerPipeline(toyPipeline(5), costModel());
    const Timeline tl = TimelineScheduler(gpu()).schedule(plan);

    ASSERT_EQ(tl.events.size(), plan.nodes.size());
    ASSERT_EQ(tl.nodeSeconds.size(), plan.nodes.size());
    ASSERT_EQ(tl.opSeconds.size(), plan.ops.size());
    ASSERT_EQ(tl.streamBusySeconds.size(), 1u);

    // Per op the makespan contribution is (sum of part seconds) *
    // repeat — the seed profiler's exact arithmetic.
    double expected = 0.0;
    for (const PlanOp& op : plan.ops) {
        double block = 0.0;
        for (std::size_t n = op.firstNode;
             n < op.firstNode + op.nodeCount; ++n)
            block += nodeRooflineSeconds(plan.nodes[n]);
        expected += block * static_cast<double>(op.repeat);
    }
    EXPECT_EQ(tl.makespan, expected); // bitwise
    EXPECT_EQ(tl.streamBusySeconds[0], expected);

    // Events tile [0, makespan) back to back on stream 0.
    double clock = 0.0;
    for (std::size_t i = 0; i < tl.events.size(); ++i) {
        const TimelineEvent& ev = tl.events[i];
        EXPECT_EQ(ev.node, i);
        EXPECT_EQ(ev.stream, 0);
        EXPECT_EQ(ev.startSeconds, clock) << "event " << i;
        EXPECT_GT(ev.endSeconds, ev.startSeconds);
        clock = ev.endSeconds;
    }
    EXPECT_EQ(clock, tl.makespan);
    // Per-node attribution applies repeats.
    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        EXPECT_EQ(tl.nodeSeconds[n],
                  nodeRooflineSeconds(plan.nodes[n]) *
                      static_cast<double>(plan.nodes[n].repeat));
    }
}

TEST(TimelineScheduler, DeterministicAcrossRuns)
{
    const ExecutionPlan plan = splitPlan(mlpPipeline());
    ScheduleOptions o;
    o.streams = 2;
    o.launchQueueDepth = 2;
    const TimelineScheduler sched(gpu(), o);
    const Timeline a = sched.schedule(plan);
    const Timeline b = sched.schedule(plan);
    ASSERT_EQ(a.events.size(), b.events.size());
    EXPECT_EQ(a.makespan, b.makespan);
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].startSeconds, b.events[i].startSeconds);
        EXPECT_EQ(a.events[i].endSeconds, b.events[i].endSeconds);
        EXPECT_EQ(a.events[i].stream, b.events[i].stream);
    }
}

TEST(TimelineScheduler, CopyStreamOverlapsComputeAndNeverHurts)
{
    const ExecutionPlan plan = splitPlan(mlpPipeline());
    ASSERT_TRUE(plan.hasWeightStreams);

    const Timeline serial = TimelineScheduler(gpu()).schedule(plan);
    ScheduleOptions o;
    o.streams = 2;
    const Timeline overlapped =
        TimelineScheduler(gpu(), o).schedule(plan);

    ASSERT_EQ(overlapped.streamBusySeconds.size(), 2u);
    EXPECT_GT(overlapped.streamBusySeconds[1], 0.0);
    bool copy_stream_used = false;
    for (const TimelineEvent& ev : overlapped.events)
        copy_stream_used |= ev.stream == 1;
    EXPECT_TRUE(copy_stream_used);

    // Prefetching weights under compute strictly shortens this plan
    // (the peeled kernels were memory-bound), and can never lengthen
    // it.
    EXPECT_LT(overlapped.makespan, serial.makespan);
    // The makespan still covers both streams' busy time.
    EXPECT_GE(overlapped.makespan, overlapped.streamBusySeconds[0]);
    EXPECT_GE(overlapped.makespan, overlapped.streamBusySeconds[1]);
}

TEST(TimelineScheduler, WithoutCopyNodesMultiStreamIsBitIdentical)
{
    // streams=2 on a plan with no weight streams routes everything to
    // stream 0 through the serial path: bit-identical to default.
    const ExecutionPlan plan =
        lowerPipeline(toyPipeline(5), costModel());
    ScheduleOptions o;
    o.streams = 2;
    const Timeline serial = TimelineScheduler(gpu()).schedule(plan);
    const Timeline multi = TimelineScheduler(gpu(), o).schedule(plan);
    EXPECT_EQ(multi.makespan, serial.makespan);
    ASSERT_EQ(multi.streamBusySeconds.size(), 1u);
}

TEST(TimelineScheduler, LaunchQueueHidesOverhead)
{
    const ExecutionPlan plan =
        lowerPipeline(toyPipeline(50), costModel());
    const Timeline sync = TimelineScheduler(gpu()).schedule(plan);

    ScheduleOptions queued;
    queued.launchQueueDepth = 2;
    const Timeline deep =
        TimelineScheduler(gpu(), queued).schedule(plan);

    // Same host overhead is paid either way...
    EXPECT_DOUBLE_EQ(deep.launchOverheadSeconds,
                     sync.launchOverheadSeconds);
    EXPECT_GT(sync.launchOverheadSeconds, 0.0);
    // ...but the queue hides (some of) it under device execution.
    EXPECT_LT(deep.makespan, sync.makespan);

    // Lower bound: pure device time with every launch hidden.
    double device = 0.0;
    for (const TimelineEvent& ev : deep.events)
        device += ev.durationSeconds();
    EXPECT_GE(deep.makespan, device);
    EXPECT_LE(deep.makespan, sync.makespan);
}

TEST(TimelineScheduler, GraphLaunchAmortizesRepeatOverhead)
{
    const ExecutionPlan plan =
        lowerPipeline(toyPipeline(50), costModel());
    const Timeline sync = TimelineScheduler(gpu()).schedule(plan);

    ScheduleOptions graphed;
    graphed.launchQueueDepth = 2;
    graphed.graphLaunch = true;
    graphed.graphReplayOverheadFraction = 0.1;
    const Timeline amortized =
        TimelineScheduler(gpu(), graphed).schedule(plan);

    // 50 folded iterations pay 1 + 49 * 0.1 launches instead of 50.
    EXPECT_LT(amortized.launchOverheadSeconds,
              0.2 * sync.launchOverheadSeconds);
    EXPECT_GT(amortized.launchOverheadSeconds, 0.0);
    EXPECT_LE(amortized.makespan, sync.makespan);

    // Free replays collapse overhead to one launch per node.
    ScheduleOptions free_replay = graphed;
    free_replay.graphReplayOverheadFraction = 0.0;
    const Timeline free_tl =
        TimelineScheduler(gpu(), free_replay).schedule(plan);
    EXPECT_DOUBLE_EQ(free_tl.launchOverheadSeconds,
                     sync.launchOverheadSeconds / 50.0);
}

TEST(TimelineScheduler, DependenciesAlwaysHonored)
{
    const ExecutionPlan plan = splitPlan(mlpPipeline());
    for (const int q : {0, 1, 4}) {
        ScheduleOptions o;
        o.streams = 2;
        o.launchQueueDepth = q;
        const Timeline tl = TimelineScheduler(gpu(), o).schedule(plan);
        for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
            for (const std::int32_t dep : plan.nodes[n].deps) {
                EXPECT_GE(tl.events[n].startSeconds,
                          tl.events[static_cast<std::size_t>(dep)]
                              .endSeconds)
                    << "node " << n << " dep " << dep << " depth " << q;
            }
        }
    }
}

TEST(TimelineScheduler, OverlapNeverSlowerOnSuiteModels)
{
    // The bench gate's property, spot-checked in-tree on two models.
    ScheduleOptions o;
    o.streams = 2;
    o.launchQueueDepth = 2;
    const TimelineScheduler overlap(gpu(), o);
    const TimelineScheduler serial(gpu());
    for (const models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Muse}) {
        const Pipeline p = models::buildModel(id);
        const ExecutionPlan plain = lowerPipeline(p, costModel());
        const ExecutionPlan split = splitPlan(p);
        const double base = serial.schedule(plain).makespan;
        const double fast = overlap.schedule(split).makespan;
        EXPECT_LE(fast, base * (1.0 + 1e-9)) << p.name;
    }
}

} // namespace
} // namespace mmgen::exec
