/**
 * @file
 * Property tests for the attained-efficiency models.
 */

#include <gtest/gtest.h>

#include "kernels/efficiency.hh"
#include "util/logging.hh"

namespace mmgen::kernels {
namespace {

const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
const EfficiencyParams& P = EfficiencyParams::defaults();

TEST(GemmComputeEff, LargeSquareNearPeakFraction)
{
    const double eff = gemmComputeEff(gpu, P, 1, 8192, 8192, 8192);
    EXPECT_GT(eff, 0.6 * P.gemmPeakFraction);
    EXPECT_LE(eff, P.gemmPeakFraction);
}

TEST(GemmComputeEff, GemvIsInefficient)
{
    // Decode-phase projections: one row against a big weight matrix.
    const double gemv = gemmComputeEff(gpu, P, 1, 1, 4096, 4096);
    const double gemm = gemmComputeEff(gpu, P, 1, 4096, 4096, 4096);
    EXPECT_LT(gemv, 0.15 * gemm);
}

TEST(GemmComputeEff, ShortKReducesEfficiency)
{
    const double shallow = gemmComputeEff(gpu, P, 64, 128, 128, 8);
    const double deep = gemmComputeEff(gpu, P, 64, 128, 128, 512);
    EXPECT_LT(shallow, deep);
}

TEST(GemmComputeEff, FlooredAndBounded)
{
    const double eff = gemmComputeEff(gpu, P, 1, 1, 1, 1);
    EXPECT_GE(eff, P.efficiencyFloor);
    EXPECT_LE(eff, 1.0);
    EXPECT_THROW(gemmComputeEff(gpu, P, 0, 1, 1, 1), FatalError);
}

TEST(GemmMemEff, TinyMatricesAmortizePoorly)
{
    // The temporal-attention effect: tiny per-batch matrices attain a
    // fraction of streaming bandwidth.
    const double tiny = gemmMemEff(P, 4096, 16, 16, 64, 2);
    const double large = gemmMemEff(P, 16, 1024, 1024, 64, 2);
    EXPECT_LT(tiny, 0.75 * large);
    EXPECT_GE(tiny, P.efficiencyFloor);
}

TEST(FlashComputeEff, GrowsWithHeadDim)
{
    const double d40 = flashComputeEff(P, 40, 4096);
    const double d64 = flashComputeEff(P, 64, 4096);
    const double d128 = flashComputeEff(P, 128, 4096);
    EXPECT_LT(d40, d64);
    EXPECT_LT(d64, d128);
    EXPECT_LE(d128, P.flashPeakFraction);
}

TEST(FlashComputeEff, ShortSequencesUnderfill)
{
    EXPECT_LT(flashComputeEff(P, 128, 16),
              0.5 * flashComputeEff(P, 128, 4096));
}

TEST(AttentionMemEff, FootprintModelOrdersPrefillAboveDecode)
{
    const double prefill = attentionMemEff(P, 4096, 4096, 128, 2);
    const double decode = attentionMemEff(P, 1, 4096, 128, 2);
    const double temporal = attentionMemEff(P, 16, 16, 64, 2);
    EXPECT_GT(prefill, temporal);
    EXPECT_GT(decode, temporal); // decode still reads a long KV
}

TEST(StreamMemEff, RampsWithBytes)
{
    EXPECT_LT(streamMemEff(P, 1024), streamMemEff(P, 1 << 20));
    EXPECT_LE(streamMemEff(P, 1LL << 32), P.streamMemFraction);
    EXPECT_THROW(streamMemEff(P, -1), FatalError);
}

/** Property: GEMM efficiency is monotone non-decreasing in M. */
class GemmMonotoneInM : public ::testing::TestWithParam<std::int64_t>
{};

TEST_P(GemmMonotoneInM, AcrossMSweep)
{
    const std::int64_t k = GetParam();
    double prev = 0.0;
    for (std::int64_t m : {16, 64, 256, 1024, 4096, 16384}) {
        const double eff = gemmComputeEff(gpu, P, 1, m, 4096, k);
        EXPECT_GE(eff, prev - 1e-12)
            << "m=" << m << " k=" << k;
        prev = eff;
    }
}

INSTANTIATE_TEST_SUITE_P(KSweep, GemmMonotoneInM,
                         ::testing::Values(16, 64, 320, 4096));

/** Property: every efficiency stays in [floor, 1]. */
class EfficiencyBounds
    : public ::testing::TestWithParam<std::tuple<std::int64_t,
                                                 std::int64_t,
                                                 std::int64_t>>
{};

TEST_P(EfficiencyBounds, AllModelsBounded)
{
    const auto [m, n, k] = GetParam();
    for (double e :
         {gemmComputeEff(gpu, P, 8, m, n, k),
          gemmMemEff(P, 8, m, n, k, 2), convComputeEff(gpu, P, m, n, k),
          flashComputeEff(P, k, m), attentionMemEff(P, m, n, k, 2)}) {
        EXPECT_GE(e, P.efficiencyFloor);
        EXPECT_LE(e, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, EfficiencyBounds,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 16, 4096),
                       ::testing::Values<std::int64_t>(8, 320, 8192),
                       ::testing::Values<std::int64_t>(8, 64, 512)));

} // namespace
} // namespace mmgen::kernels
