/**
 * @file
 * Tests for the op-level cost model.
 */

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "kernels/cost_model.hh"

namespace mmgen::kernels {
namespace {

using graph::AttentionBackend;
using graph::GraphBuilder;
using graph::Op;
using graph::OpKind;
using graph::Trace;

CostModel
model(AttentionBackend backend = AttentionBackend::Flash)
{
    return CostModel(hw::GpuSpec::a100_80gb(), backend);
}

/** Build a single op through the builder for realistic attrs. */
template <typename Fn>
Op
buildOne(Fn&& fn)
{
    Trace t;
    GraphBuilder b(t);
    fn(b);
    EXPECT_EQ(t.size(), 1u);
    return t.ops()[0];
}

TEST(CostModel, ConvFlopsMatchImplicitGemm)
{
    const Op op = buildOne([](GraphBuilder& b) {
        b.conv2d(TensorDesc({1, 320, 64, 64}, DType::F16), 320, 3, 1);
    });
    const OpCost c = model().cost(op);
    // 2 * (N*OH*OW) * outC * (inC * 9)
    EXPECT_DOUBLE_EQ(c.totalFlops(),
                     2.0 * 64 * 64 * 320 * (320.0 * 9));
    EXPECT_EQ(c.parts[0].klass, KernelClass::Conv);
}

TEST(CostModel, ConvStrideShrinksOutputWork)
{
    const Op s1 = buildOne([](GraphBuilder& b) {
        b.conv2d(TensorDesc({1, 64, 64, 64}, DType::F16), 64, 3, 1);
    });
    const Op s2 = buildOne([](GraphBuilder& b) {
        b.conv2d(TensorDesc({1, 64, 64, 64}, DType::F16), 64, 3, 2);
    });
    EXPECT_DOUBLE_EQ(model().cost(s2).totalFlops() * 4.0,
                     model().cost(s1).totalFlops());
}

TEST(CostModel, LinearIsWeightBoundAtRowOne)
{
    const Op op = buildOne([](GraphBuilder& b) {
        b.linear(TensorDesc({1, 1, 4096}, DType::F16), 32000, false);
    });
    const OpCost c = model().cost(op);
    // Weight matrix dominates traffic in the decode regime.
    EXPECT_GT(c.totalBytes(), 4096.0 * 32000 * 2);
    EXPECT_LT(c.totalBytes(), 1.01 * (4096.0 * 32000 * 2 +
                                      2.0 * (4096 + 32000)));
    const OpTime t = model().time(op);
    EXPECT_GT(t.memorySeconds, t.computeSeconds);
}

TEST(CostModel, AttentionBackendSwitchesLowering)
{
    const Op op = buildOne([](GraphBuilder& b) {
        b.attention(graph::AttentionKind::SelfSpatial, 1, 8, 4096, 4096,
                    64);
    });
    EXPECT_EQ(model(AttentionBackend::Flash).cost(op).parts.size(), 1u);
    EXPECT_EQ(model(AttentionBackend::Baseline).cost(op).parts.size(),
              4u);
    EXPECT_LT(model(AttentionBackend::Flash).time(op).seconds,
              model(AttentionBackend::Baseline).time(op).seconds);
}

TEST(CostModel, RepeatScalesTimeLinearly)
{
    Op op = buildOne([](GraphBuilder& b) {
        b.conv2d(TensorDesc({1, 64, 32, 32}, DType::F16), 64);
    });
    const double once = model().time(op).seconds;
    op.repeat = 50;
    EXPECT_NEAR(model().time(op).seconds, 50.0 * once, 1e-12);
}

TEST(CostModel, NormSoftmaxElementwiseAreMemoryBound)
{
    for (auto make : {
             +[](GraphBuilder& b) {
                 b.groupNorm(TensorDesc({1, 320, 64, 64}, DType::F16));
             },
             +[](GraphBuilder& b) {
                 b.softmax(TensorDesc({8, 4096, 4096}, DType::F16));
             },
             +[](GraphBuilder& b) {
                 b.silu(TensorDesc({1, 320, 64, 64}, DType::F16));
             },
         }) {
        const Op op = buildOne(make);
        const OpTime t = model().time(op);
        EXPECT_GT(t.memorySeconds, t.computeSeconds)
            << graph::opKindName(op.kind);
    }
}

TEST(CostModel, EverythingProducesPositiveCost)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({1, 64, 32, 32}, DType::F16);
    b.conv2d(x, 64);
    b.conv3d(TensorDesc({1, 8, 4, 16, 16}, DType::F16), 8, 3, 1);
    b.linear(TensorDesc({1, 77, 768}, DType::F16), 768);
    b.matmul(4, 64, 64, 64);
    b.attention(graph::AttentionKind::CrossText, 1, 8, 4096, 77, 40);
    b.groupNorm(x);
    b.layerNorm(TensorDesc({1, 77, 768}, DType::F16));
    b.softmax(TensorDesc({8, 64, 64}, DType::F16));
    b.silu(x);
    b.binary(x, "add");
    b.embedding(77, 768, 49408);
    b.upsample2x(x);
    b.downsample2x(x);
    b.copy(x);
    const CostModel m = model();
    for (const auto& op : t.ops()) {
        const OpCost c = m.cost(op);
        EXPECT_GT(c.totalBytes(), 0.0) << graph::opKindName(op.kind);
        EXPECT_GE(c.totalFlops(), 0.0);
        EXPECT_GE(c.totalLaunches(), 1);
        EXPECT_GT(m.time(op).seconds, 0.0);
    }
}

TEST(OpWorkingSet, AttentionIncludesSimilarityOnlyInBaseline)
{
    const Op op = buildOne([](GraphBuilder& b) {
        b.attention(graph::AttentionKind::SelfSpatial, 1, 8, 4096, 4096,
                    64);
    });
    const double base =
        opWorkingSetBytes(op, AttentionBackend::Baseline);
    const double flash = opWorkingSetBytes(op, AttentionBackend::Flash);
    EXPECT_GT(base, flash);
    EXPECT_NEAR(base - flash, 8.0 * 4096.0 * 4096.0 * 2, 1.0);
}

TEST(OpWorkingSet, PositiveForAllKinds)
{
    Trace t;
    GraphBuilder b(t);
    const TensorDesc x({1, 8, 16, 16}, DType::F16);
    b.conv2d(x, 8);
    b.linear(TensorDesc({4, 8}, DType::F16), 8);
    b.matmul(1, 8, 8, 8);
    b.groupNorm(x);
    b.softmax(TensorDesc({4, 8}, DType::F16));
    b.silu(x);
    b.embedding(4, 8, 100);
    b.upsample2x(x);
    b.copy(x);
    for (const auto& op : t.ops())
        EXPECT_GT(opWorkingSetBytes(op), 0.0)
            << graph::opKindName(op.kind);
}

} // namespace
} // namespace mmgen::kernels
