/**
 * @file
 * Tests for the attention occupancy model and its Flash-Decoding
 * consequence.
 */

#include <gtest/gtest.h>

#include "kernels/efficiency.hh"
#include "util/logging.hh"

namespace mmgen::kernels {
namespace {

const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
const EfficiencyParams& P = EfficiencyParams::defaults();

TEST(AttentionOccupancy, MonotoneInCtas)
{
    double prev = 0.0;
    for (std::int64_t ctas : {1, 8, 32, 108, 216, 1024, 65536}) {
        const double occ = attentionOccupancy(gpu, P, ctas);
        EXPECT_GT(occ, prev);
        EXPECT_LE(occ, 1.0);
        prev = occ;
    }
}

TEST(AttentionOccupancy, HalfFillAtHalfTheSms)
{
    // By construction: ctas == numSms/2 gives 0.5.
    EXPECT_NEAR(attentionOccupancy(gpu, P, gpu.numSms / 2), 0.5, 1e-9);
}

TEST(AttentionOccupancy, DecodeShapesAreStarved)
{
    // One query x 32 heads: far below device fill.
    EXPECT_LT(attentionOccupancy(gpu, P, 32), 0.45);
    // A prefill grid saturates.
    EXPECT_GT(attentionOccupancy(gpu, P, 1024), 0.9);
}

TEST(AttentionOccupancy, Validation)
{
    EXPECT_THROW(attentionOccupancy(gpu, P, 0), FatalError);
    EXPECT_GE(attentionOccupancy(gpu, P, 1), P.efficiencyFloor);
}

} // namespace
} // namespace mmgen::kernels
