/**
 * @file
 * Tests for the attention kernel lowering — the mechanism behind the
 * paper's Flash-vs-baseline findings (Sections IV-A/IV-B).
 */

#include <gtest/gtest.h>

#include "kernels/attention.hh"
#include "kernels/cost_model.hh"

namespace mmgen::kernels {
namespace {

const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
const EfficiencyParams& P = EfficiencyParams::defaults();

graph::AttentionAttrs
attrs(std::int64_t b, std::int64_t h, std::int64_t sq, std::int64_t skv,
      std::int64_t d)
{
    graph::AttentionAttrs a;
    a.batch = b;
    a.heads = h;
    a.seqQ = sq;
    a.seqKv = skv;
    a.headDim = d;
    a.seqStrideElems = h * d;
    return a;
}

TEST(AttentionFlops, MatchesClosedForm)
{
    const auto a = attrs(2, 8, 1024, 1024, 64);
    EXPECT_DOUBLE_EQ(attentionMatmulFlops(a),
                     4.0 * 2 * 8 * 1024.0 * 1024.0 * 64);
    EXPECT_DOUBLE_EQ(attentionSoftmaxFlops(a),
                     5.0 * 2 * 8 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(similarityMatrixBytes(a, 2),
                     2.0 * 2 * 8 * 1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(qkvoBytes(a, 2),
                     (1024.0 + 2 * 1024.0 + 1024.0) * 64 * 2 * 8 * 2);
}

TEST(LowerAttention, FlashIsOneFusedKernel)
{
    const OpCost cost =
        lowerAttention(gpu, P, attrs(1, 8, 4096, 4096, 64), DType::F16,
                       graph::AttentionBackend::Flash);
    ASSERT_EQ(cost.parts.size(), 1u);
    EXPECT_EQ(cost.parts[0].launches, 1);
    EXPECT_EQ(cost.parts[0].klass, KernelClass::Gemm);
    // Flash traffic is exactly Q+K+V+O: no N^2 term.
    EXPECT_DOUBLE_EQ(cost.totalBytes(),
                     qkvoBytes(attrs(1, 8, 4096, 4096, 64), 2));
}

TEST(LowerAttention, BaselineMaterializesSimilarity)
{
    const auto a = attrs(1, 8, 4096, 4096, 64);
    const OpCost cost = lowerAttention(
        gpu, P, a, DType::F16, graph::AttentionBackend::Baseline);
    // QK gemm, scale, softmax, AV gemm (no mask: non-causal).
    ASSERT_EQ(cost.parts.size(), 4u);
    EXPECT_GE(cost.totalLaunches(), 4);
    // Baseline HBM traffic carries several passes over the (upcast)
    // similarity matrix.
    const double s = similarityMatrixBytes(a, 2) *
                     P.baselineSimilarityUpcast;
    EXPECT_GT(cost.totalBytes(), 5.0 * s);
}

TEST(LowerAttention, CausalAddsMaskKernelToBaselineOnly)
{
    auto a = attrs(1, 8, 1024, 1024, 64);
    a.causal = true;
    const OpCost base = lowerAttention(
        gpu, P, a, DType::F16, graph::AttentionBackend::Baseline);
    EXPECT_EQ(base.parts.size(), 5u); // + mask kernel

    // Flash skips masked tiles: causal flash does fewer FLOPs; eager
    // baseline computes the full matrix regardless.
    const OpCost flash = lowerAttention(gpu, P, a, DType::F16,
                                        graph::AttentionBackend::Flash);
    a.causal = false;
    const OpCost flash_full = lowerAttention(
        gpu, P, a, DType::F16, graph::AttentionBackend::Flash);
    EXPECT_LT(flash.totalFlops(), 0.7 * flash_full.totalFlops());
}

TEST(LowerAttention, StridedViewInflatesReadsNotWrites)
{
    auto contiguous = attrs(256, 8, 16, 16, 64);
    auto strided = contiguous;
    strided.featureStrideElems = 4096;
    const OpCost c = lowerAttention(gpu, P, contiguous, DType::F16,
                                    graph::AttentionBackend::Flash);
    const OpCost s = lowerAttention(gpu, P, strided, DType::F16,
                                    graph::AttentionBackend::Flash);
    EXPECT_GT(s.totalBytes(), 8.0 * c.totalBytes());
    // Writes are not inflated, so the factor stays below the full
    // sector/element ratio.
    EXPECT_LT(s.totalBytes(), 16.0 * c.totalBytes());
    // FLOPs are unaffected by layout.
    EXPECT_DOUBLE_EQ(s.totalFlops(), c.totalFlops());
}

/**
 * The prefill/decode asymmetry (paper Table III, Section IV-B): the
 * baseline-over-flash byte ratio — the headroom Flash can reclaim —
 * is far larger for block queries than for single-token queries.
 */
TEST(LowerAttention, PrefillGainsExceedDecodeGains)
{
    const auto prefill = attrs(1, 32, 2048, 2048, 128);
    const auto decode = attrs(1, 32, 1, 2048, 128);

    auto ratio = [&](const graph::AttentionAttrs& a) {
        const OpCost base = lowerAttention(
            gpu, P, a, DType::F16, graph::AttentionBackend::Baseline);
        const OpCost flash = lowerAttention(
            gpu, P, a, DType::F16, graph::AttentionBackend::Flash);
        return base.totalBytes() / flash.totalBytes();
    };
    EXPECT_GT(ratio(prefill), 10.0 * ratio(decode));
}

TEST(FlashDecode, SplitsKvForDecodeShapes)
{
    // Single-token decode: few CTAs, long KV => split.
    const auto decode = attrs(1, 32, 1, 4096, 128);
    const OpCost fd = lowerAttention(
        gpu, P, decode, DType::F16,
        graph::AttentionBackend::FlashDecode);
    ASSERT_EQ(fd.parts.size(), 1u);
    EXPECT_EQ(fd.parts[0].label, "flash_split_kv");
    EXPECT_EQ(fd.parts[0].launches, 2); // + reduction pass

    const OpCost plain = lowerAttention(
        gpu, P, decode, DType::F16, graph::AttentionBackend::Flash);
    const CostModel m(gpu, graph::AttentionBackend::FlashDecode);
    const CostModel mf(gpu, graph::AttentionBackend::Flash);
    graph::Op op;
    op.kind = graph::OpKind::Attention;
    op.attrs = decode;
    // Splitting buys back the occupancy the decode shape lacks.
    EXPECT_LT(m.time(op).seconds, 0.6 * mf.time(op).seconds);
    // At a small extra-traffic cost for the partial results.
    EXPECT_GT(fd.totalBytes(), plain.totalBytes());
    EXPECT_LT(fd.totalBytes(), 1.2 * plain.totalBytes());
}

TEST(AutoBackend, PicksTheShapeAppropriateKernel)
{
    // Decode shape: split-KV wins.
    EXPECT_EQ(selectAttentionBackend(gpu, P, attrs(1, 32, 1, 4096, 128),
                                     DType::F16),
              graph::AttentionBackend::FlashDecode);
    // Prefill shape: plain Flash (FlashDecode degenerates to it, so
    // either is acceptable; it must not be Baseline).
    EXPECT_NE(selectAttentionBackend(
                  gpu, P, attrs(8, 32, 4096, 4096, 128), DType::F16),
              graph::AttentionBackend::Baseline);
}

TEST(AutoBackend, NeverSlowerThanAnyFixedBackend)
{
    const CostModel autod(gpu, graph::AttentionBackend::Auto);
    for (const auto& a :
         {attrs(1, 32, 1, 4096, 128), attrs(1, 8, 4096, 4096, 64),
          attrs(256, 8, 16, 16, 64), attrs(1, 8, 256, 77, 40)}) {
        graph::Op op;
        op.kind = graph::OpKind::Attention;
        op.attrs = a;
        const double auto_s = autod.time(op).seconds;
        for (graph::AttentionBackend fixed :
             {graph::AttentionBackend::Baseline,
              graph::AttentionBackend::Flash,
              graph::AttentionBackend::FlashDecode}) {
            const CostModel m(gpu, fixed);
            EXPECT_LE(auto_s, m.time(op).seconds * (1.0 + 1e-9))
                << graph::attentionBackendName(fixed);
        }
    }
}

TEST(FlashDecode, DegeneratesToFlashWhenGpuIsFull)
{
    // Prefill shapes already fill the device: no split, no overhead.
    const auto prefill = attrs(8, 32, 4096, 4096, 128);
    const OpCost fd = lowerAttention(
        gpu, P, prefill, DType::F16,
        graph::AttentionBackend::FlashDecode);
    const OpCost fl = lowerAttention(
        gpu, P, prefill, DType::F16, graph::AttentionBackend::Flash);
    EXPECT_EQ(fd.parts[0].label, "flash_fused");
    EXPECT_EQ(fd.parts[0].launches, 1);
    EXPECT_DOUBLE_EQ(fd.totalBytes(), fl.totalBytes());
}

/** Property: flash never moves more HBM bytes than baseline. */
class FlashNeverWorse
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>>
{};

TEST_P(FlashNeverWorse, BytesAndLaunches)
{
    const auto [sq, skv, d] = GetParam();
    const auto a = attrs(4, 8, sq, skv, d);
    const OpCost base = lowerAttention(
        gpu, P, a, DType::F16, graph::AttentionBackend::Baseline);
    const OpCost flash = lowerAttention(gpu, P, a, DType::F16,
                                        graph::AttentionBackend::Flash);
    EXPECT_LE(flash.totalBytes(), base.totalBytes());
    EXPECT_LT(flash.totalLaunches(), base.totalLaunches());
    // Both backends perform the same matmul work (non-causal); the
    // baseline adds only the small scale-kernel FLOPs.
    EXPECT_NEAR(flash.totalFlops(), base.totalFlops(),
                0.05 * base.totalFlops());
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, FlashNeverWorse,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 16, 256, 4096),
                       ::testing::Values<std::int64_t>(16, 256, 4096),
                       ::testing::Values<std::int64_t>(8, 64, 128)));

} // namespace
} // namespace mmgen::kernels
