/**
 * @file
 * Tests for the FSDP training-step time model.
 */

#include <gtest/gtest.h>

#include "fleet/training_step.hh"
#include "models/model_suite.hh"
#include "util/logging.hh"

namespace mmgen::fleet {
namespace {

const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
const InterconnectSpec net = InterconnectSpec::a100Cluster();

TrainingStepInputs
baseInputs()
{
    TrainingStepInputs in;
    in.params = 1e9;
    in.forwardFlopsPerSample = 1e12;
    in.microBatch = 4;
    in.worldSize = 64;
    return in;
}

TEST(InterconnectSpec, IntraVsInterNode)
{
    EXPECT_DOUBLE_EQ(net.effectiveBandwidth(8, 8),
                     net.intraNodeBandwidth);
    EXPECT_DOUBLE_EQ(net.effectiveBandwidth(64, 8),
                     net.interNodeBandwidth);
    EXPECT_THROW(net.effectiveBandwidth(0, 8), FatalError);
}

TEST(TrainingStep, BackwardIsTwiceForward)
{
    const TrainingStepInputs in = baseInputs();
    const TrainingStepEstimate est =
        estimateTrainingStep(gpu, net, in);
    const double expected_compute =
        3.0 * in.forwardFlopsPerSample * in.microBatch /
        (gpu.peakFlops(DType::F16) * in.computeEfficiency);
    EXPECT_NEAR(est.computeSeconds, expected_compute, 1e-12);
    EXPECT_GT(est.stepSeconds, est.computeSeconds);
}

TEST(TrainingStep, SingleGpuHasNoCommunication)
{
    TrainingStepInputs in = baseInputs();
    in.worldSize = 1;
    const TrainingStepEstimate est =
        estimateTrainingStep(gpu, net, in);
    EXPECT_DOUBLE_EQ(est.exposedCommSeconds, 0.0);
}

TEST(TrainingStep, OverlapHidesCommunication)
{
    TrainingStepInputs in = baseInputs();
    in.overlapFraction = 0.0;
    const double exposed =
        estimateTrainingStep(gpu, net, in).exposedCommSeconds;
    in.overlapFraction = 0.9;
    const double hidden =
        estimateTrainingStep(gpu, net, in).exposedCommSeconds;
    EXPECT_NEAR(hidden, 0.1 * exposed, 1e-12);
}

TEST(TrainingStep, MfuBoundedAndThroughputScales)
{
    TrainingStepInputs in = baseInputs();
    const TrainingStepEstimate est =
        estimateTrainingStep(gpu, net, in);
    EXPECT_GT(est.mfu, 0.0);
    EXPECT_LE(est.mfu, in.computeEfficiency + 1e-12);

    TrainingStepInputs bigger = in;
    bigger.microBatch = 8;
    const TrainingStepEstimate est2 =
        estimateTrainingStep(gpu, net, bigger);
    EXPECT_GT(est2.throughput, est.throughput);
    EXPECT_GT(est2.mfu, est.mfu); // comms amortized over more work
}

TEST(TrainingStep, Validation)
{
    TrainingStepInputs in = baseInputs();
    in.params = 0.0;
    EXPECT_THROW(estimateTrainingStep(gpu, net, in), FatalError);
    in = baseInputs();
    in.overlapFraction = 1.0;
    EXPECT_THROW(estimateTrainingStep(gpu, net, in), FatalError);
}

TEST(ForwardFlops, SingleUNetPassNotDenoisingLoop)
{
    // Training flops take one pass per stage, so SD's per-sample
    // forward is ~1/50th of its 50-step inference flops.
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const double per_sample = forwardFlopsPerSample(sd, gpu);
    EXPECT_GT(per_sample, 0.0);
    EXPECT_LT(per_sample, 3e12); // inference totals ~41 TFLOP
}

TEST(ForwardFlops, SkipsWeightSharingStages)
{
    const graph::Pipeline llama =
        models::buildModel(models::ModelId::LLaMA);
    // Only the prefill stage counts; decode reuses the same weights.
    const double flops = forwardFlopsPerSample(llama, gpu);
    // ~2 * params * prompt tokens.
    const double rough = 2.0 * 6.7e9 * 4096;
    EXPECT_NEAR(flops, rough, 0.35 * rough);
}

} // namespace
} // namespace mmgen::fleet
