/**
 * @file
 * Tests for the fleet substrate: FSDP memory model, population
 * generation, aggregation (paper Fig. 1).
 */

#include <gtest/gtest.h>

#include "fleet/aggregate.hh"
#include "fleet/population.hh"
#include "util/logging.hh"

namespace mmgen::fleet {
namespace {

TEST(FsdpMemoryModel, ShardsStateByWorldSize)
{
    FsdpMemoryModel m;
    // 16 bytes/param (fp16 weights+grads + fp32 Adam state).
    EXPECT_DOUBLE_EQ(m.shardedStateBytes(70e9, 512),
                     70e9 * 16.0 / 512.0);
    EXPECT_DOUBLE_EQ(m.shardedStateBytes(1e9, 1), 16e9);
    EXPECT_THROW(m.shardedStateBytes(0.0, 8), FatalError);
    EXPECT_THROW(m.shardedStateBytes(1e9, 0), FatalError);
}

TEST(FsdpMemoryModel, ActivationsDoNotShard)
{
    FsdpMemoryModel m;
    const double act = 20e9;
    const double small_world = m.perGpuBytes(1e9, 8, act);
    const double big_world = m.perGpuBytes(1e9, 1024, act);
    // Only the sharded state shrinks; activations stay resident —
    // which is why image models run hot on memory (paper Fig. 1).
    EXPECT_GT(small_world, big_world);
    EXPECT_GT(big_world, act);
}

TEST(TrainingJob, DerivedMetrics)
{
    TrainingJob job;
    job.params = 2e9;
    job.gpus = 196;
    job.perGpuBytes = 28e9;
    EXPECT_DOUBLE_EQ(job.gpusPerBParam(), 98.0);
    EXPECT_NEAR(job.memoryUtilization(hw::GpuSpec::a100_80gb()),
                28.0 / 80.0, 1e-12);
    job.perGpuBytes = 200e9; // oversubscribed is clamped
    EXPECT_DOUBLE_EQ(job.memoryUtilization(hw::GpuSpec::a100_80gb()),
                     1.0);
}

TEST(Population, DeterministicForSeed)
{
    PopulationConfig cfg;
    const auto a = generateFleet(cfg);
    const auto b = generateFleet(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].gpus, b[i].gpus);
        EXPECT_DOUBLE_EQ(a[i].params, b[i].params);
        EXPECT_DOUBLE_EQ(a[i].perGpuBytes, b[i].perGpuBytes);
    }
}

TEST(Population, RespectsClassCountsAndRanges)
{
    PopulationConfig cfg;
    cfg.llmJobs = 10;
    cfg.ttiJobs = 20;
    cfg.ttvJobs = 5;
    const auto jobs = generateFleet(cfg);
    ASSERT_EQ(jobs.size(), 35u);
    int llm = 0, tti = 0, ttv = 0;
    for (const auto& j : jobs) {
        EXPECT_GE(j.gpus, 8);
        EXPECT_EQ(j.gpus % 8, 0) << "jobs run on whole nodes";
        EXPECT_GT(j.params, 0.0);
        switch (j.klass) {
          case WorkloadClass::LLM: {
            ++llm;
            const auto d = defaultDistribution(WorkloadClass::LLM);
            EXPECT_GE(j.params, d.minParamsB * 1e9 * 0.999);
            EXPECT_LE(j.params, d.maxParamsB * 1e9 * 1.001);
            break;
          }
          case WorkloadClass::TTI:
            ++tti;
            break;
          case WorkloadClass::TTV:
            ++ttv;
            break;
        }
    }
    EXPECT_EQ(llm, 10);
    EXPECT_EQ(tti, 20);
    EXPECT_EQ(ttv, 5);
}

TEST(Aggregate, ComputesPerClassTotals)
{
    std::vector<TrainingJob> jobs;
    TrainingJob a;
    a.klass = WorkloadClass::LLM;
    a.params = 10e9;
    a.gpus = 80;
    a.perGpuBytes = 16e9;
    jobs.push_back(a);
    TrainingJob b;
    b.klass = WorkloadClass::TTI;
    b.params = 1e9;
    b.gpus = 112;
    b.perGpuBytes = 28e9;
    jobs.push_back(b);

    const FleetReport r =
        aggregateFleet(jobs, hw::GpuSpec::a100_80gb());
    EXPECT_DOUBLE_EQ(r.byClass.at(WorkloadClass::LLM).gpusPerBParam,
                     8.0);
    EXPECT_DOUBLE_EQ(r.byClass.at(WorkloadClass::TTI).gpusPerBParam,
                     112.0);
    EXPECT_DOUBLE_EQ(r.ttiOverLlmGpusPerParam(), 14.0);
    EXPECT_NEAR(r.ttiOverLlmMemoryUtilization(), 28.0 / 16.0, 1e-12);
    EXPECT_NEAR(r.ttiMinusLlmUtilizationPoints(),
                (28.0 - 16.0) / 80.0 * 100.0, 1e-9);
}

TEST(Aggregate, RejectsMissingClasses)
{
    std::vector<TrainingJob> jobs;
    TrainingJob a;
    a.klass = WorkloadClass::LLM;
    a.params = 1e9;
    a.gpus = 8;
    a.perGpuBytes = 1e9;
    jobs.push_back(a);
    const FleetReport r =
        aggregateFleet(jobs, hw::GpuSpec::a100_80gb());
    EXPECT_THROW(r.ttiOverLlmGpusPerParam(), FatalError);
    EXPECT_THROW(aggregateFleet({}, hw::GpuSpec::a100_80gb()),
                 FatalError);
}

TEST(Fig1Acceptance, DefaultFleetReproducesPaperRatios)
{
    PopulationConfig cfg;
    const FleetReport r =
        aggregateFleet(generateFleet(cfg), cfg.gpu);
    // Paper: ~14x GPUs/param, ~1.4x memory utilization, ~10 points.
    EXPECT_NEAR(r.ttiOverLlmGpusPerParam(), 14.0, 4.0);
    EXPECT_NEAR(r.ttiOverLlmMemoryUtilization(), 1.4, 0.25);
    EXPECT_NEAR(r.ttiMinusLlmUtilizationPoints(), 10.0, 5.0);
}

/** Property: ratios stay in band across seeds (not a lucky seed). */
class FleetSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FleetSeedSweep, RatiosStable)
{
    PopulationConfig cfg;
    cfg.seed = GetParam();
    const FleetReport r =
        aggregateFleet(generateFleet(cfg), cfg.gpu);
    EXPECT_GT(r.ttiOverLlmGpusPerParam(), 8.0);
    EXPECT_LT(r.ttiOverLlmGpusPerParam(), 25.0);
    EXPECT_GT(r.ttiOverLlmMemoryUtilization(), 1.15);
    EXPECT_LT(r.ttiOverLlmMemoryUtilization(), 1.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetSeedSweep,
                         ::testing::Values(1, 7, 42, 1234, 99991));

} // namespace
} // namespace mmgen::fleet
