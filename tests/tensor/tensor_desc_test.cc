/**
 * @file
 * Tests for tensor descriptors: shape algebra, strides, views.
 */

#include <gtest/gtest.h>

#include "tensor/tensor_desc.hh"
#include "util/logging.hh"

namespace mmgen {
namespace {

TEST(DType, SizesAndNames)
{
    EXPECT_EQ(dtypeBytes(DType::F16), 2u);
    EXPECT_EQ(dtypeBytes(DType::BF16), 2u);
    EXPECT_EQ(dtypeBytes(DType::F32), 4u);
    EXPECT_EQ(dtypeBytes(DType::I8), 1u);
    EXPECT_EQ(dtypeName(DType::F16), "f16");
    EXPECT_EQ(dtypeName(DType::I32), "i32");
}

TEST(TensorDesc, ContiguousStridesRowMajor)
{
    const TensorDesc t({2, 3, 4}, DType::F16);
    EXPECT_EQ(t.strides(), (std::vector<std::int64_t>{12, 4, 1}));
    EXPECT_TRUE(t.isContiguous());
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.bytes(), 48);
}

TEST(TensorDesc, NegativeDimIndexing)
{
    const TensorDesc t({2, 3, 4}, DType::F16);
    EXPECT_EQ(t.dim(-1), 4);
    EXPECT_EQ(t.dim(-3), 2);
    EXPECT_EQ(t.stride(-1), 1);
    EXPECT_THROW(t.dim(3), FatalError);
    EXPECT_THROW(t.dim(-4), FatalError);
}

TEST(TensorDesc, RejectsNonPositiveDims)
{
    EXPECT_THROW(TensorDesc({2, 0}, DType::F16), FatalError);
    EXPECT_THROW(TensorDesc({-1}, DType::F16), FatalError);
}

TEST(TensorDesc, PermuteSwapsShapeAndStrides)
{
    // The temporal-attention rearrangement: [B, C, F, HW] viewed with
    // the frame axis in sequence position.
    const TensorDesc x({1, 512, 16, 256}, DType::F16);
    const TensorDesc v = x.permute({0, 3, 2, 1});
    EXPECT_EQ(v.shape(), (std::vector<std::int64_t>{1, 256, 16, 512}));
    EXPECT_EQ(v.stride(1), 1);
    EXPECT_EQ(v.stride(2), 256);
    EXPECT_EQ(v.stride(3), 16 * 256);
    EXPECT_FALSE(v.isContiguous());
}

TEST(TensorDesc, PermuteValidatesIndices)
{
    const TensorDesc x({2, 3}, DType::F16);
    EXPECT_THROW(x.permute({0}), FatalError);
    EXPECT_THROW(x.permute({0, 0}), FatalError);
    EXPECT_THROW(x.permute({0, 2}), FatalError);
}

TEST(TensorDesc, ReshapeRequiresContiguity)
{
    const TensorDesc x({2, 3, 4}, DType::F16);
    const TensorDesc r = x.reshape({6, 4});
    EXPECT_EQ(r.shape(), (std::vector<std::int64_t>{6, 4}));
    EXPECT_THROW(x.reshape({5, 5}), FatalError);

    const TensorDesc permuted = x.permute({2, 1, 0});
    EXPECT_THROW(permuted.reshape({24}), FatalError);
    EXPECT_NO_THROW(permuted.contiguous().reshape({24}));
}

TEST(TensorDesc, OffsetOfFollowsStrides)
{
    const TensorDesc x({2, 3, 4}, DType::F16);
    EXPECT_EQ(x.offsetOf({0, 0, 0}), 0);
    EXPECT_EQ(x.offsetOf({1, 2, 3}), 12 + 8 + 3);
    const TensorDesc v = x.permute({2, 1, 0});
    EXPECT_EQ(v.offsetOf({3, 2, 1}), 3 + 8 + 12);
    EXPECT_THROW(x.offsetOf({2, 0, 0}), FatalError);
}

TEST(TensorDesc, StrAnnotatesStridedViews)
{
    const TensorDesc x({2, 4}, DType::F16);
    EXPECT_EQ(x.str(), "f16[2, 4]");
    EXPECT_EQ(x.permute({1, 0}).str(), "f16[4, 2](strided)");
}

/** Property: permute twice with inverse permutation is identity. */
class PermuteRoundTrip
    : public ::testing::TestWithParam<std::vector<std::size_t>>
{};

TEST_P(PermuteRoundTrip, InverseRestores)
{
    const TensorDesc x({3, 5, 7, 11}, DType::F32);
    const auto& perm = GetParam();
    std::vector<std::size_t> inverse(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        inverse[perm[i]] = i;
    const TensorDesc round = x.permute(perm).permute(inverse);
    EXPECT_EQ(round.shape(), x.shape());
    EXPECT_EQ(round.strides(), x.strides());
}

INSTANTIATE_TEST_SUITE_P(
    Permutations, PermuteRoundTrip,
    ::testing::Values(std::vector<std::size_t>{0, 1, 2, 3},
                      std::vector<std::size_t>{3, 2, 1, 0},
                      std::vector<std::size_t>{1, 0, 3, 2},
                      std::vector<std::size_t>{2, 3, 0, 1},
                      std::vector<std::size_t>{0, 2, 1, 3}));

} // namespace
} // namespace mmgen
