/**
 * @file
 * Tests for GPU specs and the roofline time model.
 */

#include <gtest/gtest.h>

#include "hw/gpu_spec.hh"
#include "hw/roofline.hh"
#include "util/logging.hh"

namespace mmgen::hw {
namespace {

TEST(GpuSpec, A100Datasheet)
{
    const GpuSpec a100 = GpuSpec::a100_80gb();
    EXPECT_EQ(a100.numSms, 108);
    EXPECT_DOUBLE_EQ(a100.peakF16Flops, 312e12);
    EXPECT_DOUBLE_EQ(a100.hbmBandwidth, 2.039e12);
    EXPECT_EQ(a100.l2Bytes, 40LL * 1024 * 1024);
    EXPECT_DOUBLE_EQ(a100.peakFlops(DType::F16), 312e12);
    EXPECT_DOUBLE_EQ(a100.peakFlops(DType::F32), 19.5e12);
}

TEST(GpuSpec, Int8DoublesTensorCoreRate)
{
    const GpuSpec a100 = GpuSpec::a100_80gb();
    EXPECT_DOUBLE_EQ(a100.peakFlops(DType::I8), 624e12);
    // V100 predates int8 tensor cores: no speedup over f16.
    EXPECT_DOUBLE_EQ(GpuSpec::v100_32gb().peakFlops(DType::I8),
                     GpuSpec::v100_32gb().peakFlops(DType::F16));
    // Unset int8 rate falls back to the f16 rate.
    GpuSpec custom = a100;
    custom.peakI8Flops = 0.0;
    EXPECT_DOUBLE_EQ(custom.peakFlops(DType::I8),
                     custom.peakFlops(DType::F16));
}

TEST(GpuSpec, GenerationsOrdered)
{
    // Sanity across presets: newer parts are faster on every axis.
    const GpuSpec v100 = GpuSpec::v100_32gb();
    const GpuSpec a100 = GpuSpec::a100_80gb();
    const GpuSpec h100 = GpuSpec::h100_80gb();
    EXPECT_LT(v100.peakF16Flops, a100.peakF16Flops);
    EXPECT_LT(a100.peakF16Flops, h100.peakF16Flops);
    EXPECT_LT(v100.hbmBandwidth, a100.hbmBandwidth);
    EXPECT_LT(a100.hbmBandwidth, h100.hbmBandwidth);
}

TEST(NodeSpec, EightGpusPerNode)
{
    const NodeSpec node = NodeSpec::a100Node();
    EXPECT_EQ(node.gpusPerNode, 8);
    EXPECT_DOUBLE_EQ(node.totalHbmBytes(), 8 * 80e9);
}

TEST(Roofline, RidgePointSeparatesRegimes)
{
    const Roofline r(GpuSpec::a100_80gb(), DType::F16);
    const double ridge = r.ridgePoint();
    EXPECT_NEAR(ridge, 312e12 / 2.039e12, 1e-9);
    EXPECT_EQ(r.classify(ridge * 2.0), BoundKind::ComputeBound);
    EXPECT_EQ(r.classify(ridge / 2.0), BoundKind::MemoryBound);
}

TEST(Roofline, AttainableIsMinOfCeilings)
{
    const Roofline r(GpuSpec::a100_80gb(), DType::F16);
    EXPECT_DOUBLE_EQ(r.attainableFlops(1.0), 2.039e12);
    EXPECT_DOUBLE_EQ(r.attainableFlops(1e6), 312e12);
    EXPECT_THROW(r.attainableFlops(0.0), FatalError);
}

TEST(EstimateTime, ComputeBoundCase)
{
    const GpuSpec gpu = GpuSpec::a100_80gb();
    TimeEstimateInputs in;
    in.flops = 312e12; // one second at peak
    in.hbmBytes = 1.0;
    in.computeEfficiency = 1.0;
    in.memoryEfficiency = 1.0;
    in.launches = 0;
    const TimeEstimate t = estimateTime(gpu, in);
    EXPECT_NEAR(t.seconds, 1.0, 1e-9);
    EXPECT_EQ(t.bound, BoundKind::ComputeBound);
}

TEST(EstimateTime, MemoryBoundCase)
{
    const GpuSpec gpu = GpuSpec::a100_80gb();
    TimeEstimateInputs in;
    in.flops = 1.0;
    in.hbmBytes = gpu.hbmBandwidth; // one second at peak bandwidth
    const TimeEstimate t = estimateTime(gpu, in);
    EXPECT_NEAR(t.seconds, 1.0 + gpu.kernelLaunchOverhead, 1e-9);
    EXPECT_EQ(t.bound, BoundKind::MemoryBound);
}

TEST(EstimateTime, EfficiencyDeratesAndOverheadAdds)
{
    const GpuSpec gpu = GpuSpec::a100_80gb();
    TimeEstimateInputs in;
    in.flops = 312e12;
    in.computeEfficiency = 0.5;
    in.launches = 2;
    const TimeEstimate t = estimateTime(gpu, in);
    EXPECT_NEAR(t.computeSeconds, 2.0, 1e-9);
    EXPECT_NEAR(t.overheadSeconds, 2 * gpu.kernelLaunchOverhead, 1e-12);
}

TEST(EstimateTime, ValidatesInputs)
{
    const GpuSpec gpu = GpuSpec::a100_80gb();
    TimeEstimateInputs in;
    in.flops = -1.0;
    EXPECT_THROW(estimateTime(gpu, in), FatalError);
    in.flops = 1.0;
    in.computeEfficiency = 0.0;
    EXPECT_THROW(estimateTime(gpu, in), FatalError);
    in.computeEfficiency = 1.5;
    EXPECT_THROW(estimateTime(gpu, in), FatalError);
}

/** Property: time is monotone in work for any efficiency point. */
class TimeMonotonicity
    : public ::testing::TestWithParam<std::pair<double, double>>
{};

TEST_P(TimeMonotonicity, MoreWorkNeverFaster)
{
    const GpuSpec gpu = GpuSpec::a100_80gb();
    const auto [ce, me] = GetParam();
    double prev = 0.0;
    for (double scale : {1.0, 2.0, 4.0, 8.0}) {
        TimeEstimateInputs in;
        in.flops = 1e12 * scale;
        in.hbmBytes = 1e9 * scale;
        in.computeEfficiency = ce;
        in.memoryEfficiency = me;
        const double t = estimateTime(gpu, in).seconds;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    EfficiencyGrid, TimeMonotonicity,
    ::testing::Values(std::make_pair(1.0, 1.0), std::make_pair(0.5, 1.0),
                      std::make_pair(1.0, 0.5),
                      std::make_pair(0.1, 0.9),
                      std::make_pair(0.02, 0.02)));

} // namespace
} // namespace mmgen::hw
