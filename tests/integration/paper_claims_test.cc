/**
 * @file
 * Integration tests: the paper's headline findings, asserted against
 * the full simulated model suite (the acceptance criteria of
 * DESIGN.md Section 4). These are shape checks — who wins, by roughly
 * what factor — not absolute-number matches.
 */

#include <gtest/gtest.h>

#include <map>

#include "cache/attention_study.hh"
#include "core/suite.hh"
#include "models/make_a_video.hh"
#include "models/model_suite.hh"

namespace mmgen::core {
namespace {

using models::ModelId;

/** Full-suite results computed once and shared across tests. */
const std::map<ModelId, ModelRunResult>&
suiteResults()
{
    static const std::map<ModelId, ModelRunResult> results = [] {
        CharacterizationSuite suite;
        std::map<ModelId, ModelRunResult> m;
        for (ModelId id : models::allModels())
            m.emplace(id, suite.run(id));
        return m;
    }();
    return results;
}

double
speedup(ModelId id)
{
    return suiteResults().at(id).endToEndSpeedup();
}

// ------------------------------------------------ Table II ----------

TEST(PaperTable2, EndToEndSpeedupsInBand)
{
    // Paper values: LLaMA 1.52, Imagen 1.22, SD 1.67, Muse 1.11,
    // Parti 1.17, Prod 1.04, MAV 1.06, Phenaki 1.15. Acceptance:
    // within ~0.2x absolute.
    EXPECT_NEAR(speedup(ModelId::LLaMA), 1.52, 0.20);
    EXPECT_NEAR(speedup(ModelId::StableDiffusion), 1.67, 0.20);
    EXPECT_NEAR(speedup(ModelId::Muse), 1.11, 0.15);
    EXPECT_NEAR(speedup(ModelId::Parti), 1.17, 0.15);
    EXPECT_NEAR(speedup(ModelId::ProdImage), 1.04, 0.10);
    EXPECT_NEAR(speedup(ModelId::MakeAVideo), 1.06, 0.10);
    EXPECT_NEAR(speedup(ModelId::Phenaki), 1.15, 0.12);
    // Imagen is the known under-estimate (see EXPERIMENTS.md): the
    // reference implementation's baseline attention is less efficient
    // than our model of it. Assert the qualitative band only.
    EXPECT_GT(speedup(ModelId::Imagen), 1.0);
    EXPECT_LT(speedup(ModelId::Imagen), 1.35);
}

TEST(PaperTable2, OrderingShape)
{
    // SD gets the largest win; the production latent model and the
    // diffusion TTV model the smallest; LLaMA sits high (prefill).
    EXPECT_GT(speedup(ModelId::StableDiffusion),
              speedup(ModelId::LLaMA));
    EXPECT_GT(speedup(ModelId::LLaMA), speedup(ModelId::Muse));
    EXPECT_GT(speedup(ModelId::Muse), 1.0);
    EXPECT_LT(speedup(ModelId::ProdImage), 1.10);
    EXPECT_LT(speedup(ModelId::MakeAVideo), 1.10);
}

// ------------------------------------------------ Fig. 6 ------------

TEST(PaperFig6, ConvolutionDominatesDiffusionAfterFlash)
{
    for (ModelId id : {ModelId::StableDiffusion, ModelId::Imagen,
                       ModelId::ProdImage, ModelId::MakeAVideo}) {
        const auto& flash = suiteResults().at(id).flash.breakdown;
        const double conv =
            flash.categoryFraction(graph::OpCategory::Convolution);
        const double attn =
            flash.categoryFraction(graph::OpCategory::Attention);
        EXPECT_GT(conv, attn) << models::modelName(id);
        // Conv is the largest single block (paper: up to ~44-50%).
        for (graph::OpCategory c : graph::allCategories()) {
            EXPECT_GE(conv + 1e-12, flash.categoryFraction(c))
                << models::modelName(id);
        }
    }
}

TEST(PaperFig6, AttentionShareAfterFlashSplitsByFamily)
{
    // Diffusion: attention drops to a small share after Flash.
    for (ModelId id : {ModelId::StableDiffusion, ModelId::Imagen,
                       ModelId::ProdImage}) {
        EXPECT_LT(suiteResults().at(id).flashAttentionFraction(), 0.25)
            << models::modelName(id);
    }
    // LLaMA keeps a sizeable attention share even after Flash.
    EXPECT_GT(suiteResults().at(ModelId::LLaMA).flashAttentionFraction(),
              0.08);
}

TEST(PaperFig6, LinearDominatesTransformerTtiModels)
{
    for (ModelId id : {ModelId::Muse, ModelId::Parti}) {
        const auto& base = suiteResults().at(id).baseline.breakdown;
        const double linear =
            base.categoryFraction(graph::OpCategory::Linear);
        EXPECT_GT(linear, 0.35) << models::modelName(id);
        EXPECT_DOUBLE_EQ(
            base.categoryFraction(graph::OpCategory::Convolution) >
                linear,
            false);
    }
}

TEST(PaperFig6, PixelDiffusionMoreConvThanLatent)
{
    const double pixel =
        suiteResults().at(ModelId::Imagen).baseline.breakdown
            .categoryFraction(graph::OpCategory::Convolution);
    const double latent =
        suiteResults().at(ModelId::StableDiffusion).baseline.breakdown
            .categoryFraction(graph::OpCategory::Convolution);
    EXPECT_GT(pixel, latent);
}

// ------------------------------------------------ Sec. IV-B ---------

TEST(PaperSec4B, DiffusionAttentionSpeedupExceedsTransformerTti)
{
    // Paper: attention-module speedup is 1.1-2.5x greater for
    // diffusion than for transformer TTI models.
    const double sd = suiteResults()
                          .at(ModelId::StableDiffusion)
                          .attentionModuleSpeedup();
    for (ModelId id : {ModelId::Muse, ModelId::Parti}) {
        const double tti =
            suiteResults().at(id).attentionModuleSpeedup();
        EXPECT_GT(sd / tti, 1.1) << models::modelName(id);
        EXPECT_LT(sd / tti, 4.0) << models::modelName(id);
    }
}

// ------------------------------------------------ Fig. 7 ------------

TEST(PaperFig7, SequenceLengthShapes)
{
    // Diffusion: cyclic multi-valued lengths spanning >= 4x.
    const auto& sd = suiteResults().at(ModelId::StableDiffusion).flash;
    EXPECT_GE(sd.seqLens.maxSeqLen(), 4 * 256);
    EXPECT_EQ(sd.seqLens.maxSeqLen(), 4096);

    // Muse: a single constant generation length per stage.
    const auto& muse = suiteResults().at(ModelId::Muse).flash;
    EXPECT_LE(muse.seqLens.histogram().distinctValues(), 3u);

    // Parti: linear ramp up to the full token count.
    const auto& parti = suiteResults().at(ModelId::Parti).flash;
    EXPECT_EQ(parti.seqLens.maxSeqLen(), 1024);
    const auto& series = parti.seqLens.series();
    EXPECT_FALSE(series.empty());
}

// ------------------------------------------------ Fig. 5 ------------

TEST(PaperFig5, DiffusionComputeBoundTransformerMemoryBound)
{
    const hw::Roofline roofline(hw::GpuSpec::a100_80gb(), DType::F16);
    const double llm_ai = suiteResults()
                              .at(ModelId::LLaMA)
                              .flash.modelArithmeticIntensity();
    EXPECT_EQ(roofline.classify(llm_ai), hw::BoundKind::MemoryBound);
    EXPECT_EQ(roofline.classify(
                  suiteResults()
                      .at(ModelId::Parti)
                      .flash.modelArithmeticIntensity()),
              hw::BoundKind::MemoryBound);

    double max_diffusion_ai = 0.0;
    for (ModelId id : {ModelId::StableDiffusion, ModelId::Imagen,
                       ModelId::ProdImage, ModelId::MakeAVideo}) {
        const double ai = suiteResults()
                              .at(id)
                              .flash.modelArithmeticIntensity();
        EXPECT_EQ(roofline.classify(ai), hw::BoundKind::ComputeBound)
            << models::modelName(id);
        max_diffusion_ai = std::max(max_diffusion_ai, ai);
    }
    // Paper: up to ~100x higher arithmetic intensity than the LLM.
    EXPECT_GT(max_diffusion_ai / llm_ai, 50.0);
    EXPECT_LT(max_diffusion_ai / llm_ai, 400.0);
}

// ------------------------------------------------ Fig. 11 -----------

TEST(PaperFig11, TemporalSlowerDespiteFewerFlops)
{
    const auto& mav = suiteResults().at(ModelId::MakeAVideo).baseline;
    const auto spatial =
        mav.attention.entryFor(graph::AttentionKind::SelfSpatial);
    const auto temporal =
        mav.attention.entryFor(graph::AttentionKind::Temporal);
    ASSERT_GT(spatial.calls, 0);
    ASSERT_GT(temporal.calls, 0);
    // ~2x the execution time at ~9x fewer FLOPs.
    EXPECT_NEAR(temporal.seconds / spatial.seconds, 2.0, 0.8);
    EXPECT_NEAR(spatial.flops / temporal.flops, 9.0, 3.5);
    // Temporal attention is the majority of self-attention time.
    EXPECT_GT(temporal.seconds / (temporal.seconds + spatial.seconds),
              0.6);
}

// ------------------------------------------------ Fig. 12 -----------

TEST(PaperFig12, TemporalAttentionCollapsesL1Locality)
{
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    graph::AttentionAttrs spatial;
    spatial.kind = graph::AttentionKind::SelfSpatial;
    spatial.batch = 16;
    spatial.heads = 8;
    spatial.seqQ = spatial.seqKv = 256;
    spatial.headDim = 160;
    spatial.seqStrideElems = 1280;

    graph::AttentionAttrs temporal;
    temporal.kind = graph::AttentionKind::Temporal;
    temporal.batch = 256;
    temporal.heads = 8;
    temporal.seqQ = temporal.seqKv = 16;
    temporal.headDim = 160;
    temporal.seqStrideElems = 256;
    temporal.featureStrideElems = 16 * 256;

    using kernels::KernelClass;
    const auto sp =
        cache::runAttentionCacheStudy(gpu, spatial, DType::F16);
    const auto tp =
        cache::runAttentionCacheStudy(gpu, temporal, DType::F16);

    // L1: gemm and softmax at least ~10x lower under temporal.
    EXPECT_GT(sp.l1HitRate(KernelClass::Gemm),
              10.0 * tp.l1HitRate(KernelClass::Gemm));
    EXPECT_GT(sp.l1HitRate(KernelClass::Softmax),
              10.0 * tp.l1HitRate(KernelClass::Softmax));
    // L2: softmax and elementwise stay the same or higher.
    EXPECT_GE(tp.l2HitRate(KernelClass::Softmax) + 0.02,
              sp.l2HitRate(KernelClass::Softmax));
    EXPECT_GE(tp.l2HitRate(KernelClass::Elementwise) + 0.02,
              sp.l2HitRate(KernelClass::Elementwise));
}

// ------------------------------------------------ Fig. 9 ------------

TEST(PaperFig9, ConvIsLimitingAfterFlashAtLargeImages)
{
    // At 512x512, flash-attention SD spends more time in convolution
    // than attention, while baseline attention rivals or exceeds conv.
    const auto& sd = suiteResults().at(ModelId::StableDiffusion);
    const double conv_flash = sd.flash.breakdown.categorySeconds(
        graph::OpCategory::Convolution);
    const double attn_flash = sd.flash.attentionSeconds();
    EXPECT_GT(conv_flash, 2.0 * attn_flash);
    const double attn_base = sd.baseline.attentionSeconds();
    EXPECT_GT(attn_base, 0.8 * conv_flash);
}

} // namespace
} // namespace mmgen::core
