/**
 * @file
 * Calibration regression tests: pin the simulated end-to-end latencies
 * and parameter counts of the suite to bands around their current
 * calibrated values, so an accidental change to a cost model, an
 * efficiency constant, or a model configuration is caught immediately
 * (the Table II reproduction depends on all of them together).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/suite.hh"

namespace mmgen::core {
namespace {

using models::ModelId;

struct Expected
{
    double flashSeconds;
    double paramsB;
};

const std::map<ModelId, Expected>&
expectations()
{
    // Values recorded at calibration time; bands are ±25% for latency
    // (loose enough for legitimate refinements, tight enough to catch
    // unit mistakes) and ±10% for parameters.
    static const std::map<ModelId, Expected> e = {
        {ModelId::LLaMA, {0.70, 6.74}},
        {ModelId::Imagen, {5.53, 3.89}},
        {ModelId::StableDiffusion, {0.89, 0.97}},
        {ModelId::Muse, {0.97, 3.35}},
        {ModelId::Parti, {30.1, 22.2}},
        {ModelId::ProdImage, {1.20, 1.76}},
        {ModelId::MakeAVideo, {10.9, 2.25}},
        {ModelId::Phenaki, {2.14, 1.83}},
    };
    return e;
}

class CalibrationRegression : public ::testing::TestWithParam<ModelId>
{};

TEST_P(CalibrationRegression, LatencyAndParamsInBand)
{
    const ModelId id = GetParam();
    const Expected& exp = expectations().at(id);
    CharacterizationSuite suite;
    const profiler::ProfileResult res = suite.profileOne(
        models::buildModel(id), graph::AttentionBackend::Flash);
    EXPECT_NEAR(res.totalSeconds, exp.flashSeconds,
                0.25 * exp.flashSeconds)
        << "simulated latency drifted";
    EXPECT_NEAR(static_cast<double>(res.params) / 1e9, exp.paramsB,
                0.10 * exp.paramsB)
        << "parameter count drifted";
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CalibrationRegression,
    ::testing::ValuesIn(models::allModels()),
    [](const ::testing::TestParamInfo<ModelId>& info) {
        return models::modelName(info.param);
    });

} // namespace
} // namespace mmgen::core
