/**
 * @file
 * Cross-validation: the closed-form Section V analytics and the
 * operator-level simulation must agree with each other — the paper's
 * analytical framework was built to explain its measurements, and the
 * reproduction keeps both sides honest against one another.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analytics/amdahl.hh"
#include "analytics/memory_model.hh"
#include "kernels/attention.hh"
#include "models/stable_diffusion.hh"
#include "profiler/engine.hh"

namespace mmgen {
namespace {

/**
 * Total materialized similarity-matrix bytes of one SD UNet pass at a
 * given latent extent, from the traced operator shapes.
 */
double
profiledSimilarityBytes(std::int64_t image_size)
{
    models::StableDiffusionConfig cfg;
    cfg.imageSize = image_size;
    const graph::Pipeline p = models::buildStableDiffusion(cfg);
    const graph::Trace t = p.traceStage(1, 0);
    double bytes = 0.0;
    for (const auto& op : t.ops()) {
        if (op.kind != graph::OpKind::Attention)
            continue;
        bytes += kernels::similarityMatrixBytes(
            op.as<graph::AttentionAttrs>(), 2);
    }
    return bytes;
}

TEST(CrossValidation, ProfiledSimilarityMemoryFollowsQuarticLaw)
{
    // The simulated UNet's aggregate similarity memory must scale with
    // the same O(L^4) exponent the closed-form model derives.
    std::vector<double> latents, bytes;
    for (std::int64_t image : {128, 256, 512}) {
        latents.push_back(static_cast<double>(image / 8));
        bytes.push_back(profiledSimilarityBytes(image));
    }
    const double exponent =
        analytics::scalingExponent(latents, bytes);
    EXPECT_NEAR(exponent, 4.0, 0.35);
}

TEST(CrossValidation, AnalyticSelfAttentionMatchesTracedTopStage)
{
    // At the UNet input resolution the closed-form self-similarity
    // entries equal the traced attention op's Sq * Skv exactly.
    analytics::DiffusionMemoryModel m;
    m.latentH = m.latentW = 64;

    const graph::Pipeline p = models::buildStableDiffusion();
    const graph::Trace t = p.traceStage(1, 0);
    bool checked = false;
    for (const auto& op : t.ops()) {
        if (op.kind != graph::OpKind::Attention)
            continue;
        const auto& a = op.as<graph::AttentionAttrs>();
        if (a.kind == graph::AttentionKind::SelfSpatial &&
            a.seqQ == 64 * 64) {
            EXPECT_DOUBLE_EQ(
                static_cast<double>(a.seqQ) *
                    static_cast<double>(a.seqKv),
                m.selfSimilarityEntries(0));
            checked = true;
            break;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(CrossValidation, AmdahlPredictsMeasuredEndToEndSpeedup)
{
    // The Amdahl decomposition applied to the measured fraction and
    // module speedup must reconstruct the measured end-to-end speedup.
    profiler::Profiler base_prof(profiler::ProfileOptions{
        hw::GpuSpec::a100_80gb(), graph::AttentionBackend::Baseline});
    profiler::Profiler flash_prof;
    const graph::Pipeline p = models::buildStableDiffusion();
    const profiler::ProfileResult base = base_prof.profile(p);
    const profiler::ProfileResult flash = flash_prof.profile(p);

    const double f = base.breakdown.categoryFraction(
        graph::OpCategory::Attention);
    const double module =
        base.attentionSeconds() / flash.attentionSeconds();
    const double measured = base.totalSeconds / flash.totalSeconds;
    EXPECT_NEAR(analytics::amdahlSpeedup(f, module), measured,
                0.01 * measured);
}

TEST(CrossValidation, SeqHistogramMatchesTracedAttentionCounts)
{
    // Fig. 8's histogram weights must equal iteration-scaled counts
    // of the traced attention ops.
    profiler::Profiler prof;
    const graph::Pipeline p = models::buildStableDiffusion();
    const profiler::ProfileResult res = prof.profile(p);

    std::uint64_t traced = 0;
    for (std::size_t si = 0; si < p.stages.size(); ++si) {
        const graph::Trace t = p.traceStage(si, 0);
        for (const auto& op : t.ops()) {
            if (op.kind != graph::OpKind::Attention)
                continue;
            if (op.as<graph::AttentionAttrs>().kind ==
                graph::AttentionKind::CrossText) {
                continue;
            }
            traced += static_cast<std::uint64_t>(
                p.stages[si].iterations);
        }
    }
    EXPECT_EQ(res.seqLens.histogram().totalWeight(), traced);
}

} // namespace
} // namespace mmgen
