/**
 * @file
 * End-to-end determinism and cross-hardware sanity: the simulator
 * must be bit-reproducible, and its outputs must move the right way
 * when the hardware changes.
 */

#include <gtest/gtest.h>

#include "core/suite.hh"

namespace mmgen::core {
namespace {

TEST(Determinism, RepeatedProfilesAreBitIdentical)
{
    CharacterizationSuite suite;
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const profiler::ProfileResult a =
        suite.profileOne(p, graph::AttentionBackend::Flash);
    const profiler::ProfileResult b =
        suite.profileOne(p, graph::AttentionBackend::Flash);
    EXPECT_EQ(a.totalSeconds, b.totalSeconds); // bitwise, not NEAR
    EXPECT_EQ(a.totalFlops, b.totalFlops);
    EXPECT_EQ(a.totalHbmBytes, b.totalHbmBytes);
    EXPECT_EQ(a.seqLens.series(), b.seqLens.series());
}

TEST(Determinism, NewerGpusAreFasterForEverySuiteModel)
{
    CharacterizationSuite v100(hw::GpuSpec::v100_32gb());
    CharacterizationSuite a100(hw::GpuSpec::a100_80gb());
    CharacterizationSuite h100(hw::GpuSpec::h100_80gb());
    for (models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Muse,
          models::ModelId::LLaMA}) {
        const graph::Pipeline p = models::buildModel(id);
        const double v =
            v100.profileOne(p, graph::AttentionBackend::Flash)
                .totalSeconds;
        const double a =
            a100.profileOne(p, graph::AttentionBackend::Flash)
                .totalSeconds;
        const double h =
            h100.profileOne(p, graph::AttentionBackend::Flash)
                .totalSeconds;
        EXPECT_GT(v, a) << models::modelName(id);
        EXPECT_GT(a, h) << models::modelName(id);
    }
}

TEST(Determinism, AutoBackendNeverSlowerEndToEnd)
{
    // FlashDecode's split heuristic may lose by a hair at borderline
    // shapes; the Auto dispatch must never lose to any fixed backend.
    CharacterizationSuite suite;
    for (models::ModelId id :
         {models::ModelId::LLaMA, models::ModelId::Parti,
          models::ModelId::StableDiffusion}) {
        const graph::Pipeline p = models::buildModel(id);
        const double autod =
            suite.profileOne(p, graph::AttentionBackend::Auto)
                .totalSeconds;
        for (graph::AttentionBackend fixed :
             {graph::AttentionBackend::Baseline,
              graph::AttentionBackend::Flash,
              graph::AttentionBackend::FlashDecode}) {
            const double t =
                suite.profileOne(p, fixed).totalSeconds;
            EXPECT_LE(autod, t * (1.0 + 1e-9))
                << models::modelName(id) << " vs "
                << graph::attentionBackendName(fixed);
        }
    }
}

TEST(Determinism, FasterHbmShrinksBaselineAttentionShare)
{
    // The baseline attention penalty is memory traffic: scaling HBM
    // bandwidth up must shrink its share of total time.
    hw::GpuSpec fat_hbm = hw::GpuSpec::a100_80gb();
    fat_hbm.hbmBandwidth *= 4.0;
    CharacterizationSuite base;
    CharacterizationSuite fat(fat_hbm);
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const double share_base =
        base.profileOne(p, graph::AttentionBackend::Baseline)
            .breakdown.categoryFraction(graph::OpCategory::Attention);
    const double share_fat =
        fat.profileOne(p, graph::AttentionBackend::Baseline)
            .breakdown.categoryFraction(graph::OpCategory::Attention);
    EXPECT_LT(share_fat, share_base);
}

} // namespace
} // namespace mmgen::core
