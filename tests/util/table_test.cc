/**
 * @file
 * Tests for the text-table renderer and CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace mmgen {
namespace {

TEST(TextTable, RejectsArityMismatch)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Model", "Speedup"});
    t.addRow({"StableDiffusion", "1.67x"});
    t.addRow({"Muse", "1.11x"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Model"), std::string::npos);
    EXPECT_NE(out.find("StableDiffusion"), std::string::npos);
    EXPECT_NE(out.find("1.67x"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, SeparatorDoesNotCountAsRow)
{
    TextTable t({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(LooksNumeric, Heuristics)
{
    EXPECT_TRUE(looksNumeric("123"));
    EXPECT_TRUE(looksNumeric("1.67x"));
    EXPECT_TRUE(looksNumeric("-4.2"));
    EXPECT_TRUE(looksNumeric("44.1%"));
    EXPECT_FALSE(looksNumeric("Model"));
    EXPECT_FALSE(looksNumeric(""));
    EXPECT_FALSE(looksNumeric("x17"));
}

TEST(CsvWriter, EscapesSpecialCells)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows)
{
    std::ostringstream oss;
    CsvWriter w(oss);
    w.writeRow({"model", "seq"});
    w.writeRow({"sd", "4096"});
    EXPECT_EQ(oss.str(), "model,seq\nsd,4096\n");
}

} // namespace
} // namespace mmgen
