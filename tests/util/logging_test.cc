/**
 * @file
 * Tests for the error-reporting macros.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/logging.hh"

namespace mmgen {
namespace {

TEST(MmgenCheck, PassesOnTrue)
{
    EXPECT_NO_THROW(MMGEN_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(MmgenCheck, ThrowsFatalWithMessage)
{
    try {
        MMGEN_CHECK(false, "bad config " << 42);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad config 42"), std::string::npos);
        EXPECT_NE(what.find("logging_test.cc"), std::string::npos);
    }
}

TEST(MmgenAssert, ThrowsPanicWithMessage)
{
    try {
        MMGEN_ASSERT(false, "internal " << "bug");
        FAIL() << "expected PanicError";
    } catch (const PanicError& e) {
        EXPECT_NE(std::string(e.what()).find("internal bug"),
                  std::string::npos);
    }
}

TEST(ErrorKinds, FatalIsNotPanic)
{
    // User errors and internal bugs must be distinguishable so the
    // CLI front-ends can map them to exit codes (gem5 fatal vs panic).
    EXPECT_THROW(MMGEN_CHECK(false, "x"), FatalError);
    EXPECT_THROW(MMGEN_ASSERT(false, "x"), PanicError);
    bool fatal_caught_as_panic = false;
    try {
        MMGEN_CHECK(false, "x");
    } catch (const PanicError&) {
        fatal_caught_as_panic = true;
    } catch (const FatalError&) {
    }
    EXPECT_FALSE(fatal_caught_as_panic);
}

} // namespace
} // namespace mmgen
