/**
 * @file
 * Tests for the shared JSON utilities: string escaping semantics and
 * the streaming writer's comma/nesting bookkeeping.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace mmgen {
namespace {

TEST(JsonEscape, PlainStringsPassThrough)
{
    EXPECT_EQ(json::escape("hello world_42"), "hello world_42");
    EXPECT_EQ(json::escape(""), "");
}

TEST(JsonEscape, QuotesAndBackslashes)
{
    EXPECT_EQ(json::escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, NamedControlCharacters)
{
    EXPECT_EQ(json::escape("line1\nline2"), "line1\\nline2");
    EXPECT_EQ(json::escape("col1\tcol2"), "col1\\tcol2");
    EXPECT_EQ(json::escape("a\rb"), "a\\rb");
}

TEST(JsonEscape, OtherControlCharactersUseUnicodeEscapes)
{
    EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(json::escape(std::string(1, '\x1f')), "\\u001f");
    EXPECT_EQ(json::escape(std::string("a\x02") + "b"), "a\\u0002b");
    // NUL embedded in a std::string is a control character too.
    EXPECT_EQ(json::escape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, Utf8MultiByteSequencesPassThroughUntouched)
{
    const std::string snowman = "\xe2\x98\x83";      // U+2603
    const std::string accent = "caf\xc3\xa9";        // café
    EXPECT_EQ(json::escape(snowman), snowman);
    EXPECT_EQ(json::escape(accent), accent);
}

TEST(JsonWriter, FlatObject)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.field("name", "x");
    w.field("n", std::int64_t{3});
    w.field("ok", true);
    w.endObject();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(out.str(), "{\"name\":\"x\",\"n\":3,\"ok\":true}");
}

TEST(JsonWriter, ArraysSeparateSiblingsWithCommas)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginArray();
    w.value(std::int64_t{1});
    w.value(std::int64_t{2});
    w.value("three");
    w.endArray();
    EXPECT_EQ(out.str(), "[1,2,\"three\"]");
}

/**
 * Regression: a sibling following a *closed* nested container must
 * still get its comma (the original bookkeeping lost track of the
 * parent's child count when a child container popped).
 */
TEST(JsonWriter, SiblingAfterNestedContainerGetsComma)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.key("labels").beginObject();
    w.field("replica", "0");
    w.endObject();
    w.key("points").beginArray();
    w.beginArray();
    w.value(5.0);
    w.value(0.0);
    w.endArray();
    w.beginArray();
    w.value(10.0);
    w.value(1.0);
    w.endArray();
    w.endArray();
    w.endObject();
    EXPECT_EQ(out.str(), "{\"labels\":{\"replica\":\"0\"},"
                         "\"points\":[[5,0],[10,1]]}");
}

TEST(JsonWriter, RawValueEmitsTokenVerbatim)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.key("v").rawValue("1.250");
    w.endObject();
    EXPECT_EQ(out.str(), "{\"v\":1.250}");
}

TEST(JsonWriter, MisuseTripsFatalError)
{
    {
        std::ostringstream out;
        json::Writer w(out);
        w.beginObject();
        EXPECT_THROW(w.value(1.0), FatalError); // value without key
    }
    {
        std::ostringstream out;
        json::Writer w(out);
        w.beginArray();
        EXPECT_THROW(w.endObject(), FatalError); // mismatched end
    }
    {
        std::ostringstream out;
        json::Writer w(out);
        w.beginObject();
        w.key("k");
        EXPECT_THROW(w.endObject(), FatalError); // dangling key
    }
}

TEST(JsonNumber, RoundTripPrecision)
{
    EXPECT_EQ(json::number(0.5), "0.5");
    EXPECT_EQ(json::number(3.0), "3");
    // %.17g guarantees the parsed double equals the original.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(json::number(v)), v);
}

} // namespace
} // namespace mmgen
