/**
 * @file
 * Unit and property tests for descriptive statistics.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen {
namespace {

TEST(Summarize, EmptyIsZeroed)
{
    const Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, KnownSample)
{
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    const Summary s = summarize(v);
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Summarize, OddSampleMedianIsMiddle)
{
    const std::vector<double> v = {9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(summarize(v).median, 5.0);
}

TEST(Geomean, MatchesHandComputation)
{
    const std::vector<double> v = {1.0, 4.0};
    EXPECT_DOUBLE_EQ(geomean(v), 2.0);
}

TEST(Geomean, RejectsNonPositive)
{
    const std::vector<double> v = {1.0, 0.0};
    EXPECT_THROW(geomean(v), FatalError);
    EXPECT_THROW(geomean({}), FatalError);
}

TEST(Percentile, EndpointsAndMidpoint)
{
    const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Percentile, RejectsOutOfRange)
{
    const std::vector<double> v = {1.0};
    EXPECT_THROW(percentile(v, -1.0), FatalError);
    EXPECT_THROW(percentile(v, 101.0), FatalError);
}

TEST(Percentile, EmptySampleThrows)
{
    EXPECT_THROW(percentile({}, 50.0), FatalError);
}

TEST(Percentile, SingleElementIsEveryQuantile)
{
    const std::vector<double> v = {7.5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 37.0), 7.5);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.5);
}

TEST(Percentile, DuplicatesInterpolateWithinRuns)
{
    // All-equal samples: every quantile is that value.
    const std::vector<double> same = {3.0, 3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(same, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(same, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(same, 99.0), 3.0);
    // A run of duplicates pins the quantiles inside it.
    const std::vector<double> v = {1.0, 2.0, 2.0, 2.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), 2.0);
}

TEST(Percentile, NanObservationsRejected)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(percentile(std::vector<double>{1.0, nan, 2.0}, 50.0),
                 FatalError);
    EXPECT_THROW(percentile(std::vector<double>{nan}, 0.0),
                 FatalError);
    // A NaN rank fails the [0, 100] range check.
    EXPECT_THROW(percentile(std::vector<double>{1.0}, nan),
                 FatalError);
}

TEST(Percentile, UnsortedInputMatchesSorted)
{
    const std::vector<double> shuffled = {9.0, 1.0, 5.0, 3.0, 7.0};
    const std::vector<double> sorted = {1.0, 3.0, 5.0, 7.0, 9.0};
    for (double pct : {0.0, 10.0, 25.0, 50.0, 90.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile(shuffled, pct),
                         percentile(sorted, pct));
}

TEST(ValueHistogram, TracksDiscreteBuckets)
{
    ValueHistogram h;
    h.add(256.0, 50);
    h.add(1024.0, 50);
    h.add(256.0, 25);
    EXPECT_EQ(h.distinctValues(), 2u);
    EXPECT_EQ(h.totalWeight(), 125u);
    EXPECT_EQ(h.frequency(256.0), 75u);
    EXPECT_EQ(h.frequency(4096.0), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(1024.0), 50.0 / 125.0);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_DOUBLE_EQ(buckets[0].first, 256.0);
    EXPECT_DOUBLE_EQ(buckets[1].first, 1024.0);
}

/** Property: mean of summarize always lies within [min, max]. */
class SummarizeProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SummarizeProperty, MeanWithinRangeAndMedianOrdered)
{
    Rng rng(GetParam());
    std::vector<double> v;
    const int n = 1 + static_cast<int>(rng.uniformInt(0, 200));
    for (int i = 0; i < n; ++i)
        v.push_back(rng.normal(0.0, 10.0));
    const Summary s = summarize(v);
    EXPECT_LE(s.min, s.mean);
    EXPECT_GE(s.max, s.mean);
    EXPECT_LE(s.min, s.median);
    EXPECT_GE(s.max, s.median);
    EXPECT_GE(s.stddev, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummarizeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace mmgen
