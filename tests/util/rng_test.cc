/**
 * @file
 * Tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyUnitMoments)
{
    Rng rng(11);
    std::vector<double> v;
    for (int i = 0; i < 20000; ++i)
        v.push_back(rng.normal());
    const Summary s = summarize(v);
    EXPECT_NEAR(s.mean, 0.0, 0.05);
    EXPECT_NEAR(s.stddev, 1.0, 0.05);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.5), 0.0);
}

} // namespace
} // namespace mmgen
