/**
 * @file
 * Unit tests for the formatting helpers.
 */

#include <gtest/gtest.h>

#include "util/format.hh"

namespace mmgen {
namespace {

TEST(FormatFlops, ScalesThroughSuffixLadder)
{
    EXPECT_EQ(formatFlops(512.0), "512.00 FLOP");
    EXPECT_EQ(formatFlops(1.5e3), "1.50 KFLOP");
    EXPECT_EQ(formatFlops(2.5e9), "2.50 GFLOP");
    EXPECT_EQ(formatFlops(3.12e14), "312.00 TFLOP");
    EXPECT_EQ(formatFlops(1e18), "1.00 EFLOP");
}

TEST(FormatFlops, RateUsesPerSecondSuffix)
{
    EXPECT_EQ(formatFlopRate(312e12), "312.0 TFLOP/s");
}

TEST(FormatBytes, UsesBinaryLadder)
{
    EXPECT_EQ(formatBytes(512.0), "512.00 B");
    EXPECT_EQ(formatBytes(1024.0), "1.00 KiB");
    EXPECT_EQ(formatBytes(40.0 * 1024 * 1024), "40.00 MiB");
    EXPECT_EQ(formatBytes(80e9), "74.51 GiB");
}

TEST(FormatTime, PicksAdaptiveUnit)
{
    EXPECT_EQ(formatTime(1.5), "1.500 s");
    EXPECT_EQ(formatTime(12.3e-3), "12.300 ms");
    EXPECT_EQ(formatTime(4e-6), "4.000 us");
    EXPECT_EQ(formatTime(5e-9), "5.0 ns");
}

TEST(FormatCount, UsesDecimalLadder)
{
    EXPECT_EQ(formatCount(950.0), "950.00");
    EXPECT_EQ(formatCount(1.45e9), "1.45B");
    EXPECT_EQ(formatCount(20e9), "20.00B");
    EXPECT_EQ(formatCount(7e6), "7.00M");
}

TEST(FormatPercent, RendersFraction)
{
    EXPECT_EQ(formatPercent(0.441), "44.1%");
    EXPECT_EQ(formatPercent(0.05, 0), "5%");
    EXPECT_EQ(formatPercent(1.0), "100.0%");
}

TEST(Join, HandlesEmptyAndMulti)
{
    EXPECT_EQ(join({}, "."), "");
    EXPECT_EQ(join({"a"}, "."), "a");
    EXPECT_EQ(join({"unet", "down0", "attn"}, "."), "unet.down0.attn");
}

TEST(Pad, LeftAndRight)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

} // namespace
} // namespace mmgen
