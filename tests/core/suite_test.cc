/**
 * @file
 * Tests for the characterization suite facade, reports and taxonomy.
 */

#include <gtest/gtest.h>

#include "core/reports.hh"
#include "core/suite.hh"
#include "core/taxonomy.hh"
#include "util/logging.hh"

namespace mmgen::core {
namespace {

/** One shared SD run for all tests in this file. */
const ModelRunResult&
sdRun()
{
    static const ModelRunResult r = CharacterizationSuite().run(
        models::ModelId::StableDiffusion);
    return r;
}

TEST(CharacterizationSuite, RunsBothBackends)
{
    const ModelRunResult& r = sdRun();
    EXPECT_EQ(r.baseline.backend, graph::AttentionBackend::Baseline);
    EXPECT_EQ(r.flash.backend, graph::AttentionBackend::Flash);
    EXPECT_EQ(r.baseline.model, "StableDiffusion");
    EXPECT_GT(r.endToEndSpeedup(), 1.0);
    EXPECT_GT(r.attentionModuleSpeedup(), 1.0);
    EXPECT_GT(r.baselineAttentionFraction(),
              r.flashAttentionFraction());
}

TEST(CharacterizationSuite, FlashLeavesNonAttentionUnchanged)
{
    const ModelRunResult& r = sdRun();
    for (graph::OpCategory c :
         {graph::OpCategory::Convolution, graph::OpCategory::Linear,
          graph::OpCategory::GroupNorm}) {
        EXPECT_NEAR(r.baseline.breakdown.categorySeconds(c),
                    r.flash.breakdown.categorySeconds(c),
                    1e-12);
    }
}

TEST(CharacterizationSuite, ParamsIndependentOfBackend)
{
    const ModelRunResult& r = sdRun();
    EXPECT_EQ(r.baseline.params, r.flash.params);
}

TEST(Reports, TablesRenderWithExpectedRows)
{
    const std::vector<ModelRunResult> results = {sdRun()};
    EXPECT_EQ(flashSpeedupTable(results).rowCount(), 1u);
    EXPECT_EQ(attentionSpeedupTable(results).rowCount(), 1u);
    EXPECT_EQ(operatorBreakdownTable(results).rowCount(), 2u);
    EXPECT_EQ(
        rooflineTable(results, hw::GpuSpec::a100_80gb()).rowCount(),
        1u);
    const std::string summary = profileSummary(sdRun().flash);
    EXPECT_NE(summary.find("StableDiffusion"), std::string::npos);
    EXPECT_NE(summary.find("unet"), std::string::npos);
}

TEST(Reports, HotspotTableRanksByTime)
{
    profiler::ProfileOptions opts;
    opts.keepOpRecords = true;
    const profiler::ProfileResult res = profiler::Profiler(opts).profile(
        models::buildModel(models::ModelId::StableDiffusion));
    const TextTable table = hotspotTable(res, 5);
    EXPECT_EQ(table.rowCount(), 5u);
    // Rendered output carries scopes and shares.
    const std::string out = table.render();
    EXPECT_NE(out.find("%"), std::string::npos);
    EXPECT_NE(out.find("unet"), std::string::npos);

    // Without records the call is a user error.
    const profiler::ProfileResult bare =
        profiler::Profiler().profile(
            models::buildModel(models::ModelId::Muse));
    EXPECT_THROW(hotspotTable(bare), mmgen::FatalError);
}

TEST(Taxonomy, TercilesSpanLevels)
{
    // Three synthetic results ordered by every axis would need full
    // runs; instead check the level mapping through a real small set.
    CharacterizationSuite suite;
    const std::vector<ModelRunResult> results = {
        suite.run(models::ModelId::StableDiffusion),
        suite.run(models::ModelId::Muse),
    };
    const std::vector<TaxonomyRow> rows = buildTaxonomy(results);
    ASSERT_EQ(rows.size(), 2u);
    for (const auto& row : rows) {
        EXPECT_GT(row.params, 0);
        EXPECT_GT(row.flops, 0.0);
        EXPECT_GT(row.memoryBytes, 0.0);
        EXPECT_GT(row.latencySeconds, 0.0);
    }
    EXPECT_EQ(taxonomyTable(rows).rowCount(), 2u);
    EXPECT_EQ(resourceLevelName(ResourceLevel::Medium), "Medium");
}

TEST(Taxonomy, PeakWorkingSetReflectsBaselineAttention)
{
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const double peak = peakOpWorkingSetBytes(sd);
    // The 4096x4096 x 8-head similarity matrix dominates: >= 268 MB.
    EXPECT_GT(peak, 250e6);
}

} // namespace
} // namespace mmgen::core
