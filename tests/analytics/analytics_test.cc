/**
 * @file
 * Tests for the analytics: Section V memory model, Amdahl helpers,
 * Pareto analysis, phase classification, temporal scaling.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/amdahl.hh"
#include "analytics/memory_model.hh"
#include "analytics/pareto.hh"
#include "analytics/phase_classifier.hh"
#include "analytics/temporal_scaling.hh"
#include "models/model_suite.hh"
#include "util/logging.hh"

namespace mmgen::analytics {
namespace {

// ---------------------------------------------------------------- V --

TEST(MemoryModel, PositionsFollowDownFactor)
{
    DiffusionMemoryModel m;
    m.latentH = m.latentW = 64;
    m.downFactor = 2;
    m.unetDepth = 3;
    EXPECT_EQ(m.positionsAtStage(0), 4096);
    EXPECT_EQ(m.positionsAtStage(1), 1024);
    EXPECT_EQ(m.positionsAtStage(3), 64);
    EXPECT_THROW(m.positionsAtStage(4), FatalError);
}

TEST(MemoryModel, SimilarityBytesMatchPaperFormula)
{
    // 2 bytes * HW * (HW + text_encode), paper Section V-A.
    DiffusionMemoryModel m;
    m.latentH = m.latentW = 64;
    m.textEncode = 77;
    const double hw = 4096.0;
    EXPECT_DOUBLE_EQ(m.similarityBytesAtStage(0),
                     2.0 * hw * (hw + 77.0));
    EXPECT_DOUBLE_EQ(m.selfSimilarityEntries(0), hw * hw);
    EXPECT_DOUBLE_EQ(m.crossSimilarityEntries(0), hw * 77.0);
}

TEST(MemoryModel, CumulativeSumsLadderTwiceBottleneckOnce)
{
    DiffusionMemoryModel m;
    m.latentH = m.latentW = 32;
    m.unetDepth = 2;
    const double expected = 2.0 * (m.similarityBytesAtStage(0) +
                                   m.similarityBytesAtStage(1)) +
                            m.similarityBytesAtStage(2);
    EXPECT_DOUBLE_EQ(m.cumulativeSimilarityBytes(), expected);
}

TEST(MemoryModel, QuarticScalingLaw)
{
    // Paper: attention memory ~ O(L^4) in the latent extent.
    std::vector<double> x, y;
    for (std::int64_t latent : {16, 32, 64, 128, 256}) {
        DiffusionMemoryModel m;
        m.latentH = m.latentW = latent;
        m.textEncode = 0;
        x.push_back(static_cast<double>(latent));
        y.push_back(m.cumulativeSimilarityBytes());
    }
    EXPECT_NEAR(scalingExponent(x, y), 4.0, 0.05);
}

TEST(ScalingExponent, RecoversKnownPowerLawsAndValidates)
{
    const std::vector<double> x = {1.0, 2.0, 4.0, 8.0};
    std::vector<double> y;
    for (double v : x)
        y.push_back(3.0 * v * v);
    EXPECT_NEAR(scalingExponent(x, y), 2.0, 1e-9);
    EXPECT_THROW(scalingExponent({1.0}, {1.0}), FatalError);
    EXPECT_THROW(scalingExponent({1.0, 1.0}, {2.0, 3.0}), FatalError);
    EXPECT_THROW(scalingExponent({1.0, -2.0}, {1.0, 1.0}), FatalError);
}

// ----------------------------------------------------------- Amdahl --

TEST(Amdahl, KnownPoints)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 10.0), 1.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 4.0), 4.0);
    EXPECT_NEAR(amdahlSpeedup(0.5, 2.0), 1.0 / 0.75, 1e-12);
    EXPECT_DOUBLE_EQ(amdahlCeiling(0.5), 2.0);
}

TEST(Amdahl, InverseRoundTrips)
{
    const double f = 0.464;
    const double module = 6.9;
    const double e2e = amdahlSpeedup(f, module);
    EXPECT_NEAR(impliedModuleSpeedup(f, e2e), module, 1e-9);
}

TEST(Amdahl, RejectsImpossibleSpeedups)
{
    EXPECT_THROW(impliedModuleSpeedup(0.5, 3.0), FatalError);
    EXPECT_THROW(amdahlSpeedup(1.5, 2.0), FatalError);
    EXPECT_THROW(amdahlCeiling(1.0), FatalError);
}

// ----------------------------------------------------------- Pareto --

TEST(Pareto, DominanceSemantics)
{
    const QualityPoint a{"a", 7.0, 3.0, "d"};
    const QualityPoint b{"b", 8.0, 4.0, "d"};
    const QualityPoint c{"c", 7.0, 3.0, "d"};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, c)); // equal points do not dominate
}

TEST(Pareto, FrontFromPublishedDataMatchesPaperFig4)
{
    const auto& points = publishedTtiQualityPoints();
    const auto front = paretoFront(points);
    std::set<std::string> names;
    for (std::size_t i : front)
        names.insert(points[i].name);
    // The paper highlights Imagen, Stable Diffusion and Parti on the
    // Pareto-optimal curve.
    EXPECT_TRUE(names.count("Imagen"));
    EXPECT_TRUE(names.count("StableDiffusion"));
    EXPECT_TRUE(names.count("Parti"));
    // Clearly dominated models are off the front.
    EXPECT_FALSE(names.count("DALL-E"));
    EXPECT_FALSE(names.count("CogView"));
}

TEST(Pareto, FrontSortedByFidAndNonDominated)
{
    const auto& points = publishedTtiQualityPoints();
    const auto front = paretoFront(points);
    for (std::size_t i = 1; i < front.size(); ++i)
        EXPECT_LE(points[front[i - 1]].fid, points[front[i]].fid);
    for (std::size_t i : front)
        for (std::size_t j = 0; j < points.size(); ++j)
            EXPECT_FALSE(i != j && dominates(points[j], points[i]));
}

// ------------------------------------------------------ Phase (III) --

TEST(PhaseClassifier, VerdictThresholds)
{
    PhaseProfile p;
    p.blockQueryCalls = 100;
    p.tokenQueryCalls = 0;
    EXPECT_EQ(p.verdict(), PhaseKind::PrefillLike);
    p.blockQueryCalls = 0;
    p.tokenQueryCalls = 100;
    EXPECT_EQ(p.verdict(), PhaseKind::DecodeLike);
    p.blockQueryCalls = 50;
    EXPECT_EQ(p.verdict(), PhaseKind::Mixed);
    EXPECT_EQ(phaseKindName(PhaseKind::Mixed), "mixed");
}

TEST(PhaseClassifier, PaperTable3Correspondence)
{
    using models::ModelId;
    auto verdict = [](ModelId id) {
        return classifyPipeline(models::buildModel(id)).verdict();
    };
    // Diffusion generates all pixels at once => prefill-like.
    EXPECT_EQ(verdict(ModelId::StableDiffusion),
              PhaseKind::PrefillLike);
    EXPECT_EQ(verdict(ModelId::Imagen), PhaseKind::PrefillLike);
    EXPECT_EQ(verdict(ModelId::MakeAVideo), PhaseKind::PrefillLike);
    // Autoregressive transformer TTI => decode-like.
    EXPECT_EQ(verdict(ModelId::Parti), PhaseKind::DecodeLike);
    // Parallel decoding processes full grids => prefill-shaped calls.
    EXPECT_EQ(verdict(ModelId::Muse), PhaseKind::PrefillLike);
}

// ------------------------------------------------------ Fig. 13 -----

TEST(TemporalScaling, LinearVsQuadraticInFrames)
{
    const std::int64_t hw = 256, dim = 1280;
    const double s1 = spatialAttentionFlops(16, hw, dim);
    const double s2 = spatialAttentionFlops(32, hw, dim);
    EXPECT_DOUBLE_EQ(s2, 2.0 * s1); // linear
    const double t1 = temporalAttentionFlops(16, hw, dim);
    const double t2 = temporalAttentionFlops(32, hw, dim);
    EXPECT_DOUBLE_EQ(t2, 4.0 * t1); // quadratic
}

TEST(TemporalScaling, CrossoverAtSpatialExtent)
{
    const std::int64_t hw = 256, dim = 64;
    const std::int64_t cross = temporalCrossoverFrames(hw);
    EXPECT_EQ(cross, hw);
    EXPECT_LT(temporalAttentionFlops(cross / 2, hw, dim),
              spatialAttentionFlops(cross / 2, hw, dim));
    EXPECT_DOUBLE_EQ(temporalAttentionFlops(cross, hw, dim),
                     spatialAttentionFlops(cross, hw, dim));
    EXPECT_GT(temporalAttentionFlops(cross * 2, hw, dim),
              spatialAttentionFlops(cross * 2, hw, dim));
}

TEST(TemporalScaling, HigherResolutionDelaysCrossover)
{
    EXPECT_LT(temporalCrossoverFrames(8 * 8),
              temporalCrossoverFrames(16 * 16));
    EXPECT_LT(temporalCrossoverFrames(16 * 16),
              temporalCrossoverFrames(32 * 32));
}

TEST(TemporalScaling, JointAttentionIsMemoryInfeasible)
{
    // Paper Section II-B: the joint similarity matrix dwarfs the
    // factorized pair's, and the gap widens with frame count.
    const std::int64_t hw = 1024;
    double prev_ratio = 0.0;
    for (std::int64_t frames : {4, 8, 16, 32}) {
        const double ratio =
            jointSimilarityBytes(frames, hw) /
            factorizedSimilarityBytes(frames, hw);
        EXPECT_GT(ratio, prev_ratio);
        prev_ratio = ratio;
    }
    EXPECT_GT(prev_ratio, 25.0);
    // And the joint FLOPs exceed the factorized sum.
    EXPECT_GT(jointSpatioTemporalFlops(16, hw, 1280),
              spatialAttentionFlops(16, hw, 1280) +
                  temporalAttentionFlops(16, hw, 1280));
}

TEST(TemporalScaling, WindowingLinearizesFrames)
{
    const std::int64_t hw = 1024, dim = 1280, w = 8;
    // Windowed FLOPs scale linearly in frames once frames > window.
    const double f64 = windowedTemporalFlops(64, hw, dim, w);
    const double f128 = windowedTemporalFlops(128, hw, dim, w);
    EXPECT_NEAR(f128 / f64, 2.0, 1e-9);
    // Window >= frames degenerates to full temporal attention.
    EXPECT_DOUBLE_EQ(windowedTemporalFlops(16, hw, dim, 64),
                     temporalAttentionFlops(16, hw, dim));
    EXPECT_THROW(windowedTemporalFlops(16, hw, dim, 0), FatalError);
}

} // namespace
} // namespace mmgen::analytics
