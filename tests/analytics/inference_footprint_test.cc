/**
 * @file
 * Tests for the inference memory-footprint estimator.
 */

#include <gtest/gtest.h>

#include "analytics/inference_footprint.hh"
#include "models/llama.hh"
#include "models/model_suite.hh"

namespace mmgen::analytics {
namespace {

using models::ModelId;

TEST(InferenceFootprint, TotalsAndFit)
{
    InferenceFootprint fp;
    fp.weightBytes = 40e9;
    fp.kvCacheBytes = 5e9;
    fp.peakActivationBytes = 1e9;
    EXPECT_DOUBLE_EQ(fp.totalBytes(), 46e9);
    const hw::GpuSpec a100 = hw::GpuSpec::a100_80gb();
    EXPECT_TRUE(fp.fits(a100));
    EXPECT_NEAR(fp.utilization(a100), 46.0 / 80.0, 1e-12);
    fp.weightBytes = 100e9;
    EXPECT_FALSE(fp.fits(a100));
}

TEST(InferenceFootprint, WeightsMatchParams)
{
    const graph::Pipeline sd =
        models::buildModel(ModelId::StableDiffusion);
    const InferenceFootprint fp = estimateFootprint(sd);
    EXPECT_DOUBLE_EQ(fp.weightBytes,
                     static_cast<double>(sd.totalParams()) * 2.0);
    // Diffusion inference carries no KV cache.
    EXPECT_DOUBLE_EQ(fp.kvCacheBytes, 0.0);
    EXPECT_GT(fp.peakActivationBytes, 0.0);
}

TEST(InferenceFootprint, AutoregressiveModelsCarryKvCache)
{
    const InferenceFootprint llama =
        estimateFootprint(models::buildModel(ModelId::LLaMA));
    // 32 layers x 2 (K and V) x (prompt + decode) x 4096 dims x 2 B.
    const models::LlamaConfig cfg;
    const double expected_self =
        2.0 * 32 * (cfg.promptLen + cfg.decodeTokens) * 4096 * 2.0;
    EXPECT_NEAR(llama.kvCacheBytes, expected_self,
                0.01 * expected_self);

    const InferenceFootprint parti =
        estimateFootprint(models::buildModel(ModelId::Parti));
    EXPECT_GT(parti.kvCacheBytes, 0.0);
}

TEST(InferenceFootprint, PaperSection3SingleGpuClaim)
{
    // Every suite model fits a single A100-80GB at inference.
    const hw::GpuSpec a100 = hw::GpuSpec::a100_80gb();
    for (ModelId id : models::allModels()) {
        const InferenceFootprint fp =
            estimateFootprint(models::buildModel(id));
        EXPECT_TRUE(fp.fits(a100)) << models::modelName(id);
    }
    // And Parti is by far the heaviest (Table I memory High).
    const double parti =
        estimateFootprint(models::buildModel(ModelId::Parti))
            .totalBytes();
    for (ModelId id : models::allModels()) {
        if (id == ModelId::Parti)
            continue;
        EXPECT_GT(parti,
                  2.0 * estimateFootprint(models::buildModel(id))
                            .totalBytes())
            << models::modelName(id);
    }
}

TEST(InferenceFootprint, BaselineBackendRaisesActivationPeak)
{
    const graph::Pipeline sd =
        models::buildModel(ModelId::StableDiffusion);
    const double flash =
        estimateFootprint(sd, graph::AttentionBackend::Flash)
            .peakActivationBytes;
    const double baseline =
        estimateFootprint(sd, graph::AttentionBackend::Baseline)
            .peakActivationBytes;
    // The materialized similarity matrix (8 heads x 4096^2 fp16 =
    // 256 MiB) pushes the baseline peak above the flash peak, which is
    // set by the VAE's full-resolution convolutions.
    EXPECT_GT(baseline, flash);
    EXPECT_GT(baseline, 256.0 * 1024 * 1024);
}

} // namespace
} // namespace mmgen::analytics
