/**
 * @file
 * Tests for the denoising-pod scheduler (Section V-A proposal).
 */

#include <gtest/gtest.h>

#include "analytics/pod_scheduler.hh"
#include "models/stable_diffusion.hh"
#include "util/logging.hh"

namespace mmgen::analytics {
namespace {

/** A square-wave demand curve: half loud, half quiet. */
std::vector<DemandSlice>
squareWave(double loud, double quiet)
{
    return {
        {1.0, loud},
        {1.0, quiet},
    };
}

TEST(DemandSlice, BandwidthIsBytesOverTime)
{
    const DemandSlice s{2.0, 10.0};
    EXPECT_DOUBLE_EQ(s.bandwidth(), 5.0);
    EXPECT_DOUBLE_EQ(DemandSlice{}.bandwidth(), 0.0);
}

TEST(PodScheduler, InPhaseStacksPeaks)
{
    const auto demand = squareWave(100.0, 0.0);
    const PodSchedule s = inPhaseSchedule(demand, 2);
    EXPECT_NEAR(s.peakBandwidth, 200.0, 1.0);
    EXPECT_NEAR(s.meanBandwidth, 100.0, 1.0);
    EXPECT_NEAR(s.peakToAverage(), 2.0, 0.05);
}

TEST(PodScheduler, StaggeringFlattensSquareWave)
{
    // Two anti-phase square waves sum to a flat line.
    const auto demand = squareWave(100.0, 0.0);
    const PodSchedule s = schedulePods(demand, 2);
    EXPECT_NEAR(s.peakBandwidth, 100.0, 2.0);
    EXPECT_NEAR(s.peakToAverage(), 1.0, 0.05);
    EXPECT_EQ(s.offsets.size(), 2u);
    EXPECT_NE(s.offsets[0], s.offsets[1]);
}

TEST(PodScheduler, NeverWorseThanInPhase)
{
    const auto demand = squareWave(7.0, 3.0);
    for (int pods : {1, 2, 3, 5}) {
        const PodSchedule staggered = schedulePods(demand, pods);
        const PodSchedule in_phase = inPhaseSchedule(demand, pods);
        EXPECT_LE(staggered.peakBandwidth,
                  in_phase.peakBandwidth + 1e-9)
            << pods << " pods";
        // Mean demand is schedule-invariant.
        EXPECT_NEAR(staggered.meanBandwidth, in_phase.meanBandwidth,
                    1e-9);
    }
}

TEST(PodScheduler, FlatDemandGainsNothing)
{
    const std::vector<DemandSlice> flat = {{1.0, 50.0}, {2.0, 100.0}};
    const PodSchedule s = schedulePods(squareWave(10.0, 10.0), 3);
    EXPECT_NEAR(s.peakToAverage(), 1.0, 1e-9);
}

TEST(PodScheduler, Validation)
{
    EXPECT_THROW(schedulePods({}, 2), FatalError);
    EXPECT_THROW(schedulePods(squareWave(1, 1), 0), FatalError);
    EXPECT_THROW(evaluateOffsets(squareWave(1, 1), {}), FatalError);
    const std::vector<DemandSlice> zero = {{0.0, 1.0}};
    EXPECT_THROW(schedulePods(zero, 1), FatalError);
}

TEST(PodScheduler, StableDiffusionUNetBenefits)
{
    // The real UNet demand profile is cyclic (Fig. 7): staggering two
    // pods must measurably reduce the peak.
    const graph::Pipeline sd = models::buildStableDiffusion();
    const auto demand =
        stageDemandProfile(sd, 1, hw::GpuSpec::a100_80gb());
    ASSERT_GT(demand.size(), 50u);
    const PodSchedule in_phase = inPhaseSchedule(demand, 2);
    const PodSchedule staggered = schedulePods(demand, 2);
    EXPECT_LT(staggered.peakBandwidth, 0.95 * in_phase.peakBandwidth);
    EXPECT_LT(staggered.peakToAverage(), in_phase.peakToAverage());
}

} // namespace
} // namespace mmgen::analytics
