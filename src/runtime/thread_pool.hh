/**
 * @file
 * Work-stealing thread pool with a deterministic parallel-for.
 *
 * The characterization sweeps profile the same model zoo under dozens
 * of (backend, image size, serving rate) configurations; every point
 * is independent, so the harness runs them data-parallel. Two
 * properties are non-negotiable for this repo (see
 * `docs/architecture.md`, "Determinism is non-negotiable"):
 *
 * 1. **Bit-identical output at any thread count.** `forEach(n, fn)`
 *    executes `fn(i)` for every index exactly once and callers store
 *    results by index, so nothing depends on completion order. Any
 *    stochastic task must derive its generator from the task index
 *    (`Rng::stream(seed, i)` — see `parallel.hh`'s
 *    `parallelMapSeeded`), never from a shared stream.
 * 2. **Jobs = 1 means inline.** A one-thread pool spawns no workers
 *    and runs everything on the calling thread, so the serial path is
 *    exactly the pre-runtime harness.
 *
 * Scheduling: each worker owns a deque; `submit` distributes tasks
 * round-robin, owners pop LIFO from the front, and idle workers steal
 * FIFO from the back of a victim's deque. Index loops additionally
 * self-schedule from a shared atomic cursor (stealing at granularity
 * one), and the submitting thread helps execute, so a loop can never
 * deadlock waiting for a saturated pool.
 */

#ifndef MMGEN_RUNTIME_THREAD_POOL_HH
#define MMGEN_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmgen::runtime {

/**
 * Scheduling counters accumulated over a pool's lifetime. Totals for
 * work done (`tasksExecuted`, `indicesExecuted`, `loopsRun`) are
 * schedule-independent; `tasksStolen` depends on thread timing and is
 * reported for observability only — never fold it into a
 * deterministic artifact.
 */
struct PoolStats
{
    /** Tasks run to completion (submit + forEach helpers). */
    std::int64_t tasksExecuted = 0;
    /** Tasks claimed from another lane's deque. */
    std::int64_t tasksStolen = 0;
    /** forEach calls that ran at least one index. */
    std::int64_t loopsRun = 0;
    /** Total indices executed across every forEach. */
    std::int64_t indicesExecuted = 0;
};

/**
 * Fixed-size work-stealing pool.
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Create a pool of `threads` (>= 1) execution lanes. */
    explicit ThreadPool(int threads);

    /** Joins all workers; outstanding tasks finish first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Execution lanes, counting the helping caller (>= 1). */
    int threads() const { return numThreads; }

    /** Enqueue one fire-and-forget task. */
    void submit(Task task);

    /**
     * Run `fn(0) ... fn(n-1)`, each exactly once, and block until all
     * complete. The calling thread helps execute. If any invocation
     * throws, the exception of the *lowest* throwing index is
     * rethrown after every index has run, so failure behaviour is
     * deterministic too. Nested calls from inside a worker run the
     * whole loop inline.
     */
    void forEach(std::int64_t n,
                 const std::function<void(std::int64_t)>& fn);

    /** Snapshot of the scheduling counters (see PoolStats). */
    PoolStats stats() const;

    /** True when called from one of this process's pool workers. */
    static bool onWorkerThread();

    /**
     * The process-wide pool, created on first use with
     * `resolveJobs(0)` lanes (i.e. `MMGEN_JOBS` or hardware
     * concurrency).
     */
    static ThreadPool& global();

    /**
     * Set the global pool size (0 = auto). If the pool already exists
     * at a different size it is torn down and rebuilt; callers must
     * not invoke this while parallel work is in flight.
     */
    static void setGlobalJobs(int jobs);

    /**
     * Resolve a requested job count: a positive request wins, else
     * the `MMGEN_JOBS` environment variable, else
     * `std::thread::hardware_concurrency()`, clamped to [1, 256].
     */
    static int resolveJobs(int requested);

  private:
    /** One worker's deque; owner pops front, thieves take the back. */
    struct Lane
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void workerLoop(std::size_t self);
    bool tryPop(std::size_t lane, Task& out);
    bool trySteal(std::size_t self, Task& out);

    int numThreads = 1;
    std::vector<std::unique_ptr<Lane>> lanes;
    std::vector<std::thread> workers;

    std::atomic<std::int64_t> statTasksExecuted{0};
    std::atomic<std::int64_t> statTasksStolen{0};
    std::atomic<std::int64_t> statLoopsRun{0};
    std::atomic<std::int64_t> statIndicesExecuted{0};

    std::mutex sleepMu;
    std::condition_variable sleepCv;
    /** Queued-but-unclaimed task count (under sleepMu for the cv). */
    std::int64_t pending = 0;
    bool stopping = false;
    /** Round-robin cursor for submit (under sleepMu). */
    std::size_t nextLane = 0;
};

} // namespace mmgen::runtime

#endif // MMGEN_RUNTIME_THREAD_POOL_HH
