/**
 * @file
 * Memoization cache for pipeline profiles.
 *
 * The figure drivers, the zoo lint, and every serving setup
 * re-profile the same pipelines under the same (GPU, backend,
 * calibration) over and over — `serving_capacity` alone profiles
 * Stable Diffusion once per sweep point. A profile is a pure function
 * of (pipeline structure, GpuSpec, backend, EfficiencyParams), so the
 * cache keys on a structural hash of exactly those inputs
 * (`profileKey`, built on `Pipeline::fingerprint()`) and memoizes the
 * full `ProfileResult`.
 *
 * The cache is thread-safe, bounded (LRU eviction), counts hits /
 * misses / evictions, and is *single-flight*: concurrent requests for
 * the same missing key compute once while the rest wait, so counter
 * totals are schedule-independent (misses == unique keys) and a
 * parallel sweep never duplicates work.
 */

#ifndef MMGEN_RUNTIME_PROFILE_CACHE_HH
#define MMGEN_RUNTIME_PROFILE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/pipeline.hh"
#include "profiler/engine.hh"

namespace mmgen::runtime {

/** Cache effectiveness counters (monotonic over the cache lifetime). */
struct ProfileCacheStats
{
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;

    std::int64_t lookups() const { return hits + misses; }

    /** Hit fraction in [0, 1]; 0 when nothing was looked up. */
    double
    hitRate() const
    {
        const std::int64_t total = lookups();
        return total > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(total)
                   : 0.0;
    }
};

/**
 * Bounded, thread-safe, single-flight LRU memo of profile results.
 */
class ProfileCache
{
  public:
    using Compute = std::function<profiler::ProfileResult()>;

    explicit ProfileCache(std::size_t capacity = 256);

    /**
     * Return the cached result for `key`, computing it via `compute`
     * on a miss. Waiters on an in-flight computation of the same key
     * block and count as hits (they did no work). If `compute`
     * throws, nothing is cached and every waiter observes the same
     * exception.
     */
    std::shared_ptr<const profiler::ProfileResult>
    getOrCompute(std::uint64_t key, const Compute& compute);

    /** Peek without counting or computing; null when absent. */
    std::shared_ptr<const profiler::ProfileResult>
    peek(std::uint64_t key) const;

    ProfileCacheStats stats() const;

    /** Drop all entries (counters keep accumulating). */
    void clear();

    /** Maximum resident entries. */
    std::size_t capacity() const;

    /** The process-wide cache every cached-profile helper consults. */
    static ProfileCache& global();

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::shared_ptr<const profiler::ProfileResult> result;
    };

    /** One in-flight computation other threads can wait on. */
    struct InFlight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        std::shared_ptr<const profiler::ProfileResult> result;
        std::exception_ptr error;
    };

    void touch(std::list<Entry>::iterator it) const;

    mutable std::mutex mu;
    std::size_t cap;
    /** Front = most recently used. */
    mutable std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>>
        inflight;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
};

/**
 * Cache key for one profiling run: `Pipeline::fingerprint()` combined
 * with every profile input the result depends on (GpuSpec datasheet
 * fields, attention backend, the full `EfficiencyParams` calibration
 * surface, and the lowering/scheduling knobs — stream count, launch
 * queue depth, graph amortization, weight-stream splitting — so
 * differently scheduled runs of one pipeline never alias).
 */
std::uint64_t profileKey(const graph::Pipeline& pipeline,
                         const profiler::ProfileOptions& options);

/**
 * Profile through the global cache: O(1) for a repeated
 * (pipeline, options) setup. Requests with `keepOpRecords` set bypass
 * the cache entirely (per-op records are too large to memoize and the
 * exporters that need them never profile repeatedly).
 */
std::shared_ptr<const profiler::ProfileResult>
cachedProfile(const graph::Pipeline& pipeline,
              const profiler::ProfileOptions& options);

} // namespace mmgen::runtime

#endif // MMGEN_RUNTIME_PROFILE_CACHE_HH
