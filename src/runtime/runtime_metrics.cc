#include "runtime/runtime_metrics.hh"

#include <sstream>

#include "util/format.hh"
#include "util/table.hh"

namespace mmgen::runtime {

void
publishProfileCacheMetrics(telemetry::MetricsRegistry& registry,
                           const ProfileCacheStats& stats)
{
    registry.counter("runtime.profile_cache.hits").add(stats.hits);
    registry.counter("runtime.profile_cache.misses")
        .add(stats.misses);
    registry.counter("runtime.profile_cache.evictions")
        .add(stats.evictions);
    registry.counter("runtime.profile_cache.entries")
        .add(stats.entries);
    registry.gauge("runtime.profile_cache.hit_rate")
        .set(stats.hitRate());
}

void
publishPoolMetrics(telemetry::MetricsRegistry& registry,
                   const PoolStats& stats, int threads)
{
    registry.counter("runtime.pool.tasks_executed")
        .add(stats.tasksExecuted);
    registry.counter("runtime.pool.tasks_stolen")
        .add(stats.tasksStolen);
    registry.counter("runtime.pool.loops_run").add(stats.loopsRun);
    registry.counter("runtime.pool.indices_executed")
        .add(stats.indicesExecuted);
    registry.gauge("runtime.pool.threads")
        .set(static_cast<double>(threads));
}

void
publishRuntimeMetrics(telemetry::MetricsRegistry& registry)
{
    publishProfileCacheMetrics(registry,
                               ProfileCache::global().stats());
    ThreadPool& pool = ThreadPool::global();
    publishPoolMetrics(registry, pool.stats(), pool.threads());
}

std::string
runtimeStatsTable()
{
    const ProfileCacheStats cache = ProfileCache::global().stats();
    ThreadPool& pool = ThreadPool::global();
    const PoolStats ps = pool.stats();

    TextTable table({"Counter", "Value"});
    table.addRow({"pool threads", std::to_string(pool.threads())});
    table.addRow({"pool tasks executed",
                  std::to_string(ps.tasksExecuted)});
    table.addRow({"pool tasks stolen",
                  std::to_string(ps.tasksStolen)});
    table.addRow({"pool parallel loops",
                  std::to_string(ps.loopsRun)});
    table.addRow({"pool indices executed",
                  std::to_string(ps.indicesExecuted)});
    table.addRow({"profile-cache lookups",
                  std::to_string(cache.lookups())});
    table.addRow({"profile-cache hits", std::to_string(cache.hits)});
    table.addRow({"profile-cache misses",
                  std::to_string(cache.misses)});
    table.addRow({"profile-cache evictions",
                  std::to_string(cache.evictions)});
    table.addRow({"profile-cache entries",
                  std::to_string(cache.entries)});
    table.addRow({"profile-cache hit rate",
                  formatPercent(cache.hitRate())});

    std::ostringstream out;
    out << table.render();
    return out.str();
}

} // namespace mmgen::runtime
