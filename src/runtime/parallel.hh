/**
 * @file
 * Deterministic parallel loops over the global thread pool.
 *
 * `parallelMap(n, fn)` is the workhorse of the sweep drivers: it
 * returns `{fn(0), ..., fn(n-1)}` *in index order* regardless of
 * which thread computed what, so rendering the results serially
 * afterwards produces byte-identical output at any `--jobs` count.
 * `parallelMapSeeded` adds the RNG contract: each task receives its
 * own `Rng::stream(seed, i)` split stream, so stochastic tasks are
 * decorrelated and reproducible independent of scheduling.
 */

#ifndef MMGEN_RUNTIME_PARALLEL_HH
#define MMGEN_RUNTIME_PARALLEL_HH

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.hh"
#include "util/rng.hh"

namespace mmgen::runtime {

/** Run `fn(i)` for i in [0, n) on the global pool; blocks until done. */
template <typename Fn>
void
parallelFor(std::int64_t n, Fn&& fn)
{
    const std::function<void(std::int64_t)> wrapped =
        [&fn](std::int64_t i) { fn(i); };
    ThreadPool::global().forEach(n, wrapped);
}

/**
 * Map [0, n) through `fn` on the global pool. `results[i] == fn(i)`;
 * the result type must be default-constructible and movable.
 */
template <typename Fn>
auto
parallelMap(std::int64_t n, Fn&& fn)
{
    using T = std::decay_t<std::invoke_result_t<Fn&, std::int64_t>>;
    std::vector<T> results(
        static_cast<std::size_t>(n > 0 ? n : 0));
    parallelFor(n, [&](std::int64_t i) {
        results[static_cast<std::size_t>(i)] = fn(i);
    });
    return results;
}

/**
 * `parallelMap` for stochastic tasks: `fn(i, rng)` receives a
 * deterministic per-task generator split from `seed`, so the output
 * is bit-identical at every job count (including 1) and adding draws
 * in one task never perturbs another.
 */
template <typename Fn>
auto
parallelMapSeeded(std::uint64_t seed, std::int64_t n, Fn&& fn)
{
    return parallelMap(n, [&](std::int64_t i) {
        Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(i));
        return fn(i, rng);
    });
}

} // namespace mmgen::runtime

#endif // MMGEN_RUNTIME_PARALLEL_HH
