#include "profile_cache.hh"

#include "util/hash.hh"
#include "util/logging.hh"

namespace mmgen::runtime {

ProfileCache::ProfileCache(std::size_t capacity)
    : cap(capacity)
{
    MMGEN_CHECK(capacity >= 1, "profile cache capacity must be >= 1");
}

void
ProfileCache::touch(std::list<Entry>::iterator it) const
{
    lru.splice(lru.begin(), lru, it);
}

std::shared_ptr<const profiler::ProfileResult>
ProfileCache::getOrCompute(std::uint64_t key, const Compute& compute)
{
    std::shared_ptr<InFlight> flight;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(mu);
        if (const auto it = index.find(key); it != index.end()) {
            ++hits;
            touch(it->second);
            return it->second->result;
        }
        if (const auto fit = inflight.find(key);
            fit != inflight.end()) {
            // Someone is already computing this key; wait for them.
            // The waiter did no profiling work, so it counts as a hit
            // and totals stay schedule-independent.
            ++hits;
            flight = fit->second;
        } else {
            ++misses;
            flight = std::make_shared<InFlight>();
            inflight.emplace(key, flight);
            owner = true;
        }
    }

    if (!owner) {
        std::unique_lock<std::mutex> lock(flight->mu);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        return flight->result;
    }

    std::shared_ptr<const profiler::ProfileResult> result;
    std::exception_ptr error;
    try {
        result = std::make_shared<const profiler::ProfileResult>(
            compute());
    } catch (...) {
        error = std::current_exception();
    }

    {
        const std::lock_guard<std::mutex> lock(mu);
        if (!error) {
            lru.push_front(Entry{key, result});
            index[key] = lru.begin();
            while (lru.size() > cap) {
                index.erase(lru.back().key);
                lru.pop_back();
                ++evictions;
            }
        }
        inflight.erase(key);
    }
    {
        const std::lock_guard<std::mutex> lock(flight->mu);
        flight->done = true;
        flight->result = result;
        flight->error = error;
        flight->cv.notify_all();
    }
    if (error)
        std::rethrow_exception(error);
    return result;
}

std::shared_ptr<const profiler::ProfileResult>
ProfileCache::peek(std::uint64_t key) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = index.find(key);
    return it != index.end() ? it->second->result : nullptr;
}

ProfileCacheStats
ProfileCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mu);
    ProfileCacheStats s;
    s.hits = hits;
    s.misses = misses;
    s.evictions = evictions;
    s.entries = static_cast<std::int64_t>(lru.size());
    return s;
}

void
ProfileCache::clear()
{
    const std::lock_guard<std::mutex> lock(mu);
    lru.clear();
    index.clear();
}

std::size_t
ProfileCache::capacity() const
{
    return cap;
}

ProfileCache&
ProfileCache::global()
{
    static ProfileCache cache(256);
    return cache;
}

std::uint64_t
profileKey(const graph::Pipeline& pipeline,
           const profiler::ProfileOptions& options)
{
    HashBuilder h;
    h.mix(pipeline.fingerprint());
    const hw::GpuSpec& gpu = options.gpu;
    h.mix(std::string_view(gpu.name));
    h.mix(gpu.numSms);
    h.mix(gpu.peakF16Flops);
    h.mix(gpu.peakI8Flops);
    h.mix(gpu.peakF32Flops);
    h.mix(gpu.hbmBytes);
    h.mix(gpu.hbmBandwidth);
    h.mix(gpu.l2Bytes);
    h.mix(static_cast<std::int64_t>(gpu.l1BytesPerSm));
    h.mix(gpu.cacheLineBytes);
    h.mix(gpu.kernelLaunchOverhead);
    h.mix(static_cast<std::uint64_t>(options.backend));
    // Lowering and scheduling knobs: two runs of one pipeline under
    // different stream/queue/graph configurations are different
    // results and must never alias.
    const exec::LoweringOptions& lo = options.lowering;
    h.mix(static_cast<std::uint64_t>(lo.splitWeightStreams));
    h.mix(lo.minStreamedWeightBytes);
    const exec::ScheduleOptions& so = options.schedule;
    h.mix(static_cast<std::int64_t>(so.streams));
    h.mix(static_cast<std::int64_t>(so.launchQueueDepth));
    h.mix(static_cast<std::uint64_t>(so.graphLaunch));
    h.mix(so.graphReplayOverheadFraction);
    const kernels::EfficiencyParams& e = options.efficiency;
    h.mix(e.gemmPeakFraction);
    h.mix(e.convPeakFraction);
    h.mix(e.flashPeakFraction);
    h.mix(e.streamMemFraction);
    h.mix(e.smallMatrixOverheadBytes);
    h.mix(e.attentionMatrixOverheadBytes);
    h.mix(e.gemmKHalfDepth);
    h.mix(e.causalFlashFlopFraction);
    h.mix(e.baselineSimilarityUpcast);
    h.mix(e.efficiencyFloor);
    h.mix(e.ctasPerSm);
    return h.digest();
}

std::shared_ptr<const profiler::ProfileResult>
cachedProfile(const graph::Pipeline& pipeline,
              const profiler::ProfileOptions& options)
{
    if (options.keepOpRecords) {
        return std::make_shared<const profiler::ProfileResult>(
            profiler::Profiler(options).profile(pipeline));
    }
    return ProfileCache::global().getOrCompute(
        profileKey(pipeline, options), [&] {
            return profiler::Profiler(options).profile(pipeline);
        });
}

} // namespace mmgen::runtime
