#include "thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/logging.hh"

namespace mmgen::runtime {

namespace {

/** Set while the current thread is inside a pool worker loop. */
thread_local bool inside_worker = false;

/**
 * One index-space loop shared between the caller and the workers.
 * Indices self-schedule from `next`; `done` counts completions so the
 * caller can wait for the stragglers it did not claim itself.
 */
struct IndexJob
{
    std::int64_t n = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};

    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;
    std::int64_t errorIndex = 0;

    /** Claim and run indices until the cursor runs dry. */
    void
    run()
    {
        for (;;) {
            const std::int64_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                (*fn)(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mu);
                if (!error || i < errorIndex) {
                    error = std::current_exception();
                    errorIndex = i;
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                n) {
                const std::lock_guard<std::mutex> lock(mu);
                cv.notify_all();
            }
        }
    }
};

} // namespace

ThreadPool::ThreadPool(int threads)
{
    MMGEN_CHECK(threads >= 1, "thread pool needs >= 1 thread, got "
                                  << threads);
    numThreads = threads;
    // One lane per extra execution context; a 1-thread pool is purely
    // inline and spawns nothing.
    const int spawned = threads - 1;
    lanes.reserve(static_cast<std::size_t>(spawned));
    for (int i = 0; i < spawned; ++i)
        lanes.push_back(std::make_unique<Lane>());
    workers.reserve(static_cast<std::size_t>(spawned));
    for (int i = 0; i < spawned; ++i)
        workers.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(sleepMu);
        stopping = true;
    }
    sleepCv.notify_all();
    for (std::thread& w : workers)
        w.join();
}

void
ThreadPool::submit(Task task)
{
    MMGEN_CHECK(static_cast<bool>(task), "cannot submit empty task");
    if (workers.empty()) {
        // Inline pool: run immediately on the caller.
        task();
        statTasksExecuted.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(sleepMu);
        Lane& lane = *lanes[nextLane];
        nextLane = (nextLane + 1) % lanes.size();
        const std::lock_guard<std::mutex> laneLock(lane.mu);
        lane.tasks.push_back(std::move(task));
        ++pending;
    }
    sleepCv.notify_one();
}

bool
ThreadPool::tryPop(std::size_t lane_idx, Task& out)
{
    Lane& lane = *lanes[lane_idx];
    const std::lock_guard<std::mutex> lock(lane.mu);
    if (lane.tasks.empty())
        return false;
    out = std::move(lane.tasks.front());
    lane.tasks.pop_front();
    return true;
}

bool
ThreadPool::trySteal(std::size_t self, Task& out)
{
    for (std::size_t k = 1; k < lanes.size(); ++k) {
        const std::size_t victim = (self + k) % lanes.size();
        Lane& lane = *lanes[victim];
        const std::lock_guard<std::mutex> lock(lane.mu);
        if (lane.tasks.empty())
            continue;
        out = std::move(lane.tasks.back());
        lane.tasks.pop_back();
        statTasksStolen.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    inside_worker = true;
    for (;;) {
        Task task;
        if (tryPop(self, task) || trySteal(self, task)) {
            {
                const std::lock_guard<std::mutex> lock(sleepMu);
                --pending;
            }
            task();
            statTasksExecuted.fetch_add(1,
                                        std::memory_order_relaxed);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMu);
        if (stopping && pending == 0)
            return;
        sleepCv.wait(lock,
                     [this] { return stopping || pending > 0; });
        if (stopping && pending == 0)
            return;
    }
}

bool
ThreadPool::onWorkerThread()
{
    return inside_worker;
}

PoolStats
ThreadPool::stats() const
{
    PoolStats s;
    s.tasksExecuted =
        statTasksExecuted.load(std::memory_order_relaxed);
    s.tasksStolen = statTasksStolen.load(std::memory_order_relaxed);
    s.loopsRun = statLoopsRun.load(std::memory_order_relaxed);
    s.indicesExecuted =
        statIndicesExecuted.load(std::memory_order_relaxed);
    return s;
}

void
ThreadPool::forEach(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn)
{
    if (n <= 0)
        return;
    statLoopsRun.fetch_add(1, std::memory_order_relaxed);
    statIndicesExecuted.fetch_add(n, std::memory_order_relaxed);
    // Serial pool, single item, or a nested call from inside a worker
    // (which must not block on its own pool): run inline. Results are
    // identical by construction — every path executes fn(i) for each
    // index exactly once.
    if (numThreads <= 1 || n == 1 || onWorkerThread()) {
        for (std::int64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    const auto job = std::make_shared<IndexJob>();
    job->n = n;
    job->fn = &fn;
    const std::int64_t helpers = std::min<std::int64_t>(
        static_cast<std::int64_t>(workers.size()), n - 1);
    for (std::int64_t h = 0; h < helpers; ++h)
        submit([job] { job->run(); });
    job->run(); // the caller claims indices too

    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->n;
    });
    if (job->error)
        std::rethrow_exception(job->error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;   // guarded by g_pool_mu
int g_requested_jobs = 0;             // guarded by g_pool_mu; 0 = auto

} // namespace

int
ThreadPool::resolveJobs(int requested)
{
    int jobs = requested;
    if (jobs <= 0) {
        if (const char* env = std::getenv("MMGEN_JOBS")) {
            try {
                jobs = std::stoi(env);
            } catch (const std::logic_error&) {
                jobs = 0;
            }
            MMGEN_CHECK(jobs >= 1,
                        "MMGEN_JOBS must be a positive integer, got '"
                            << env << "'");
        }
    }
    if (jobs <= 0)
        jobs = static_cast<int>(std::thread::hardware_concurrency());
    return std::clamp(jobs, 1, 256);
}

ThreadPool&
ThreadPool::global()
{
    const std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(
            resolveJobs(g_requested_jobs));
    return *g_pool;
}

void
ThreadPool::setGlobalJobs(int jobs)
{
    MMGEN_CHECK(jobs >= 0, "--jobs must be >= 0 (0 = auto), got "
                               << jobs);
    const std::lock_guard<std::mutex> lock(g_pool_mu);
    g_requested_jobs = jobs;
    if (g_pool && g_pool->threads() != resolveJobs(jobs))
        g_pool.reset(); // rebuilt lazily at the next global() call
}

} // namespace mmgen::runtime
