/**
 * @file
 * Runtime-layer observability: publish the global ProfileCache and
 * ThreadPool counters into a telemetry::MetricsRegistry, and render
 * them as the `mmgen stats` summary table.
 *
 * Cache counters (hits / misses / evictions) are schedule-independent
 * thanks to the single-flight cache, so they land in deterministic
 * exports safely. Steal counts depend on thread timing and are
 * surfaced for tuning only — keep them out of any artifact that must
 * be byte-identical across `--jobs` values.
 */

#ifndef MMGEN_RUNTIME_RUNTIME_METRICS_HH
#define MMGEN_RUNTIME_RUNTIME_METRICS_HH

#include <string>

#include "runtime/profile_cache.hh"
#include "runtime/thread_pool.hh"
#include "telemetry/metrics.hh"

namespace mmgen::runtime {

/**
 * Record cache-effectiveness counters into `registry`:
 * `runtime.profile_cache.{hits,misses,evictions,entries}` counters
 * plus the `runtime.profile_cache.hit_rate` gauge.
 */
void publishProfileCacheMetrics(telemetry::MetricsRegistry& registry,
                                const ProfileCacheStats& stats);

/**
 * Record pool scheduling counters into `registry`:
 * `runtime.pool.{tasks_executed,tasks_stolen,loops_run,
 * indices_executed}` counters plus the `runtime.pool.threads` gauge.
 */
void publishPoolMetrics(telemetry::MetricsRegistry& registry,
                        const PoolStats& stats, int threads);

/** Both of the above, reading the process-global cache and pool. */
void publishRuntimeMetrics(telemetry::MetricsRegistry& registry);

/**
 * Human-readable run summary of the global cache + pool counters —
 * the body of `mmgen stats`.
 */
std::string runtimeStatsTable();

} // namespace mmgen::runtime

#endif // MMGEN_RUNTIME_RUNTIME_METRICS_HH
