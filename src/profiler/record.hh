/**
 * @file
 * Per-operator profile records and aggregate reports.
 *
 * The simulated counterpart of the paper's profiling framework
 * (Section III, "Tools"): operator records carry the module scope the
 * forward hooks would have annotated, and reports aggregate kernel
 * time into the operator categories of Fig. 6.
 */

#ifndef MMGEN_PROFILER_RECORD_HH
#define MMGEN_PROFILER_RECORD_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/op.hh"
#include "util/stats.hh"

namespace mmgen::profiler {

/** One profiled operator instance (aggregated over its repeats). */
struct OpRecord
{
    graph::OpKind kind = graph::OpKind::Elementwise;
    graph::OpCategory category = graph::OpCategory::Elementwise;
    std::string scope;
    std::string stage;
    /** Total simulated time including repeats, seconds. */
    double seconds = 0.0;
    double flops = 0.0;
    double hbmBytes = 0.0;
    std::int64_t launches = 0;
    std::int64_t repeat = 1;
    /** Query sequence length (attention ops only, else -1). */
    std::int64_t seqLen = -1;
    /** Attended (key/value) sequence length (attention ops only). */
    std::int64_t seqKv = -1;
    /** Attention flavour (attention ops only). */
    graph::AttentionKind attnKind = graph::AttentionKind::SelfSpatial;
};

/** Execution-time totals per operator category (paper Fig. 6). */
class BreakdownReport
{
  public:
    /** Accumulate one record. */
    void add(const OpRecord& record);

    /** Merge another report into this one. */
    void merge(const BreakdownReport& other);

    double totalSeconds() const { return total; }

    /** Seconds attributed to a category. */
    double categorySeconds(graph::OpCategory c) const;

    /** Fraction of total time in a category (0 when total is 0). */
    double categoryFraction(graph::OpCategory c) const;

  private:
    std::array<double, 7> perCategory{};
    double total = 0.0;
};

/** Per-attention-kind time/FLOP accumulation (paper Fig. 11). */
struct AttentionKindStats
{
    struct Entry
    {
        double seconds = 0.0;
        double flops = 0.0;
        std::int64_t calls = 0;
    };

    std::map<graph::AttentionKind, Entry> byKind;

    void add(graph::AttentionKind kind, double seconds, double flops,
             std::int64_t calls);

    Entry entryFor(graph::AttentionKind kind) const;
};

/**
 * Sequence length of every attention call in execution order
 * (paper Fig. 7) plus the weighted frequency distribution over the
 * whole inference (paper Fig. 8).
 */
class SequenceLengthTrace
{
  public:
    /**
     * Record one attention call.
     *
     * @param seq_len  query sequence length
     * @param weight   how many times the call executes (iteration
     *                 folding), applied to the histogram only
     */
    void record(std::int64_t seq_len, std::uint64_t weight = 1);

    /** Per-call series (one entry per distinct traced call). */
    const std::vector<std::int64_t>& series() const { return series_; }

    /** Weighted distribution over the course of inference. */
    const ValueHistogram& histogram() const { return hist; }

    /** Max / min sequence length of the series (0 when empty). */
    std::int64_t maxSeqLen() const;
    std::int64_t minSeqLen() const;

  private:
    std::vector<std::int64_t> series_;
    ValueHistogram hist;
};

} // namespace mmgen::profiler

#endif // MMGEN_PROFILER_RECORD_HH
