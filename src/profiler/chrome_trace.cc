#include "chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/json.hh"
#include "util/logging.hh"

namespace mmgen::profiler {

std::string
jsonEscape(const std::string& s)
{
    // Kept as a named entry point for existing callers; the escaping
    // itself lives in the shared json utility.
    return json::escape(s);
}

void
writeChromeTrace(std::ostream& out, const exec::ExecutionPlan& plan,
                 const exec::Timeline& timeline,
                 const ChromeTraceOptions& options)
{
    MMGEN_CHECK(timeline.events.size() == plan.nodes.size(),
                "timeline has " << timeline.events.size()
                                << " events for a plan of "
                                << plan.nodes.size() << " nodes");
    MMGEN_CHECK(options.maxRepeatInstances >= 1,
                "need at least one repeat instance");

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << json;
    };

    // Process metadata: one lane per stage that scheduled any work,
    // pid = stage index + 1 so lanes sort in pipeline order.
    std::set<std::size_t> used_stages;
    for (const exec::PlanNode& node : plan.nodes)
        used_stages.insert(plan.ops[node.opIndex].stageIndex);
    for (const std::size_t si : used_stages) {
        const std::string& stage = plan.stageNames[si];
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(si + 1) +
             ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
             jsonEscape(stage.empty() ? plan.model : stage) +
             "\"}}");
    }

    // Thread metadata: one lane per (stage, stream) in use,
    // tid = stream + 1.
    std::set<std::pair<std::size_t, int>> used_lanes;
    for (const exec::TimelineEvent& ev : timeline.events)
        used_lanes.emplace(plan.ops[ev.op].stageIndex, ev.stream);
    for (const auto& [si, stream] : used_lanes) {
        const exec::Lane lane = stream == 0 ? exec::Lane::Compute
                                            : exec::Lane::Copy;
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(si + 1) +
             ",\"tid\":" + std::to_string(stream + 1) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"stream " +
             std::to_string(stream) + " (" + exec::laneName(lane) +
             ")\"}}");
    }

    // Complete events at the scheduler's timestamps. A folded repeat
    // draws min(repeat, maxRepeatInstances) slices of the real
    // per-iteration duration; elided iterations are flagged in the
    // slice name instead of silently shortening the lane.
    for (std::size_t i = 0; i < timeline.events.size(); ++i) {
        const exec::TimelineEvent& ev = timeline.events[i];
        const exec::PlanNode& node = plan.nodes[i];
        const exec::PlanOp& op = plan.ops[ev.op];
        const int pid = static_cast<int>(op.stageIndex) + 1;
        const int tid = ev.stream + 1;
        const std::int64_t instances = std::min<std::int64_t>(
            node.repeat, options.maxRepeatInstances);
        const double per_instance_us =
            ev.durationSeconds() * 1e6 /
            static_cast<double>(node.repeat);

        std::string name = node.label;
        if (instances < node.repeat) {
            name += " [x" + std::to_string(node.repeat) +
                    ", showing " + std::to_string(instances) + "]";
        }

        double ts = ev.startSeconds * 1e6;
        for (std::int64_t k = 0; k < instances; ++k) {
            char buf[512];
            std::snprintf(
                buf, sizeof(buf),
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\","
                "\"args\":{\"scope\":\"%s\",\"lane\":\"%s\","
                "\"flops\":%.3e,\"hbm_bytes\":%.3e,"
                "\"repeat\":%lld}}",
                pid, tid, ts, per_instance_us,
                jsonEscape(name).c_str(),
                jsonEscape(kernels::kernelClassName(node.klass))
                    .c_str(),
                jsonEscape(op.scope).c_str(),
                exec::laneName(node.lane).c_str(), node.flops,
                node.hbmBytes,
                static_cast<long long>(node.repeat));
            emit(buf);
            ts += per_instance_us;
        }
    }
    out << "\n]}\n";
}

void
writeChromeTrace(std::ostream& out, const ProfileResult& result,
                 const ChromeTraceOptions& options)
{
    MMGEN_CHECK(result.plan != nullptr,
                "profile kept no execution plan; re-run with "
                "ProfileOptions::keepOpRecords = true");
    writeChromeTrace(out, *result.plan, result.timeline, options);
}

} // namespace mmgen::profiler
