#include "chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/logging.hh"

namespace mmgen::profiler {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeChromeTrace(std::ostream& out, const ProfileResult& result,
                 const ChromeTraceOptions& options)
{
    MMGEN_CHECK(!result.records.empty(),
                "profile has no per-op records; re-run with "
                "ProfileOptions::keepOpRecords = true");
    MMGEN_CHECK(options.maxRepeatInstances >= 1,
                "need at least one repeat instance");

    // Assign a process id per stage, in first-appearance order.
    std::map<std::string, int> stage_pid;
    for (const auto& rec : result.records) {
        stage_pid.emplace(rec.stage,
                          static_cast<int>(stage_pid.size()) + 1);
    }

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << json;
    };

    // Process metadata: stage names.
    for (const auto& [stage, pid] : stage_pid) {
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
             jsonEscape(stage.empty() ? result.model : stage) +
             "\"}}");
    }

    // Complete events, laid out serially per stage lane.
    std::map<int, double> stage_clock_us;
    for (const auto& rec : result.records) {
        const int pid = stage_pid.at(rec.stage);
        const std::int64_t instances =
            std::min<std::int64_t>(rec.repeat,
                                   options.maxRepeatInstances);
        const double per_instance_us =
            rec.seconds * 1e6 / static_cast<double>(rec.repeat);
        const int tid = static_cast<int>(rec.category) + 1;
        for (std::int64_t i = 0; i < instances; ++i) {
            double& clock = stage_clock_us[pid];
            char buf[512];
            std::snprintf(
                buf, sizeof(buf),
                "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"%s\","
                "\"args\":{\"scope\":\"%s\",\"flops\":%.3e,"
                "\"hbm_bytes\":%.3e,\"repeat\":%lld}}",
                pid, tid, clock, per_instance_us,
                jsonEscape(graph::opKindName(rec.kind)).c_str(),
                jsonEscape(graph::opCategoryName(rec.category)).c_str(),
                jsonEscape(rec.scope).c_str(),
                rec.flops / static_cast<double>(rec.repeat),
                rec.hbmBytes / static_cast<double>(rec.repeat),
                static_cast<long long>(rec.repeat));
            emit(buf);
            clock += per_instance_us;
        }
    }
    out << "\n]}\n";
}

} // namespace mmgen::profiler
