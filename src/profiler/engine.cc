#include "engine.hh"

#include <algorithm>

#include "util/logging.hh"
#include "verify/memory.hh"
#include "verify/timeline.hh"
#include "verify/verify.hh"

namespace mmgen::profiler {

double
ProfileResult::attentionSeconds() const
{
    return breakdown.categorySeconds(graph::OpCategory::Attention);
}

double
ProfileResult::modelArithmeticIntensity() const
{
    MMGEN_CHECK(weightBytesRead > 0.0,
                "pipeline streamed no weight bytes");
    return totalFlops / weightBytesRead;
}

Profiler::Profiler(ProfileOptions options)
    : opts(std::move(options))
{}

exec::ExecutionPlan
Profiler::lower(const graph::Pipeline& pipeline) const
{
    const kernels::CostModel model(opts.gpu, opts.backend,
                                   opts.efficiency);
    return exec::lowerPipeline(pipeline, model, opts.lowering);
}

ProfileResult
Profiler::profile(const graph::Pipeline& pipeline) const
{
    if (verify::runtimeChecksEnabled())
        verify::verifyPipelineOrThrow(pipeline);

    auto plan = std::make_shared<const exec::ExecutionPlan>(
        lower(pipeline));
    const exec::TimelineScheduler scheduler(opts.gpu, opts.schedule);
    exec::Timeline timeline = scheduler.schedule(*plan);

    ProfileResult result;
    result.model = pipeline.name;
    result.backend = opts.backend;
    result.params = plan->totalParams;
    result.totalSeconds = timeline.makespan;
    result.launchOverheadSeconds = timeline.launchOverheadSeconds;

    const std::size_t num_stages = plan->stageNames.size();
    std::vector<double> stage_seconds(num_stages, 0.0);
    std::vector<BreakdownReport> stage_breakdowns(num_stages);

    const auto record_cap =
        static_cast<std::size_t>(std::max<std::int64_t>(
            opts.maxOpRecords, 0));
    if (opts.keepOpRecords)
        result.records.reserve(
            std::min(plan->ops.size(), record_cap));

    for (std::size_t oi = 0; oi < plan->ops.size(); ++oi) {
        const exec::PlanOp& op = plan->ops[oi];
        const double r = static_cast<double>(op.repeat);

        double flops = 0.0;
        double bytes = 0.0;
        std::int64_t launches = 0;
        for (std::size_t n = op.firstNode;
             n < op.firstNode + op.nodeCount; ++n) {
            const exec::PlanNode& node = plan->nodes[n];
            flops += node.flops;
            bytes += node.hbmBytes;
            launches += node.launches;
            result.kernelClassSeconds[node.klass] +=
                timeline.nodeSeconds[n];
        }

        OpRecord rec;
        rec.kind = op.kind;
        rec.category = op.category;
        rec.scope = op.scope;
        rec.stage = plan->stageNames[op.stageIndex];
        rec.seconds = timeline.opSeconds[oi];
        rec.flops = flops * r;
        rec.hbmBytes = bytes * r;
        rec.launches = launches * op.repeat;
        rec.repeat = op.repeat;

        if (op.kind == graph::OpKind::Attention) {
            rec.seqLen = op.seqQ;
            rec.seqKv = op.seqKv;
            rec.attnKind = op.attnKind;
            result.attention.add(op.attnKind, rec.seconds, rec.flops,
                                 op.repeat);
            // The Fig. 7/8 sequence-length series tracks the attended
            // length of self-attention calls; cross-attention always
            // attends the fixed encoded prompt.
            if (op.attnKind != graph::AttentionKind::CrossText) {
                result.seqLens.record(
                    op.seqKv, static_cast<std::uint64_t>(op.repeat));
            }
        }

        result.breakdown.add(rec);
        stage_breakdowns[op.stageIndex].add(rec);
        stage_seconds[op.stageIndex] += rec.seconds;
        result.totalFlops += rec.flops;
        result.totalHbmBytes += rec.hbmBytes;
        result.totalLaunches += rec.launches;
        result.weightBytesRead +=
            static_cast<double>(op.paramCount) *
            static_cast<double>(dtypeBytes(op.dtype)) * r;

        if (opts.keepOpRecords) {
            if (result.records.size() < record_cap)
                result.records.push_back(std::move(rec));
            else
                result.recordsTruncated = true;
        }
    }

    for (std::size_t si = 0; si < num_stages; ++si) {
        result.stageSeconds.emplace_back(plan->stageNames[si],
                                         stage_seconds[si]);
        result.stageBreakdowns.emplace_back(
            plan->stageNames[si], std::move(stage_breakdowns[si]));
    }

    if (verify::runtimeChecksEnabled()) {
        verify::DiagnosticReport physics;
        const verify::PhysicsContext ctx{result.model, ""};
        verify::checkTimeline(*plan, timeline, ctx, physics);
        // Memory pass: dataflow integrity and byte conservation are
        // hard errors; capacity is a warning here because the profiler
        // legitimately simulates models on GPUs they do not fit (the
        // latency numbers stay valid — only serving admission cares).
        verify::checkPlanDataflow(*plan, ctx, physics);
        if (!physics.fired(verify::rules::DanglingDefUse)) {
            const exec::MemoryProfile mem =
                exec::analyzeMemory(*plan, timeline);
            verify::checkMemoryProfile(*plan, mem, opts.gpu, ctx,
                                       physics,
                                       verify::Severity::Warn);
        }
        // The aggregate roofline check only speaks about serialized
        // time; an overlapped schedule legitimately moves bytes on two
        // streams at once, so it runs for seed-equivalent runs only.
        if (opts.schedule.isDefault() &&
            !opts.lowering.splitWeightStreams) {
            verify::checkObservation(
                verify::SimObservation{result.model + " total",
                                       result.totalFlops,
                                       result.totalHbmBytes,
                                       result.totalSeconds,
                                       pipeline.dtype},
                opts.gpu, physics);
        }
        verify::throwOnErrors(physics);
    }

    if (opts.keepOpRecords) {
        result.plan = std::move(plan);
        result.timeline = std::move(timeline);
    }
    return result;
}

} // namespace mmgen::profiler
