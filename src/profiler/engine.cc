#include "engine.hh"

#include <algorithm>

#include "kernels/attention.hh"
#include "util/logging.hh"
#include "verify/verify.hh"

namespace mmgen::profiler {

double
ProfileResult::attentionSeconds() const
{
    return breakdown.categorySeconds(graph::OpCategory::Attention);
}

double
ProfileResult::modelArithmeticIntensity() const
{
    MMGEN_CHECK(weightBytesRead > 0.0,
                "pipeline streamed no weight bytes");
    return totalFlops / weightBytesRead;
}

Profiler::Profiler(ProfileOptions options)
    : opts(std::move(options))
{}

void
Profiler::accumulateTrace(const graph::Trace& trace,
                          const std::string& stage_name,
                          std::int64_t repeat,
                          const kernels::CostModel& model,
                          ProfileResult& result, double& stage_s,
                          BreakdownReport& stage_breakdown) const
{
    const auto record_cap =
        static_cast<std::size_t>(std::max<std::int64_t>(
            opts.maxOpRecords, 0));
    if (opts.keepOpRecords) {
        // Reserve capped and amortized (never grow by less than 2x),
        // so a thousand-iteration decode stage does not reallocate
        // per traced step and a sweep cannot blow memory past the cap.
        const std::size_t want = std::min(
            result.records.size() + trace.size(), record_cap);
        if (want > result.records.capacity())
            result.records.reserve(std::min(
                std::max(want, result.records.capacity() * 2),
                record_cap));
    }
    for (const auto& op : trace.ops()) {
        const kernels::OpCost cost = model.cost(op);
        const kernels::OpTime time = model.time(cost, op.dtype, repeat);
        for (const auto& [klass, seconds] :
             model.timeByKernelClass(cost, op.dtype, repeat)) {
            result.kernelClassSeconds[klass] += seconds;
        }

        OpRecord rec;
        rec.kind = op.kind;
        rec.category = graph::opCategory(op);
        rec.scope = op.scope;
        rec.stage = stage_name;
        rec.seconds = time.seconds;
        rec.flops = cost.totalFlops() * static_cast<double>(repeat);
        rec.hbmBytes = cost.totalBytes() * static_cast<double>(repeat);
        rec.launches = cost.totalLaunches() * repeat;
        rec.repeat = repeat;

        if (op.kind == graph::OpKind::Attention) {
            const auto& a = op.as<graph::AttentionAttrs>();
            rec.seqLen = a.seqQ;
            rec.seqKv = a.seqKv;
            rec.attnKind = a.kind;
            result.attention.add(a.kind, rec.seconds, rec.flops, repeat);
            // The Fig. 7/8 sequence-length series tracks the attended
            // length of self-attention calls; cross-attention always
            // attends the fixed encoded prompt.
            if (a.kind != graph::AttentionKind::CrossText) {
                result.seqLens.record(
                    a.seqKv, static_cast<std::uint64_t>(repeat));
            }
        }

        result.breakdown.add(rec);
        stage_breakdown.add(rec);
        result.totalSeconds += rec.seconds;
        result.totalFlops += rec.flops;
        result.totalHbmBytes += rec.hbmBytes;
        result.totalLaunches += rec.launches;
        result.weightBytesRead +=
            static_cast<double>(graph::opParamCount(op)) *
            static_cast<double>(dtypeBytes(op.dtype)) *
            static_cast<double>(repeat);
        stage_s += rec.seconds;

        if (opts.keepOpRecords) {
            if (result.records.size() < record_cap)
                result.records.push_back(std::move(rec));
            else
                result.recordsTruncated = true;
        }
    }
}

ProfileResult
Profiler::profile(const graph::Pipeline& pipeline) const
{
    if (verify::runtimeChecksEnabled())
        verify::verifyPipelineOrThrow(pipeline);
    const kernels::CostModel model(opts.gpu, opts.backend,
                                   opts.efficiency);
    ProfileResult result;
    result.model = pipeline.name;
    result.backend = opts.backend;
    result.params = pipeline.totalParams();

    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        double stage_s = 0.0;
        BreakdownReport stage_breakdown;
        if (stage.perIterationShapes) {
            for (std::int64_t it = 0; it < stage.iterations; ++it) {
                const graph::Trace trace = pipeline.traceStage(si, it);
                accumulateTrace(trace, stage.name, 1, model, result,
                                stage_s, stage_breakdown);
            }
        } else {
            const graph::Trace trace = pipeline.traceStage(si, 0);
            accumulateTrace(trace, stage.name, stage.iterations, model,
                            result, stage_s, stage_breakdown);
        }
        result.stageSeconds.emplace_back(stage.name, stage_s);
        result.stageBreakdowns.emplace_back(stage.name,
                                            std::move(stage_breakdown));
    }
    if (verify::runtimeChecksEnabled()) {
        verify::DiagnosticReport physics;
        verify::checkObservation(
            verify::SimObservation{result.model + " total",
                                   result.totalFlops,
                                   result.totalHbmBytes,
                                   result.totalSeconds, pipeline.dtype},
            opts.gpu, physics);
        verify::throwOnErrors(physics);
    }
    return result;
}

} // namespace mmgen::profiler
