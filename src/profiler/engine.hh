/**
 * @file
 * Execution engine: profiles a Pipeline on the simulated GPU.
 *
 * Profiling is an explicit two-layer composition:
 *
 *   Pipeline --lower--> exec::ExecutionPlan --schedule--> exec::Timeline
 *
 * Lowering (exec/plan.hh) traces the pipeline stage by stage — stages
 * whose iterations all share one shape (diffusion denoising, Muse
 * refinement) are traced once and folded into repeat counts, the
 * "fundamental period" the paper plots in Fig. 7, while autoregressive
 * stages are traced iteration by iteration so KV-cache growth is
 * captured exactly — and expands every op through the CostModel into
 * kernel-level plan nodes. The TimelineScheduler (exec/schedule.hh)
 * then plays the plan onto the GPU, producing real per-kernel
 * [start, end) intervals. The profiler only aggregates the result.
 *
 * With default options the schedule is one serial stream and
 * `totalSeconds` is bit-identical to summing every op's roofline time
 * in program order; non-default options model multi-stream overlap,
 * launch queueing and CUDA-graph amortization.
 */

#ifndef MMGEN_PROFILER_ENGINE_HH
#define MMGEN_PROFILER_ENGINE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"
#include "kernels/cost_model.hh"
#include "profiler/record.hh"

namespace mmgen::profiler {

/** Knobs for one profiling run. */
struct ProfileOptions
{
    hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    graph::AttentionBackend backend = graph::AttentionBackend::Flash;
    kernels::EfficiencyParams efficiency =
        kernels::EfficiencyParams::defaults();

    /** How pipelines lower to kernel plans (weight-stream splitting). */
    exec::LoweringOptions lowering;

    /** How plans schedule onto the GPU (streams, queue, graphs). */
    exec::ScheduleOptions schedule;

    /**
     * Keep one OpRecord per traced op, plus the lowered plan and
     * scheduled timeline. Costs memory on models with hundreds of
     * thousands of decode-step ops; aggregate reports are always
     * produced regardless.
     */
    bool keepOpRecords = false;

    /**
     * Upper bound on retained OpRecords. Sweeps that profile
     * autoregressive models with records enabled used to grow
     * `ProfileResult::records` without bound; past this cap further
     * records are dropped and `ProfileResult::recordsTruncated` is
     * set. Aggregate metrics are never affected.
     */
    std::int64_t maxOpRecords = 1'000'000;
};

/** Everything one profiling run produces. */
struct ProfileResult
{
    std::string model;
    graph::AttentionBackend backend = graph::AttentionBackend::Flash;

    /** End-to-end simulated inference latency (the makespan), seconds. */
    double totalSeconds = 0.0;
    double totalFlops = 0.0;
    double totalHbmBytes = 0.0;
    std::int64_t totalLaunches = 0;
    /**
     * Host launch overhead the schedule paid, seconds (graph-launch
     * amortization already applied).
     */
    double launchOverheadSeconds = 0.0;
    /** Weight bytes streamed from HBM across all passes. */
    double weightBytesRead = 0.0;

    /** Trainable parameters of the whole pipeline. */
    std::int64_t params = 0;

    BreakdownReport breakdown;
    AttentionKindStats attention;
    SequenceLengthTrace seqLens;

    /** Seconds per device-kernel class (Nsight-style grouping). */
    std::map<kernels::KernelClass, double> kernelClassSeconds;

    /** Simulated busy seconds per stage, in stage order. */
    std::vector<std::pair<std::string, double>> stageSeconds;

    /** Per-stage operator-category breakdowns, in stage order. */
    std::vector<std::pair<std::string, BreakdownReport>>
        stageBreakdowns;

    /** Per-op records (only when ProfileOptions::keepOpRecords). */
    std::vector<OpRecord> records;

    /** True when `records` hit ProfileOptions::maxOpRecords. */
    bool recordsTruncated = false;

    /**
     * The lowered plan and its scheduled timeline (only when
     * ProfileOptions::keepOpRecords — they are per-kernel-sized).
     * Chrome-trace export reads these.
     */
    std::shared_ptr<const exec::ExecutionPlan> plan;
    exec::Timeline timeline;

    /** Seconds spent in the Attention category. */
    double attentionSeconds() const;

    /**
     * Arithmetic intensity in the paper's Fig. 5 sense: FLOPs over the
     * bytes of model capacity they reuse — i.e. total inference FLOPs
     * per weight byte streamed from HBM. Autoregressive decode re-reads
     * every weight per token (intensity ~2), while a diffusion UNet
     * performs enormous spatial work per weight pass, which is the
     * paper's compute-bound versus memory-bound split.
     */
    double modelArithmeticIntensity() const;
};

/**
 * Profiles pipelines by lowering them to execution plans and playing
 * the plans through the timeline scheduler.
 */
class Profiler
{
  public:
    explicit Profiler(ProfileOptions options = ProfileOptions());

    /** Lower a pipeline to its kernel plan (no scheduling). */
    exec::ExecutionPlan lower(const graph::Pipeline& pipeline) const;

    /** Run one full inference profile of a pipeline. */
    ProfileResult profile(const graph::Pipeline& pipeline) const;

    const ProfileOptions& options() const { return opts; }

  private:
    ProfileOptions opts;
};

} // namespace mmgen::profiler

#endif // MMGEN_PROFILER_ENGINE_HH
