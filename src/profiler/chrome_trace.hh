/**
 * @file
 * Chrome-trace (chrome://tracing, Perfetto) export of a profiled run.
 *
 * Serializes the per-op records of a ProfileResult as a Trace Event
 * Format JSON document: one complete ("X") event per operator, with
 * stages as process-level lanes and operator categories as thread
 * lanes, so a simulated inference timeline can be inspected with the
 * same tooling PyTorch Profiler traces are viewed in (paper Section
 * III uses exactly that workflow on real hardware).
 */

#ifndef MMGEN_PROFILER_CHROME_TRACE_HH
#define MMGEN_PROFILER_CHROME_TRACE_HH

#include <ostream>
#include <string>

#include "profiler/engine.hh"

namespace mmgen::profiler {

/** Options for trace serialization. */
struct ChromeTraceOptions
{
    /**
     * Expand op repeats into this many timeline instances at most
     * (a 50-step denoising loop folded into one record is drawn as
     * min(repeat, maxRepeatInstances) back-to-back slices).
     */
    std::int64_t maxRepeatInstances = 3;
};

/**
 * Write a ProfileResult as Trace Event Format JSON.
 *
 * The result must have been produced with
 * ProfileOptions::keepOpRecords = true; throws FatalError otherwise.
 */
void writeChromeTrace(std::ostream& out, const ProfileResult& result,
                      const ChromeTraceOptions& options =
                          ChromeTraceOptions());

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string& s);

} // namespace mmgen::profiler

#endif // MMGEN_PROFILER_CHROME_TRACE_HH
