/**
 * @file
 * Chrome-trace (chrome://tracing, Perfetto) export of a profiled run.
 *
 * Serializes a scheduled timeline as a Trace Event Format JSON
 * document: one complete ("X") event per kernel occurrence, with real
 * scheduler timestamps, pipeline stages as process-level lanes and
 * hardware streams as thread lanes, so a simulated inference timeline
 * can be inspected with the same tooling PyTorch Profiler traces are
 * viewed in (paper Section III uses exactly that workflow on real
 * hardware). Compute/copy overlap shows up as concurrent slices on
 * the two stream lanes.
 */

#ifndef MMGEN_PROFILER_CHROME_TRACE_HH
#define MMGEN_PROFILER_CHROME_TRACE_HH

#include <ostream>
#include <string>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "profiler/engine.hh"

namespace mmgen::profiler {

/** Options for trace serialization. */
struct ChromeTraceOptions
{
    /**
     * Draw at most this many timeline instances of a folded repeat (a
     * 50-step denoising loop folded into one node is drawn as
     * min(repeat, maxRepeatInstances) back-to-back slices of the real
     * per-iteration duration). When instances are elided the drawn
     * slices are labeled, e.g. "conv2d [x50, showing 3]", so a folded
     * tail is never mistaken for idle time.
     */
    std::int64_t maxRepeatInstances = 3;
};

/**
 * Write a lowered plan and its scheduled timeline as Trace Event
 * Format JSON. The timeline must have been produced from this plan.
 */
void writeChromeTrace(std::ostream& out,
                      const exec::ExecutionPlan& plan,
                      const exec::Timeline& timeline,
                      const ChromeTraceOptions& options =
                          ChromeTraceOptions());

/**
 * Write a ProfileResult's timeline as Trace Event Format JSON.
 *
 * The result must have been produced with
 * ProfileOptions::keepOpRecords = true (which retains the plan and
 * timeline); throws FatalError otherwise.
 */
void writeChromeTrace(std::ostream& out, const ProfileResult& result,
                      const ChromeTraceOptions& options =
                          ChromeTraceOptions());

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string& s);

} // namespace mmgen::profiler

#endif // MMGEN_PROFILER_CHROME_TRACE_HH
