#include "record.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::profiler {

void
BreakdownReport::add(const OpRecord& record)
{
    perCategory[static_cast<std::size_t>(record.category)] +=
        record.seconds;
    total += record.seconds;
}

void
BreakdownReport::merge(const BreakdownReport& other)
{
    for (std::size_t i = 0; i < perCategory.size(); ++i)
        perCategory[i] += other.perCategory[i];
    total += other.total;
}

double
BreakdownReport::categorySeconds(graph::OpCategory c) const
{
    return perCategory[static_cast<std::size_t>(c)];
}

double
BreakdownReport::categoryFraction(graph::OpCategory c) const
{
    return total > 0.0 ? categorySeconds(c) / total : 0.0;
}

void
AttentionKindStats::add(graph::AttentionKind kind, double seconds,
                        double flops, std::int64_t calls)
{
    Entry& e = byKind[kind];
    e.seconds += seconds;
    e.flops += flops;
    e.calls += calls;
}

AttentionKindStats::Entry
AttentionKindStats::entryFor(graph::AttentionKind kind) const
{
    auto it = byKind.find(kind);
    return it == byKind.end() ? Entry{} : it->second;
}

void
SequenceLengthTrace::record(std::int64_t seq_len, std::uint64_t weight)
{
    MMGEN_CHECK(seq_len > 0, "sequence length must be positive");
    series_.push_back(seq_len);
    hist.add(static_cast<double>(seq_len), weight);
}

std::int64_t
SequenceLengthTrace::maxSeqLen() const
{
    if (series_.empty())
        return 0;
    return *std::max_element(series_.begin(), series_.end());
}

std::int64_t
SequenceLengthTrace::minSeqLen() const
{
    if (series_.empty())
        return 0;
    return *std::min_element(series_.begin(), series_.end());
}

} // namespace mmgen::profiler
