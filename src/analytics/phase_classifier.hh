/**
 * @file
 * Prefill/decode correspondence of TTI/TTV workloads (paper Table III).
 *
 * LLM inference has two phases with very different attention shapes:
 * Prefill processes an NxD query block (large N^2 similarity matrix,
 * big Flash Attention wins) and Decode processes 1xD queries (small
 * matrices, little win). The classifier inspects the attention-call
 * shapes of a profiled run and reports which phase the workload
 * resembles.
 */

#ifndef MMGEN_ANALYTICS_PHASE_CLASSIFIER_HH
#define MMGEN_ANALYTICS_PHASE_CLASSIFIER_HH

#include <string>

#include "graph/pipeline.hh"

namespace mmgen::analytics {

/** The LLM phase an attention workload resembles. */
enum class PhaseKind {
    PrefillLike,
    DecodeLike,
    Mixed,
};

/** Human-readable phase name. */
std::string phaseKindName(PhaseKind k);

/** Attention-shape census of a pipeline's inference. */
struct PhaseProfile
{
    /** Attention call executions with seq_q > 1 (block queries). */
    std::int64_t blockQueryCalls = 0;
    /** Attention call executions with seq_q == 1 (token queries). */
    std::int64_t tokenQueryCalls = 0;

    PhaseKind verdict() const;

    /** Fraction of calls that are block (prefill-shaped) queries. */
    double blockFraction() const;
};

/** Classify a pipeline by tracing every stage's attention shapes. */
PhaseProfile classifyPipeline(const graph::Pipeline& pipeline);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_PHASE_CLASSIFIER_HH
