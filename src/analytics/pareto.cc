#include "pareto.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::analytics {

const std::vector<QualityPoint>&
publishedTtiQualityPoints()
{
    // Published zero-shot COCO FID and parameter counts, as collated
    // by the paper's Fig. 4 (values from the cited publications).
    static const std::vector<QualityPoint> points = {
        {"StableDiffusion", 12.6, 1.45, "diffusion"},
        {"Imagen", 7.3, 3.0, "diffusion"},
        {"Parti", 7.2, 20.0, "transformer"},
        {"Muse", 7.9, 3.0, "transformer"},
        {"DALL-E", 27.5, 12.0, "transformer"},
        {"DALL-E 2", 10.4, 5.5, "diffusion"},
        {"GLIDE", 12.2, 5.0, "diffusion"},
        {"Make-A-Scene", 11.8, 4.0, "transformer"},
        {"CogView", 27.1, 4.0, "transformer"},
        {"CogView2", 24.0, 6.0, "transformer"},
        {"VQ-Diffusion", 19.8, 0.37, "diffusion"},
        {"ERNIE-ViLG", 7.9, 10.0, "diffusion"},
        {"RA-CM3", 15.7, 2.7, "transformer"},
        {"NUWA", 12.9, 0.87, "transformer"},
    };
    return points;
}

bool
dominates(const QualityPoint& a, const QualityPoint& b)
{
    const bool no_worse = a.fid <= b.fid && a.paramsB <= b.paramsB;
    const bool strictly_better = a.fid < b.fid || a.paramsB < b.paramsB;
    return no_worse && strictly_better;
}

std::vector<std::size_t>
paretoFront(const std::vector<QualityPoint>& points)
{
    MMGEN_CHECK(!points.empty(), "empty point set");
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (i != j && dominates(points[j], points[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(),
              [&points](std::size_t a, std::size_t b) {
                  return points[a].fid < points[b].fid;
              });
    return front;
}

} // namespace mmgen::analytics
