#include "phase_classifier.hh"

#include "util/logging.hh"

namespace mmgen::analytics {

std::string
phaseKindName(PhaseKind k)
{
    switch (k) {
      case PhaseKind::PrefillLike:
        return "prefill-like";
      case PhaseKind::DecodeLike:
        return "decode-like";
      case PhaseKind::Mixed:
        return "mixed";
    }
    MMGEN_ASSERT(false, "unknown phase kind");
}

PhaseKind
PhaseProfile::verdict() const
{
    const double f = blockFraction();
    if (f >= 0.9)
        return PhaseKind::PrefillLike;
    if (f <= 0.1)
        return PhaseKind::DecodeLike;
    return PhaseKind::Mixed;
}

double
PhaseProfile::blockFraction() const
{
    const std::int64_t total = blockQueryCalls + tokenQueryCalls;
    return total == 0 ? 0.0
                      : static_cast<double>(blockQueryCalls) /
                            static_cast<double>(total);
}

PhaseProfile
classifyPipeline(const graph::Pipeline& pipeline)
{
    PhaseProfile profile;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        // Per-iteration stages have shape drift only in seq_kv; one
        // iteration suffices for the seq_q census, scaled by count.
        const graph::Trace trace =
            pipeline.traceStage(si, stage.iterations - 1);
        for (const auto& op : trace.ops()) {
            if (op.kind != graph::OpKind::Attention)
                continue;
            const auto& a = op.as<graph::AttentionAttrs>();
            if (a.seqQ > 1)
                profile.blockQueryCalls += stage.iterations;
            else
                profile.tokenQueryCalls += stage.iterations;
        }
    }
    return profile;
}

} // namespace mmgen::analytics
