#include "temporal_scaling.hh"

#include "graph/op.hh"
#include "kernels/attention.hh"
#include "util/logging.hh"

namespace mmgen::analytics {

namespace {

graph::AttentionAttrs
videoAttention(std::int64_t batch, std::int64_t seq, std::int64_t dim)
{
    graph::AttentionAttrs a;
    a.batch = batch;
    a.heads = 1;
    a.seqQ = seq;
    a.seqKv = seq;
    a.headDim = dim;
    return a;
}

} // namespace

double
spatialAttentionFlops(std::int64_t frames, std::int64_t spatial_positions,
                      std::int64_t model_dim)
{
    MMGEN_CHECK(frames > 0 && spatial_positions > 0 && model_dim > 0,
                "dims must be positive");
    // Batch = frames, sequence = spatial positions.
    return kernels::attentionMatmulFlops(
        videoAttention(frames, spatial_positions, model_dim));
}

double
temporalAttentionFlops(std::int64_t frames,
                       std::int64_t spatial_positions,
                       std::int64_t model_dim)
{
    MMGEN_CHECK(frames > 0 && spatial_positions > 0 && model_dim > 0,
                "dims must be positive");
    // Batch = spatial positions, sequence = frames (paper Fig. 10).
    return kernels::attentionMatmulFlops(
        videoAttention(spatial_positions, frames, model_dim));
}

std::int64_t
temporalCrossoverFrames(std::int64_t spatial_positions)
{
    MMGEN_CHECK(spatial_positions > 0, "positions must be positive");
    // F * HW^2 = HW * F^2  =>  F = HW.
    return spatial_positions;
}

double
jointSpatioTemporalFlops(std::int64_t frames,
                         std::int64_t spatial_positions,
                         std::int64_t model_dim)
{
    MMGEN_CHECK(frames > 0 && spatial_positions > 0 && model_dim > 0,
                "dims must be positive");
    return kernels::attentionMatmulFlops(
        videoAttention(1, frames * spatial_positions, model_dim));
}

double
jointSimilarityBytes(std::int64_t frames,
                     std::int64_t spatial_positions)
{
    const double seq =
        static_cast<double>(frames * spatial_positions);
    return 2.0 * seq * seq;
}

double
factorizedSimilarityBytes(std::int64_t frames,
                          std::int64_t spatial_positions)
{
    const double f = static_cast<double>(frames);
    const double hw = static_cast<double>(spatial_positions);
    // Spatial: F matrices of HW^2; temporal: HW matrices of F^2.
    return 2.0 * (f * hw * hw + hw * f * f);
}

double
windowedTemporalFlops(std::int64_t frames,
                      std::int64_t spatial_positions,
                      std::int64_t model_dim, std::int64_t window)
{
    MMGEN_CHECK(window > 0, "window must be positive");
    const std::int64_t w = window < frames ? window : frames;
    graph::AttentionAttrs a;
    a.batch = spatial_positions;
    a.heads = 1;
    a.seqQ = frames;
    a.seqKv = w;
    a.headDim = model_dim;
    return kernels::attentionMatmulFlops(a);
}

} // namespace mmgen::analytics
