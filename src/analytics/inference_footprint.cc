#include "inference_footprint.hh"

#include <algorithm>

#include "kernels/cost_model.hh"
#include "util/logging.hh"

namespace mmgen::analytics {

double
InferenceFootprint::totalBytes() const
{
    return weightBytes + kvCacheBytes + peakActivationBytes;
}

bool
InferenceFootprint::fits(const hw::GpuSpec& gpu) const
{
    return totalBytes() <= gpu.hbmBytes;
}

double
InferenceFootprint::utilization(const hw::GpuSpec& gpu) const
{
    MMGEN_CHECK(gpu.hbmBytes > 0.0, "GPU has no HBM");
    return totalBytes() / gpu.hbmBytes;
}

InferenceFootprint
estimateFootprint(const graph::Pipeline& pipeline,
                  graph::AttentionBackend backend, DType dtype)
{
    InferenceFootprint fp;
    fp.weightBytes =
        static_cast<double>(pipeline.totalParams()) *
        static_cast<double>(dtypeBytes(dtype));

    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        const graph::Trace trace =
            pipeline.traceStage(si, stage.iterations - 1);

        double stage_kv = 0.0;
        for (const auto& op : trace.ops()) {
            fp.peakActivationBytes =
                std::max(fp.peakActivationBytes,
                         kernels::opWorkingSetBytes(op, backend));
            if (op.kind != graph::OpKind::Attention)
                continue;
            const auto& a = op.as<graph::AttentionAttrs>();
            // Cached keys and values exist only when the stage decodes
            // incrementally (query shorter than the attended context).
            if (stage.perIterationShapes && a.seqQ < a.seqKv) {
                stage_kv += 2.0 * static_cast<double>(a.batch) *
                            static_cast<double>(a.heads) *
                            static_cast<double>(a.seqKv) *
                            static_cast<double>(a.headDim) *
                            static_cast<double>(dtypeBytes(dtype));
            }
        }
        fp.kvCacheBytes = std::max(fp.kvCacheBytes, stage_kv);
    }
    return fp;
}

} // namespace mmgen::analytics
