/**
 * @file
 * Denoising-pod scheduler (the system optimization the paper sketches
 * in Section V-A).
 *
 * A diffusion UNet pass alternates between phases of very different
 * memory-bandwidth demand as sequence lengths cycle through the
 * downsampling ladder. The paper observes that "different denoising
 * steps of the diffusion process could be staggered to allow for
 * maximum memory bandwidth utilization at any one time": running P
 * images (or step groups) phase-shifted against each other flattens
 * the aggregate demand. This module implements that scheduler over a
 * profiled op-time/bandwidth series and quantifies the benefit.
 */

#ifndef MMGEN_ANALYTICS_POD_SCHEDULER_HH
#define MMGEN_ANALYTICS_POD_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::analytics {

/** Bandwidth demand of one time slice of a UNet pass. */
struct DemandSlice
{
    /** Duration of the slice, seconds. */
    double seconds = 0.0;
    /** HBM bytes the slice moves. */
    double hbmBytes = 0.0;

    /** Average bandwidth demand over the slice, bytes/s. */
    double bandwidth() const;
};

/** Result of scheduling P phase-shifted streams of one demand curve. */
struct PodSchedule
{
    int pods = 1;
    /** Phase offsets (slice indices) chosen per pod. */
    std::vector<std::size_t> offsets;
    /** Peak aggregate bandwidth across the period, bytes/s. */
    double peakBandwidth = 0.0;
    /** Mean aggregate bandwidth across the period, bytes/s. */
    double meanBandwidth = 0.0;

    /** Peak-to-average ratio; 1.0 is a perfectly flat schedule. */
    double peakToAverage() const;
};

/**
 * Extract the per-op bandwidth-demand series of one pipeline stage
 * iteration (the fundamental period of Fig. 7).
 */
std::vector<DemandSlice>
stageDemandProfile(const graph::Pipeline& pipeline,
                   std::size_t stage_idx, const hw::GpuSpec& gpu);

/**
 * Aggregate bandwidth when `pods` copies of the demand curve run
 * phase-shifted by the given offsets (wrapping around the period).
 * Slices are resampled on a uniform time grid of `grid` points.
 */
PodSchedule
evaluateOffsets(const std::vector<DemandSlice>& demand,
                const std::vector<std::size_t>& offsets,
                std::size_t grid = 256);

/**
 * Greedily choose phase offsets for `pods` streams to minimize the
 * peak aggregate bandwidth (offsets are chosen one pod at a time on
 * the uniform grid).
 */
PodSchedule schedulePods(const std::vector<DemandSlice>& demand,
                         int pods, std::size_t grid = 256);

/** Baseline for comparison: all pods in phase (offset 0). */
PodSchedule inPhaseSchedule(const std::vector<DemandSlice>& demand,
                            int pods, std::size_t grid = 256);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_POD_SCHEDULER_HH
