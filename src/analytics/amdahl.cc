#include "amdahl.hh"

#include "util/logging.hh"

namespace mmgen::analytics {

double
amdahlSpeedup(double fraction, double module_speedup)
{
    MMGEN_CHECK(fraction >= 0.0 && fraction <= 1.0,
                "fraction " << fraction << " out of [0, 1]");
    MMGEN_CHECK(module_speedup > 0.0, "module speedup must be positive");
    return 1.0 / ((1.0 - fraction) + fraction / module_speedup);
}

double
impliedModuleSpeedup(double fraction, double end_to_end_speedup)
{
    MMGEN_CHECK(fraction > 0.0 && fraction <= 1.0,
                "fraction " << fraction << " out of (0, 1]");
    MMGEN_CHECK(end_to_end_speedup > 0.0,
                "end-to-end speedup must be positive");
    const double denom = 1.0 / end_to_end_speedup - (1.0 - fraction);
    MMGEN_CHECK(denom > 0.0,
                "end-to-end speedup " << end_to_end_speedup
                    << " exceeds the Amdahl ceiling for fraction "
                    << fraction);
    return fraction / denom;
}

double
amdahlCeiling(double fraction)
{
    MMGEN_CHECK(fraction >= 0.0 && fraction < 1.0,
                "fraction " << fraction << " out of [0, 1)");
    return 1.0 / (1.0 - fraction);
}

} // namespace mmgen::analytics
