/**
 * @file
 * Amdahl's-law decomposition of end-to-end speedups.
 *
 * The paper explains end-to-end Flash Attention gains (Table II) via
 * two factors: the fraction of time spent in Attention and the speedup
 * of the Attention module itself (Section IV-B). These helpers move
 * between the three quantities.
 */

#ifndef MMGEN_ANALYTICS_AMDAHL_HH
#define MMGEN_ANALYTICS_AMDAHL_HH

namespace mmgen::analytics {

/**
 * End-to-end speedup when a fraction f of the baseline time is
 * accelerated by module_speedup.
 */
double amdahlSpeedup(double fraction, double module_speedup);

/**
 * Module speedup implied by an observed end-to-end speedup when the
 * accelerated fraction of baseline time is f.
 */
double impliedModuleSpeedup(double fraction, double end_to_end_speedup);

/** Maximum attainable end-to-end speedup as module speedup -> inf. */
double amdahlCeiling(double fraction);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_AMDAHL_HH
