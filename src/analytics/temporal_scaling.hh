/**
 * @file
 * Spatial- vs temporal-attention FLOP scaling with frame count
 * (paper Fig. 13, benchmark modeled on space-time attention).
 *
 * For a video of F frames with HW spatial positions and model width D:
 *   spatial attention  FLOPs ~ F * HW^2 * D   (linear in F)
 *   temporal attention FLOPs ~ HW * F^2 * D   (quadratic in F)
 * so temporal attention overtakes spatial at F = HW, and raising the
 * resolution pushes the crossover right.
 */

#ifndef MMGEN_ANALYTICS_TEMPORAL_SCALING_HH
#define MMGEN_ANALYTICS_TEMPORAL_SCALING_HH

#include <cstdint>

namespace mmgen::analytics {

/** FLOPs of one spatial attention layer over a video tensor. */
double spatialAttentionFlops(std::int64_t frames,
                             std::int64_t spatial_positions,
                             std::int64_t model_dim);

/** FLOPs of one temporal attention layer over a video tensor. */
double temporalAttentionFlops(std::int64_t frames,
                              std::int64_t spatial_positions,
                              std::int64_t model_dim);

/**
 * Frame count at which temporal attention FLOPs first exceed spatial
 * attention FLOPs for the given geometry (the Fig. 13 crossover).
 */
std::int64_t temporalCrossoverFrames(std::int64_t spatial_positions);

/**
 * FLOPs of one *joint* spatio-temporal attention layer (sequence =
 * frames * positions). This is the design TTV models avoid: the paper
 * notes that adding the temporal dimension to the existing attention
 * call "is not feasible from a memory perspective" (Section II-B).
 */
double jointSpatioTemporalFlops(std::int64_t frames,
                                std::int64_t spatial_positions,
                                std::int64_t model_dim);

/** Similarity-matrix bytes of the joint layer (fp16). */
double jointSimilarityBytes(std::int64_t frames,
                            std::int64_t spatial_positions);

/** Similarity-matrix bytes of the factorized pair (fp16). */
double factorizedSimilarityBytes(std::int64_t frames,
                                 std::int64_t spatial_positions);

/**
 * FLOPs of a *windowed* temporal attention layer: each frame attends
 * only to a window of `window` frames. Linearizes the Fig. 13
 * quadratic and is the kind of optimization the paper's conclusion
 * calls for to enable long, coherent video.
 */
double windowedTemporalFlops(std::int64_t frames,
                             std::int64_t spatial_positions,
                             std::int64_t model_dim,
                             std::int64_t window);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_TEMPORAL_SCALING_HH
