/**
 * @file
 * Analytical memory/sequence-length model of diffusion inference
 * (paper Section V).
 *
 * Implements the closed-form expressions the paper derives for the
 * sequence length and similarity-matrix memory of the Self- and
 * Cross-Attention blocks over the UNet stages, including the
 * cumulative sum across the downsampling ladder and the O(L^4)
 * image-size scaling law.
 */

#ifndef MMGEN_ANALYTICS_MEMORY_MODEL_HH
#define MMGEN_ANALYTICS_MEMORY_MODEL_HH

#include <cstdint>
#include <vector>

namespace mmgen::analytics {

/** Parameters of the paper's Section V analytical model. */
struct DiffusionMemoryModel
{
    /** Latent (or pixel) extent fed to the UNet. */
    std::int64_t latentH = 64;
    std::int64_t latentW = 64;
    /** Encoded text prompt length. */
    std::int64_t textEncode = 77;
    /** Downsampling factor between UNet stages (paper's d). */
    std::int64_t downFactor = 2;
    /** Number of downsampling stages (paper's unetdepth). */
    int unetDepth = 3;
    /** Bytes per element (paper assumes FP16 = 2). */
    std::int64_t bytesPerParam = 2;

    /** Spatial positions at stage n: (HL * WL) / d^(2n). */
    std::int64_t positionsAtStage(int n) const;

    /** Self-attention similarity matrix entries at stage n. */
    double selfSimilarityEntries(int n) const;

    /** Cross-attention similarity matrix entries at stage n. */
    double crossSimilarityEntries(int n) const;

    /**
     * Memory of one attention calculation's similarity matrices at
     * stage n (paper's 2*HW*[HW + text_encode] expression, in bytes).
     */
    double similarityBytesAtStage(int n) const;

    /**
     * Cumulative similarity-matrix bytes over one UNet pass: twice the
     * per-stage term for every stage above the bottleneck (down and up
     * paths) plus the bottleneck itself (the paper's summation).
     */
    double cumulativeSimilarityBytes() const;
};

/**
 * Fit the scaling exponent of y against x on a log-log scale
 * (least-squares slope). The paper's claim that attention memory
 * scales as O(L^4) corresponds to an exponent of ~4 when x is the
 * latent extent.
 */
double scalingExponent(const std::vector<double>& x,
                       const std::vector<double>& y);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_MEMORY_MODEL_HH
