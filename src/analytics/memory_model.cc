#include "memory_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace mmgen::analytics {

std::int64_t
DiffusionMemoryModel::positionsAtStage(int n) const
{
    MMGEN_CHECK(n >= 0 && n <= unetDepth,
                "stage " << n << " out of [0, " << unetDepth << "]");
    std::int64_t h = latentH;
    std::int64_t w = latentW;
    for (int i = 0; i < n; ++i) {
        MMGEN_CHECK(h % downFactor == 0 && w % downFactor == 0,
                    "latent not divisible by down factor at stage " << i);
        h /= downFactor;
        w /= downFactor;
    }
    return h * w;
}

double
DiffusionMemoryModel::selfSimilarityEntries(int n) const
{
    const double hw = static_cast<double>(positionsAtStage(n));
    return hw * hw;
}

double
DiffusionMemoryModel::crossSimilarityEntries(int n) const
{
    const double hw = static_cast<double>(positionsAtStage(n));
    return hw * static_cast<double>(textEncode);
}

double
DiffusionMemoryModel::similarityBytesAtStage(int n) const
{
    // 2 bytes/elem * HW * [HW + text_encode], the paper's expression
    // with batch size 1 and one head.
    const double hw = static_cast<double>(positionsAtStage(n));
    return static_cast<double>(bytesPerParam) * hw *
           (hw + static_cast<double>(textEncode));
}

double
DiffusionMemoryModel::cumulativeSimilarityBytes() const
{
    double total = 0.0;
    for (int n = 0; n < unetDepth; ++n)
        total += 2.0 * similarityBytesAtStage(n);
    total += similarityBytesAtStage(unetDepth);
    return total;
}

double
scalingExponent(const std::vector<double>& x, const std::vector<double>& y)
{
    MMGEN_CHECK(x.size() == y.size(), "x/y size mismatch");
    MMGEN_CHECK(x.size() >= 2, "need at least two points");
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const double n = static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        MMGEN_CHECK(x[i] > 0.0 && y[i] > 0.0,
                    "log-log fit needs positive values");
        const double lx = std::log(x[i]);
        const double ly = std::log(y[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    const double denom = n * sxx - sx * sx;
    MMGEN_CHECK(std::fabs(denom) > 1e-12, "degenerate fit (equal x)");
    return (n * sxy - sx * sy) / denom;
}

} // namespace mmgen::analytics
