/**
 * @file
 * Quality-vs-size Pareto analysis of TTI models (paper Fig. 4).
 *
 * The paper plots published COCO FID scores against trainable
 * parameter counts and identifies the Pareto-optimal frontier (lower
 * is better on both axes). The published data points are embedded
 * here as a static dataset; the analysis (dominance and frontier
 * extraction) is what this module implements.
 */

#ifndef MMGEN_ANALYTICS_PARETO_HH
#define MMGEN_ANALYTICS_PARETO_HH

#include <string>
#include <vector>

namespace mmgen::analytics {

/** One model's published quality/size point. */
struct QualityPoint
{
    std::string name;
    /** COCO FID score (lower is better). */
    double fid = 0.0;
    /** Trainable parameters, billions (lower is better here). */
    double paramsB = 0.0;
    /** "diffusion" or "transformer". */
    std::string family;
};

/** Published TTI quality/size dataset used by the paper's Fig. 4. */
const std::vector<QualityPoint>& publishedTtiQualityPoints();

/**
 * True if a dominates b: a is no worse on both axes and strictly
 * better on at least one.
 */
bool dominates(const QualityPoint& a, const QualityPoint& b);

/**
 * Indices of the Pareto-optimal points (not dominated by any other),
 * sorted by increasing FID.
 */
std::vector<std::size_t>
paretoFront(const std::vector<QualityPoint>& points);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_PARETO_HH
