#include "pod_scheduler.hh"

#include <algorithm>

#include "kernels/cost_model.hh"
#include "util/logging.hh"

namespace mmgen::analytics {

double
DemandSlice::bandwidth() const
{
    return seconds > 0.0 ? hbmBytes / seconds : 0.0;
}

double
PodSchedule::peakToAverage() const
{
    return meanBandwidth > 0.0 ? peakBandwidth / meanBandwidth : 0.0;
}

std::vector<DemandSlice>
stageDemandProfile(const graph::Pipeline& pipeline,
                   std::size_t stage_idx, const hw::GpuSpec& gpu)
{
    const graph::Trace trace = pipeline.traceStage(stage_idx, 0);
    const kernels::CostModel model(gpu, graph::AttentionBackend::Flash);
    std::vector<DemandSlice> demand;
    demand.reserve(trace.size());
    for (const auto& op : trace.ops()) {
        const kernels::OpCost cost = model.cost(op);
        DemandSlice slice;
        slice.seconds = model.time(cost, op.dtype).seconds;
        slice.hbmBytes = cost.totalBytes();
        demand.push_back(slice);
    }
    return demand;
}

namespace {

/**
 * Resample the demand series onto a uniform grid of bandwidth values
 * over one period.
 */
std::vector<double>
resample(const std::vector<DemandSlice>& demand, std::size_t grid)
{
    MMGEN_CHECK(!demand.empty(), "empty demand profile");
    MMGEN_CHECK(grid >= 2, "grid too small");
    double period = 0.0;
    for (const auto& s : demand)
        period += s.seconds;
    MMGEN_CHECK(period > 0.0, "demand profile has zero duration");

    std::vector<double> curve(grid, 0.0);
    const double dt = period / static_cast<double>(grid);
    std::size_t slice = 0;
    double slice_end = demand[0].seconds;
    for (std::size_t g = 0; g < grid; ++g) {
        const double t = (static_cast<double>(g) + 0.5) * dt;
        while (t > slice_end && slice + 1 < demand.size()) {
            ++slice;
            slice_end += demand[slice].seconds;
        }
        curve[g] = demand[slice].bandwidth();
    }
    return curve;
}

PodSchedule
evaluateCurve(const std::vector<double>& curve,
              const std::vector<std::size_t>& offsets)
{
    const std::size_t grid = curve.size();
    PodSchedule result;
    result.pods = static_cast<int>(offsets.size());
    result.offsets = offsets;
    double peak = 0.0;
    double sum = 0.0;
    for (std::size_t g = 0; g < grid; ++g) {
        double total = 0.0;
        for (std::size_t off : offsets)
            total += curve[(g + off) % grid];
        peak = std::max(peak, total);
        sum += total;
    }
    result.peakBandwidth = peak;
    result.meanBandwidth = sum / static_cast<double>(grid);
    return result;
}

} // namespace

PodSchedule
evaluateOffsets(const std::vector<DemandSlice>& demand,
                const std::vector<std::size_t>& offsets,
                std::size_t grid)
{
    MMGEN_CHECK(!offsets.empty(), "need at least one pod");
    return evaluateCurve(resample(demand, grid), offsets);
}

PodSchedule
schedulePods(const std::vector<DemandSlice>& demand, int pods,
             std::size_t grid)
{
    MMGEN_CHECK(pods >= 1, "need at least one pod");
    const std::vector<double> curve = resample(demand, grid);
    std::vector<std::size_t> offsets = {0};
    // Greedy: place each next pod at the offset minimizing the peak.
    for (int pod = 1; pod < pods; ++pod) {
        std::size_t best_off = 0;
        double best_peak = -1.0;
        for (std::size_t cand = 0; cand < grid; ++cand) {
            std::vector<std::size_t> trial = offsets;
            trial.push_back(cand);
            const PodSchedule s = evaluateCurve(curve, trial);
            if (best_peak < 0.0 || s.peakBandwidth < best_peak) {
                best_peak = s.peakBandwidth;
                best_off = cand;
            }
        }
        offsets.push_back(best_off);
    }
    return evaluateCurve(curve, offsets);
}

PodSchedule
inPhaseSchedule(const std::vector<DemandSlice>& demand, int pods,
                std::size_t grid)
{
    MMGEN_CHECK(pods >= 1, "need at least one pod");
    const std::vector<std::size_t> offsets(
        static_cast<std::size_t>(pods), 0);
    return evaluateCurve(resample(demand, grid), offsets);
}

} // namespace mmgen::analytics
