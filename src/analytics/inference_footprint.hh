/**
 * @file
 * Peak HBM footprint of one inference (weights + KV cache + peak
 * activation working set).
 *
 * The paper profiles every model on a single A100-80GB "since the
 * model parameters can fit within the 80 GB memory constraints"
 * (Section III); this module makes that check quantitative, and
 * supplies the Memory axis of the Table I taxonomy with a
 * capacity-style number (Parti's 20B parameters plus a growing KV
 * cache are what make its memory requirement High).
 */

#ifndef MMGEN_ANALYTICS_INFERENCE_FOOTPRINT_HH
#define MMGEN_ANALYTICS_INFERENCE_FOOTPRINT_HH

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::analytics {

/** Peak-memory decomposition of one inference. */
struct InferenceFootprint
{
    /** Model weights resident for the whole run. */
    double weightBytes = 0.0;
    /** KV-cache high-water mark across decode stages. */
    double kvCacheBytes = 0.0;
    /** Largest single-operator working set (activations). */
    double peakActivationBytes = 0.0;

    double totalBytes() const;

    /** Does the inference fit in the GPU's HBM? */
    bool fits(const hw::GpuSpec& gpu) const;

    /** Fraction of the GPU's HBM the peak footprint occupies. */
    double utilization(const hw::GpuSpec& gpu) const;
};

/**
 * Estimate the inference footprint of a pipeline.
 *
 * Weights come from the pipeline's parameter count; the KV cache from
 * the final-iteration attention shapes of autoregressive stages (each
 * causal/cross attention op contributes one layer's K and V at their
 * final extent); activations from the largest single-op working set
 * under the given backend.
 */
InferenceFootprint
estimateFootprint(const graph::Pipeline& pipeline,
                  graph::AttentionBackend backend =
                      graph::AttentionBackend::Flash,
                  DType dtype = DType::F16);

} // namespace mmgen::analytics

#endif // MMGEN_ANALYTICS_INFERENCE_FOOTPRINT_HH
