#include "reports.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "hw/roofline.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace mmgen::core {

using graph::OpCategory;

TextTable
operatorBreakdownTable(const std::vector<ModelRunResult>& results)
{
    std::vector<std::string> headers = {"Model", "Backend",
                                        "Norm. time"};
    for (OpCategory c : graph::allCategories())
        headers.push_back(graph::opCategoryName(c));
    TextTable table(std::move(headers));

    for (const auto& r : results) {
        const double base_total = r.baseline.totalSeconds;
        for (const profiler::ProfileResult* res :
             {&r.baseline, &r.flash}) {
            std::vector<std::string> row;
            row.push_back(res->model);
            row.push_back(graph::attentionBackendName(res->backend));
            row.push_back(
                formatFixed(res->totalSeconds / base_total, 3));
            for (OpCategory c : graph::allCategories()) {
                // Normalize both bars to the baseline total so the
                // Flash bar shows the shrunken absolute shares, as in
                // the paper's figure.
                const double frac =
                    res->breakdown.categorySeconds(c) / base_total;
                row.push_back(formatPercent(frac));
            }
            table.addRow(std::move(row));
        }
        table.addSeparator();
    }
    return table;
}

TextTable
flashSpeedupTable(const std::vector<ModelRunResult>& results)
{
    TextTable table({"Model", "Baseline (s)", "Flash (s)",
                     "End-to-end speedup"});
    for (const auto& r : results) {
        table.addRow({r.baseline.model,
                      formatFixed(r.baseline.totalSeconds, 3),
                      formatFixed(r.flash.totalSeconds, 3),
                      formatFixed(r.endToEndSpeedup(), 2) + "x"});
    }
    return table;
}

TextTable
attentionSpeedupTable(const std::vector<ModelRunResult>& results)
{
    TextTable table({"Model", "Class", "Attn % (baseline)",
                     "Attn % (flash)", "Attn module speedup"});
    for (const auto& r : results) {
        const graph::ModelClass klass =
            models::buildModel(r.id).klass;
        table.addRow(
            {r.baseline.model, graph::modelClassName(klass),
             formatPercent(r.baselineAttentionFraction()),
             formatPercent(r.flashAttentionFraction()),
             formatFixed(r.attentionModuleSpeedup(), 2) + "x"});
    }
    return table;
}

TextTable
rooflineTable(const std::vector<ModelRunResult>& results,
              const hw::GpuSpec& gpu)
{
    const hw::Roofline roofline(gpu, DType::F16);
    TextTable table({"Model", "Params", "FLOPs", "Arithmetic intensity",
                     "Attainable", "Bound"});
    for (const auto& r : results) {
        const double ai = r.flash.modelArithmeticIntensity();
        const hw::RooflinePoint p =
            roofline.point(r.flash.model, ai);
        table.addRow({r.flash.model, formatCount(double(r.flash.params)),
                      formatFlops(r.flash.totalFlops),
                      formatFixed(ai, 1),
                      formatFlopRate(p.flopsPerSecond),
                      hw::boundKindName(p.bound)});
    }
    return table;
}

TextTable
hotspotTable(const profiler::ProfileResult& result, std::size_t top_k)
{
    MMGEN_CHECK(!result.records.empty(),
                "hotspots need per-op records; re-profile with "
                "ProfileOptions::keepOpRecords = true");
    struct Agg
    {
        double seconds = 0.0;
        double flops = 0.0;
        std::int64_t calls = 0;
    };
    std::map<std::pair<std::string, graph::OpKind>, Agg> by_site;
    for (const auto& rec : result.records) {
        Agg& a = by_site[{rec.scope, rec.kind}];
        a.seconds += rec.seconds;
        a.flops += rec.flops;
        a.calls += rec.repeat;
    }
    std::vector<std::pair<std::pair<std::string, graph::OpKind>, Agg>>
        sites(by_site.begin(), by_site.end());
    std::sort(sites.begin(), sites.end(),
              [](const auto& a, const auto& b) {
                  return a.second.seconds > b.second.seconds;
              });

    TextTable table({"Scope", "Op", "Time", "Share", "Calls",
                     "FLOPs"});
    const std::size_t n = std::min(top_k, sites.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto& [key, agg] = sites[i];
        table.addRow({key.first, graph::opKindName(key.second),
                      formatTime(agg.seconds),
                      formatPercent(agg.seconds / result.totalSeconds),
                      std::to_string(agg.calls),
                      formatFlops(agg.flops)});
    }
    return table;
}

std::string
profileSummary(const profiler::ProfileResult& result)
{
    std::ostringstream oss;
    oss << result.model << " ["
        << graph::attentionBackendName(result.backend)
        << " attention]\n";
    oss << "  params:  " << formatCount(double(result.params)) << "\n";
    oss << "  latency: " << formatTime(result.totalSeconds) << "\n";
    oss << "  flops:   " << formatFlops(result.totalFlops) << "\n";
    oss << "  hbm:     " << formatBytes(result.totalHbmBytes) << "\n";
    oss << "  stages:\n";
    for (const auto& [name, seconds] : result.stageSeconds) {
        oss << "    " << padRight(name, 24) << formatTime(seconds)
            << "\n";
    }
    oss << "  operator breakdown:\n";
    for (OpCategory c : graph::allCategories()) {
        const double frac = result.breakdown.categoryFraction(c);
        if (frac > 0.0) {
            oss << "    " << padRight(graph::opCategoryName(c), 24)
                << formatPercent(frac) << "\n";
        }
    }
    oss << "  kernel classes:\n";
    for (const auto& [klass, seconds] : result.kernelClassSeconds) {
        oss << "    "
            << padRight(kernels::kernelClassName(klass), 24)
            << formatTime(seconds) << "\n";
    }
    return oss.str();
}

} // namespace mmgen::core
