/**
 * @file
 * Model-zoo lint driver: runs the structural verifier and the
 * physics-consistency checks over suite models and their profiled
 * results. This is what `mmgen lint` and the CI gate execute.
 */

#ifndef MMGEN_CORE_LINT_HH
#define MMGEN_CORE_LINT_HH

#include <vector>

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"
#include "models/model_suite.hh"
#include "verify/verify.hh"

namespace mmgen::core {

/** Knobs for one lint run. */
struct LintOptions
{
    hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();

    /** Attention backends the physics lints are evaluated under. */
    std::vector<graph::AttentionBackend> backends = {
        graph::AttentionBackend::Baseline,
        graph::AttentionBackend::Flash,
    };

    /** Run per-op and profile-level physics lints. */
    bool physics = true;

    /**
     * Run behavioural probes: latency monotonicity in stage
     * iterations and cache-hit-rate range checks (profiles the
     * pipeline a few extra times).
     */
    bool probes = true;

    /**
     * Run the memory-liveness pass (S013 dataflow, P011 byte
     * conservation, P010 capacity at Error — lint is where exceeding
     * the device is a failure, unlike the profiler's warning).
     */
    bool memory = true;

    /**
     * Rule ids to drop entirely (severity totals included), e.g.
     * "P010" when auditing a model known not to fit the lint GPU.
     * Suppressing one rule never masks findings of another.
     */
    std::vector<std::string> suppressRules;
};

/** Lint one pipeline (structural, then physics when clean). */
verify::DiagnosticReport lintPipeline(const graph::Pipeline& pipeline,
                                      const LintOptions& opts = {});

/** Lint one suite model by id. */
verify::DiagnosticReport lintModel(models::ModelId id,
                                   const LintOptions& opts = {});

/** Lint every suite model; merged report. */
verify::DiagnosticReport lintAll(const LintOptions& opts = {});

} // namespace mmgen::core

#endif // MMGEN_CORE_LINT_HH
