/**
 * @file
 * Report builders: render suite results as the paper's tables/figures.
 */

#ifndef MMGEN_CORE_REPORTS_HH
#define MMGEN_CORE_REPORTS_HH

#include <string>
#include <vector>

#include "core/suite.hh"
#include "util/table.hh"

namespace mmgen::core {

/**
 * Operator time breakdown across the suite, baseline and Flash bars
 * per model, Flash normalized to the model's baseline (paper Fig. 6).
 */
TextTable
operatorBreakdownTable(const std::vector<ModelRunResult>& results);

/** End-to-end Flash Attention speedups (paper Table II). */
TextTable flashSpeedupTable(const std::vector<ModelRunResult>& results);

/** Attention-module isolated speedups (Fig. 6 red-bar comparison). */
TextTable
attentionSpeedupTable(const std::vector<ModelRunResult>& results);

/** Roofline placement of the suite (paper Fig. 5). */
TextTable rooflineTable(const std::vector<ModelRunResult>& results,
                        const hw::GpuSpec& gpu);

/** One-model profile summary for examples and debugging. */
std::string profileSummary(const profiler::ProfileResult& result);

/**
 * Top-k hotspots of a profiled run: operator instances grouped by
 * (scope, kind), ranked by total simulated time. Requires a result
 * produced with ProfileOptions::keepOpRecords.
 */
TextTable hotspotTable(const profiler::ProfileResult& result,
                       std::size_t top_k = 10);

} // namespace mmgen::core

#endif // MMGEN_CORE_REPORTS_HH
