#include "lint.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cache/attention_study.hh"
#include "profiler/engine.hh"
#include "verify/memory.hh"
#include "runtime/parallel.hh"
#include "runtime/profile_cache.hh"
#include "util/logging.hh"

namespace mmgen::core {

namespace {

/** Restore the runtime-check toggle on scope exit. */
class RuntimeCheckGuard
{
  public:
    explicit RuntimeCheckGuard(bool enabled)
        : previous(verify::setRuntimeChecks(enabled))
    {
    }
    ~RuntimeCheckGuard() { verify::setRuntimeChecks(previous); }
    RuntimeCheckGuard(const RuntimeCheckGuard&) = delete;
    RuntimeCheckGuard& operator=(const RuntimeCheckGuard&) = delete;

  private:
    bool previous;
};

/** Iterations worth tracing for one stage (first/middle/last). */
std::vector<std::int64_t>
sampleIterations(const graph::Stage& st)
{
    if (!st.perIterationShapes)
        return {0};
    std::vector<std::int64_t> iters = {0, (st.iterations - 1) / 2,
                                       st.iterations - 1};
    iters.erase(std::unique(iters.begin(), iters.end()), iters.end());
    return iters;
}

/** Per-op physics lints over sampled traces of every stage. */
void
lintTracePhysics(const graph::Pipeline& p, const LintOptions& opts,
                 verify::DiagnosticReport& report)
{
    for (graph::AttentionBackend backend : opts.backends) {
        const kernels::CostModel model(opts.gpu, backend,
                                       kernels::EfficiencyParams::
                                           defaults());
        for (std::size_t si = 0; si < p.stages.size(); ++si) {
            const verify::PhysicsContext ctx{p.name,
                                             p.stages[si].name};
            for (std::int64_t iter : sampleIterations(p.stages[si])) {
                const graph::Trace t = p.traceStage(si, iter);
                report.merge(verify::verifyTracePhysics(t, model, ctx));
            }
        }
    }
}

/** Profile-level physics lints: totals, stage sums, breakdown sums. */
void
lintProfile(const graph::Pipeline& p, const LintOptions& opts,
            graph::AttentionBackend backend,
            const profiler::ProfileResult& res,
            verify::DiagnosticReport& report)
{
    const std::string label =
        p.name + " (" + graph::attentionBackendName(backend) + ")";
    verify::checkObservation(
        verify::SimObservation{label + " total", res.totalFlops,
                               res.totalHbmBytes, res.totalSeconds,
                               p.dtype},
        opts.gpu, report);

    double stage_sum = 0.0;
    for (const auto& [stage, seconds] : res.stageSeconds) {
        verify::checkObservation(
            verify::SimObservation{label + " " + stage, 0.0, 0.0,
                                   seconds, p.dtype},
            opts.gpu, report);
        stage_sum += seconds;
    }
    if (std::abs(stage_sum - res.totalSeconds) >
        1e-6 * std::max(1e-12, res.totalSeconds)) {
        std::ostringstream oss;
        oss << "stage seconds sum to " << stage_sum
            << " but the profile total is " << res.totalSeconds;
        report.add(verify::Diagnostic{
            verify::Severity::Error, verify::rules::FiniteResult,
            p.name, "", "", oss.str(),
            "stage accounting must be exhaustive"});
    }
}

/**
 * Latency-monotonicity probe: adding one iteration to the busiest
 * scaled stage must not make the pipeline faster.
 */
void
probeIterationMonotonicity(const graph::Pipeline& p,
                           const LintOptions& opts, double base_seconds,
                           verify::DiagnosticReport& report)
{
    std::size_t busiest = p.stages.size();
    for (std::size_t si = 0; si < p.stages.size(); ++si) {
        const graph::Stage& st = p.stages[si];
        if (st.perIterationShapes)
            continue;
        if (busiest == p.stages.size() ||
            st.iterations > p.stages[busiest].iterations)
            busiest = si;
    }
    if (busiest == p.stages.size())
        return;

    graph::Pipeline longer = p;
    longer.stages[busiest].iterations += 1;
    profiler::ProfileOptions popts;
    popts.gpu = opts.gpu;
    popts.backend = graph::AttentionBackend::Flash;
    const double longer_seconds =
        runtime::cachedProfile(longer, popts)->totalSeconds;

    const double base_iters = static_cast<double>(
        p.stages[busiest].iterations);
    verify::checkLatencyMonotone(
        p.name + " +1 " + p.stages[busiest].name + " iteration",
        {{base_iters, base_seconds}, {base_iters + 1, longer_seconds}},
        report);
}

/**
 * Cache-hit-rate probe: replay the first temporal attention call (the
 * paper's locality-hazard case) through the cache hierarchy and check
 * every reported rate is a probability.
 */
void
probeCacheHitRates(const graph::Pipeline& p, const LintOptions& opts,
                   verify::DiagnosticReport& report)
{
    for (std::size_t si = 0; si < p.stages.size(); ++si) {
        const graph::Trace t = p.traceStage(si, 0);
        for (const graph::Op& op : t.ops()) {
            if (op.kind != graph::OpKind::Attention)
                continue;
            const auto& a = op.as<graph::AttentionAttrs>();
            if (a.kind != graph::AttentionKind::Temporal)
                continue;
            const cache::AttentionCacheReport study =
                cache::runAttentionCacheStudy(
                    opts.gpu, a, op.dtype, /*max_batches=*/2,
                    graph::AttentionBackend::Baseline);
            for (const auto& [klass, stats] : study.stats) {
                const std::string label =
                    p.name + " " + op.scope + " " +
                    kernels::kernelClassName(klass);
                verify::checkHitRate(label + " L1",
                                     study.l1HitRate(klass), report);
                verify::checkHitRate(label + " L2",
                                     study.l2HitRate(klass), report);
            }
            return;
        }
    }
}

/** Memory-liveness lints: S013 dataflow, P011 conservation, P010. */
void
lintMemory(const graph::Pipeline& p, const LintOptions& opts,
           verify::DiagnosticReport& report)
{
    const kernels::CostModel model(
        opts.gpu, graph::AttentionBackend::Flash,
        kernels::EfficiencyParams::defaults());
    const exec::ExecutionPlan plan = exec::lowerPipeline(p, model);
    const exec::Timeline timeline =
        exec::TimelineScheduler(opts.gpu).schedule(plan);
    report.merge(verify::verifyMemory(
        plan, timeline, opts.gpu, verify::PhysicsContext{p.name, ""},
        verify::Severity::Error));
}

} // namespace

verify::DiagnosticReport
lintPipeline(const graph::Pipeline& pipeline, const LintOptions& opts)
{
    verify::DiagnosticReport report;
    for (const std::string& rule : opts.suppressRules)
        report.suppressRule(rule);
    report.merge(verify::verifyPipeline(pipeline));
    // A structurally broken graph would only produce noise (or throw)
    // downstream; physics lints require a clean graph.
    if (report.hasErrors() || !opts.physics)
        return report;

    // The profiler re-runs the structural verifier in debug builds;
    // it just passed, so skip the duplicate work.
    RuntimeCheckGuard guard(false);
    lintTracePhysics(pipeline, opts, report);
    double flash_seconds = 0.0;
    for (graph::AttentionBackend backend : opts.backends) {
        profiler::ProfileOptions popts;
        popts.gpu = opts.gpu;
        popts.backend = backend;
        const std::shared_ptr<const profiler::ProfileResult> res =
            runtime::cachedProfile(pipeline, popts);
        lintProfile(pipeline, opts, backend, *res, report);
        if (backend == graph::AttentionBackend::Flash)
            flash_seconds = res->totalSeconds;
    }

    if (opts.memory)
        lintMemory(pipeline, opts, report);

    if (opts.probes) {
        if (flash_seconds == 0.0) {
            profiler::ProfileOptions popts;
            popts.gpu = opts.gpu;
            popts.backend = graph::AttentionBackend::Flash;
            flash_seconds =
                runtime::cachedProfile(pipeline, popts)->totalSeconds;
        }
        probeIterationMonotonicity(pipeline, opts, flash_seconds,
                                   report);
        probeCacheHitRates(pipeline, opts, report);
    }
    return report;
}

verify::DiagnosticReport
lintModel(models::ModelId id, const LintOptions& opts)
{
    return lintPipeline(models::buildModel(id), opts);
}

verify::DiagnosticReport
lintAll(const LintOptions& opts)
{
    // The runtime-check toggle is process-global; hoist one guard
    // over the whole parallel region so the per-pipeline guards
    // inside lintPipeline become no-ops (they capture and restore
    // "disabled") and the restore order across pool threads cannot
    // matter.
    RuntimeCheckGuard guard(false);
    const std::vector<models::ModelId>& ids = models::allModels();
    std::vector<verify::DiagnosticReport> reports =
        runtime::parallelMap(
            static_cast<std::int64_t>(ids.size()),
            [&](std::int64_t i) {
                return lintModel(ids[static_cast<std::size_t>(i)],
                                 opts);
            });
    verify::DiagnosticReport report;
    for (verify::DiagnosticReport& r : reports)
        report.merge(r);
    return report;
}

} // namespace mmgen::core
