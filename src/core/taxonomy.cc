#include "taxonomy.hh"

#include <algorithm>

#include "kernels/cost_model.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace mmgen::core {

std::string
resourceLevelName(ResourceLevel level)
{
    switch (level) {
      case ResourceLevel::Low:
        return "Low";
      case ResourceLevel::Medium:
        return "Medium";
      case ResourceLevel::High:
        return "High";
    }
    MMGEN_ASSERT(false, "unknown resource level");
}

double
peakOpWorkingSetBytes(const graph::Pipeline& pipeline)
{
    double peak = 0.0;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Trace trace = pipeline.traceStage(
            si, pipeline.stages[si].iterations - 1);
        for (const auto& op : trace.ops())
            peak = std::max(peak, kernels::opWorkingSetBytes(op));
    }
    return peak;
}

namespace {

/** Tercile rank of values[i] within values. */
ResourceLevel
tercile(const std::vector<double>& values, std::size_t i)
{
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const double v = values[i];
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), v) -
        sorted.begin());
    if (rank * 3 < n)
        return ResourceLevel::Low;
    if (rank * 3 < 2 * n)
        return ResourceLevel::Medium;
    return ResourceLevel::High;
}

} // namespace

std::vector<TaxonomyRow>
buildTaxonomy(const std::vector<ModelRunResult>& results)
{
    MMGEN_CHECK(!results.empty(), "empty result set");
    std::vector<TaxonomyRow> rows;
    std::vector<double> flops, memory, latency;

    for (const auto& r : results) {
        TaxonomyRow row;
        row.id = r.id;
        row.name = r.flash.model;
        const graph::Pipeline pipeline = models::buildModel(r.id);
        row.architecture = graph::modelClassName(pipeline.klass);
        row.params = r.flash.params;
        row.flops = r.flash.totalFlops;
        row.memoryBytes = static_cast<double>(r.flash.params) * 2.0 +
                          8.0 * peakOpWorkingSetBytes(pipeline);
        row.latencySeconds = r.flash.totalSeconds;
        rows.push_back(std::move(row));
        flops.push_back(rows.back().flops);
        memory.push_back(rows.back().memoryBytes);
        latency.push_back(rows.back().latencySeconds);
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i].compute = tercile(flops, i);
        rows[i].memory = tercile(memory, i);
        rows[i].latency = tercile(latency, i);
    }
    return rows;
}

TextTable
taxonomyTable(const std::vector<TaxonomyRow>& rows)
{
    TextTable table({"Model", "Architecture", "Num Params", "FLOPs",
                     "Memory req.", "Latency", "Compute", "Memory",
                     "Latency class"});
    for (const auto& row : rows) {
        table.addRow({row.name, row.architecture,
                      formatCount(double(row.params)),
                      formatFlops(row.flops),
                      formatBytes(row.memoryBytes),
                      formatTime(row.latencySeconds),
                      resourceLevelName(row.compute),
                      resourceLevelName(row.memory),
                      resourceLevelName(row.latency)});
    }
    return table;
}

} // namespace mmgen::core
