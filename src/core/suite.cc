#include "suite.hh"

#include "runtime/parallel.hh"
#include "runtime/profile_cache.hh"
#include "util/logging.hh"

namespace mmgen::core {

double
ModelRunResult::endToEndSpeedup() const
{
    MMGEN_CHECK(flash.totalSeconds > 0.0, "flash run has zero time");
    return baseline.totalSeconds / flash.totalSeconds;
}

double
ModelRunResult::attentionModuleSpeedup() const
{
    const double flash_s = flash.attentionSeconds();
    MMGEN_CHECK(flash_s > 0.0,
                "model " << baseline.model << " has no attention time");
    return baseline.attentionSeconds() / flash_s;
}

double
ModelRunResult::baselineAttentionFraction() const
{
    return baseline.breakdown.categoryFraction(
        graph::OpCategory::Attention);
}

double
ModelRunResult::flashAttentionFraction() const
{
    return flash.breakdown.categoryFraction(graph::OpCategory::Attention);
}

CharacterizationSuite::CharacterizationSuite(hw::GpuSpec gpu)
    : gpu_(std::move(gpu))
{}

ModelRunResult
CharacterizationSuite::run(models::ModelId id) const
{
    return run(id, models::buildModel(id));
}

ModelRunResult
CharacterizationSuite::run(models::ModelId id,
                           const graph::Pipeline& pipeline) const
{
    ModelRunResult result;
    result.id = id;
    result.baseline =
        profileOne(pipeline, graph::AttentionBackend::Baseline);
    result.flash = profileOne(pipeline, graph::AttentionBackend::Flash);
    return result;
}

std::vector<ModelRunResult>
CharacterizationSuite::runAll(
    const std::vector<models::ModelId>& ids) const
{
    // Each model profile is independent and deterministic, and
    // parallelMap orders results by index, so this is bit-identical
    // to the serial loop at any --jobs count.
    return runtime::parallelMap(
        static_cast<std::int64_t>(ids.size()),
        [&](std::int64_t i) {
            return run(ids[static_cast<std::size_t>(i)]);
        });
}

profiler::ProfileResult
CharacterizationSuite::profileOne(const graph::Pipeline& pipeline,
                                  graph::AttentionBackend backend) const
{
    profiler::ProfileOptions opts;
    opts.gpu = gpu_;
    opts.backend = backend;
    return *runtime::cachedProfile(pipeline, opts);
}

} // namespace mmgen::core
