#include "suite.hh"

#include "util/logging.hh"

namespace mmgen::core {

double
ModelRunResult::endToEndSpeedup() const
{
    MMGEN_CHECK(flash.totalSeconds > 0.0, "flash run has zero time");
    return baseline.totalSeconds / flash.totalSeconds;
}

double
ModelRunResult::attentionModuleSpeedup() const
{
    const double flash_s = flash.attentionSeconds();
    MMGEN_CHECK(flash_s > 0.0,
                "model " << baseline.model << " has no attention time");
    return baseline.attentionSeconds() / flash_s;
}

double
ModelRunResult::baselineAttentionFraction() const
{
    return baseline.breakdown.categoryFraction(
        graph::OpCategory::Attention);
}

double
ModelRunResult::flashAttentionFraction() const
{
    return flash.breakdown.categoryFraction(graph::OpCategory::Attention);
}

CharacterizationSuite::CharacterizationSuite(hw::GpuSpec gpu)
    : gpu_(std::move(gpu))
{}

ModelRunResult
CharacterizationSuite::run(models::ModelId id) const
{
    return run(id, models::buildModel(id));
}

ModelRunResult
CharacterizationSuite::run(models::ModelId id,
                           const graph::Pipeline& pipeline) const
{
    ModelRunResult result;
    result.id = id;
    result.baseline =
        profileOne(pipeline, graph::AttentionBackend::Baseline);
    result.flash = profileOne(pipeline, graph::AttentionBackend::Flash);
    return result;
}

std::vector<ModelRunResult>
CharacterizationSuite::runAll(
    const std::vector<models::ModelId>& ids) const
{
    std::vector<ModelRunResult> results;
    results.reserve(ids.size());
    for (models::ModelId id : ids)
        results.push_back(run(id));
    return results;
}

profiler::ProfileResult
CharacterizationSuite::profileOne(const graph::Pipeline& pipeline,
                                  graph::AttentionBackend backend) const
{
    profiler::ProfileOptions opts;
    opts.gpu = gpu_;
    opts.backend = backend;
    profiler::Profiler prof(opts);
    return prof.profile(pipeline);
}

} // namespace mmgen::core
