/**
 * @file
 * Model taxonomy along the compute/memory/latency axes (paper Table I).
 */

#ifndef MMGEN_CORE_TAXONOMY_HH
#define MMGEN_CORE_TAXONOMY_HH

#include <string>
#include <vector>

#include "core/suite.hh"
#include "util/table.hh"

namespace mmgen::core {

/** Qualitative resource level used by the paper's Table I. */
enum class ResourceLevel {
    Low,
    Medium,
    High,
};

/** Human-readable level name. */
std::string resourceLevelName(ResourceLevel level);

/** One taxonomy row. */
struct TaxonomyRow
{
    models::ModelId id = models::ModelId::LLaMA;
    std::string name;
    std::string architecture;
    std::int64_t params = 0;
    double flops = 0.0;
    double memoryBytes = 0.0;
    double latencySeconds = 0.0;
    ResourceLevel compute = ResourceLevel::Low;
    ResourceLevel memory = ResourceLevel::Low;
    ResourceLevel latency = ResourceLevel::Low;
};

/**
 * Build taxonomy rows from suite results; levels are tercile ranks of
 * the quantitative scores within the supplied set (so comparing the
 * paper's four Table I models reproduces its relative labels).
 */
std::vector<TaxonomyRow>
buildTaxonomy(const std::vector<ModelRunResult>& results);

/** Render Table I. */
TextTable taxonomyTable(const std::vector<TaxonomyRow>& rows);

/**
 * Peak single-operator working set (operand + result bytes) across a
 * pipeline under baseline attention — the memory-pressure proxy used
 * for the taxonomy's Memory axis.
 */
double peakOpWorkingSetBytes(const graph::Pipeline& pipeline);

} // namespace mmgen::core

#endif // MMGEN_CORE_TAXONOMY_HH
