/**
 * @file
 * CharacterizationSuite: the top-level facade of mmgen.
 *
 * Runs the paper's eight-model suite (plus LLaMA) under both the
 * baseline and Flash attention backends on a simulated GPU and exposes
 * the per-model results every experiment consumes.
 */

#ifndef MMGEN_CORE_SUITE_HH
#define MMGEN_CORE_SUITE_HH

#include <vector>

#include "models/model_suite.hh"
#include "profiler/engine.hh"

namespace mmgen::core {

/** Both-backend profile of one model. */
struct ModelRunResult
{
    models::ModelId id = models::ModelId::LLaMA;
    profiler::ProfileResult baseline;
    profiler::ProfileResult flash;

    /** End-to-end Flash-over-baseline speedup (paper Table II). */
    double endToEndSpeedup() const;

    /** Speedup of the Attention module itself (Fig. 6 red bar). */
    double attentionModuleSpeedup() const;

    /** Fraction of baseline time spent in Attention. */
    double baselineAttentionFraction() const;

    /** Fraction of flash time spent in Attention. */
    double flashAttentionFraction() const;
};

/**
 * Profiles suite models under both attention backends.
 */
class CharacterizationSuite
{
  public:
    explicit CharacterizationSuite(
        hw::GpuSpec gpu = hw::GpuSpec::a100_80gb());

    /** Profile one model under both backends. */
    ModelRunResult run(models::ModelId id) const;

    /** Profile a caller-supplied pipeline under both backends. */
    ModelRunResult run(models::ModelId id,
                       const graph::Pipeline& pipeline) const;

    /** Profile every model in the list. */
    std::vector<ModelRunResult>
    runAll(const std::vector<models::ModelId>& ids) const;

    /** Profile one pipeline under one backend. */
    profiler::ProfileResult
    profileOne(const graph::Pipeline& pipeline,
               graph::AttentionBackend backend) const;

    const hw::GpuSpec& gpu() const { return gpu_; }

  private:
    hw::GpuSpec gpu_;
};

} // namespace mmgen::core

#endif // MMGEN_CORE_SUITE_HH
