#include "timeline.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace mmgen::verify {

namespace {

/**
 * Relative slack for timeline comparisons. Tighter than the roofline
 * checks' 1e-6: event arithmetic is pure addition, so anything beyond
 * accumulated ulp noise is a scheduler bug, not modeling slop.
 */
constexpr double kTimeTol = 1e-9;

double
slack(const exec::Timeline& timeline)
{
    return kTimeTol * std::max(timeline.makespan, 1e-300);
}

void
addError(DiagnosticReport& report, const char* rule,
         const PhysicsContext& ctx, std::string scope, std::string msg,
         std::string hint = "")
{
    report.add(Diagnostic{Severity::Error, rule, ctx.model, ctx.stage,
                          std::move(scope), std::move(msg),
                          std::move(hint)});
}

std::string
nodeScope(const exec::ExecutionPlan& plan, std::size_t node)
{
    if (node >= plan.nodes.size())
        return "";
    const exec::PlanNode& n = plan.nodes[node];
    const std::string& scope =
        n.opIndex < plan.ops.size() ? plan.ops[n.opIndex].scope : "";
    return scope.empty() ? n.label : scope + ":" + n.label;
}

} // namespace

double
timelineCriticalPath(const exec::ExecutionPlan& plan,
                     const exec::Timeline& timeline)
{
    const std::size_t n =
        std::min(plan.nodes.size(), timeline.events.size());
    std::vector<double> finish(n, 0.0);
    double longest = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double ready = 0.0;
        for (const std::int32_t dep : plan.nodes[i].deps) {
            if (dep >= 0 && static_cast<std::size_t>(dep) < i)
                ready = std::max(
                    ready, finish[static_cast<std::size_t>(dep)]);
        }
        finish[i] = ready + timeline.events[i].durationSeconds();
        longest = std::max(longest, finish[i]);
    }
    return longest;
}

void
checkTimeline(const exec::ExecutionPlan& plan,
              const exec::Timeline& timeline,
              const PhysicsContext& ctx, DiagnosticReport& report)
{
    if (timeline.events.size() != plan.nodes.size()) {
        std::ostringstream oss;
        oss << "timeline has " << timeline.events.size()
            << " events for a plan of " << plan.nodes.size()
            << " nodes";
        addError(report, rules::TimelineConsistency, ctx, "",
                 oss.str());
        return;
    }
    if (timeline.events.empty())
        return;

    const double eps = slack(timeline);
    bool events_ok = true;

    // P007: every event finite and forward-running, within [0,
    // makespan], its dependencies finished, and no two events on one
    // stream overlapping (streams execute in order, so walking node
    // order per stream visits each stream's events in issue order).
    std::vector<double> stream_end;
    for (std::size_t i = 0; i < timeline.events.size(); ++i) {
        const exec::TimelineEvent& ev = timeline.events[i];
        const std::string scope = nodeScope(plan, i);
        if (!std::isfinite(ev.startSeconds) ||
            !std::isfinite(ev.endSeconds) || ev.startSeconds < 0.0 ||
            ev.endSeconds < ev.startSeconds) {
            std::ostringstream oss;
            oss << "event runs [" << ev.startSeconds << ", "
                << ev.endSeconds << ")";
            addError(report, rules::TimelineConsistency, ctx, scope,
                     oss.str(), "events must run forward from t >= 0");
            events_ok = false;
            continue;
        }
        if (ev.endSeconds > timeline.makespan + eps) {
            std::ostringstream oss;
            oss << "event ends at " << ev.endSeconds
                << "s, past the makespan " << timeline.makespan << "s";
            addError(report, rules::TimelineConsistency, ctx, scope,
                     oss.str());
            events_ok = false;
        }
        if (ev.stream < 0) {
            std::ostringstream oss;
            oss << "negative stream id " << ev.stream;
            addError(report, rules::TimelineConsistency, ctx, scope,
                     oss.str());
            events_ok = false;
            continue;
        }
        if (static_cast<std::size_t>(ev.stream) >= stream_end.size())
            stream_end.resize(
                static_cast<std::size_t>(ev.stream) + 1, 0.0);
        if (ev.startSeconds + eps <
            stream_end[static_cast<std::size_t>(ev.stream)]) {
            std::ostringstream oss;
            oss << "event starts at " << ev.startSeconds
                << "s while stream " << ev.stream << " is busy until "
                << stream_end[static_cast<std::size_t>(ev.stream)]
                << "s";
            addError(report, rules::TimelineConsistency, ctx, scope,
                     oss.str(),
                     "streams execute their kernels in order");
            events_ok = false;
        }
        stream_end[static_cast<std::size_t>(ev.stream)] =
            std::max(stream_end[static_cast<std::size_t>(ev.stream)],
                     ev.endSeconds);
        for (const std::int32_t dep : plan.nodes[i].deps) {
            if (dep < 0 || static_cast<std::size_t>(dep) >= i) {
                std::ostringstream oss;
                oss << "dependency edge " << dep
                    << " does not point at an earlier node";
                addError(report, rules::TimelineConsistency, ctx,
                         scope, oss.str());
                events_ok = false;
                continue;
            }
            const double dep_end =
                timeline.events[static_cast<std::size_t>(dep)]
                    .endSeconds;
            if (ev.startSeconds + eps < dep_end) {
                std::ostringstream oss;
                oss << "event starts at " << ev.startSeconds
                    << "s before its dependency (node " << dep
                    << ") finishes at " << dep_end << "s";
                addError(report, rules::TimelineConsistency, ctx,
                         scope, oss.str());
                events_ok = false;
            }
        }
    }
    if (!events_ok)
        return; // makespan bounds would just repeat the damage

    // P008: the makespan of a feasible schedule can be no shorter
    // than the dependency critical path (or any stream's busy time)
    // and no longer than running every kernel back to back.
    const double critical = timelineCriticalPath(plan, timeline);
    if (timeline.makespan + eps < critical) {
        std::ostringstream oss;
        oss << "makespan " << timeline.makespan
            << "s is below the dependency critical path " << critical
            << "s";
        addError(report, rules::MakespanBound, ctx, "", oss.str(),
                 "no amount of overlap can beat the critical path");
    }
    for (std::size_t s = 0; s < timeline.streamBusySeconds.size();
         ++s) {
        if (timeline.makespan + eps < timeline.streamBusySeconds[s]) {
            std::ostringstream oss;
            oss << "makespan " << timeline.makespan
                << "s is below stream " << s << "'s busy time "
                << timeline.streamBusySeconds[s] << "s";
            addError(report, rules::MakespanBound, ctx, "", oss.str());
        }
    }
    // Upper bound: device work back to back plus every host launch.
    // Under a launch queue, durations exclude overhead (the host pays
    // it), so the overhead term must be added; under synchronous
    // launches it is already inside the durations and only loosens
    // the bound.
    double serialized = timeline.launchOverheadSeconds;
    for (const exec::TimelineEvent& ev : timeline.events)
        serialized += ev.durationSeconds();
    if (timeline.makespan > serialized + eps) {
        std::ostringstream oss;
        oss << "makespan " << timeline.makespan
            << "s exceeds the fully serialized work " << serialized
            << "s";
        addError(report, rules::MakespanBound, ctx, "", oss.str(),
                 "an in-order schedule never idles past total work");
    }
}

DiagnosticReport
verifyTimeline(const exec::ExecutionPlan& plan,
               const exec::Timeline& timeline,
               const PhysicsContext& ctx)
{
    DiagnosticReport report;
    checkTimeline(plan, timeline, ctx, report);
    return report;
}

} // namespace mmgen::verify
