#include "physics.hh"

#include <cmath>
#include <sstream>

#include "kernels/attention.hh"

namespace mmgen::verify {

namespace {

/** Relative slack for floating-point bound comparisons. */
constexpr double kRelTol = 1e-6;

void
addError(DiagnosticReport& report, const char* rule,
         const PhysicsContext& ctx, const std::string& scope,
         std::string msg, std::string hint = "")
{
    report.add(Diagnostic{Severity::Error, rule, ctx.model, ctx.stage,
                          scope, std::move(msg), std::move(hint)});
}

/** P006: a simulated quantity must be finite and non-negative. */
bool
finiteNonNegative(DiagnosticReport& report, const PhysicsContext& ctx,
                  const std::string& scope, const char* what,
                  double value)
{
    if (std::isfinite(value) && value >= 0.0)
        return true;
    std::ostringstream oss;
    oss << what << " = " << value << " is not finite and non-negative";
    addError(report, rules::FiniteResult, ctx, scope, oss.str());
    return false;
}

} // namespace

double
compulsoryOpBytes(const graph::Op& op)
{
    const double e = static_cast<double>(dtypeBytes(op.dtype));
    switch (op.kind) {
      case graph::OpKind::Conv2D:
      case graph::OpKind::Conv3D: {
        const auto& a = op.as<graph::ConvAttrs>();
        const double in = static_cast<double>(a.batch) * a.inChannels *
                          a.inD * a.inH * a.inW;
        const double out = static_cast<double>(a.batch) *
                           a.outChannels * a.outD() * a.outH() *
                           a.outW();
        double weights = static_cast<double>(a.kernelH) * a.kernelW *
                         a.kernelD * (a.inChannels / a.groups) *
                         a.outChannels;
        if (a.hasBias)
            weights += static_cast<double>(a.outChannels);
        return e * (in + weights + out);
      }
      case graph::OpKind::Linear: {
        const auto& a = op.as<graph::LinearAttrs>();
        double bytes = static_cast<double>(a.rows) * a.inFeatures +
                       static_cast<double>(a.inFeatures) *
                           a.outFeatures +
                       static_cast<double>(a.rows) * a.outFeatures;
        if (a.hasBias)
            bytes += static_cast<double>(a.outFeatures);
        return e * bytes;
      }
      case graph::OpKind::Matmul: {
        const auto& a = op.as<graph::MatmulAttrs>();
        return e * a.batch *
               (static_cast<double>(a.m) * a.k +
                static_cast<double>(a.k) * a.n +
                static_cast<double>(a.m) * a.n);
      }
      case graph::OpKind::Attention:
        // Q/K/V read once, O written once: the flash lower bound.
        return kernels::qkvoBytes(op.as<graph::AttentionAttrs>(),
                                  dtypeBytes(op.dtype));
      case graph::OpKind::GroupNorm:
      case graph::OpKind::LayerNorm:
        return e * 2.0 * op.as<graph::NormAttrs>().numel;
      case graph::OpKind::Softmax: {
        const auto& a = op.as<graph::SoftmaxAttrs>();
        return e * 2.0 * static_cast<double>(a.rows) * a.cols;
      }
      case graph::OpKind::Elementwise: {
        const auto& a = op.as<graph::ElemAttrs>();
        return e * (a.arity + 1.0) * a.numel;
      }
      case graph::OpKind::Embedding: {
        // A gather touches only the rows it gathers, not the table.
        const auto& a = op.as<graph::EmbeddingAttrs>();
        return e * 2.0 * static_cast<double>(a.tokens) * a.dim;
      }
      case graph::OpKind::Upsample:
      case graph::OpKind::Downsample: {
        const auto& a = op.as<graph::ResampleAttrs>();
        return e * (static_cast<double>(a.numelIn) + a.numelOut);
      }
      case graph::OpKind::Copy:
        return 2.0 * static_cast<double>(op.as<graph::CopyAttrs>().bytes);
    }
    return 0.0;
}

void
checkOpPhysics(const graph::Op& op, const kernels::CostModel& model,
               const PhysicsContext& ctx, DiagnosticReport& report)
{
    const kernels::OpCost cost = model.cost(op);
    const kernels::OpTime time = model.time(cost, op.dtype, op.repeat);
    const double repeat = static_cast<double>(op.repeat);
    const double flops = cost.totalFlops() * repeat;
    const double bytes = cost.totalBytes() * repeat;

    if (!finiteNonNegative(report, ctx, op.scope, "flops", flops) ||
        !finiteNonNegative(report, ctx, op.scope, "hbm bytes", bytes) ||
        !finiteNonNegative(report, ctx, op.scope, "seconds",
                           time.seconds))
        return;
    if (time.seconds <= 0.0) {
        addError(report, rules::FiniteResult, ctx, op.scope,
                 "op takes zero time despite launch overhead");
        return;
    }

    const double peak = model.gpu().peakFlops(op.dtype);
    if (peak > 0.0 && flops / time.seconds > peak * (1.0 + kRelTol)) {
        std::ostringstream oss;
        oss << "achieved " << flops / time.seconds
            << " FLOP/s exceeds the " << dtypeName(op.dtype)
            << " peak " << peak;
        addError(report, rules::AbovePeakFlops, ctx, op.scope,
                 oss.str(),
                 "efficiency factors must stay in (0, 1]");
    }
    const double bw = model.gpu().hbmBandwidth;
    if (bw > 0.0 && bytes / time.seconds > bw * (1.0 + kRelTol)) {
        std::ostringstream oss;
        oss << "achieved " << bytes / time.seconds
            << " bytes/s exceeds the HBM bandwidth " << bw;
        addError(report, rules::AbovePeakBandwidth, ctx, op.scope,
                 oss.str());
    }

    const double floor = compulsoryOpBytes(op) * repeat;
    if (bytes < floor * (1.0 - kRelTol)) {
        std::ostringstream oss;
        oss << "modeled HBM traffic " << bytes
            << " below the compulsory minimum " << floor;
        addError(report, rules::BelowCompulsoryBytes, ctx, op.scope,
                 oss.str(),
                 "every operand must be read and every result written "
                 "at least once");
    }
}

DiagnosticReport
verifyTracePhysics(const graph::Trace& trace,
                   const kernels::CostModel& model,
                   const PhysicsContext& ctx)
{
    DiagnosticReport report;
    for (const graph::Op& op : trace.ops())
        checkOpPhysics(op, model, ctx, report);
    return report;
}

void
checkObservation(const SimObservation& obs, const hw::GpuSpec& gpu,
                 DiagnosticReport& report)
{
    const PhysicsContext ctx{obs.label, ""};
    if (!finiteNonNegative(report, ctx, "", "flops", obs.flops) ||
        !finiteNonNegative(report, ctx, "", "hbm bytes",
                           obs.hbmBytes) ||
        !finiteNonNegative(report, ctx, "", "seconds", obs.seconds))
        return;
    if (obs.seconds <= 0.0) {
        if (obs.flops > 0.0 || obs.hbmBytes > 0.0)
            addError(report, rules::FiniteResult, ctx, "",
                     "work was performed in zero simulated time");
        return;
    }
    const double peak = gpu.peakFlops(obs.dtype);
    if (peak > 0.0 &&
        obs.flops / obs.seconds > peak * (1.0 + kRelTol)) {
        std::ostringstream oss;
        oss << "achieved " << obs.flops / obs.seconds
            << " FLOP/s exceeds the " << dtypeName(obs.dtype)
            << " peak " << peak;
        addError(report, rules::AbovePeakFlops, ctx, "", oss.str());
    }
    if (gpu.hbmBandwidth > 0.0 &&
        obs.hbmBytes / obs.seconds >
            gpu.hbmBandwidth * (1.0 + kRelTol)) {
        std::ostringstream oss;
        oss << "achieved " << obs.hbmBytes / obs.seconds
            << " bytes/s exceeds the HBM bandwidth "
            << gpu.hbmBandwidth;
        addError(report, rules::AbovePeakBandwidth, ctx, "",
                 oss.str());
    }
}

void
checkHitRate(const std::string& label, double rate,
             DiagnosticReport& report)
{
    if (std::isfinite(rate) && rate >= 0.0 && rate <= 1.0)
        return;
    std::ostringstream oss;
    oss << "hit rate " << rate << " outside [0, 1]";
    report.add(Diagnostic{Severity::Error, rules::HitRateRange, label,
                          "", "", oss.str(), ""});
}

void
checkLatencyMonotone(
    const std::string& label,
    const std::vector<std::pair<double, double>>& series,
    DiagnosticReport& report)
{
    for (std::size_t i = 0; i < series.size(); ++i) {
        const PhysicsContext ctx{label, ""};
        if (!finiteNonNegative(report, ctx, "", "latency",
                               series[i].second))
            return;
        if (i == 0)
            continue;
        const auto& [x0, y0] = series[i - 1];
        const auto& [x1, y1] = series[i];
        if (x1 > x0 && y1 < y0 * (1.0 - kRelTol)) {
            std::ostringstream oss;
            oss << "latency fell from " << y0 << "s to " << y1
                << "s as work grew from " << x0 << " to " << x1;
            report.add(Diagnostic{Severity::Error,
                                  rules::LatencyMonotonicity, label,
                                  "", "", oss.str(),
                                  "more steps or pixels can never be "
                                  "faster"});
        }
    }
}

} // namespace mmgen::verify
