/**
 * @file
 * Memory-liveness verification over lowered ExecutionPlans.
 *
 * Three rules live here. S013 is structural: the plan's dataflow must
 * be well-formed (dependency edges point backwards, op node ranges
 * tile the node list, staged weights are consumed, the compute chain
 * is unbroken) before any liveness sweep of it means anything. P011
 * checks conservation: the byte demand the liveness model attributes
 * to an op can never exceed the HBM traffic the cost model charged
 * for it, and the swept bounds must order as
 * weights <= programPeak <= scheduledPeak <= noReuse. P010 checks
 * capacity: the scheduled peak must fit the VRAM of the simulated
 * GPU.
 *
 * P010 severity is caller-chosen: the profiler demotes it to Warn
 * (paper-scale models are legitimately profiled on GPUs they do not
 * fit — Parti's 20B parameters exceed a V100's 32 GB — and the
 * simulator still produces valid latency numbers), while lint, the
 * benches and the CLI keep it an Error.
 */

#ifndef MMGEN_VERIFY_MEMORY_HH
#define MMGEN_VERIFY_MEMORY_HH

#include "exec/memory.hh"
#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "hw/gpu_spec.hh"
#include "verify/diagnostic.hh"
#include "verify/physics.hh"
#include "verify/rules.hh"

namespace mmgen::verify {

/**
 * S013: plan dataflow integrity. Every dependency edge points at a
 * strictly lower node index, op node ranges tile [0, nodes.size())
 * contiguously with matching back-pointers, every weight-stream node
 * sits on the Copy lane and is consumed by a later compute kernel of
 * its own op, and consecutive compute-lane nodes are chained so the
 * single-assignment activation model of the liveness pass holds.
 */
void checkPlanDataflow(const exec::ExecutionPlan& plan,
                       const PhysicsContext& ctx,
                       DiagnosticReport& report);

/**
 * P011 + P010 over a swept profile. P011: per-op liveness demand
 * (input + output + weight-read bytes) must not exceed the cost
 * model's HBM traffic for the op, every byte quantity must be finite
 * and non-negative, and the peak bounds must order correctly. P010:
 * the scheduled peak fits `gpu.hbmBytes`, reported at
 * `capacitySeverity`.
 */
void checkMemoryProfile(const exec::ExecutionPlan& plan,
                        const exec::MemoryProfile& profile,
                        const hw::GpuSpec& gpu,
                        const PhysicsContext& ctx,
                        DiagnosticReport& report,
                        Severity capacitySeverity = Severity::Error);

/**
 * Full memory pass: S013 first, then — only when the dataflow is
 * clean enough to sweep — analyzeMemory plus P011/P010. A plan that
 * fails S013 returns with only the structural findings rather than
 * tripping assertions inside the liveness derivation.
 */
DiagnosticReport verifyMemory(const exec::ExecutionPlan& plan,
                              const exec::Timeline& timeline,
                              const hw::GpuSpec& gpu,
                              const PhysicsContext& ctx,
                              Severity capacitySeverity =
                                  Severity::Error);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_MEMORY_HH
