/**
 * @file
 * Physics-consistency lints over simulated results.
 *
 * A shape-driven simulator has no hardware to keep it honest, so these
 * rules play that role: no op may attain more FLOP/s than the dtype
 * peak of the simulated GPU, move fewer HBM bytes than the compulsory
 * (cold-cache) minimum its operands imply, or exceed the HBM
 * bandwidth; cache hit rates stay in [0, 1]; latency is monotone in
 * work. Every figure the repo reproduces runs under these checks.
 */

#ifndef MMGEN_VERIFY_PHYSICS_HH
#define MMGEN_VERIFY_PHYSICS_HH

#include <string>
#include <utility>
#include <vector>

#include "graph/trace.hh"
#include "hw/gpu_spec.hh"
#include "kernels/cost_model.hh"
#include "verify/diagnostic.hh"
#include "verify/rules.hh"

namespace mmgen::verify {

/** Where physics findings are attributed. */
struct PhysicsContext
{
    std::string model;
    std::string stage;
};

/**
 * Compulsory HBM traffic of one op instance (repeat not applied):
 * every distinct operand read once and every result written once, with
 * no cache holding anything across kernels. An embedding gather only
 * touches the rows it gathers, and fused attention only Q/K/V/O, so
 * this is a strictly weaker bound than the resident working set.
 */
double compulsoryOpBytes(const graph::Op& op);

/** Run every per-op physics rule for one op under one cost model. */
void checkOpPhysics(const graph::Op& op,
                    const kernels::CostModel& model,
                    const PhysicsContext& ctx,
                    DiagnosticReport& report);

/** checkOpPhysics over every op of a trace. */
DiagnosticReport verifyTracePhysics(const graph::Trace& trace,
                                    const kernels::CostModel& model,
                                    const PhysicsContext& ctx);

/** Aggregate quantities of one simulated run (any granularity). */
struct SimObservation
{
    /** Where the numbers came from, e.g. "StableDiffusion total". */
    std::string label;
    double flops = 0.0;
    double hbmBytes = 0.0;
    double seconds = 0.0;
    DType dtype = DType::F16;
};

/** Aggregate-level physics rules (peak FLOP/s, peak BW, finiteness). */
void checkObservation(const SimObservation& obs, const hw::GpuSpec& gpu,
                      DiagnosticReport& report);

/** P004: a cache hit rate must be finite and in [0, 1]. */
void checkHitRate(const std::string& label, double rate,
                  DiagnosticReport& report);

/**
 * P005: latencies must be non-decreasing along increasing work. The
 * series is (work, seconds) pairs in increasing-work order.
 */
void checkLatencyMonotone(
    const std::string& label,
    const std::vector<std::pair<double, double>>& series,
    DiagnosticReport& report);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_PHYSICS_HH
