/**
 * @file
 * Umbrella header for the verifier, plus the runtime-check toggle
 * the profiler and serving layers consult before running
 * verifyPipelineOrThrow on every profiled pipeline.
 */

#ifndef MMGEN_VERIFY_VERIFY_HH
#define MMGEN_VERIFY_VERIFY_HH

#include "verify/diagnostic.hh"
#include "verify/physics.hh"
#include "verify/rules.hh"
#include "verify/structural.hh"

namespace mmgen::verify {

/**
 * Whether execution paths (profiler, serving) verify every pipeline
 * they touch. Defaults to on in debug builds and off in release
 * builds; tests and tools can override either way.
 */
bool runtimeChecksEnabled();

/** Override the runtime-check default (returns the previous value). */
bool setRuntimeChecks(bool enabled);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_VERIFY_HH
