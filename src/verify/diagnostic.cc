#include "diagnostic.hh"

#include <algorithm>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace mmgen::verify {

using json::escape;

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Error:
        return "error";
      case Severity::Warn:
        return "warn";
      case Severity::Info:
        return "info";
    }
    MMGEN_ASSERT(false, "unknown severity");
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << severityName(severity) << "[" << rule << "]";
    if (!model.empty() || !stage.empty()) {
        oss << " " << model;
        if (!stage.empty())
            oss << "/" << stage;
    }
    if (!scope.empty())
        oss << " " << scope;
    oss << ": " << message;
    if (!hint.empty())
        oss << " (fix: " << hint << ")";
    return oss.str();
}

void
DiagnosticReport::add(Diagnostic d)
{
    if (isSuppressed(d.rule)) {
        ++ruleSuppressed;
        return;
    }
    switch (d.severity) {
      case Severity::Error:
        ++errors;
        break;
      case Severity::Warn:
        ++warnings;
        break;
      case Severity::Info:
        ++infos;
        break;
    }
    int kept = 0;
    for (const Diagnostic& existing : diags) {
        if (existing.rule == d.rule && existing.stage == d.stage)
            ++kept;
    }
    if (kept >= kMaxPerRulePerStage) {
        ++suppressed;
        return;
    }
    diags.push_back(std::move(d));
}

void
DiagnosticReport::merge(const DiagnosticReport& other)
{
    for (const Diagnostic& d : other.diags)
        add(d);
    suppressed += other.suppressed;
    ruleSuppressed += other.ruleSuppressed;
}

void
DiagnosticReport::suppressRule(const std::string& rule)
{
    if (!isSuppressed(rule))
        suppressedRules.push_back(rule);
}

bool
DiagnosticReport::isSuppressed(const std::string& rule) const
{
    return std::find(suppressedRules.begin(), suppressedRules.end(),
                     rule) != suppressedRules.end();
}

std::int64_t
DiagnosticReport::count(Severity s) const
{
    switch (s) {
      case Severity::Error:
        return errors;
      case Severity::Warn:
        return warnings;
      case Severity::Info:
        return infos;
    }
    MMGEN_ASSERT(false, "unknown severity");
}

std::vector<Diagnostic>
DiagnosticReport::forRule(const std::string& rule) const
{
    std::vector<Diagnostic> out;
    for (const Diagnostic& d : diags) {
        if (d.rule == rule)
            out.push_back(d);
    }
    return out;
}

bool
DiagnosticReport::fired(const std::string& rule) const
{
    return std::any_of(
        diags.begin(), diags.end(),
        [&](const Diagnostic& d) { return d.rule == rule; });
}

std::vector<std::string>
DiagnosticReport::firedRules() const
{
    std::vector<std::string> out;
    for (const Diagnostic& d : diags) {
        if (std::find(out.begin(), out.end(), d.rule) == out.end())
            out.push_back(d.rule);
    }
    return out;
}

std::string
DiagnosticReport::render() const
{
    std::ostringstream oss;
    for (const Diagnostic& d : diags)
        oss << d.str() << "\n";
    oss << errors << " error(s), " << warnings << " warning(s), "
        << infos << " note(s)";
    if (suppressed > 0)
        oss << ", " << suppressed << " suppressed";
    oss << "\n";
    return oss.str();
}

std::string
DiagnosticReport::toJson() const
{
    std::ostringstream oss;
    json::Writer w(oss);
    w.beginArray();
    for (const Diagnostic& d : diags) {
        w.beginObject()
            .field("severity", severityName(d.severity))
            .field("rule", d.rule)
            .field("model", d.model)
            .field("stage", d.stage)
            .field("scope", d.scope)
            .field("message", d.message)
            .field("hint", d.hint)
            .endObject();
    }
    w.endArray();
    MMGEN_ASSERT(w.complete(), "diagnostic JSON left containers open");
    return oss.str();
}

} // namespace mmgen::verify
