/**
 * @file
 * Structural lints over operator graphs.
 *
 * These passes run over a traced Pipeline (or a raw Trace) without
 * executing any cost model. They enforce the shape invariants the
 * paper's characterization rests on: a UNet's spatial attention
 * attends exactly its H*W positions, temporal attention views the
 * video tensor with frame stride H*W and feature stride F*H*W
 * (Figs. 10-12), conv ladders halve resolutions exactly, and every
 * dimension that sizes simulated work is positive and
 * overflow-safe. A model-zoo entry that violates one of these would
 * silently skew every figure built on it.
 *
 * The verifier is conservative: context-dependent checks (e.g.
 * seqQ == H*W) only fire when the trace itself establishes the
 * context (a live convolutional feature map), so pure transformer
 * stacks are not mis-linted.
 */

#ifndef MMGEN_VERIFY_STRUCTURAL_HH
#define MMGEN_VERIFY_STRUCTURAL_HH

#include <cstdint>
#include <string>

#include "graph/pipeline.hh"
#include "graph/trace.hh"
#include "verify/diagnostic.hh"
#include "verify/rules.hh"

namespace mmgen::verify {

/** Context one trace is verified under. */
struct TraceContext
{
    /** Model name for diagnostics. */
    std::string model;
    /** Stage name for diagnostics. */
    std::string stage;
    /** Element type every op is expected to carry. */
    DType dtype = DType::F16;
    /**
     * Encoded prompt length cross-attention must attend; 0 when
     * unknown (the check is skipped).
     */
    std::int64_t promptLen = 0;
    /** Iteration count of the enclosing stage (for repeat sanity). */
    std::int64_t stageIterations = 1;
};

/** Run every structural rule over one trace. */
DiagnosticReport verifyTrace(const graph::Trace& trace,
                             const TraceContext& ctx);

/**
 * Run every structural rule over a whole pipeline: each stage is
 * traced at sampled iterations (first/middle/last for per-iteration
 * stages) and verified, the encoded prompt length is recovered from
 * the text-encoder stage, and the parameter count is independently
 * recomputed and cross-checked against Pipeline::totalParams().
 */
DiagnosticReport verifyPipeline(const graph::Pipeline& pipeline);

/**
 * Throw FatalError with the rendered report when a report carries
 * Error-severity findings; no-op otherwise.
 */
void throwOnErrors(const DiagnosticReport& report);

/** verifyPipeline + throwOnErrors. */
void verifyPipelineOrThrow(const graph::Pipeline& pipeline);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_STRUCTURAL_HH
