/**
 * @file
 * Physics rules over scheduled timelines (P007 / P008).
 *
 * The event-timeline scheduler claims a real [start, end) interval per
 * kernel. These checks keep those claims honest: events must be finite
 * and causally ordered (no negative durations, no overlap within a
 * stream, every dependency finished before its consumer starts), and
 * the makespan must lie between the two bounds any feasible schedule
 * obeys — at least the dependency-graph critical path (and every
 * stream's busy time), at most the fully serialized sum of all work.
 */

#ifndef MMGEN_VERIFY_TIMELINE_HH
#define MMGEN_VERIFY_TIMELINE_HH

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "verify/diagnostic.hh"
#include "verify/physics.hh"

namespace mmgen::verify {

/**
 * Longest path through the plan's dependency edges, weighting each
 * node by its scheduled event duration. A lower bound on any feasible
 * makespan.
 */
double timelineCriticalPath(const exec::ExecutionPlan& plan,
                            const exec::Timeline& timeline);

/** Run P007 (event consistency) and P008 (makespan bounds). */
void checkTimeline(const exec::ExecutionPlan& plan,
                   const exec::Timeline& timeline,
                   const PhysicsContext& ctx, DiagnosticReport& report);

/** checkTimeline into a fresh report. */
DiagnosticReport verifyTimeline(const exec::ExecutionPlan& plan,
                                const exec::Timeline& timeline,
                                const PhysicsContext& ctx);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_TIMELINE_HH
