/**
 * @file
 * Diagnostic records produced by the static-analysis passes.
 *
 * Every rule violation the verifier finds becomes one Diagnostic:
 * a severity, the rule id that fired, where in the pipeline it fired
 * (model / stage / op scope), a human-readable message and a fix
 * hint. A DiagnosticReport collects them, caps per-rule noise, and
 * renders either a text listing or a JSON array for tooling.
 */

#ifndef MMGEN_VERIFY_DIAGNOSTIC_HH
#define MMGEN_VERIFY_DIAGNOSTIC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmgen::verify {

/** How bad a finding is. Errors gate CI; warnings do not. */
enum class Severity : std::uint8_t {
    Error,
    Warn,
    Info,
};

/** Lowercase severity name ("error" / "warn" / "info"). */
std::string severityName(Severity s);

/** One finding of one rule at one site. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Rule id, e.g. "S003". */
    std::string rule;
    /** Model / pipeline name the finding belongs to (may be empty). */
    std::string model;
    /** Pipeline stage name (may be empty for result-level checks). */
    std::string stage;
    /** Dotted op scope, e.g. "unet.down0.attn.self" (may be empty). */
    std::string scope;
    /** What is wrong, with the offending numbers. */
    std::string message;
    /** How a model author would fix it (may be empty). */
    std::string hint;

    /** One-line rendering: "error[S003] model/stage scope: msg". */
    std::string str() const;
};

/**
 * An ordered collection of diagnostics with severity bookkeeping.
 *
 * To keep a corrupted model from producing thousands of copies of the
 * same finding, a report caps the diagnostics it keeps per (rule,
 * stage) pair and counts the rest as suppressed.
 */
class DiagnosticReport
{
  public:
    /** Findings kept per (rule, stage) before suppression kicks in. */
    static constexpr int kMaxPerRulePerStage = 8;

    /** Record one finding (may be suppressed; always counted). */
    void add(Diagnostic d);

    /** Append every finding of another report. */
    void merge(const DiagnosticReport& other);

    /**
     * Drop all future findings of one rule id. Unlike the per-stage
     * noise cap, rule suppression removes the findings from the
     * severity totals too, so suppressing a noisy rule cannot hide
     * errors other rules report (e.g. suppressing P010 never masks
     * S013). Already-recorded findings are unaffected.
     */
    void suppressRule(const std::string& rule);

    /** True when findings of this rule are being dropped. */
    bool isSuppressed(const std::string& rule) const;

    /** Findings dropped by `suppressRule` (not the noise cap). */
    std::int64_t ruleSuppressedCount() const { return ruleSuppressed; }

    const std::vector<Diagnostic>& diagnostics() const { return diags; }

    /** Total findings counted at a severity, including suppressed. */
    std::int64_t count(Severity s) const;

    std::int64_t errorCount() const { return count(Severity::Error); }
    bool hasErrors() const { return errorCount() > 0; }

    /** Findings (kept, not suppressed) for one rule id. */
    std::vector<Diagnostic> forRule(const std::string& rule) const;

    /** True if any kept finding fired the given rule. */
    bool fired(const std::string& rule) const;

    /** Distinct rule ids among kept findings, in first-seen order. */
    std::vector<std::string> firedRules() const;

    /** Findings dropped by the per-rule cap. */
    std::int64_t suppressedCount() const { return suppressed; }

    /** Multi-line human-readable listing plus a summary line. */
    std::string render() const;

    /** JSON array of the kept findings. */
    std::string toJson() const;

  private:
    std::vector<Diagnostic> diags;
    std::vector<std::string> suppressedRules;
    std::int64_t errors = 0;
    std::int64_t warnings = 0;
    std::int64_t infos = 0;
    std::int64_t suppressed = 0;
    std::int64_t ruleSuppressed = 0;
};

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_DIAGNOSTIC_HH
