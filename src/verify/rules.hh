/**
 * @file
 * Rule registry for the verifier.
 *
 * Every check the verifier can perform has a stable id. Structural
 * rules (S...) run over operator graphs without executing anything;
 * physics rules (P...) run over simulated results and enforce that the
 * cost model never claims something the hardware could not do. The
 * registry is what `mmgen lint --rules`, the docs table and the golden
 * diagnostic tests key off.
 */

#ifndef MMGEN_VERIFY_RULES_HH
#define MMGEN_VERIFY_RULES_HH

#include <string>
#include <vector>

#include "verify/diagnostic.hh"

namespace mmgen::verify {

namespace rules {

// ----- structural rules (graph-level, no execution) -------------------

/** A dimension that must be positive is zero or negative. */
inline constexpr const char* NonPositiveDim = "S001";
/** A shape product risks exceeding exact int64/double arithmetic. */
inline constexpr const char* OverflowRisk = "S002";
/** Conv spatial extent not divisible by stride, or bad grouping. */
inline constexpr const char* ConvStrideDivisibility = "S003";
/** Channel/feature-map continuity broken between adjacent ops. */
inline constexpr const char* ChannelContinuity = "S004";
/** Spatial self-attention invariants (seqQ == H*W, square, acausal). */
inline constexpr const char* SpatialAttention = "S005";
/** Cross-attention invariants (seqKv == encoded prompt length). */
inline constexpr const char* CrossAttention = "S006";
/** Temporal attention invariants (seqQ == frames, stride layout). */
inline constexpr const char* TemporalAttention = "S007";
/** Op dtype differs from the pipeline element type. */
inline constexpr const char* DtypeConsistency = "S008";
/** Non-positive repeat/iteration counts, or absurd magnitudes. */
inline constexpr const char* RepeatSanity = "S009";
/** Independent parameter recount disagrees with Pipeline::totalParams. */
inline constexpr const char* ParamCount = "S010";
/** Causal self-attention invariants (mask set, seqKv >= seqQ). */
inline constexpr const char* CausalAttention = "S011";
/** A stage emitter threw while tracing. */
inline constexpr const char* TraceFailure = "S012";
/** Plan dataflow broken: a node uses a buffer no predecessor defines. */
inline constexpr const char* DanglingDefUse = "S013";

// ----- physics rules (simulated-result-level) -------------------------

/** Achieved FLOP/s exceeds the dtype peak of the simulated GPU. */
inline constexpr const char* AbovePeakFlops = "P001";
/** Modeled HBM traffic below the compulsory (cold-cache) minimum. */
inline constexpr const char* BelowCompulsoryBytes = "P002";
/** Achieved bytes/s exceeds the HBM bandwidth of the simulated GPU. */
inline constexpr const char* AbovePeakBandwidth = "P003";
/** A cache hit rate falls outside [0, 1]. */
inline constexpr const char* HitRateRange = "P004";
/** Latency not monotone in steps/resolution/iterations. */
inline constexpr const char* LatencyMonotonicity = "P005";
/** A simulated quantity is negative, NaN or infinite. */
inline constexpr const char* FiniteResult = "P006";
/** Scheduled timeline events overlap, run backwards, or break deps. */
inline constexpr const char* TimelineConsistency = "P007";
/** Makespan below its critical path or above total serialized work. */
inline constexpr const char* MakespanBound = "P008";
/** Sampled telemetry series inconsistent with final report aggregates. */
inline constexpr const char* TelemetryConsistency = "P009";
/** Static peak memory exceeds the VRAM of the simulated GPU. */
inline constexpr const char* CapacityFeasible = "P010";
/** Liveness byte accounting inconsistent with cost-model traffic. */
inline constexpr const char* MemoryConservation = "P011";

} // namespace rules

/** Registry entry describing one rule. */
struct RuleInfo
{
    const char* id;
    Severity severity = Severity::Error;
    /** "structural" or "physics". */
    const char* family;
    const char* summary;
};

/** All registered rules in id order. */
const std::vector<RuleInfo>& allRules();

/** Registry entry for an id; throws FatalError on unknown ids. */
const RuleInfo& ruleInfo(const std::string& id);

} // namespace mmgen::verify

#endif // MMGEN_VERIFY_RULES_HH
