#include "rules.hh"

#include "util/logging.hh"

namespace mmgen::verify {

const std::vector<RuleInfo>&
allRules()
{
    static const std::vector<RuleInfo> registry = {
        {rules::NonPositiveDim, Severity::Error, "structural",
         "every dimension that sizes work must be positive"},
        {rules::OverflowRisk, Severity::Error, "structural",
         "shape products must stay within exact 64-bit arithmetic"},
        {rules::ConvStrideDivisibility, Severity::Error, "structural",
         "conv input extents divisible by stride; channels by groups"},
        {rules::ChannelContinuity, Severity::Error, "structural",
         "feature maps flow continuously between adjacent ops"},
        {rules::SpatialAttention, Severity::Error, "structural",
         "spatial self-attention attends exactly the H*W positions"},
        {rules::CrossAttention, Severity::Error, "structural",
         "cross-attention attends the encoded prompt length"},
        {rules::TemporalAttention, Severity::Error, "structural",
         "temporal attention attends frames with F*H*W feature stride"},
        {rules::DtypeConsistency, Severity::Error, "structural",
         "ops carry the pipeline element type"},
        {rules::RepeatSanity, Severity::Error, "structural",
         "repeat and iteration counts are positive and plausible"},
        {rules::ParamCount, Severity::Error, "structural",
         "independent parameter recount matches Pipeline::totalParams"},
        {rules::CausalAttention, Severity::Error, "structural",
         "causal self-attention masks multi-token queries"},
        {rules::TraceFailure, Severity::Error, "structural",
         "every stage emitter traces without throwing"},
        {rules::DanglingDefUse, Severity::Error, "structural",
         "every plan node reads only buffers a predecessor defines"},
        {rules::AbovePeakFlops, Severity::Error, "physics",
         "achieved FLOP/s never exceeds the dtype peak"},
        {rules::BelowCompulsoryBytes, Severity::Error, "physics",
         "HBM traffic at least the compulsory cold-cache minimum"},
        {rules::AbovePeakBandwidth, Severity::Error, "physics",
         "achieved bytes/s never exceeds the HBM bandwidth"},
        {rules::HitRateRange, Severity::Error, "physics",
         "cache hit rates lie in [0, 1]"},
        {rules::LatencyMonotonicity, Severity::Error, "physics",
         "latency is monotone in steps and resolution"},
        {rules::FiniteResult, Severity::Error, "physics",
         "simulated quantities are finite and non-negative"},
        {rules::TimelineConsistency, Severity::Error, "physics",
         "timeline events are monotone per stream and honor deps"},
        {rules::MakespanBound, Severity::Error, "physics",
         "makespan between the critical path and serialized work"},
        {rules::TelemetryConsistency, Severity::Error, "physics",
         "sampled telemetry series agree with final report aggregates"},
        {rules::CapacityFeasible, Severity::Error, "physics",
         "static peak memory fits the VRAM of the simulated GPU"},
        {rules::MemoryConservation, Severity::Error, "physics",
         "liveness byte demand reconciles with cost-model traffic"},
    };
    return registry;
}

const RuleInfo&
ruleInfo(const std::string& id)
{
    for (const RuleInfo& r : allRules()) {
        if (id == r.id)
            return r;
    }
    MMGEN_CHECK(false, "unknown verifier rule id '" << id << "'");
}

} // namespace mmgen::verify
