#include "memory.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mmgen::verify {

namespace {

/** Relative slack for floating-point bound comparisons. */
constexpr double kRelTol = 1e-6;

/** a <= b up to relative rounding slack on either magnitude. */
bool
atMost(double a, double b)
{
    return a <= b + kRelTol * std::max({std::fabs(a), std::fabs(b), 1.0});
}

std::string
gib(double bytes)
{
    std::ostringstream oss;
    oss.precision(3);
    oss << std::fixed << bytes / (1024.0 * 1024.0 * 1024.0) << " GiB";
    return oss.str();
}

void
addFinding(DiagnosticReport& report, Severity sev, const char* rule,
           const PhysicsContext& ctx, const std::string& scope,
           std::string msg, std::string hint = "")
{
    report.add(Diagnostic{sev, rule, ctx.model, ctx.stage, scope,
                          std::move(msg), std::move(hint)});
}

/** P011: a byte quantity of the memory model must be sane. */
bool
finiteBytes(DiagnosticReport& report, const PhysicsContext& ctx,
            const std::string& scope, const char* what, double value)
{
    if (std::isfinite(value) && value >= 0.0)
        return true;
    std::ostringstream oss;
    oss << what << " = " << value << " is not finite and non-negative";
    addFinding(report, Severity::Error, rules::MemoryConservation, ctx,
               scope, oss.str());
    return false;
}

} // namespace

void
checkPlanDataflow(const exec::ExecutionPlan& plan,
                  const PhysicsContext& ctx, DiagnosticReport& report)
{
    // ---- op ranges must tile the node list contiguously --------------
    std::size_t expect_first = 0;
    for (std::size_t oi = 0; oi < plan.ops.size(); ++oi) {
        const exec::PlanOp& op = plan.ops[oi];
        if (op.nodeCount == 0) {
            addFinding(report, Severity::Error, rules::DanglingDefUse,
                       ctx, op.scope, "op lowered to zero kernels",
                       "every traced op must own at least one node");
            continue;
        }
        if (op.firstNode != expect_first ||
            op.firstNode + op.nodeCount > plan.nodes.size()) {
            std::ostringstream oss;
            oss << "op node range [" << op.firstNode << ", "
                << op.firstNode + op.nodeCount << ") does not tile the "
                << plan.nodes.size() << "-node plan (expected start "
                << expect_first << ")";
            addFinding(report, Severity::Error, rules::DanglingDefUse,
                       ctx, op.scope, oss.str());
            return; // ranges unusable; later checks would cascade
        }
        for (std::size_t n = op.firstNode;
             n < op.firstNode + op.nodeCount; ++n) {
            if (plan.nodes[n].opIndex != oi) {
                std::ostringstream oss;
                oss << "node " << n << " claims op "
                    << plan.nodes[n].opIndex << " but lies in the range "
                    << "of op " << oi;
                addFinding(report, Severity::Error,
                           rules::DanglingDefUse, ctx, op.scope,
                           oss.str());
            }
        }
        expect_first = op.firstNode + op.nodeCount;
    }
    if (expect_first != plan.nodes.size()) {
        std::ostringstream oss;
        oss << "op ranges cover " << expect_first << " of "
            << plan.nodes.size() << " nodes";
        addFinding(report, Severity::Error, rules::DanglingDefUse, ctx,
                   "plan", oss.str());
    }

    // ---- dependency edges point strictly backwards -------------------
    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        const exec::PlanNode& node = plan.nodes[n];
        for (std::int32_t d : node.deps) {
            if (d < 0 || static_cast<std::size_t>(d) >= n) {
                std::ostringstream oss;
                oss << "node " << n << " (" << node.label
                    << ") depends on node " << d
                    << ", which no predecessor defines";
                addFinding(report, Severity::Error,
                           rules::DanglingDefUse, ctx,
                           plan.ops[node.opIndex].scope, oss.str(),
                           "dependency edges must point at lower "
                           "node indices");
            }
        }
    }

    // ---- staged weights sit on the copy lane and are consumed --------
    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        const exec::PlanNode& node = plan.nodes[n];
        if (!node.weightStream)
            continue;
        const exec::PlanOp& op = plan.ops[node.opIndex];
        if (node.lane != exec::Lane::Copy) {
            std::ostringstream oss;
            oss << "weight-stream node " << n
                << " runs on the compute lane";
            addFinding(report, Severity::Error, rules::DanglingDefUse,
                       ctx, op.scope, oss.str());
        }
        bool consumed = false;
        for (std::size_t j = n + 1;
             j < op.firstNode + op.nodeCount && !consumed; ++j) {
            const exec::PlanNode& reader = plan.nodes[j];
            if (reader.lane != exec::Lane::Compute)
                continue;
            consumed = std::find(reader.deps.begin(), reader.deps.end(),
                                 static_cast<std::int32_t>(n)) !=
                       reader.deps.end();
        }
        if (!consumed) {
            std::ostringstream oss;
            oss << "weight-stream node " << n
                << " stages bytes no compute kernel of its op reads";
            addFinding(report, Severity::Error, rules::DanglingDefUse,
                       ctx, op.scope, oss.str(),
                       "the consumer's first compute kernel must "
                       "depend on the prefetch");
        }
    }

    // ---- the compute chain is serial: each compute node depends on
    //      its compute predecessor, so activations flow op to op ------
    std::size_t prev_compute = plan.nodes.size();
    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        const exec::PlanNode& node = plan.nodes[n];
        if (node.lane != exec::Lane::Compute)
            continue;
        if (prev_compute < plan.nodes.size()) {
            const bool chained =
                std::find(node.deps.begin(), node.deps.end(),
                          static_cast<std::int32_t>(prev_compute)) !=
                node.deps.end();
            if (!chained) {
                std::ostringstream oss;
                oss << "compute node " << n << " (" << node.label
                    << ") is not chained to compute predecessor "
                    << prev_compute
                    << "; its input activation has no defining edge";
                addFinding(report, Severity::Error,
                           rules::DanglingDefUse, ctx,
                           plan.ops[node.opIndex].scope, oss.str());
            }
        }
        prev_compute = n;
    }
}

void
checkMemoryProfile(const exec::ExecutionPlan& plan,
                   const exec::MemoryProfile& profile,
                   const hw::GpuSpec& gpu, const PhysicsContext& ctx,
                   DiagnosticReport& report, Severity capacitySeverity)
{
    // ---- P011: profile quantities are sane and ordered ---------------
    bool sane = true;
    sane &= finiteBytes(report, ctx, "profile", "weightBytes",
                        profile.weightBytes);
    sane &= finiteBytes(report, ctx, "profile", "programPeakBytes",
                        profile.programPeakBytes);
    sane &= finiteBytes(report, ctx, "profile", "scheduledPeakBytes",
                        profile.scheduledPeakBytes);
    sane &= finiteBytes(report, ctx, "profile", "noReuseBytes",
                        profile.noReuseBytes);
    sane &= finiteBytes(report, ctx, "profile", "scheduledPeakSeconds",
                        profile.scheduledPeakSeconds);
    if (sane) {
        const struct
        {
            const char* lo;
            double loBytes;
            const char* hi;
            double hiBytes;
        } bounds[] = {
            {"weightBytes", profile.weightBytes, "programPeakBytes",
             profile.programPeakBytes},
            {"programPeakBytes", profile.programPeakBytes,
             "scheduledPeakBytes", profile.scheduledPeakBytes},
            {"scheduledPeakBytes", profile.scheduledPeakBytes,
             "noReuseBytes", profile.noReuseBytes},
        };
        for (const auto& b : bounds) {
            if (atMost(b.loBytes, b.hiBytes))
                continue;
            std::ostringstream oss;
            oss << b.lo << " = " << gib(b.loBytes) << " exceeds "
                << b.hi << " = " << gib(b.hiBytes);
            addFinding(report, Severity::Error,
                       rules::MemoryConservation, ctx, "profile",
                       oss.str(),
                       "peak bounds must order weights <= program <= "
                       "scheduled <= no-reuse");
        }
    }

    // ---- P011: per-op demand conserved against cost-model traffic ----
    for (const exec::PlanOp& op : plan.ops) {
        bool op_sane = true;
        op_sane &= finiteBytes(report, ctx, op.scope, "inputBytes",
                               op.inputBytes);
        op_sane &= finiteBytes(report, ctx, op.scope, "outputBytes",
                               op.outputBytes);
        op_sane &= finiteBytes(report, ctx, op.scope,
                               "weightResidentBytes",
                               op.weightResidentBytes);
        op_sane &= finiteBytes(report, ctx, op.scope, "weightReadBytes",
                               op.weightReadBytes);
        op_sane &= finiteBytes(report, ctx, op.scope, "workspaceBytes",
                               op.workspaceBytes);
        if (!op_sane || op.firstNode + op.nodeCount > plan.nodes.size())
            continue;
        double traffic = 0.0;
        for (std::size_t n = op.firstNode;
             n < op.firstNode + op.nodeCount; ++n)
            traffic += plan.nodes[n].hbmBytes;
        const double demand =
            op.inputBytes + op.outputBytes + op.weightReadBytes;
        if (!atMost(demand, traffic)) {
            std::ostringstream oss;
            oss << "liveness demand " << demand
                << " B (in + out + weight reads) exceeds the "
                << traffic << " B of HBM traffic the cost model "
                << "charged";
            addFinding(report, Severity::Error,
                       rules::MemoryConservation, ctx, op.scope,
                       oss.str(),
                       "every live byte must be moved at least once "
                       "by some kernel of the op");
        }
    }

    // ---- P010: the scheduled peak fits the device --------------------
    if (sane && !atMost(profile.scheduledPeakBytes, gpu.hbmBytes)) {
        std::ostringstream oss;
        oss << "peak resident memory " << gib(profile.scheduledPeakBytes)
            << " (weights " << gib(profile.weightBytes)
            << ") exceeds the " << gib(gpu.hbmBytes) << " of "
            << gpu.name;
        addFinding(report, capacitySeverity, rules::CapacityFeasible,
                   ctx, "profile", oss.str(),
                   "shrink the batch or resolution, or simulate a "
                   "larger-memory GPU");
    }
}

DiagnosticReport
verifyMemory(const exec::ExecutionPlan& plan,
             const exec::Timeline& timeline, const hw::GpuSpec& gpu,
             const PhysicsContext& ctx, Severity capacitySeverity)
{
    DiagnosticReport report;
    checkPlanDataflow(plan, ctx, report);
    if (report.fired(rules::DanglingDefUse))
        return report; // sweeping a corrupt plan would assert
    const exec::MemoryProfile profile = analyzeMemory(plan, timeline);
    checkMemoryProfile(plan, profile, gpu, ctx, report,
                       capacitySeverity);
    return report;
}

} // namespace mmgen::verify
