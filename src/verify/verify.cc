#include "verify.hh"

#include <atomic>

namespace mmgen::verify {

namespace {

// Atomic because the parallel zoo lint and sweep drivers read (and
// the lint's scope guards toggle) this flag from pool threads.
#ifdef NDEBUG
std::atomic<bool> runtime_checks{false};
#else
std::atomic<bool> runtime_checks{true};
#endif

} // namespace

bool
runtimeChecksEnabled()
{
    return runtime_checks.load(std::memory_order_relaxed);
}

bool
setRuntimeChecks(bool enabled)
{
    return runtime_checks.exchange(enabled,
                                   std::memory_order_relaxed);
}

} // namespace mmgen::verify
