#include "verify.hh"

namespace mmgen::verify {

namespace {

#ifdef NDEBUG
bool runtime_checks = false;
#else
bool runtime_checks = true;
#endif

} // namespace

bool
runtimeChecksEnabled()
{
    return runtime_checks;
}

bool
setRuntimeChecks(bool enabled)
{
    const bool previous = runtime_checks;
    runtime_checks = enabled;
    return previous;
}

} // namespace mmgen::verify
