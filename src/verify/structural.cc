#include "structural.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace mmgen::verify {

namespace {

/** Product of all dims, exact while it fits a double mantissa. */
double
dimProduct(std::initializer_list<std::int64_t> dims)
{
    double p = 1.0;
    for (std::int64_t d : dims)
        p *= static_cast<double>(d);
    return p;
}

/**
 * Live convolutional feature-map shape, threaded through the trace in
 * execution order. Attention/norm checks that depend on the spatial
 * grid only fire while this is valid, so pure transformer stages are
 * never mis-linted.
 */
struct FeatureState
{
    std::int64_t batch = 0;
    std::int64_t channels = 0;
    std::int64_t D = 1;
    std::int64_t H = 0;
    std::int64_t W = 0;
    bool valid = false;

    double
    numel() const
    {
        return dimProduct({batch, channels, D, H, W});
    }
};

/** Shared plumbing for emitting diagnostics against one trace. */
class TraceChecker
{
  public:
    TraceChecker(const TraceContext& ctx, DiagnosticReport& report)
        : ctx(ctx), report(report)
    {
    }

    void
    emit(Severity sev, const char* rule, const std::string& scope,
         std::string msg, std::string hint = "")
    {
        report.add(Diagnostic{sev, rule, ctx.model, ctx.stage, scope,
                              std::move(msg), std::move(hint)});
    }

    void
    error(const char* rule, const std::string& scope, std::string msg,
          std::string hint = "")
    {
        emit(Severity::Error, rule, scope, std::move(msg),
             std::move(hint));
    }

    void
    warn(const char* rule, const std::string& scope, std::string msg,
         std::string hint = "")
    {
        emit(Severity::Warn, rule, scope, std::move(msg),
             std::move(hint));
    }

    /** S001: every listed dimension must be strictly positive. */
    bool
    positive(const std::string& scope,
             std::initializer_list<std::pair<const char*, std::int64_t>>
                 dims)
    {
        bool ok = true;
        for (const auto& [name, value] : dims) {
            if (value <= 0) {
                std::ostringstream oss;
                oss << name << " = " << value << " must be positive";
                error(rules::NonPositiveDim, scope, oss.str());
                ok = false;
            }
        }
        return ok;
    }

    /** S002: shape products must stay within exact 64-bit range. */
    void
    overflowGuard(const std::string& scope, const char* label,
                  std::initializer_list<std::int64_t> dims)
    {
        const double p = dimProduct(dims);
        // 2^62: any further multiply overflows int64 arithmetic.
        if (p > 4.6e18) {
            std::ostringstream oss;
            oss << label << " product " << p
                << " overflows 64-bit arithmetic";
            error(rules::OverflowRisk, scope, oss.str(),
                  "shrink the offending dimensions");
        } else if (p > 9.0e15) {
            // 2^53: double arithmetic stops being exact.
            std::ostringstream oss;
            oss << label << " product " << p
                << " exceeds exact double-precision range";
            warn(rules::OverflowRisk, scope, oss.str());
        }
    }

    /** S003-family divisibility requirement. */
    void
    divides(const std::string& scope, const char* what,
            std::int64_t value, const char* byWhat, std::int64_t by,
            std::string hint = "")
    {
        if (by > 0 && value > 0 && value % by != 0) {
            std::ostringstream oss;
            oss << what << " = " << value << " not divisible by "
                << byWhat << " = " << by;
            error(rules::ConvStrideDivisibility, scope, oss.str(),
                  std::move(hint));
        }
    }

    const TraceContext& ctx;
    DiagnosticReport& report;
};

/** Whether a concat/skip-reuse explains a conv's input channels. */
bool
channelsExplained(std::int64_t in, const FeatureState& state,
                  const std::set<std::int64_t>& seen)
{
    if (in == state.channels)
        return true;
    // Skip connection fed directly into a 1x1 projection.
    if (seen.count(in) > 0)
        return true;
    // UNet decoder: skip tensor concatenated onto the running map.
    for (std::int64_t s : seen) {
        if (in == state.channels + s)
            return true;
    }
    return false;
}

void
checkConv(TraceChecker& chk, const graph::Op& op, FeatureState& state,
          std::set<std::int64_t>& seen)
{
    const auto& a = op.as<graph::ConvAttrs>();
    const bool ok = chk.positive(
        op.scope, {{"batch", a.batch},
                   {"in_channels", a.inChannels},
                   {"out_channels", a.outChannels},
                   {"in_h", a.inH},
                   {"in_w", a.inW},
                   {"in_d", a.inD},
                   {"kernel_h", a.kernelH},
                   {"kernel_w", a.kernelW},
                   {"kernel_d", a.kernelD},
                   {"stride_h", a.strideH},
                   {"stride_w", a.strideW},
                   {"groups", a.groups}});
    if (!ok)
        return;
    chk.divides(op.scope, "in_h", a.inH, "stride_h", a.strideH,
                "pad or crop the input to a stride multiple");
    chk.divides(op.scope, "in_w", a.inW, "stride_w", a.strideW,
                "pad or crop the input to a stride multiple");
    chk.divides(op.scope, "in_channels", a.inChannels, "groups",
                a.groups);
    chk.divides(op.scope, "out_channels", a.outChannels, "groups",
                a.groups);
    chk.overflowGuard(op.scope, "conv flop",
                      {a.batch, a.outD(), a.outH(), a.outW(), a.kernelH,
                       a.kernelW, a.kernelD,
                       a.inChannels / std::max<std::int64_t>(a.groups, 1),
                       a.outChannels});

    if (state.valid) {
        std::ostringstream oss;
        if (!channelsExplained(a.inChannels, state, seen)) {
            oss << "conv consumes " << a.inChannels
                << " channels but the live feature map carries "
                << state.channels;
            chk.error(rules::ChannelContinuity, op.scope, oss.str(),
                      "match the producer's output channels (or concat "
                      "a traced skip tensor)");
        } else if (a.inH != state.H || a.inW != state.W ||
                   a.inD != state.D) {
            oss << "conv consumes a " << a.inD << "x" << a.inH << "x"
                << a.inW << " grid but the live feature map is "
                << state.D << "x" << state.H << "x" << state.W;
            chk.error(rules::ChannelContinuity, op.scope, oss.str(),
                      "resample before changing resolution");
        } else if (a.batch != state.batch) {
            oss << "conv batch " << a.batch
                << " differs from the live feature-map batch "
                << state.batch;
            chk.error(rules::ChannelContinuity, op.scope, oss.str());
        }
    }
    seen.insert(a.inChannels);
    seen.insert(a.outChannels);
    state = FeatureState{a.batch, a.outChannels, a.outD(), a.outH(),
                         a.outW(), true};
}

void
checkLinear(TraceChecker& chk, const graph::Op& op)
{
    const auto& a = op.as<graph::LinearAttrs>();
    if (!chk.positive(op.scope, {{"rows", a.rows},
                                 {"in_features", a.inFeatures},
                                 {"out_features", a.outFeatures}}))
        return;
    chk.overflowGuard(op.scope, "linear flop",
                      {a.rows, a.inFeatures, a.outFeatures});
}

void
checkMatmul(TraceChecker& chk, const graph::Op& op)
{
    const auto& a = op.as<graph::MatmulAttrs>();
    if (!chk.positive(op.scope, {{"batch", a.batch},
                                 {"m", a.m},
                                 {"n", a.n},
                                 {"k", a.k}}))
        return;
    chk.overflowGuard(op.scope, "matmul flop", {a.batch, a.m, a.n, a.k});
}

void
checkAttention(TraceChecker& chk, const graph::Op& op,
               const FeatureState& state)
{
    const auto& a = op.as<graph::AttentionAttrs>();
    if (!chk.positive(op.scope,
                      {{"batch", a.batch},
                       {"heads", a.heads},
                       {"seq_q", a.seqQ},
                       {"seq_kv", a.seqKv},
                       {"head_dim", a.headDim},
                       {"seq_stride", a.seqStrideElems},
                       {"feature_stride", a.featureStrideElems}}))
        return;
    chk.overflowGuard(op.scope, "attention score",
                      {a.batch, a.heads, a.seqQ, a.seqKv});

    std::ostringstream oss;
    switch (a.kind) {
      case graph::AttentionKind::SelfSpatial: {
        if (a.seqQ != a.seqKv) {
            oss << "spatial self-attention has seq_q " << a.seqQ
                << " != seq_kv " << a.seqKv;
            chk.error(rules::SpatialAttention, op.scope, oss.str());
        } else if (a.causal) {
            chk.error(rules::SpatialAttention, op.scope,
                      "spatial self-attention must not be causal",
                      "positions of one image have no temporal order");
        } else if (a.featureStrideElems != 1) {
            oss << "spatial self-attention reads a strided feature "
                   "axis (stride "
                << a.featureStrideElems << ")";
            chk.error(rules::SpatialAttention, op.scope, oss.str(),
                      "spatial rows are contiguous; use Temporal for "
                      "frame-axis views");
        } else if (state.valid) {
            const std::int64_t positions = state.H * state.W;
            if (a.seqQ != positions) {
                oss << "spatial self-attention attends " << a.seqQ
                    << " positions but the live feature map has "
                    << state.H << "x" << state.W << " = " << positions;
                chk.error(rules::SpatialAttention, op.scope, oss.str(),
                          "seq_q must equal H*W of the incoming map");
            } else if (a.batch != state.batch * state.D) {
                oss << "spatial self-attention batch " << a.batch
                    << " != feature-map batch*frames "
                    << state.batch * state.D;
                chk.error(rules::SpatialAttention, op.scope, oss.str(),
                          "fold the frame axis into the batch for "
                          "per-frame spatial attention");
            }
        }
        break;
      }
      case graph::AttentionKind::CrossText: {
        if (a.causal) {
            chk.error(rules::CrossAttention, op.scope,
                      "cross-attention must not be causal",
                      "the full prompt is visible to every query");
        } else if (a.featureStrideElems != 1) {
            oss << "cross-attention reads a strided feature axis "
                   "(stride "
                << a.featureStrideElems << ")";
            chk.error(rules::CrossAttention, op.scope, oss.str());
        } else {
            if (chk.ctx.promptLen > 0 && a.seqKv != chk.ctx.promptLen) {
                oss << "cross-attention attends " << a.seqKv
                    << " context tokens but the text encoder produced "
                    << chk.ctx.promptLen;
                chk.error(rules::CrossAttention, op.scope, oss.str(),
                          "seq_kv must equal the encoded prompt "
                          "length");
            }
            if (state.valid && a.seqQ != state.H * state.W) {
                oss.str("");
                oss << "cross-attention queries " << a.seqQ
                    << " positions but the live feature map has "
                    << state.H * state.W;
                chk.error(rules::CrossAttention, op.scope, oss.str());
            }
        }
        break;
      }
      case graph::AttentionKind::Temporal: {
        if (a.seqQ != a.seqKv) {
            oss << "temporal attention has seq_q " << a.seqQ
                << " != seq_kv " << a.seqKv;
            chk.error(rules::TemporalAttention, op.scope, oss.str());
        } else if (a.causal) {
            chk.error(rules::TemporalAttention, op.scope,
                      "temporal attention must not be causal");
        } else if (a.featureStrideElems !=
                   a.seqQ * a.seqStrideElems) {
            oss << "temporal attention feature stride "
                << a.featureStrideElems << " != frames * seq_stride = "
                << a.seqQ * a.seqStrideElems;
            chk.error(rules::TemporalAttention, op.scope, oss.str(),
                      "a frame-axis view of [B, C, F, H, W] has "
                      "feature stride F*H*W");
        } else if (a.batch % a.seqStrideElems != 0) {
            oss << "temporal attention batch " << a.batch
                << " not a multiple of its spatial-position count "
                << a.seqStrideElems;
            chk.error(rules::TemporalAttention, op.scope, oss.str(),
                      "one attention row per spatial position");
        } else if (state.valid) {
            if (a.seqQ != state.D) {
                oss << "temporal attention attends " << a.seqQ
                    << " frames but the live feature map carries "
                    << state.D;
                chk.error(rules::TemporalAttention, op.scope,
                          oss.str());
            } else if (a.seqStrideElems != state.H * state.W) {
                oss << "temporal attention seq stride "
                    << a.seqStrideElems
                    << " != feature-map positions "
                    << state.H * state.W;
                chk.error(rules::TemporalAttention, op.scope, oss.str(),
                          "frames of [B, C, F, H, W] are H*W elements "
                          "apart");
            }
        }
        break;
      }
      case graph::AttentionKind::CausalSelf: {
        if (a.seqKv < a.seqQ) {
            oss << "causal self-attention has seq_kv " << a.seqKv
                << " < seq_q " << a.seqQ;
            chk.error(rules::CausalAttention, op.scope, oss.str(),
                      "every query must at least see itself");
        } else if (a.seqQ > 1 && !a.causal) {
            oss << "multi-token causal self-attention (seq_q "
                << a.seqQ << ") without a causal mask";
            chk.error(rules::CausalAttention, op.scope, oss.str(),
                      "an unmasked prefill would leak future tokens");
        } else if (a.featureStrideElems != 1) {
            oss << "causal self-attention reads a strided feature "
                   "axis (stride "
                << a.featureStrideElems << ")";
            chk.error(rules::CausalAttention, op.scope, oss.str());
        }
        break;
      }
    }
}

void
checkNorm(TraceChecker& chk, const graph::Op& op,
          const FeatureState& state)
{
    const auto& a = op.as<graph::NormAttrs>();
    if (!chk.positive(op.scope, {{"numel", a.numel},
                                 {"channels", a.channels},
                                 {"groups", a.groups}}))
        return;
    chk.divides(op.scope, "channels", a.channels, "groups", a.groups);
    chk.divides(op.scope, "numel", a.numel, "channels", a.channels);
    if (op.kind == graph::OpKind::LayerNorm && a.groups != 1) {
        std::ostringstream oss;
        oss << "layer norm with " << a.groups << " groups";
        chk.error(rules::ConvStrideDivisibility, op.scope, oss.str(),
                  "layer norm normalizes one group; use group norm");
    }
    if (op.kind == graph::OpKind::GroupNorm && state.valid &&
        static_cast<double>(a.numel) == state.numel() &&
        a.channels != state.channels) {
        std::ostringstream oss;
        oss << "group norm over " << a.channels
            << " channels but the live feature map carries "
            << state.channels;
        chk.error(rules::ChannelContinuity, op.scope, oss.str());
    }
}

void
checkResample(TraceChecker& chk, const graph::Op& op,
              FeatureState& state)
{
    const auto& a = op.as<graph::ResampleAttrs>();
    if (!chk.positive(op.scope, {{"numel_in", a.numelIn},
                                 {"numel_out", a.numelOut}}))
        return;
    const bool up = op.kind == graph::OpKind::Upsample;
    const std::int64_t expected = up ? a.numelIn * 4 : a.numelIn / 4;
    if (a.numelOut != expected || (!up && a.numelIn % 4 != 0)) {
        std::ostringstream oss;
        oss << (up ? "upsample2x" : "downsample2x") << " maps "
            << a.numelIn << " -> " << a.numelOut << " elements, "
            << "expected " << expected;
        chk.error(rules::ChannelContinuity, op.scope, oss.str(),
                  "2x resampling scales H and W by exactly 2");
        return;
    }
    if (state.valid) {
        if (static_cast<double>(a.numelIn) != state.numel()) {
            std::ostringstream oss;
            oss << "resample consumes " << a.numelIn
                << " elements but the live feature map has "
                << state.numel();
            chk.error(rules::ChannelContinuity, op.scope, oss.str());
            state.valid = false;
            return;
        }
        if (up) {
            state.H *= 2;
            state.W *= 2;
        } else if (state.H % 2 == 0 && state.W % 2 == 0) {
            state.H /= 2;
            state.W /= 2;
        } else {
            std::ostringstream oss;
            oss << "downsample2x of an odd " << state.H << "x"
                << state.W << " feature map";
            chk.error(rules::ConvStrideDivisibility, op.scope,
                      oss.str());
            state.valid = false;
        }
    }
}

void
checkOp(TraceChecker& chk, const graph::Op& op, FeatureState& state,
        std::set<std::int64_t>& seen)
{
    if (op.dtype != chk.ctx.dtype) {
        std::ostringstream oss;
        oss << "op dtype " << dtypeName(op.dtype)
            << " differs from pipeline dtype "
            << dtypeName(chk.ctx.dtype);
        chk.error(rules::DtypeConsistency, op.scope, oss.str(),
                  "mixed precision must be modeled explicitly per "
                  "stage");
    }
    if (op.repeat < 1) {
        std::ostringstream oss;
        oss << "repeat = " << op.repeat << " must be positive";
        chk.error(rules::RepeatSanity, op.scope, oss.str());
    } else if (op.repeat > 100'000'000) {
        std::ostringstream oss;
        oss << "repeat = " << op.repeat << " is implausibly large";
        chk.warn(rules::RepeatSanity, op.scope, oss.str());
    }

    switch (op.kind) {
      case graph::OpKind::Conv2D:
      case graph::OpKind::Conv3D:
        checkConv(chk, op, state, seen);
        break;
      case graph::OpKind::Linear:
        checkLinear(chk, op);
        break;
      case graph::OpKind::Matmul:
        checkMatmul(chk, op);
        break;
      case graph::OpKind::Attention:
        checkAttention(chk, op, state);
        break;
      case graph::OpKind::GroupNorm:
      case graph::OpKind::LayerNorm:
        checkNorm(chk, op, state);
        break;
      case graph::OpKind::Softmax: {
        const auto& a = op.as<graph::SoftmaxAttrs>();
        chk.positive(op.scope,
                     {{"rows", a.rows}, {"cols", a.cols}});
        chk.overflowGuard(op.scope, "softmax", {a.rows, a.cols});
        break;
      }
      case graph::OpKind::Elementwise: {
        const auto& a = op.as<graph::ElemAttrs>();
        chk.positive(op.scope, {{"numel", a.numel},
                                {"arity", a.arity}});
        if (a.flopsPerElement < 0.0)
            chk.error(rules::NonPositiveDim, op.scope,
                      "flops_per_element must be non-negative");
        break;
      }
      case graph::OpKind::Embedding: {
        const auto& a = op.as<graph::EmbeddingAttrs>();
        chk.positive(op.scope, {{"tokens", a.tokens},
                                {"dim", a.dim},
                                {"vocab", a.vocab}});
        chk.overflowGuard(op.scope, "embedding table",
                          {a.vocab, a.dim});
        break;
      }
      case graph::OpKind::Upsample:
      case graph::OpKind::Downsample:
        checkResample(chk, op, state);
        break;
      case graph::OpKind::Copy: {
        const auto& a = op.as<graph::CopyAttrs>();
        chk.positive(op.scope, {{"bytes", a.bytes}});
        break;
      }
    }
}

/** First text-encoder embedding length, or 0 when there is none. */
std::int64_t
detectPromptLen(const graph::Pipeline& p)
{
    if (p.stages.empty())
        return 0;
    const graph::Stage& first = p.stages.front();
    if (first.name.find("text") == std::string::npos)
        return 0;
    if (!first.emit || first.iterations < 1)
        return 0;
    try {
        const graph::Trace t = p.traceStage(0, 0);
        for (const graph::Op& op : t.ops()) {
            if (op.kind == graph::OpKind::Embedding)
                return op.as<graph::EmbeddingAttrs>().tokens;
        }
    } catch (const FatalError&) {
        // The main loop reports the trace failure.
    }
    return 0;
}

} // namespace

DiagnosticReport
verifyTrace(const graph::Trace& trace, const TraceContext& ctx)
{
    DiagnosticReport report;
    TraceChecker chk(ctx, report);
    if (ctx.stageIterations < 1) {
        std::ostringstream oss;
        oss << "stage iterations = " << ctx.stageIterations
            << " must be positive";
        chk.error(rules::RepeatSanity, "", oss.str());
    } else if (ctx.stageIterations > 10'000'000) {
        std::ostringstream oss;
        oss << "stage iterations = " << ctx.stageIterations
            << " is implausibly large";
        chk.warn(rules::RepeatSanity, "", oss.str());
    }
    if (trace.empty())
        chk.warn(rules::RepeatSanity, "", "stage emitted no operators");

    FeatureState state;
    std::set<std::int64_t> seen;
    for (const graph::Op& op : trace.ops())
        checkOp(chk, op, state, seen);
    return report;
}

DiagnosticReport
verifyPipeline(const graph::Pipeline& pipeline)
{
    DiagnosticReport report;
    const std::int64_t prompt_len = detectPromptLen(pipeline);

    bool traced_all = true;
    std::int64_t recount = 0;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& st = pipeline.stages[si];
        TraceContext ctx{pipeline.name, st.name, pipeline.dtype,
                         prompt_len, st.iterations};
        if (st.iterations < 1 || !st.emit) {
            std::ostringstream oss;
            if (!st.emit)
                oss << "stage has no emitter";
            else
                oss << "stage iterations = " << st.iterations
                    << " must be positive";
            report.add(Diagnostic{Severity::Error, rules::RepeatSanity,
                                  pipeline.name, st.name, "",
                                  oss.str(), ""});
            traced_all = false;
            continue;
        }

        // Per-iteration stages change shape with the index: sample the
        // first, middle and last iterations. Scaled stages are
        // shape-identical; the final iteration mirrors totalParams().
        std::vector<std::int64_t> iters;
        if (st.perIterationShapes) {
            iters = {0, (st.iterations - 1) / 2, st.iterations - 1};
            iters.erase(std::unique(iters.begin(), iters.end()),
                        iters.end());
        } else {
            iters = {st.iterations - 1};
        }

        std::int64_t first_params = -1;
        std::int64_t last_params = -1;
        bool traced_stage = true;
        for (std::int64_t iter : iters) {
            try {
                const graph::Trace t = pipeline.traceStage(si, iter);
                report.merge(verifyTrace(t, ctx));
                const std::int64_t params = t.totalParams();
                if (first_params < 0)
                    first_params = params;
                last_params = params;
            } catch (const FatalError& e) {
                std::ostringstream oss;
                oss << "stage emitter threw at iteration " << iter
                    << ": " << e.what();
                report.add(Diagnostic{Severity::Error,
                                      rules::TraceFailure,
                                      pipeline.name, st.name, "",
                                      oss.str(), ""});
                traced_stage = false;
                break;
            }
        }
        if (!traced_stage) {
            traced_all = false;
            continue;
        }

        // The weights a stage executes must not depend on the
        // iteration index; otherwise totalParams() is meaningless.
        if (st.perIterationShapes && first_params != last_params) {
            std::ostringstream oss;
            oss << "stage owns " << first_params
                << " parameters at its first iteration but "
                << last_params << " at its last";
            report.add(Diagnostic{
                Severity::Error, rules::ParamCount, pipeline.name,
                st.name, "", oss.str(),
                "per-iteration shapes may change activations, never "
                "weights"});
            traced_all = false;
        }
        if (!st.reusesWeights)
            recount += last_params;
    }

    if (traced_all && !pipeline.stages.empty()) {
        const std::int64_t reported = pipeline.totalParams();
        if (reported != recount) {
            std::ostringstream oss;
            oss << "independent recount found " << recount
                << " parameters but Pipeline::totalParams() reports "
                << reported;
            report.add(Diagnostic{
                Severity::Error, rules::ParamCount, pipeline.name, "",
                "", oss.str(),
                "check reusesWeights flags and stage emitters"});
        }
    }
    return report;
}

void
throwOnErrors(const DiagnosticReport& report)
{
    MMGEN_CHECK(!report.hasErrors(),
                "graph verification failed:\n" << report.render());
}

void
verifyPipelineOrThrow(const graph::Pipeline& pipeline)
{
    throwOnErrors(verifyPipeline(pipeline));
}

} // namespace mmgen::verify
