/**
 * @file
 * Element datatypes used by the tensor and kernel models.
 */

#ifndef MMGEN_TENSOR_DTYPE_HH
#define MMGEN_TENSOR_DTYPE_HH

#include <cstdint>
#include <string>

namespace mmgen {

/** Numeric element types supported by the performance models. */
enum class DType : std::uint8_t {
    F32,
    F16,
    BF16,
    I32,
    I8,
};

/** Size in bytes of one element of the given type. */
std::size_t dtypeBytes(DType t);

/** Short lowercase name, e.g. "f16". */
std::string dtypeName(DType t);

} // namespace mmgen

#endif // MMGEN_TENSOR_DTYPE_HH
