#include "tensor_desc.hh"

#include <numeric>
#include <sstream>

#include "util/logging.hh"

namespace mmgen {

TensorDesc::TensorDesc()
    : shape_(), strides_(), dtype_(DType::F16)
{}

TensorDesc::TensorDesc(std::vector<std::int64_t> shape, DType dtype)
    : shape_(std::move(shape)),
      strides_(contiguousStrides(shape_)),
      dtype_(dtype)
{
    for (auto d : shape_)
        MMGEN_CHECK(d > 0, "non-positive dimension " << d);
}

TensorDesc::TensorDesc(std::vector<std::int64_t> shape,
                       std::vector<std::int64_t> strides, DType dtype)
    : shape_(std::move(shape)), strides_(std::move(strides)), dtype_(dtype)
{
    MMGEN_CHECK(shape_.size() == strides_.size(),
                "shape rank " << shape_.size() << " != stride rank "
                              << strides_.size());
    for (auto d : shape_)
        MMGEN_CHECK(d > 0, "non-positive dimension " << d);
}

std::int64_t
TensorDesc::dim(std::int64_t i) const
{
    const std::int64_t r = static_cast<std::int64_t>(rank());
    if (i < 0)
        i += r;
    MMGEN_CHECK(i >= 0 && i < r, "dim index " << i << " out of rank " << r);
    return shape_[static_cast<std::size_t>(i)];
}

std::int64_t
TensorDesc::stride(std::int64_t i) const
{
    const std::int64_t r = static_cast<std::int64_t>(rank());
    if (i < 0)
        i += r;
    MMGEN_CHECK(i >= 0 && i < r,
                "stride index " << i << " out of rank " << r);
    return strides_[static_cast<std::size_t>(i)];
}

std::int64_t
TensorDesc::numel() const
{
    std::int64_t n = 1;
    for (auto d : shape_)
        n *= d;
    return n;
}

std::int64_t
TensorDesc::bytes() const
{
    return numel() * static_cast<std::int64_t>(dtypeBytes(dtype_));
}

bool
TensorDesc::isContiguous() const
{
    return strides_ == contiguousStrides(shape_);
}

TensorDesc
TensorDesc::permute(const std::vector<std::size_t>& perm) const
{
    MMGEN_CHECK(perm.size() == rank(),
                "permutation arity " << perm.size() << " != rank "
                                     << rank());
    std::vector<bool> seen(rank(), false);
    std::vector<std::int64_t> new_shape(rank());
    std::vector<std::int64_t> new_strides(rank());
    for (std::size_t i = 0; i < rank(); ++i) {
        MMGEN_CHECK(perm[i] < rank(), "permutation index out of range");
        MMGEN_CHECK(!seen[perm[i]], "duplicate permutation index");
        seen[perm[i]] = true;
        new_shape[i] = shape_[perm[i]];
        new_strides[i] = strides_[perm[i]];
    }
    return TensorDesc(std::move(new_shape), std::move(new_strides), dtype_);
}

TensorDesc
TensorDesc::reshape(std::vector<std::int64_t> new_shape) const
{
    MMGEN_CHECK(isContiguous(),
                "reshape of non-contiguous tensor " << str()
                    << "; call contiguous() first");
    std::int64_t n = 1;
    for (auto d : new_shape)
        n *= d;
    MMGEN_CHECK(n == numel(), "reshape element count mismatch: " << n
                                  << " vs " << numel());
    return TensorDesc(std::move(new_shape), dtype_);
}

TensorDesc
TensorDesc::contiguous() const
{
    return TensorDesc(shape_, dtype_);
}

std::int64_t
TensorDesc::offsetOf(const std::vector<std::int64_t>& index) const
{
    MMGEN_CHECK(index.size() == rank(), "index arity mismatch");
    std::int64_t off = 0;
    for (std::size_t i = 0; i < rank(); ++i) {
        MMGEN_CHECK(index[i] >= 0 && index[i] < shape_[i],
                    "index " << index[i] << " out of dim " << shape_[i]);
        off += index[i] * strides_[i];
    }
    return off;
}

std::string
TensorDesc::str() const
{
    std::ostringstream oss;
    oss << dtypeName(dtype_) << "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << shape_[i];
    }
    oss << "]";
    if (!isContiguous())
        oss << "(strided)";
    return oss.str();
}

std::vector<std::int64_t>
TensorDesc::contiguousStrides(const std::vector<std::int64_t>& shape)
{
    std::vector<std::int64_t> strides(shape.size());
    std::int64_t acc = 1;
    for (std::size_t i = shape.size(); i-- > 0;) {
        strides[i] = acc;
        acc *= shape[i];
    }
    return strides;
}

} // namespace mmgen
