/**
 * @file
 * Symbolic tensor descriptors.
 *
 * mmgen never materializes tensor data; a TensorDesc carries the shape,
 * element type, and strides of a tensor as it flows through an operator
 * graph. Strides matter: the spatial-vs-temporal attention study
 * (paper Section VI) hinges on the memory layout produced by dimension
 * permutations, which the cache simulator consumes via strides.
 */

#ifndef MMGEN_TENSOR_TENSOR_DESC_HH
#define MMGEN_TENSOR_TENSOR_DESC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dtype.hh"

namespace mmgen {

/**
 * Shape + dtype + strides of a symbolic tensor.
 *
 * Strides are in elements (not bytes), row-major by default.
 */
class TensorDesc
{
  public:
    /** Empty (rank-0, 1-element) descriptor. */
    TensorDesc();

    /** Contiguous row-major tensor of the given shape. */
    TensorDesc(std::vector<std::int64_t> shape, DType dtype);

    /** Tensor with explicit strides (elements). */
    TensorDesc(std::vector<std::int64_t> shape,
               std::vector<std::int64_t> strides, DType dtype);

    /** Number of dimensions. */
    std::size_t rank() const { return shape_.size(); }

    /** Dimension extent; negative indices count from the back. */
    std::int64_t dim(std::int64_t i) const;

    /** Stride of a dimension in elements; negative indices allowed. */
    std::int64_t stride(std::int64_t i) const;

    /** Full shape vector. */
    const std::vector<std::int64_t>& shape() const { return shape_; }

    /** Full stride vector (elements). */
    const std::vector<std::int64_t>& strides() const { return strides_; }

    /** Element type. */
    DType dtype() const { return dtype_; }

    /** Total number of elements. */
    std::int64_t numel() const;

    /** Total logical size in bytes (numel * element size). */
    std::int64_t bytes() const;

    /** True if strides describe a dense row-major layout. */
    bool isContiguous() const;

    /**
     * Permuted view (no data movement): new dim i is old dim perm[i].
     * The result is typically non-contiguous; this is exactly the
     * rearrangement TTV models apply before temporal attention.
     */
    TensorDesc permute(const std::vector<std::size_t>& perm) const;

    /**
     * Reshape to a new shape with the same element count. Only valid
     * on contiguous tensors (mirrors framework semantics: reshaping a
     * permuted view first requires a copy).
     */
    TensorDesc reshape(std::vector<std::int64_t> new_shape) const;

    /** Contiguous tensor of the same shape and dtype (i.e. post-copy). */
    TensorDesc contiguous() const;

    /** Element offset of the given index vector under the strides. */
    std::int64_t offsetOf(const std::vector<std::int64_t>& index) const;

    /** Human-readable form, e.g. "f16[2, 4096, 320]". */
    std::string str() const;

    /** Compute dense row-major strides for a shape. */
    static std::vector<std::int64_t>
    contiguousStrides(const std::vector<std::int64_t>& shape);

  private:
    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_;
    DType dtype_;
};

} // namespace mmgen

#endif // MMGEN_TENSOR_TENSOR_DESC_HH
