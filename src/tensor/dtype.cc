#include "dtype.hh"

#include "util/logging.hh"

namespace mmgen {

std::size_t
dtypeBytes(DType t)
{
    switch (t) {
      case DType::F32:
      case DType::I32:
        return 4;
      case DType::F16:
      case DType::BF16:
        return 2;
      case DType::I8:
        return 1;
    }
    MMGEN_ASSERT(false, "unknown dtype " << static_cast<int>(t));
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::F32:
        return "f32";
      case DType::F16:
        return "f16";
      case DType::BF16:
        return "bf16";
      case DType::I32:
        return "i32";
      case DType::I8:
        return "i8";
    }
    MMGEN_ASSERT(false, "unknown dtype " << static_cast<int>(t));
}

} // namespace mmgen
