#include "builder.hh"

#include "util/format.hh"
#include "util/logging.hh"

namespace mmgen::graph {

GraphBuilder::GraphBuilder(Trace& trace_, DType dtype)
    : trace(trace_), dtype_(dtype)
{}

GraphBuilder::Scope::Scope(GraphBuilder& builder_, std::string name)
    : builder(builder_)
{
    builder.scopeStack.push_back(std::move(name));
}

GraphBuilder::Scope::~Scope()
{
    builder.scopeStack.pop_back();
}

GraphBuilder::Scope
GraphBuilder::scope(std::string name)
{
    return Scope(*this, std::move(name));
}

std::string
GraphBuilder::currentScope() const
{
    return join(scopeStack, ".");
}

void
GraphBuilder::onOp(OpHook hook)
{
    MMGEN_CHECK(static_cast<bool>(hook), "empty op hook");
    hooks.push_back(std::move(hook));
}

void
GraphBuilder::emit(OpKind kind, OpAttrs attrs)
{
    Op op;
    op.kind = kind;
    op.scope = currentScope();
    op.attrs = std::move(attrs);
    op.dtype = dtype_;
    trace.append(std::move(op));
    if (!hooks.empty()) {
        const Op& emitted = trace.ops().back();
        for (const auto& hook : hooks)
            hook(emitted);
    }
}

TensorDesc
GraphBuilder::conv2d(const TensorDesc& x, std::int64_t out_channels,
                     std::int64_t kernel, std::int64_t stride,
                     std::int64_t groups)
{
    MMGEN_CHECK(x.rank() == 4, "conv2d expects NCHW, got " << x.str());
    ConvAttrs a;
    a.batch = x.dim(0);
    a.inChannels = x.dim(1);
    a.inH = x.dim(2);
    a.inW = x.dim(3);
    a.outChannels = out_channels;
    a.kernelH = kernel;
    a.kernelW = kernel;
    a.strideH = stride;
    a.strideW = stride;
    a.groups = groups;
    MMGEN_CHECK(a.inChannels % groups == 0 && out_channels % groups == 0,
                "channels not divisible by groups");
    MMGEN_CHECK(a.inH % stride == 0 && a.inW % stride == 0,
                "spatial dims " << a.inH << "x" << a.inW
                                << " not divisible by stride " << stride);
    const TensorDesc out({a.batch, out_channels, a.outH(), a.outW()},
                         dtype_);
    emit(OpKind::Conv2D, a);
    return out;
}

TensorDesc
GraphBuilder::conv3d(const TensorDesc& x, std::int64_t out_channels,
                     std::int64_t kernel_d, std::int64_t kernel_hw,
                     std::int64_t stride_hw)
{
    MMGEN_CHECK(x.rank() == 5, "conv3d expects NCDHW, got " << x.str());
    ConvAttrs a;
    a.batch = x.dim(0);
    a.inChannels = x.dim(1);
    a.inD = x.dim(2);
    a.inH = x.dim(3);
    a.inW = x.dim(4);
    a.outChannels = out_channels;
    a.kernelD = kernel_d;
    a.kernelH = kernel_hw;
    a.kernelW = kernel_hw;
    a.strideH = stride_hw;
    a.strideW = stride_hw;
    MMGEN_CHECK(a.inH % stride_hw == 0 && a.inW % stride_hw == 0,
                "spatial dims not divisible by stride");
    const TensorDesc out(
        {a.batch, out_channels, a.inD, a.outH(), a.outW()}, dtype_);
    emit(OpKind::Conv3D, a);
    return out;
}

TensorDesc
GraphBuilder::linear(const TensorDesc& x, std::int64_t out_features,
                     bool bias)
{
    MMGEN_CHECK(x.rank() >= 1, "linear expects rank >= 1");
    LinearAttrs a;
    a.inFeatures = x.dim(-1);
    a.outFeatures = out_features;
    a.rows = x.numel() / a.inFeatures;
    a.hasBias = bias;
    std::vector<std::int64_t> out_shape = x.shape();
    out_shape.back() = out_features;
    emit(OpKind::Linear, a);
    return TensorDesc(std::move(out_shape), dtype_);
}

TensorDesc
GraphBuilder::matmul(std::int64_t batch, std::int64_t m, std::int64_t n,
                     std::int64_t k)
{
    MatmulAttrs a;
    a.batch = batch;
    a.m = m;
    a.n = n;
    a.k = k;
    emit(OpKind::Matmul, a);
    return TensorDesc({batch, m, n}, dtype_);
}

TensorDesc
GraphBuilder::attention(AttentionKind kind, std::int64_t batch,
                        std::int64_t heads, std::int64_t seq_q,
                        std::int64_t seq_kv, std::int64_t head_dim,
                        std::int64_t seq_stride, bool causal,
                        std::int64_t feature_stride)
{
    MMGEN_CHECK(batch > 0 && heads > 0 && seq_q > 0 && seq_kv > 0 &&
                    head_dim > 0,
                "attention dims must be positive: b=" << batch << " h="
                    << heads << " sq=" << seq_q << " skv=" << seq_kv
                    << " d=" << head_dim);
    AttentionAttrs a;
    a.kind = kind;
    a.batch = batch;
    a.heads = heads;
    a.seqQ = seq_q;
    a.seqKv = seq_kv;
    a.headDim = head_dim;
    a.causal = causal;
    a.seqStrideElems = seq_stride > 0 ? seq_stride : heads * head_dim;
    MMGEN_CHECK(feature_stride >= 1, "feature stride must be >= 1");
    a.featureStrideElems = feature_stride;
    emit(OpKind::Attention, a);
    return TensorDesc({batch, seq_q, heads * head_dim}, dtype_);
}

TensorDesc
GraphBuilder::groupNorm(const TensorDesc& x, std::int64_t groups)
{
    MMGEN_CHECK(x.rank() >= 2, "groupNorm expects NC... input");
    NormAttrs a;
    a.numel = x.numel();
    a.channels = x.dim(1);
    a.groups = groups;
    emit(OpKind::GroupNorm, a);
    return x;
}

TensorDesc
GraphBuilder::layerNorm(const TensorDesc& x)
{
    NormAttrs a;
    a.numel = x.numel();
    a.channels = x.dim(-1);
    a.groups = 1;
    emit(OpKind::LayerNorm, a);
    return x;
}

TensorDesc
GraphBuilder::softmax(const TensorDesc& x)
{
    SoftmaxAttrs a;
    a.cols = x.dim(-1);
    a.rows = x.numel() / a.cols;
    emit(OpKind::Softmax, a);
    return x;
}

TensorDesc
GraphBuilder::activation(const TensorDesc& x, const std::string& label,
                         double flops_per_element)
{
    ElemAttrs a;
    a.numel = x.numel();
    a.arity = 1;
    a.flopsPerElement = flops_per_element;
    a.label = label;
    emit(OpKind::Elementwise, a);
    return x;
}

TensorDesc
GraphBuilder::silu(const TensorDesc& x)
{
    return activation(x, "silu", 5.0);
}

TensorDesc
GraphBuilder::gelu(const TensorDesc& x)
{
    return activation(x, "gelu", 8.0);
}

TensorDesc
GraphBuilder::binary(const TensorDesc& x, const std::string& label)
{
    ElemAttrs a;
    a.numel = x.numel();
    a.arity = 2;
    a.flopsPerElement = 1.0;
    a.label = label;
    emit(OpKind::Elementwise, a);
    return x;
}

TensorDesc
GraphBuilder::embedding(std::int64_t tokens, std::int64_t dim,
                        std::int64_t vocab)
{
    EmbeddingAttrs a;
    a.tokens = tokens;
    a.dim = dim;
    a.vocab = vocab;
    emit(OpKind::Embedding, a);
    return TensorDesc({tokens, dim}, dtype_);
}

TensorDesc
GraphBuilder::upsample2x(const TensorDesc& x)
{
    MMGEN_CHECK(x.rank() >= 3, "upsample2x expects ...HW input");
    ResampleAttrs a;
    a.numelIn = x.numel();
    a.numelOut = x.numel() * 4;
    emit(OpKind::Upsample, a);
    std::vector<std::int64_t> shape = x.shape();
    shape[shape.size() - 2] *= 2;
    shape[shape.size() - 1] *= 2;
    return TensorDesc(std::move(shape), dtype_);
}

TensorDesc
GraphBuilder::downsample2x(const TensorDesc& x)
{
    MMGEN_CHECK(x.rank() >= 3, "downsample2x expects ...HW input");
    MMGEN_CHECK(x.dim(-2) % 2 == 0 && x.dim(-1) % 2 == 0,
                "odd spatial dims in downsample: " << x.str());
    ResampleAttrs a;
    a.numelIn = x.numel();
    a.numelOut = x.numel() / 4;
    emit(OpKind::Downsample, a);
    std::vector<std::int64_t> shape = x.shape();
    shape[shape.size() - 2] /= 2;
    shape[shape.size() - 1] /= 2;
    return TensorDesc(std::move(shape), dtype_);
}

TensorDesc
GraphBuilder::copy(const TensorDesc& x)
{
    CopyAttrs a;
    a.bytes = x.bytes();
    emit(OpKind::Copy, a);
    return x.contiguous();
}

} // namespace mmgen::graph
