/**
 * @file
 * Operator intermediate representation.
 *
 * A model's inference pass is lowered to a linear trace of Op records,
 * each carrying the dimensions a kernel cost model needs. The operator
 * taxonomy matches the categories the paper reports in its breakdowns
 * (Fig. 6): Attention, Convolution, Linear, GroupNorm, and the
 * memory/elementwise remainder.
 */

#ifndef MMGEN_GRAPH_OP_HH
#define MMGEN_GRAPH_OP_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tensor/dtype.hh"

namespace mmgen::graph {

/** Kinds of operators the IR can express. */
enum class OpKind : std::uint8_t {
    Conv2D,
    Conv3D,
    Linear,
    Matmul,
    Attention,
    GroupNorm,
    LayerNorm,
    Softmax,
    Elementwise,
    Embedding,
    Upsample,
    Downsample,
    Copy,
};

/** Reporting category for operator-time breakdowns (paper Fig. 6). */
enum class OpCategory : std::uint8_t {
    Attention,
    Convolution,
    Linear,
    GroupNorm,
    OtherNorm,
    Elementwise,
    Memory,
};

/** Flavours of attention in the model suite (paper Secs. II, VI). */
enum class AttentionKind : std::uint8_t {
    /** Attention over image/latent positions (a.k.a. spatial). */
    SelfSpatial,
    /** Attention from image positions onto the encoded text prompt. */
    CrossText,
    /** Attention over frames at a fixed spatial position (TTV). */
    Temporal,
    /** Causal self-attention of autoregressive LLM/TTI decoders. */
    CausalSelf,
};

/** Attention implementation selected at execution time. */
enum class AttentionBackend : std::uint8_t {
    /** Materializes the full S_q x S_kv similarity matrix in HBM. */
    Baseline,
    /** FlashAttention-2 style tiling; no N^2 HBM traffic. */
    Flash,
    /**
     * Flash-Decoding: additionally splits the KV sequence across SMs
     * so single-token (decode) queries can occupy the whole GPU, at
     * the cost of a small partial-result reduction pass.
     */
    FlashDecode,
    /**
     * Per-call selection: lower with whichever concrete backend the
     * cost model predicts fastest for the call's shape — the
     * shape-aware dispatch the paper's characterization motivates.
     */
    Auto,
};

/** Dimensions of a (possibly grouped, possibly 3-D) convolution. */
struct ConvAttrs
{
    std::int64_t batch = 1;
    std::int64_t inChannels = 0;
    std::int64_t outChannels = 0;
    std::int64_t inH = 0;
    std::int64_t inW = 0;
    /** Temporal extent for Conv3D; 1 for Conv2D. */
    std::int64_t inD = 1;
    std::int64_t kernelH = 3;
    std::int64_t kernelW = 3;
    /** Temporal kernel extent for Conv3D; 1 for Conv2D. */
    std::int64_t kernelD = 1;
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::int64_t groups = 1;
    bool hasBias = true;

    // Same-padding semantics: a stride-s conv over n rows emits
    // ceil(n / s) outputs. The builder additionally requires exact
    // divisibility, so rounding up only matters for hand-built attrs
    // (where truncation would silently shrink the output grid).
    std::int64_t outH() const { return (inH + strideH - 1) / strideH; }
    std::int64_t outW() const { return (inW + strideW - 1) / strideW; }
    std::int64_t outD() const { return inD; }
};

/** Dimensions of a (batched-rows) fully connected layer. */
struct LinearAttrs
{
    /** Number of rows fed through the layer (batch * positions). */
    std::int64_t rows = 0;
    std::int64_t inFeatures = 0;
    std::int64_t outFeatures = 0;
    bool hasBias = true;
};

/** Dimensions of a weightless batched matrix multiply. */
struct MatmulAttrs
{
    std::int64_t batch = 1;
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
};

/**
 * Dimensions of one fused attention call: softmax(Q K^T) V.
 *
 * Projections (Wq/Wk/Wv/Wo) are separate Linear ops in model code;
 * this op covers the two batched matmuls and the softmax between them.
 */
struct AttentionAttrs
{
    AttentionKind kind = AttentionKind::SelfSpatial;
    std::int64_t batch = 1;
    std::int64_t heads = 1;
    std::int64_t seqQ = 0;
    std::int64_t seqKv = 0;
    std::int64_t headDim = 0;
    bool causal = false;

    /**
     * Stride in elements between consecutive sequence positions of
     * Q/K/V in the backing tensor. For spatial attention this equals
     * the feature dimension (rows are contiguous); temporal attention
     * views the video tensor with frame stride H*W, which is the
     * locality hazard the paper measures (Fig. 12).
     */
    std::int64_t seqStrideElems = 0;

    /**
     * Stride in elements between consecutive head-dim features of one
     * sequence position. 1 for the contiguous (channels-last) rows of
     * spatial/causal attention. Temporal attention attends over the
     * frame axis of the conv-native [B, C, F, H, W] tensor, so its
     * feature axis (C) is strided by F*H*W: every element occupies its
     * own cache sector, inflating DRAM traffic and collapsing L1 reuse
     * (paper Figs. 11-12).
     */
    std::int64_t featureStrideElems = 1;

    std::int64_t modelDim() const { return heads * headDim; }

    /**
     * DRAM over-fetch factor for reading one Q/K/V element through
     * sectors of the given size: min(featureStride, sector/element).
     */
    double strideWasteFactor(int sector_bytes,
                             std::size_t elem_bytes) const
    {
        const double per_sector =
            static_cast<double>(sector_bytes) /
            static_cast<double>(elem_bytes);
        const double s = static_cast<double>(featureStrideElems);
        return s <= 1.0 ? 1.0 : (s < per_sector ? s : per_sector);
    }
};

/** Dimensions of a normalization layer (group or layer norm). */
struct NormAttrs
{
    /** Total elements normalized. */
    std::int64_t numel = 0;
    /** Channel/feature count carrying affine parameters. */
    std::int64_t channels = 0;
    /** Number of groups (1 for LayerNorm). */
    std::int64_t groups = 1;
};

/** Dimensions of a standalone softmax (outside fused attention). */
struct SoftmaxAttrs
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
};

/** A pointwise operator over a tensor. */
struct ElemAttrs
{
    std::int64_t numel = 0;
    /** Number of input tensors read (1 = unary, 2 = binary, ...). */
    int arity = 1;
    /** FLOPs performed per output element (e.g. GELU ~ 8). */
    double flopsPerElement = 1.0;
    /** Label for reports, e.g. "silu", "add". */
    std::string label = "elementwise";
};

/** An embedding-table lookup. */
struct EmbeddingAttrs
{
    std::int64_t tokens = 0;
    std::int64_t dim = 0;
    std::int64_t vocab = 0;
};

/** Nearest/bilinear resampling of a feature map. */
struct ResampleAttrs
{
    std::int64_t numelIn = 0;
    std::int64_t numelOut = 0;
};

/** A device-to-device copy (e.g. permute + contiguous). */
struct CopyAttrs
{
    std::int64_t bytes = 0;
};

/** Attribute payload, discriminated by Op::kind. */
using OpAttrs = std::variant<ConvAttrs, LinearAttrs, MatmulAttrs,
                             AttentionAttrs, NormAttrs, SoftmaxAttrs,
                             ElemAttrs, EmbeddingAttrs, ResampleAttrs,
                             CopyAttrs>;

/**
 * One executed operator instance in a trace.
 */
struct Op
{
    OpKind kind = OpKind::Elementwise;
    /** Dotted module path, e.g. "unet.down0.attn.self". */
    std::string scope;
    OpAttrs attrs;
    DType dtype = DType::F16;
    /**
     * Replication count: the op executes this many times with identical
     * shapes (used to fold identical denoising iterations).
     */
    std::int64_t repeat = 1;

    /** Convenience accessor; throws on kind mismatch. */
    template <typename T>
    const T&
    as() const
    {
        return std::get<T>(attrs);
    }
};

/** Reporting category of an operator. */
OpCategory opCategory(const Op& op);

/** Human-readable category name (matches the paper's legend). */
std::string opCategoryName(OpCategory c);

/** Human-readable op kind name. */
std::string opKindName(OpKind k);

/** Human-readable attention kind name. */
std::string attentionKindName(AttentionKind k);

/** Human-readable attention backend name. */
std::string attentionBackendName(AttentionBackend b);

/** Number of trainable parameters the operator's weights contribute. */
std::int64_t opParamCount(const Op& op);

/** All reporting categories in display order. */
const std::vector<OpCategory>& allCategories();

} // namespace mmgen::graph

#endif // MMGEN_GRAPH_OP_HH
