#include "op.hh"

#include "util/logging.hh"

namespace mmgen::graph {

OpCategory
opCategory(const Op& op)
{
    switch (op.kind) {
      case OpKind::Attention:
        return OpCategory::Attention;
      case OpKind::Conv2D:
      case OpKind::Conv3D:
        return OpCategory::Convolution;
      case OpKind::Linear:
      case OpKind::Matmul:
        return OpCategory::Linear;
      case OpKind::GroupNorm:
        return OpCategory::GroupNorm;
      case OpKind::LayerNorm:
        return OpCategory::OtherNorm;
      case OpKind::Softmax:
      case OpKind::Elementwise:
        return OpCategory::Elementwise;
      case OpKind::Embedding:
      case OpKind::Upsample:
      case OpKind::Downsample:
      case OpKind::Copy:
        return OpCategory::Memory;
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

std::string
opCategoryName(OpCategory c)
{
    switch (c) {
      case OpCategory::Attention:
        return "Attention";
      case OpCategory::Convolution:
        return "Convolution";
      case OpCategory::Linear:
        return "Linear";
      case OpCategory::GroupNorm:
        return "GroupNorm";
      case OpCategory::OtherNorm:
        return "LayerNorm";
      case OpCategory::Elementwise:
        return "Elementwise";
      case OpCategory::Memory:
        return "Memory";
    }
    MMGEN_ASSERT(false, "unknown category");
}

std::string
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Conv2D:
        return "conv2d";
      case OpKind::Conv3D:
        return "conv3d";
      case OpKind::Linear:
        return "linear";
      case OpKind::Matmul:
        return "matmul";
      case OpKind::Attention:
        return "attention";
      case OpKind::GroupNorm:
        return "group_norm";
      case OpKind::LayerNorm:
        return "layer_norm";
      case OpKind::Softmax:
        return "softmax";
      case OpKind::Elementwise:
        return "elementwise";
      case OpKind::Embedding:
        return "embedding";
      case OpKind::Upsample:
        return "upsample";
      case OpKind::Downsample:
        return "downsample";
      case OpKind::Copy:
        return "copy";
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

std::string
attentionKindName(AttentionKind k)
{
    switch (k) {
      case AttentionKind::SelfSpatial:
        return "self_spatial";
      case AttentionKind::CrossText:
        return "cross_text";
      case AttentionKind::Temporal:
        return "temporal";
      case AttentionKind::CausalSelf:
        return "causal_self";
    }
    MMGEN_ASSERT(false, "unknown attention kind");
}

std::string
attentionBackendName(AttentionBackend b)
{
    switch (b) {
      case AttentionBackend::Baseline:
        return "baseline";
      case AttentionBackend::Flash:
        return "flash";
      case AttentionBackend::FlashDecode:
        return "flash_decode";
      case AttentionBackend::Auto:
        return "auto";
    }
    MMGEN_ASSERT(false, "unknown attention backend");
}

std::int64_t
opParamCount(const Op& op)
{
    switch (op.kind) {
      case OpKind::Conv2D:
      case OpKind::Conv3D: {
        const auto& a = op.as<ConvAttrs>();
        std::int64_t w = a.kernelH * a.kernelW * a.kernelD *
                         (a.inChannels / a.groups) * a.outChannels;
        if (a.hasBias)
            w += a.outChannels;
        return w;
      }
      case OpKind::Linear: {
        const auto& a = op.as<LinearAttrs>();
        std::int64_t w = a.inFeatures * a.outFeatures;
        if (a.hasBias)
            w += a.outFeatures;
        return w;
      }
      case OpKind::GroupNorm:
      case OpKind::LayerNorm: {
        const auto& a = op.as<NormAttrs>();
        return 2 * a.channels;
      }
      case OpKind::Embedding: {
        const auto& a = op.as<EmbeddingAttrs>();
        return a.vocab * a.dim;
      }
      case OpKind::Matmul:
      case OpKind::Attention:
      case OpKind::Softmax:
      case OpKind::Elementwise:
      case OpKind::Upsample:
      case OpKind::Downsample:
      case OpKind::Copy:
        return 0;
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

const std::vector<OpCategory>&
allCategories()
{
    static const std::vector<OpCategory> cats = {
        OpCategory::Attention,   OpCategory::Convolution,
        OpCategory::Linear,      OpCategory::GroupNorm,
        OpCategory::OtherNorm,   OpCategory::Elementwise,
        OpCategory::Memory,
    };
    return cats;
}

} // namespace mmgen::graph
