/**
 * @file
 * GraphBuilder: the API model code uses to emit operator traces.
 *
 * Builder methods perform shape inference — they take symbolic input
 * tensors, append the executed Op to the trace, and return the output
 * tensor. Scopes mirror the forward-hook annotation scheme the paper's
 * profiling framework uses (Section III, "Tools"): every op carries a
 * dotted module path such as "unet.down0.block1.attn.self".
 */

#ifndef MMGEN_GRAPH_BUILDER_HH
#define MMGEN_GRAPH_BUILDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/trace.hh"
#include "tensor/tensor_desc.hh"

namespace mmgen::graph {

/**
 * Appends shape-inferred operators to a Trace under nested scopes.
 */
class GraphBuilder
{
  public:
    /** Build into the given trace; default element type for all ops. */
    explicit GraphBuilder(Trace& trace, DType dtype = DType::F16);

    /** RAII scope: pushes a path segment for the lifetime of the guard. */
    class Scope
    {
      public:
        Scope(GraphBuilder& builder, std::string name);
        ~Scope();
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

      private:
        GraphBuilder& builder;
    };

    /** Open a named scope (use as: auto s = b.scope("unet");). */
    [[nodiscard]] Scope scope(std::string name);

    /** Current dotted scope path. */
    std::string currentScope() const;

    /** Default dtype ops are emitted with. */
    DType dtype() const { return dtype_; }

    /**
     * Observer invoked after every emitted op (the analogue of the
     * forward-function hooks the paper's profiling framework inserts,
     * Section III "Tools"). Multiple hooks run in registration order.
     */
    using OpHook = std::function<void(const Op&)>;

    /** Register an emission hook for the builder's lifetime. */
    void onOp(OpHook hook);

    // ----- convolution ---------------------------------------------------

    /** 2-D convolution over NCHW input; 'same' padding semantics. */
    TensorDesc conv2d(const TensorDesc& x, std::int64_t out_channels,
                      std::int64_t kernel = 3, std::int64_t stride = 1,
                      std::int64_t groups = 1);

    /** 3-D convolution over NCDHW input (temporal kernels in TTV). */
    TensorDesc conv3d(const TensorDesc& x, std::int64_t out_channels,
                      std::int64_t kernel_d, std::int64_t kernel_hw,
                      std::int64_t stride_hw = 1);

    // ----- dense ---------------------------------------------------------

    /** Fully connected layer over the last dimension. */
    TensorDesc linear(const TensorDesc& x, std::int64_t out_features,
                      bool bias = true);

    /** Raw batched matmul [b, m, k] x [b, k, n]. */
    TensorDesc matmul(std::int64_t batch, std::int64_t m, std::int64_t n,
                      std::int64_t k);

    // ----- attention -----------------------------------------------------

    /**
     * Fused scaled-dot-product attention call.
     *
     * @param kind        attention flavour (spatial/cross/temporal/causal)
     * @param batch       effective batch (includes folded dims)
     * @param heads       attention heads
     * @param seq_q       query sequence length
     * @param seq_kv      key/value sequence length
     * @param head_dim    per-head feature size
     * @param seq_stride  elements between consecutive sequence positions
     *                    in the backing tensor (locality model input);
     *                    0 means contiguous rows (heads * head_dim)
     * @param causal      apply a causal mask
     * @param feature_stride  elements between consecutive head-dim
     *                    features; >1 models attending over a
     *                    non-innermost axis (temporal attention)
     * @return            output tensor [batch, seq_q, heads * head_dim]
     */
    TensorDesc attention(AttentionKind kind, std::int64_t batch,
                         std::int64_t heads, std::int64_t seq_q,
                         std::int64_t seq_kv, std::int64_t head_dim,
                         std::int64_t seq_stride = 0, bool causal = false,
                         std::int64_t feature_stride = 1);

    // ----- normalization / pointwise --------------------------------------

    /** GroupNorm over NCHW/NCDHW input. */
    TensorDesc groupNorm(const TensorDesc& x, std::int64_t groups = 32);

    /** LayerNorm over the last dimension. */
    TensorDesc layerNorm(const TensorDesc& x);

    /** Standalone softmax over the last dimension. */
    TensorDesc softmax(const TensorDesc& x);

    /** Unary activation (silu/gelu/relu...) with a FLOP weight. */
    TensorDesc activation(const TensorDesc& x, const std::string& label,
                          double flops_per_element);

    /** SiLU activation (diffusion UNets). */
    TensorDesc silu(const TensorDesc& x);

    /** GELU activation (transformer FFNs). */
    TensorDesc gelu(const TensorDesc& x);

    /** Binary elementwise op (residual add, scale). */
    TensorDesc binary(const TensorDesc& x, const std::string& label);

    // ----- memory / resampling -------------------------------------------

    /** Embedding-table lookup producing [tokens, dim]. */
    TensorDesc embedding(std::int64_t tokens, std::int64_t dim,
                         std::int64_t vocab);

    /** Nearest-neighbour 2x upsample of the last two (spatial) dims. */
    TensorDesc upsample2x(const TensorDesc& x);

    /** 2x average-pool downsample of the last two (spatial) dims. */
    TensorDesc downsample2x(const TensorDesc& x);

    /** Explicit device copy (e.g. permute + contiguous). */
    TensorDesc copy(const TensorDesc& x);

  private:
    /** Append an op at the current scope. */
    void emit(OpKind kind, OpAttrs attrs);

    Trace& trace;
    DType dtype_;
    std::vector<std::string> scopeStack;
    std::vector<OpHook> hooks;
};

} // namespace mmgen::graph

#endif // MMGEN_GRAPH_BUILDER_HH
