#include "trace.hh"

namespace mmgen::graph {

void
Trace::append(Op op)
{
    ops_.push_back(std::move(op));
}

std::int64_t
Trace::totalParams() const
{
    std::int64_t total = 0;
    for (const auto& op : ops_)
        total += opParamCount(op);
    return total;
}

void
Trace::clear()
{
    ops_.clear();
}

} // namespace mmgen::graph
