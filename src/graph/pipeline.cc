#include "pipeline.hh"

#include <algorithm>
#include <type_traits>
#include <variant>

#include "util/hash.hh"
#include "util/logging.hh"

namespace mmgen::graph {

std::string
modelClassName(ModelClass c)
{
    switch (c) {
      case ModelClass::LLM:
        return "LLM";
      case ModelClass::DiffusionPixel:
        return "Diffusion (Pixel)";
      case ModelClass::DiffusionLatent:
        return "Diffusion (Latent)";
      case ModelClass::TransformerTTI:
        return "Transformer TTI";
      case ModelClass::DiffusionTTV:
        return "Diffusion TTV";
      case ModelClass::TransformerTTV:
        return "Transformer TTV";
    }
    MMGEN_ASSERT(false, "unknown model class");
}

bool
isDiffusionClass(ModelClass c)
{
    return c == ModelClass::DiffusionPixel ||
           c == ModelClass::DiffusionLatent ||
           c == ModelClass::DiffusionTTV;
}

bool
isVideoClass(ModelClass c)
{
    return c == ModelClass::DiffusionTTV ||
           c == ModelClass::TransformerTTV;
}

std::int64_t
Pipeline::totalParams() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (stages[i].reusesWeights)
            continue;
        const Trace t = traceStage(i, stages[i].iterations - 1);
        total += t.totalParams();
    }
    return total;
}

namespace {

/** Fold every field of one attrs struct into the hash. */
void
hashAttrs(HashBuilder& h, const OpAttrs& attrs)
{
    std::visit(
        [&h](const auto& a) {
            using T = std::decay_t<decltype(a)>;
            if constexpr (std::is_same_v<T, ConvAttrs>) {
                h.mix(a.batch).mix(a.inChannels).mix(a.outChannels);
                h.mix(a.inH).mix(a.inW).mix(a.inD);
                h.mix(a.kernelH).mix(a.kernelW).mix(a.kernelD);
                h.mix(a.strideH).mix(a.strideW).mix(a.groups);
                h.mix(a.hasBias);
            } else if constexpr (std::is_same_v<T, LinearAttrs>) {
                h.mix(a.rows).mix(a.inFeatures).mix(a.outFeatures);
                h.mix(a.hasBias);
            } else if constexpr (std::is_same_v<T, MatmulAttrs>) {
                h.mix(a.batch).mix(a.m).mix(a.n).mix(a.k);
            } else if constexpr (std::is_same_v<T, AttentionAttrs>) {
                h.mix(static_cast<std::uint64_t>(a.kind));
                h.mix(a.batch).mix(a.heads).mix(a.seqQ).mix(a.seqKv);
                h.mix(a.headDim).mix(a.causal);
                h.mix(a.seqStrideElems).mix(a.featureStrideElems);
            } else if constexpr (std::is_same_v<T, NormAttrs>) {
                h.mix(a.numel).mix(a.channels).mix(a.groups);
            } else if constexpr (std::is_same_v<T, SoftmaxAttrs>) {
                h.mix(a.rows).mix(a.cols);
            } else if constexpr (std::is_same_v<T, ElemAttrs>) {
                h.mix(a.numel).mix(a.arity).mix(a.flopsPerElement);
                h.mix(std::string_view(a.label));
            } else if constexpr (std::is_same_v<T, EmbeddingAttrs>) {
                h.mix(a.tokens).mix(a.dim).mix(a.vocab);
            } else if constexpr (std::is_same_v<T, ResampleAttrs>) {
                h.mix(a.numelIn).mix(a.numelOut);
            } else if constexpr (std::is_same_v<T, CopyAttrs>) {
                h.mix(a.bytes);
            }
        },
        attrs);
}

/** Fold one traced op instance into the hash. */
void
hashOp(HashBuilder& h, const Op& op)
{
    h.mix(static_cast<std::uint64_t>(op.kind));
    h.mix(std::string_view(op.scope));
    h.mix(static_cast<std::uint64_t>(op.dtype));
    h.mix(op.repeat);
    hashAttrs(h, op.attrs);
}

/**
 * Iterations whose traces enter the fingerprint. Shape-invariant
 * stages are only ever traced at iteration 0 (the profiler scales
 * that trace), so hashing iteration 0 covers the profile inputs
 * exactly; per-iteration-shape stages sample first/middle/last, the
 * same probe set the structural verifier uses.
 */
std::vector<std::int64_t>
fingerprintIterations(const Stage& stage)
{
    if (!stage.perIterationShapes || stage.iterations <= 1)
        return {0};
    std::vector<std::int64_t> iters = {0, (stage.iterations - 1) / 2,
                                       stage.iterations - 1};
    iters.erase(std::unique(iters.begin(), iters.end()), iters.end());
    return iters;
}

} // namespace

std::uint64_t
Pipeline::fingerprint() const
{
    HashBuilder h;
    h.mix(std::string_view(name));
    h.mix(static_cast<std::uint64_t>(klass));
    h.mix(static_cast<std::uint64_t>(dtype));
    h.mix(static_cast<std::int64_t>(stages.size()));
    for (std::size_t si = 0; si < stages.size(); ++si) {
        const Stage& stage = stages[si];
        h.mix(std::string_view(stage.name));
        h.mix(stage.iterations);
        h.mix(stage.perIterationShapes);
        h.mix(stage.reusesWeights);
        if (stage.iterations <= 0 || !stage.emit)
            continue; // structurally invalid; the verifier flags it
        for (const std::int64_t iter : fingerprintIterations(stage)) {
            const Trace trace = traceStage(si, iter);
            h.mix(iter);
            h.mix(static_cast<std::int64_t>(trace.size()));
            for (const Op& op : trace.ops())
                hashOp(h, op);
        }
    }
    return h.digest();
}

Trace
Pipeline::traceStage(std::size_t stage_idx, std::int64_t iter) const
{
    MMGEN_CHECK(stage_idx < stages.size(),
                "stage index " << stage_idx << " out of range");
    const Stage& stage = stages[stage_idx];
    MMGEN_CHECK(iter >= 0 && iter < stage.iterations,
                "iteration " << iter << " out of [0, "
                             << stage.iterations << ")");
    MMGEN_CHECK(static_cast<bool>(stage.emit),
                "stage '" << stage.name << "' has no emitter");
    Trace trace;
    GraphBuilder builder(trace, dtype);
    auto s = builder.scope(stage.name);
    stage.emit(builder, iter);
    return trace;
}

} // namespace mmgen::graph
