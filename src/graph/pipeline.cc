#include "pipeline.hh"

#include "util/logging.hh"

namespace mmgen::graph {

std::string
modelClassName(ModelClass c)
{
    switch (c) {
      case ModelClass::LLM:
        return "LLM";
      case ModelClass::DiffusionPixel:
        return "Diffusion (Pixel)";
      case ModelClass::DiffusionLatent:
        return "Diffusion (Latent)";
      case ModelClass::TransformerTTI:
        return "Transformer TTI";
      case ModelClass::DiffusionTTV:
        return "Diffusion TTV";
      case ModelClass::TransformerTTV:
        return "Transformer TTV";
    }
    MMGEN_ASSERT(false, "unknown model class");
}

bool
isDiffusionClass(ModelClass c)
{
    return c == ModelClass::DiffusionPixel ||
           c == ModelClass::DiffusionLatent ||
           c == ModelClass::DiffusionTTV;
}

bool
isVideoClass(ModelClass c)
{
    return c == ModelClass::DiffusionTTV ||
           c == ModelClass::TransformerTTV;
}

std::int64_t
Pipeline::totalParams() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < stages.size(); ++i) {
        if (stages[i].reusesWeights)
            continue;
        const Trace t = traceStage(i, stages[i].iterations - 1);
        total += t.totalParams();
    }
    return total;
}

Trace
Pipeline::traceStage(std::size_t stage_idx, std::int64_t iter) const
{
    MMGEN_CHECK(stage_idx < stages.size(),
                "stage index " << stage_idx << " out of range");
    const Stage& stage = stages[stage_idx];
    MMGEN_CHECK(iter >= 0 && iter < stage.iterations,
                "iteration " << iter << " out of [0, "
                             << stage.iterations << ")");
    MMGEN_CHECK(static_cast<bool>(stage.emit),
                "stage '" << stage.name << "' has no emitter");
    Trace trace;
    GraphBuilder builder(trace, dtype);
    auto s = builder.scope(stage.name);
    stage.emit(builder, iter);
    return trace;
}

} // namespace mmgen::graph
