/**
 * @file
 * Execution traces: ordered operator instances from one forward pass.
 */

#ifndef MMGEN_GRAPH_TRACE_HH
#define MMGEN_GRAPH_TRACE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/op.hh"

namespace mmgen::graph {

/**
 * An ordered list of executed operators.
 *
 * The trace is what the profiler costs and what the analytics modules
 * mine (e.g. the per-attention-call sequence-length series of Fig. 7
 * follows trace order).
 */
class Trace
{
  public:
    /** Append one operator instance. */
    void append(Op op);

    /** All operators in execution order. */
    std::span<const Op> ops() const { return ops_; }

    /** Number of operator instances (repeat counts not expanded). */
    std::size_t size() const { return ops_.size(); }

    bool empty() const { return ops_.empty(); }

    /**
     * Total trainable parameters across the trace. Each op instance
     * contributes its own weights; callers must trace each weight-owning
     * module exactly once (see Pipeline::totalParams).
     */
    std::int64_t totalParams() const;

    /** Remove all ops. */
    void clear();

  private:
    std::vector<Op> ops_;
};

} // namespace mmgen::graph

#endif // MMGEN_GRAPH_TRACE_HH
