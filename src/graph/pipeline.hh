/**
 * @file
 * Multi-stage inference pipelines.
 *
 * Unlike LLMs, TTI/TTV models are several independently trained
 * components stitched together at inference time (paper Fig. 2):
 * text encoder -> diffusion UNet (looped over denoising steps) ->
 * super-resolution / VAE decoder, or encoder -> autoregressive decoder
 * -> image detokenizer. A Pipeline captures that structure: an ordered
 * list of stages, each with an iteration count and an emitter that
 * appends one iteration's operators to a trace.
 */

#ifndef MMGEN_GRAPH_PIPELINE_HH
#define MMGEN_GRAPH_PIPELINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/builder.hh"

namespace mmgen::graph {

/** Architectural family of a model (paper Section II taxonomy). */
enum class ModelClass : std::uint8_t {
    LLM,
    DiffusionPixel,
    DiffusionLatent,
    TransformerTTI,
    DiffusionTTV,
    TransformerTTV,
};

/** Human-readable model class name. */
std::string modelClassName(ModelClass c);

/** True for pixel- or latent-space diffusion TTI/TTV models. */
bool isDiffusionClass(ModelClass c);

/** True for TTV model classes. */
bool isVideoClass(ModelClass c);

/**
 * One pipeline stage, e.g. "text_encoder" or "unet".
 */
struct Stage
{
    std::string name;

    /** How many times the stage body executes (denoise/decode steps). */
    std::int64_t iterations = 1;

    /**
     * When false, every iteration has identical shapes and the engine
     * may trace once and scale costs (diffusion denoising). When true,
     * shapes depend on the iteration index (autoregressive decode) and
     * the engine traces every iteration.
     */
    bool perIterationShapes = false;

    /**
     * True when this stage executes weights already owned by an
     * earlier stage (an LLM's decode phase re-runs the prefill
     * stack); such stages are skipped when counting parameters.
     */
    bool reusesWeights = false;

    /** Emit one iteration's operators; iter is in [0, iterations). */
    std::function<void(GraphBuilder&, std::int64_t iter)> emit;
};

/**
 * A complete model inference pipeline.
 */
struct Pipeline
{
    std::string name;
    ModelClass klass = ModelClass::LLM;
    std::vector<Stage> stages;

    /** Element type every stage is traced with (weights/activations). */
    DType dtype = DType::F16;

    /**
     * Total trainable parameters of the model: each stage is traced
     * exactly once (at its final iteration, which for autoregressive
     * decoders exercises every layer) and weight-owning ops summed.
     */
    std::int64_t totalParams() const;

    /**
     * Stable structural hash of the pipeline: name, class, dtype, and
     * for every stage its metadata plus the full op stream (kind,
     * scope, dtype, repeat, every attribute field) of sampled
     * iterations — iteration 0 for shape-invariant stages (the only
     * iteration the profiler traces) and first/middle/last for
     * per-iteration-shape stages, together with the iteration count.
     * Emitters must be pure functions of (captured config, iter),
     * which every model in this repo satisfies; under that contract
     * equal fingerprints mean equal profiles. This is the
     * `runtime::ProfileCache` key material and is cheap relative to a
     * profile (it never traces more than three iterations per stage).
     */
    std::uint64_t fingerprint() const;

    /** Trace one iteration of one stage (by index) into a fresh trace. */
    Trace traceStage(std::size_t stage_idx, std::int64_t iter) const;
};

} // namespace mmgen::graph

#endif // MMGEN_GRAPH_PIPELINE_HH
