#include "model_suite.hh"

#include "models/imagen.hh"
#include "models/llama.hh"
#include "models/make_a_video.hh"
#include "models/muse.hh"
#include "models/parti.hh"
#include "models/phenaki.hh"
#include "models/prod_image.hh"
#include "models/stable_diffusion.hh"
#include "util/logging.hh"

namespace mmgen::models {

const std::vector<ModelId>&
allModels()
{
    static const std::vector<ModelId> ids = {
        ModelId::LLaMA,      ModelId::Imagen, ModelId::StableDiffusion,
        ModelId::Muse,       ModelId::Parti,  ModelId::ProdImage,
        ModelId::MakeAVideo, ModelId::Phenaki,
    };
    return ids;
}

const std::vector<ModelId>&
imageVideoModels()
{
    static const std::vector<ModelId> ids = {
        ModelId::Imagen,    ModelId::StableDiffusion, ModelId::Muse,
        ModelId::Parti,     ModelId::ProdImage,       ModelId::MakeAVideo,
        ModelId::Phenaki,
    };
    return ids;
}

std::string
modelName(ModelId id)
{
    switch (id) {
      case ModelId::LLaMA:
        return "LLaMA";
      case ModelId::Imagen:
        return "Imagen";
      case ModelId::StableDiffusion:
        return "StableDiffusion";
      case ModelId::Muse:
        return "Muse";
      case ModelId::Parti:
        return "Parti";
      case ModelId::ProdImage:
        return "ProdImage";
      case ModelId::MakeAVideo:
        return "MakeAVideo";
      case ModelId::Phenaki:
        return "Phenaki";
    }
    MMGEN_ASSERT(false, "unknown model id");
}

graph::Pipeline
buildModel(ModelId id)
{
    switch (id) {
      case ModelId::LLaMA:
        return buildLlama();
      case ModelId::Imagen:
        return buildImagen();
      case ModelId::StableDiffusion:
        return buildStableDiffusion();
      case ModelId::Muse:
        return buildMuse();
      case ModelId::Parti:
        return buildParti();
      case ModelId::ProdImage:
        return buildProdImage();
      case ModelId::MakeAVideo:
        return buildMakeAVideo();
      case ModelId::Phenaki:
        return buildPhenaki();
    }
    MMGEN_ASSERT(false, "unknown model id");
}

} // namespace mmgen::models
