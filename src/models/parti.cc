#include "parti.hh"

#include "util/logging.hh"

namespace mmgen::models {

PartiConfig::PartiConfig()
{
    encoder.layers = 16;
    encoder.dim = 4096;
    encoder.heads = 32;
    encoder.ffnMult = 4.0;
    encoder.causal = false;
    encoder.crossAttention = false;

    decoder.layers = 80;
    decoder.dim = 4096;
    decoder.heads = 32;
    decoder.ffnMult = 4.0;
    decoder.causal = true;
    decoder.crossAttention = true;
    decoder.contextLen = textLen;
}

graph::Pipeline
buildParti(const PartiConfig& cfg)
{
    graph::Pipeline p;
    p.name = "Parti";
    p.klass = graph::ModelClass::TransformerTTI;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        auto s = b.scope("text_encoder");
        b.embedding(cfg.textLen, cfg.encoder.dim, cfg.textVocab);
        const TensorDesc x({1, cfg.textLen, cfg.encoder.dim}, b.dtype());
        transformerStack(b, cfg.encoder, x);
    };
    p.stages.push_back(std::move(text));

    graph::Stage decode;
    decode.name = "decode";
    decode.iterations = cfg.imageTokens();
    decode.perIterationShapes = true;
    decode.emit = [cfg](graph::GraphBuilder& b, std::int64_t iter) {
        b.embedding(1, cfg.decoder.dim, cfg.tokenVocab);
        const TensorDesc out =
            transformerDecodeStep(b, cfg.decoder, 1, iter + 1);
        lmHead(b, out, cfg.tokenVocab);
    };
    p.stages.push_back(std::move(decode));

    graph::Stage detok;
    detok.name = "detokenizer";
    detok.iterations = 1;
    detok.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        imageDecoder(b, cfg.detokenizer, 1, cfg.imageGrid,
                     cfg.imageGrid);
    };
    p.stages.push_back(std::move(detok));

    return p;
}

} // namespace mmgen::models
