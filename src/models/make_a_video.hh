/**
 * @file
 * Make-A-Video: the diffusion-based text-to-video model of the suite.
 *
 * A pretrained TTI diffusion backbone is extended to video: pseudo-3D
 * convolutions (1x3x3 spatial followed by 3x1x1 temporal) replace the
 * UNet convolutions and a Temporal Attention layer follows every
 * Spatial Attention layer (paper Fig. 3). Temporal attention attends
 * over the frame axis of the conv-native [B, C, F, H, W] tensor, so
 * its effective sequence length is the frame count and its Q/K/V view
 * is fully strided — the source of the paper's Fig. 11/12 findings.
 * The cascade finishes with a temporal frame-interpolation network and
 * per-frame spatial super-resolution.
 */

#ifndef MMGEN_MODELS_MAKE_A_VIDEO_HH
#define MMGEN_MODELS_MAKE_A_VIDEO_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Make-A-Video-style configuration. */
struct MakeAVideoConfig
{
    TextEncoderConfig encoder = {/*layers=*/24, /*dim=*/1024,
                                 /*heads=*/16, /*seqLen=*/77,
                                 /*vocab=*/49408};

    /** Spatio-temporal base UNet at 64x64, 16 frames. */
    UNetConfig base;
    std::int64_t baseSize = 64;
    std::int64_t baseSteps = 50;

    /** Temporal frame-interpolation UNet (16 -> 32 frames). */
    UNetConfig interp;
    std::int64_t interpFrames = 32;
    std::int64_t interpSteps = 20;

    /** Per-frame spatial super-resolution UNet to 256. */
    UNetConfig sr;
    std::int64_t srSize = 256;
    std::int64_t srSteps = 20;

    MakeAVideoConfig();

    std::int64_t frames() const { return base.frames; }
};

/** Build the Make-A-Video inference pipeline. */
graph::Pipeline
buildMakeAVideo(const MakeAVideoConfig& cfg = MakeAVideoConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_MAKE_A_VIDEO_HH
