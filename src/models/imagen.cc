#include "imagen.hh"

#include "util/logging.hh"

namespace mmgen::models {

ImagenConfig::ImagenConfig()
{
    // Base 64x64 UNet: attention at resolutions 32/16/8 (factors
    // 2/4/8), three res blocks per level (paper Table I).
    base.inChannels = 3;
    base.baseChannels = 512;
    base.channelMult = {1, 2, 3, 4};
    base.numResBlocks = 3;
    // Efficient UNet: capacity shifts to the low-resolution levels.
    base.resBlocksPerLevel = {1, 3, 4, 4};
    base.attnDownFactors = {2, 4, 8};
    base.crossAttnDownFactors = {2, 4, 8};
    base.attnHeads = 8;
    base.attnHeadDim = 64; // paper Table I: per-head channels 64
    base.textLen = t5.seqLen;
    base.embedDim = 512;

    // SR1 (64 -> 256): efficient UNet, cross-attention at the deepest
    // levels only.
    sr1.inChannels = 3;
    sr1.baseChannels = 128;
    sr1.channelMult = {1, 2, 4, 8};
    sr1.numResBlocks = 2;
    sr1.attnDownFactors = {};
    sr1.midBlockAttention = false;
    sr1.crossAttnDownFactors = {8};
    sr1.attnHeads = 8;
    sr1.textLen = t5.seqLen;
    sr1.embedDim = 512;

    // SR2 (256 -> 1024): convolution only.
    sr2.inChannels = 3;
    sr2.baseChannels = 64;
    sr2.channelMult = {1, 2, 4, 8};
    sr2.numResBlocks = 2;
    sr2.attnDownFactors = {};
    sr2.midBlockAttention = false;
    sr2.crossAttnDownFactors = {};
    sr2.attnHeads = 8;
    sr2.textLen = t5.seqLen;
    sr2.embedDim = 512;
}

namespace {

/** Append one diffusion stage driving a UNet at a fixed extent. */
void
addDiffusionStage(graph::Pipeline& p, const std::string& name,
                  const UNetConfig& unet, std::int64_t extent,
                  std::int64_t steps)
{
    graph::Stage stage;
    stage.name = name;
    stage.iterations = steps;
    stage.emit = [unet, extent](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, unet, extent, extent);
    };
    p.stages.push_back(std::move(stage));
}

} // namespace

graph::Pipeline
buildImagen(const ImagenConfig& cfg)
{
    graph::Pipeline p;
    p.name = "Imagen";
    p.klass = graph::ModelClass::DiffusionPixel;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.t5);
    };
    p.stages.push_back(std::move(text));

    addDiffusionStage(p, "base_unet", cfg.base, cfg.baseSize,
                      cfg.baseSteps);

    // The SR stages attend to the upsampled conditioning image; the
    // UNet runs at the *output* resolution of each stage.
    addDiffusionStage(p, "sr1_unet", cfg.sr1, cfg.sr1Size, cfg.sr1Steps);
    addDiffusionStage(p, "sr2_unet", cfg.sr2, cfg.sr2Size, cfg.sr2Steps);

    return p;
}

} // namespace mmgen::models
