#include "prod_image.hh"

#include "util/logging.hh"

namespace mmgen::models {

ProdImageConfig::ProdImageConfig()
{
    unet.inChannels = 8;
    unet.baseChannels = 384;
    unet.channelMult = {1, 2, 4, 4};
    unet.numResBlocks = 2;
    // Attention only at the deeper levels: the 96x96 latent makes
    // full-resolution attention prohibitively expensive.
    unet.attnDownFactors = {4, 8};
    unet.crossAttnDownFactors = {4, 8};
    unet.attnHeads = 8;
    unet.textLen = encoder.seqLen;
    unet.embedDim = encoder.dim;
}

graph::Pipeline
buildProdImage(const ProdImageConfig& cfg)
{
    MMGEN_CHECK(cfg.imageSize % cfg.latentScale == 0,
                "image size not divisible by latent scale");
    const std::int64_t latent = cfg.latentSize();

    graph::Pipeline p;
    p.name = "ProdImage";
    p.klass = graph::ModelClass::DiffusionLatent;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.encoder);
    };
    p.stages.push_back(std::move(text));

    graph::Stage denoise;
    denoise.name = "unet";
    denoise.iterations = cfg.denoiseSteps;
    denoise.emit = [cfg, latent](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, cfg.unet, latent, latent);
    };
    p.stages.push_back(std::move(denoise));

    graph::Stage decode;
    decode.name = "vae_decoder";
    decode.iterations = 1;
    decode.emit = [cfg, latent](graph::GraphBuilder& b, std::int64_t) {
        imageDecoder(b, cfg.vae, 1, latent, latent);
    };
    p.stages.push_back(std::move(decode));

    return p;
}

} // namespace mmgen::models
