#include "muse.hh"

#include "util/logging.hh"

namespace mmgen::models {

MuseConfig::MuseConfig()
{
    base.layers = 48;
    base.dim = 2048;
    base.heads = 8;
    base.ffnMult = 4.0;
    base.causal = false; // masked (bidirectional) prediction
    base.crossAttention = true;
    base.contextLen = t5.seqLen;

    superRes.layers = 8;
    superRes.dim = 1024;
    superRes.heads = 8;
    superRes.ffnMult = 4.0;
    superRes.causal = false;
    superRes.crossAttention = true;
    superRes.contextLen = t5.seqLen;
}

namespace {

/** One parallel-decoding refinement step over a full token grid. */
void
refinementStep(graph::GraphBuilder& b, const TransformerConfig& cfg,
               std::int64_t tokens, std::int64_t vocab)
{
    b.embedding(tokens, cfg.dim, vocab);
    const TensorDesc x({1, tokens, cfg.dim}, b.dtype());
    const TensorDesc out = transformerStack(b, cfg, x);
    lmHead(b, out, vocab);
}

} // namespace

graph::Pipeline
buildMuse(const MuseConfig& cfg)
{
    graph::Pipeline p;
    p.name = "Muse";
    p.klass = graph::ModelClass::TransformerTTI;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.t5);
    };
    p.stages.push_back(std::move(text));

    const std::int64_t base_tokens = cfg.baseGrid * cfg.baseGrid;
    graph::Stage base;
    base.name = "base_transformer";
    base.iterations = cfg.baseSteps;
    base.emit = [cfg, base_tokens](graph::GraphBuilder& b,
                                   std::int64_t) {
        refinementStep(b, cfg.base, base_tokens, cfg.tokenVocab);
    };
    p.stages.push_back(std::move(base));

    const std::int64_t sr_tokens = cfg.srGrid * cfg.srGrid;
    graph::Stage sr;
    sr.name = "superres_transformer";
    sr.iterations = cfg.srSteps;
    sr.emit = [cfg, sr_tokens](graph::GraphBuilder& b, std::int64_t) {
        refinementStep(b, cfg.superRes, sr_tokens, cfg.tokenVocab);
    };
    p.stages.push_back(std::move(sr));

    graph::Stage decode;
    decode.name = "vqgan_decoder";
    decode.iterations = 1;
    decode.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        imageDecoder(b, cfg.vqgan, 1, cfg.srGrid, cfg.srGrid);
    };
    p.stages.push_back(std::move(decode));

    return p;
}

} // namespace mmgen::models
