/**
 * @file
 * The eight-workload model suite of the paper (Section III), plus the
 * LLaMA-2 text-generation baseline.
 */

#ifndef MMGEN_MODELS_MODEL_SUITE_HH
#define MMGEN_MODELS_MODEL_SUITE_HH

#include <string>
#include <vector>

#include "graph/pipeline.hh"

namespace mmgen::models {

/** Identifiers for the models of the characterization suite. */
enum class ModelId : std::uint8_t {
    LLaMA,
    Imagen,
    StableDiffusion,
    Muse,
    Parti,
    ProdImage,
    MakeAVideo,
    Phenaki,
};

/** All suite models in the paper's presentation order. */
const std::vector<ModelId>& allModels();

/** The TTI/TTV subset (everything but LLaMA). */
const std::vector<ModelId>& imageVideoModels();

/** Display name matching the paper's tables. */
std::string modelName(ModelId id);

/** Build the default-configuration inference pipeline for a model. */
graph::Pipeline buildModel(ModelId id);

} // namespace mmgen::models

#endif // MMGEN_MODELS_MODEL_SUITE_HH
