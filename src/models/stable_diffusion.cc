#include "stable_diffusion.hh"

#include "util/logging.hh"

namespace mmgen::models {

StableDiffusionConfig::StableDiffusionConfig()
{
    unet.inChannels = 4;
    unet.baseChannels = 320;
    unet.channelMult = {1, 2, 4, 4};
    unet.numResBlocks = 2;
    unet.attnDownFactors = {1, 2, 4};
    unet.crossAttnDownFactors = {1, 2, 4};
    unet.attnHeads = 8;
    unet.textLen = clip.seqLen;
    unet.embedDim = clip.dim;
}

graph::Pipeline
buildStableDiffusion(const StableDiffusionConfig& cfg)
{
    MMGEN_CHECK(cfg.imageSize % cfg.latentScale == 0,
                "image size " << cfg.imageSize
                              << " not divisible by latent scale "
                              << cfg.latentScale);
    const std::int64_t latent = cfg.latentSize();
    const std::int64_t min_factor = 1LL
                                    << (cfg.unet.channelMult.size() - 1);
    MMGEN_CHECK(latent % min_factor == 0,
                "latent extent " << latent
                                 << " not divisible by the UNet depth");

    graph::Pipeline p;
    p.name = "StableDiffusion";
    p.klass = graph::ModelClass::DiffusionLatent;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.clip);
    };
    p.stages.push_back(std::move(text));

    graph::Stage denoise;
    denoise.name = "unet";
    denoise.iterations = cfg.denoiseSteps;
    models::UNetConfig unet = cfg.unet;
    if (cfg.classifierFreeGuidance)
        unet.batch *= 2; // conditional + unconditional passes
    denoise.emit = [unet, latent](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, unet, latent, latent);
    };
    p.stages.push_back(std::move(denoise));

    graph::Stage decode;
    decode.name = "vae_decoder";
    decode.iterations = 1;
    decode.emit = [cfg, latent](graph::GraphBuilder& b, std::int64_t) {
        imageDecoder(b, cfg.vae, 1, latent, latent);
    };
    p.stages.push_back(std::move(decode));

    return p;
}

} // namespace mmgen::models
