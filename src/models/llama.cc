#include "llama.hh"

#include "models/blocks.hh"
#include "util/logging.hh"

namespace mmgen::models {

namespace {

TransformerConfig
llamaStack(const LlamaConfig& cfg)
{
    TransformerConfig t;
    t.layers = cfg.layers;
    t.dim = cfg.dim;
    t.heads = cfg.heads;
    t.ffnMult = static_cast<double>(cfg.ffnHidden) /
                static_cast<double>(cfg.dim);
    t.gatedFfn = true;
    t.causal = true;
    t.crossAttention = false;
    return t;
}

} // namespace

graph::Pipeline
buildLlama(const LlamaConfig& cfg)
{
    MMGEN_CHECK(cfg.promptLen > 0 && cfg.decodeTokens > 0,
                "LLaMA needs positive prompt and decode lengths");
    graph::Pipeline p;
    p.name = "LLaMA";
    p.klass = graph::ModelClass::LLM;

    const TransformerConfig stack = llamaStack(cfg);

    graph::Stage prefill;
    prefill.name = "prefill";
    prefill.iterations = 1;
    prefill.emit = [cfg, stack](graph::GraphBuilder& b, std::int64_t) {
        b.embedding(cfg.promptLen, cfg.dim, cfg.vocab);
        const TensorDesc x({1, cfg.promptLen, cfg.dim}, b.dtype());
        transformerStack(b, stack, x);
        // Only the final position's logits are needed.
        lmHead(b, TensorDesc({1, 1, cfg.dim}, b.dtype()), cfg.vocab);
    };
    p.stages.push_back(std::move(prefill));

    graph::Stage decode;
    decode.name = "decode";
    decode.iterations = cfg.decodeTokens;
    decode.perIterationShapes = true;
    decode.reusesWeights = true; // same stack as the prefill phase
    decode.emit = [cfg, stack](graph::GraphBuilder& b,
                               std::int64_t iter) {
        b.embedding(1, cfg.dim, cfg.vocab);
        const std::int64_t kv_len = cfg.promptLen + iter + 1;
        const TensorDesc out = transformerDecodeStep(b, stack, 1, kv_len);
        lmHead(b, out, cfg.vocab);
    };
    p.stages.push_back(std::move(decode));

    return p;
}

} // namespace mmgen::models
