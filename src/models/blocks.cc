#include "blocks.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::models {

using graph::OpKind;

namespace {

/**
 * Spatial convolution dispatching on layout: plain 2-D conv for NCHW,
 * a pseudo-3D (1 x k x k) conv for NCDHW video tensors.
 */
TensorDesc
spatialConv(GraphBuilder& b, TensorDesc x, std::int64_t out_ch,
            std::int64_t kernel, std::int64_t stride = 1)
{
    if (x.rank() == 5)
        return b.conv3d(x, out_ch, 1, kernel, stride);
    return b.conv2d(x, out_ch, kernel, stride);
}

/** Temporal (k x 1 x 1) convolution over the frame axis of NCDHW. */
TensorDesc
temporalConv(GraphBuilder& b, TensorDesc x, std::int64_t out_ch)
{
    MMGEN_CHECK(x.rank() == 5, "temporal conv expects NCDHW");
    return b.conv3d(x, out_ch, 3, 1, 1);
}

/** Spatial extent (H * W) for NCHW or NCDHW. */
std::int64_t
spatialPositions(const TensorDesc& x)
{
    return x.dim(-2) * x.dim(-1);
}

/** Batch of independent images: N for NCHW, N * frames for NCDHW. */
std::int64_t
imageBatch(const TensorDesc& x)
{
    return x.rank() == 5 ? x.dim(0) * x.dim(2) : x.dim(0);
}

} // namespace

// ---------------------------------------------------------------------
// Transformer blocks
// ---------------------------------------------------------------------

namespace {

/** Self-attention sublayer over a full [batch, seq, dim] sequence. */
TensorDesc
selfAttentionSublayer(GraphBuilder& b, const TransformerConfig& cfg,
                      TensorDesc x)
{
    auto s = b.scope("self_attn");
    TensorDesc h = b.layerNorm(x);
    b.linear(h, cfg.dim, false); // q
    b.linear(h, cfg.dim, false); // k
    b.linear(h, cfg.dim, false); // v
    TensorDesc o = b.attention(
        cfg.causal ? AttentionKind::CausalSelf
                   : AttentionKind::SelfSpatial,
        x.dim(0), cfg.heads, x.dim(1), x.dim(1), cfg.headDim(),
        /*seq_stride=*/0, cfg.causal);
    o = b.linear(o, cfg.dim);
    return b.binary(x, "residual_add");
}

/** Cross-attention sublayer onto a cached context. */
TensorDesc
crossAttentionSublayer(GraphBuilder& b, const TransformerConfig& cfg,
                       TensorDesc x, bool project_context)
{
    auto s = b.scope("cross_attn");
    TensorDesc h = b.layerNorm(x);
    b.linear(h, cfg.dim, false); // q
    if (project_context) {
        const TensorDesc ctx({x.dim(0), cfg.contextLen, cfg.dim},
                             b.dtype());
        b.linear(ctx, cfg.dim, false); // k
        b.linear(ctx, cfg.dim, false); // v
    }
    TensorDesc o = b.attention(AttentionKind::CrossText, x.dim(0),
                               cfg.heads, x.dim(1), cfg.contextLen,
                               cfg.headDim());
    o = b.linear(o, cfg.dim);
    return b.binary(x, "residual_add");
}

/** Feed-forward sublayer (plain GELU or gated SiLU). */
TensorDesc
ffnSublayer(GraphBuilder& b, const TransformerConfig& cfg, TensorDesc x)
{
    auto s = b.scope("ffn");
    TensorDesc h = b.layerNorm(x);
    if (cfg.gatedFfn) {
        TensorDesc up = b.linear(h, cfg.ffnHidden(), false);
        TensorDesc gate = b.linear(h, cfg.ffnHidden(), false);
        gate = b.silu(gate);
        up = b.binary(up, "gate_mul");
        b.linear(up, cfg.dim, false);
    } else {
        TensorDesc up = b.linear(h, cfg.ffnHidden());
        up = b.gelu(up);
        b.linear(up, cfg.dim);
    }
    return b.binary(x, "residual_add");
}

} // namespace

TensorDesc
transformerStack(GraphBuilder& b, const TransformerConfig& cfg,
                 TensorDesc x)
{
    MMGEN_CHECK(x.rank() == 3, "transformer expects [B, S, D], got "
                                   << x.str());
    MMGEN_CHECK(x.dim(2) == cfg.dim,
                "input dim " << x.dim(2) << " != model dim " << cfg.dim);
    MMGEN_CHECK(cfg.dim % cfg.heads == 0,
                "dim not divisible by head count");
    for (std::int64_t l = 0; l < cfg.layers; ++l) {
        auto s = b.scope("layer" + std::to_string(l));
        x = selfAttentionSublayer(b, cfg, x);
        if (cfg.crossAttention)
            x = crossAttentionSublayer(b, cfg, x, l == 0);
        x = ffnSublayer(b, cfg, x);
    }
    return b.layerNorm(x);
}

TensorDesc
transformerDecodeStep(GraphBuilder& b, const TransformerConfig& cfg,
                      std::int64_t batch, std::int64_t kv_len)
{
    MMGEN_CHECK(cfg.dim % cfg.heads == 0,
                "dim not divisible by head count");
    MMGEN_CHECK(kv_len >= 1, "decode step needs kv_len >= 1");
    TensorDesc x({batch, 1, cfg.dim}, b.dtype());
    for (std::int64_t l = 0; l < cfg.layers; ++l) {
        auto s = b.scope("layer" + std::to_string(l));
        {
            auto sa = b.scope("self_attn");
            TensorDesc h = b.layerNorm(x);
            b.linear(h, cfg.dim, false); // q for the new position
            b.linear(h, cfg.dim, false); // k appended to the cache
            b.linear(h, cfg.dim, false); // v appended to the cache
            TensorDesc o =
                b.attention(AttentionKind::CausalSelf, batch, cfg.heads,
                            1, kv_len, cfg.headDim());
            o = b.linear(o, cfg.dim);
            x = b.binary(x, "residual_add");
        }
        if (cfg.crossAttention) {
            auto ca = b.scope("cross_attn");
            TensorDesc h = b.layerNorm(x);
            b.linear(h, cfg.dim, false); // q (context k/v are cached)
            TensorDesc o =
                b.attention(AttentionKind::CrossText, batch, cfg.heads,
                            1, cfg.contextLen, cfg.headDim());
            o = b.linear(o, cfg.dim);
            x = b.binary(x, "residual_add");
        }
        x = ffnSublayer(b, cfg, x);
    }
    return b.layerNorm(x);
}

TensorDesc
lmHead(GraphBuilder& b, TensorDesc x, std::int64_t vocab)
{
    auto s = b.scope("lm_head");
    return b.linear(x, vocab, false);
}

// ---------------------------------------------------------------------
// Diffusion UNet blocks
// ---------------------------------------------------------------------

std::int64_t
UNetConfig::levelChannels(std::size_t level) const
{
    MMGEN_CHECK(level < channelMult.size(),
                "level " << level << " out of range");
    return baseChannels * channelMult[level];
}

bool
UNetConfig::hasAttnAt(std::int64_t factor) const
{
    return std::find(attnDownFactors.begin(), attnDownFactors.end(),
                     factor) != attnDownFactors.end();
}

bool
UNetConfig::hasCrossAttnAt(std::int64_t factor) const
{
    return std::find(crossAttnDownFactors.begin(),
                     crossAttnDownFactors.end(),
                     factor) != crossAttnDownFactors.end();
}

int
UNetConfig::resBlocksAt(std::size_t level) const
{
    if (resBlocksPerLevel.empty())
        return numResBlocks;
    MMGEN_CHECK(resBlocksPerLevel.size() == channelMult.size(),
                "resBlocksPerLevel arity " << resBlocksPerLevel.size()
                    << " != level count " << channelMult.size());
    return resBlocksPerLevel[level];
}

std::int64_t
UNetConfig::headsFor(std::int64_t channels) const
{
    if (attnHeadDim > 0) {
        MMGEN_CHECK(channels % attnHeadDim == 0,
                    "channels " << channels
                                << " not divisible by per-head dim "
                                << attnHeadDim);
        return channels / attnHeadDim;
    }
    return attnHeads;
}

TensorDesc
resnetBlock(GraphBuilder& b, const UNetConfig& cfg, TensorDesc x,
            std::int64_t out_channels)
{
    auto s = b.scope("resnet");
    const std::int64_t in_channels = x.dim(1);
    TensorDesc h = b.groupNorm(x);
    h = b.silu(h);
    h = spatialConv(b, h, out_channels, 3);
    if (cfg.temporal)
        h = temporalConv(b, h, out_channels);
    // Timestep embedding projection, broadcast-added per channel.
    {
        auto se = b.scope("temb");
        const TensorDesc emb({x.dim(0), cfg.embedDim}, b.dtype());
        b.linear(emb, out_channels);
        h = b.binary(h, "temb_add");
    }
    h = b.groupNorm(h);
    h = b.silu(h);
    h = spatialConv(b, h, out_channels, 3);
    if (cfg.temporal)
        h = temporalConv(b, h, out_channels);
    if (in_channels != out_channels)
        x = spatialConv(b, x, out_channels, 1);
    return b.binary(h, "residual_add");
}

TensorDesc
attentionBlock(GraphBuilder& b, const UNetConfig& cfg, TensorDesc x,
               bool self, bool cross)
{
    auto s = b.scope("attn");
    const std::int64_t channels = x.dim(1);
    const std::int64_t heads = cfg.headsFor(channels);
    MMGEN_CHECK(channels % heads == 0,
                "channels " << channels << " not divisible by heads "
                            << heads);
    const std::int64_t head_dim = channels / heads;
    const std::int64_t positions = spatialPositions(x);
    const std::int64_t batch = imageBatch(x);

    TensorDesc h = b.groupNorm(x);
    // NCHW -> [batch, positions, C] for the attention sublayers.
    h = b.copy(h);
    const TensorDesc seq({batch, positions, channels}, b.dtype());

    if (self) {
        auto sa = b.scope("self");
        b.linear(seq, channels, false); // q
        b.linear(seq, channels, false); // k
        b.linear(seq, channels, false); // v
        const TensorDesc o =
            b.attention(AttentionKind::SelfSpatial, batch, heads,
                        positions, positions, head_dim);
        b.linear(o, channels);
        b.binary(seq, "residual_add");
    }
    if (cross) {
        auto ca = b.scope("cross");
        TensorDesc n = b.layerNorm(seq);
        b.linear(n, channels, false); // q
        const TensorDesc ctx({batch, cfg.textLen, cfg.embedDim},
                             b.dtype());
        b.linear(ctx, channels, false); // k
        b.linear(ctx, channels, false); // v
        TensorDesc o =
            b.attention(AttentionKind::CrossText, batch, heads,
                        positions, cfg.textLen, head_dim);
        o = b.linear(o, channels);
        b.binary(seq, "residual_add");

        // GEGLU feed-forward as in SD's transformer blocks: project to
        // 8C, gate one 4C half with GELU of the other, project back.
        auto ff = b.scope("ffn");
        TensorDesc f = b.layerNorm(seq);
        b.linear(f, channels * 8);
        const TensorDesc half({batch, positions, channels * 4},
                              b.dtype());
        b.gelu(half);
        b.binary(half, "gate_mul");
        b.linear(half, channels);
        b.binary(seq, "residual_add");
    }
    if (cfg.temporal) {
        // Temporal attention over the frame axis of the NCDHW tensor:
        // the sequence stride is H*W and the feature stride F*H*W,
        // i.e. a fully strided view (paper Fig. 10).
        auto ta = b.scope("temporal");
        MMGEN_CHECK(x.rank() == 5, "temporal attention expects NCDHW");
        const std::int64_t frames = x.dim(2);
        b.linear(seq, channels, false); // q
        b.linear(seq, channels, false); // k
        b.linear(seq, channels, false); // v
        TensorDesc o = b.attention(
            AttentionKind::Temporal, x.dim(0) * positions, heads,
            frames, frames, head_dim,
            /*seq_stride=*/positions, /*causal=*/false,
            /*feature_stride=*/frames * positions);
        o = b.linear(o, channels);
        b.binary(seq, "residual_add");
    }
    // Back to the convolutional layout.
    b.copy(seq);
    return x;
}

TensorDesc
unetForward(GraphBuilder& b, const UNetConfig& cfg, std::int64_t h,
            std::int64_t w)
{
    // No scope push here: the caller's stage/scope names the UNet.
    const std::size_t levels = cfg.channelMult.size();
    MMGEN_CHECK(levels >= 1, "UNet needs at least one level");

    TensorDesc x =
        cfg.temporal
            ? TensorDesc({cfg.batch, cfg.inChannels, cfg.frames, h, w},
                         b.dtype())
            : TensorDesc({cfg.batch, cfg.inChannels, h, w}, b.dtype());
    {
        auto sc = b.scope("in");
        x = spatialConv(b, x, cfg.baseChannels, 3);
    }

    // Skip-connection channel bookkeeping (concatenated on the way up).
    std::vector<std::int64_t> skip_channels;
    skip_channels.push_back(cfg.baseChannels);

    std::int64_t factor = 1;
    // Down path.
    for (std::size_t level = 0; level < levels; ++level) {
        auto sl = b.scope("down" + std::to_string(level));
        const std::int64_t ch = cfg.levelChannels(level);
        for (int i = 0; i < cfg.resBlocksAt(level); ++i) {
            auto sb = b.scope("block" + std::to_string(i));
            x = resnetBlock(b, cfg, x, ch);
            if (cfg.hasAttnAt(factor) || cfg.hasCrossAttnAt(factor)) {
                x = attentionBlock(b, cfg, x, cfg.hasAttnAt(factor),
                                   cfg.hasCrossAttnAt(factor));
            }
            skip_channels.push_back(ch);
        }
        if (level + 1 < levels) {
            auto sd = b.scope("downsample");
            x = spatialConv(b, x, ch, 3, 2);
            skip_channels.push_back(ch);
            factor *= 2;
        }
    }

    // Middle. Efficient UNets that strip attention from the ladder
    // also strip it from the bottleneck (midBlockAttention = false).
    {
        auto sm = b.scope("mid");
        const std::int64_t ch = cfg.levelChannels(levels - 1);
        x = resnetBlock(b, cfg, x, ch);
        const bool mid_self =
            cfg.midBlockAttention || cfg.hasAttnAt(factor);
        const bool mid_cross =
            cfg.hasCrossAttnAt(factor) ||
            (cfg.midBlockAttention && !cfg.crossAttnDownFactors.empty());
        if (mid_self || mid_cross)
            x = attentionBlock(b, cfg, x, mid_self, mid_cross);
        x = resnetBlock(b, cfg, x, ch);
    }

    // Up path.
    for (std::size_t level = levels; level-- > 0;) {
        auto sl = b.scope("up" + std::to_string(level));
        const std::int64_t ch = cfg.levelChannels(level);
        for (int i = 0; i < cfg.resBlocksAt(level) + 1; ++i) {
            auto sb = b.scope("block" + std::to_string(i));
            MMGEN_ASSERT(!skip_channels.empty(),
                         "skip stack underflow in UNet up path");
            const std::int64_t skip = skip_channels.back();
            skip_channels.pop_back();
            // Concatenate the skip tensor: widen the input channels.
            std::vector<std::int64_t> cat_shape = x.shape();
            cat_shape[1] += skip;
            x = resnetBlock(b, cfg, TensorDesc(cat_shape, b.dtype()), ch);
            if (cfg.hasAttnAt(factor) || cfg.hasCrossAttnAt(factor)) {
                x = attentionBlock(b, cfg, x, cfg.hasAttnAt(factor),
                                   cfg.hasCrossAttnAt(factor));
            }
        }
        if (level > 0) {
            auto su = b.scope("upsample");
            x = b.upsample2x(x);
            x = spatialConv(b, x, ch, 3);
            factor /= 2;
        }
    }
    MMGEN_ASSERT(skip_channels.empty(),
                 "UNet skip stack not fully consumed: "
                     << skip_channels.size() << " left");

    {
        auto so = b.scope("out");
        x = b.groupNorm(x);
        x = b.silu(x);
        x = spatialConv(b, x, cfg.inChannels, 3);
    }
    return x;
}

// ---------------------------------------------------------------------
// Encoders / decoders
// ---------------------------------------------------------------------

TensorDesc
textEncoder(GraphBuilder& b, const TextEncoderConfig& cfg)
{
    auto s = b.scope("text_encoder");
    b.embedding(cfg.seqLen, cfg.dim, cfg.vocab);
    TransformerConfig tcfg;
    tcfg.layers = cfg.layers;
    tcfg.dim = cfg.dim;
    tcfg.heads = cfg.heads;
    tcfg.causal = false;
    tcfg.crossAttention = false;
    const TensorDesc tokens({1, cfg.seqLen, cfg.dim}, b.dtype());
    return transformerStack(b, tcfg, tokens);
}

namespace {

/** Plain residual block (no timestep embedding) for decoders. */
TensorDesc
plainResBlock(GraphBuilder& b, TensorDesc x, std::int64_t out_channels)
{
    auto s = b.scope("resnet");
    const std::int64_t in_channels = x.dim(1);
    TensorDesc h = b.groupNorm(x);
    h = b.silu(h);
    h = b.conv2d(h, out_channels, 3);
    h = b.groupNorm(h);
    h = b.silu(h);
    h = b.conv2d(h, out_channels, 3);
    if (in_channels != out_channels)
        x = b.conv2d(x, out_channels, 1);
    return b.binary(h, "residual_add");
}

} // namespace

TensorDesc
imageDecoder(GraphBuilder& b, const ImageDecoderConfig& cfg,
             std::int64_t batch, std::int64_t h, std::int64_t w)
{
    auto s = b.scope("image_decoder");
    const std::size_t levels = cfg.channelMult.size();
    TensorDesc x({batch, cfg.latentChannels, h, w}, b.dtype());
    x = b.conv2d(x, cfg.baseChannels * cfg.channelMult[levels - 1], 3);
    if (cfg.bottleneckAttention) {
        auto sa = b.scope("mid_attn");
        const std::int64_t ch = x.dim(1);
        x = b.groupNorm(x);
        b.copy(x);
        const TensorDesc seq({batch, h * w, ch}, b.dtype());
        b.linear(seq, ch, false); // q
        b.linear(seq, ch, false); // k
        b.linear(seq, ch, false); // v
        const TensorDesc o =
            b.attention(AttentionKind::SelfSpatial, batch,
                        cfg.attnHeads, h * w, h * w,
                        ch / cfg.attnHeads);
        b.linear(o, ch);
        b.binary(seq, "residual_add");
        b.copy(seq);
    }
    for (std::size_t level = levels; level-- > 0;) {
        auto sl = b.scope("up" + std::to_string(level));
        const std::int64_t ch = cfg.baseChannels * cfg.channelMult[level];
        for (int i = 0; i < cfg.resBlocksPerLevel; ++i)
            x = plainResBlock(b, x, ch);
        if (level > 0) {
            x = b.upsample2x(x);
            x = b.conv2d(x, ch, 3);
        }
    }
    x = b.groupNorm(x);
    x = b.silu(x);
    x = b.conv2d(x, cfg.outChannels, 3);
    return x;
}

} // namespace mmgen::models
