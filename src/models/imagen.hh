/**
 * @file
 * Imagen: the pixel-space diffusion model of the suite.
 *
 * Pipeline (paper Fig. 2, top): frozen T5 text encoder -> 64x64 base
 * diffusion UNet -> two super-resolution diffusion UNets (to 256 and
 * 1024). The SR networks follow the "Efficient UNet" design and drop
 * self-attention at high resolutions because attention memory scales
 * as O(L^4) (paper Section V-B) — they keep only text cross-attention
 * (SR1) or no attention at all (SR2), which is why pixel models spend
 * ~15% more time in convolution than latent models (Section IV-A).
 */

#ifndef MMGEN_MODELS_IMAGEN_HH
#define MMGEN_MODELS_IMAGEN_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Imagen-style pixel diffusion cascade configuration. */
struct ImagenConfig
{
    /** Frozen T5 encoder (sized to keep the total near 3B params). */
    TextEncoderConfig t5 = {/*layers=*/24, /*dim=*/1024, /*heads=*/16,
                            /*seqLen=*/77, /*vocab=*/32128};

    /** 64x64 base diffusion UNet. */
    UNetConfig base;
    std::int64_t baseSize = 64;
    std::int64_t baseSteps = 128;

    /** 64 -> 256 super-resolution UNet (cross-attention only). */
    UNetConfig sr1;
    std::int64_t sr1Size = 256;
    std::int64_t sr1Steps = 32;

    /** 256 -> 1024 super-resolution UNet (no attention). */
    UNetConfig sr2;
    std::int64_t sr2Size = 1024;
    std::int64_t sr2Steps = 16;

    ImagenConfig();
};

/** Build the four-stage Imagen inference pipeline. */
graph::Pipeline buildImagen(const ImagenConfig& cfg = ImagenConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_IMAGEN_HH
