/**
 * @file
 * Production TTI model: a deployment-scale latent diffusion system.
 *
 * Stands in for the production image model of the paper's suite
 * (Section III): a latent diffusion architecture tuned for serving —
 * higher output resolution (768), a wider latent (8 channels), a
 * larger conditioning encoder, and attention restricted to the deeper
 * UNet levels to control cost. The small attention share is why the
 * paper measures only a 1.04x end-to-end gain from Flash Attention on
 * this model (Table II).
 */

#ifndef MMGEN_MODELS_PROD_IMAGE_HH
#define MMGEN_MODELS_PROD_IMAGE_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Production latent-diffusion configuration. */
struct ProdImageConfig
{
    TextEncoderConfig encoder = {/*layers=*/24, /*dim=*/1024,
                                 /*heads=*/16, /*seqLen=*/77,
                                 /*vocab=*/49408};

    UNetConfig unet;

    ImageDecoderConfig vae = {/*latentChannels=*/8,
                              /*baseChannels=*/192,
                              /*channelMult=*/{1, 2, 4, 4},
                              /*outChannels=*/3,
                              /*resBlocksPerLevel=*/2};

    std::int64_t imageSize = 768;
    std::int64_t latentScale = 8;
    std::int64_t denoiseSteps = 50;

    ProdImageConfig();

    std::int64_t latentSize() const { return imageSize / latentScale; }
};

/** Build the production TTI inference pipeline. */
graph::Pipeline
buildProdImage(const ProdImageConfig& cfg = ProdImageConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_PROD_IMAGE_HH
