/**
 * @file
 * Reusable architectural building blocks for the model zoo.
 *
 * Matches the decomposition of paper Fig. 3: diffusion UNets are built
 * from Resnet blocks, Self-Attention and Cross-Attention blocks at a
 * ladder of resolutions; transformer models are stacks of
 * self-attention / cross-attention / feed-forward blocks. TTV models
 * augment the UNet with temporal attention and pseudo-3D convolutions.
 */

#ifndef MMGEN_MODELS_BLOCKS_HH
#define MMGEN_MODELS_BLOCKS_HH

#include <cstdint>
#include <vector>

#include "graph/builder.hh"

namespace mmgen::models {

using graph::AttentionKind;
using graph::GraphBuilder;
using mmgen::TensorDesc;

// ---------------------------------------------------------------------
// Transformer blocks
// ---------------------------------------------------------------------

/** Configuration of one transformer stack. */
struct TransformerConfig
{
    std::int64_t layers = 12;
    std::int64_t dim = 768;
    std::int64_t heads = 12;
    /** FFN hidden size as a multiple of dim. */
    double ffnMult = 4.0;
    /** Use gated (SwiGLU-style, three-matrix) FFN. */
    bool gatedFfn = false;
    /** Insert a cross-attention sublayer after self-attention. */
    bool crossAttention = false;
    /** Key/value length of the cross-attended context. */
    std::int64_t contextLen = 0;
    /** Causal self-attention mask. */
    bool causal = false;

    std::int64_t headDim() const { return dim / heads; }
    std::int64_t ffnHidden() const
    {
        return static_cast<std::int64_t>(dim * ffnMult);
    }
};

/**
 * One full-sequence pass through a transformer stack.
 *
 * @param x  [batch, seq, dim] input
 * @return   [batch, seq, dim] output
 */
TensorDesc transformerStack(GraphBuilder& b, const TransformerConfig& cfg,
                            TensorDesc x);

/**
 * One autoregressive decode step through a transformer stack: a
 * single-position query attending to a KV-cache of kv_len positions.
 *
 * @param batch   decode batch size
 * @param kv_len  sequence length visible to the step (prompt + emitted)
 * @return        [batch, 1, dim] output
 */
TensorDesc transformerDecodeStep(GraphBuilder& b,
                                 const TransformerConfig& cfg,
                                 std::int64_t batch,
                                 std::int64_t kv_len);

/** Final LM head projecting to a vocabulary. */
TensorDesc lmHead(GraphBuilder& b, TensorDesc x, std::int64_t vocab);

// ---------------------------------------------------------------------
// Diffusion UNet blocks
// ---------------------------------------------------------------------

/** Configuration of a (optionally spatio-temporal) diffusion UNet. */
struct UNetConfig
{
    /** Input/output latent or pixel channels. */
    std::int64_t inChannels = 4;
    /** Base channel count; level c has baseChannels * channelMult[c]. */
    std::int64_t baseChannels = 320;
    /** Per-level channel multipliers (paper Table I "Channel Mult"). */
    std::vector<std::int64_t> channelMult = {1, 2, 4, 4};
    /** Residual blocks per level (paper Table I "Num Res Blocks"). */
    int numResBlocks = 2;
    /**
     * Optional per-level residual block counts (Imagen's "Efficient
     * UNet" shifts capacity toward the low-resolution levels). Empty
     * means numResBlocks at every level.
     */
    std::vector<int> resBlocksPerLevel;

    /** Residual blocks at a pyramid level. */
    int resBlocksAt(std::size_t level) const;
    /**
     * Downsampling factors at which attention blocks are present
     * (paper Table I "Attn Res"): factor 1 is the input resolution,
     * 2 is one downsample below, etc.
     */
    std::vector<std::int64_t> attnDownFactors = {1, 2, 4};
    /** Downsampling factors with cross-attention onto the text. */
    std::vector<std::int64_t> crossAttnDownFactors = {1, 2, 4};
    /**
     * Keep the bottleneck (mid-block) attention even when the deepest
     * factor is not in attnDownFactors — Stable Diffusion attends at
     * its 8x8 bottleneck. Efficient-UNet SR stages set this false.
     */
    bool midBlockAttention = true;
    /** Attention heads at every attention site (fixed-count mode). */
    std::int64_t attnHeads = 8;
    /**
     * Per-head channels (paper Table I "Per-Head Channels"). When > 0
     * the head count scales with the level's channels (Imagen-style);
     * when 0 the fixed attnHeads count is used (SD-style).
     */
    std::int64_t attnHeadDim = 0;

    /** Heads used at a site with the given channel count. */
    std::int64_t headsFor(std::int64_t channels) const;
    /** Encoded text length for cross-attention. */
    std::int64_t textLen = 77;
    /** Timestep/conditioning embedding dimension. */
    std::int64_t embedDim = 768;

    /** Independent images processed per pass (e.g. per-frame SR). */
    std::int64_t batch = 1;

    /** Generate video: add temporal layers over this many frames. */
    bool temporal = false;
    std::int64_t frames = 1;

    /** Channels at pyramid level (0 = input resolution). */
    std::int64_t levelChannels(std::size_t level) const;

    /** True if the downsample factor carries (cross-)attention. */
    bool hasAttnAt(std::int64_t factor) const;
    bool hasCrossAttnAt(std::int64_t factor) const;
};

/**
 * Residual block: GN - SiLU - conv3x3 - (+temb) - GN - SiLU - conv3x3
 * with a 1x1 skip projection on channel change. In temporal UNets a
 * pseudo-3D (1x3x3 then 3x1x1) convolution pair replaces each conv.
 *
 * @param x  [N, C, H, W] feature map (frames folded into N when
 *           cfg.temporal)
 */
TensorDesc resnetBlock(GraphBuilder& b, const UNetConfig& cfg,
                       TensorDesc x, std::int64_t out_channels);

/**
 * Attention block over the flattened H*W positions: optional spatial
 * self-attention, optional cross-attention onto the text context, and,
 * in temporal UNets, a temporal attention sublayer over the frame
 * axis. Efficient-UNet SR stages use cross-only blocks (self = false)
 * because spatial self-attention is unaffordable at high resolution.
 */
TensorDesc attentionBlock(GraphBuilder& b, const UNetConfig& cfg,
                          TensorDesc x, bool self, bool cross);

/**
 * Full UNet forward pass at the given input spatial size.
 *
 * @param h, w  input (latent or pixel) spatial extent
 * @return      [N, inChannels, h, w] prediction
 */
TensorDesc unetForward(GraphBuilder& b, const UNetConfig& cfg,
                       std::int64_t h, std::int64_t w);

// ---------------------------------------------------------------------
// Encoders / decoders around the generators
// ---------------------------------------------------------------------

/** Text encoder (T5/CLIP-like bidirectional transformer). */
struct TextEncoderConfig
{
    std::int64_t layers = 12;
    std::int64_t dim = 768;
    std::int64_t heads = 12;
    std::int64_t seqLen = 77;
    std::int64_t vocab = 49408;
};

/** Encode a prompt; returns [1, seqLen, dim]. */
TensorDesc textEncoder(GraphBuilder& b, const TextEncoderConfig& cfg);

/** Convolutional VAE/VQGAN decoder from latents to pixels. */
struct ImageDecoderConfig
{
    std::int64_t latentChannels = 4;
    std::int64_t baseChannels = 128;
    /** Channel multipliers from the output end (level 0) upward. */
    std::vector<std::int64_t> channelMult = {1, 2, 4, 4};
    std::int64_t outChannels = 3;
    int resBlocksPerLevel = 2;
    /**
     * Single self-attention block at the latent-resolution bottleneck
     * (SD's VAE decoder has one); cheap because the sequence is the
     * small latent extent.
     */
    bool bottleneckAttention = true;
    std::int64_t attnHeads = 1;
};

/**
 * Decode latents of extent (h, w) up to pixels of extent
 * (h * 2^(levels-1), w * 2^(levels-1)).
 */
TensorDesc imageDecoder(GraphBuilder& b, const ImageDecoderConfig& cfg,
                        std::int64_t batch, std::int64_t h,
                        std::int64_t w);

} // namespace mmgen::models

#endif // MMGEN_MODELS_BLOCKS_HH
