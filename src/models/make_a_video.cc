#include "make_a_video.hh"

#include "util/logging.hh"

namespace mmgen::models {

MakeAVideoConfig::MakeAVideoConfig()
{
    // Base spatio-temporal UNet. Attention at 16x16 and 8x8 only:
    // spatial attention at higher resolutions is swapped for
    // convolution to control memory (paper Section II-B).
    base.inChannels = 4;
    base.baseChannels = 320;
    base.channelMult = {1, 2, 4, 4};
    base.numResBlocks = 2;
    base.attnDownFactors = {4, 8};
    base.crossAttnDownFactors = {4, 8};
    base.attnHeads = 8;
    base.textLen = encoder.seqLen;
    base.embedDim = encoder.dim;
    base.temporal = true;
    base.frames = 16;

    // Frame interpolation: the same spatio-temporal structure over
    // more frames, lighter channels.
    interp = base;
    interp.baseChannels = 192;
    interp.frames = interpFrames;

    // Per-frame spatial SR (no temporal layers): frames fold into the
    // batch.
    sr.inChannels = 3;
    sr.baseChannels = 128;
    sr.channelMult = {1, 2, 4, 8};
    sr.numResBlocks = 2;
    sr.attnDownFactors = {};
    sr.midBlockAttention = false;
    sr.crossAttnDownFactors = {8};
    sr.attnHeads = 8;
    sr.textLen = encoder.seqLen;
    sr.embedDim = encoder.dim;
    sr.temporal = false;
    sr.batch = interpFrames;
}

graph::Pipeline
buildMakeAVideo(const MakeAVideoConfig& cfg)
{
    graph::Pipeline p;
    p.name = "MakeAVideo";
    p.klass = graph::ModelClass::DiffusionTTV;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.encoder);
    };
    p.stages.push_back(std::move(text));

    graph::Stage denoise;
    denoise.name = "base_unet";
    denoise.iterations = cfg.baseSteps;
    denoise.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, cfg.base, cfg.baseSize, cfg.baseSize);
    };
    p.stages.push_back(std::move(denoise));

    graph::Stage interp;
    interp.name = "frame_interpolation";
    interp.iterations = cfg.interpSteps;
    interp.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, cfg.interp, cfg.baseSize, cfg.baseSize);
    };
    p.stages.push_back(std::move(interp));

    graph::Stage sr;
    sr.name = "spatial_sr";
    sr.iterations = cfg.srSteps;
    sr.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        unetForward(b, cfg.sr, cfg.srSize, cfg.srSize);
    };
    p.stages.push_back(std::move(sr));

    return p;
}

} // namespace mmgen::models
