/**
 * @file
 * Muse: decoder-only transformer TTI with parallel decoding.
 *
 * Pipeline (paper Fig. 2, bottom, with Muse's twist): T5 text encoder
 * -> base masked transformer predicting all 16x16 image tokens over a
 * fixed number of refinement steps (parallel decoding, so sequence
 * length is constant across inference — paper Fig. 7) -> super-
 * resolution transformer at 64x64 tokens -> VQGAN detokenizer.
 */

#ifndef MMGEN_MODELS_MUSE_HH
#define MMGEN_MODELS_MUSE_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Muse-style masked-transformer configuration (~3B params). */
struct MuseConfig
{
    TextEncoderConfig t5 = {/*layers=*/24, /*dim=*/1024, /*heads=*/16,
                            /*seqLen=*/77, /*vocab=*/32128};

    /** Base model (paper Table I: 48 layers, model dim 2048). */
    TransformerConfig base;
    /** Base token grid extent (16 -> 256 tokens). */
    std::int64_t baseGrid = 16;
    /** Parallel-decoding refinement steps. */
    std::int64_t baseSteps = 24;

    /** Super-resolution transformer over the 32x32 token grid. */
    TransformerConfig superRes;
    std::int64_t srGrid = 32;
    std::int64_t srSteps = 8;

    /** Image-token codebook size. */
    std::int64_t tokenVocab = 8192;

    /** VQGAN detokenizer back to pixels. */
    ImageDecoderConfig vqgan = {/*latentChannels=*/64,
                                /*baseChannels=*/128,
                                /*channelMult=*/{1, 2, 4},
                                /*outChannels=*/3,
                                /*resBlocksPerLevel=*/2};

    MuseConfig();
};

/** Build the four-stage Muse inference pipeline. */
graph::Pipeline buildMuse(const MuseConfig& cfg = MuseConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_MUSE_HH
