/**
 * @file
 * Stable Diffusion: the latent-space diffusion model of the suite.
 *
 * Pipeline (paper Fig. 2, middle): CLIP text encoder -> latent UNet
 * looped over denoising steps -> VAE decoder back to pixel space.
 * Attention lives at downsampling factors 1/2/4 of the latent, which
 * is why its sequence length profile spans 256..4096 (paper Fig. 7).
 */

#ifndef MMGEN_MODELS_STABLE_DIFFUSION_HH
#define MMGEN_MODELS_STABLE_DIFFUSION_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Stable Diffusion v1.x-style configuration. */
struct StableDiffusionConfig
{
    TextEncoderConfig clip = {/*layers=*/12, /*dim=*/768, /*heads=*/12,
                              /*seqLen=*/77, /*vocab=*/49408};

    UNetConfig unet;

    ImageDecoderConfig vae = {/*latentChannels=*/4,
                              /*baseChannels=*/128,
                              /*channelMult=*/{1, 2, 4, 4},
                              /*outChannels=*/3,
                              /*resBlocksPerLevel=*/2};

    /** Output image extent (square). */
    std::int64_t imageSize = 512;
    /** Pixel-per-latent downscale of the VAE (f = 8). */
    std::int64_t latentScale = 8;
    /** Denoising iterations through the UNet. */
    std::int64_t denoiseSteps = 50;

    /**
     * Classifier-free guidance: every denoising step runs the UNet on
     * a conditional and an unconditional batch entry (batch 2), the
     * standard quality/latency trade in deployed diffusion systems.
     */
    bool classifierFreeGuidance = false;

    StableDiffusionConfig();

    std::int64_t latentSize() const { return imageSize / latentScale; }
};

/** Build the three-stage SD inference pipeline. */
graph::Pipeline
buildStableDiffusion(const StableDiffusionConfig& cfg =
                         StableDiffusionConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_STABLE_DIFFUSION_HH
