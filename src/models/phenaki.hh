/**
 * @file
 * Phenaki: the transformer-based text-to-video model of the suite.
 *
 * A C-ViViT tokenizer compresses video into discrete tokens with
 * factorized spatial and temporal attention; a bidirectional masked
 * transformer (MaskGIT-style) predicts all video tokens over a fixed
 * number of refinement steps conditioned on the text; the C-ViViT
 * decoder (spatial attention per frame, temporal attention per
 * position, then convolutions) reconstructs the pixels.
 */

#ifndef MMGEN_MODELS_PHENAKI_HH
#define MMGEN_MODELS_PHENAKI_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Phenaki-style configuration. */
struct PhenakiConfig
{
    TextEncoderConfig t5 = {/*layers=*/24, /*dim=*/1024, /*heads=*/16,
                            /*seqLen=*/77, /*vocab=*/32128};

    /** Masked video-token transformer. */
    TransformerConfig maskgit;
    /** Parallel-decoding refinement steps per time chunk. */
    std::int64_t maskgitSteps = 24;

    /** Video token geometry: tokenGrid^2 tokens per frame. */
    std::int64_t tokenGrid = 16;
    std::int64_t frames = 11;
    std::int64_t tokenVocab = 8192;

    /**
     * Phenaki generates variable-length video autoregressively in
     * time: the MaskGIT pass refines a sliding chunk of frames
     * conditioned on the previous chunk, rather than attending over
     * the whole video at once.
     */
    std::int64_t framesPerChunk = 3;

    std::int64_t timeChunks() const
    {
        return (frames + framesPerChunk - 1) / framesPerChunk;
    }

    std::int64_t chunkTokens() const
    {
        return tokensPerFrame() * framesPerChunk;
    }

    /** C-ViViT decoder transformer (factorized space/time). */
    TransformerConfig cvivitSpatial;
    TransformerConfig cvivitTemporal;

    /** Convolutional tail from token embeddings to pixels. */
    ImageDecoderConfig pixelDecoder = {/*latentChannels=*/32,
                                       /*baseChannels=*/96,
                                       /*channelMult=*/{1, 2, 4},
                                       /*outChannels=*/3,
                                       /*resBlocksPerLevel=*/1};

    PhenakiConfig();

    std::int64_t tokensPerFrame() const { return tokenGrid * tokenGrid; }
    std::int64_t videoTokens() const
    {
        return tokensPerFrame() * frames;
    }
};

/** Build the Phenaki inference pipeline. */
graph::Pipeline buildPhenaki(const PhenakiConfig& cfg = PhenakiConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_PHENAKI_HH
