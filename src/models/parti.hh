/**
 * @file
 * Parti: encoder-decoder transformer TTI with autoregressive decode.
 *
 * Pipeline: text encoder -> 20B-parameter decoder predicting 32x32
 * image tokens one at a time with a KV cache (so sequence length ramps
 * linearly over inference — paper Fig. 7) -> ViT-VQGAN detokenizer.
 * The decode phase is the reason transformer TTI models resemble the
 * LLM Decode stage and benefit least from Flash Attention
 * (paper Table III, Section IV-B).
 */

#ifndef MMGEN_MODELS_PARTI_HH
#define MMGEN_MODELS_PARTI_HH

#include "graph/pipeline.hh"
#include "models/blocks.hh"

namespace mmgen::models {

/** Parti-style configuration (paper Table I: 80 layers, dim 4096). */
struct PartiConfig
{
    /** Text encoder half of the encoder-decoder stack. */
    TransformerConfig encoder;
    std::int64_t textLen = 64;
    std::int64_t textVocab = 32128;

    /** Autoregressive image-token decoder. */
    TransformerConfig decoder;
    /** Image token grid (32 -> 1024 tokens). */
    std::int64_t imageGrid = 32;
    std::int64_t tokenVocab = 8192;

    /** ViT-VQGAN detokenizer to pixels. */
    ImageDecoderConfig detokenizer = {/*latentChannels=*/32,
                                      /*baseChannels=*/128,
                                      /*channelMult=*/{1, 2, 4},
                                      /*outChannels=*/3,
                                      /*resBlocksPerLevel=*/2};

    PartiConfig();

    std::int64_t imageTokens() const { return imageGrid * imageGrid; }
};

/** Build the three-stage Parti inference pipeline. */
graph::Pipeline buildParti(const PartiConfig& cfg = PartiConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_PARTI_HH
