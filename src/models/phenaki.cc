#include "phenaki.hh"

#include "util/logging.hh"

namespace mmgen::models {

PhenakiConfig::PhenakiConfig()
{
    maskgit.layers = 24;
    maskgit.dim = 2048;
    maskgit.heads = 8;
    maskgit.ffnMult = 4.0;
    maskgit.causal = false;
    maskgit.crossAttention = true;
    maskgit.contextLen = t5.seqLen;

    cvivitSpatial.layers = 8;
    cvivitSpatial.dim = 512;
    cvivitSpatial.heads = 8;
    cvivitSpatial.ffnMult = 4.0;

    cvivitTemporal.layers = 8;
    cvivitTemporal.dim = 512;
    cvivitTemporal.heads = 8;
    cvivitTemporal.ffnMult = 4.0;
}

namespace {

/**
 * C-ViViT decoder: per-frame spatial transformer, per-position
 * temporal attention, then a convolutional pixel tail.
 */
void
cvivitDecode(graph::GraphBuilder& b, const PhenakiConfig& cfg)
{
    auto s = b.scope("cvivit_decoder");
    {
        auto ss = b.scope("spatial");
        const TensorDesc frames_x(
            {cfg.frames, cfg.tokensPerFrame(), cfg.cvivitSpatial.dim},
            b.dtype());
        transformerStack(b, cfg.cvivitSpatial, frames_x);
    }
    {
        // Temporal attention over the frame axis at every token
        // position: small sequence (frames), large folded batch.
        auto st = b.scope("temporal");
        const std::int64_t dim = cfg.cvivitTemporal.dim;
        const std::int64_t heads = cfg.cvivitTemporal.heads;
        const TensorDesc pos_x({cfg.tokensPerFrame(), cfg.frames, dim},
                               b.dtype());
        for (std::int64_t l = 0; l < cfg.cvivitTemporal.layers; ++l) {
            auto sl = b.scope("layer" + std::to_string(l));
            TensorDesc h = b.layerNorm(pos_x);
            b.linear(h, dim, false);
            b.linear(h, dim, false);
            b.linear(h, dim, false);
            const TensorDesc o = b.attention(
                AttentionKind::Temporal, cfg.tokensPerFrame(), heads,
                cfg.frames, cfg.frames, dim / heads,
                /*seq_stride=*/cfg.tokensPerFrame(), /*causal=*/false,
                /*feature_stride=*/cfg.frames * cfg.tokensPerFrame());
            b.linear(o, dim);
            b.binary(pos_x, "residual_add");
        }
    }
    imageDecoder(b, cfg.pixelDecoder, cfg.frames, cfg.tokenGrid,
                 cfg.tokenGrid);
}

} // namespace

graph::Pipeline
buildPhenaki(const PhenakiConfig& cfg)
{
    graph::Pipeline p;
    p.name = "Phenaki";
    p.klass = graph::ModelClass::TransformerTTV;

    graph::Stage text;
    text.name = "text_encoder";
    text.iterations = 1;
    text.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        textEncoder(b, cfg.t5);
    };
    p.stages.push_back(std::move(text));

    // Autoregressive-in-time generation: every time chunk runs the
    // full set of MaskGIT refinement steps over its token window.
    graph::Stage maskgit;
    maskgit.name = "maskgit_transformer";
    maskgit.iterations = cfg.maskgitSteps * cfg.timeChunks();
    maskgit.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        b.embedding(cfg.chunkTokens(), cfg.maskgit.dim, cfg.tokenVocab);
        const TensorDesc x({1, cfg.chunkTokens(), cfg.maskgit.dim},
                           b.dtype());
        const TensorDesc out = transformerStack(b, cfg.maskgit, x);
        lmHead(b, out, cfg.tokenVocab);
    };
    p.stages.push_back(std::move(maskgit));

    graph::Stage decode;
    decode.name = "cvivit_decoder";
    decode.iterations = 1;
    decode.emit = [cfg](graph::GraphBuilder& b, std::int64_t) {
        cvivitDecode(b, cfg);
    };
    p.stages.push_back(std::move(decode));

    return p;
}

} // namespace mmgen::models
