/**
 * @file
 * LLaMA-2 7B: the text-generation baseline of the model suite.
 *
 * Inference is the canonical two-phase LLM pipeline the paper uses as
 * its reference point (Table III): a prefill pass over the prompt
 * followed by autoregressive decode with a KV cache.
 */

#ifndef MMGEN_MODELS_LLAMA_HH
#define MMGEN_MODELS_LLAMA_HH

#include "graph/pipeline.hh"

namespace mmgen::models {

/** LLaMA-2 7B configuration (defaults match the released model). */
struct LlamaConfig
{
    std::int64_t layers = 32;
    std::int64_t dim = 4096;
    std::int64_t heads = 32;
    /** SwiGLU hidden size. */
    std::int64_t ffnHidden = 11008;
    std::int64_t vocab = 32000;

    /**
     * Prompt length processed in the prefill phase. The paper's LLaMA
     * measurement is prefill-heavy (long-context forward pass with a
     * short completion), which is what makes its Flash speedup larger
     * than the decode-bound transformer TTI models.
     */
    std::int64_t promptLen = 4096;
    /** Tokens generated in the decode phase. */
    std::int64_t decodeTokens = 32;
};

/** Build the two-stage (prefill + decode) inference pipeline. */
graph::Pipeline buildLlama(const LlamaConfig& cfg = LlamaConfig());

} // namespace mmgen::models

#endif // MMGEN_MODELS_LLAMA_HH
