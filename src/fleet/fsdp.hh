/**
 * @file
 * FSDP training memory model.
 *
 * The paper profiles training with Fully Sharded Data Parallelism over
 * nodes of eight A100s (Section III). Per-GPU memory under FSDP is the
 * sharded parameter/gradient/optimizer state plus the unsharded
 * activation working set; activations dominate for TTI/TTV models
 * because high-resolution feature maps do not shrink with world size,
 * which is why image/video jobs run hotter on memory (paper Fig. 1).
 */

#ifndef MMGEN_FLEET_FSDP_HH
#define MMGEN_FLEET_FSDP_HH

#include <cstdint>

namespace mmgen::fleet {

/** Mixed-precision Adam training state model. */
struct FsdpMemoryModel
{
    /** Bytes per parameter for fp16 weights. */
    double weightBytes = 2.0;
    /** Bytes per parameter for fp16 gradients. */
    double gradBytes = 2.0;
    /** Bytes per parameter for fp32 master weights + Adam m and v. */
    double optimizerBytes = 12.0;
    /** Fixed framework overhead per GPU (CUDA context, buffers). */
    double frameworkOverheadBytes = 2.0e9;

    /** Sharded parameter/gradient/optimizer bytes per GPU. */
    double shardedStateBytes(double params, int world_size) const;

    /**
     * Total per-GPU training memory: sharded states + activations +
     * framework overhead.
     */
    double perGpuBytes(double params, int world_size,
                       double activation_bytes) const;
};

} // namespace mmgen::fleet

#endif // MMGEN_FLEET_FSDP_HH
