#include "training_step.hh"

#include <algorithm>

#include "kernels/cost_model.hh"
#include "util/logging.hh"

namespace mmgen::fleet {

InterconnectSpec
InterconnectSpec::a100Cluster()
{
    return InterconnectSpec{};
}

double
InterconnectSpec::effectiveBandwidth(int world_size,
                                     int gpus_per_node) const
{
    MMGEN_CHECK(world_size >= 1, "world size must be positive");
    MMGEN_CHECK(gpus_per_node >= 1, "gpus per node must be positive");
    // Single node: NVLink only. Multi-node: the inter-node links are
    // the bottleneck of ring-style collectives.
    return world_size <= gpus_per_node ? intraNodeBandwidth
                                       : interNodeBandwidth;
}

TrainingStepEstimate
estimateTrainingStep(const hw::GpuSpec& gpu, const InterconnectSpec& net,
                     const TrainingStepInputs& in)
{
    MMGEN_CHECK(in.params > 0.0, "params must be positive");
    MMGEN_CHECK(in.forwardFlopsPerSample > 0.0,
                "forward FLOPs must be positive");
    MMGEN_CHECK(in.microBatch >= 1, "micro batch must be positive");
    MMGEN_CHECK(in.worldSize >= 1, "world size must be positive");
    MMGEN_CHECK(in.overlapFraction >= 0.0 && in.overlapFraction < 1.0,
                "overlap fraction out of [0, 1)");
    MMGEN_CHECK(in.computeEfficiency > 0.0 &&
                    in.computeEfficiency <= 1.0,
                "compute efficiency out of (0, 1]");

    TrainingStepEstimate out;
    // Backward is ~2x forward; one step processes microBatch samples.
    const double step_flops = 3.0 * in.forwardFlopsPerSample *
                              static_cast<double>(in.microBatch);
    const double peak = gpu.peakFlops(DType::F16);
    out.computeSeconds = step_flops / (peak * in.computeEfficiency);

    // FSDP collectives per step: all-gather weights twice (forward and
    // backward) and reduce-scatter gradients once — ~3x the fp16
    // parameter bytes per GPU over the effective bandwidth.
    const double param_bytes = in.params * 2.0;
    const double comm_bytes = 3.0 * param_bytes;
    const double bw =
        net.effectiveBandwidth(in.worldSize, in.gpusPerNode);
    const double comm_seconds =
        in.worldSize == 1
            ? 0.0
            : comm_bytes / bw + 3.0 * net.collectiveLatency;
    out.exposedCommSeconds =
        comm_seconds * (1.0 - in.overlapFraction);

    out.stepSeconds = out.computeSeconds + out.exposedCommSeconds;
    out.mfu = step_flops / (out.stepSeconds * peak);
    out.throughput = static_cast<double>(in.microBatch) *
                     static_cast<double>(in.worldSize) /
                     out.stepSeconds;
    return out;
}

double
forwardFlopsPerSample(const graph::Pipeline& pipeline,
                      const hw::GpuSpec& gpu)
{
    const kernels::CostModel model(gpu, graph::AttentionBackend::Flash);
    double flops = 0.0;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        if (pipeline.stages[si].reusesWeights)
            continue;
        const graph::Trace trace = pipeline.traceStage(si, 0);
        for (const auto& op : trace.ops())
            flops += model.cost(op).totalFlops();
    }
    return flops;
}

} // namespace mmgen::fleet
