#include "population.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mmgen::fleet {

std::string
workloadClassName(WorkloadClass c)
{
    switch (c) {
      case WorkloadClass::LLM:
        return "LLM";
      case WorkloadClass::TTI:
        return "TTI";
      case WorkloadClass::TTV:
        return "TTV";
    }
    MMGEN_ASSERT(false, "unknown workload class");
}

double
TrainingJob::gpusPerBParam() const
{
    MMGEN_CHECK(params > 0.0, "job has no parameters");
    return static_cast<double>(gpus) / (params / 1e9);
}

double
TrainingJob::memoryUtilization(const hw::GpuSpec& gpu) const
{
    MMGEN_CHECK(gpu.hbmBytes > 0.0, "GPU has no HBM");
    return std::min(1.0, perGpuBytes / gpu.hbmBytes);
}

ClassDistribution
defaultDistribution(WorkloadClass c)
{
    ClassDistribution d;
    switch (c) {
      case WorkloadClass::LLM:
        // 7B-175B dense LLMs; roughly one GPU per ~140M params
        // (e.g. 70B on ~512 GPUs), checkpointed activations.
        d.minParamsB = 7.0;
        d.maxParamsB = 175.0;
        d.gpusPerBParam = 7.0;
        d.activationBytesMean = 16e9;
        break;
      case WorkloadClass::TTI:
        // 0.9B-20B image generators trained on large GPU pools
        // relative to their size; high-resolution feature maps keep
        // per-GPU activations large.
        d.minParamsB = 0.9;
        d.maxParamsB = 20.0;
        d.gpusPerBParam = 98.0;
        d.activationBytesMean = 27e9;
        break;
      case WorkloadClass::TTV:
        // Video models add the frame axis to every activation.
        d.minParamsB = 1.0;
        d.maxParamsB = 15.0;
        d.gpusPerBParam = 110.0;
        d.activationBytesMean = 31e9;
        break;
    }
    return d;
}

namespace {

/** Round a GPU allocation to full nodes of eight. */
int
roundToNodes(double gpus)
{
    const int whole = static_cast<int>(std::llround(gpus / 8.0)) * 8;
    return std::max(8, whole);
}

void
generateClass(std::vector<TrainingJob>& jobs, WorkloadClass klass,
              int count, const PopulationConfig& cfg, Rng& rng)
{
    const ClassDistribution d = defaultDistribution(klass);
    for (int i = 0; i < count; ++i) {
        TrainingJob job;
        job.klass = klass;
        job.name = workloadClassName(klass) + "-" + std::to_string(i);

        // Log-uniform parameter count.
        const double log_lo = std::log(d.minParamsB);
        const double log_hi = std::log(d.maxParamsB);
        const double params_b =
            std::exp(rng.uniform(log_lo, log_hi));
        job.params = params_b * 1e9;

        const double jitter =
            rng.logNormal(0.0, d.gpuJitterSigma);
        job.gpus = roundToNodes(params_b * d.gpusPerBParam * jitter);

        const double act = d.activationBytesMean *
                           rng.logNormal(0.0, d.activationSigma);
        job.perGpuBytes =
            cfg.memory.perGpuBytes(job.params, job.gpus, act);
        jobs.push_back(std::move(job));
    }
}

} // namespace

std::vector<TrainingJob>
generateFleet(const PopulationConfig& cfg)
{
    MMGEN_CHECK(cfg.llmJobs >= 0 && cfg.ttiJobs >= 0 && cfg.ttvJobs >= 0,
                "job counts must be non-negative");
    Rng rng(cfg.seed);
    std::vector<TrainingJob> jobs;
    jobs.reserve(static_cast<std::size_t>(cfg.llmJobs + cfg.ttiJobs +
                                          cfg.ttvJobs));
    generateClass(jobs, WorkloadClass::LLM, cfg.llmJobs, cfg, rng);
    generateClass(jobs, WorkloadClass::TTI, cfg.ttiJobs, cfg, rng);
    generateClass(jobs, WorkloadClass::TTV, cfg.ttvJobs, cfg, rng);
    return jobs;
}

} // namespace mmgen::fleet
