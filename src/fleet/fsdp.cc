#include "fsdp.hh"

#include "util/logging.hh"

namespace mmgen::fleet {

double
FsdpMemoryModel::shardedStateBytes(double params, int world_size) const
{
    MMGEN_CHECK(params > 0.0, "params must be positive");
    MMGEN_CHECK(world_size > 0, "world size must be positive");
    const double per_param = weightBytes + gradBytes + optimizerBytes;
    return params * per_param / static_cast<double>(world_size);
}

double
FsdpMemoryModel::perGpuBytes(double params, int world_size,
                             double activation_bytes) const
{
    MMGEN_CHECK(activation_bytes >= 0.0,
                "activation bytes must be non-negative");
    return shardedStateBytes(params, world_size) + activation_bytes +
           frameworkOverheadBytes;
}

} // namespace mmgen::fleet
