/**
 * @file
 * Synthetic training-fleet population (paper Fig. 1 substrate).
 *
 * The paper aggregates proprietary fleet telemetry; we substitute a
 * deterministic synthetic population whose class-level distributions
 * (parameter counts, GPU allocations, activation working sets) are
 * grounded in public training configurations. The aggregation pipeline
 * over the population is the deliverable; the published ratios
 * (14x GPUs-per-parameter, ~1.4x memory utilization) are the
 * acceptance band.
 */

#ifndef MMGEN_FLEET_POPULATION_HH
#define MMGEN_FLEET_POPULATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/fsdp.hh"
#include "hw/gpu_spec.hh"
#include "util/rng.hh"

namespace mmgen::fleet {

/** Fleet-level workload classes (paper Fig. 1 compares LLM vs TTI). */
enum class WorkloadClass : std::uint8_t {
    LLM,
    TTI,
    TTV,
};

/** Human-readable class name. */
std::string workloadClassName(WorkloadClass c);

/** One training job in the fleet. */
struct TrainingJob
{
    std::string name;
    WorkloadClass klass = WorkloadClass::LLM;
    /** Trainable parameters. */
    double params = 0.0;
    /** GPUs allocated to the job. */
    int gpus = 0;
    /** Per-GPU memory in use, bytes. */
    double perGpuBytes = 0.0;

    /** GPUs per billion parameters. */
    double gpusPerBParam() const;

    /** Memory utilization against a GPU's HBM capacity. */
    double memoryUtilization(const hw::GpuSpec& gpu) const;
};

/** Class-level distribution knobs of the generator. */
struct ClassDistribution
{
    /** Log-uniform parameter range, billions. */
    double minParamsB = 1.0;
    double maxParamsB = 100.0;
    /** Mean GPUs allocated per billion parameters. */
    double gpusPerBParam = 7.0;
    /** Log-normal sigma of the GPU allocation jitter. */
    double gpuJitterSigma = 0.25;
    /** Mean activation working set per GPU, bytes. */
    double activationBytesMean = 15e9;
    /** Log-normal sigma of the activation jitter. */
    double activationSigma = 0.2;
};

/** Defaults grounded in public training configurations. */
ClassDistribution defaultDistribution(WorkloadClass c);

/** Population generator configuration. */
struct PopulationConfig
{
    int llmJobs = 40;
    int ttiJobs = 60;
    int ttvJobs = 20;
    std::uint64_t seed = 2024;
    hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    FsdpMemoryModel memory;
};

/** Generate a deterministic synthetic fleet. */
std::vector<TrainingJob> generateFleet(const PopulationConfig& cfg);

} // namespace mmgen::fleet

#endif // MMGEN_FLEET_POPULATION_HH
