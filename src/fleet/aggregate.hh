/**
 * @file
 * Fleet-level aggregation (the numbers paper Fig. 1 reports).
 */

#ifndef MMGEN_FLEET_AGGREGATE_HH
#define MMGEN_FLEET_AGGREGATE_HH

#include <map>
#include <vector>

#include "fleet/population.hh"

namespace mmgen::fleet {

/** Aggregates for one workload class. */
struct ClassAggregate
{
    int jobs = 0;
    std::int64_t totalGpus = 0;
    double totalParams = 0.0;
    /** Fleet-level GPUs per billion parameters (sum over sum). */
    double gpusPerBParam = 0.0;
    /** Mean per-job memory utilization. */
    double meanMemoryUtilization = 0.0;
    /** Median per-job memory utilization. */
    double medianMemoryUtilization = 0.0;
};

/** Whole-fleet report with the paper's headline ratios. */
struct FleetReport
{
    std::map<WorkloadClass, ClassAggregate> byClass;

    /** TTI-over-LLM ratio of GPUs per parameter (paper: ~14x). */
    double ttiOverLlmGpusPerParam() const;

    /** TTI-over-LLM ratio of mean memory utilization (paper: ~1.4x). */
    double ttiOverLlmMemoryUtilization() const;

    /** TTI minus LLM mean utilization, percentage points (~10). */
    double ttiMinusLlmUtilizationPoints() const;
};

/** Aggregate a fleet against the GPU it runs on. */
FleetReport aggregateFleet(const std::vector<TrainingJob>& jobs,
                           const hw::GpuSpec& gpu);

} // namespace mmgen::fleet

#endif // MMGEN_FLEET_AGGREGATE_HH
