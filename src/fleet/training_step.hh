/**
 * @file
 * FSDP training-step time model.
 *
 * Complements the Fig. 1 memory model with a throughput model: one
 * training step is the forward+backward compute of the model plus the
 * FSDP collectives (all-gather of sharded weights in forward and
 * backward, reduce-scatter of gradients), overlapped imperfectly with
 * compute. Used to compare the GPU efficiency (MFU) of LLM versus
 * TTI/TTV training jobs — the reason the paper's 14x GPUs-per-param
 * ratio matters.
 */

#ifndef MMGEN_FLEET_TRAINING_STEP_HH
#define MMGEN_FLEET_TRAINING_STEP_HH

#include <cstdint>

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::fleet {

/** Interconnect description for the collective model. */
struct InterconnectSpec
{
    /** Per-GPU intra-node bandwidth (NVLink), bytes/s. */
    double intraNodeBandwidth = 300e9;
    /** Per-GPU inter-node bandwidth (IB/RoCE), bytes/s. */
    double interNodeBandwidth = 25e9;
    /** Per-collective latency floor, seconds. */
    double collectiveLatency = 30e-6;

    static InterconnectSpec a100Cluster();

    /** Effective per-GPU algorithm bandwidth for a given world size. */
    double effectiveBandwidth(int world_size, int gpus_per_node) const;
};

/** Inputs of one training-step estimate. */
struct TrainingStepInputs
{
    /** Trainable parameters of the model. */
    double params = 0.0;
    /** Forward-pass FLOPs of one sample (simulated or analytic). */
    double forwardFlopsPerSample = 0.0;
    /** Per-GPU micro-batch size. */
    int microBatch = 1;
    int worldSize = 8;
    int gpusPerNode = 8;
    /** Fraction of communication hidden under compute [0, 1). */
    double overlapFraction = 0.7;
    /** Attained fraction of peak compute during training. */
    double computeEfficiency = 0.45;
};

/** Output decomposition of one step. */
struct TrainingStepEstimate
{
    double computeSeconds = 0.0;
    double exposedCommSeconds = 0.0;
    double stepSeconds = 0.0;
    /** Model FLOPs utilization: useful FLOPs / peak FLOPs. */
    double mfu = 0.0;
    /** Samples per second across the whole job. */
    double throughput = 0.0;
};

/** Estimate one FSDP training step on the given GPU. */
TrainingStepEstimate estimateTrainingStep(const hw::GpuSpec& gpu,
                                          const InterconnectSpec& net,
                                          const TrainingStepInputs& in);

/**
 * Forward FLOPs of one sample of a pipeline, taking each stage once
 * (training runs a single pass, not a denoising loop: diffusion
 * training samples one timestep per image).
 */
double forwardFlopsPerSample(const graph::Pipeline& pipeline,
                             const hw::GpuSpec& gpu);

} // namespace mmgen::fleet

#endif // MMGEN_FLEET_TRAINING_STEP_HH
