#include "aggregate.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace mmgen::fleet {

namespace {

const ClassAggregate&
require(const std::map<WorkloadClass, ClassAggregate>& by_class,
        WorkloadClass c)
{
    auto it = by_class.find(c);
    MMGEN_CHECK(it != by_class.end(),
                "fleet has no " << workloadClassName(c) << " jobs");
    return it->second;
}

} // namespace

double
FleetReport::ttiOverLlmGpusPerParam() const
{
    const ClassAggregate& tti = require(byClass, WorkloadClass::TTI);
    const ClassAggregate& llm = require(byClass, WorkloadClass::LLM);
    MMGEN_CHECK(llm.gpusPerBParam > 0.0, "LLM class has no GPUs");
    return tti.gpusPerBParam / llm.gpusPerBParam;
}

double
FleetReport::ttiOverLlmMemoryUtilization() const
{
    const ClassAggregate& tti = require(byClass, WorkloadClass::TTI);
    const ClassAggregate& llm = require(byClass, WorkloadClass::LLM);
    MMGEN_CHECK(llm.meanMemoryUtilization > 0.0,
                "LLM class has zero utilization");
    return tti.meanMemoryUtilization / llm.meanMemoryUtilization;
}

double
FleetReport::ttiMinusLlmUtilizationPoints() const
{
    const ClassAggregate& tti = require(byClass, WorkloadClass::TTI);
    const ClassAggregate& llm = require(byClass, WorkloadClass::LLM);
    return (tti.meanMemoryUtilization - llm.meanMemoryUtilization) *
           100.0;
}

FleetReport
aggregateFleet(const std::vector<TrainingJob>& jobs,
               const hw::GpuSpec& gpu)
{
    MMGEN_CHECK(!jobs.empty(), "empty fleet");
    FleetReport report;
    std::map<WorkloadClass, std::vector<double>> utils;
    for (const auto& job : jobs) {
        ClassAggregate& agg = report.byClass[job.klass];
        ++agg.jobs;
        agg.totalGpus += job.gpus;
        agg.totalParams += job.params;
        utils[job.klass].push_back(job.memoryUtilization(gpu));
    }
    for (auto& [klass, agg] : report.byClass) {
        MMGEN_ASSERT(agg.totalParams > 0.0,
                     "class with jobs but zero params");
        agg.gpusPerBParam = static_cast<double>(agg.totalGpus) /
                            (agg.totalParams / 1e9);
        const Summary s = summarize(utils[klass]);
        agg.meanMemoryUtilization = s.mean;
        agg.medianMemoryUtilization = s.median;
    }
    return report;
}

} // namespace mmgen::fleet
