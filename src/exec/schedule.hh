/**
 * @file
 * TimelineScheduler: a deterministic discrete-event scheduler that
 * plays an ExecutionPlan onto a GpuSpec.
 *
 * This is the second half of the profiler split. The scheduler walks
 * the plan in program order and assigns every node a real [start, end)
 * interval on a stream, modeling:
 *
 *  - per-stream in-order (FIFO) execution,
 *  - compute/copy overlap when `streams >= 2` routes the Copy lane
 *    onto its own stream,
 *  - host launch-queue depth: with `launchQueueDepth == 0` every
 *    launch is synchronous and its overhead serializes with execution
 *    (the seed profiler's semantics); with depth q >= 1 the host runs
 *    up to q launches ahead so overhead hides under execution,
 *  - CUDA-graph-style launch amortization: a folded node with repeat r
 *    pays full launch overhead once plus a replay fraction for the
 *    remaining r - 1 iterations.
 *
 * With every option at its default the schedule is one back-to-back
 * stream and the makespan reproduces the seed profiler's summed
 * `totalSeconds` bit for bit: per op the scheduler sums the roofline
 * seconds of its kernels in part order and multiplies by the repeat
 * count — the exact arithmetic `CostModel::time` performed.
 */

#ifndef MMGEN_EXEC_SCHEDULE_HH
#define MMGEN_EXEC_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "exec/plan.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::exec {

/** Scheduler knobs. Defaults reproduce the seed profiler exactly. */
struct ScheduleOptions
{
    /**
     * Concurrent hardware streams. 1 serializes every lane onto one
     * stream; >= 2 gives the Copy lane its own stream so weight
     * streaming overlaps compute.
     */
    int streams = 1;

    /**
     * Host launch-queue depth. 0 means synchronous launches: each
     * kernel's launch overhead is paid inline before it executes
     * (exactly the seed cost model). Depth q >= 1 lets the host queue
     * up to q launches ahead of device execution, hiding overhead
     * under running kernels.
     */
    int launchQueueDepth = 0;

    /** Replay repeated iterations as a captured CUDA graph. */
    bool graphLaunch = false;

    /**
     * Fraction of a node's per-iteration launch overhead each graph
     * replay still pays (0 = replays are free, 1 = no amortization).
     * Only meaningful when graphLaunch is set.
     */
    double graphReplayOverheadFraction = 0.0;

    /** True when every knob has its seed-reproducing default. */
    bool isDefault() const;
};

/** One scheduled kernel occurrence on the timeline. */
struct TimelineEvent
{
    /** Index into ExecutionPlan::nodes. */
    std::size_t node = 0;
    /** Index into ExecutionPlan::ops. */
    std::size_t op = 0;
    /** Stream the node ran on (0 = compute, 1 = copy). */
    int stream = 0;
    double startSeconds = 0.0;
    double endSeconds = 0.0;

    double durationSeconds() const { return endSeconds - startSeconds; }
};

/** The scheduled timeline of one plan. */
struct Timeline
{
    /** One event per plan node, in node order. */
    std::vector<TimelineEvent> events;

    /** End-to-end latency: the last event end. */
    double makespan = 0.0;

    /** Busy seconds per stream (indexed by stream id). */
    std::vector<double> streamBusySeconds;

    /**
     * Roofline busy seconds per node (repeats applied), in node
     * order. This is the per-kernel attribution quantity (what
     * kernel-class breakdowns sum); it matches each event's duration
     * up to the last ulp of the op-level grouping arithmetic.
     */
    std::vector<double> nodeSeconds;

    /**
     * Busy seconds per plan op (sum of its nodes' durations), aligned
     * with ExecutionPlan::ops. Under overlap these can sum to more
     * than the makespan, like GPU-busy time in a real profile.
     */
    std::vector<double> opSeconds;

    /** Total host launch overhead (seconds, repeats applied). */
    double launchOverheadSeconds = 0.0;
};

/**
 * Plays ExecutionPlans onto a GPU under fixed scheduling options.
 */
class TimelineScheduler
{
  public:
    explicit TimelineScheduler(hw::GpuSpec gpu,
                               ScheduleOptions options =
                                   ScheduleOptions());

    /** Schedule one plan; deterministic for equal inputs. */
    Timeline schedule(const ExecutionPlan& plan) const;

    const ScheduleOptions& options() const { return opts; }

  private:
    hw::GpuSpec gpu_;
    ScheduleOptions opts;
};

} // namespace mmgen::exec

#endif // MMGEN_EXEC_SCHEDULE_HH
