#include "memory.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mmgen::exec {

namespace {

/** One endpoint of a scheduled live interval. */
struct SweepEvent
{
    double time = 0.0;
    /** +bytes at interval start, -bytes at interval end. */
    double delta = 0.0;
    /** Index into Liveness::buffers (tie-break + live tracking). */
    std::size_t buffer = 0;
    bool isAlloc = false;
};

/**
 * Deterministic sweep order: by time; allocations before frees at
 * equal time (closed intervals — a buffer freed at t and one
 * allocated at t coexist); buffer index last so ties are stable.
 */
bool
sweepBefore(const SweepEvent& a, const SweepEvent& b)
{
    if (a.time != b.time)
        return a.time < b.time;
    if (a.isAlloc != b.isAlloc)
        return a.isAlloc; // allocs first
    return a.buffer < b.buffer;
}

} // namespace

MemoryProfile
analyzeMemory(const ExecutionPlan& plan, const Timeline& timeline)
{
    MMGEN_CHECK(timeline.events.size() == plan.nodes.size(),
                "timeline has " << timeline.events.size()
                                << " events for a plan of "
                                << plan.nodes.size() << " nodes");
    const Liveness lv = deriveLiveness(plan);

    MemoryProfile profile;
    profile.weightBytes = lv.weightBytes;
    profile.bufferCount = lv.buffers.size();

    // No-reuse upper bound: weights plus every buffer of one
    // inference, allocated distinct and never freed.
    profile.noReuseBytes = lv.weightBytes;
    for (const LiveBuffer& b : lv.buffers)
        profile.noReuseBytes += b.bytes;

    // ---- program-order sweep (node-index time axis) ------------------
    //
    // Closed intervals: a buffer [d, u] is live at every node k with
    // d <= k <= u, so allocations apply before the residency at k is
    // recorded and frees apply after.
    const std::size_t num_nodes = plan.nodes.size();
    std::vector<double> alloc_at(num_nodes, 0.0);
    std::vector<double> free_after(num_nodes, 0.0);
    for (const LiveBuffer& b : lv.buffers) {
        alloc_at[b.defNode] += b.bytes;
        free_after[b.lastUseNode] += b.bytes;
    }
    profile.stageResidency.reserve(plan.stageNames.size());
    for (const std::string& name : plan.stageNames)
        profile.stageResidency.push_back({name, 0.0});

    double cur = lv.weightBytes;
    profile.programPeakBytes = lv.weightBytes;
    for (std::size_t k = 0; k < num_nodes; ++k) {
        cur += alloc_at[k];
        profile.programPeakBytes =
            std::max(profile.programPeakBytes, cur);
        const std::size_t stage =
            plan.ops[plan.nodes[k].opIndex].stageIndex;
        StageResidency& sr = profile.stageResidency[stage];
        sr.peakBytes = std::max(sr.peakBytes, cur);
        cur -= free_after[k];
    }

    // ---- scheduled-order sweep (sim-time axis) -----------------------
    std::vector<SweepEvent> events;
    events.reserve(lv.buffers.size() * 2);
    for (std::size_t bi = 0; bi < lv.buffers.size(); ++bi) {
        const LiveBuffer& b = lv.buffers[bi];
        events.push_back({timeline.events[b.defNode].startSeconds,
                          b.bytes, bi, true});
        events.push_back({timeline.events[b.lastUseNode].endSeconds,
                          -b.bytes, bi, false});
    }
    std::sort(events.begin(), events.end(), sweepBefore);

    profile.scheduledPeakBytes = lv.weightBytes;
    profile.scheduledPeakSeconds = 0.0;
    cur = lv.weightBytes;
    std::size_t peak_event = events.size();
    for (std::size_t ei = 0; ei < events.size(); ++ei) {
        cur += events[ei].delta;
        if (cur > profile.scheduledPeakBytes) {
            profile.scheduledPeakBytes = cur;
            profile.scheduledPeakSeconds = events[ei].time;
            peak_event = ei;
        }
    }

    // Replay to the peak event to collect the buffers forming it.
    if (peak_event < events.size()) {
        std::vector<bool> live(lv.buffers.size(), false);
        for (std::size_t ei = 0; ei <= peak_event; ++ei)
            live[events[ei].buffer] = events[ei].isAlloc;
        for (std::size_t bi = 0; bi < lv.buffers.size(); ++bi) {
            if (live[bi])
                profile.peakNodes.push_back(lv.buffers[bi].defNode);
        }
        std::sort(profile.peakNodes.begin(), profile.peakNodes.end());
        profile.peakNodes.erase(std::unique(profile.peakNodes.begin(),
                                            profile.peakNodes.end()),
                                profile.peakNodes.end());
    }
    return profile;
}

FeasibilityReport
analyzeFeasibility(const graph::Pipeline& pipeline,
                   const hw::GpuSpec& gpu,
                   graph::AttentionBackend backend)
{
    const kernels::CostModel model(gpu, backend);
    const ExecutionPlan plan = lowerPipeline(pipeline, model);
    const Timeline timeline = TimelineScheduler(gpu).schedule(plan);

    FeasibilityReport rep;
    rep.profile = analyzeMemory(plan, timeline);
    rep.weightBytes = rep.profile.weightBytes;
    rep.dynamicBytes =
        rep.profile.scheduledPeakBytes - rep.profile.weightBytes;
    rep.capacityBytes = gpu.hbmBytes;

    const double headroom = gpu.hbmBytes - rep.weightBytes;
    if (rep.weightBytes + rep.dynamicBytes > gpu.hbmBytes) {
        rep.maxBatch = 0; // not even one request fits
    } else if (rep.dynamicBytes <= 0.0) {
        rep.maxBatch = kUnboundedBatch;
    } else {
        const double fit = std::floor(headroom / rep.dynamicBytes);
        rep.maxBatch = std::min<std::int64_t>(
            kUnboundedBatch, static_cast<std::int64_t>(fit));
    }
    return rep;
}

std::int64_t
maxFeasibleBatch(const graph::Pipeline& pipeline, const hw::GpuSpec& gpu,
                 graph::AttentionBackend backend)
{
    return analyzeFeasibility(pipeline, gpu, backend).maxBatch;
}

} // namespace mmgen::exec
