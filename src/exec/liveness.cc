#include "liveness.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::exec {

std::string
bufferKindName(BufferKind kind)
{
    switch (kind) {
      case BufferKind::Activation:
        return "activation";
      case BufferKind::OperandWindow:
        return "operand_window";
      case BufferKind::Workspace:
        return "workspace";
      case BufferKind::WeightStage:
        return "weight_stage";
    }
    MMGEN_ASSERT(false, "unknown buffer kind");
}

Liveness
deriveLiveness(const ExecutionPlan& plan)
{
    Liveness lv;
    lv.weightBytes = static_cast<double>(plan.totalParams) *
                     static_cast<double>(dtypeBytes(plan.dtype));
    lv.buffers.reserve(plan.ops.size() * 2);

    for (std::size_t oi = 0; oi < plan.ops.size(); ++oi) {
        const PlanOp& op = plan.ops[oi];
        MMGEN_CHECK(op.nodeCount >= 1,
                    "op " << op.scope << " lowered to no kernels");
        const std::size_t first = op.firstNode;
        const std::size_t last = op.firstNode + op.nodeCount - 1;

        // Operands beyond the predecessor's output (residual streams,
        // encoder K/V, second elementwise inputs) are modeled as a
        // window materialized across this op only — the chain buffer
        // itself is accounted once, below, by its producer.
        const double prev_out =
            oi > 0 ? plan.ops[oi - 1].outputBytes : 0.0;
        const double window =
            std::max(0.0, op.inputBytes - prev_out);
        if (window > 0.0)
            lv.buffers.push_back({BufferKind::OperandWindow, oi,
                                  window, first, last});

        if (op.workspaceBytes > 0.0)
            lv.buffers.push_back({BufferKind::Workspace, oi,
                                  op.workspaceBytes, first, last});

        // The output is allocated when the op starts and freed after
        // its program-order consumer finishes reading it.
        if (op.outputBytes > 0.0) {
            std::size_t last_use = last;
            if (oi + 1 < plan.ops.size()) {
                const PlanOp& next = plan.ops[oi + 1];
                last_use = next.firstNode + next.nodeCount - 1;
            }
            lv.buffers.push_back({BufferKind::Activation, oi,
                                  op.outputBytes, first, last_use});
        }

        // Weight-stream staging lives from the prefetch copy until the
        // op's last compute kernel retires; under a multi-stream
        // schedule the copy starts early, widening the lifetime.
        for (std::size_t n = first; n <= last; ++n) {
            const PlanNode& node = plan.nodes[n];
            if (node.weightStream && node.hbmBytes > 0.0)
                lv.buffers.push_back({BufferKind::WeightStage, oi,
                                      node.hbmBytes, n, last});
        }
    }
    return lv;
}

} // namespace mmgen::exec
