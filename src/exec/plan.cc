#include "plan.hh"

#include "hw/roofline.hh"
#include "util/logging.hh"

namespace mmgen::exec {

std::string
laneName(Lane lane)
{
    return lane == Lane::Compute ? "compute" : "copy";
}

std::int64_t
ExecutionPlan::totalLaunches() const
{
    std::int64_t total = 0;
    for (const PlanNode& node : nodes)
        total += static_cast<std::int64_t>(node.launches) * node.repeat;
    return total;
}

namespace {

/**
 * True when the kernel stays memory-bound under the roofline, so
 * peeling its weight traffic onto the copy lane can only shorten (or
 * at worst preserve) the compute-lane critical path.
 */
bool
worthStreaming(const hw::GpuSpec& gpu, const kernels::SubKernelCost& part,
               DType dtype, const LoweringOptions& options)
{
    if (!options.splitWeightStreams)
        return false;
    if (part.weightBytes <
            static_cast<double>(options.minStreamedWeightBytes) ||
        part.weightBytes >= part.hbmBytes)
        return false;
    hw::TimeEstimateInputs in;
    in.flops = part.flops;
    in.hbmBytes = part.hbmBytes;
    in.computeEfficiency = part.computeEff;
    in.memoryEfficiency = part.memEff;
    in.launches = part.launches;
    in.dtype = dtype;
    const hw::TimeEstimate est = hw::estimateTime(gpu, in);
    return est.memorySeconds >= est.computeSeconds;
}

struct LoweringState
{
    std::int32_t lastComputeNode = -1;
    std::int32_t lastCopyNode = -1;
};

void
lowerTrace(const graph::Trace& trace, std::size_t stage_index,
           std::int64_t repeat, const kernels::CostModel& model,
           const LoweringOptions& options, LoweringState& state,
           ExecutionPlan& plan)
{
    plan.ops.reserve(plan.ops.size() + trace.size());
    for (const auto& op : trace.ops()) {
        const kernels::OpCost cost = model.cost(op);

        PlanOp pop;
        pop.stageIndex = stage_index;
        pop.kind = op.kind;
        pop.category = graph::opCategory(op);
        pop.scope = op.scope;
        pop.dtype = op.dtype;
        pop.repeat = repeat;
        pop.paramCount = graph::opParamCount(op);
        if (op.kind == graph::OpKind::Attention) {
            const auto& a = op.as<graph::AttentionAttrs>();
            pop.seqQ = a.seqQ;
            pop.seqKv = a.seqKv;
            pop.attnKind = a.kind;
        }
        const kernels::OpMemoryDemand dem = model.memoryDemand(op);
        pop.inputBytes = dem.inputBytes;
        pop.outputBytes = dem.outputBytes;
        pop.weightResidentBytes = dem.weightResidentBytes;
        pop.weightReadBytes = dem.weightReadBytes;
        pop.workspaceBytes = dem.workspaceBytes;
        pop.firstNode = plan.nodes.size();

        std::int32_t weight_node = -1;
        // Weight-stream nodes precede the kernels that consume them so
        // node order remains a valid serial execution order.
        for (const auto& part : cost.parts) {
            if (!worthStreaming(model.gpu(), part, op.dtype, options))
                continue;
            PlanNode w;
            w.opIndex = plan.ops.size();
            w.klass = kernels::KernelClass::Memory;
            w.label = part.label + ".weight_stream";
            w.lane = Lane::Copy;
            w.weightStream = true;
            w.flops = 0.0;
            w.hbmBytes = part.weightBytes;
            // The streamed traffic was issued by the original kernel's
            // launch; the copy lane adds no host-side launches.
            w.launches = 0;
            w.computeEff = 1.0;
            w.memEff = part.memEff;
            w.repeat = repeat;
            w.dtype = op.dtype;
            if (state.lastCopyNode >= 0)
                w.deps.push_back(state.lastCopyNode);
            weight_node = static_cast<std::int32_t>(plan.nodes.size());
            state.lastCopyNode = weight_node;
            plan.nodes.push_back(std::move(w));
            plan.hasWeightStreams = true;
            break; // every weight-carrying op lowers to one kernel
        }

        bool first_compute = true;
        for (const auto& part : cost.parts) {
            PlanNode node;
            node.opIndex = plan.ops.size();
            node.klass = part.klass;
            node.label = part.label;
            node.lane = Lane::Compute;
            node.flops = part.flops;
            node.hbmBytes = weight_node >= 0
                                ? part.hbmBytes - part.weightBytes
                                : part.hbmBytes;
            node.launches = part.launches;
            node.computeEff = part.computeEff;
            node.memEff = part.memEff;
            node.repeat = repeat;
            node.dtype = op.dtype;
            if (first_compute) {
                if (state.lastComputeNode >= 0)
                    node.deps.push_back(state.lastComputeNode);
                if (weight_node >= 0)
                    node.deps.push_back(weight_node);
            } else {
                node.deps.push_back(state.lastComputeNode);
            }
            state.lastComputeNode =
                static_cast<std::int32_t>(plan.nodes.size());
            plan.nodes.push_back(std::move(node));
            first_compute = false;
        }

        pop.nodeCount = plan.nodes.size() - pop.firstNode;
        plan.ops.push_back(std::move(pop));
    }
}

} // namespace

ExecutionPlan
lowerPipeline(const graph::Pipeline& pipeline,
              const kernels::CostModel& model,
              const LoweringOptions& options)
{
    MMGEN_CHECK(options.minStreamedWeightBytes >= 0,
                "minStreamedWeightBytes must be non-negative");
    ExecutionPlan plan;
    plan.model = pipeline.name;
    plan.backend = model.backend();
    plan.dtype = pipeline.dtype;
    plan.totalParams = pipeline.totalParams();

    LoweringState state;
    for (std::size_t si = 0; si < pipeline.stages.size(); ++si) {
        const graph::Stage& stage = pipeline.stages[si];
        plan.stageNames.push_back(stage.name);
        if (stage.perIterationShapes) {
            for (std::int64_t it = 0; it < stage.iterations; ++it) {
                const graph::Trace trace = pipeline.traceStage(si, it);
                lowerTrace(trace, si, 1, model, options, state, plan);
            }
        } else {
            const graph::Trace trace = pipeline.traceStage(si, 0);
            lowerTrace(trace, si, stage.iterations, model, options,
                       state, plan);
        }
    }
    return plan;
}

} // namespace mmgen::exec
