#include "schedule.hh"

#include <algorithm>

#include "hw/roofline.hh"
#include "util/logging.hh"

namespace mmgen::exec {

bool
ScheduleOptions::isDefault() const
{
    return streams == 1 && launchQueueDepth == 0 && !graphLaunch &&
           graphReplayOverheadFraction == 0.0;
}

TimelineScheduler::TimelineScheduler(hw::GpuSpec gpu,
                                     ScheduleOptions options)
    : gpu_(std::move(gpu)), opts(options)
{
    MMGEN_CHECK(opts.streams >= 1, "need at least one stream, got "
                                       << opts.streams);
    MMGEN_CHECK(opts.launchQueueDepth >= 0,
                "launch queue depth must be non-negative");
    MMGEN_CHECK(opts.graphReplayOverheadFraction >= 0.0 &&
                    opts.graphReplayOverheadFraction <= 1.0,
                "graph replay fraction out of [0, 1]");
}

namespace {

hw::TimeEstimate
nodeEstimate(const hw::GpuSpec& gpu, const PlanNode& node)
{
    hw::TimeEstimateInputs in;
    in.flops = node.flops;
    in.hbmBytes = node.hbmBytes;
    in.computeEfficiency = node.computeEff;
    in.memoryEfficiency = node.memEff;
    in.launches = node.launches;
    in.dtype = node.dtype;
    return hw::estimateTime(gpu, in);
}

/**
 * Serial back-to-back schedule. Every node runs on stream 0 in
 * program order; per op the duration is (sum of part roofline
 * seconds) * repeat — the exact arithmetic the seed profiler used, so
 * the makespan is bit-identical to the old summed totalSeconds.
 * Events subdivide each op's span at part granularity.
 */
Timeline
scheduleSerial(const hw::GpuSpec& gpu, const ExecutionPlan& plan)
{
    Timeline tl;
    tl.events.reserve(plan.nodes.size());
    tl.nodeSeconds.reserve(plan.nodes.size());
    tl.opSeconds.reserve(plan.ops.size());
    tl.streamBusySeconds.assign(1, 0.0);

    double clock = 0.0;
    std::vector<double> part_seconds;
    for (std::size_t oi = 0; oi < plan.ops.size(); ++oi) {
        const PlanOp& op = plan.ops[oi];
        const double r = static_cast<double>(op.repeat);

        part_seconds.clear();
        double block_sum = 0.0;
        for (std::size_t n = op.firstNode;
             n < op.firstNode + op.nodeCount; ++n) {
            const hw::TimeEstimate est =
                nodeEstimate(gpu, plan.nodes[n]);
            part_seconds.push_back(est.seconds);
            block_sum += est.seconds;
            tl.nodeSeconds.push_back(est.seconds * r);
            tl.launchOverheadSeconds += est.overheadSeconds * r;
        }
        const double block_dur = block_sum * r;

        double prefix = 0.0;
        for (std::size_t p = 0; p < part_seconds.size(); ++p) {
            TimelineEvent ev;
            ev.node = op.firstNode + p;
            ev.op = oi;
            ev.stream = 0;
            ev.startSeconds = clock + prefix * r;
            prefix += part_seconds[p];
            ev.endSeconds = p + 1 == part_seconds.size()
                                ? clock + block_dur
                                : clock + prefix * r;
            tl.events.push_back(ev);
        }
        clock += block_dur;
        tl.opSeconds.push_back(block_dur);
        tl.streamBusySeconds[0] += block_dur;
    }
    tl.makespan = clock;
    return tl;
}

} // namespace

Timeline
TimelineScheduler::schedule(const ExecutionPlan& plan) const
{
    const bool copy_stream =
        opts.streams >= 2 && plan.hasWeightStreams;
    if (!copy_stream && opts.launchQueueDepth == 0 &&
        !opts.graphLaunch) {
        return scheduleSerial(gpu_, plan);
    }

    const int num_streams = copy_stream ? 2 : 1;
    const int q = opts.launchQueueDepth;
    const double replay_frac = opts.graphReplayOverheadFraction;

    Timeline tl;
    tl.events.reserve(plan.nodes.size());
    tl.nodeSeconds.reserve(plan.nodes.size());
    tl.opSeconds.assign(plan.ops.size(), 0.0);
    tl.streamBusySeconds.assign(
        static_cast<std::size_t>(num_streams), 0.0);

    std::vector<double> cursor(static_cast<std::size_t>(num_streams),
                               0.0);
    // Host launch pipeline: issue times in node order; the host may
    // run at most q unstarted launches ahead of the device.
    double host_clock = 0.0;
    std::vector<double> start_times;
    start_times.reserve(plan.nodes.size());

    for (std::size_t n = 0; n < plan.nodes.size(); ++n) {
        const PlanNode& node = plan.nodes[n];
        const hw::TimeEstimate est = nodeEstimate(gpu_, node);
        const double r = static_cast<double>(node.repeat);
        const double exec =
            std::max(est.computeSeconds, est.memorySeconds) * r;
        const double overhead =
            opts.graphLaunch
                ? est.overheadSeconds *
                      (1.0 + (r - 1.0) * replay_frac)
                : est.overheadSeconds * r;
        tl.launchOverheadSeconds += overhead;

        double launched = 0.0;
        double duration = exec;
        if (q == 0) {
            // Synchronous launches: overhead serializes inline.
            duration += overhead;
        } else {
            // The host issues launches in program order, stalling when
            // the queue already holds q kernels the device has not
            // started.
            double issue = host_clock;
            if (n >= static_cast<std::size_t>(q))
                issue = std::max(
                    issue,
                    start_times[n - static_cast<std::size_t>(q)]);
            host_clock = issue + overhead;
            launched = host_clock;
        }

        const int stream =
            copy_stream && node.lane == Lane::Copy ? 1 : 0;
        double start =
            std::max(cursor[static_cast<std::size_t>(stream)],
                     launched);
        for (const std::int32_t dep : node.deps)
            start = std::max(
                start,
                tl.events[static_cast<std::size_t>(dep)].endSeconds);

        TimelineEvent ev;
        ev.node = n;
        ev.op = node.opIndex;
        ev.stream = stream;
        ev.startSeconds = start;
        ev.endSeconds = start + duration;
        cursor[static_cast<std::size_t>(stream)] = ev.endSeconds;
        tl.streamBusySeconds[static_cast<std::size_t>(stream)] +=
            duration;
        tl.nodeSeconds.push_back(duration);
        tl.opSeconds[node.opIndex] += duration;
        tl.makespan = std::max(tl.makespan, ev.endSeconds);
        start_times.push_back(start);
        tl.events.push_back(ev);
    }
    return tl;
}

} // namespace mmgen::exec
