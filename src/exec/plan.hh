/**
 * @file
 * ExecutionPlan: the kernel-level lowered IR of one pipeline inference.
 *
 * Lowering is the first half of the profiler split (the second half is
 * the event-timeline scheduler in exec/schedule.hh). A Pipeline is
 * traced stage by stage exactly as the profiler always has — folded
 * stages once with a repeat count, per-iteration-shape stages every
 * iteration — and each graph op is lowered through the CostModel into
 * its device kernels. The plan keeps one PlanNode per SubKernelCost,
 * carrying stage/op provenance, explicit dependencies, and a lane
 * assignment (compute vs. memcpy/weight-stream), so a scheduler can
 * play the same work onto a GPU under different concurrency models
 * without re-tracing anything.
 */

#ifndef MMGEN_EXEC_PLAN_HH
#define MMGEN_EXEC_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.hh"
#include "graph/pipeline.hh"
#include "kernels/cost_model.hh"

namespace mmgen::exec {

/** Hardware lane a plan node is assigned to. */
enum class Lane : std::uint8_t {
    /** The default execution lane all traced kernels run on. */
    Compute,
    /** The memcpy/weight-stream lane (async copies, prefetches). */
    Copy,
};

/** Human-readable lane name ("compute" / "copy"). */
std::string laneName(Lane lane);

/** Knobs for lowering a pipeline into an ExecutionPlan. */
struct LoweringOptions
{
    /**
     * Peel weight traffic out of memory-bound kernels into synthetic
     * weight-stream nodes on the Copy lane, so a multi-stream
     * scheduler can prefetch weights under earlier compute. Off by
     * default: the default plan lowers to exactly the kernels the
     * seed profiler costed.
     */
    bool splitWeightStreams = false;

    /**
     * Minimum weight bytes a kernel must read before its weight
     * traffic is worth a separate stream node. Tiny weights (norm
     * affines, biases folded into their kernels) stay fused.
     */
    std::int64_t minStreamedWeightBytes = 1 << 20;
};

/** One graph-level operator instance in the plan (op provenance). */
struct PlanOp
{
    /** Index of the owning stage in the pipeline. */
    std::size_t stageIndex = 0;
    graph::OpKind kind = graph::OpKind::Elementwise;
    graph::OpCategory category = graph::OpCategory::Elementwise;
    /** Dotted module path, e.g. "unet.down0.attn.self". */
    std::string scope;
    DType dtype = DType::F16;
    /** Folded execution count (stage iterations for folded stages). */
    std::int64_t repeat = 1;
    /** Trainable parameters this op instance owns. */
    std::int64_t paramCount = 0;

    /** Attention metadata (attention ops only, else -1 / defaults). */
    std::int64_t seqQ = -1;
    std::int64_t seqKv = -1;
    graph::AttentionKind attnKind = graph::AttentionKind::SelfSpatial;

    // -- per-instance memory demand (kernels::OpMemoryDemand, captured
    //    at lowering so liveness analysis needs only the plan) --

    /** Activation operand bytes the op reads. */
    double inputBytes = 0.0;
    /** Activation result bytes the op writes. */
    double outputBytes = 0.0;
    /** Parameter bytes resident while the model is loaded. */
    double weightResidentBytes = 0.0;
    /** Parameter traffic floor (gathered rows for embeddings). */
    double weightReadBytes = 0.0;
    /** Transient scratch live only across this op's own kernels. */
    double workspaceBytes = 0.0;

    /** Nodes [firstNode, firstNode + nodeCount) belong to this op. */
    std::size_t firstNode = 0;
    std::size_t nodeCount = 0;
};

/**
 * One device kernel instance: the schedulable unit of the plan.
 *
 * Dependency edges always point at lower node indices, so a single
 * forward pass can schedule or analyse the plan. A node's implicit
 * program-order position is its index; `deps` carries only the true
 * ordering constraints (previous kernel of the same op, the
 * program-order predecessor on the compute chain, and the
 * weight-stream node an op's first kernel consumes).
 */
struct PlanNode
{
    /** Index of the owning PlanOp. */
    std::size_t opIndex = 0;
    kernels::KernelClass klass = kernels::KernelClass::Elementwise;
    /** Kernel label from the cost model, e.g. "flash_fused". */
    std::string label;
    Lane lane = Lane::Compute;
    /** True for synthetic weight-prefetch nodes created by splitting. */
    bool weightStream = false;

    double flops = 0.0;
    double hbmBytes = 0.0;
    /** Device launches per executed iteration. */
    int launches = 1;
    double computeEff = 1.0;
    double memEff = 1.0;
    /** Folded execution count (copied from the owning op). */
    std::int64_t repeat = 1;
    DType dtype = DType::F16;

    /** Predecessor node indices (each strictly less than this index). */
    std::vector<std::int32_t> deps;
};

/**
 * A lowered pipeline: every kernel of one full inference, in program
 * order, with provenance and dependencies.
 */
struct ExecutionPlan
{
    std::string model;
    graph::AttentionBackend backend = graph::AttentionBackend::Flash;
    DType dtype = DType::F16;

    /** Stage names in pipeline order (indexed by PlanOp::stageIndex). */
    std::vector<std::string> stageNames;

    /** Graph-level ops in execution order. */
    std::vector<PlanOp> ops;

    /** Device kernels in program order (grouped per op). */
    std::vector<PlanNode> nodes;

    /** Trainable parameters of the whole pipeline. */
    std::int64_t totalParams = 0;

    /** True when lowering created any Copy-lane weight-stream node. */
    bool hasWeightStreams = false;

    /** Total device launches across the plan (repeats applied). */
    std::int64_t totalLaunches() const;
};

/**
 * Lower a pipeline through a cost model into an ExecutionPlan.
 *
 * Stage traversal matches the profiler contract exactly: stages with
 * shape-invariant iterations are traced once and folded into repeat
 * counts; per-iteration-shape stages are traced every iteration.
 */
ExecutionPlan lowerPipeline(const graph::Pipeline& pipeline,
                            const kernels::CostModel& model,
                            const LoweringOptions& options =
                                LoweringOptions());

} // namespace mmgen::exec

#endif // MMGEN_EXEC_PLAN_HH
