/**
 * @file
 * Buffer liveness over an ExecutionPlan.
 *
 * The lowered IR is a linear kernel trace, so its dataflow is the
 * classic single-assignment chain: every op writes one activation
 * buffer that the next op in program order consumes, reads whatever
 * extra operands its demand records beyond that chain (residual
 * streams, encoder K/V), keeps transient workspace across its own
 * kernels, and — when lowering peeled a weight stream — holds the
 * prefetched staging buffer from the copy node until its last compute
 * kernel retires. Parameters are resident for the whole run.
 *
 * The derivation emits every buffer as a closed [defNode, lastUseNode]
 * interval in node-index (program) order. The memory analyzer sweeps
 * those intervals directly for the program-order peak, and maps them
 * through the scheduled timeline (event start of the def node, event
 * end of the last use) so stream overlap correctly widens lifetimes.
 */

#ifndef MMGEN_EXEC_LIVENESS_HH
#define MMGEN_EXEC_LIVENESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/plan.hh"

namespace mmgen::exec {

/** What a live buffer holds. */
enum class BufferKind : std::uint8_t {
    /** An op's activation output, consumed by its program successor. */
    Activation,
    /** Extra operands an op reads beyond its predecessor's output. */
    OperandWindow,
    /** Transient scratch live only across the op's own kernels. */
    Workspace,
    /** Weight-stream staging: copy-node prefetch to consumer retire. */
    WeightStage,
};

/** Lowercase buffer-kind name for reports and JSON. */
std::string bufferKindName(BufferKind kind);

/** One buffer with its closed program-order live interval. */
struct LiveBuffer
{
    BufferKind kind = BufferKind::Activation;
    /** Owning op (index into ExecutionPlan::ops). */
    std::size_t opIndex = 0;
    double bytes = 0.0;
    /** Node whose execution allocates the buffer. */
    std::size_t defNode = 0;
    /** Last node that reads the buffer (>= defNode). */
    std::size_t lastUseNode = 0;
};

/** Every buffer of one inference, plus the resident parameter block. */
struct Liveness
{
    /** Parameter bytes resident for the whole run. */
    double weightBytes = 0.0;
    /** Dynamic buffers in def-node order. */
    std::vector<LiveBuffer> buffers;
};

/**
 * Derive def/use intervals for every buffer of a lowered plan.
 * Deterministic: equal plans produce byte-identical results.
 */
Liveness deriveLiveness(const ExecutionPlan& plan);

} // namespace mmgen::exec

#endif // MMGEN_EXEC_LIVENESS_HH
