/**
 * @file
 * Static memory analysis over lowered ExecutionPlans.
 *
 * Sweeps the liveness intervals of a plan into a MemoryProfile: the
 * peak resident bytes in program order (equivalently the interval-
 * graph reuse lower bound — interval graphs are perfect, so a
 * first-fit allocator achieves exactly the maximum clique), the peak
 * under the *scheduled* timeline (stream overlap widens lifetimes, so
 * this is never below the program-order peak), the no-reuse upper
 * bound (every buffer distinct and never freed), the node set forming
 * the scheduled peak, and a per-stage residency curve.
 *
 * `maxFeasibleBatch` turns the batch-1 profile into the static
 * admission bound ROADMAP item 2 calls for: weights are shared across
 * a batch while dynamic (activation/workspace) memory scales
 * per-request, so the largest batch a GPU can hold is
 * floor((VRAM - weights) / dynamicPeak).
 */

#ifndef MMGEN_EXEC_MEMORY_HH
#define MMGEN_EXEC_MEMORY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/liveness.hh"
#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::exec {

/** Peak resident bytes while one stage's kernels execute. */
struct StageResidency
{
    std::string stage;
    /** Program-order peak live bytes across the stage's nodes. */
    double peakBytes = 0.0;
};

/** Result of sweeping a plan's liveness intervals. */
struct MemoryProfile
{
    /** Parameter bytes resident for the whole run. */
    double weightBytes = 0.0;

    /**
     * Peak live bytes in program order: the greedy interval-graph
     * reuse lower bound (no allocator can do better; first-fit on the
     * interval graph achieves it).
     */
    double programPeakBytes = 0.0;

    /** Peak live bytes under the scheduled timeline. */
    double scheduledPeakBytes = 0.0;
    /** Sim time at which the scheduled peak is first reached. */
    double scheduledPeakSeconds = 0.0;

    /** Upper bound: weights plus every buffer, never freed. */
    double noReuseBytes = 0.0;

    /** Def nodes of the dynamic buffers live at the scheduled peak. */
    std::vector<std::size_t> peakNodes;

    /** Per-stage residency curve, in pipeline stage order. */
    std::vector<StageResidency> stageResidency;

    /** Dynamic buffers the analysis tracked. */
    std::size_t bufferCount = 0;

    /** Bytes an interval-reusing allocator saves vs. no reuse. */
    double reuseSavingsBytes() const
    {
        return noReuseBytes - scheduledPeakBytes;
    }
};

/**
 * Sweep a plan's liveness through its scheduled timeline.
 * Deterministic: equal inputs produce byte-identical profiles.
 */
MemoryProfile analyzeMemory(const ExecutionPlan& plan,
                            const Timeline& timeline);

/** Static memory feasibility of one pipeline on one GPU. */
struct FeasibilityReport
{
    /** Shared (batch-invariant) parameter bytes. */
    double weightBytes = 0.0;
    /** Per-request dynamic peak (activations + workspace), bytes. */
    double dynamicBytes = 0.0;
    /** Device capacity, bytes. */
    double capacityBytes = 0.0;
    /** Largest batch that fits (0 = not even one request fits). */
    std::int64_t maxBatch = 0;
    /** The batch-1 profile the bound was derived from. */
    MemoryProfile profile;
};

/** Batch ceiling when the per-request dynamic demand rounds to zero. */
inline constexpr std::int64_t kUnboundedBatch = 1 << 20;

/**
 * Analyze a pipeline's default (serial) plan on a GPU and derive the
 * largest memory-feasible batch. Monotonically non-increasing in any
 * knob that grows activations (image extent, sequence length, frame
 * count) since weights are batch-invariant.
 */
FeasibilityReport
analyzeFeasibility(const graph::Pipeline& pipeline,
                   const hw::GpuSpec& gpu,
                   graph::AttentionBackend backend =
                       graph::AttentionBackend::Flash);

/** Just the batch bound of `analyzeFeasibility`. */
std::int64_t maxFeasibleBatch(const graph::Pipeline& pipeline,
                              const hw::GpuSpec& gpu,
                              graph::AttentionBackend backend =
                                  graph::AttentionBackend::Flash);

} // namespace mmgen::exec

#endif // MMGEN_EXEC_MEMORY_HH
