#include "faults.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mmgen::serving {

namespace {

// Stream-id bases keeping every stochastic process on its own split
// Rng stream. Arrivals use the unsplit Rng(seed) stream, so fault
// draws can never perturb the arrival sequence.
constexpr std::uint64_t kFailureStream = 0x0001'0000;
constexpr std::uint64_t kPreemptionStream = 0x0002'0000;
constexpr std::uint64_t kStragglerStream = 0x0003'0000;
constexpr std::uint64_t kDomainStream = 0x0004'0000;

/**
 * Alternating up/down renewal process: up times ~ Exp(1/mtbf), down
 * times ~ Exp(1/mttr), truncated at the horizon.
 */
std::vector<Outage>
renewalOutages(Rng& rng, double mtbf, double mttr, OutageKind kind,
               double horizon)
{
    std::vector<Outage> outages;
    if (mtbf <= 0.0)
        return outages;
    double t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t >= horizon)
            break;
        Outage o;
        o.start = t;
        o.end = t + rng.exponential(1.0 / mttr);
        o.kind = kind;
        t = o.end;
        outages.push_back(o);
    }
    return outages;
}

} // namespace

std::vector<Outage>
mergeOutages(std::vector<Outage> outages)
{
    std::sort(outages.begin(), outages.end(),
              [](const Outage& a, const Outage& b) {
                  return a.start < b.start;
              });
    std::vector<Outage> merged;
    for (const Outage& o : outages) {
        if (!merged.empty() && o.start <= merged.back().end) {
            Outage& prev = merged.back();
            prev.end = std::max(prev.end, o.end);
            if (o.kind == OutageKind::Failure)
                prev.kind = OutageKind::Failure;
        } else {
            merged.push_back(o);
        }
    }
    return merged;
}

bool
FaultConfig::any() const
{
    return failureMtbfSeconds > 0.0 || preemptionMtbfSeconds > 0.0 ||
           domainMtbfSeconds > 0.0 ||
           (stragglerFraction > 0.0 && stragglerSlowdown > 1.0);
}

double
GpuFaultTimeline::availability(double horizonSeconds) const
{
    MMGEN_CHECK(horizonSeconds > 0.0, "horizon must be positive");
    double down = 0.0;
    for (const Outage& o : outages) {
        const double start = std::min(o.start, horizonSeconds);
        const double end = std::min(o.end, horizonSeconds);
        down += end - start;
    }
    return 1.0 - down / horizonSeconds;
}

bool
GpuFaultTimeline::downAt(double t) const
{
    for (const Outage& o : outages) {
        if (t < o.start)
            return false;
        if (t < o.end)
            return true;
    }
    return false;
}

double
FleetFaultPlan::meanAvailability(double horizonSeconds) const
{
    if (gpus.empty())
        return 1.0;
    double sum = 0.0;
    for (const GpuFaultTimeline& g : gpus)
        sum += g.availability(horizonSeconds);
    return sum / static_cast<double>(gpus.size());
}

std::int64_t
FleetFaultPlan::totalOutages() const
{
    std::int64_t n = 0;
    for (const GpuFaultTimeline& g : gpus)
        n += static_cast<std::int64_t>(g.outages.size());
    return n;
}

std::vector<double>
FleetFaultPlan::domainAvailability(double horizonSeconds) const
{
    if (domainOf.empty())
        return {meanAvailability(horizonSeconds)};
    MMGEN_CHECK(domainOf.size() == gpus.size(),
                "domain map does not cover the pool");
    int numDomains = 0;
    for (int d : domainOf)
        numDomains = std::max(numDomains, d + 1);
    std::vector<double> sum(static_cast<std::size_t>(numDomains), 0.0);
    std::vector<int> count(static_cast<std::size_t>(numDomains), 0);
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        const std::size_t d = static_cast<std::size_t>(domainOf[g]);
        sum[d] += gpus[g].availability(horizonSeconds);
        ++count[d];
    }
    std::vector<double> avail(sum.size(), 1.0);
    for (std::size_t d = 0; d < sum.size(); ++d) {
        if (count[d] > 0)
            avail[d] = sum[d] / static_cast<double>(count[d]);
    }
    return avail;
}

namespace {

FleetFaultPlan
planFaultsImpl(const FaultConfig& cfg,
               const std::vector<int>& domainOf,
               double horizonSeconds, std::uint64_t seed, int numGpus)
{
    MMGEN_CHECK(numGpus >= 1, "need at least one GPU");
    MMGEN_CHECK(domainOf.empty() ||
                    domainOf.size() ==
                        static_cast<std::size_t>(numGpus),
                "domain map does not cover the pool");
    MMGEN_CHECK(horizonSeconds > 0.0, "horizon must be positive");
    MMGEN_CHECK(cfg.failureMtbfSeconds >= 0.0 &&
                    cfg.preemptionMtbfSeconds >= 0.0 &&
                    cfg.domainMtbfSeconds >= 0.0,
                "MTBF must be non-negative");
    MMGEN_CHECK(cfg.failureMtbfSeconds == 0.0 ||
                    cfg.failureMttrSeconds > 0.0,
                "failure MTTR must be positive");
    MMGEN_CHECK(cfg.preemptionMtbfSeconds == 0.0 ||
                    cfg.preemptionMeanSeconds > 0.0,
                "preemption duration must be positive");
    MMGEN_CHECK(cfg.domainMtbfSeconds == 0.0 ||
                    cfg.domainMttrSeconds > 0.0,
                "domain MTTR must be positive");
    MMGEN_CHECK(cfg.stragglerFraction >= 0.0 &&
                    cfg.stragglerFraction <= 1.0,
                "straggler fraction out of [0, 1]");
    MMGEN_CHECK(cfg.stragglerSlowdown >= 1.0,
                "straggler slowdown must be >= 1");
    for (int d : domainOf)
        MMGEN_CHECK(d >= 0, "domain ids must be non-negative");

    // Correlated whole-domain outages: one renewal process per
    // distinct domain, on its own split stream keyed by the domain id,
    // so adding a domain never perturbs per-GPU processes (and
    // disabling domain faults reproduces the original plan
    // bit-for-bit).
    std::vector<std::vector<Outage>> domainOutages;
    if (cfg.domainMtbfSeconds > 0.0 && !domainOf.empty()) {
        int numDomains = 0;
        for (int d : domainOf)
            numDomains = std::max(numDomains, d + 1);
        domainOutages.resize(static_cast<std::size_t>(numDomains));
        for (int d = 0; d < numDomains; ++d) {
            Rng dom = Rng::stream(
                seed, kDomainStream + static_cast<std::uint64_t>(d));
            domainOutages[static_cast<std::size_t>(d)] =
                renewalOutages(dom, cfg.domainMtbfSeconds,
                               cfg.domainMttrSeconds,
                               OutageKind::Failure, horizonSeconds);
        }
    }

    FleetFaultPlan plan;
    plan.domainOf = domainOf;
    plan.gpus.resize(static_cast<std::size_t>(numGpus));
    for (int g = 0; g < numGpus; ++g) {
        GpuFaultTimeline& tl = plan.gpus[static_cast<std::size_t>(g)];
        const std::uint64_t gid = static_cast<std::uint64_t>(g);

        Rng fail = Rng::stream(seed, kFailureStream + gid);
        std::vector<Outage> outages = renewalOutages(
            fail, cfg.failureMtbfSeconds, cfg.failureMttrSeconds,
            OutageKind::Failure, horizonSeconds);

        Rng preempt = Rng::stream(seed, kPreemptionStream + gid);
        std::vector<Outage> preemptions = renewalOutages(
            preempt, cfg.preemptionMtbfSeconds,
            cfg.preemptionMeanSeconds, OutageKind::Preemption,
            horizonSeconds);
        outages.insert(outages.end(), preemptions.begin(),
                       preemptions.end());

        if (!domainOutages.empty()) {
            const std::vector<Outage>& dom = domainOutages
                [static_cast<std::size_t>(
                    domainOf[static_cast<std::size_t>(g)])];
            outages.insert(outages.end(), dom.begin(), dom.end());
        }

        tl.outages = mergeOutages(std::move(outages));

        Rng straggle = Rng::stream(seed, kStragglerStream + gid);
        if (cfg.stragglerFraction > 0.0 &&
            straggle.uniform() < cfg.stragglerFraction) {
            tl.slowdown = cfg.stragglerSlowdown;
        }
    }
    return plan;
}

} // namespace

FleetFaultPlan
planFaults(const FaultConfig& cfg, int numGpus, double horizonSeconds,
           std::uint64_t seed)
{
    MMGEN_CHECK(numGpus >= 1, "need at least one GPU");
    if (cfg.domainMtbfSeconds <= 0.0)
        return planFaultsImpl(cfg, std::vector<int>(), horizonSeconds,
                              seed, numGpus);
    MMGEN_CHECK(cfg.domainSize >= 1,
                "domain faults need a positive domain size");
    std::vector<int> domainOf(static_cast<std::size_t>(numGpus));
    for (int g = 0; g < numGpus; ++g)
        domainOf[static_cast<std::size_t>(g)] = g / cfg.domainSize;
    return planFaultsImpl(cfg, domainOf, horizonSeconds, seed,
                          numGpus);
}

FleetFaultPlan
planFaults(const FaultConfig& cfg, const std::vector<int>& domainOf,
           double horizonSeconds, std::uint64_t seed)
{
    return planFaultsImpl(cfg, domainOf, horizonSeconds, seed,
                          static_cast<int>(domainOf.size()));
}

} // namespace mmgen::serving
