#include "faults.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace mmgen::serving {

namespace {

// Stream-id bases keeping every stochastic process on its own split
// Rng stream. Arrivals use the unsplit Rng(seed) stream, so fault
// draws can never perturb the arrival sequence.
constexpr std::uint64_t kFailureStream = 0x0001'0000;
constexpr std::uint64_t kPreemptionStream = 0x0002'0000;
constexpr std::uint64_t kStragglerStream = 0x0003'0000;

/**
 * Alternating up/down renewal process: up times ~ Exp(1/mtbf), down
 * times ~ Exp(1/mttr), truncated at the horizon.
 */
std::vector<Outage>
renewalOutages(Rng& rng, double mtbf, double mttr, OutageKind kind,
               double horizon)
{
    std::vector<Outage> outages;
    if (mtbf <= 0.0)
        return outages;
    double t = 0.0;
    while (true) {
        t += rng.exponential(1.0 / mtbf);
        if (t >= horizon)
            break;
        Outage o;
        o.start = t;
        o.end = t + rng.exponential(1.0 / mttr);
        o.kind = kind;
        t = o.end;
        outages.push_back(o);
    }
    return outages;
}

/** Merge overlapping windows; a Failure subsumes a Preemption. */
std::vector<Outage>
mergeOutages(std::vector<Outage> outages)
{
    std::sort(outages.begin(), outages.end(),
              [](const Outage& a, const Outage& b) {
                  return a.start < b.start;
              });
    std::vector<Outage> merged;
    for (const Outage& o : outages) {
        if (!merged.empty() && o.start <= merged.back().end) {
            Outage& prev = merged.back();
            prev.end = std::max(prev.end, o.end);
            if (o.kind == OutageKind::Failure)
                prev.kind = OutageKind::Failure;
        } else {
            merged.push_back(o);
        }
    }
    return merged;
}

} // namespace

bool
FaultConfig::any() const
{
    return failureMtbfSeconds > 0.0 || preemptionMtbfSeconds > 0.0 ||
           (stragglerFraction > 0.0 && stragglerSlowdown > 1.0);
}

double
GpuFaultTimeline::availability(double horizonSeconds) const
{
    MMGEN_CHECK(horizonSeconds > 0.0, "horizon must be positive");
    double down = 0.0;
    for (const Outage& o : outages) {
        const double start = std::min(o.start, horizonSeconds);
        const double end = std::min(o.end, horizonSeconds);
        down += end - start;
    }
    return 1.0 - down / horizonSeconds;
}

bool
GpuFaultTimeline::downAt(double t) const
{
    for (const Outage& o : outages) {
        if (t < o.start)
            return false;
        if (t < o.end)
            return true;
    }
    return false;
}

double
FleetFaultPlan::meanAvailability(double horizonSeconds) const
{
    if (gpus.empty())
        return 1.0;
    double sum = 0.0;
    for (const GpuFaultTimeline& g : gpus)
        sum += g.availability(horizonSeconds);
    return sum / static_cast<double>(gpus.size());
}

std::int64_t
FleetFaultPlan::totalOutages() const
{
    std::int64_t n = 0;
    for (const GpuFaultTimeline& g : gpus)
        n += static_cast<std::int64_t>(g.outages.size());
    return n;
}

FleetFaultPlan
planFaults(const FaultConfig& cfg, int numGpus, double horizonSeconds,
           std::uint64_t seed)
{
    MMGEN_CHECK(numGpus >= 1, "need at least one GPU");
    MMGEN_CHECK(horizonSeconds > 0.0, "horizon must be positive");
    MMGEN_CHECK(cfg.failureMtbfSeconds >= 0.0 &&
                    cfg.preemptionMtbfSeconds >= 0.0,
                "MTBF must be non-negative");
    MMGEN_CHECK(cfg.failureMtbfSeconds == 0.0 ||
                    cfg.failureMttrSeconds > 0.0,
                "failure MTTR must be positive");
    MMGEN_CHECK(cfg.preemptionMtbfSeconds == 0.0 ||
                    cfg.preemptionMeanSeconds > 0.0,
                "preemption duration must be positive");
    MMGEN_CHECK(cfg.stragglerFraction >= 0.0 &&
                    cfg.stragglerFraction <= 1.0,
                "straggler fraction out of [0, 1]");
    MMGEN_CHECK(cfg.stragglerSlowdown >= 1.0,
                "straggler slowdown must be >= 1");

    FleetFaultPlan plan;
    plan.gpus.resize(static_cast<std::size_t>(numGpus));
    for (int g = 0; g < numGpus; ++g) {
        GpuFaultTimeline& tl = plan.gpus[static_cast<std::size_t>(g)];
        const std::uint64_t gid = static_cast<std::uint64_t>(g);

        Rng fail = Rng::stream(seed, kFailureStream + gid);
        std::vector<Outage> outages = renewalOutages(
            fail, cfg.failureMtbfSeconds, cfg.failureMttrSeconds,
            OutageKind::Failure, horizonSeconds);

        Rng preempt = Rng::stream(seed, kPreemptionStream + gid);
        std::vector<Outage> preemptions = renewalOutages(
            preempt, cfg.preemptionMtbfSeconds,
            cfg.preemptionMeanSeconds, OutageKind::Preemption,
            horizonSeconds);
        outages.insert(outages.end(), preemptions.begin(),
                       preemptions.end());

        tl.outages = mergeOutages(std::move(outages));

        Rng straggle = Rng::stream(seed, kStragglerStream + gid);
        if (cfg.stragglerFraction > 0.0 &&
            straggle.uniform() < cfg.stragglerFraction) {
            tl.slowdown = cfg.stragglerSlowdown;
        }
    }
    return plan;
}

} // namespace mmgen::serving
