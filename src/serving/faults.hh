/**
 * @file
 * Seeded, deterministic fault injection for the serving simulator.
 *
 * Production fleets are not the perfect world the base simulator
 * models: GPUs fail and get repaired (MTBF/MTTR), spot capacity is
 * preempted for short windows, and straggler devices run slower than
 * their peers. This module pre-generates a per-GPU fault timeline from
 * split `mmgen::Rng` streams — one independent stream per (GPU,
 * process) pair — so injecting faults never perturbs the arrival
 * process and every run is bit-reproducible from the base seed.
 */

#ifndef MMGEN_SERVING_FAULTS_HH
#define MMGEN_SERVING_FAULTS_HH

#include <cstdint>
#include <vector>

namespace mmgen::serving {

/** Why a GPU is unavailable during an outage window. */
enum class OutageKind
{
    /** Hard failure; repair takes MTTR-scale time. */
    Failure,
    /** Transient preemption (spot reclaim, defrag); short. */
    Preemption,
};

/** One contiguous window during which a GPU serves nothing. */
struct Outage
{
    double start = 0.0;
    double end = 0.0;
    OutageKind kind = OutageKind::Failure;

    double duration() const { return end - start; }
};

/** Fault-injection knobs. All rates are per GPU. */
struct FaultConfig
{
    /** Mean time between hard failures, seconds (0 disables). */
    double failureMtbfSeconds = 0.0;
    /** Mean time to repair after a hard failure, seconds. */
    double failureMttrSeconds = 300.0;
    /** Mean time between transient preemptions, seconds (0 disables). */
    double preemptionMtbfSeconds = 0.0;
    /** Mean preemption duration, seconds. */
    double preemptionMeanSeconds = 30.0;
    /** Fraction of GPUs that are persistent stragglers. */
    double stragglerFraction = 0.0;
    /** Service-time multiplier on straggler GPUs (>= 1). */
    double stragglerSlowdown = 1.0;

    // -- correlated failure domains (racks / pods whose members go
    //    down together: a switch dies, a power feed trips) --

    /**
     * GPUs per correlated failure domain. Domain d owns GPUs
     * [d*domainSize, (d+1)*domainSize). Required >= 1 when
     * `domainMtbfSeconds` is set; the explicit-membership
     * `planFaults` overload ignores it.
     */
    int domainSize = 0;
    /** Mean time between whole-domain outages, seconds (0 disables). */
    double domainMtbfSeconds = 0.0;
    /** Mean time to recover a failed domain, seconds. */
    double domainMttrSeconds = 120.0;

    /** True if any fault process is active. */
    bool any() const;
};

/** Pre-generated fault schedule for one GPU. */
struct GpuFaultTimeline
{
    /** Disjoint outage windows, sorted by start time. */
    std::vector<Outage> outages;
    /** Persistent service-time multiplier (1 = healthy). */
    double slowdown = 1.0;

    /** Fraction of [0, horizon) this GPU is up. */
    double availability(double horizonSeconds) const;
    /** True if the GPU is inside an outage at time t. */
    bool downAt(double t) const;
};

/** Fault schedule for the whole pool. */
struct FleetFaultPlan
{
    std::vector<GpuFaultTimeline> gpus;

    /**
     * Failure-domain id of each GPU (parallel to `gpus`). Empty when
     * the plan was generated without correlated-domain faults, in
     * which case every GPU is its own implicit domain.
     */
    std::vector<int> domainOf;

    /** Mean per-GPU availability over the horizon (1 if empty). */
    double meanAvailability(double horizonSeconds) const;
    /** Total outage windows across the pool. */
    std::int64_t totalOutages() const;
    /**
     * Mean member availability per failure domain, indexed by domain
     * id (one entry covering the whole pool when `domainOf` is empty).
     */
    std::vector<double> domainAvailability(double horizonSeconds) const;
};

/**
 * Merge overlapping/adjacent outage windows into a disjoint,
 * start-sorted list; a hard Failure subsumes an overlapping
 * Preemption. Used by the fault planner and by the chaos-scenario
 * compiler when folding scripted kills into a GPU's timeline.
 */
std::vector<Outage> mergeOutages(std::vector<Outage> outages);

/**
 * Generate the fleet's fault plan. Failure and preemption processes
 * for GPU g draw from `Rng::stream(seed, ...)` streams keyed by g, so
 * the plan is independent of the arrival stream `Rng(seed)` and of
 * every other GPU's plan. Overlapping failure/preemption windows on
 * one GPU are merged (a hard failure subsumes a preemption).
 */
FleetFaultPlan planFaults(const FaultConfig& cfg, int numGpus,
                          double horizonSeconds, std::uint64_t seed);

/**
 * Generate a fault plan with explicit failure-domain membership:
 * `domainOf[g]` names GPU g's rack/pod. Per-GPU processes draw from
 * the same streams as the pool overload (bit-identical when domain
 * faults are disabled); each distinct domain additionally draws a
 * correlated outage process from its own `Rng::stream` keyed by the
 * domain id, and the resulting windows are merged into every member
 * GPU's timeline — members fail together.
 */
FleetFaultPlan planFaults(const FaultConfig& cfg,
                          const std::vector<int>& domainOf,
                          double horizonSeconds, std::uint64_t seed);

} // namespace mmgen::serving

#endif // MMGEN_SERVING_FAULTS_HH
