#include "policies.hh"

#include <algorithm>
#include <cmath>

#include "exec/memory.hh"
#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {

double
RetryPolicy::backoffSeconds(int attempt) const
{
    MMGEN_CHECK(attempt >= 1, "attempt is 1-based");
    MMGEN_CHECK(backoffBaseSeconds >= 0.0 && backoffMultiplier >= 1.0,
                "backoff must grow");
    MMGEN_CHECK(std::isfinite(backoffBaseSeconds) &&
                    std::isfinite(backoffMultiplier) &&
                    std::isfinite(backoffCapSeconds) &&
                    backoffCapSeconds >= 0.0,
                "backoff parameters must be finite");
    if (backoffBaseSeconds == 0.0)
        return 0.0;
    // Decide cap saturation in log space: base * mult^(attempt-1)
    // overflows to inf for large attempt counts (and 0 * inf is NaN),
    // which a min() against the cap does not repair. pow() is only
    // evaluated when the result is provably under the cap.
    const double exponent = static_cast<double>(attempt - 1);
    const double logRaw = std::log(backoffBaseSeconds) +
                          exponent * std::log(backoffMultiplier);
    if (logRaw >= std::log(backoffCapSeconds))
        return backoffCapSeconds;
    const double raw =
        backoffBaseSeconds * std::pow(backoffMultiplier, exponent);
    return std::min(raw, backoffCapSeconds);
}

DegradationPolicy
degradationFromPipelines(const graph::Pipeline& full,
                         const graph::Pipeline& degraded,
                         const hw::GpuSpec& gpu, double qualityCost)
{
    const LatencyModel fullModel = profileLatencyModel(full, gpu);
    const LatencyModel degradedModel =
        profileLatencyModel(degraded, gpu);
    MMGEN_CHECK(degradedModel.baseSeconds <= fullModel.baseSeconds,
                "degraded pipeline '"
                    << degraded.name << "' is slower than full '"
                    << full.name << "' — not a degradation");
    DegradationPolicy policy;
    policy.serviceScale = std::clamp(
        degradedModel.baseSeconds / fullModel.baseSeconds, 0.01, 1.0);
    policy.qualityCost = qualityCost;
    return policy;
}

AdmissionPolicy
memoryAwareAdmission(const graph::Pipeline& pipeline,
                     const hw::GpuSpec& gpu,
                     std::int64_t maxQueueLength)
{
    AdmissionPolicy policy;
    policy.maxQueueLength = maxQueueLength;
    policy.memoryFeasibleBatch =
        exec::maxFeasibleBatch(pipeline, gpu);
    return policy;
}

bool
ResilienceConfig::trivial() const
{
    return !faults.any() && retry.maxRetries == 0 &&
           !deadline.hasDeadline() && !deadline.hasTimeout() &&
           !admission.enabled() && !admission.hasMemoryBound() &&
           !degradation.enabled();
}

void
ResilienceConfig::validate() const
{
    MMGEN_CHECK(retry.maxRetries >= 0,
                "retry budget must be non-negative, got "
                    << retry.maxRetries);
    MMGEN_CHECK(std::isfinite(retry.backoffBaseSeconds) &&
                    retry.backoffBaseSeconds >= 0.0,
                "retry backoff base must be finite and non-negative");
    MMGEN_CHECK(std::isfinite(retry.backoffMultiplier) &&
                    retry.backoffMultiplier >= 1.0,
                "retry backoff multiplier must be finite and >= 1");
    MMGEN_CHECK(std::isfinite(retry.backoffCapSeconds) &&
                    retry.backoffCapSeconds >= 0.0,
                "retry backoff cap must be finite and non-negative");
    MMGEN_CHECK(std::isfinite(deadline.deadlineSeconds) &&
                    deadline.deadlineSeconds >= 0.0,
                "deadline must be finite and non-negative");
    MMGEN_CHECK(std::isfinite(deadline.batchTimeoutSeconds) &&
                    deadline.batchTimeoutSeconds >= 0.0,
                "batch timeout must be finite and non-negative");
    MMGEN_CHECK(admission.maxQueueLength >= 0,
                "admission queue bound must be non-negative, got "
                    << admission.maxQueueLength);
    MMGEN_CHECK(admission.memoryFeasibleBatch >= -1,
                "memory-feasible batch must be -1 (unset) or "
                "non-negative, got "
                    << admission.memoryFeasibleBatch);
    MMGEN_CHECK(degradation.queueThreshold >= 0,
                "degradation threshold must be non-negative, got "
                    << degradation.queueThreshold);
    MMGEN_CHECK(degradation.serviceScale > 0.0 &&
                    degradation.serviceScale <= 1.0,
                "degraded service scale out of (0, 1]");
    MMGEN_CHECK(std::isfinite(faults.failureMtbfSeconds) &&
                    std::isfinite(faults.preemptionMtbfSeconds) &&
                    std::isfinite(faults.domainMtbfSeconds),
                "fault MTBF must be finite");
    MMGEN_CHECK(faults.failureMtbfSeconds >= 0.0 &&
                    faults.preemptionMtbfSeconds >= 0.0 &&
                    faults.domainMtbfSeconds >= 0.0,
                "fault MTBF must be non-negative");
}

} // namespace mmgen::serving
