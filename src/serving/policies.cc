#include "policies.hh"

#include <algorithm>
#include <cmath>

#include "serving/simulator.hh"
#include "util/logging.hh"

namespace mmgen::serving {

double
RetryPolicy::backoffSeconds(int attempt) const
{
    MMGEN_CHECK(attempt >= 1, "attempt is 1-based");
    MMGEN_CHECK(backoffBaseSeconds >= 0.0 && backoffMultiplier >= 1.0,
                "backoff must grow");
    const double raw =
        backoffBaseSeconds *
        std::pow(backoffMultiplier, static_cast<double>(attempt - 1));
    return std::min(raw, backoffCapSeconds);
}

DegradationPolicy
degradationFromPipelines(const graph::Pipeline& full,
                         const graph::Pipeline& degraded,
                         const hw::GpuSpec& gpu, double qualityCost)
{
    const LatencyModel fullModel = profileLatencyModel(full, gpu);
    const LatencyModel degradedModel =
        profileLatencyModel(degraded, gpu);
    MMGEN_CHECK(degradedModel.baseSeconds <= fullModel.baseSeconds,
                "degraded pipeline '"
                    << degraded.name << "' is slower than full '"
                    << full.name << "' — not a degradation");
    DegradationPolicy policy;
    policy.serviceScale = std::clamp(
        degradedModel.baseSeconds / fullModel.baseSeconds, 0.01, 1.0);
    policy.qualityCost = qualityCost;
    return policy;
}

bool
ResilienceConfig::trivial() const
{
    return !faults.any() && retry.maxRetries == 0 &&
           !deadline.hasDeadline() && !deadline.hasTimeout() &&
           !admission.enabled() && !degradation.enabled();
}

} // namespace mmgen::serving
