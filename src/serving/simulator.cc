#include "simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "profiler/engine.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen::serving {

double
LatencyModel::batchSeconds(int batch) const
{
    MMGEN_CHECK(batch >= 1, "batch must be positive");
    MMGEN_CHECK(baseSeconds > 0.0, "base latency must be positive");
    MMGEN_CHECK(overheadFraction >= 0.0 && overheadFraction <= 1.0,
                "overhead fraction out of [0, 1]");
    return baseSeconds * (overheadFraction +
                          (1.0 - overheadFraction) *
                              static_cast<double>(batch));
}

LatencyModel
profileLatencyModel(const graph::Pipeline& pipeline,
                    const hw::GpuSpec& gpu)
{
    profiler::ProfileOptions opts;
    opts.gpu = gpu;
    opts.backend = graph::AttentionBackend::Flash;
    const profiler::ProfileResult res =
        profiler::Profiler(opts).profile(pipeline);

    LatencyModel model;
    model.baseSeconds = res.totalSeconds;
    // Launch overhead and small-kernel ramp time do not scale with
    // batch; approximate the non-scaling share from the launch count.
    const double overhead_s =
        static_cast<double>(res.totalLaunches) *
        gpu.kernelLaunchOverhead;
    model.overheadFraction =
        std::clamp(overhead_s / res.totalSeconds, 0.02, 0.5);
    return model;
}

namespace {

/** One in-flight batch on a GPU. */
struct Busy
{
    double finishTime;
    int gpu;
    std::vector<double> arrivalTimes;

    bool
    operator>(const Busy& other) const
    {
        return finishTime > other.finishTime;
    }
};

} // namespace

ServingReport
simulateServing(const ServingConfig& cfg, const LatencyModel& latency)
{
    MMGEN_CHECK(cfg.arrivalRate > 0.0, "arrival rate must be positive");
    MMGEN_CHECK(cfg.numGpus >= 1, "need at least one GPU");
    MMGEN_CHECK(cfg.maxBatch >= 1, "need max batch >= 1");
    MMGEN_CHECK(cfg.horizonSeconds > 0.0, "horizon must be positive");

    Rng rng(cfg.seed);
    ServingReport report;

    // Per-request max throughput of the pool at full batching.
    const double batch_rate =
        static_cast<double>(cfg.maxBatch) /
        latency.batchSeconds(cfg.maxBatch);
    report.offeredLoad =
        cfg.arrivalRate / (batch_rate * cfg.numGpus);

    std::deque<double> queue; // arrival times of waiting requests
    std::priority_queue<Busy, std::vector<Busy>, std::greater<Busy>>
        busy;
    std::vector<bool> gpu_free(static_cast<std::size_t>(cfg.numGpus),
                               true);
    std::vector<double> latencies;
    std::vector<double> batch_sizes;
    double busy_gpu_seconds = 0.0;

    auto exponential_gap = [&rng, &cfg]() {
        return -std::log(1.0 - rng.uniform()) / cfg.arrivalRate;
    };
    double next_arrival = exponential_gap();

    auto dispatch = [&](double now) {
        while (!queue.empty()) {
            int free_gpu = -1;
            for (int g = 0; g < cfg.numGpus; ++g) {
                if (gpu_free[static_cast<std::size_t>(g)]) {
                    free_gpu = g;
                    break;
                }
            }
            if (free_gpu < 0)
                return;
            const int batch = static_cast<int>(
                std::min<std::size_t>(queue.size(),
                                      static_cast<std::size_t>(
                                          cfg.maxBatch)));
            Busy b;
            b.gpu = free_gpu;
            const double service = latency.batchSeconds(batch);
            b.finishTime = now + service;
            for (int i = 0; i < batch; ++i) {
                b.arrivalTimes.push_back(queue.front());
                queue.pop_front();
            }
            gpu_free[static_cast<std::size_t>(free_gpu)] = false;
            busy_gpu_seconds += service;
            batch_sizes.push_back(static_cast<double>(batch));
            busy.push(std::move(b));
        }
    };

    while (true) {
        const double next_finish =
            busy.empty() ? cfg.horizonSeconds + 1.0
                         : busy.top().finishTime;
        if (next_arrival <= next_finish) {
            if (next_arrival > cfg.horizonSeconds)
                break;
            // Arrival event.
            queue.push_back(next_arrival);
            ++report.arrived;
            const double now = next_arrival;
            next_arrival += exponential_gap();
            dispatch(now);
        } else {
            // Completion event (may run past the horizon to drain).
            const Busy done = busy.top();
            busy.pop();
            gpu_free[static_cast<std::size_t>(done.gpu)] = true;
            for (double arrival : done.arrivalTimes) {
                latencies.push_back(done.finishTime - arrival);
                ++report.completed;
            }
            if (done.finishTime > cfg.horizonSeconds && queue.empty() &&
                busy.empty()) {
                break;
            }
            dispatch(done.finishTime);
        }
    }

    report.backlog = static_cast<std::int64_t>(queue.size());
    while (!busy.empty()) {
        report.backlog += static_cast<std::int64_t>(
            busy.top().arrivalTimes.size());
        busy.pop();
    }

    if (!latencies.empty()) {
        const Summary s = summarize(latencies);
        report.meanLatency = s.mean;
        report.p50Latency = percentile(latencies, 50.0);
        report.p95Latency = percentile(latencies, 95.0);
    }
    if (!batch_sizes.empty())
        report.meanBatch = summarize(batch_sizes).mean;
    report.throughput =
        static_cast<double>(report.completed) / cfg.horizonSeconds;
    report.gpuUtilization = std::min(
        1.0, busy_gpu_seconds /
                 (cfg.horizonSeconds * static_cast<double>(cfg.numGpus)));
    return report;
}

} // namespace mmgen::serving
