#include "simulator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "profiler/engine.hh"
#include "runtime/profile_cache.hh"
#include "serving/telemetry_hooks.hh"
#include "util/logging.hh"
#include "verify/verify.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen::serving {

double
LatencyModel::batchSeconds(int batch) const
{
    MMGEN_CHECK(batch >= 1, "batch must be positive");
    MMGEN_CHECK(baseSeconds > 0.0, "base latency must be positive");
    MMGEN_CHECK(overheadFraction >= 0.0 && overheadFraction <= 1.0,
                "overhead fraction out of [0, 1]");
    return baseSeconds * (overheadFraction +
                          (1.0 - overheadFraction) *
                              static_cast<double>(batch));
}

LatencyModel
profileLatencyModel(const graph::Pipeline& pipeline,
                    const hw::GpuSpec& gpu,
                    const exec::ScheduleOptions& schedule)
{
    if (verify::runtimeChecksEnabled())
        verify::verifyPipelineOrThrow(pipeline);
    profiler::ProfileOptions opts;
    opts.gpu = gpu;
    opts.backend = graph::AttentionBackend::Flash;
    opts.schedule = schedule;
    // Serving sweeps rebuild their latency model per grid point; the
    // profile memo makes every repeated setup O(1). The schedule knobs
    // are part of the cache key, so two schedules never alias.
    const std::shared_ptr<const profiler::ProfileResult> res =
        runtime::cachedProfile(pipeline, opts);

    LatencyModel model;
    model.baseSeconds = res->totalSeconds;
    // Launch overhead and small-kernel ramp time do not scale with
    // batch; the non-scaling share is what the schedule actually paid
    // in launches (for the default serial schedule that is exactly
    // launch count times per-launch overhead).
    const double overhead_s =
        schedule.isDefault()
            ? static_cast<double>(res->totalLaunches) *
                  gpu.kernelLaunchOverhead
            : res->launchOverheadSeconds;
    model.overheadFraction =
        std::clamp(overhead_s / res->totalSeconds, 0.02, 0.5);
    return model;
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/** A request in the system; `arrival` is its first arrival time. */
struct Request
{
    double arrival = 0.0;
    int attempts = 0;
};

/** One batch occupying a GPU. */
struct InFlight
{
    double start = 0.0;
    /** Resolution time: completion, or abort when `timedOut`. */
    double finish = 0.0;
    bool degraded = false;
    /** The batch exceeds the batch timeout; `finish` is the abort. */
    bool timedOut = false;
    std::vector<Request> requests;
};

/** Completion-queue entry; `epoch` lazily invalidates killed work. */
struct FinishEvent
{
    double time;
    int gpu;
    std::uint64_t epoch;

    bool
    operator>(const FinishEvent& other) const
    {
        return time > other.time;
    }
};

/** Retry-queue entry; `seq` keeps ties deterministic. */
struct RetryEvent
{
    double ready;
    std::uint64_t seq;
    Request request;

    bool
    operator>(const RetryEvent& other) const
    {
        return ready != other.ready ? ready > other.ready
                                    : seq > other.seq;
    }
};

/** GPU up/down edge from the pre-generated fault plan. */
struct Transition
{
    double time;
    int gpu;
    bool down;
};

} // namespace

ServingReport
simulateServing(const ServingConfig& cfg, const LatencyModel& latency)
{
    return simulateServing(cfg, latency, ResilienceConfig{});
}

ServingReport
simulateServing(const ServingConfig& cfg, const LatencyModel& latency,
                const ResilienceConfig& resilience)
{
    return simulateServing(cfg, latency, resilience, nullptr);
}

void
ServingConfig::validate() const
{
    MMGEN_CHECK(std::isfinite(arrivalRate) && arrivalRate > 0.0,
                "arrival rate must be positive and finite, got "
                    << arrivalRate);
    MMGEN_CHECK(numGpus >= 1,
                "need at least one GPU, got " << numGpus);
    MMGEN_CHECK(maxBatch >= 1,
                "need max batch >= 1, got " << maxBatch);
    MMGEN_CHECK(std::isfinite(horizonSeconds) && horizonSeconds > 0.0,
                "horizon must be positive and finite, got "
                    << horizonSeconds);
}

ServingReport
simulateServing(const ServingConfig& cfg, const LatencyModel& latency,
                const ResilienceConfig& resilience,
                const telemetry::Telemetry* tele)
{
    cfg.validate();
    resilience.validate();

    // Telemetry handles. Null means off; every use below is guarded
    // so the disabled path is the exact pre-telemetry code path.
    telemetry::MetricsRegistry* metrics =
        tele != nullptr ? tele->metrics : nullptr;
    telemetry::TraceSink* trace =
        tele != nullptr && tele->wantsTrace() ? tele->trace : nullptr;
    const bool sampling = tele != nullptr && tele->wantsSampling();

    const double horizon = cfg.horizonSeconds;
    const DeadlinePolicy& deadline = resilience.deadline;

    // Arrivals draw from the unsplit Rng(seed) stream — exactly the
    // fault-free simulator's stream — while the fault plan draws from
    // split streams, so injecting faults never perturbs arrivals.
    Rng rng(cfg.seed);
    const FleetFaultPlan plan = planFaults(
        resilience.faults, cfg.numGpus, horizon, cfg.seed);

    ServingReport report;
    report.meanAvailability = plan.meanAvailability(horizon);

    // Memory-aware batch ceiling: the static liveness bound (when the
    // admission policy carries one) clamps how large a batch may be
    // dispatched; a bound of zero means not even one request fits and
    // every arrival is shed below. Unset reproduces cfg.maxBatch, so
    // the default path is unchanged.
    const int effective_max_batch =
        resilience.admission.hasMemoryBound()
            ? static_cast<int>(std::min<std::int64_t>(
                  cfg.maxBatch,
                  resilience.admission.memoryFeasibleBatch))
            : cfg.maxBatch;
    report.effectiveMaxBatch = effective_max_batch;

    // Per-request max throughput of the pool at full batching (the
    // infeasible case rates a batch of one; everything is shed anyway).
    const int rate_batch = std::max(effective_max_batch, 1);
    const double batch_rate =
        static_cast<double>(rate_batch) /
        latency.batchSeconds(rate_batch);
    report.offeredLoad =
        cfg.arrivalRate / (batch_rate * cfg.numGpus);

    // Flatten the fault plan into a time-sorted edge list.
    std::vector<Transition> transitions;
    for (int g = 0; g < cfg.numGpus; ++g) {
        for (const Outage& o :
             plan.gpus[static_cast<std::size_t>(g)].outages) {
            transitions.push_back({o.start, g, true});
            transitions.push_back({o.end, g, false});
        }
    }
    std::sort(transitions.begin(), transitions.end(),
              [](const Transition& a, const Transition& b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.gpu != b.gpu)
                      return a.gpu < b.gpu;
                  return a.down < b.down; // up-edge before down-edge
              });

    const std::size_t num_gpus = static_cast<std::size_t>(cfg.numGpus);
    std::deque<Request> queue;
    std::vector<std::optional<InFlight>> inflight(num_gpus);
    std::vector<bool> gpu_down(num_gpus, false);
    std::vector<std::uint64_t> epoch(num_gpus, 0);
    int inflight_gpus = 0;

    // Trace lanes: one per GPU for batch/outage spans, plus one
    // lifecycle lane for request instants.
    std::vector<int> gpu_track;
    int lifecycle_track = -1;
    if (trace != nullptr) {
        lifecycle_track = trace->track("serving", "lifecycle");
        for (int g = 0; g < cfg.numGpus; ++g) {
            gpu_track.push_back(
                trace->track("serving", "gpu " + std::to_string(g)));
        }
        // Outage spans come straight from the pre-generated plan.
        for (int g = 0; g < cfg.numGpus; ++g) {
            for (const Outage& o :
                 plan.gpus[static_cast<std::size_t>(g)].outages) {
                trace->complete(gpu_track[static_cast<std::size_t>(g)],
                                "outage", o.start, o.end - o.start,
                                "fault");
            }
        }
    }

    std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                        std::greater<FinishEvent>>
        finishes;
    std::priority_queue<RetryEvent, std::vector<RetryEvent>,
                        std::greater<RetryEvent>>
        retries;
    std::uint64_t retry_seq = 0;

    std::vector<double> latencies;
    std::vector<double> batch_sizes;
    double busy_in_horizon = 0.0;
    std::int64_t goodput_count = 0;
    std::int64_t deadline_misses = 0;

    double next_arrival = rng.exponential(cfg.arrivalRate);

    // Periodic state sampling: an extra event source with the lowest
    // tie priority, so a sample at time t observes the state *after*
    // every simulation event at t. Sample k lands at exactly
    // k * interval (no floating-point accumulation drift); the final
    // sample is clamped onto the horizon, then the source goes quiet.
    const double sample_interval =
        sampling ? tele->sampleIntervalSeconds : 0.0;
    std::int64_t sample_idx = sampling ? 1 : -1;
    auto sample_time = [&]() -> double {
        if (sample_idx < 0)
            return kNever;
        const double t =
            sample_interval * static_cast<double>(sample_idx);
        return std::min(t, horizon);
    };
    auto take_sample = [&](double t) {
        telemetry::MetricsRegistry& m = *metrics;
        m.series("serving.queue_depth")
            .record(t, static_cast<double>(queue.size()));
        m.series("serving.in_flight_gpus")
            .record(t, static_cast<double>(inflight_gpus));
        m.series("serving.retry_backlog")
            .record(t, static_cast<double>(retries.size()));
        m.series("serving.arrived_total")
            .record(t, static_cast<double>(report.arrived));
        m.series("serving.completed_total")
            .record(t, static_cast<double>(report.completed));
        m.series("serving.shed_total")
            .record(t, static_cast<double>(report.shed));
        m.series("serving.retries_total")
            .record(t, static_cast<double>(report.retries));
        if (t >= horizon)
            sample_idx = -1; // final sample taken; source goes quiet
        else
            ++sample_idx;
    };
    double next_sample = sample_time();

    // Busy-time bookkeeping: the in-horizon share feeds utilization,
    // the post-horizon share is reported as drain work (the seed
    // simulator folded both into one clamped number).
    auto account_busy = [&](double start, double end) {
        busy_in_horizon += std::max(0.0, std::min(end, horizon) - start);
        report.drainGpuSeconds +=
            std::max(0.0, end - std::max(start, horizon));
    };

    // Requeue a faulted/timed-out request with backoff, or drop it.
    auto retry_or_drop = [&](Request req, double now) {
        if (req.attempts >= resilience.retry.maxRetries) {
            ++report.dropped;
            if (trace != nullptr)
                trace->instant(lifecycle_track, "drop", now,
                               "lifecycle");
            return;
        }
        ++req.attempts;
        ++report.retries;
        const double ready =
            now + resilience.retry.backoffSeconds(req.attempts);
        if (trace != nullptr)
            trace->instant(lifecycle_track, "retry", now, "lifecycle");
        retries.push({ready, retry_seq++, std::move(req)});
    };

    // Kill the batch on a GPU (fault hit or timeout fired).
    auto abort_inflight = [&](int g, double now) {
        InFlight& fl = *inflight[static_cast<std::size_t>(g)];
        account_busy(fl.start, now);
        report.lostGpuSeconds += now - fl.start;
        if (trace != nullptr) {
            telemetry::Labels args;
            args.set("batch", std::to_string(fl.requests.size()));
            args.set("outcome", "killed");
            trace->complete(gpu_track[static_cast<std::size_t>(g)],
                            "batch b=" +
                                std::to_string(fl.requests.size()),
                            fl.start, now - fl.start, "batch", args);
        }
        for (Request& req : fl.requests)
            retry_or_drop(std::move(req), now);
        inflight[static_cast<std::size_t>(g)].reset();
        ++epoch[static_cast<std::size_t>(g)];
        --inflight_gpus;
    };

    auto dispatch = [&](double now) {
        if (effective_max_batch == 0)
            return; // memory-infeasible: nothing may be scheduled
        while (!queue.empty()) {
            // Lazily expire queued requests whose deadline already
            // passed — serving them would be wasted work.
            if (deadline.hasDeadline()) {
                while (!queue.empty() &&
                       queue.front().arrival +
                               deadline.deadlineSeconds <=
                           now) {
                    ++report.expired;
                    if (trace != nullptr)
                        trace->instant(lifecycle_track, "expire", now,
                                       "lifecycle");
                    queue.pop_front();
                }
                if (queue.empty())
                    return;
            }
            int free_gpu = -1;
            for (int g = 0; g < cfg.numGpus; ++g) {
                const std::size_t gi = static_cast<std::size_t>(g);
                if (!inflight[gi].has_value() && !gpu_down[gi]) {
                    free_gpu = g;
                    break;
                }
            }
            if (free_gpu < 0)
                return;
            const std::size_t gi = static_cast<std::size_t>(free_gpu);
            const bool degrade =
                resilience.degradation.enabled() &&
                static_cast<std::int64_t>(queue.size()) >=
                    resilience.degradation.queueThreshold;
            const int batch = static_cast<int>(
                std::min<std::size_t>(queue.size(),
                                      static_cast<std::size_t>(
                                          effective_max_batch)));
            double service = latency.batchSeconds(batch) *
                             plan.gpus[gi].slowdown;
            if (degrade)
                service *= resilience.degradation.serviceScale;
            InFlight fl;
            fl.start = now;
            fl.degraded = degrade;
            if (deadline.hasTimeout() &&
                service > deadline.batchTimeoutSeconds) {
                fl.timedOut = true;
                fl.finish = now + deadline.batchTimeoutSeconds;
            } else {
                fl.finish = now + service;
            }
            for (int i = 0; i < batch; ++i) {
                fl.requests.push_back(queue.front());
                queue.pop_front();
            }
            batch_sizes.push_back(static_cast<double>(batch));
            finishes.push({fl.finish, free_gpu, ++epoch[gi]});
            inflight[gi] = std::move(fl);
            ++inflight_gpus;
        }
    };

    std::size_t ti = 0;
    while (true) {
        // Drop stale finish events (their batch was killed).
        while (!finishes.empty()) {
            const FinishEvent& top = finishes.top();
            const std::size_t gi =
                static_cast<std::size_t>(top.gpu);
            if (inflight[gi].has_value() && epoch[gi] == top.epoch)
                break;
            finishes.pop();
        }
        // kNever (not the seed's horizon + 1 sentinel): with no
        // pending completion, an arrival gap jumping past horizon + 1
        // must still break in the arrival branch, never fall through
        // to pop an empty completion queue.
        const double next_finish =
            finishes.empty() ? kNever : finishes.top().time;
        const double next_fault =
            ti < transitions.size() ? transitions[ti].time : kNever;
        const double next_retry =
            retries.empty() ? kNever : retries.top().ready;
        // next_sample joins next_other so a pending sample before a
        // post-horizon arrival still fires; every older event source
        // keeps tie priority over sampling.
        const double next_other = std::min(
            {next_finish, next_fault, next_retry, next_sample});

        if (next_arrival <= next_other) {
            if (next_arrival > horizon)
                break;
            // Arrival event.
            const double now = next_arrival;
            ++report.arrived;
            if (effective_max_batch == 0) {
                // Not even a batch of one fits the GPU: admitting the
                // request could only ever OOM, so it is shed with a
                // memory rejection rather than queued.
                ++report.shed;
                ++report.memoryShed;
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "shed_memory", now,
                                   "lifecycle");
            } else if (resilience.admission.enabled() &&
                       static_cast<std::int64_t>(queue.size()) >=
                           resilience.admission.maxQueueLength) {
                ++report.shed;
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "shed", now,
                                   "lifecycle");
            } else {
                queue.push_back({now, 0});
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "admit", now,
                                   "lifecycle");
            }
            next_arrival += rng.exponential(cfg.arrivalRate);
            dispatch(now);
        } else if (next_fault <= std::min({next_finish, next_retry,
                                           next_sample})) {
            // GPU availability edge.
            const Transition tr = transitions[ti++];
            const std::size_t gi = static_cast<std::size_t>(tr.gpu);
            if (tr.down) {
                gpu_down[gi] = true;
                if (inflight[gi].has_value())
                    abort_inflight(tr.gpu, tr.time);
            } else {
                gpu_down[gi] = false;
                dispatch(tr.time);
            }
        } else if (next_retry <= std::min(next_finish, next_sample)) {
            // Backed-off requests re-enter the queue.
            const double now = next_retry;
            while (!retries.empty() && retries.top().ready <= now) {
                queue.push_back(retries.top().request);
                retries.pop();
            }
            dispatch(now);
        } else if (next_sample < next_finish) {
            // Periodic telemetry sample; completions win ties so the
            // sample sees post-event state at its own timestamp.
            take_sample(next_sample);
            next_sample = sample_time();
        } else {
            // Completion event (may run past the horizon to drain).
            const FinishEvent ev = finishes.top();
            finishes.pop();
            const std::size_t gi = static_cast<std::size_t>(ev.gpu);
            InFlight fl = std::move(*inflight[gi]);
            inflight[gi].reset();
            ++epoch[gi];
            --inflight_gpus;
            if (trace != nullptr) {
                telemetry::Labels args;
                args.set("batch", std::to_string(fl.requests.size()));
                args.set("outcome", fl.timedOut ? "timeout" : "ok");
                if (fl.degraded)
                    args.set("degraded", "1");
                trace->complete(gpu_track[gi],
                                "batch b=" +
                                    std::to_string(fl.requests.size()),
                                fl.start, ev.time - fl.start, "batch",
                                args);
            }
            if (fl.timedOut) {
                account_busy(fl.start, ev.time);
                report.lostGpuSeconds += ev.time - fl.start;
                for (Request& req : fl.requests)
                    retry_or_drop(std::move(req), ev.time);
            } else {
                account_busy(fl.start, fl.finish);
                if (fl.degraded)
                    report.degraded += static_cast<std::int64_t>(
                        fl.requests.size());
                for (const Request& req : fl.requests) {
                    const double lat = fl.finish - req.arrival;
                    latencies.push_back(lat);
                    ++report.completed;
                    if (fl.finish > horizon)
                        ++report.drainCompleted;
                    const bool in_deadline =
                        !deadline.hasDeadline() ||
                        lat <= deadline.deadlineSeconds;
                    if (!in_deadline)
                        ++deadline_misses;
                    if (fl.finish <= horizon && in_deadline)
                        ++goodput_count;
                }
            }
            if (ev.time > horizon && queue.empty() &&
                inflight_gpus == 0 && retries.empty()) {
                break;
            }
            dispatch(ev.time);
        }
    }

    report.backlog = static_cast<std::int64_t>(queue.size());
    for (std::size_t gi = 0; gi < num_gpus; ++gi) {
        if (!inflight[gi].has_value())
            continue;
        report.backlog += static_cast<std::int64_t>(
            inflight[gi]->requests.size());
        // Batches cut off by the end of the run still occupied their
        // GPU inside the horizon.
        account_busy(inflight[gi]->start,
                     std::min(inflight[gi]->finish, horizon));
    }
    while (!retries.empty()) {
        ++report.backlog;
        retries.pop();
    }

    if (!latencies.empty()) {
        const Summary s = summarize(latencies);
        report.meanLatency = s.mean;
        report.p50Latency = percentile(latencies, 50.0);
        report.p95Latency = percentile(latencies, 95.0);
    }
    if (!batch_sizes.empty()) {
        report.meanBatch = summarize(batch_sizes).mean;
        report.maxBatchDispatched = static_cast<std::int64_t>(
            *std::max_element(batch_sizes.begin(), batch_sizes.end()));
    }
    report.throughput =
        static_cast<double>(report.completed - report.drainCompleted) /
        horizon;
    report.goodput = static_cast<double>(goodput_count) / horizon;
    report.gpuUtilization =
        busy_in_horizon /
        (horizon * static_cast<double>(cfg.numGpus));
    if (report.completed > 0) {
        report.deadlineMissRate =
            static_cast<double>(deadline_misses) /
            static_cast<double>(report.completed);
        report.degradedFraction =
            static_cast<double>(report.degraded) /
            static_cast<double>(report.completed);
    }
    if (report.arrived > 0) {
        report.shedFraction = static_cast<double>(report.shed) /
                              static_cast<double>(report.arrived);
    }

    if (metrics != nullptr)
        publishServingMetrics(*metrics, report, latencies, batch_sizes);

    return report;
}

} // namespace mmgen::serving
