/**
 * @file
 * Cluster-level resilience on top of the serving simulator: multiple
 * replica pools behind a seeded router, per-replica circuit breakers
 * with a probe-driven health model, hedged requests, and
 * checkpoint/restore of long multimodal requests.
 *
 * The paper's headline system pain is that TTV/TTI requests run
 * orders of magnitude longer than LLM requests, so a mid-request
 * fault destroys minutes of GPU work. The single-pool simulator
 * (simulator.hh) only models i.i.d. per-GPU faults with full-request
 * retry as the only recovery; this module grows it into a cluster
 * with real recovery semantics — the multi-replica "app family"
 * deployment ServeGen (arXiv:2505.09999) and Lee et al.
 * (arXiv:2410.00215) motivate: one bad replica must not sink the
 * fleet, and a fault in minute 4 of a 5-minute video generation must
 * not re-run minutes 0-4.
 *
 * Determinism contract: every stochastic process draws from split
 * `Rng` streams (arrivals from the unsplit `Rng(seed)` stream, faults
 * and probe jitter from their own streams), so reports are
 * bit-reproducible at any `--jobs` count, and a single-replica
 * configuration with every cluster feature disabled reproduces
 * `simulateServing`'s report bit-for-bit.
 */

#ifndef MMGEN_SERVING_CLUSTER_HH
#define MMGEN_SERVING_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/pipeline.hh"
#include "serving/policies.hh"
#include "serving/simulator.hh"

namespace mmgen::serving {

/**
 * One replica pool: a group of GPUs serving the same model behind a
 * shared queue. Replicas may be heterogeneous (different GPU counts
 * or latency models — e.g. an A100 pool next to a V100 pool) and are
 * assigned to a failure domain (rack/pod) whose members share
 * correlated outages and chaos events.
 */
struct ReplicaSpec
{
    /** Batch-latency model of this replica's (model, GPU) pairing. */
    LatencyModel latency;
    /** GPUs in this replica's pool. */
    int numGpus = 1;
    /** Failure-domain id (rack/pod) this replica lives in. */
    int domain = 0;
};

/** How the router spreads arrivals over routable replicas. */
enum class RouterPolicy
{
    /** Cycle over routable replicas in index order. */
    RoundRobin,
    /** Fewest queued + in-flight requests; ties to lowest index. */
    LeastLoaded,
    /**
     * Least-loaded, but replicas in failure domains with a known-down
     * or breaker-tripped member are deprioritized — new work avoids
     * the blast radius of an unhealthy rack.
     */
    FailureDomainAware,
};

const char* routerPolicyName(RouterPolicy policy);

/**
 * Per-replica circuit breaker (closed -> open -> half-open). Batch
 * failures (fault kills, timeouts) attributed to a replica count
 * against it; at `failureThreshold` consecutive failures the breaker
 * opens, the router stops sending work there, and its queue is
 * re-routed. After `openSeconds` the next health probe moves the
 * breaker to half-open, which admits one trial batch at a time;
 * `halfOpenSuccesses` consecutive successes close it again, one
 * failure re-opens it.
 */
struct CircuitBreakerPolicy
{
    /** Consecutive batch failures that trip the breaker (0 = off). */
    int failureThreshold = 0;
    /** Seconds the breaker stays open before probing. */
    double openSeconds = 30.0;
    /** Half-open successes required to close. */
    int halfOpenSuccesses = 1;

    bool enabled() const { return failureThreshold > 0; }
};

/**
 * Hedged requests: if a request's primary dispatch has not completed
 * `delaySeconds` after it started, a backup copy is enqueued on a
 * different replica. First completion wins; the loser is cancelled
 * (dropped unserved from its queue, or its GPU share reported as
 * hedge waste if it was already running). At most one hedge per
 * request.
 */
struct HedgePolicy
{
    /** Delay after primary dispatch before hedging (0 = off). */
    double delaySeconds = 0.0;

    bool enabled() const { return delaySeconds > 0.0; }
};

/**
 * Quantile-based hedge delay: the service time of the q-quantile
 * batch size in [1, maxBatch] under the given latency model — hedge
 * once the primary has run longer than the q-quantile batch would
 * normally take.
 */
double hedgeDelayForQuantile(const LatencyModel& latency, int maxBatch,
                             double quantile);

/**
 * Checkpoint/restore of long requests. A request is resumable
 * progress through `iterations` equal steps (diffusion denoising
 * steps, AR chunks); every `intervalIterations` completed steps the
 * batch writes a checkpoint costing `costSeconds` of GPU time. A
 * fault re-dispatches the request from its last checkpoint instead of
 * from scratch, so only the progress past the checkpoint is wasted.
 */
struct CheckpointPolicy
{
    /** Resumable iterations per request (0 = not resumable). */
    std::int64_t iterations = 0;
    /** Steps between checkpoints (0 = never checkpoint). */
    std::int64_t intervalIterations = 0;
    /** GPU-time cost of writing one checkpoint, seconds. */
    double costSeconds = 0.0;

    bool enabled() const
    {
        return iterations > 0 && intervalIterations > 0;
    }
};

/**
 * Derive a checkpoint policy from a pipeline's iteration structure:
 * `iterations` is the dominant stage's iteration count (denoise steps
 * for diffusion, decode steps for AR generators), checkpointed every
 * `everyIterations` steps at the given cost.
 */
CheckpointPolicy checkpointFromPipeline(const graph::Pipeline& pipeline,
                                        std::int64_t everyIterations,
                                        double costSeconds);

/** What a chaos event does to the cluster. */
enum class ChaosEventKind
{
    /** All GPUs of one replica go down for the duration. */
    KillReplica,
    /** Every GPU in one failure domain runs `factor` x slower. */
    DegradeDomain,
    /** One GPU (global index) runs `factor` x slower. */
    StraggleGpu,
};

const char* chaosEventKindName(ChaosEventKind kind);

/** One timed, declarative chaos injection. */
struct ChaosEvent
{
    /** When the event starts, seconds. */
    double atSeconds = 0.0;
    ChaosEventKind kind = ChaosEventKind::KillReplica;
    /** Replica, domain, or global GPU index, by kind. */
    int target = 0;
    /** How long the effect lasts (0 = until the horizon). */
    double durationSeconds = 0.0;
    /** Slowdown multiplier for degrade/straggle events (>= 1). */
    double factor = 1.0;
};

/** A named, declarative chaos scenario: timed events on a cluster. */
struct ChaosScenario
{
    std::string name = "none";
    std::vector<ChaosEvent> events;

    bool empty() const { return events.empty(); }
};

/**
 * Build a canonical scenario by name, scaled to the horizon:
 * "none", "kill-replica" (one replica down mid-run),
 * "kill-replica-at-zero" (cluster starts mid-outage),
 * "rolling-kill" (replicas die one after another),
 * "degrade-domain" (one rack runs 3x slow), and
 * "straggle-gpu" (one GPU runs 4x slow). Throws on unknown names.
 */
ChaosScenario namedChaosScenario(const std::string& name,
                                 int numReplicas,
                                 double horizonSeconds);

/**
 * Replica health-probe model. Probes are the only way the router
 * learns a replica's state: every `intervalSeconds` (plus a seeded
 * per-replica phase offset, so probes do not align across replicas)
 * the prober marks a replica up/down from its GPUs' current state and
 * moves due circuit breakers from open to half-open. Between probes
 * the router acts on stale health — the detection-lag realism knob.
 */
struct ProbeModel
{
    double intervalSeconds = 5.0;
    /** Phase offset is uniform in [0, jitterFraction * interval). */
    double jitterFraction = 0.5;
};

/** Cluster topology + every resilience policy in one config. */
struct ClusterConfig
{
    /** Mean request arrival rate, requests/second (Poisson). */
    double arrivalRate = 1.0;
    /** Maximum requests batched into one inference. */
    int maxBatch = 4;
    /** Simulated wall-clock horizon, seconds. */
    double horizonSeconds = 600.0;
    /** Arrival-process seed (fault/probe streams split from it). */
    std::uint64_t seed = 7;

    /** Replica pools behind the router (at least one). */
    std::vector<ReplicaSpec> replicas = {ReplicaSpec{}};
    RouterPolicy router = RouterPolicy::RoundRobin;

    /** Single-pool policies, reused per replica (faults are i.i.d.
     *  per GPU plus correlated per failure domain). */
    ResilienceConfig resilience;

    CircuitBreakerPolicy breaker;
    HedgePolicy hedge;
    CheckpointPolicy checkpoint;
    ChaosScenario chaos;
    ProbeModel probe;

    int totalGpus() const;

    /** Throw `FatalError` on any malformed knob or chaos target. */
    void validate() const;
};

/**
 * Wrap a single-pool serving configuration as a one-replica cluster
 * with every cluster feature disabled. `simulateCluster` on the
 * result reproduces `simulateServing(cfg, latency)` bit-for-bit.
 */
ClusterConfig singlePoolCluster(const ServingConfig& cfg,
                                const LatencyModel& latency);

/** Per-replica accounting over the horizon. */
struct ReplicaStats
{
    std::int64_t dispatchedBatches = 0;
    std::int64_t completedRequests = 0;
    /** Batches killed by faults or timeouts on this replica. */
    std::int64_t abortedBatches = 0;
    std::int64_t breakerOpens = 0;
    /** GPU busy-seconds on this replica (incl. drain work). */
    double busySeconds = 0.0;
    /** Mean member-GPU availability (faults + chaos). */
    double availability = 1.0;
};

/** Cluster simulation output. */
struct ClusterReport
{
    /** Fleet-level metrics, including the cluster counters. */
    ServingReport serving;
    std::vector<ReplicaStats> replicas;
    /** Mean member availability per failure domain id. */
    std::vector<double> domainAvailability;
};

/**
 * Run the cluster discrete-event simulation. Arrivals draw from the
 * unsplit `Rng(seed)` stream — exactly the single-pool simulator's
 * stream — while faults, chaos compilation, and probe jitter draw
 * from split streams, so enabling any resilience feature never
 * perturbs the arrival sequence.
 */
ClusterReport simulateCluster(const ClusterConfig& cfg);

/**
 * Run the cluster simulation with optional telemetry. Null (or
 * all-disabled) telemetry takes the exact code path of the one-
 * argument overload: instrumentation only records, never perturbs the
 * RNG or the event clock, so the report is bit-for-bit identical with
 * telemetry on or off.
 *
 * Beyond the single-pool emissions (see simulateServing), the
 * cluster run adds per-replica sampled series (queue depth, in-flight
 * batches, breaker state, utilization, labeled replica=R), breaker
 * open / half-open / close instants, hedge spans from issue to
 * resolution, and per-GPU batch/outage spans.
 */
ClusterReport simulateCluster(const ClusterConfig& cfg,
                              const telemetry::Telemetry* telemetry);

} // namespace mmgen::serving

#endif // MMGEN_SERVING_CLUSTER_HH
