#include "serving/telemetry_hooks.hh"

namespace mmgen::serving {

telemetry::HistogramSpec
latencyHistogramSpec()
{
    // Request latencies span milliseconds (image batch on a fast GPU)
    // to hours (long-video TTV under chaos); log buckets keep the
    // relative quantile error below one growth factor everywhere.
    return telemetry::HistogramSpec::exponential(1e-3, 1e4, 60);
}

telemetry::HistogramSpec
batchHistogramSpec()
{
    // Unit-width bins: batch sizes are small integers, so quantiles
    // are exact up to the bucket midpoint convention.
    return telemetry::HistogramSpec::linear(0.0, 65.0, 65);
}

void
publishServingMetrics(telemetry::MetricsRegistry& registry,
                      const ServingReport& report,
                      std::span<const double> latencySeconds,
                      std::span<const double> batchSizes,
                      const telemetry::Labels& labels)
{
    auto count = [&](const char* name, std::int64_t v) {
        registry.counter(name, labels).add(v);
    };
    auto gauge = [&](const char* name, double v) {
        registry.gauge(name, labels).set(v);
    };

    count("serving.requests_arrived", report.arrived);
    count("serving.requests_completed", report.completed);
    count("serving.requests_shed", report.shed);
    count("serving.requests_expired", report.expired);
    count("serving.requests_dropped", report.dropped);
    count("serving.requests_degraded", report.degraded);
    count("serving.requests_shed_memory", report.memoryShed);
    count("serving.retries", report.retries);
    count("serving.drain_completed", report.drainCompleted);
    count("serving.hedges_issued", report.hedgesIssued);
    count("serving.hedges_won", report.hedgesWon);
    count("serving.hedges_cancelled", report.hedgesCancelled);
    count("serving.breaker_opens", report.breakerOpens);
    count("serving.breaker_closes", report.breakerCloses);
    count("serving.checkpoints_taken", report.checkpointsTaken);
    count("serving.resumes", report.resumes);

    gauge("serving.throughput_rps", report.throughput);
    gauge("serving.goodput_rps", report.goodput);
    gauge("serving.gpu_utilization", report.gpuUtilization);
    gauge("serving.offered_load", report.offeredLoad);
    gauge("serving.mean_availability", report.meanAvailability);
    gauge("serving.backlog", static_cast<double>(report.backlog));
    gauge("serving.deadline_miss_rate", report.deadlineMissRate);
    gauge("serving.shed_fraction", report.shedFraction);
    gauge("serving.effective_max_batch",
          static_cast<double>(report.effectiveMaxBatch));
    gauge("serving.max_batch_dispatched",
          static_cast<double>(report.maxBatchDispatched));
    gauge("serving.mean_latency_seconds", report.meanLatency);
    gauge("serving.p95_latency_seconds", report.p95Latency);
    gauge("serving.hedge_wasted_seconds", report.hedgeWastedSeconds);
    gauge("serving.lost_gpu_seconds", report.lostGpuSeconds);
    gauge("serving.wasted_gpu_seconds", report.wastedGpuSeconds);
    gauge("serving.restored_gpu_seconds", report.restoredGpuSeconds);
    gauge("serving.checkpoint_overhead_seconds",
          report.checkpointOverheadSeconds);

    auto& latency_hist = registry.histogram(
        "serving.request_latency_seconds", latencyHistogramSpec(),
        labels);
    for (double v : latencySeconds)
        latency_hist.observe(v);
    auto& batch_hist = registry.histogram("serving.batch_size",
                                          batchHistogramSpec(), labels);
    for (double v : batchSizes)
        batch_hist.observe(v);
}

bool
reportsBitIdentical(const ServingReport& a, const ServingReport& b)
{
    return a.arrived == b.arrived && a.completed == b.completed &&
           a.throughput == b.throughput &&
           a.meanLatency == b.meanLatency &&
           a.p50Latency == b.p50Latency &&
           a.p95Latency == b.p95Latency &&
           a.meanBatch == b.meanBatch &&
           a.gpuUtilization == b.gpuUtilization &&
           a.backlog == b.backlog &&
           a.offeredLoad == b.offeredLoad &&
           a.drainCompleted == b.drainCompleted &&
           a.drainGpuSeconds == b.drainGpuSeconds &&
           a.goodput == b.goodput &&
           a.deadlineMissRate == b.deadlineMissRate &&
           a.retries == b.retries && a.shed == b.shed &&
           a.shedFraction == b.shedFraction &&
           a.expired == b.expired && a.dropped == b.dropped &&
           a.degraded == b.degraded &&
           a.degradedFraction == b.degradedFraction &&
           a.memoryShed == b.memoryShed &&
           a.effectiveMaxBatch == b.effectiveMaxBatch &&
           a.maxBatchDispatched == b.maxBatchDispatched &&
           a.lostGpuSeconds == b.lostGpuSeconds &&
           a.meanAvailability == b.meanAvailability &&
           a.hedgesIssued == b.hedgesIssued &&
           a.hedgesWon == b.hedgesWon &&
           a.hedgesCancelled == b.hedgesCancelled &&
           a.hedgeWastedSeconds == b.hedgeWastedSeconds &&
           a.breakerOpens == b.breakerOpens &&
           a.breakerCloses == b.breakerCloses &&
           a.checkpointsTaken == b.checkpointsTaken &&
           a.resumes == b.resumes &&
           a.checkpointOverheadSeconds ==
               b.checkpointOverheadSeconds &&
           a.wastedGpuSeconds == b.wastedGpuSeconds &&
           a.restoredGpuSeconds == b.restoredGpuSeconds;
}

} // namespace mmgen::serving
