#include "cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "serving/faults.hh"
#include "serving/telemetry_hooks.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace mmgen::serving {

const char*
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::RoundRobin:
        return "round-robin";
    case RouterPolicy::LeastLoaded:
        return "least-loaded";
    case RouterPolicy::FailureDomainAware:
        return "failure-domain-aware";
    }
    return "unknown";
}

const char*
chaosEventKindName(ChaosEventKind kind)
{
    switch (kind) {
    case ChaosEventKind::KillReplica:
        return "kill-replica";
    case ChaosEventKind::DegradeDomain:
        return "degrade-domain";
    case ChaosEventKind::StraggleGpu:
        return "straggle-gpu";
    }
    return "unknown";
}

double
hedgeDelayForQuantile(const LatencyModel& latency, int maxBatch,
                      double quantile)
{
    MMGEN_CHECK(maxBatch >= 1, "need max batch >= 1");
    MMGEN_CHECK(quantile > 0.0 && quantile <= 1.0,
                "hedge quantile out of (0, 1], got " << quantile);
    const int batch = std::clamp(
        static_cast<int>(std::ceil(quantile * maxBatch)), 1, maxBatch);
    return latency.batchSeconds(batch);
}

CheckpointPolicy
checkpointFromPipeline(const graph::Pipeline& pipeline,
                       std::int64_t everyIterations, double costSeconds)
{
    MMGEN_CHECK(!pipeline.stages.empty(),
                "pipeline '" << pipeline.name << "' has no stages");
    MMGEN_CHECK(everyIterations >= 1,
                "checkpoint interval must be >= 1 iteration, got "
                    << everyIterations);
    MMGEN_CHECK(std::isfinite(costSeconds) && costSeconds >= 0.0,
                "checkpoint cost must be finite and non-negative");
    CheckpointPolicy policy;
    // The dominant stage's loop (denoise steps for diffusion, decode
    // steps for AR generators) is the resumable structure; the other
    // stages are a small prefix/suffix that re-runs on resume anyway.
    for (const graph::Stage& stage : pipeline.stages)
        policy.iterations = std::max(policy.iterations, stage.iterations);
    policy.intervalIterations = everyIterations;
    policy.costSeconds = costSeconds;
    return policy;
}

ChaosScenario
namedChaosScenario(const std::string& name, int numReplicas,
                   double horizonSeconds)
{
    MMGEN_CHECK(numReplicas >= 1, "need at least one replica");
    MMGEN_CHECK(horizonSeconds > 0.0, "horizon must be positive");
    const double h = horizonSeconds;
    ChaosScenario s;
    s.name = name;
    if (name == "none")
        return s;
    if (name == "kill-replica") {
        s.events.push_back({0.25 * h, ChaosEventKind::KillReplica,
                            numReplicas - 1, 0.25 * h, 1.0});
        return s;
    }
    if (name == "kill-replica-at-zero") {
        s.events.push_back({0.0, ChaosEventKind::KillReplica,
                            numReplicas - 1, 0.25 * h, 1.0});
        return s;
    }
    if (name == "rolling-kill") {
        for (int r = 0; r < numReplicas; ++r) {
            const double at =
                h * (0.1 + 0.8 * static_cast<double>(r) /
                               static_cast<double>(numReplicas));
            s.events.push_back({at, ChaosEventKind::KillReplica, r,
                                0.15 * h, 1.0});
        }
        return s;
    }
    if (name == "degrade-domain") {
        s.events.push_back({0.25 * h, ChaosEventKind::DegradeDomain, 0,
                            0.5 * h, 3.0});
        return s;
    }
    if (name == "straggle-gpu") {
        s.events.push_back({0.1 * h, ChaosEventKind::StraggleGpu, 0,
                            0.8 * h, 4.0});
        return s;
    }
    MMGEN_CHECK(false, "unknown chaos scenario '" << name << "'");
    return s;
}

int
ClusterConfig::totalGpus() const
{
    int n = 0;
    for (const ReplicaSpec& r : replicas)
        n += r.numGpus;
    return n;
}

void
ClusterConfig::validate() const
{
    MMGEN_CHECK(std::isfinite(arrivalRate) && arrivalRate > 0.0,
                "arrival rate must be positive and finite, got "
                    << arrivalRate);
    MMGEN_CHECK(maxBatch >= 1, "need max batch >= 1, got " << maxBatch);
    MMGEN_CHECK(std::isfinite(horizonSeconds) && horizonSeconds > 0.0,
                "horizon must be positive and finite, got "
                    << horizonSeconds);
    MMGEN_CHECK(!replicas.empty(), "need at least one replica");
    int maxDomain = 0;
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        MMGEN_CHECK(replicas[r].numGpus >= 1,
                    "replica " << r << " needs at least one GPU, got "
                               << replicas[r].numGpus);
        MMGEN_CHECK(replicas[r].domain >= 0,
                    "replica " << r << " has negative failure domain "
                               << replicas[r].domain);
        MMGEN_CHECK(replicas[r].latency.baseSeconds > 0.0,
                    "replica " << r << " latency model is degenerate");
        maxDomain = std::max(maxDomain, replicas[r].domain);
    }
    resilience.validate();
    MMGEN_CHECK(breaker.failureThreshold >= 0,
                "breaker threshold must be non-negative, got "
                    << breaker.failureThreshold);
    MMGEN_CHECK(std::isfinite(breaker.openSeconds) &&
                    breaker.openSeconds >= 0.0,
                "breaker open window must be finite and non-negative");
    MMGEN_CHECK(breaker.halfOpenSuccesses >= 1,
                "breaker needs >= 1 half-open success, got "
                    << breaker.halfOpenSuccesses);
    MMGEN_CHECK(std::isfinite(hedge.delaySeconds) &&
                    hedge.delaySeconds >= 0.0,
                "hedge delay must be finite and non-negative");
    MMGEN_CHECK(checkpoint.iterations >= 0 &&
                    checkpoint.intervalIterations >= 0,
                "checkpoint iteration counts must be non-negative");
    MMGEN_CHECK(!checkpoint.enabled() ||
                    checkpoint.intervalIterations <=
                        checkpoint.iterations,
                "checkpoint interval exceeds request iterations");
    MMGEN_CHECK(std::isfinite(checkpoint.costSeconds) &&
                    checkpoint.costSeconds >= 0.0,
                "checkpoint cost must be finite and non-negative");
    MMGEN_CHECK(std::isfinite(probe.intervalSeconds) &&
                    probe.intervalSeconds > 0.0,
                "probe interval must be positive and finite");
    MMGEN_CHECK(probe.jitterFraction >= 0.0 &&
                    probe.jitterFraction < 1.0,
                "probe jitter fraction out of [0, 1)");
    const int numReplicas = static_cast<int>(replicas.size());
    for (const ChaosEvent& ev : chaos.events) {
        MMGEN_CHECK(std::isfinite(ev.atSeconds) && ev.atSeconds >= 0.0,
                    "chaos event time must be finite and non-negative");
        MMGEN_CHECK(std::isfinite(ev.durationSeconds) &&
                        ev.durationSeconds >= 0.0,
                    "chaos duration must be finite and non-negative");
        switch (ev.kind) {
        case ChaosEventKind::KillReplica:
            MMGEN_CHECK(ev.target >= 0 && ev.target < numReplicas,
                        "chaos kill targets replica " << ev.target
                            << " of " << numReplicas);
            break;
        case ChaosEventKind::DegradeDomain:
            MMGEN_CHECK(ev.target >= 0 && ev.target <= maxDomain,
                        "chaos degrade targets unknown domain "
                            << ev.target);
            MMGEN_CHECK(ev.factor >= 1.0,
                        "degrade factor must be >= 1, got "
                            << ev.factor);
            break;
        case ChaosEventKind::StraggleGpu:
            MMGEN_CHECK(ev.target >= 0 && ev.target < totalGpus(),
                        "chaos straggle targets GPU " << ev.target
                            << " of " << totalGpus());
            MMGEN_CHECK(ev.factor >= 1.0,
                        "straggle factor must be >= 1, got "
                            << ev.factor);
            break;
        }
    }
}

ClusterConfig
singlePoolCluster(const ServingConfig& cfg, const LatencyModel& latency)
{
    ClusterConfig cluster;
    cluster.arrivalRate = cfg.arrivalRate;
    cluster.maxBatch = cfg.maxBatch;
    cluster.horizonSeconds = cfg.horizonSeconds;
    cluster.seed = cfg.seed;
    cluster.replicas = {ReplicaSpec{latency, cfg.numGpus, 0}};
    return cluster;
}

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// Probe-jitter stream base; faults.cc owns 0x0001'0000..0x0004'0000.
constexpr std::uint64_t kProbeStream = 0x0005'0000;

/** One dispatchable copy of a logical request (primary or hedge). */
struct Copy
{
    std::int64_t id = 0;
    double arrival = 0.0;
    int attempts = 0;
    bool hedge = false;
    /** Checkpointed iterations already durable at dispatch time. */
    std::int64_t baseIters = 0;
};

/** Cross-copy state of one logical request, indexed by arrival id. */
struct ReqMeta
{
    double arrival = 0.0;
    bool done = false;
    bool hedged = false;
    bool primaryInFlight = false;
    int primaryReplica = -1;
    int liveCopies = 0;
    /** Durable checkpointed progress, iterations. */
    std::int64_t doneIters = 0;
    /** When the hedge timer fired (trace span start; telemetry only). */
    double hedgedAt = 0.0;
};

/** One batch occupying a GPU. */
struct InFlightBatch
{
    double start = 0.0;
    /** Resolution time: completion, or abort when `timedOut`. */
    double finish = 0.0;
    /** Full service time including checkpoint-write overhead. */
    double plannedService = 0.0;
    /** Service time excluding checkpoint-write overhead. */
    double workService = 0.0;
    /** Iterations the longest member still needed at dispatch. */
    std::int64_t maxRemIters = 0;
    /** Checkpoints this run writes if it completes. */
    std::int64_t ckpts = 0;
    bool degraded = false;
    bool timedOut = false;
    int replica = 0;
    std::vector<Copy> copies;
    /** Iterations each member still needed at dispatch. */
    std::vector<std::int64_t> remIters;
};

/** Completion-queue entry; `epoch` lazily invalidates killed work. */
struct FinishEvent
{
    double time;
    int gpu;
    std::uint64_t epoch;

    bool
    operator>(const FinishEvent& other) const
    {
        return time > other.time;
    }
};

/** Retry-queue entry; `seq` keeps ties deterministic. */
struct RetryEvent
{
    double ready;
    std::uint64_t seq;
    Copy copy;

    bool
    operator>(const RetryEvent& other) const
    {
        return ready != other.ready ? ready > other.ready
                                    : seq > other.seq;
    }
};

/** Hedge timer: fire a backup copy if the primary is still running. */
struct HedgeEvent
{
    double time;
    std::uint64_t seq;
    std::int64_t id;

    bool
    operator>(const HedgeEvent& other) const
    {
        return time != other.time ? time > other.time : seq > other.seq;
    }
};

/** GPU up/down edge from the fault plan (chaos kills folded in). */
struct Transition
{
    double time;
    int gpu;
    bool down;
};

/** Scripted slowdown window on one GPU (chaos degrade/straggle). */
struct SlowWindow
{
    double start = 0.0;
    double end = 0.0;
    double factor = 1.0;
};

enum class BreakerState
{
    Closed,
    Open,
    HalfOpen,
};

} // namespace

ClusterReport
simulateCluster(const ClusterConfig& cfg)
{
    return simulateCluster(cfg, nullptr);
}

ClusterReport
simulateCluster(const ClusterConfig& cfg,
                const telemetry::Telemetry* tele)
{
    cfg.validate();

    // Telemetry handles. Null means off; every use below is guarded
    // so the disabled path is the exact pre-telemetry code path.
    telemetry::MetricsRegistry* metrics =
        tele != nullptr ? tele->metrics : nullptr;
    telemetry::TraceSink* trace =
        tele != nullptr && tele->wantsTrace() ? tele->trace : nullptr;
    const bool sampling = tele != nullptr && tele->wantsSampling();

    const double horizon = cfg.horizonSeconds;
    const DeadlinePolicy& deadline = cfg.resilience.deadline;
    const CheckpointPolicy& ckpt = cfg.checkpoint;
    const int numReplicas = static_cast<int>(cfg.replicas.size());
    const int numGpus = cfg.totalGpus();
    const bool breakerOn = cfg.breaker.enabled();
    const bool hedgeOn = cfg.hedge.enabled() && numReplicas > 1;
    const bool ckptOn = ckpt.enabled();
    // Probes only exist when someone consumes their output: router
    // health matters with > 1 replica, breaker transitions need the
    // probe clock. A bare single pool must add no events at all so the
    // trivial path replays `simulateServing` exactly.
    const bool probesOn = numReplicas > 1 || breakerOn;

    // Global GPU indexing: replica r owns [gpuBase[r], gpuBase[r] +
    // numGpus_r), so the fault plan, chaos targets, and the event loop
    // all speak one flat index space.
    std::vector<int> gpuBase(static_cast<std::size_t>(numReplicas), 0);
    std::vector<int> repOf(static_cast<std::size_t>(numGpus), 0);
    std::vector<int> domainOf(static_cast<std::size_t>(numGpus), 0);
    {
        int g = 0;
        for (int r = 0; r < numReplicas; ++r) {
            gpuBase[static_cast<std::size_t>(r)] = g;
            for (int k = 0; k < cfg.replicas[static_cast<std::size_t>(r)]
                                    .numGpus;
                 ++k, ++g) {
                repOf[static_cast<std::size_t>(g)] = r;
                domainOf[static_cast<std::size_t>(g)] =
                    cfg.replicas[static_cast<std::size_t>(r)].domain;
            }
        }
    }

    // Arrivals draw from the unsplit Rng(seed) stream — exactly the
    // single-pool simulator's stream — while faults, chaos, and probe
    // jitter draw from split streams, so no cluster feature can
    // perturb the arrival sequence.
    Rng rng(cfg.seed);
    FleetFaultPlan plan =
        planFaults(cfg.resilience.faults, domainOf, horizon, cfg.seed);

    // Compile the chaos scenario into the same structures the fault
    // plan uses: kills become outage windows on every member GPU (so
    // availability accounting sees them), degrades/stragglers become
    // timed slowdown windows applied at dispatch.
    std::vector<std::vector<SlowWindow>> slowWindows(
        static_cast<std::size_t>(numGpus));
    {
        std::vector<std::vector<Outage>> extra(
            static_cast<std::size_t>(numGpus));
        for (const ChaosEvent& ev : cfg.chaos.events) {
            const double end = ev.durationSeconds > 0.0
                                   ? ev.atSeconds + ev.durationSeconds
                                   : horizon;
            if (end <= ev.atSeconds)
                continue;
            switch (ev.kind) {
            case ChaosEventKind::KillReplica: {
                const std::size_t r =
                    static_cast<std::size_t>(ev.target);
                const int base = gpuBase[r];
                for (int k = 0; k < cfg.replicas[r].numGpus; ++k)
                    extra[static_cast<std::size_t>(base + k)].push_back(
                        {ev.atSeconds, end, OutageKind::Failure});
                break;
            }
            case ChaosEventKind::DegradeDomain:
                for (int g = 0; g < numGpus; ++g) {
                    if (domainOf[static_cast<std::size_t>(g)] ==
                        ev.target)
                        slowWindows[static_cast<std::size_t>(g)]
                            .push_back(
                                {ev.atSeconds, end, ev.factor});
                }
                break;
            case ChaosEventKind::StraggleGpu:
                slowWindows[static_cast<std::size_t>(ev.target)]
                    .push_back({ev.atSeconds, end, ev.factor});
                break;
            }
        }
        for (int g = 0; g < numGpus; ++g) {
            const std::size_t gi = static_cast<std::size_t>(g);
            if (extra[gi].empty())
                continue;
            std::vector<Outage> merged = plan.gpus[gi].outages;
            merged.insert(merged.end(), extra[gi].begin(),
                          extra[gi].end());
            plan.gpus[gi].outages = mergeOutages(std::move(merged));
        }
    }

    ClusterReport cluster;
    ServingReport& report = cluster.serving;
    report.meanAvailability = plan.meanAvailability(horizon);
    cluster.domainAvailability = plan.domainAvailability(horizon);
    cluster.replicas.resize(static_cast<std::size_t>(numReplicas));

    // Memory-aware batch ceiling (see simulateServing): the static
    // liveness bound clamps dispatch; zero sheds every arrival.
    const int effective_max_batch =
        cfg.resilience.admission.hasMemoryBound()
            ? static_cast<int>(std::min<std::int64_t>(
                  cfg.maxBatch,
                  cfg.resilience.admission.memoryFeasibleBatch))
            : cfg.maxBatch;
    report.effectiveMaxBatch = effective_max_batch;
    const int rate_batch = std::max(effective_max_batch, 1);

    // Offered load versus full-batch fleet capacity.
    double capacity = 0.0;
    for (const ReplicaSpec& rep : cfg.replicas) {
        const double batch_rate =
            static_cast<double>(rate_batch) /
            rep.latency.batchSeconds(rate_batch);
        capacity += batch_rate * static_cast<double>(rep.numGpus);
    }
    report.offeredLoad = cfg.arrivalRate / capacity;

    // Flatten the fault plan into a time-sorted edge list.
    std::vector<Transition> transitions;
    for (int g = 0; g < numGpus; ++g) {
        for (const Outage& o :
             plan.gpus[static_cast<std::size_t>(g)].outages) {
            transitions.push_back({o.start, g, true});
            transitions.push_back({o.end, g, false});
        }
    }
    std::sort(transitions.begin(), transitions.end(),
              [](const Transition& a, const Transition& b) {
                  if (a.time != b.time)
                      return a.time < b.time;
                  if (a.gpu != b.gpu)
                      return a.gpu < b.gpu;
                  return a.down < b.down; // up-edge before down-edge
              });

    // Trace lanes: per-GPU lanes for batch/outage spans, shared lanes
    // for lifecycle, breaker-transition, and hedge events.
    std::vector<int> gpu_track;
    int lifecycle_track = -1;
    int breaker_track = -1;
    int hedge_track = -1;
    if (trace != nullptr) {
        lifecycle_track = trace->track("serving", "lifecycle");
        breaker_track = trace->track("serving", "breakers");
        hedge_track = trace->track("serving", "hedges");
        for (int g = 0; g < numGpus; ++g) {
            gpu_track.push_back(trace->track(
                "serving",
                "gpu " + std::to_string(g) + " (replica " +
                    std::to_string(
                        repOf[static_cast<std::size_t>(g)]) +
                    ")"));
        }
        // Outage spans (faults + chaos kills) from the merged plan.
        for (int g = 0; g < numGpus; ++g) {
            for (const Outage& o :
                 plan.gpus[static_cast<std::size_t>(g)].outages) {
                trace->complete(gpu_track[static_cast<std::size_t>(g)],
                                "outage", o.start, o.end - o.start,
                                "fault");
            }
        }
    }

    // Per-replica label sets for sampled series and counters.
    std::vector<telemetry::Labels> repLabels;
    if (metrics != nullptr) {
        for (int r = 0; r < numReplicas; ++r) {
            repLabels.push_back(
                telemetry::Labels{{"replica", std::to_string(r)}});
        }
    }

    const std::size_t ngpu = static_cast<std::size_t>(numGpus);
    const std::size_t nrep = static_cast<std::size_t>(numReplicas);
    std::vector<std::deque<Copy>> queues(nrep);
    std::vector<std::optional<InFlightBatch>> inflight(ngpu);
    std::vector<bool> gpu_down(ngpu, false);
    std::vector<std::uint64_t> epoch(ngpu, 0);
    int inflight_gpus = 0;

    // Router / breaker / probe state, all per replica.
    std::vector<bool> knownUp(nrep, true);
    std::vector<BreakerState> bstate(nrep, BreakerState::Closed);
    std::vector<int> consecFailures(nrep, 0);
    std::vector<int> halfOpenSucc(nrep, 0);
    std::vector<double> openedAt(nrep, 0.0);
    std::vector<int> repBatches(nrep, 0);
    std::vector<std::int64_t> repQueuedPlusFlight(nrep, 0);
    std::uint64_t rrCounter = 0;

    std::vector<double> probeNext(nrep, kNever);
    if (probesOn) {
        for (int r = 0; r < numReplicas; ++r) {
            Rng pr = Rng::stream(
                cfg.seed,
                kProbeStream + static_cast<std::uint64_t>(r));
            probeNext[static_cast<std::size_t>(r)] = pr.uniform(
                0.0, cfg.probe.jitterFraction *
                         cfg.probe.intervalSeconds);
        }
    }

    std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                        std::greater<FinishEvent>>
        finishes;
    std::priority_queue<RetryEvent, std::vector<RetryEvent>,
                        std::greater<RetryEvent>>
        retries;
    std::priority_queue<HedgeEvent, std::vector<HedgeEvent>,
                        std::greater<HedgeEvent>>
        hedges;
    std::uint64_t retry_seq = 0;
    std::uint64_t hedge_seq = 0;

    std::vector<ReqMeta> meta;
    std::vector<double> latencies;
    std::vector<double> batch_sizes;
    double busy_in_horizon = 0.0;
    std::int64_t goodput_count = 0;
    std::int64_t deadline_misses = 0;

    double next_arrival = rng.exponential(cfg.arrivalRate);

    auto account_busy = [&](double start, double end, int replica) {
        busy_in_horizon += std::max(0.0, std::min(end, horizon) - start);
        report.drainGpuSeconds +=
            std::max(0.0, end - std::max(start, horizon));
        cluster.replicas[static_cast<std::size_t>(replica)]
            .busySeconds += end - start;
    };

    auto slowdownAt = [&](int g, double now) {
        const std::size_t gi = static_cast<std::size_t>(g);
        double s = plan.gpus[gi].slowdown;
        for (const SlowWindow& w : slowWindows[gi]) {
            if (now >= w.start && now < w.end)
                s *= w.factor;
        }
        return s;
    };

    // A half-open replica may receive work only while completely
    // idle: one trial request probes it, further traffic waits for
    // the verdict. Without this trickle the breaker could never
    // observe the successes it needs to close.
    auto halfOpenIdle = [&](std::size_t ri) {
        return bstate[ri] == BreakerState::HalfOpen &&
               repBatches[ri] == 0 && queues[ri].empty();
    };

    // Route one copy to a replica. Preference tiers: healthy replicas
    // (closed breaker, or an idle half-open one taking its trial),
    // then any non-open breaker, then anything — the policy picks
    // within the best non-empty tier. Deterministic: no RNG, ties to
    // the lowest index (or the round-robin cursor).
    auto route = [&](int exclude) {
        std::vector<int> cand;
        for (int tier = 0; tier < 3 && cand.empty(); ++tier) {
            for (int r = 0; r < numReplicas; ++r) {
                if (r == exclude)
                    continue;
                const std::size_t ri = static_cast<std::size_t>(r);
                if (tier == 0 &&
                    (!knownUp[ri] ||
                     (breakerOn &&
                      bstate[ri] != BreakerState::Closed &&
                      !halfOpenIdle(ri))))
                    continue;
                if (tier == 1 &&
                    (!knownUp[ri] ||
                     (breakerOn && bstate[ri] == BreakerState::Open)))
                    continue;
                cand.push_back(r);
            }
        }
        if (cand.empty())
            return -1;
        switch (cfg.router) {
        case RouterPolicy::RoundRobin:
            return cand[static_cast<std::size_t>(
                rrCounter++ % cand.size())];
        case RouterPolicy::LeastLoaded:
            break;
        case RouterPolicy::FailureDomainAware: {
            // Deprioritize replicas sharing a failure domain with a
            // known-down or breaker-tripped replica.
            std::vector<int> clean;
            for (int r : cand) {
                bool suspect = false;
                for (int o = 0; o < numReplicas; ++o) {
                    const std::size_t oi = static_cast<std::size_t>(o);
                    if (cfg.replicas[oi].domain !=
                        cfg.replicas[static_cast<std::size_t>(r)]
                            .domain)
                        continue;
                    if (!knownUp[oi] ||
                        (breakerOn &&
                         bstate[oi] != BreakerState::Closed)) {
                        suspect = true;
                        break;
                    }
                }
                if (!suspect)
                    clean.push_back(r);
            }
            if (!clean.empty())
                cand = std::move(clean);
            break;
        }
        }
        int best = cand.front();
        for (int r : cand) {
            if (repQueuedPlusFlight[static_cast<std::size_t>(r)] <
                repQueuedPlusFlight[static_cast<std::size_t>(best)])
                best = r;
        }
        return best;
    };

    auto enqueue = [&](int replica, const Copy& copy) {
        queues[static_cast<std::size_t>(replica)].push_back(copy);
        ++repQueuedPlusFlight[static_cast<std::size_t>(replica)];
    };

    // Requeue a faulted/timed-out copy with backoff, or drop it.
    auto retry_or_drop = [&](Copy copy, double now) {
        ReqMeta& m = meta[static_cast<std::size_t>(copy.id)];
        if (copy.attempts >= cfg.resilience.retry.maxRetries) {
            --m.liveCopies;
            if (!m.done && m.liveCopies == 0) {
                ++report.dropped;
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "drop", now,
                                   "lifecycle");
            }
            return;
        }
        ++copy.attempts;
        ++report.retries;
        const double ready =
            now + cfg.resilience.retry.backoffSeconds(copy.attempts);
        if (trace != nullptr)
            trace->instant(lifecycle_track, "retry", now, "lifecycle");
        retries.push({ready, retry_seq++, copy});
    };

    // Trip the breaker: stop routing to the replica and push its
    // queued work through the router toward healthy peers.
    auto openBreaker = [&](int r, double now) {
        const std::size_t ri = static_cast<std::size_t>(r);
        bstate[ri] = BreakerState::Open;
        openedAt[ri] = now;
        consecFailures[ri] = 0;
        halfOpenSucc[ri] = 0;
        ++report.breakerOpens;
        ++cluster.replicas[ri].breakerOpens;
        if (trace != nullptr) {
            telemetry::Labels args;
            args.set("replica", std::to_string(r));
            trace->instant(breaker_track, "breaker_open", now,
                           "breaker", args);
        }
        if (numReplicas > 1) {
            std::deque<Copy> moved;
            moved.swap(queues[ri]);
            repQueuedPlusFlight[ri] -=
                static_cast<std::int64_t>(moved.size());
            for (const Copy& c : moved) {
                if (meta[static_cast<std::size_t>(c.id)].done) {
                    ++report.hedgesCancelled;
                    --meta[static_cast<std::size_t>(c.id)].liveCopies;
                    continue;
                }
                const int target = route(r);
                enqueue(target >= 0 ? target : r, c);
            }
        }
    };

    auto noteBatchFailure = [&](int r, double now) {
        if (!breakerOn)
            return;
        const std::size_t ri = static_cast<std::size_t>(r);
        if (bstate[ri] == BreakerState::HalfOpen) {
            openBreaker(r, now);
            return;
        }
        ++consecFailures[ri];
        if (bstate[ri] == BreakerState::Closed &&
            consecFailures[ri] >= cfg.breaker.failureThreshold)
            openBreaker(r, now);
    };

    auto noteBatchSuccess = [&](int r, double now) {
        if (!breakerOn)
            return;
        const std::size_t ri = static_cast<std::size_t>(r);
        consecFailures[ri] = 0;
        if (bstate[ri] == BreakerState::HalfOpen) {
            ++halfOpenSucc[ri];
            if (halfOpenSucc[ri] >= cfg.breaker.halfOpenSuccesses) {
                bstate[ri] = BreakerState::Closed;
                halfOpenSucc[ri] = 0;
                ++report.breakerCloses;
                if (trace != nullptr) {
                    telemetry::Labels args;
                    args.set("replica", std::to_string(r));
                    trace->instant(breaker_track, "breaker_close", now,
                                   "breaker", args);
                }
            }
        }
    };

    // Resolve every member copy of a killed batch: salvage any
    // checkpointed progress, book the destroyed GPU-seconds, and put
    // live copies back through the retry policy.
    auto failMembers = [&](InFlightBatch& fl, double now) {
        const double elapsed = now - fl.start;
        const double b = static_cast<double>(fl.copies.size());
        if (ckptOn && fl.plannedService > 0.0) {
            const double q = std::min(elapsed / fl.plannedService, 1.0);
            const std::int64_t advMax = static_cast<std::int64_t>(
                q * static_cast<double>(fl.maxRemIters));
            const std::int64_t taken =
                advMax / ckpt.intervalIterations;
            report.checkpointsTaken += taken;
            report.checkpointOverheadSeconds +=
                static_cast<double>(taken) * ckpt.costSeconds;
        }
        for (std::size_t i = 0; i < fl.copies.size(); ++i) {
            Copy& copy = fl.copies[i];
            ReqMeta& m = meta[static_cast<std::size_t>(copy.id)];
            if (!copy.hedge)
                m.primaryInFlight = false;
            const double share = elapsed / b;
            if (m.done) {
                // Duplicate of an already-answered request: all its
                // progress is hedge waste, nothing retries.
                report.hedgeWastedSeconds += share;
                --m.liveCopies;
                continue;
            }
            double salvage = 0.0;
            if (ckptOn && fl.plannedService > 0.0) {
                const double q =
                    std::min(elapsed / fl.plannedService, 1.0);
                const std::int64_t rem = fl.remIters[i];
                const std::int64_t adv = static_cast<std::int64_t>(
                    q * static_cast<double>(rem));
                const std::int64_t ck =
                    (adv / ckpt.intervalIterations) *
                    ckpt.intervalIterations;
                if (ck > 0) {
                    m.doneIters =
                        std::max(m.doneIters, copy.baseIters + ck);
                    salvage = (static_cast<double>(ck) /
                               static_cast<double>(rem)) *
                              (fl.workService / b);
                }
            }
            report.wastedGpuSeconds += share - salvage;
            report.restoredGpuSeconds += salvage;
            retry_or_drop(copy, now);
        }
    };

    // Kill the batch on a GPU (fault hit).
    auto abort_inflight = [&](int g, double now) {
        const std::size_t gi = static_cast<std::size_t>(g);
        const int r = repOf[gi];
        InFlightBatch& fl = *inflight[gi];
        account_busy(fl.start, now, r);
        report.lostGpuSeconds += now - fl.start;
        if (trace != nullptr) {
            telemetry::Labels args;
            args.set("batch", std::to_string(fl.copies.size()));
            args.set("replica", std::to_string(r));
            args.set("outcome", "killed");
            trace->complete(gpu_track[gi],
                            "batch b=" +
                                std::to_string(fl.copies.size()),
                            fl.start, now - fl.start, "batch", args);
        }
        failMembers(fl, now);
        repQueuedPlusFlight[static_cast<std::size_t>(r)] -=
            static_cast<std::int64_t>(fl.copies.size());
        --repBatches[static_cast<std::size_t>(r)];
        ++cluster.replicas[static_cast<std::size_t>(r)].abortedBatches;
        inflight[gi].reset();
        ++epoch[gi];
        --inflight_gpus;
        noteBatchFailure(r, now);
    };

    auto dispatch = [&](double now) {
        if (effective_max_batch == 0)
            return; // memory-infeasible: nothing may be scheduled
        for (int r = 0; r < numReplicas; ++r) {
            const std::size_t ri = static_cast<std::size_t>(r);
            if (breakerOn && bstate[ri] == BreakerState::Open)
                continue;
            std::deque<Copy>& queue = queues[ri];
            const ReplicaSpec& rep = cfg.replicas[ri];
            while (true) {
                // Drop cancelled duplicates: their twin already
                // answered, serving them is pure waste.
                if (hedgeOn) {
                    for (std::size_t k = 0; k < queue.size();) {
                        if (meta[static_cast<std::size_t>(
                                     queue[k].id)]
                                .done) {
                            ++report.hedgesCancelled;
                            --meta[static_cast<std::size_t>(
                                       queue[k].id)]
                                  .liveCopies;
                            --repQueuedPlusFlight[ri];
                            queue.erase(queue.begin() +
                                        static_cast<std::ptrdiff_t>(k));
                        } else {
                            ++k;
                        }
                    }
                }
                if (queue.empty())
                    break;
                // Lazily expire queued copies whose deadline already
                // passed — serving them would be wasted work.
                if (deadline.hasDeadline()) {
                    while (!queue.empty() &&
                           queue.front().arrival +
                                   deadline.deadlineSeconds <=
                               now) {
                        ReqMeta& m = meta[static_cast<std::size_t>(
                            queue.front().id)];
                        --m.liveCopies;
                        if (m.liveCopies == 0) {
                            ++report.expired;
                            if (trace != nullptr)
                                trace->instant(lifecycle_track,
                                               "expire", now,
                                               "lifecycle");
                        } else {
                            ++report.hedgesCancelled;
                        }
                        --repQueuedPlusFlight[ri];
                        queue.pop_front();
                    }
                    if (queue.empty())
                        break;
                }
                // A half-open breaker admits one trial batch at a time.
                if (breakerOn &&
                    bstate[ri] == BreakerState::HalfOpen &&
                    repBatches[ri] > 0)
                    break;
                int free_gpu = -1;
                for (int k = 0; k < rep.numGpus; ++k) {
                    const int g = gpuBase[ri] + k;
                    const std::size_t gi = static_cast<std::size_t>(g);
                    if (!inflight[gi].has_value() && !gpu_down[gi]) {
                        free_gpu = g;
                        break;
                    }
                }
                if (free_gpu < 0)
                    break;
                const std::size_t gi =
                    static_cast<std::size_t>(free_gpu);
                const bool degrade =
                    cfg.resilience.degradation.enabled() &&
                    static_cast<std::int64_t>(queue.size()) >=
                        cfg.resilience.degradation.queueThreshold;
                const int batch = static_cast<int>(
                    std::min<std::size_t>(queue.size(),
                                          static_cast<std::size_t>(
                                              effective_max_batch)));
                double service = rep.latency.batchSeconds(batch) *
                                 slowdownAt(free_gpu, now);
                if (degrade)
                    service *=
                        cfg.resilience.degradation.serviceScale;
                InFlightBatch fl;
                fl.replica = r;
                fl.start = now;
                fl.degraded = degrade;
                if (ckptOn) {
                    // Resume from the last checkpoint: the batch only
                    // runs the longest member's remaining iterations,
                    // plus the cost of the checkpoints it will write.
                    for (int i = 0; i < batch; ++i) {
                        const Copy& c =
                            queue[static_cast<std::size_t>(i)];
                        const std::int64_t rem =
                            ckpt.iterations -
                            meta[static_cast<std::size_t>(c.id)]
                                .doneIters;
                        fl.remIters.push_back(rem);
                        fl.maxRemIters =
                            std::max(fl.maxRemIters, rem);
                    }
                    service *=
                        static_cast<double>(fl.maxRemIters) /
                        static_cast<double>(ckpt.iterations);
                    fl.workService = service;
                    fl.ckpts =
                        fl.maxRemIters / ckpt.intervalIterations;
                    service += static_cast<double>(fl.ckpts) *
                               ckpt.costSeconds;
                } else {
                    fl.workService = service;
                }
                fl.plannedService = service;
                if (deadline.hasTimeout() &&
                    service > deadline.batchTimeoutSeconds) {
                    fl.timedOut = true;
                    fl.finish = now + deadline.batchTimeoutSeconds;
                } else {
                    fl.finish = now + service;
                }
                for (int i = 0; i < batch; ++i) {
                    Copy copy = queue.front();
                    queue.pop_front();
                    ReqMeta& m =
                        meta[static_cast<std::size_t>(copy.id)];
                    copy.baseIters = m.doneIters;
                    if (ckptOn && m.doneIters > 0)
                        ++report.resumes;
                    if (!copy.hedge) {
                        m.primaryInFlight = true;
                        m.primaryReplica = r;
                        if (hedgeOn && !m.hedged)
                            hedges.push(
                                {now + cfg.hedge.delaySeconds,
                                 hedge_seq++, copy.id});
                    }
                    fl.copies.push_back(copy);
                }
                batch_sizes.push_back(static_cast<double>(batch));
                finishes.push({fl.finish, free_gpu, ++epoch[gi]});
                inflight[gi] = std::move(fl);
                ++inflight_gpus;
                ++repBatches[ri];
                ++cluster.replicas[ri].dispatchedBatches;
            }
        }
    };

    auto totalQueued = [&] {
        std::int64_t n = 0;
        for (const std::deque<Copy>& q : queues)
            n += static_cast<std::int64_t>(q.size());
        return n;
    };

    // Periodic state sampling: an extra event source with the lowest
    // tie priority, so a sample at time t observes the state *after*
    // every simulation event at t. Sample k lands at exactly
    // k * interval (no floating-point accumulation drift); the final
    // sample is clamped onto the horizon, then the source goes quiet.
    const double sample_interval =
        sampling ? tele->sampleIntervalSeconds : 0.0;
    std::int64_t sample_idx = sampling ? 1 : -1;
    auto sample_time = [&]() -> double {
        if (sample_idx < 0)
            return kNever;
        const double t =
            sample_interval * static_cast<double>(sample_idx);
        return std::min(t, horizon);
    };
    auto take_sample = [&](double t) {
        telemetry::MetricsRegistry& m = *metrics;
        m.series("serving.queue_depth")
            .record(t, static_cast<double>(totalQueued()));
        m.series("serving.in_flight_gpus")
            .record(t, static_cast<double>(inflight_gpus));
        m.series("serving.retry_backlog")
            .record(t, static_cast<double>(retries.size()));
        m.series("serving.arrived_total")
            .record(t, static_cast<double>(report.arrived));
        m.series("serving.completed_total")
            .record(t, static_cast<double>(report.completed));
        m.series("serving.shed_total")
            .record(t, static_cast<double>(report.shed));
        m.series("serving.retries_total")
            .record(t, static_cast<double>(report.retries));
        m.series("serving.hedges_issued_total")
            .record(t, static_cast<double>(report.hedgesIssued));
        for (int r = 0; r < numReplicas; ++r) {
            const std::size_t ri = static_cast<std::size_t>(r);
            const telemetry::Labels& lbl = repLabels[ri];
            m.series("serving.replica.queue_depth", lbl)
                .record(t, static_cast<double>(queues[ri].size()));
            m.series("serving.replica.in_flight_batches", lbl)
                .record(t, static_cast<double>(repBatches[ri]));
            double state = 0.0;
            if (bstate[ri] == BreakerState::Open)
                state = 1.0;
            else if (bstate[ri] == BreakerState::HalfOpen)
                state = 2.0;
            m.series("serving.replica.breaker_state", lbl)
                .record(t, state);
            // Utilization so far: resolved busy-seconds plus the
            // elapsed share of still-running batches (their busy time
            // is only booked at resolution).
            double busy = cluster.replicas[ri].busySeconds;
            for (int k = 0; k < cfg.replicas[ri].numGpus; ++k) {
                const std::size_t gi = static_cast<std::size_t>(
                    gpuBase[ri] + k);
                if (inflight[gi].has_value())
                    busy += std::max(0.0, t - inflight[gi]->start);
            }
            m.series("serving.replica.utilization", lbl)
                .record(t, busy / (t * static_cast<double>(
                                           cfg.replicas[ri].numGpus)));
        }
        if (t >= horizon)
            sample_idx = -1; // final sample taken; source goes quiet
        else
            ++sample_idx;
    };
    double next_sample = sample_time();

    std::size_t ti = 0;
    while (true) {
        // Drop stale finish events (their batch was killed).
        while (!finishes.empty()) {
            const FinishEvent& top = finishes.top();
            const std::size_t gi = static_cast<std::size_t>(top.gpu);
            if (inflight[gi].has_value() && epoch[gi] == top.epoch)
                break;
            finishes.pop();
        }
        const double next_finish =
            finishes.empty() ? kNever : finishes.top().time;
        const double next_fault =
            ti < transitions.size() ? transitions[ti].time : kNever;
        const double next_retry =
            retries.empty() ? kNever : retries.top().ready;
        const double next_hedge =
            hedges.empty() ? kNever : hedges.top().time;
        double next_probe = kNever;
        int probe_replica = -1;
        for (int r = 0; r < numReplicas; ++r) {
            const double t = probeNext[static_cast<std::size_t>(r)];
            if (t <= horizon && t < next_probe) {
                next_probe = t;
                probe_replica = r;
            }
        }
        // next_sample joins next_other so a pending sample before a
        // post-horizon arrival still fires; every older event source
        // keeps tie priority over sampling.
        const double next_other =
            std::min({next_finish, next_fault, next_retry, next_probe,
                      next_hedge, next_sample});

        if (next_arrival <= next_other) {
            if (next_arrival > horizon)
                break;
            // Arrival event.
            const double now = next_arrival;
            ++report.arrived;
            if (effective_max_batch == 0) {
                // Not even a batch of one fits any replica's GPU:
                // shed with a memory rejection, never queue.
                ++report.shed;
                ++report.memoryShed;
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "shed_memory", now,
                                   "lifecycle");
            } else if (cfg.resilience.admission.enabled() &&
                       totalQueued() >=
                           cfg.resilience.admission.maxQueueLength) {
                ++report.shed;
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "shed", now,
                                   "lifecycle");
            } else {
                const std::int64_t id =
                    static_cast<std::int64_t>(meta.size());
                ReqMeta m;
                m.arrival = now;
                m.liveCopies = 1;
                meta.push_back(m);
                enqueue(route(-1), Copy{id, now, 0, false, 0});
                if (trace != nullptr)
                    trace->instant(lifecycle_track, "admit", now,
                                   "lifecycle");
            }
            next_arrival += rng.exponential(cfg.arrivalRate);
            dispatch(now);
        } else if (next_fault <=
                   std::min({next_finish, next_retry, next_probe,
                             next_hedge, next_sample})) {
            // GPU availability edge.
            const Transition tr = transitions[ti++];
            const std::size_t gi = static_cast<std::size_t>(tr.gpu);
            if (tr.down) {
                gpu_down[gi] = true;
                if (inflight[gi].has_value())
                    abort_inflight(tr.gpu, tr.time);
            } else {
                gpu_down[gi] = false;
                dispatch(tr.time);
            }
        } else if (next_probe <=
                   std::min({next_finish, next_retry, next_hedge,
                             next_sample})) {
            // Health probe: refresh router knowledge, advance due
            // breakers from open to half-open.
            const double now = next_probe;
            const std::size_t ri =
                static_cast<std::size_t>(probe_replica);
            bool anyUp = false;
            for (int k = 0; k < cfg.replicas[ri].numGpus; ++k) {
                if (!gpu_down[static_cast<std::size_t>(
                        gpuBase[ri] + k)]) {
                    anyUp = true;
                    break;
                }
            }
            knownUp[ri] = anyUp;
            probeNext[ri] += cfg.probe.intervalSeconds;
            if (breakerOn && bstate[ri] == BreakerState::Open &&
                now >= openedAt[ri] + cfg.breaker.openSeconds) {
                bstate[ri] = BreakerState::HalfOpen;
                halfOpenSucc[ri] = 0;
                if (trace != nullptr) {
                    telemetry::Labels args;
                    args.set("replica",
                             std::to_string(probe_replica));
                    trace->instant(breaker_track, "breaker_half_open",
                                   now, "breaker", args);
                }
                dispatch(now);
            }
        } else if (next_hedge <= std::min({next_finish, next_retry,
                                           next_sample})) {
            // Hedge timer: the primary has run long enough — issue a
            // backup copy on a different replica.
            const HedgeEvent ev = hedges.top();
            hedges.pop();
            ReqMeta& m = meta[static_cast<std::size_t>(ev.id)];
            if (!m.done && !m.hedged && m.primaryInFlight) {
                const int target = route(m.primaryReplica);
                if (target >= 0 && target != m.primaryReplica) {
                    m.hedged = true;
                    m.hedgedAt = ev.time;
                    ++m.liveCopies;
                    ++report.hedgesIssued;
                    if (trace != nullptr) {
                        telemetry::Labels args;
                        args.set("target", std::to_string(target));
                        trace->instant(hedge_track, "hedge_issue",
                                       ev.time, "hedge", args);
                    }
                    enqueue(target,
                            Copy{ev.id, m.arrival, 0, true, 0});
                    dispatch(ev.time);
                }
            }
        } else if (next_retry <=
                   std::min(next_finish, next_sample)) {
            // Backed-off copies re-enter a queue via the router.
            const double now = next_retry;
            while (!retries.empty() && retries.top().ready <= now) {
                const Copy copy = retries.top().copy;
                retries.pop();
                enqueue(route(-1), copy);
            }
            dispatch(now);
        } else if (next_sample < next_finish) {
            // Periodic telemetry sample; completions win ties so the
            // sample sees post-event state at its own timestamp.
            take_sample(next_sample);
            next_sample = sample_time();
        } else {
            // Completion event (may run past the horizon to drain).
            const FinishEvent ev = finishes.top();
            finishes.pop();
            const std::size_t gi = static_cast<std::size_t>(ev.gpu);
            const int r = repOf[gi];
            const std::size_t ri = static_cast<std::size_t>(r);
            InFlightBatch fl = std::move(*inflight[gi]);
            inflight[gi].reset();
            ++epoch[gi];
            --inflight_gpus;
            repQueuedPlusFlight[ri] -=
                static_cast<std::int64_t>(fl.copies.size());
            --repBatches[ri];
            if (trace != nullptr) {
                telemetry::Labels args;
                args.set("batch", std::to_string(fl.copies.size()));
                args.set("replica", std::to_string(r));
                args.set("outcome",
                         fl.timedOut ? "timeout" : "ok");
                if (fl.degraded)
                    args.set("degraded", "1");
                trace->complete(gpu_track[gi],
                                "batch b=" +
                                    std::to_string(fl.copies.size()),
                                fl.start, ev.time - fl.start, "batch",
                                args);
            }
            if (fl.timedOut) {
                account_busy(fl.start, ev.time, r);
                report.lostGpuSeconds += ev.time - fl.start;
                failMembers(fl, ev.time);
                ++cluster.replicas[ri].abortedBatches;
                noteBatchFailure(r, ev.time);
            } else {
                account_busy(fl.start, fl.finish, r);
                if (ckptOn) {
                    report.checkpointsTaken += fl.ckpts;
                    report.checkpointOverheadSeconds +=
                        static_cast<double>(fl.ckpts) *
                        ckpt.costSeconds;
                }
                if (fl.degraded)
                    report.degraded += static_cast<std::int64_t>(
                        fl.copies.size());
                const double b =
                    static_cast<double>(fl.copies.size());
                for (const Copy& copy : fl.copies) {
                    ReqMeta& m =
                        meta[static_cast<std::size_t>(copy.id)];
                    if (!copy.hedge)
                        m.primaryInFlight = false;
                    if (m.done) {
                        // The twin answered first; this copy's share
                        // of the batch was duplicate work.
                        report.hedgeWastedSeconds +=
                            (fl.finish - fl.start) / b;
                        --m.liveCopies;
                        continue;
                    }
                    m.done = true;
                    --m.liveCopies;
                    if (copy.hedge)
                        ++report.hedgesWon;
                    if (trace != nullptr && m.hedged) {
                        // Hedge span: from the hedge timer firing to
                        // whichever copy answered first.
                        telemetry::Labels args;
                        args.set("won", copy.hedge ? "hedge"
                                                   : "primary");
                        trace->complete(hedge_track, "hedged request",
                                        m.hedgedAt,
                                        fl.finish - m.hedgedAt,
                                        "hedge", args);
                    }
                    const double lat = fl.finish - copy.arrival;
                    latencies.push_back(lat);
                    ++report.completed;
                    ++cluster.replicas[ri].completedRequests;
                    if (fl.finish > horizon)
                        ++report.drainCompleted;
                    const bool in_deadline =
                        !deadline.hasDeadline() ||
                        lat <= deadline.deadlineSeconds;
                    if (!in_deadline)
                        ++deadline_misses;
                    if (fl.finish <= horizon && in_deadline)
                        ++goodput_count;
                }
                noteBatchSuccess(r, ev.time);
            }
            if (ev.time > horizon && totalQueued() == 0 &&
                inflight_gpus == 0 && retries.empty()) {
                break;
            }
            dispatch(ev.time);
        }
    }

    for (const std::deque<Copy>& q : queues) {
        for (const Copy& c : q) {
            if (!meta[static_cast<std::size_t>(c.id)].done)
                ++report.backlog;
        }
    }
    for (std::size_t gi = 0; gi < ngpu; ++gi) {
        if (!inflight[gi].has_value())
            continue;
        for (const Copy& c : inflight[gi]->copies) {
            if (!meta[static_cast<std::size_t>(c.id)].done)
                ++report.backlog;
        }
        // Batches cut off by the end of the run still occupied their
        // GPU inside the horizon.
        account_busy(inflight[gi]->start,
                     std::min(inflight[gi]->finish, horizon),
                     repOf[gi]);
    }
    while (!retries.empty()) {
        if (!meta[static_cast<std::size_t>(retries.top().copy.id)]
                 .done)
            ++report.backlog;
        retries.pop();
    }

    if (!latencies.empty()) {
        const Summary s = summarize(latencies);
        report.meanLatency = s.mean;
        report.p50Latency = percentile(latencies, 50.0);
        report.p95Latency = percentile(latencies, 95.0);
    }
    if (!batch_sizes.empty()) {
        report.meanBatch = summarize(batch_sizes).mean;
        report.maxBatchDispatched = static_cast<std::int64_t>(
            *std::max_element(batch_sizes.begin(), batch_sizes.end()));
    }
    report.throughput =
        static_cast<double>(report.completed - report.drainCompleted) /
        horizon;
    report.goodput = static_cast<double>(goodput_count) / horizon;
    report.gpuUtilization =
        busy_in_horizon / (horizon * static_cast<double>(numGpus));
    if (report.completed > 0) {
        report.deadlineMissRate =
            static_cast<double>(deadline_misses) /
            static_cast<double>(report.completed);
        report.degradedFraction =
            static_cast<double>(report.degraded) /
            static_cast<double>(report.completed);
    }
    if (report.arrived > 0) {
        report.shedFraction = static_cast<double>(report.shed) /
                              static_cast<double>(report.arrived);
    }

    for (int r = 0; r < numReplicas; ++r) {
        const std::size_t ri = static_cast<std::size_t>(r);
        double sum = 0.0;
        for (int k = 0; k < cfg.replicas[ri].numGpus; ++k)
            sum += plan.gpus[static_cast<std::size_t>(gpuBase[ri] + k)]
                       .availability(horizon);
        cluster.replicas[ri].availability =
            sum / static_cast<double>(cfg.replicas[ri].numGpus);
    }

    if (metrics != nullptr) {
        publishServingMetrics(*metrics, report, latencies,
                              batch_sizes);
        for (int r = 0; r < numReplicas; ++r) {
            const std::size_t ri = static_cast<std::size_t>(r);
            const telemetry::Labels& lbl = repLabels[ri];
            const ReplicaStats& stats = cluster.replicas[ri];
            metrics->counter("serving.replica.dispatched_batches", lbl)
                .add(stats.dispatchedBatches);
            metrics->counter("serving.replica.completed_requests", lbl)
                .add(stats.completedRequests);
            metrics->counter("serving.replica.aborted_batches", lbl)
                .add(stats.abortedBatches);
            metrics->counter("serving.replica.breaker_opens", lbl)
                .add(stats.breakerOpens);
            metrics->gauge("serving.replica.busy_seconds", lbl)
                .set(stats.busySeconds);
            metrics->gauge("serving.replica.availability", lbl)
                .set(stats.availability);
        }
        for (std::size_t d = 0; d < cluster.domainAvailability.size();
             ++d) {
            metrics
                ->gauge("serving.domain.availability",
                        telemetry::Labels{
                            {"domain", std::to_string(d)}})
                .set(cluster.domainAvailability[d]);
        }
    }

    return cluster;
}

} // namespace mmgen::serving
