/**
 * @file
 * Discrete-event serving simulator for generation workloads.
 *
 * The paper motivates its characterization with deployment at scale
 * ("ChatGPT alone serves over 100 million weekly users"; sticker
 * generation across an app family). This module closes the loop from
 * per-request inference latency — produced by the profiler — to
 * fleet-facing serving metrics: a seeded Poisson arrival process, a
 * pool of simulated GPUs, greedy request batching, and tail-latency /
 * utilization reporting. The fault-tolerant overload layers the
 * `faults.hh` injection model and the `policies.hh` retry / deadline /
 * admission / degradation machinery on the same event loop.
 */

#ifndef MMGEN_SERVING_SIMULATOR_HH
#define MMGEN_SERVING_SIMULATOR_HH

#include <cstdint>

#include "exec/schedule.hh"
#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"
#include "serving/policies.hh"
#include "telemetry/telemetry.hh"

namespace mmgen::serving {

/**
 * Batch-latency model of one model on one GPU: a batch of size b
 * takes base * (overheadFraction + (1 - overheadFraction) * b)
 * seconds — fixed pipeline overheads amortize, compute scales.
 */
struct LatencyModel
{
    /** Batch-1 inference latency, seconds. */
    double baseSeconds = 1.0;
    /** Fraction of the batch-1 latency that does not scale with b. */
    double overheadFraction = 0.15;

    /** Service time of a batch of the given size. */
    double batchSeconds(int batch) const;
};

/**
 * Build a latency model by profiling a pipeline on the given GPU
 * (Flash attention backend). The pipeline is lowered to an execution
 * plan and played through the timeline scheduler under `schedule`;
 * the default options reproduce the serialized seed profile, while
 * multi-stream / launch-queue / graph-launch options let serving
 * sweeps price an overlap-optimized deployment.
 */
LatencyModel profileLatencyModel(const graph::Pipeline& pipeline,
                                 const hw::GpuSpec& gpu,
                                 const exec::ScheduleOptions& schedule =
                                     exec::ScheduleOptions());

/** Serving-cluster configuration. */
struct ServingConfig
{
    /** Mean request arrival rate, requests/second (Poisson). */
    double arrivalRate = 1.0;
    /** GPUs serving this model. */
    int numGpus = 1;
    /** Maximum requests batched into one inference. */
    int maxBatch = 4;
    /** Simulated wall-clock horizon, seconds. */
    double horizonSeconds = 600.0;
    /** Arrival-process seed. */
    std::uint64_t seed = 7;

    /**
     * Throw `FatalError` with a clear message on any non-positive or
     * non-finite knob (arrival rate, GPU count, max batch, horizon)
     * instead of running a degenerate simulation.
     */
    void validate() const;
};

/** Aggregate serving metrics over the horizon. */
struct ServingReport
{
    std::int64_t arrived = 0;
    /** Requests completed, including drain-window completions. */
    std::int64_t completed = 0;
    /** In-horizon completions per second (drain work excluded). */
    double throughput = 0.0;
    double meanLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double meanBatch = 0.0;
    /** Fraction of in-horizon GPU-time occupied (never clamped). */
    double gpuUtilization = 0.0;
    /** Requests still queued or in flight at the horizon. */
    std::int64_t backlog = 0;

    /** Offered load versus capacity (>= 1 means saturation). */
    double offeredLoad = 0.0;

    // -- drain-window accounting (post-horizon work, reported
    //    separately so it cannot inflate throughput/utilization) --

    /** Of `completed`, how many finished after the horizon. */
    std::int64_t drainCompleted = 0;
    /** GPU busy-seconds spent past the horizon. */
    double drainGpuSeconds = 0.0;

    // -- resilience metrics (zero on the fault-free default path) --

    /** In-horizon, within-deadline completions per second. */
    double goodput = 0.0;
    /** Fraction of completed requests that missed their deadline. */
    double deadlineMissRate = 0.0;
    /** Re-dispatch attempts after faults/timeouts. */
    std::int64_t retries = 0;
    /** Arrivals rejected by admission control. */
    std::int64_t shed = 0;
    /** `shed` as a fraction of arrivals. */
    double shedFraction = 0.0;
    /** Requests dropped unserved: deadline passed while queued. */
    std::int64_t expired = 0;
    /** Requests abandoned after exhausting the retry budget. */
    std::int64_t dropped = 0;
    /** Requests served in degraded (cheaper) mode. */
    std::int64_t degraded = 0;
    /** `degraded` as a fraction of completions. */
    double degradedFraction = 0.0;
    /** Of `shed`, arrivals rejected because no batch fits the GPU. */
    std::int64_t memoryShed = 0;
    /** Dispatch batch ceiling after the memory-feasibility clamp. */
    std::int64_t effectiveMaxBatch = 0;
    /** Largest batch actually dispatched (0 when none formed). */
    std::int64_t maxBatchDispatched = 0;
    /** GPU busy-seconds destroyed by faults and batch timeouts. */
    double lostGpuSeconds = 0.0;
    /** Mean per-GPU availability under the injected fault plan. */
    double meanAvailability = 1.0;

    // -- cluster metrics (zero outside `simulateCluster`; see
    //    serving/cluster.hh) --

    /** Backup copies dispatched to a second replica. */
    std::int64_t hedgesIssued = 0;
    /** Completions where the hedge beat (or outlived) the primary. */
    std::int64_t hedgesWon = 0;
    /** Duplicate copies cancelled unserved (winner already done). */
    std::int64_t hedgesCancelled = 0;
    /** GPU-seconds spent computing discarded duplicate copies. */
    double hedgeWastedSeconds = 0.0;
    /** Circuit-breaker closed->open transitions across replicas. */
    std::int64_t breakerOpens = 0;
    /** Circuit-breaker half-open->closed recoveries. */
    std::int64_t breakerCloses = 0;
    /** Checkpoints written during service. */
    std::int64_t checkpointsTaken = 0;
    /** Faulted requests re-dispatched from a checkpoint (not zero). */
    std::int64_t resumes = 0;
    /** GPU-seconds spent writing checkpoints (service overhead). */
    double checkpointOverheadSeconds = 0.0;
    /** GPU-seconds of progress destroyed, net of checkpoint salvage. */
    double wastedGpuSeconds = 0.0;
    /** GPU-seconds of checkpointed progress salvaged across faults. */
    double restoredGpuSeconds = 0.0;
};

/** Run the discrete-event simulation (fault-free, no policies). */
ServingReport simulateServing(const ServingConfig& cfg,
                              const LatencyModel& latency);

/**
 * Run the fault-tolerant simulation. With a default-constructed
 * `ResilienceConfig` this reproduces the two-argument overload's
 * report bit-for-bit on identical seeds: fault and policy machinery
 * draw from split RNG streams and add no events, so the arrival
 * sequence and every metric are unchanged.
 */
ServingReport simulateServing(const ServingConfig& cfg,
                              const LatencyModel& latency,
                              const ResilienceConfig& resilience);

/**
 * Run the fault-tolerant simulation with optional telemetry. A null
 * (or all-disabled) `telemetry` takes the exact code path of the
 * three-argument overload — instrumentation only ever *records*
 * state, never perturbs the RNG, the event clock, or any arithmetic,
 * so the report stays bit-for-bit identical whether telemetry is on
 * or off (asserted in tests with exact floating-point equality).
 *
 * With telemetry on, the simulator emits:
 *  - counters/gauges/histograms summarizing the run (arrival /
 *    completion / shed / retry counts, latency and batch-size
 *    distributions, utilization),
 *  - sampled time series of queue depth, in-flight GPUs, and the
 *    cumulative counts above on the configured sim-time cadence
 *    (sampling is its own event source with the lowest tie
 *    priority),
 *  - trace spans per dispatched batch on "gpu N" tracks, outage
 *    spans from the fault plan, and request-lifecycle instants
 *    (admit, shed, expire, drop, retry).
 */
ServingReport simulateServing(const ServingConfig& cfg,
                              const LatencyModel& latency,
                              const ResilienceConfig& resilience,
                              const telemetry::Telemetry* telemetry);

} // namespace mmgen::serving

#endif // MMGEN_SERVING_SIMULATOR_HH
