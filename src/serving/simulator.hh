/**
 * @file
 * Discrete-event serving simulator for generation workloads.
 *
 * The paper motivates its characterization with deployment at scale
 * ("ChatGPT alone serves over 100 million weekly users"; sticker
 * generation across an app family). This module closes the loop from
 * per-request inference latency — produced by the profiler — to
 * fleet-facing serving metrics: a seeded Poisson arrival process, a
 * pool of simulated GPUs, greedy request batching, and tail-latency /
 * utilization reporting.
 */

#ifndef MMGEN_SERVING_SIMULATOR_HH
#define MMGEN_SERVING_SIMULATOR_HH

#include <cstdint>

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"

namespace mmgen::serving {

/**
 * Batch-latency model of one model on one GPU: a batch of size b
 * takes base * (overheadFraction + (1 - overheadFraction) * b)
 * seconds — fixed pipeline overheads amortize, compute scales.
 */
struct LatencyModel
{
    /** Batch-1 inference latency, seconds. */
    double baseSeconds = 1.0;
    /** Fraction of the batch-1 latency that does not scale with b. */
    double overheadFraction = 0.15;

    /** Service time of a batch of the given size. */
    double batchSeconds(int batch) const;
};

/**
 * Build a latency model by profiling a pipeline on the given GPU
 * (Flash attention backend).
 */
LatencyModel profileLatencyModel(const graph::Pipeline& pipeline,
                                 const hw::GpuSpec& gpu);

/** Serving-cluster configuration. */
struct ServingConfig
{
    /** Mean request arrival rate, requests/second (Poisson). */
    double arrivalRate = 1.0;
    /** GPUs serving this model. */
    int numGpus = 1;
    /** Maximum requests batched into one inference. */
    int maxBatch = 4;
    /** Simulated wall-clock horizon, seconds. */
    double horizonSeconds = 600.0;
    /** Arrival-process seed. */
    std::uint64_t seed = 7;
};

/** Aggregate serving metrics over the horizon. */
struct ServingReport
{
    std::int64_t arrived = 0;
    std::int64_t completed = 0;
    double throughput = 0.0;
    double meanLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double meanBatch = 0.0;
    /** Fraction of GPU-time spent serving. */
    double gpuUtilization = 0.0;
    /** Requests still queued or in flight at the horizon. */
    std::int64_t backlog = 0;

    /** Offered load versus capacity (>= 1 means saturation). */
    double offeredLoad = 0.0;
};

/** Run the discrete-event simulation. */
ServingReport simulateServing(const ServingConfig& cfg,
                              const LatencyModel& latency);

} // namespace mmgen::serving

#endif // MMGEN_SERVING_SIMULATOR_HH
