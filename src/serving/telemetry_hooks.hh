/**
 * @file
 * Shared telemetry publication for serving reports.
 *
 * Both simulators (single-pool `simulateServing` and multi-replica
 * `simulateCluster`) finish by folding their run into a
 * ServingReport; this helper publishes that report into a
 * MetricsRegistry under one canonical naming scheme so exporters,
 * `mmgen stats`, and the P009 consistency check see the same metric
 * names regardless of which simulator produced them.
 */

#ifndef MMGEN_SERVING_TELEMETRY_HOOKS_HH
#define MMGEN_SERVING_TELEMETRY_HOOKS_HH

#include <span>

#include "serving/simulator.hh"
#include "telemetry/metrics.hh"

namespace mmgen::serving {

/**
 * Publish a finished run into the registry: lifecycle counters
 * (arrived / completed / shed / expired / dropped / retries, hedge
 * and breaker and checkpoint counts), outcome gauges (throughput,
 * goodput, utilization, offered load, availability), and latency /
 * batch-size histograms built from the raw per-request samples.
 *
 * `labels` is attached to every metric (e.g. model or replica
 * dimensions). Counters accumulate across calls on a shared registry,
 * matching counter semantics for sweep-style callers.
 */
void publishServingMetrics(telemetry::MetricsRegistry& registry,
                           const ServingReport& report,
                           std::span<const double> latencySeconds,
                           std::span<const double> batchSizes,
                           const telemetry::Labels& labels = {});

/** Bucket layout used for serving.request_latency_seconds. */
telemetry::HistogramSpec latencyHistogramSpec();

/** Bucket layout used for serving.batch_size. */
telemetry::HistogramSpec batchHistogramSpec();

/**
 * Field-by-field exact equality of two reports — doubles compared
 * with `==`, deliberately, because the telemetry contract is that
 * instrumentation changes *nothing*, not "nothing within epsilon".
 * The CI gate and the overhead bench run the same simulation with
 * telemetry on and off and require this to hold.
 */
bool reportsBitIdentical(const ServingReport& a,
                         const ServingReport& b);

} // namespace mmgen::serving

#endif // MMGEN_SERVING_TELEMETRY_HOOKS_HH
