/**
 * @file
 * Serving resilience policies: what the fleet does when things go
 * wrong. Deadlines and timeouts bound how long a request may take,
 * bounded retry with exponential backoff recovers work destroyed by
 * GPU faults, admission control sheds load before the queue grows
 * unbounded, and graceful degradation shrinks per-request work under
 * pressure (fewer denoising steps / smaller images), with the
 * latency saving taken from the profiled pipeline rather than
 * assumed — the quality/latency lever the multimodal-inference
 * follow-up study (Lee et al., arXiv:2410.00215) identifies as the
 * knob operators actually pull under load.
 */

#ifndef MMGEN_SERVING_POLICIES_HH
#define MMGEN_SERVING_POLICIES_HH

#include <cstdint>

#include "graph/pipeline.hh"
#include "hw/gpu_spec.hh"
#include "serving/faults.hh"

namespace mmgen::serving {

/** Bounded retry with exponential backoff. */
struct RetryPolicy
{
    /** Times a faulted request may be re-dispatched (0 = give up). */
    int maxRetries = 0;
    /** Backoff before the first retry, seconds. */
    double backoffBaseSeconds = 1.0;
    /** Multiplier applied per subsequent retry. */
    double backoffMultiplier = 2.0;
    /** Ceiling on any single backoff, seconds (must be finite). */
    double backoffCapSeconds = 60.0;

    /**
     * Backoff before retry `attempt` (1-based), seconds. Evaluated in
     * log space so huge attempt counts or multipliers saturate at the
     * cap instead of overflowing to inf/NaN.
     */
    double backoffSeconds(int attempt) const;
};

/** Per-request deadline and in-flight batch timeout. */
struct DeadlinePolicy
{
    /** End-to-end SLO from arrival, seconds (0 = none). */
    double deadlineSeconds = 0.0;
    /**
     * Abort a batch still running this long after dispatch and retry
     * its requests elsewhere (0 = none). The straggler mitigation:
     * a slow GPU's batches time out and land on healthy peers.
     */
    double batchTimeoutSeconds = 0.0;

    bool hasDeadline() const { return deadlineSeconds > 0.0; }
    bool hasTimeout() const { return batchTimeoutSeconds > 0.0; }
};

/** Queue-length-based load shedding at admission. */
struct AdmissionPolicy
{
    /** Reject arrivals once this many requests wait (0 = admit all). */
    std::int64_t maxQueueLength = 0;

    /**
     * Static memory-feasibility bound from the liveness analyzer
     * (`exec::maxFeasibleBatch`): the largest batch whose scheduled
     * peak fits the GPU. -1 = unset (no memory awareness). 0 = not
     * even one request fits, so every arrival is shed with a memory
     * rejection rather than dispatched into certain OOM. Positive
     * values clamp the dispatch batch below `ServingConfig::maxBatch`.
     */
    std::int64_t memoryFeasibleBatch = -1;

    bool enabled() const { return maxQueueLength > 0; }
    bool hasMemoryBound() const { return memoryFeasibleBatch >= 0; }
};

/**
 * Graceful degradation: past a queue-depth threshold, serve requests
 * with a cheaper pipeline variant. `serviceScale` is the degraded
 * service-time multiplier (< 1); `qualityCost` records what the
 * cheaper variant gives up (e.g. fraction of denoising steps
 * dropped) so reports can account for it.
 */
struct DegradationPolicy
{
    /** Degrade once this many requests wait (0 = never). */
    std::int64_t queueThreshold = 0;
    /** Degraded-mode service-time multiplier in (0, 1]. */
    double serviceScale = 1.0;
    /** Quality given up in degraded mode (reported, not modeled). */
    double qualityCost = 0.0;

    bool enabled() const
    {
        return queueThreshold > 0 && serviceScale < 1.0;
    }
};

/**
 * Build a degradation policy by profiling the full and degraded
 * pipeline variants on the same GPU: `serviceScale` is the measured
 * batch-1 latency ratio, so the policy's latency saving comes from
 * the performance model, not a guess. The caller supplies the
 * quality cost of the degraded variant and the queue threshold.
 */
DegradationPolicy
degradationFromPipelines(const graph::Pipeline& full,
                         const graph::Pipeline& degraded,
                         const hw::GpuSpec& gpu, double qualityCost);

/**
 * Build a memory-aware admission policy: the queue bound is the
 * caller's, and `memoryFeasibleBatch` comes from the static liveness
 * analyzer (`exec::maxFeasibleBatch` of the pipeline on the serving
 * GPU), so the simulator never schedules a batch whose peak resident
 * bytes exceed the device.
 */
AdmissionPolicy
memoryAwareAdmission(const graph::Pipeline& pipeline,
                     const hw::GpuSpec& gpu,
                     std::int64_t maxQueueLength = 0);

/** Everything the fault-tolerant simulator needs beyond the basics. */
struct ResilienceConfig
{
    FaultConfig faults;
    RetryPolicy retry;
    DeadlinePolicy deadline;
    AdmissionPolicy admission;
    DegradationPolicy degradation;

    /**
     * True when every knob is at its default — the simulator then
     * reproduces the fault-free simulator's report bit-for-bit.
     */
    bool trivial() const;

    /**
     * Throw `FatalError` with a clear message on any out-of-range or
     * non-finite knob (negative retry budget, deadline, or queue
     * bound; degraded scale outside (0, 1]; non-finite backoff;
     * malformed fault processes). Called by both simulators before
     * any event is processed.
     */
    void validate() const;
};

} // namespace mmgen::serving

#endif // MMGEN_SERVING_POLICIES_HH
