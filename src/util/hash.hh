/**
 * @file
 * Structural hashing utilities.
 *
 * `HashBuilder` accumulates a 64-bit digest over heterogeneous fields
 * (integers, doubles, strings, bools) using splitmix64 mixing over an
 * FNV-1a spine. It backs `graph::Pipeline::fingerprint()` and the
 * runtime `ProfileCache` key, so the requirements are: stable within a
 * process and across processes (no pointer or address material ever
 * enters the hash), order-sensitive, and cheap.
 */

#ifndef MMGEN_UTIL_HASH_HH
#define MMGEN_UTIL_HASH_HH

#include <bit>
#include <cstdint>
#include <string_view>

namespace mmgen {

/** splitmix64 finalizer: a fast, well-mixed 64-bit permutation. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Order-sensitive combiner for structural fingerprints.
 *
 * Every `mix` overload feeds exactly one 64-bit word (strings feed
 * their FNV-1a digest plus their length), so differently-typed field
 * sequences that happen to share a bit pattern still disambiguate via
 * position, and the digest is reproducible across runs and platforms
 * with 64-bit doubles.
 */
class HashBuilder
{
  public:
    HashBuilder& mix(std::uint64_t v)
    {
        state = splitmix64(state ^ v);
        return *this;
    }

    HashBuilder& mix(std::int64_t v)
    {
        return mix(static_cast<std::uint64_t>(v));
    }

    HashBuilder& mix(int v) { return mix(static_cast<std::int64_t>(v)); }

    HashBuilder& mix(bool v)
    {
        return mix(static_cast<std::uint64_t>(v ? 1 : 0));
    }

    HashBuilder& mix(double v)
    {
        // -0.0 and 0.0 compare equal but differ bitwise; canonicalize
        // so structurally equal configs hash equal.
        if (v == 0.0)
            v = 0.0;
        return mix(std::bit_cast<std::uint64_t>(v));
    }

    HashBuilder& mix(std::string_view s)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL; // FNV offset basis
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL; // FNV prime
        }
        mix(h);
        return mix(static_cast<std::uint64_t>(s.size()));
    }

    std::uint64_t digest() const { return state; }

  private:
    std::uint64_t state = 0x6d6d67656e2e6868ULL; // "mmgen.hh"
};

} // namespace mmgen

#endif // MMGEN_UTIL_HASH_HH
