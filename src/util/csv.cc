#include "csv.hh"

namespace mmgen {

CsvWriter::CsvWriter(std::ostream& out_)
    : out(out_)
{}

std::string
CsvWriter::escape(const std::string& cell)
{
    bool needs_quote = false;
    for (char c : cell) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quote = true;
            break;
        }
    }
    if (!needs_quote)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ",";
        out << escape(cells[i]);
    }
    out << "\n";
}

} // namespace mmgen
