/**
 * @file
 * Shared JSON emission: string escaping and a minimal streaming
 * writer.
 *
 * Every exporter in the tree (Chrome traces, verifier diagnostics,
 * telemetry metric dumps, bench reporters) hand-writes JSON; before
 * this header each carried its own copy of the escaping loop. The
 * escaper is the single source of truth for JSON string semantics:
 * quotes, backslashes and control characters are escaped, and all
 * other bytes — including UTF-8 multi-byte sequences — pass through
 * untouched.
 *
 * The Writer is deliberately small: it tracks container nesting and
 * comma placement so exporters cannot emit trailing commas or
 * unbalanced brackets, while leaving number formatting to the caller
 * (exporters pin their own precision so output is byte-stable).
 */

#ifndef MMGEN_UTIL_JSON_HH
#define MMGEN_UTIL_JSON_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace mmgen::json {

/** Escape a string for embedding inside a JSON string literal. */
inline std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c; // UTF-8 continuation bytes pass unchanged
            }
        }
    }
    return out;
}

/** Format a double with round-trip precision ("%.17g"). */
inline std::string
number(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Minimal streaming JSON writer over an ostream.
 *
 * Tracks nesting and emits commas between siblings automatically;
 * misuse (a value with no pending key inside an object, unbalanced
 * end calls) trips a FatalError instead of producing corrupt output.
 */
class Writer
{
  public:
    explicit Writer(std::ostream& out) : os(out) {}

    Writer&
    beginObject()
    {
        element();
        os << '{';
        stack.push_back(Frame::Object);
        childCount.push_back(0);
        return *this;
    }

    Writer&
    endObject()
    {
        MMGEN_CHECK(!stack.empty() && stack.back() == Frame::Object,
                    "json::Writer::endObject with no open object");
        MMGEN_CHECK(!keyPending,
                    "json::Writer::endObject with a dangling key");
        stack.pop_back();
        childCount.pop_back();
        os << '}';
        return *this;
    }

    Writer&
    beginArray()
    {
        element();
        os << '[';
        stack.push_back(Frame::Array);
        childCount.push_back(0);
        return *this;
    }

    Writer&
    endArray()
    {
        MMGEN_CHECK(!stack.empty() && stack.back() == Frame::Array,
                    "json::Writer::endArray with no open array");
        stack.pop_back();
        childCount.pop_back();
        os << ']';
        return *this;
    }

    /** Emit an object key; the next call must emit its value. */
    Writer&
    key(const std::string& k)
    {
        MMGEN_CHECK(!stack.empty() && stack.back() == Frame::Object,
                    "json::Writer::key outside an object");
        MMGEN_CHECK(!keyPending, "json::Writer::key after a key");
        if (childCount.back()++ > 0)
            os << ',';
        os << '"' << escape(k) << "\":";
        keyPending = true;
        return *this;
    }

    Writer&
    value(const std::string& v)
    {
        element();
        os << '"' << escape(v) << '"';
        return *this;
    }

    Writer& value(const char* v) { return value(std::string(v)); }

    Writer&
    value(double v)
    {
        element();
        os << number(v);
        return *this;
    }

    Writer&
    value(std::int64_t v)
    {
        element();
        os << v;
        return *this;
    }

    Writer&
    value(std::uint64_t v)
    {
        element();
        os << v;
        return *this;
    }

    Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }

    Writer&
    value(bool v)
    {
        element();
        os << (v ? "true" : "false");
        return *this;
    }

    /**
     * Emit a pre-formatted JSON token verbatim (caller-controlled
     * number precision, e.g. formatFixed output).
     */
    Writer&
    rawValue(const std::string& token)
    {
        element();
        os << token;
        return *this;
    }

    /** key(k) + value(v) in one call. */
    template <typename T>
    Writer&
    field(const std::string& k, T v)
    {
        key(k);
        return value(v);
    }

    /** True when every container has been closed. */
    bool complete() const { return stack.empty(); }

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Comma/position bookkeeping shared by every value emitter. */
    void
    element()
    {
        if (stack.empty())
            return; // top-level value
        if (stack.back() == Frame::Object) {
            MMGEN_CHECK(keyPending,
                        "json::Writer: object value without a key");
            keyPending = false;
            return; // key() already wrote the separator
        }
        if (childCount.back()++ > 0)
            os << ',';
    }

    std::ostream& os;
    std::vector<Frame> stack;
    /** Parallel to `stack`: children emitted into each open frame. */
    std::vector<std::int64_t> childCount;
    bool keyPending = false;
};

} // namespace mmgen::json

#endif // MMGEN_UTIL_JSON_HH
