#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace mmgen {

Summary
summarize(std::span<const double> values)
{
    Summary s;
    s.count = values.size();
    if (values.empty())
        return s;

    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    s.min = sorted.front();
    s.max = sorted.back();

    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    s.mean = sum / static_cast<double>(sorted.size());

    const std::size_t mid = sorted.size() / 2;
    s.median = (sorted.size() % 2 == 1)
                   ? sorted[mid]
                   : 0.5 * (sorted[mid - 1] + sorted[mid]);

    double sq = 0.0;
    for (double v : sorted) {
        const double d = v - s.mean;
        sq += d * d;
    }
    s.stddev = std::sqrt(sq / static_cast<double>(sorted.size()));
    return s;
}

double
geomean(std::span<const double> values)
{
    MMGEN_CHECK(!values.empty(), "geomean of empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        MMGEN_CHECK(v > 0.0, "geomean requires positive values, got " << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
percentile(std::span<const double> values, double pct)
{
    MMGEN_CHECK(!values.empty(), "percentile of empty sample");
    MMGEN_CHECK(pct >= 0.0 && pct <= 100.0,
                "percentile " << pct << " out of [0, 100]");
    // NaN poisons std::sort's strict weak ordering, which would turn
    // the quantile into a function of the input *order* — reject it.
    for (double v : values)
        MMGEN_CHECK(!std::isnan(v),
                    "percentile over a sample containing NaN");
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted.front();
    const double rank =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void
ValueHistogram::add(double value, std::uint64_t weight)
{
    counts[value] += weight;
    total += weight;
}

std::size_t
ValueHistogram::distinctValues() const
{
    return counts.size();
}

std::uint64_t
ValueHistogram::totalWeight() const
{
    return total;
}

std::uint64_t
ValueHistogram::frequency(double value) const
{
    auto it = counts.find(value);
    return it == counts.end() ? 0 : it->second;
}

std::vector<std::pair<double, std::uint64_t>>
ValueHistogram::buckets() const
{
    return {counts.begin(), counts.end()};
}

double
ValueHistogram::fraction(double value) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(frequency(value)) /
           static_cast<double>(total);
}

} // namespace mmgen
