/**
 * @file
 * Human-readable formatting helpers for engineering quantities.
 */

#ifndef MMGEN_UTIL_FORMAT_HH
#define MMGEN_UTIL_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmgen {

/** Format a FLOP count with SI suffix, e.g. "1.23 GFLOP". */
std::string formatFlops(double flops);

/** Format a FLOP/s rate with SI suffix, e.g. "312.0 TFLOP/s". */
std::string formatFlopRate(double flops_per_s);

/** Format a byte count with IEC suffix, e.g. "1.50 GiB". */
std::string formatBytes(double bytes);

/** Format a time in seconds with an adaptive unit, e.g. "12.3 ms". */
std::string formatTime(double seconds);

/** Format a plain count with SI suffix, e.g. "1.45B" for parameters. */
std::string formatCount(double count);

/** Format a fraction as a percentage, e.g. "44.1%". */
std::string formatPercent(double fraction, int precision = 1);

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision = 2);

/** Join string pieces with a separator. */
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/** Left-pad a string with spaces to the given width. */
std::string padLeft(const std::string& s, std::size_t width);

/** Right-pad a string with spaces to the given width. */
std::string padRight(const std::string& s, std::size_t width);

} // namespace mmgen

#endif // MMGEN_UTIL_FORMAT_HH
