/**
 * @file
 * Plain-text table rendering for benchmark and report output.
 *
 * Every benchmark binary prints the rows/series of its paper table or
 * figure through this printer so output is uniform and parseable.
 */

#ifndef MMGEN_UTIL_TABLE_HH
#define MMGEN_UTIL_TABLE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace mmgen {

/**
 * Column-aligned text table with a header row.
 *
 * Columns are sized to their widest cell; numeric-looking cells are
 * right-aligned, text cells left-aligned.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a data row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Number of data rows added (separators excluded). */
    std::size_t rowCount() const;

    /** Render the table to a string. */
    std::string render() const;

  private:
    std::vector<std::string> headers;
    /** Rows; an empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows;
    std::size_t dataRows = 0;
};

/** Heuristic: does the cell look like a number (for right-alignment)? */
bool looksNumeric(const std::string& cell);

} // namespace mmgen

#endif // MMGEN_UTIL_TABLE_HH
