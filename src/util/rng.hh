/**
 * @file
 * Deterministic random number generation for synthetic workloads.
 *
 * All stochastic inputs to mmgen (the fleet population generator,
 * failure-injection tests) draw from this engine so every run of every
 * benchmark is bit-reproducible. The engine is xoshiro256** seeded via
 * splitmix64, matching common simulator practice.
 */

#ifndef MMGEN_UTIL_RNG_HH
#define MMGEN_UTIL_RNG_HH

#include <cstdint>

namespace mmgen {

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Derive an independent deterministic stream from a base seed.
     * `stream(seed, a)` and `stream(seed, b)` are decorrelated from
     * each other and from `Rng(seed)`, so a simulation can hand each
     * stochastic process (arrivals, failures, preemptions, ...) its
     * own stream: adding draws to one process never perturbs another,
     * and runs stay bit-reproducible.
     */
    static Rng stream(std::uint64_t seed, std::uint64_t streamId);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, deterministic). */
    double normal();

    /** Normal deviate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal deviate parameterized by the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

  private:
    std::uint64_t s[4];
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace mmgen

#endif // MMGEN_UTIL_RNG_HH
