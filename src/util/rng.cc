#include "rng.hh"

#include <cmath>

namespace mmgen {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : s)
        word = splitmix64(sm);
}

Rng
Rng::stream(std::uint64_t seed, std::uint64_t streamId)
{
    // Hash the stream id through splitmix64 and fold it into the
    // seed, so stream 0 differs from the plain Rng(seed) stream and
    // adjacent stream ids land far apart in seed space.
    std::uint64_t id = streamId + 0x6a09e667f3bcc909ULL;
    const std::uint64_t mixed = splitmix64(id);
    return Rng(seed ^ mixed);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
Rng::normal()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare = mag * std::sin(2.0 * M_PI * u2);
    haveSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::exponential(double rate)
{
    return -std::log(1.0 - uniform()) / rate;
}

} // namespace mmgen
