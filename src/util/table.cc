#include "table.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "format.hh"
#include "logging.hh"

namespace mmgen {

TextTable::TextTable(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    MMGEN_CHECK(!headers.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    MMGEN_CHECK(row.size() == headers.size(),
                "row arity " << row.size() << " != header arity "
                             << headers.size());
    rows.push_back(std::move(row));
    ++dataRows;
}

void
TextTable::addSeparator()
{
    rows.emplace_back();
}

std::size_t
TextTable::rowCount() const
{
    return dataRows;
}

bool
looksNumeric(const std::string& cell)
{
    if (cell.empty())
        return false;
    const unsigned char first = static_cast<unsigned char>(cell[0]);
    if (!std::isdigit(first) && first != '-' && first != '+' &&
        first != '.') {
        return false;
    }
    std::size_t digits = 0;
    for (unsigned char c : cell) {
        if (std::isdigit(c))
            ++digits;
    }
    return digits > 0;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto hline = [&]() {
        std::string s = "+";
        for (std::size_t w : widths)
            s += std::string(w + 2, '-') + "+";
        return s + "\n";
    };

    std::ostringstream oss;
    oss << hline();
    oss << "|";
    for (std::size_t c = 0; c < headers.size(); ++c)
        oss << " " << padRight(headers[c], widths[c]) << " |";
    oss << "\n" << hline();
    for (const auto& row : rows) {
        if (row.empty()) {
            oss << hline();
            continue;
        }
        oss << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::string& cell = row[c];
            oss << " "
                << (looksNumeric(cell) ? padLeft(cell, widths[c])
                                       : padRight(cell, widths[c]))
                << " |";
        }
        oss << "\n";
    }
    oss << hline();
    return oss.str();
}

} // namespace mmgen
