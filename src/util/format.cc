#include "format.hh"

#include <array>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mmgen {

namespace {

/** Scale a value into [1, base) against a suffix ladder. */
std::string
scaled(double value, double base,
       const std::array<const char*, 7>& suffixes, int precision)
{
    std::size_t idx = 0;
    double v = value;
    while (std::fabs(v) >= base && idx + 1 < suffixes.size()) {
        v /= base;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f %s", precision, v, suffixes[idx]);
    return buf;
}

} // namespace

std::string
formatFlops(double flops)
{
    static const std::array<const char*, 7> suffixes = {
        "FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP", "PFLOP", "EFLOP"};
    return scaled(flops, 1000.0, suffixes, 2);
}

std::string
formatFlopRate(double flops_per_s)
{
    static const std::array<const char*, 7> suffixes = {
        "FLOP/s", "KFLOP/s", "MFLOP/s", "GFLOP/s",
        "TFLOP/s", "PFLOP/s", "EFLOP/s"};
    return scaled(flops_per_s, 1000.0, suffixes, 1);
}

std::string
formatBytes(double bytes)
{
    static const std::array<const char*, 7> suffixes = {
        "B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"};
    return scaled(bytes, 1024.0, suffixes, 2);
}

std::string
formatTime(double seconds)
{
    char buf[64];
    const double abs_s = std::fabs(seconds);
    if (abs_s >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    } else if (abs_s >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    } else if (abs_s >= 1e-6) {
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    } else {
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    }
    return buf;
}

std::string
formatCount(double count)
{
    static const std::array<const char*, 7> suffixes = {
        "", "K", "M", "B", "T", "Q", "?"};
    std::size_t idx = 0;
    double v = count;
    while (std::fabs(v) >= 1000.0 && idx + 1 < suffixes.size()) {
        v /= 1000.0;
        ++idx;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffixes[idx]);
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
formatFixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
join(const std::vector<std::string>& pieces, const std::string& sep)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            oss << sep;
        oss << pieces[i];
    }
    return oss.str();
}

std::string
padLeft(const std::string& s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string& s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace mmgen
