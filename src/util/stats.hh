/**
 * @file
 * Descriptive statistics and histograms over simulation outputs.
 */

#ifndef MMGEN_UTIL_STATS_HH
#define MMGEN_UTIL_STATS_HH

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace mmgen {

/** Summary statistics over a sample of doubles. */
struct Summary
{
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
    double stddev = 0.0;
};

/** Compute summary statistics; empty input yields a zeroed Summary. */
Summary summarize(std::span<const double> values);

/** Geometric mean; all values must be positive. */
double geomean(std::span<const double> values);

/** Linear-interpolated percentile in [0, 100]. */
double percentile(std::span<const double> values, double pct);

/**
 * Exact-value frequency histogram, used for the sequence-length
 * distribution study (paper Fig. 8) where lengths fall in discrete
 * buckets and the bucket identity itself is the finding.
 */
class ValueHistogram
{
  public:
    /** Record one observation of the given value. */
    void add(double value, std::uint64_t weight = 1);

    /** Number of distinct values observed. */
    std::size_t distinctValues() const;

    /** Total observation weight. */
    std::uint64_t totalWeight() const;

    /** Frequency of a specific value (0 if never seen). */
    std::uint64_t frequency(double value) const;

    /** All (value, frequency) pairs in increasing value order. */
    std::vector<std::pair<double, std::uint64_t>> buckets() const;

    /** Fraction of total weight at the given value. */
    double fraction(double value) const;

  private:
    std::map<double, std::uint64_t> counts;
    std::uint64_t total = 0;
};

} // namespace mmgen

#endif // MMGEN_UTIL_STATS_HH
