/**
 * @file
 * Minimal CSV writer used by benchmarks to dump figure series.
 */

#ifndef MMGEN_UTIL_CSV_HH
#define MMGEN_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace mmgen {

/**
 * Streams rows of a CSV document, quoting cells when required.
 */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream& out);

    /** Write a row of string cells. */
    void writeRow(const std::vector<std::string>& cells);

    /** Escape a single cell per RFC 4180 (quotes, commas, newlines). */
    static std::string escape(const std::string& cell);

  private:
    std::ostream& out;
};

} // namespace mmgen

#endif // MMGEN_UTIL_CSV_HH
