#include "logging.hh"

#include <iostream>
#include <sstream>

namespace mmgen {
namespace detail {

namespace {

std::string
decorate(const char* file, int line, const std::string& msg)
{
    std::ostringstream oss;
    oss << file << ":" << line << ": " << msg;
    return oss.str();
}

} // namespace

void
raiseFatal(const char* file, int line, const std::string& msg)
{
    throw FatalError(decorate(file, line, msg));
}

void
raisePanic(const char* file, int line, const std::string& msg)
{
    throw PanicError(decorate(file, line, msg));
}

} // namespace detail

void
inform(const std::string& msg)
{
    std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << "\n";
}

} // namespace mmgen
