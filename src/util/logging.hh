/**
 * @file
 * Error-reporting and status-message utilities.
 *
 * Follows the gem5 convention of distinguishing user errors (fatal)
 * from internal invariant violations (panic):
 *   - MMGEN_CHECK / fatal: the simulation cannot continue because of a
 *     user-provided configuration (bad arguments, impossible shapes).
 *   - MMGEN_ASSERT / panic: an internal bug in mmgen itself.
 */

#ifndef MMGEN_UTIL_LOGGING_HH
#define MMGEN_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace mmgen {

/** Exception thrown for user-caused errors (bad configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown for internal invariant violations (mmgen bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Raise a FatalError with file/line context. */
[[noreturn]] void raiseFatal(const char* file, int line,
                             const std::string& msg);

/** Raise a PanicError with file/line context. */
[[noreturn]] void raisePanic(const char* file, int line,
                             const std::string& msg);

} // namespace detail

/** Print an informational message to stderr. */
void inform(const std::string& msg);

/** Print a warning message to stderr. */
void warn(const std::string& msg);

} // namespace mmgen

/**
 * Check a user-facing precondition; throws mmgen::FatalError with the
 * streamed message when the condition is false.
 */
#define MMGEN_CHECK(cond, msg)                                             \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream mmgen_check_oss_;                           \
            mmgen_check_oss_ << "check failed: " #cond ": " << msg;        \
            ::mmgen::detail::raiseFatal(__FILE__, __LINE__,                \
                                        mmgen_check_oss_.str());           \
        }                                                                  \
    } while (0)

/**
 * Check an internal invariant; throws mmgen::PanicError with the
 * streamed message when the condition is false.
 */
#define MMGEN_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream mmgen_assert_oss_;                          \
            mmgen_assert_oss_ << "invariant violated: " #cond ": " << msg; \
            ::mmgen::detail::raisePanic(__FILE__, __LINE__,                \
                                        mmgen_assert_oss_.str());          \
        }                                                                  \
    } while (0)

#endif // MMGEN_UTIL_LOGGING_HH
