#include "telemetry/trace.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "kernels/kernel_cost.hh"
#include "util/logging.hh"

namespace mmgen::telemetry {

int
TraceSink::track(const std::string& process, const std::string& thread)
{
    auto key = std::make_pair(process, thread);
    auto it = trackIds_.find(key);
    if (it != trackIds_.end())
        return it->second;
    int id = static_cast<int>(tracks_.size());
    TraceTrack t;
    t.process = process;
    t.thread = thread;
    // Default sort keys follow registration order; stable because the
    // simulators register tracks deterministically.
    t.processSort = id + 1;
    t.threadSort = id + 1;
    tracks_.push_back(std::move(t));
    trackIds_.emplace(std::move(key), id);
    return id;
}

void
TraceSink::complete(int track, const std::string& name,
                    double startSeconds, double durationSeconds,
                    const std::string& category, Labels args)
{
    MMGEN_ASSERT(track >= 0 &&
                     track < static_cast<int>(tracks_.size()),
                 "unknown trace track " << track);
    MMGEN_CHECK(!std::isnan(startSeconds) && !std::isnan(durationSeconds)
                    && durationSeconds >= 0.0,
                "bad span [" << startSeconds << ", +" << durationSeconds
                             << ") for '" << name << "'");
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Complete;
    ev.track = track;
    ev.name = name;
    ev.category = category;
    ev.startSeconds = startSeconds;
    ev.durationSeconds = durationSeconds;
    ev.args = std::move(args);
    events_.push_back(std::move(ev));
}

void
TraceSink::instant(int track, const std::string& name, double tSeconds,
                   const std::string& category, Labels args)
{
    MMGEN_ASSERT(track >= 0 &&
                     track < static_cast<int>(tracks_.size()),
                 "unknown trace track " << track);
    MMGEN_CHECK(!std::isnan(tSeconds),
                "instant '" << name << "' at NaN");
    TraceEvent ev;
    ev.phase = TraceEvent::Phase::Instant;
    ev.track = track;
    ev.name = name;
    ev.category = category;
    ev.startSeconds = tSeconds;
    ev.args = std::move(args);
    events_.push_back(std::move(ev));
}

void
TraceSink::setTrackSort(int track, int processSort, int threadSort)
{
    MMGEN_ASSERT(track >= 0 &&
                     track < static_cast<int>(tracks_.size()),
                 "unknown trace track " << track);
    tracks_[static_cast<std::size_t>(track)].processSort = processSort;
    tracks_[static_cast<std::size_t>(track)].threadSort = threadSort;
}

void
appendTimeline(TraceSink& sink, const exec::ExecutionPlan& plan,
               const exec::Timeline& timeline,
               std::int64_t maxRepeatInstances, double timeOffsetSeconds)
{
    MMGEN_CHECK(timeline.events.size() == plan.nodes.size(),
                "timeline has " << timeline.events.size()
                                << " events for a plan of "
                                << plan.nodes.size() << " nodes");
    MMGEN_CHECK(maxRepeatInstances >= 1,
                "need at least one repeat instance");

    // Offset exec pid sort keys past any serving tracks already in
    // the sink so the kernel timeline groups below the serving lanes.
    int pid_base = 0;
    for (const TraceTrack& t : sink.tracks())
        pid_base = std::max(pid_base, t.processSort);

    // One track per (stage, stream) that scheduled work, mirroring
    // profiler::writeChromeTrace's lane layout.
    std::map<std::pair<std::size_t, int>, int> lanes;
    for (const exec::TimelineEvent& ev : timeline.events) {
        const std::size_t si = plan.ops[ev.op].stageIndex;
        auto key = std::make_pair(si, ev.stream);
        if (lanes.count(key))
            continue;
        const std::string& stage = plan.stageNames[si];
        const exec::Lane lane = ev.stream == 0 ? exec::Lane::Compute
                                               : exec::Lane::Copy;
        int id = sink.track(
            "stage: " + (stage.empty() ? plan.model : stage),
            "stream " + std::to_string(ev.stream) + " (" +
                exec::laneName(lane) + ")");
        // Rewrite sort keys so exported pids follow pipeline order
        // and tids follow stream ids, matching the profiler trace.
        sink.setTrackSort(id, pid_base + static_cast<int>(si) + 1,
                          ev.stream + 1);
        lanes.emplace(key, id);
    }

    for (std::size_t i = 0; i < timeline.events.size(); ++i) {
        const exec::TimelineEvent& ev = timeline.events[i];
        const exec::PlanNode& node = plan.nodes[i];
        const exec::PlanOp& op = plan.ops[ev.op];
        const int track =
            lanes.at({op.stageIndex, ev.stream});
        const std::int64_t instances =
            std::min<std::int64_t>(node.repeat, maxRepeatInstances);
        const double per_instance =
            ev.durationSeconds() / static_cast<double>(node.repeat);

        std::string name = node.label;
        if (instances < node.repeat) {
            name += " [x" + std::to_string(node.repeat) + ", showing " +
                    std::to_string(instances) + "]";
        }

        Labels args;
        args.set("scope", op.scope);
        args.set("lane", exec::laneName(node.lane));
        args.set("repeat", std::to_string(node.repeat));

        double ts = ev.startSeconds + timeOffsetSeconds;
        for (std::int64_t k = 0; k < instances; ++k) {
            sink.complete(track, name, ts, per_instance,
                          kernels::kernelClassName(node.klass), args);
            ts += per_instance;
        }
    }
}

} // namespace mmgen::telemetry
