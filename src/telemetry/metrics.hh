/**
 * @file
 * Deterministic metrics registry: typed counters, gauges, bounded-error
 * histograms, and sim-time time series addressed by name + label set.
 *
 * Every timestamp recorded here is *simulation time* (seconds since
 * the start of the simulated run), never wall clock, and registry
 * iteration order is a pure function of metric names and labels — so
 * an exported metrics file is byte-identical across `--jobs 1/2/8`
 * and across machines. The registry is the one place cross-cutting
 * instrumentation (serving, cluster, runtime, profiler) deposits
 * observations; exporters in telemetry/export.hh render it.
 *
 * Registries are not thread-safe: all simulator instrumentation runs
 * on the simulating thread. Runtime-layer counters (thread pool,
 * profile cache) are aggregated atomically at their source and only
 * *published* into a registry at read time.
 */

#ifndef MMGEN_TELEMETRY_METRICS_HH
#define MMGEN_TELEMETRY_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mmgen::telemetry {

/**
 * A sorted (key, value) label set. Labels are sorted by key on
 * construction so two call sites naming the same dimensions in a
 * different order address the same metric instance.
 */
class Labels
{
  public:
    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

    /** Add (or replace) one label; keeps the set sorted. */
    void set(const std::string& key, const std::string& value);

    const std::vector<std::pair<std::string, std::string>>&
    items() const
    {
        return kv_;
    }

    bool empty() const { return kv_.empty(); }

    /** Canonical "k1=v1,k2=v2" rendering (keys are sorted). */
    std::string str() const;

    bool operator==(const Labels& other) const { return kv_ == other.kv_; }
    bool operator<(const Labels& other) const { return kv_ < other.kv_; }

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

/** Monotone event counter. */
class Counter
{
  public:
    void add(std::int64_t delta = 1);
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Last-value-wins instantaneous measurement. */
class Gauge
{
  public:
    void set(double v);
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Histogram bucket layout. Buckets are fixed at registration: either
 * `buckets` equal-width bins over [lo, hi) or log-spaced bins whose
 * upper edges grow geometrically. Observations below lo land in an
 * underflow bucket, at or above hi in an overflow bucket, so no
 * observation is ever dropped.
 */
struct HistogramSpec
{
    enum class Scale { Linear, Log };

    Scale scale = Scale::Linear;
    double lo = 0.0;
    double hi = 1.0;
    int buckets = 16;

    /** Equal-width buckets over [lo, hi). */
    static HistogramSpec linear(double lo, double hi, int buckets);

    /**
     * Log-spaced buckets over [lo, hi); requires lo > 0. Bucket
     * edges are lo * g^i with g chosen so bucket `buckets` ends at
     * hi exactly.
     */
    static HistogramSpec exponential(double lo, double hi, int buckets);

    /** Upper edge of bucket i (i in [0, buckets)). */
    double upperEdge(int i) const;

    /** Lower edge of bucket i. */
    double lowerEdge(int i) const;

    void validate() const;
};

/**
 * Fixed-bucket histogram with bounded-error quantiles.
 *
 * quantile(q) returns a representative value from the bucket holding
 * the q-th observation (nearest-rank over bucket counts): the bucket
 * midpoint for linear scales, the geometric mean of the edges for log
 * scales. The error is therefore bounded by half the bucket width
 * (resp. half a growth factor) — the classic fixed-bucket tradeoff.
 */
class Histogram
{
  public:
    explicit Histogram(HistogramSpec spec);

    /** Record one observation; NaN is rejected with FatalError. */
    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t>& bucketCounts() const
    {
        return counts_;
    }
    const HistogramSpec& spec() const { return spec_; }

    /**
     * Bounded-error quantile, q in [0, 1]. Returns 0 when empty.
     * Observations in the underflow bucket report lo, in the overflow
     * bucket hi.
     */
    double quantile(double q) const;

  private:
    HistogramSpec spec_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** One (sim-time, value) sample of a periodically sampled series. */
struct SamplePoint
{
    double tSeconds = 0.0;
    double value = 0.0;
};

/** An append-only sim-time series (periodic sampler output). */
class TimeSeries
{
  public:
    /** Append a sample; timestamps must be non-decreasing. */
    void record(double tSeconds, double value);

    const std::vector<SamplePoint>& points() const { return points_; }
    bool empty() const { return points_.empty(); }
    const SamplePoint& back() const { return points_.back(); }

  private:
    std::vector<SamplePoint> points_;
};

/**
 * The registry: owns all metric instances, addressed by
 * (name, labels). Lookups create on first use; the spec of a
 * histogram is fixed by its first registration and later lookups
 * must agree.
 *
 * Iteration (visit callbacks, exporters) runs in (name, labels)
 * lexicographic order — std::map keys — which is what makes exports
 * deterministic regardless of registration order.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name, const Labels& labels = {});
    Gauge& gauge(const std::string& name, const Labels& labels = {});
    Histogram& histogram(const std::string& name, const HistogramSpec& spec,
                         const Labels& labels = {});
    TimeSeries& series(const std::string& name, const Labels& labels = {});

    /** Read-only lookup; nullptr when absent. */
    const Counter* findCounter(const std::string& name,
                               const Labels& labels = {}) const;
    const Gauge* findGauge(const std::string& name,
                           const Labels& labels = {}) const;
    const Histogram* findHistogram(const std::string& name,
                                   const Labels& labels = {}) const;
    const TimeSeries* findSeries(const std::string& name,
                                 const Labels& labels = {}) const;

    using Key = std::pair<std::string, Labels>;

    const std::map<Key, Counter>& counters() const { return counters_; }
    const std::map<Key, Gauge>& gauges() const { return gauges_; }
    const std::map<Key, std::unique_ptr<Histogram>>& histograms() const
    {
        return histograms_;
    }
    const std::map<Key, TimeSeries>& allSeries() const { return series_; }

    /** Total number of registered metric instances of all types. */
    std::size_t size() const;

  private:
    std::map<Key, Counter> counters_;
    std::map<Key, Gauge> gauges_;
    std::map<Key, std::unique_ptr<Histogram>> histograms_;
    std::map<Key, TimeSeries> series_;
};

} // namespace mmgen::telemetry

#endif // MMGEN_TELEMETRY_METRICS_HH
