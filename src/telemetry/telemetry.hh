/**
 * @file
 * The Telemetry bundle: the nullable handle instrumented code takes.
 *
 * Simulators accept a `const Telemetry*`; nullptr (the default on
 * every pre-existing overload) means telemetry is off and the
 * instrumented code takes the exact same arithmetic path as before —
 * the guards only ever wrap *recording*, never simulation state, so
 * the disabled path stays bit-for-bit identical to the
 * un-instrumented build (asserted in tests with exact floating-point
 * equality).
 *
 * Determinism rules for instrumentation sites:
 *  - record only simulation time, never wall clock;
 *  - never read the RNG, advance an event clock, or round a value
 *    differently because telemetry is on;
 *  - sampling is an explicit event source in the simulator loop with
 *    the lowest tie priority, so sample timestamps are pure functions
 *    of the configured cadence.
 */

#ifndef MMGEN_TELEMETRY_TELEMETRY_HH
#define MMGEN_TELEMETRY_TELEMETRY_HH

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace mmgen::telemetry {

/** Everything a simulator needs to emit telemetry. All optional. */
struct Telemetry
{
    /** Counters / gauges / histograms / sampled series; may be null. */
    MetricsRegistry* metrics = nullptr;

    /** Structured span/instant sink; may be null. */
    TraceSink* trace = nullptr;

    /**
     * Sim-time cadence for periodic state sampling (queue depth,
     * in-flight, utilization, breaker state). 0 disables sampling.
     * Requires `metrics` to be set to have any effect.
     */
    double sampleIntervalSeconds = 0.0;

    bool wantsMetrics() const { return metrics != nullptr; }
    bool wantsTrace() const { return trace != nullptr; }
    bool wantsSampling() const
    {
        return metrics != nullptr && sampleIntervalSeconds > 0.0;
    }
};

} // namespace mmgen::telemetry

#endif // MMGEN_TELEMETRY_TELEMETRY_HH
