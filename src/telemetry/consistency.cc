#include "telemetry/consistency.hh"

#include <cmath>
#include <string>

#include "verify/rules.hh"

namespace mmgen::telemetry {

namespace {

/** Cumulative sampled series and the aggregate each must end at. */
struct CumulativeCheck
{
    const char* name;
    std::int64_t SeriesExpectations::* final;
};

constexpr CumulativeCheck kCumulative[] = {
    {"serving.arrived_total", &SeriesExpectations::arrived},
    {"serving.completed_total", &SeriesExpectations::inHorizonCompleted},
    {"serving.shed_total", &SeriesExpectations::shed},
    {"serving.retries_total", &SeriesExpectations::retries},
    {"serving.hedges_issued_total", &SeriesExpectations::hedgesIssued},
};

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.rfind(prefix, 0) == 0;
}

} // namespace

verify::DiagnosticReport
checkSeriesConsistency(const MetricsRegistry& registry,
                       const SeriesExpectations& expect)
{
    verify::DiagnosticReport report;
    auto finding = [&](const std::string& scope,
                       const std::string& message) {
        verify::Diagnostic d;
        d.severity = verify::Severity::Error;
        d.rule = verify::rules::TelemetryConsistency;
        d.stage = "serving";
        d.scope = scope;
        d.message = message;
        d.hint = "the sampler event source in the serving loop is "
                 "out of sync with the report accounting";
        report.add(std::move(d));
    };

    for (const auto& [key, series] : registry.allSeries()) {
        const std::string& name = key.first;
        if (!startsWith(name, "serving."))
            continue;
        const std::string scope =
            key.second.empty() ? name : name + "{" + key.second.str() + "}";
        const auto& pts = series.points();

        double prev_t = -1.0;
        for (const SamplePoint& p : pts) {
            if (p.tSeconds <= prev_t) {
                finding(scope, "sample timestamps not strictly "
                               "increasing: " +
                                   std::to_string(p.tSeconds) +
                                   " after " + std::to_string(prev_t));
                break;
            }
            prev_t = p.tSeconds;
        }
        if (!pts.empty() &&
            pts.back().tSeconds > expect.horizonSeconds) {
            finding(scope,
                    "sample at t=" + std::to_string(pts.back().tSeconds) +
                        " beyond the horizon " +
                        std::to_string(expect.horizonSeconds));
        }

        if (name.size() >= 6 &&
            name.compare(name.size() - 6, 6, "_total") == 0) {
            double prev_v = -1.0;
            for (const SamplePoint& p : pts) {
                if (p.value < prev_v) {
                    finding(scope, "cumulative series decreases: " +
                                       std::to_string(p.value) +
                                       " after " +
                                       std::to_string(prev_v));
                    break;
                }
                prev_v = p.value;
            }
        }

        if (name == "serving.queue_depth" ||
            name == "serving.replica.queue_depth") {
            for (const SamplePoint& p : pts) {
                if (p.value < 0.0) {
                    finding(scope, "negative queue depth " +
                                       std::to_string(p.value) + " at t=" +
                                       std::to_string(p.tSeconds));
                    break;
                }
            }
        }
        if (name == "serving.in_flight_gpus") {
            for (const SamplePoint& p : pts) {
                if (p.value < 0.0 ||
                    p.value > static_cast<double>(expect.totalGpus)) {
                    finding(scope,
                            "in-flight GPUs " + std::to_string(p.value) +
                                " outside [0, " +
                                std::to_string(expect.totalGpus) +
                                "] at t=" + std::to_string(p.tSeconds));
                    break;
                }
            }
        }
        if (name == "serving.replica.breaker_state") {
            for (const SamplePoint& p : pts) {
                if (p.value != 0.0 && p.value != 1.0 && p.value != 2.0) {
                    finding(scope, "breaker state " +
                                       std::to_string(p.value) +
                                       " not in {0,1,2} at t=" +
                                       std::to_string(p.tSeconds));
                    break;
                }
            }
        }
    }

    // The final sample lands exactly at the horizon with the lowest
    // tie priority, after every completion and arrival at that
    // instant — so cumulative series must end exactly on the report
    // aggregates, not merely near them.
    for (const CumulativeCheck& check : kCumulative) {
        const TimeSeries* series = registry.findSeries(check.name);
        if (series == nullptr || series->empty())
            continue;
        const double got = series->back().value;
        const double want = static_cast<double>(expect.*(check.final));
        if (got != want) {
            finding(check.name,
                    "final sample " + std::to_string(got) +
                        " != report aggregate " + std::to_string(want));
        }
    }

    return report;
}

} // namespace mmgen::telemetry
