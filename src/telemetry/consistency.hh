/**
 * @file
 * P009 TelemetryConsistency: cross-check sampled series against the
 * final report aggregates.
 *
 * Sampling runs as an extra event source inside the serving loops; a
 * bug there (missed sample, wrong tie priority, double-counting)
 * would silently corrupt every time series while leaving the report
 * untouched. This check closes the loop: the *last* sample of each
 * cumulative series must equal the corresponding report aggregate,
 * timestamps must march strictly forward to the horizon, cumulative
 * series must be monotone, and instantaneous series must stay inside
 * physical ranges (queue depth >= 0, in-flight <= fleet GPUs,
 * breaker state in {0,1,2}).
 */

#ifndef MMGEN_TELEMETRY_CONSISTENCY_HH
#define MMGEN_TELEMETRY_CONSISTENCY_HH

#include <cstdint>

#include "telemetry/metrics.hh"
#include "verify/diagnostic.hh"

namespace mmgen::telemetry {

/** Report aggregates the sampled series must agree with. */
struct SeriesExpectations
{
    double horizonSeconds = 0.0;
    /** Total GPUs across the fleet (bounds in-flight). */
    int totalGpus = 0;
    std::int64_t arrived = 0;
    std::int64_t shed = 0;
    /** Completions inside the horizon (report completed - drain). */
    std::int64_t inHorizonCompleted = 0;
    std::int64_t retries = 0;
    std::int64_t hedgesIssued = 0;
};

/**
 * Verify the sampled serving series in `registry` against the final
 * aggregates. Emits rule P009 findings; an empty report means the
 * series are consistent. Series absent from the registry (sampling
 * disabled, or single-pool runs without replica series) are skipped.
 */
verify::DiagnosticReport
checkSeriesConsistency(const MetricsRegistry& registry,
                       const SeriesExpectations& expect);

} // namespace mmgen::telemetry

#endif // MMGEN_TELEMETRY_CONSISTENCY_HH
