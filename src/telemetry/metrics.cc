#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mmgen::telemetry {

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> kv)
{
    for (const auto& [k, v] : kv)
        set(k, v);
}

void
Labels::set(const std::string& key, const std::string& value)
{
    auto it = std::lower_bound(
        kv_.begin(), kv_.end(), key,
        [](const auto& pair, const std::string& k) {
            return pair.first < k;
        });
    if (it != kv_.end() && it->first == key)
        it->second = value;
    else
        kv_.insert(it, {key, value});
}

std::string
Labels::str() const
{
    std::string out;
    for (const auto& [k, v] : kv_) {
        if (!out.empty())
            out += ',';
        out += k;
        out += '=';
        out += v;
    }
    return out;
}

void
Counter::add(std::int64_t delta)
{
    MMGEN_CHECK(delta >= 0, "counters are monotone; delta " << delta);
    value_ += delta;
}

void
Gauge::set(double v)
{
    MMGEN_CHECK(!std::isnan(v), "gauge value is NaN");
    value_ = v;
}

HistogramSpec
HistogramSpec::linear(double lo, double hi, int buckets)
{
    HistogramSpec spec;
    spec.scale = Scale::Linear;
    spec.lo = lo;
    spec.hi = hi;
    spec.buckets = buckets;
    spec.validate();
    return spec;
}

HistogramSpec
HistogramSpec::exponential(double lo, double hi, int buckets)
{
    HistogramSpec spec;
    spec.scale = Scale::Log;
    spec.lo = lo;
    spec.hi = hi;
    spec.buckets = buckets;
    spec.validate();
    return spec;
}

void
HistogramSpec::validate() const
{
    MMGEN_CHECK(buckets >= 1, "histogram needs >= 1 bucket");
    MMGEN_CHECK(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
                "histogram range [" << lo << ", " << hi
                                    << ") is not a finite interval");
    if (scale == Scale::Log)
        MMGEN_CHECK(lo > 0.0,
                    "log-bucket histogram needs lo > 0, got " << lo);
}

double
HistogramSpec::upperEdge(int i) const
{
    if (scale == Scale::Linear)
        return lo + (hi - lo) * static_cast<double>(i + 1) /
                        static_cast<double>(buckets);
    // Edge i+1 of log-spaced buckets: lo * (hi/lo)^((i+1)/buckets).
    return lo * std::pow(hi / lo,
                         static_cast<double>(i + 1) /
                             static_cast<double>(buckets));
}

double
HistogramSpec::lowerEdge(int i) const
{
    if (i == 0)
        return lo;
    return upperEdge(i - 1);
}

Histogram::Histogram(HistogramSpec spec) : spec_(spec)
{
    spec_.validate();
    counts_.assign(static_cast<std::size_t>(spec_.buckets), 0);
}

void
Histogram::observe(double v)
{
    MMGEN_CHECK(!std::isnan(v), "histogram observation is NaN");
    ++count_;
    sum_ += v;
    if (v < spec_.lo) {
        ++underflow_;
        return;
    }
    if (v >= spec_.hi) {
        ++overflow_;
        return;
    }
    int idx;
    if (spec_.scale == HistogramSpec::Scale::Linear) {
        idx = static_cast<int>((v - spec_.lo) / (spec_.hi - spec_.lo) *
                               static_cast<double>(spec_.buckets));
    } else {
        idx = static_cast<int>(std::log(v / spec_.lo) /
                               std::log(spec_.hi / spec_.lo) *
                               static_cast<double>(spec_.buckets));
    }
    // FP rounding at an edge can land one bucket out of range.
    idx = std::clamp(idx, 0, spec_.buckets - 1);
    ++counts_[static_cast<std::size_t>(idx)];
}

double
Histogram::quantile(double q) const
{
    MMGEN_CHECK(q >= 0.0 && q <= 1.0, "quantile " << q << " not in [0,1]");
    if (count_ == 0)
        return 0.0;
    // Nearest-rank: the rank-th smallest observation, 1-based.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = underflow_;
    if (rank <= seen)
        return spec_.lo;
    for (int i = 0; i < spec_.buckets; ++i) {
        seen += counts_[static_cast<std::size_t>(i)];
        if (rank <= seen) {
            double blo = spec_.lowerEdge(i);
            double bhi = spec_.upperEdge(i);
            if (spec_.scale == HistogramSpec::Scale::Linear)
                return 0.5 * (blo + bhi);
            return std::sqrt(blo * bhi);
        }
    }
    return spec_.hi; // overflow bucket
}

void
TimeSeries::record(double tSeconds, double value)
{
    MMGEN_CHECK(!std::isnan(tSeconds) && !std::isnan(value),
                "time-series sample is NaN");
    MMGEN_CHECK(points_.empty() || tSeconds >= points_.back().tSeconds,
                "time-series timestamps must be non-decreasing: "
                    << tSeconds << " after " << points_.back().tSeconds);
    points_.push_back({tSeconds, value});
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter&
MetricsRegistry::counter(const std::string& name, const Labels& labels)
{
    return counters_[{name, labels}];
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const Labels& labels)
{
    return gauges_[{name, labels}];
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           const HistogramSpec& spec, const Labels& labels)
{
    auto& slot = histograms_[{name, labels}];
    if (!slot) {
        slot = std::make_unique<Histogram>(spec);
    } else {
        const auto& have = slot->spec();
        MMGEN_CHECK(have.scale == spec.scale && have.lo == spec.lo &&
                        have.hi == spec.hi && have.buckets == spec.buckets,
                    "histogram '" << name
                                  << "' re-registered with a different "
                                     "bucket layout");
    }
    return *slot;
}

TimeSeries&
MetricsRegistry::series(const std::string& name, const Labels& labels)
{
    return series_[{name, labels}];
}

const Counter*
MetricsRegistry::findCounter(const std::string& name,
                             const Labels& labels) const
{
    auto it = counters_.find({name, labels});
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge*
MetricsRegistry::findGauge(const std::string& name,
                           const Labels& labels) const
{
    auto it = gauges_.find({name, labels});
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram*
MetricsRegistry::findHistogram(const std::string& name,
                               const Labels& labels) const
{
    auto it = histograms_.find({name, labels});
    return it == histograms_.end() ? nullptr : it->second.get();
}

const TimeSeries*
MetricsRegistry::findSeries(const std::string& name,
                            const Labels& labels) const
{
    auto it = series_.find({name, labels});
    return it == series_.end() ? nullptr : &it->second;
}

std::size_t
MetricsRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size() +
           series_.size();
}

} // namespace mmgen::telemetry
