#include "telemetry/export.hh"

#include <cstdio>
#include <map>

#include "util/json.hh"
#include "util/logging.hh"

namespace mmgen::telemetry {

namespace {

void
writeLabelsObject(json::Writer& w, const Labels& labels)
{
    w.beginObject();
    for (const auto& [k, v] : labels.items())
        w.field(k, v);
    w.endObject();
}

/** Prometheus label block: {k1="v1",k2="v2"}, empty string if none. */
std::string
prometheusLabels(const Labels& labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels.items()) {
        if (!first)
            out += ',';
        first = false;
        out += prometheusName(k) + "=\"" + json::escape(v) + "\"";
    }
    out += '}';
    return out;
}

/** Fixed-precision microsecond timestamp, matching the profiler. */
std::string
micros(double seconds)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

} // namespace

std::string
prometheusName(const std::string& name)
{
    std::string out = name;
    for (char& c : out) {
        if (c == '.' || c == '-' || c == ' ')
            c = '_';
    }
    return out;
}

void
writeMetricsJsonLines(std::ostream& out, const MetricsRegistry& registry)
{
    for (const auto& [key, counter] : registry.counters()) {
        json::Writer w(out);
        w.beginObject()
            .field("type", "counter")
            .field("name", key.first);
        w.key("labels");
        writeLabelsObject(w, key.second);
        w.field("value", counter.value()).endObject();
        out << "\n";
    }
    for (const auto& [key, gauge] : registry.gauges()) {
        json::Writer w(out);
        w.beginObject().field("type", "gauge").field("name", key.first);
        w.key("labels");
        writeLabelsObject(w, key.second);
        w.field("value", gauge.value()).endObject();
        out << "\n";
    }
    for (const auto& [key, hist] : registry.histograms()) {
        json::Writer w(out);
        w.beginObject()
            .field("type", "histogram")
            .field("name", key.first);
        w.key("labels");
        writeLabelsObject(w, key.second);
        w.field("count", static_cast<std::int64_t>(hist->count()))
            .field("sum", hist->sum())
            .field("underflow",
                   static_cast<std::int64_t>(hist->underflow()))
            .field("overflow",
                   static_cast<std::int64_t>(hist->overflow()))
            .field("p50", hist->quantile(0.50))
            .field("p95", hist->quantile(0.95))
            .field("p99", hist->quantile(0.99));
        w.key("buckets").beginArray();
        const auto& counts = hist->bucketCounts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            w.beginArray()
                .value(hist->spec().upperEdge(static_cast<int>(i)))
                .value(static_cast<std::int64_t>(counts[i]))
                .endArray();
        }
        w.endArray().endObject();
        out << "\n";
    }
    for (const auto& [key, series] : registry.allSeries()) {
        json::Writer w(out);
        w.beginObject().field("type", "series").field("name", key.first);
        w.key("labels");
        writeLabelsObject(w, key.second);
        w.key("points").beginArray();
        for (const SamplePoint& p : series.points()) {
            w.beginArray()
                .value(p.tSeconds)
                .value(p.value)
                .endArray();
        }
        w.endArray().endObject();
        out << "\n";
    }
}

void
writePrometheus(std::ostream& out, const MetricsRegistry& registry)
{
    std::string last;
    for (const auto& [key, counter] : registry.counters()) {
        const std::string name = prometheusName(key.first);
        if (name != last)
            out << "# TYPE " << name << " counter\n";
        last = name;
        out << name << prometheusLabels(key.second) << " "
            << counter.value() << "\n";
    }
    last.clear();
    for (const auto& [key, gauge] : registry.gauges()) {
        const std::string name = prometheusName(key.first);
        if (name != last)
            out << "# TYPE " << name << " gauge\n";
        last = name;
        out << name << prometheusLabels(key.second) << " "
            << json::number(gauge.value()) << "\n";
    }
    last.clear();
    for (const auto& [key, hist] : registry.histograms()) {
        const std::string name = prometheusName(key.first);
        if (name != last)
            out << "# TYPE " << name << " histogram\n";
        last = name;
        std::uint64_t cumulative = hist->underflow();
        const auto& counts = hist->bucketCounts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            Labels le = key.second;
            le.set("le", json::number(
                             hist->spec().upperEdge(static_cast<int>(i))));
            out << name << "_bucket" << prometheusLabels(le) << " "
                << cumulative << "\n";
        }
        Labels inf = key.second;
        inf.set("le", "+Inf");
        out << name << "_bucket" << prometheusLabels(inf) << " "
            << hist->count() << "\n";
        out << name << "_sum" << prometheusLabels(key.second) << " "
            << json::number(hist->sum()) << "\n";
        out << name << "_count" << prometheusLabels(key.second) << " "
            << hist->count() << "\n";
    }
}

void
writeChromeTrace(std::ostream& out, const TraceSink& sink)
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& event_json) {
        if (!first)
            out << ",";
        first = false;
        out << "\n" << event_json;
    };

    // Tracks sharing a process name share a pid (the smallest
    // processSort in the group), so e.g. every replica lane of
    // "serving" nests under one process in the viewer.
    std::map<std::string, int> pids;
    for (const TraceTrack& t : sink.tracks()) {
        auto [it, inserted] = pids.emplace(t.process, t.processSort);
        if (!inserted && t.processSort < it->second)
            it->second = t.processSort;
    }

    for (const auto& [process, pid] : pids) {
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
             json::escape(process) + "\"}}");
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" +
             std::to_string(pid) + "}}");
    }
    for (const TraceTrack& t : sink.tracks()) {
        const int pid = pids.at(t.process);
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(t.threadSort) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
             json::escape(t.thread) + "\"}}");
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(t.threadSort) +
             ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
             std::to_string(t.threadSort) + "}}");
    }

    for (const TraceEvent& ev : sink.events()) {
        const TraceTrack& t =
            sink.tracks()[static_cast<std::size_t>(ev.track)];
        const int pid = pids.at(t.process);
        std::string line = "{\"ph\":\"";
        line += ev.phase == TraceEvent::Phase::Complete ? "X" : "i";
        line += "\",\"pid\":" + std::to_string(pid) +
                ",\"tid\":" + std::to_string(t.threadSort) +
                ",\"ts\":" + micros(ev.startSeconds);
        if (ev.phase == TraceEvent::Phase::Complete)
            line += ",\"dur\":" + micros(ev.durationSeconds);
        else
            line += ",\"s\":\"t\"";
        line += ",\"name\":\"" + json::escape(ev.name) + "\"";
        if (!ev.category.empty())
            line += ",\"cat\":\"" + json::escape(ev.category) + "\"";
        if (!ev.args.empty()) {
            line += ",\"args\":{";
            bool firstArg = true;
            for (const auto& [k, v] : ev.args.items()) {
                if (!firstArg)
                    line += ",";
                firstArg = false;
                line += "\"" + json::escape(k) + "\":\"" +
                        json::escape(v) + "\"";
            }
            line += "}";
        }
        line += "}";
        emit(line);
    }
    out << "\n]}\n";
}

} // namespace mmgen::telemetry
