/**
 * @file
 * Span-based structured tracing over simulation time.
 *
 * A TraceSink collects complete spans (begin/end pairs resolved into
 * one record), instants, and counter samples on named tracks. Tracks
 * are (process, thread) pairs — e.g. ("serving", "replica 0") — that
 * map onto Chrome Trace Event pid/tid lanes at export time, so a
 * serving run, its chaos events, and the exec-layer kernel timeline
 * can be viewed in one Perfetto window.
 *
 * All timestamps are simulation seconds. Event order in the sink is
 * insertion order; because simulators are single-threaded and
 * deterministic, the exported trace is byte-identical across `--jobs`
 * settings. The sink never sorts — Chrome tracing tools order by `ts`
 * themselves — which keeps appends O(1).
 */

#ifndef MMGEN_TELEMETRY_TRACE_HH
#define MMGEN_TELEMETRY_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "telemetry/metrics.hh"

namespace mmgen::telemetry {

/** One trace event. Durations only apply to Complete spans. */
struct TraceEvent
{
    enum class Phase : std::uint8_t { Complete, Instant };

    Phase phase = Phase::Complete;
    /** Index into TraceSink::tracks(). */
    int track = 0;
    std::string name;
    std::string category;
    double startSeconds = 0.0;
    /** Only meaningful for Complete spans. */
    double durationSeconds = 0.0;
    /** Free-form key/value annotations rendered into "args". */
    Labels args;
};

/** A (process, thread) lane events land on. */
struct TraceTrack
{
    std::string process;
    std::string thread;
    /**
     * Explicit sort keys for the exported pid/tid. Defaults derive
     * from registration order; appendTimeline overrides them to keep
     * exec-stage lanes in pipeline order.
     */
    int processSort = 0;
    int threadSort = 0;
};

/** Collects structured trace events in simulation time. */
class TraceSink
{
  public:
    /**
     * Intern a (process, thread) track and return its id. Repeated
     * calls with the same pair return the same id.
     */
    int track(const std::string& process, const std::string& thread);

    /** Record a complete span [start, start + duration). */
    void complete(int track, const std::string& name, double startSeconds,
                  double durationSeconds, const std::string& category = "",
                  Labels args = {});

    /** Record a zero-duration instant event. */
    void instant(int track, const std::string& name, double tSeconds,
                 const std::string& category = "", Labels args = {});

    /** Override a track's exported pid/tid sort keys. */
    void setTrackSort(int track, int processSort, int threadSort);

    const std::vector<TraceTrack>& tracks() const { return tracks_; }
    const std::vector<TraceEvent>& events() const { return events_; }
    bool empty() const { return events_.empty(); }

  private:
    std::vector<TraceTrack> tracks_;
    std::map<std::pair<std::string, std::string>, int> trackIds_;
    std::vector<TraceEvent> events_;
};

/**
 * Append a scheduled exec timeline into a sink as complete spans,
 * reusing PlanNode provenance: stages become processes ("stage:
 * NAME"), streams become threads ("stream N (compute|copy)"), and
 * folded repeats are expanded exactly like profiler::writeChromeTrace
 * (at most maxRepeatInstances slices, elisions flagged in the name).
 *
 * `timeOffsetSeconds` shifts the timeline, so an exec trace can be
 * placed alongside serving spans that start elsewhere in sim time.
 */
void appendTimeline(TraceSink& sink, const exec::ExecutionPlan& plan,
                    const exec::Timeline& timeline,
                    std::int64_t maxRepeatInstances = 3,
                    double timeOffsetSeconds = 0.0);

} // namespace mmgen::telemetry

#endif // MMGEN_TELEMETRY_TRACE_HH
