/**
 * @file
 * Telemetry exporters: JSON-lines metric dumps, Prometheus text
 * format, and Chrome Trace Event JSON for TraceSink spans.
 *
 * All exporters iterate the registry in its deterministic
 * (name, labels) order and pin their number formatting, so equal
 * registries serialize to byte-identical files regardless of thread
 * count or platform locale.
 */

#ifndef MMGEN_TELEMETRY_EXPORT_HH
#define MMGEN_TELEMETRY_EXPORT_HH

#include <ostream>

#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace mmgen::telemetry {

/**
 * Dump every metric as one JSON object per line:
 *
 *   {"type":"counter","name":"...","labels":{...},"value":12}
 *   {"type":"histogram","name":"...","count":9,"sum":...,"buckets":[...]}
 *   {"type":"series","name":"...","points":[[t,v],...]}
 *
 * The line-per-metric layout keeps diffs readable and lets downstream
 * tools stream-parse without loading the whole dump.
 */
void writeMetricsJsonLines(std::ostream& out,
                           const MetricsRegistry& registry);

/**
 * Render counters, gauges, and histograms in Prometheus text
 * exposition format (metric names sanitized: '.', '-', and ' ' map to
 * '_'). Time series are omitted — Prometheus scrapes are samples
 * already; the JSON-lines dump carries full series.
 */
void writePrometheus(std::ostream& out, const MetricsRegistry& registry);

/**
 * Write a TraceSink as a Chrome Trace Event Format document: tracks
 * become pid/tid lanes (named via metadata events, ordered by their
 * sort keys), complete spans become "X" events and instants "i"
 * events, timestamps in microseconds of simulation time.
 */
void writeChromeTrace(std::ostream& out, const TraceSink& sink);

/** Sanitize a metric name for Prometheus exposition. */
std::string prometheusName(const std::string& name);

} // namespace mmgen::telemetry

#endif // MMGEN_TELEMETRY_EXPORT_HH
