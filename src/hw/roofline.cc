#include "roofline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::hw {

std::string
boundKindName(BoundKind k)
{
    return k == BoundKind::ComputeBound ? "compute" : "memory";
}

Roofline::Roofline(const GpuSpec& gpu, DType dtype)
    : peak(gpu.peakFlops(dtype)), bw(gpu.hbmBandwidth)
{
    MMGEN_CHECK(peak > 0.0 && bw > 0.0,
                "GPU spec has non-positive peak or bandwidth");
}

double
Roofline::ridgePoint() const
{
    return peak / bw;
}

double
Roofline::attainableFlops(double arithmetic_intensity) const
{
    MMGEN_CHECK(arithmetic_intensity > 0.0,
                "arithmetic intensity must be positive, got "
                    << arithmetic_intensity);
    return std::min(peak, arithmetic_intensity * bw);
}

BoundKind
Roofline::classify(double arithmetic_intensity) const
{
    return arithmetic_intensity >= ridgePoint() ? BoundKind::ComputeBound
                                                : BoundKind::MemoryBound;
}

RooflinePoint
Roofline::point(const std::string& label,
                double arithmetic_intensity) const
{
    RooflinePoint p;
    p.label = label;
    p.arithmeticIntensity = arithmetic_intensity;
    p.flopsPerSecond = attainableFlops(arithmetic_intensity);
    p.bound = classify(arithmetic_intensity);
    return p;
}

TimeEstimate
estimateTime(const GpuSpec& gpu, const TimeEstimateInputs& in)
{
    MMGEN_CHECK(in.flops >= 0.0 && in.hbmBytes >= 0.0,
                "negative work amounts");
    MMGEN_CHECK(in.computeEfficiency > 0.0 && in.computeEfficiency <= 1.0,
                "compute efficiency " << in.computeEfficiency
                                      << " out of (0, 1]");
    MMGEN_CHECK(in.memoryEfficiency > 0.0 && in.memoryEfficiency <= 1.0,
                "memory efficiency " << in.memoryEfficiency
                                     << " out of (0, 1]");
    MMGEN_CHECK(in.launches >= 0, "negative launch count");

    TimeEstimate out;
    const double peak = gpu.peakFlops(in.dtype);
    out.computeSeconds = in.flops / (peak * in.computeEfficiency);
    out.memorySeconds =
        in.hbmBytes / (gpu.hbmBandwidth * in.memoryEfficiency);
    out.overheadSeconds = in.launches * gpu.kernelLaunchOverhead;
    out.bound = out.computeSeconds >= out.memorySeconds
                    ? BoundKind::ComputeBound
                    : BoundKind::MemoryBound;
    out.seconds = std::max(out.computeSeconds, out.memorySeconds) +
                  out.overheadSeconds;
    return out;
}

} // namespace mmgen::hw
