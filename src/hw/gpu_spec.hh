/**
 * @file
 * Hardware description of the simulated GPU.
 *
 * mmgen substitutes the paper's physical A100-80GB GPUs with a
 * parameterized hardware model. All experiments report relative
 * quantities (breakdowns, speedups, scaling shapes), which depend on
 * the ratios below rather than on cycle-accurate behaviour.
 */

#ifndef MMGEN_HW_GPU_SPEC_HH
#define MMGEN_HW_GPU_SPEC_HH

#include <cstdint>
#include <string>

#include "tensor/dtype.hh"

namespace mmgen::hw {

/**
 * Static datasheet-level description of one GPU.
 */
struct GpuSpec
{
    std::string name;

    /** Number of streaming multiprocessors. */
    int numSms = 0;

    /** Peak dense tensor-core throughput for f16/bf16 inputs, FLOP/s. */
    double peakF16Flops = 0.0;

    /** Peak dense tensor-core throughput for int8 inputs, OP/s. */
    double peakI8Flops = 0.0;

    /** Peak FP32 (CUDA core) throughput, FLOP/s. */
    double peakF32Flops = 0.0;

    /** HBM capacity in bytes. */
    double hbmBytes = 0.0;

    /** HBM bandwidth in bytes/s. */
    double hbmBandwidth = 0.0;

    /** L2 cache capacity in bytes (device-wide, shared). */
    std::int64_t l2Bytes = 0;

    /** L1/shared-memory capacity per SM in bytes. */
    std::int64_t l1BytesPerSm = 0;

    /** Cache sector (transaction) size in bytes. */
    int cacheLineBytes = 32;

    /** Fixed host-side cost to launch one kernel, seconds. */
    double kernelLaunchOverhead = 0.0;

    /** Peak throughput for the given element type, FLOP/s. */
    double peakFlops(DType t) const;

    /** NVIDIA A100-SXM4-80GB (the paper's evaluation platform). */
    static GpuSpec a100_80gb();

    /** NVIDIA V100-SXM2-32GB (for sensitivity studies). */
    static GpuSpec v100_32gb();

    /** NVIDIA H100-SXM5-80GB (for forward-looking sweeps). */
    static GpuSpec h100_80gb();
};

/**
 * A multi-GPU training node (the paper trains with FSDP on nodes of
 * eight A100s).
 */
struct NodeSpec
{
    GpuSpec gpu;
    int gpusPerNode = 8;

    /** Total HBM available on the node in bytes. */
    double totalHbmBytes() const;

    static NodeSpec a100Node();
};

} // namespace mmgen::hw

#endif // MMGEN_HW_GPU_SPEC_HH
