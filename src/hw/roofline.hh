/**
 * @file
 * Roofline performance model (paper Fig. 5) and kernel time estimation.
 *
 * A kernel's execution time is modeled as the maximum of its compute
 * time and its memory time, each derated by an attained-efficiency
 * factor supplied by the kernel model, plus a fixed launch overhead.
 * This is the standard roofline abstraction used throughout the paper
 * to reason about compute- versus memory-bound operators.
 */

#ifndef MMGEN_HW_ROOFLINE_HH
#define MMGEN_HW_ROOFLINE_HH

#include <string>

#include "hw/gpu_spec.hh"

namespace mmgen::hw {

/** Which roofline regime a workload point falls in. */
enum class BoundKind {
    ComputeBound,
    MemoryBound,
};

/** Name of a bound kind ("compute" / "memory"). */
std::string boundKindName(BoundKind k);

/** One workload point on the roofline. */
struct RooflinePoint
{
    std::string label;
    /** Arithmetic intensity, FLOP per byte. */
    double arithmeticIntensity = 0.0;
    /** Attained (or attainable) FLOP/s. */
    double flopsPerSecond = 0.0;
    BoundKind bound = BoundKind::MemoryBound;
};

/**
 * Roofline model for a GPU at a given element type.
 */
class Roofline
{
  public:
    Roofline(const GpuSpec& gpu, DType dtype);

    /** Intensity at which compute and memory limits intersect. */
    double ridgePoint() const;

    /** Attainable FLOP/s at the given arithmetic intensity. */
    double attainableFlops(double arithmetic_intensity) const;

    /** Classify a workload point by its arithmetic intensity. */
    BoundKind classify(double arithmetic_intensity) const;

    /** Build a labeled point at the given intensity. */
    RooflinePoint
    point(const std::string& label, double arithmetic_intensity) const;

    /** Peak compute ceiling, FLOP/s. */
    double peakFlops() const { return peak; }

    /** Memory bandwidth, bytes/s. */
    double bandwidth() const { return bw; }

  private:
    double peak;
    double bw;
};

/**
 * Kernel-time estimate inputs: work and attained-efficiency deratings.
 */
struct TimeEstimateInputs
{
    double flops = 0.0;
    double hbmBytes = 0.0;
    /** Fraction of peak compute the kernel attains (0, 1]. */
    double computeEfficiency = 1.0;
    /** Fraction of peak bandwidth the kernel attains (0, 1]. */
    double memoryEfficiency = 1.0;
    /** Number of device kernel launches this op issues. */
    int launches = 1;
    DType dtype = DType::F16;
};

/** Result of a kernel time estimate. */
struct TimeEstimate
{
    double seconds = 0.0;
    double computeSeconds = 0.0;
    double memorySeconds = 0.0;
    double overheadSeconds = 0.0;
    BoundKind bound = BoundKind::MemoryBound;
};

/** Estimate the execution time of one kernel on the given GPU. */
TimeEstimate estimateTime(const GpuSpec& gpu,
                          const TimeEstimateInputs& in);

} // namespace mmgen::hw

#endif // MMGEN_HW_ROOFLINE_HH
