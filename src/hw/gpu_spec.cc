#include "gpu_spec.hh"

#include "util/logging.hh"

namespace mmgen::hw {

double
GpuSpec::peakFlops(DType t) const
{
    switch (t) {
      case DType::F16:
      case DType::BF16:
        return peakF16Flops;
      case DType::I8:
        return peakI8Flops > 0.0 ? peakI8Flops : peakF16Flops;
      case DType::F32:
      case DType::I32:
        return peakF32Flops;
    }
    MMGEN_ASSERT(false, "unknown dtype");
}

GpuSpec
GpuSpec::a100_80gb()
{
    GpuSpec s;
    s.name = "A100-SXM4-80GB";
    s.numSms = 108;
    s.peakF16Flops = 312e12;
    s.peakI8Flops = 624e12;
    s.peakF32Flops = 19.5e12;
    s.hbmBytes = 80e9;
    s.hbmBandwidth = 2.039e12;
    s.l2Bytes = 40LL * 1024 * 1024;
    s.l1BytesPerSm = 192LL * 1024;
    s.cacheLineBytes = 32;
    s.kernelLaunchOverhead = 4e-6;
    return s;
}

GpuSpec
GpuSpec::v100_32gb()
{
    GpuSpec s;
    s.name = "V100-SXM2-32GB";
    s.numSms = 80;
    s.peakF16Flops = 125e12;
    s.peakI8Flops = 125e12; // no int8 tensor cores; DP4A-class rate
    s.peakF32Flops = 15.7e12;
    s.hbmBytes = 32e9;
    s.hbmBandwidth = 0.9e12;
    s.l2Bytes = 6LL * 1024 * 1024;
    s.l1BytesPerSm = 128LL * 1024;
    s.cacheLineBytes = 32;
    s.kernelLaunchOverhead = 5e-6;
    return s;
}

GpuSpec
GpuSpec::h100_80gb()
{
    GpuSpec s;
    s.name = "H100-SXM5-80GB";
    s.numSms = 132;
    s.peakF16Flops = 989e12;
    s.peakI8Flops = 1979e12;
    s.peakF32Flops = 67e12;
    s.hbmBytes = 80e9;
    s.hbmBandwidth = 3.35e12;
    s.l2Bytes = 50LL * 1024 * 1024;
    s.l1BytesPerSm = 256LL * 1024;
    s.cacheLineBytes = 32;
    s.kernelLaunchOverhead = 4e-6;
    return s;
}

double
NodeSpec::totalHbmBytes() const
{
    return gpu.hbmBytes * gpusPerNode;
}

NodeSpec
NodeSpec::a100Node()
{
    NodeSpec n;
    n.gpu = GpuSpec::a100_80gb();
    n.gpusPerNode = 8;
    return n;
}

} // namespace mmgen::hw
