/**
 * @file
 * Kernel-level cost records.
 *
 * Each graph-level Op lowers to one or more device kernels (e.g. a
 * baseline attention call lowers to GEMM, scale, mask, softmax, GEMM).
 * The cost model produces a SubKernelCost per kernel; the profiler
 * converts these to time through the roofline, and the cache simulator
 * replays the same kernel classes as address traces (paper Fig. 12
 * reports hit rates per kernel class).
 */

#ifndef MMGEN_KERNELS_KERNEL_COST_HH
#define MMGEN_KERNELS_KERNEL_COST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dtype.hh"

namespace mmgen::kernels {

/** Device-kernel classes, matching Nsight-style kernel grouping. */
enum class KernelClass : std::uint8_t {
    Gemm,
    Conv,
    Softmax,
    Elementwise,
    Norm,
    Memory,
};

/** Human-readable kernel class name. */
std::string kernelClassName(KernelClass k);

/** Work and attained-efficiency estimate for one device kernel. */
struct SubKernelCost
{
    KernelClass klass = KernelClass::Elementwise;
    /** Short label, e.g. "qk_gemm", "softmax", "flash_fused". */
    std::string label;
    double flops = 0.0;
    double hbmBytes = 0.0;
    int launches = 1;
    /** Fraction of peak compute this kernel attains (0, 1]. */
    double computeEff = 1.0;
    /** Fraction of peak bandwidth this kernel attains (0, 1]. */
    double memEff = 1.0;
    /**
     * Portion of hbmBytes that is weight traffic (parameter reads).
     * Lowering may peel this onto a copy-lane weight-stream node;
     * kernels with no trainable parameters leave it at 0.
     */
    double weightBytes = 0.0;
};

/** All kernels an op lowers to, with aggregate helpers. */
struct OpCost
{
    std::vector<SubKernelCost> parts;

    double totalFlops() const;
    double totalBytes() const;
    int totalLaunches() const;

    /** Aggregate arithmetic intensity (FLOP per HBM byte). */
    double arithmeticIntensity() const;
};

} // namespace mmgen::kernels

#endif // MMGEN_KERNELS_KERNEL_COST_HH
