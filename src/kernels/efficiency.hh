/**
 * @file
 * Attained-efficiency models for device kernels.
 *
 * Real kernels attain a fraction of datasheet peaks that depends on
 * problem shape: tile quantization, wave (tail) effects, pipeline
 * depth, and per-matrix footprint. These functions capture the
 * first-order shape dependence. The constants in EfficiencyParams are
 * the calibration surface of the whole simulator: they are chosen once
 * against published A100 kernel behaviour and then held fixed across
 * every experiment (no per-figure tuning).
 */

#ifndef MMGEN_KERNELS_EFFICIENCY_HH
#define MMGEN_KERNELS_EFFICIENCY_HH

#include <cstdint>

#include "hw/gpu_spec.hh"

namespace mmgen::kernels {

/** Calibration constants for the efficiency models. */
struct EfficiencyParams
{
    /** Best-case tensor-core GEMM fraction of peak (large shapes). */
    double gemmPeakFraction = 0.75;

    /** Best-case implicit-GEMM convolution fraction of peak. */
    double convPeakFraction = 0.65;

    /** Best-case fused-attention (Flash) fraction of peak at d>=128. */
    double flashPeakFraction = 0.70;

    /** Best-case streaming fraction of HBM bandwidth. */
    double streamMemFraction = 0.85;

    /** Per-matrix fixed overhead charged to small batched GEMMs, bytes. */
    double smallMatrixOverheadBytes = 4096.0;

    /** Per-(batch*head) fixed overhead for attention kernels, bytes. */
    double attentionMatrixOverheadBytes = 8192.0;

    /** K-depth at which GEMM pipelines reach half their peak. */
    double gemmKHalfDepth = 32.0;

    /** Fraction of full-matrix FLOPs a causal Flash kernel performs. */
    double causalFlashFlopFraction = 0.55;

    /**
     * Traffic multiplier on the materialized similarity matrix in the
     * baseline path: eager implementations upcast the similarity
     * matrix to fp32 for a numerically stable softmax and materialize the
     * cast-back copy, multiplying its
     * HBM footprint relative to a fused fp16 kernel.
     */
    double baselineSimilarityUpcast = 2.1;

    /** Floor applied to every efficiency factor. */
    double efficiencyFloor = 0.02;

    /** CTAs resident per SM assumed by the wave model. */
    int ctasPerSm = 2;

    static const EfficiencyParams& defaults();
};

/** Tile-quantization + wave + pipeline model of GEMM compute eff. */
double gemmComputeEff(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                      std::int64_t batch, std::int64_t m, std::int64_t n,
                      std::int64_t k);

/** Footprint model of GEMM memory efficiency. */
double gemmMemEff(const EfficiencyParams& p, std::int64_t batch,
                  std::int64_t m, std::int64_t n, std::int64_t k,
                  std::size_t dtype_bytes);

/** Implicit-GEMM convolution compute efficiency. */
double convComputeEff(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                      std::int64_t m, std::int64_t n, std::int64_t k);

/**
 * Fused (Flash) attention compute efficiency: grows with head dim and
 * KV length; tiny heads or sequences underfill the tensor cores.
 */
double flashComputeEff(const EfficiencyParams& p, std::int64_t head_dim,
                       std::int64_t seq_kv);

/**
 * Attention memory efficiency from per-(batch*head) footprint: tiny
 * matrices (temporal attention over a handful of frames, decode steps)
 * amortize transfer setup poorly; this is the locality effect behind
 * the paper's temporal-attention slowdown (Fig. 11).
 */
double attentionMemEff(const EfficiencyParams& p, std::int64_t seq_q,
                       std::int64_t seq_kv, std::int64_t head_dim,
                       std::size_t dtype_bytes);

/** Streaming memory efficiency for elementwise/norm kernels. */
double streamMemEff(const EfficiencyParams& p, std::int64_t bytes);

/**
 * Occupancy factor for attention kernels: a kernel with few CTAs
 * cannot keep enough memory requests in flight to saturate HBM. This
 * is why single-token decode attention underuses the GPU — and what
 * Flash-Decoding's KV splitting fixes.
 */
double attentionOccupancy(const hw::GpuSpec& gpu,
                          const EfficiencyParams& p, std::int64_t ctas);

} // namespace mmgen::kernels

#endif // MMGEN_KERNELS_EFFICIENCY_HH
