/**
 * @file
 * Lowering of fused attention ops to device kernels.
 *
 * Baseline attention (eager PyTorch) materializes the S_q x S_kv
 * similarity matrix in HBM and runs a separate kernel per step:
 * QK^T GEMM, scale, (mask,) softmax, AV GEMM. FlashAttention-2 fuses
 * everything into one kernel whose HBM traffic is only Q, K, V and O.
 * The difference in S-matrix traffic is exactly the mechanism the
 * paper identifies for the prefill-vs-decode speedup asymmetry
 * (Section IV-B), and the launch-count difference is why even tiny
 * decode-shaped attention sees a small win.
 */

#ifndef MMGEN_KERNELS_ATTENTION_HH
#define MMGEN_KERNELS_ATTENTION_HH

#include "graph/op.hh"
#include "hw/gpu_spec.hh"
#include "kernels/efficiency.hh"
#include "kernels/kernel_cost.hh"

namespace mmgen::kernels {

/** FLOPs of the two attention matmuls (2 * b*h * Sq * Skv * d each). */
double attentionMatmulFlops(const graph::AttentionAttrs& a);

/** FLOPs of the softmax over the similarity matrix. */
double attentionSoftmaxFlops(const graph::AttentionAttrs& a);

/** Bytes of the materialized similarity matrix (one copy). */
double similarityMatrixBytes(const graph::AttentionAttrs& a,
                             std::size_t dtype_bytes);

/** Bytes of Q, K, V and O in HBM (the Flash lower bound). */
double qkvoBytes(const graph::AttentionAttrs& a,
                 std::size_t dtype_bytes);

/**
 * Transient scratch an attention op keeps resident while it runs,
 * beyond its Q/K/V/O operands: the materialized (fp32-upcast)
 * similarity matrix for the eager baseline, the split-KV partial
 * accumulators for flash-decode, nothing for fused flash. Auto
 * resolves to the backend the time model would pick for the shape.
 */
double attentionWorkspaceBytes(const hw::GpuSpec& gpu,
                               const EfficiencyParams& p,
                               const graph::AttentionAttrs& a,
                               DType dtype,
                               graph::AttentionBackend backend);

/**
 * Lower one attention op to its device kernels under a backend.
 * AttentionBackend::Auto evaluates every concrete backend and lowers
 * with the one the time model predicts fastest for the shape.
 */
OpCost lowerAttention(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                      const graph::AttentionAttrs& a, DType dtype,
                      graph::AttentionBackend backend);

/** The concrete backend Auto dispatch would pick for a shape. */
graph::AttentionBackend
selectAttentionBackend(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                       const graph::AttentionAttrs& a, DType dtype);

} // namespace mmgen::kernels

#endif // MMGEN_KERNELS_ATTENTION_HH
