#include "efficiency.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mmgen::kernels {

namespace {

/** Round up to a multiple. */
std::int64_t
roundUp(std::int64_t x, std::int64_t to)
{
    return (x + to - 1) / to * to;
}

/** Smallest power of two >= x, clamped to [lo, hi]. */
std::int64_t
tileFor(std::int64_t extent, std::int64_t lo, std::int64_t hi)
{
    std::int64_t t = lo;
    while (t < extent && t < hi)
        t *= 2;
    return std::min(t, hi);
}

double
clampEff(const EfficiencyParams& p, double eff)
{
    return std::clamp(eff, p.efficiencyFloor, 1.0);
}

/** Wave (tail) utilization for a grid of CTAs over the SMs. */
double
waveUtilization(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                std::int64_t tiles)
{
    const std::int64_t slots =
        static_cast<std::int64_t>(gpu.numSms) * p.ctasPerSm;
    if (tiles <= 0)
        return 1.0;
    const std::int64_t waves = (tiles + slots - 1) / slots;
    return static_cast<double>(tiles) /
           static_cast<double>(waves * slots);
}

} // namespace

const EfficiencyParams&
EfficiencyParams::defaults()
{
    static const EfficiencyParams p;
    return p;
}

double
gemmComputeEff(const hw::GpuSpec& gpu, const EfficiencyParams& p,
               std::int64_t batch, std::int64_t m, std::int64_t n,
               std::int64_t k)
{
    MMGEN_CHECK(batch > 0 && m > 0 && n > 0 && k > 0,
                "GEMM dims must be positive");
    const std::int64_t tile_m = tileFor(m, 16, 128);
    const std::int64_t tile_n = tileFor(n, 16, 128);
    const double quant =
        static_cast<double>(m) * static_cast<double>(n) /
        (static_cast<double>(roundUp(m, tile_m)) *
         static_cast<double>(roundUp(n, tile_n)));
    const std::int64_t tiles =
        batch * (roundUp(m, tile_m) / tile_m) * (roundUp(n, tile_n) / tile_n);
    const double wave = waveUtilization(gpu, p, tiles);
    const double kdepth =
        static_cast<double>(k) / (static_cast<double>(k) + p.gemmKHalfDepth);
    return clampEff(p, p.gemmPeakFraction * quant * wave * kdepth);
}

double
gemmMemEff(const EfficiencyParams& p, std::int64_t batch, std::int64_t m,
           std::int64_t n, std::int64_t k, std::size_t dtype_bytes)
{
    MMGEN_CHECK(batch > 0 && m > 0 && n > 0 && k > 0,
                "GEMM dims must be positive");
    const double per_matrix =
        static_cast<double>(m * k + k * n + m * n) *
        static_cast<double>(dtype_bytes);
    const double footprint =
        per_matrix / (per_matrix + p.smallMatrixOverheadBytes);
    return clampEff(p, p.streamMemFraction * footprint);
}

double
convComputeEff(const hw::GpuSpec& gpu, const EfficiencyParams& p,
               std::int64_t m, std::int64_t n, std::int64_t k)
{
    MMGEN_CHECK(m > 0 && n > 0 && k > 0, "conv dims must be positive");
    const std::int64_t tile_m = tileFor(m, 16, 128);
    const std::int64_t tile_n = tileFor(n, 16, 64);
    const double quant =
        static_cast<double>(m) * static_cast<double>(n) /
        (static_cast<double>(roundUp(m, tile_m)) *
         static_cast<double>(roundUp(n, tile_n)));
    const std::int64_t tiles =
        (roundUp(m, tile_m) / tile_m) * (roundUp(n, tile_n) / tile_n);
    const double wave = waveUtilization(gpu, p, tiles);
    const double kdepth =
        static_cast<double>(k) / (static_cast<double>(k) + p.gemmKHalfDepth);
    return clampEff(p, p.convPeakFraction * quant * wave * kdepth);
}

double
flashComputeEff(const EfficiencyParams& p, std::int64_t head_dim,
                std::int64_t seq_kv)
{
    MMGEN_CHECK(head_dim > 0 && seq_kv > 0,
                "attention dims must be positive");
    // Tensor-core tiles are 16-wide; head dims below 128 underfill the
    // MMA pipelines roughly proportionally.
    const double dim_factor =
        std::min(1.0, static_cast<double>(head_dim) / 128.0);
    // Short KV sequences cannot hide the softmax rescaling latency.
    const double seq_factor = static_cast<double>(seq_kv) /
                              (static_cast<double>(seq_kv) + 64.0);
    return std::clamp(p.flashPeakFraction * dim_factor * seq_factor,
                      p.efficiencyFloor, 1.0);
}

double
attentionMemEff(const EfficiencyParams& p, std::int64_t seq_q,
                std::int64_t seq_kv, std::int64_t head_dim,
                std::size_t dtype_bytes)
{
    MMGEN_CHECK(seq_q > 0 && seq_kv > 0 && head_dim > 0,
                "attention dims must be positive");
    const double per_matrix =
        static_cast<double>((seq_q + 2 * seq_kv) * head_dim) *
        static_cast<double>(dtype_bytes);
    const double footprint =
        per_matrix / (per_matrix + p.attentionMatrixOverheadBytes);
    return clampEff(p, p.streamMemFraction * footprint);
}

double
attentionOccupancy(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                   std::int64_t ctas)
{
    MMGEN_CHECK(ctas > 0, "CTA count must be positive");
    const double half_fill = static_cast<double>(gpu.numSms) / 2.0;
    const double c = static_cast<double>(ctas);
    return std::clamp(c / (c + half_fill), p.efficiencyFloor, 1.0);
}

double
streamMemEff(const EfficiencyParams& p, std::int64_t bytes)
{
    MMGEN_CHECK(bytes >= 0, "negative byte count");
    const double b = static_cast<double>(bytes);
    // Very small kernels never reach steady-state bandwidth.
    const double ramp = b / (b + 64.0 * 1024.0);
    return clampEff(p, p.streamMemFraction * ramp);
}

} // namespace mmgen::kernels
