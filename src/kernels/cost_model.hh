/**
 * @file
 * Op-level cost model: lowers graph ops to kernels and estimates time.
 *
 * This is the simulated counterpart of running a kernel on the GPU and
 * reading its duration out of PyTorch Profiler. The model is purely
 * shape-driven and deterministic.
 */

#ifndef MMGEN_KERNELS_COST_MODEL_HH
#define MMGEN_KERNELS_COST_MODEL_HH

#include <utility>
#include <vector>

#include "graph/op.hh"
#include "hw/gpu_spec.hh"
#include "hw/roofline.hh"
#include "kernels/efficiency.hh"
#include "kernels/kernel_cost.hh"

namespace mmgen::kernels {

/** Time breakdown of one op across its kernels. */
struct OpTime
{
    double seconds = 0.0;
    double computeSeconds = 0.0;
    double memorySeconds = 0.0;
    double overheadSeconds = 0.0;
};

/**
 * Resident working set of one op: the bytes of all distinct operands
 * and results live at once (not traffic). Used as the memory-pressure
 * proxy of the Table I taxonomy — a baseline attention call must hold
 * its materialized similarity matrix alongside Q/K/V/O.
 */
double opWorkingSetBytes(const graph::Op& op,
                         graph::AttentionBackend backend =
                             graph::AttentionBackend::Baseline);

/**
 * Device-memory demand of one op instance, decomposed the way a
 * liveness analysis consumes it: activation operands read, activation
 * results written, resident parameters, the parameter *traffic* floor
 * (differs from residency only for embedding gathers, which read rows
 * but keep the whole table resident), and transient scratch that
 * lives only while the op runs. By construction
 * `inputBytes + outputBytes + weightReadBytes` never exceeds the sum
 * of the op's lowered kernel HBM traffic — the invariant verify rule
 * P011 enforces over every lowered plan.
 */
struct OpMemoryDemand
{
    /** Activation operand bytes read (excludes parameters). */
    double inputBytes = 0.0;
    /** Activation result bytes written. */
    double outputBytes = 0.0;
    /** Parameter bytes resident while the model is loaded. */
    double weightResidentBytes = 0.0;
    /** Parameter bytes the op's kernels must stream (traffic floor). */
    double weightReadBytes = 0.0;
    /** Transient scratch live only during the op's own kernels. */
    double workspaceBytes = 0.0;
};

/**
 * Shape-driven performance model for all op kinds.
 */
class CostModel
{
  public:
    /**
     * @param gpu      simulated device
     * @param backend  attention implementation for Attention ops
     * @param params   efficiency calibration constants
     */
    CostModel(const hw::GpuSpec& gpu, graph::AttentionBackend backend,
              const EfficiencyParams& params =
                  EfficiencyParams::defaults());

    /** Lower an op to its device kernels with work estimates. */
    OpCost cost(const graph::Op& op) const;

    /** Memory demand of an op under this model's backend and GPU. */
    OpMemoryDemand memoryDemand(const graph::Op& op) const;

    /** Execution-time estimate for an op (repeat count applied). */
    OpTime time(const graph::Op& op) const;

    /** Execution-time for a pre-computed cost. */
    OpTime time(const OpCost& cost, DType dtype,
                std::int64_t repeat = 1) const;

    /**
     * Per-device-kernel-class seconds of one op (Nsight-style view):
     * each sub-kernel's time attributed to its KernelClass.
     */
    std::vector<std::pair<KernelClass, double>>
    timeByKernelClass(const OpCost& cost, DType dtype,
                      std::int64_t repeat = 1) const;

    const hw::GpuSpec& gpu() const { return gpu_; }
    graph::AttentionBackend backend() const { return backend_; }
    const EfficiencyParams& params() const { return params_; }

  private:
    OpCost costConv(const graph::Op& op) const;
    OpCost costLinear(const graph::Op& op) const;
    OpCost costMatmul(const graph::Op& op) const;
    OpCost costNorm(const graph::Op& op, bool group) const;
    OpCost costSoftmax(const graph::Op& op) const;
    OpCost costElementwise(const graph::Op& op) const;
    OpCost costEmbedding(const graph::Op& op) const;
    OpCost costResample(const graph::Op& op, bool up) const;
    OpCost costCopy(const graph::Op& op) const;

    hw::GpuSpec gpu_;
    graph::AttentionBackend backend_;
    EfficiencyParams params_;
};

} // namespace mmgen::kernels

#endif // MMGEN_KERNELS_COST_MODEL_HH
