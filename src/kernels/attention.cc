#include "attention.hh"

#include <algorithm>

#include "hw/roofline.hh"
#include "util/logging.hh"

namespace mmgen::kernels {

namespace {

double
d(std::int64_t v)
{
    return static_cast<double>(v);
}

} // namespace

double
attentionMatmulFlops(const graph::AttentionAttrs& a)
{
    // QK^T: 2*b*h*Sq*Skv*d ; AV: 2*b*h*Sq*Skv*d.
    return 4.0 * d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.seqKv) *
           d(a.headDim);
}

double
attentionSoftmaxFlops(const graph::AttentionAttrs& a)
{
    // max, subtract, exp, sum, divide over each similarity element.
    return 5.0 * d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.seqKv);
}

double
similarityMatrixBytes(const graph::AttentionAttrs& a,
                      std::size_t dtype_bytes)
{
    return d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.seqKv) *
           static_cast<double>(dtype_bytes);
}

double
qkvoBytes(const graph::AttentionAttrs& a, std::size_t dtype_bytes)
{
    const double q = d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.headDim);
    const double kv =
        2.0 * d(a.batch) * d(a.heads) * d(a.seqKv) * d(a.headDim);
    const double o = q;
    return (q + kv + o) * static_cast<double>(dtype_bytes);
}

namespace {

/**
 * KV-sequence splits the flash-decode kernel uses to fill the device
 * when batch * heads * query_tiles alone cannot.
 */
std::int64_t
flashDecodeSplits(const hw::GpuSpec& gpu, const graph::AttentionAttrs& a)
{
    const std::int64_t bh = a.batch * a.heads;
    const std::int64_t query_tiles = (a.seqQ + 127) / 128;
    const std::int64_t fused_ctas = bh * query_tiles;
    std::int64_t splits = 1;
    const std::int64_t target =
        2 * static_cast<std::int64_t>(gpu.numSms);
    if (fused_ctas < target) {
        splits = std::min<std::int64_t>(
            (target + fused_ctas - 1) / fused_ctas,
            std::max<std::int64_t>(1, a.seqKv / 256));
    }
    return splits;
}

/** Total roofline time of a lowered attention cost. */
double
costSeconds(const hw::GpuSpec& gpu, const OpCost& cost, DType dtype)
{
    double total = 0.0;
    for (const auto& part : cost.parts) {
        hw::TimeEstimateInputs in;
        in.flops = part.flops;
        in.hbmBytes = part.hbmBytes;
        in.computeEfficiency = part.computeEff;
        in.memoryEfficiency = part.memEff;
        in.launches = part.launches;
        in.dtype = dtype;
        total += hw::estimateTime(gpu, in).seconds;
    }
    return total;
}

} // namespace

double
attentionWorkspaceBytes(const hw::GpuSpec& gpu,
                        const EfficiencyParams& p,
                        const graph::AttentionAttrs& a, DType dtype,
                        graph::AttentionBackend backend)
{
    if (backend == graph::AttentionBackend::Auto)
        backend = selectAttentionBackend(gpu, p, a, dtype);
    const std::size_t db = dtypeBytes(dtype);
    if (backend == graph::AttentionBackend::Baseline)
        return similarityMatrixBytes(a, db) * p.baselineSimilarityUpcast;
    if (backend == graph::AttentionBackend::FlashDecode) {
        const std::int64_t splits = flashDecodeSplits(gpu, a);
        if (splits > 1) {
            // One (headDim + running-max + running-sum) accumulator
            // row per split, kept until the reduction pass drains it.
            return d(splits) * d(a.batch) * d(a.heads) * d(a.seqQ) *
                   (d(a.headDim) + 2.0) * d(db);
        }
    }
    return 0.0;
}

graph::AttentionBackend
selectAttentionBackend(const hw::GpuSpec& gpu, const EfficiencyParams& p,
                       const graph::AttentionAttrs& a, DType dtype)
{
    graph::AttentionBackend best = graph::AttentionBackend::Flash;
    double best_s = -1.0;
    for (graph::AttentionBackend candidate :
         {graph::AttentionBackend::Baseline,
          graph::AttentionBackend::Flash,
          graph::AttentionBackend::FlashDecode}) {
        const double s = costSeconds(
            gpu, lowerAttention(gpu, p, a, dtype, candidate), dtype);
        if (best_s < 0.0 || s < best_s) {
            best_s = s;
            best = candidate;
        }
    }
    return best;
}

OpCost
lowerAttention(const hw::GpuSpec& gpu, const EfficiencyParams& p,
               const graph::AttentionAttrs& a, DType dtype,
               graph::AttentionBackend backend)
{
    if (backend == graph::AttentionBackend::Auto) {
        return lowerAttention(gpu, p, a, dtype,
                              selectAttentionBackend(gpu, p, a, dtype));
    }
    const std::size_t db = dtypeBytes(dtype);
    const std::int64_t bh = a.batch * a.heads;
    const double matmul_flops = attentionMatmulFlops(a);
    const double softmax_flops = attentionSoftmaxFlops(a);
    // Eager kernels upcast the materialized similarity matrix to fp32.
    const double s_bytes =
        similarityMatrixBytes(a, db) * p.baselineSimilarityUpcast;
    // Strided (non-innermost-axis) attention over-fetches every Q/K/V
    // element by a full DRAM sector. Reads pay the full penalty;
    // stores write-combine in the L2, so the output write does not.
    // The similarity matrix is produced dense and is not inflated.
    const double waste = a.strideWasteFactor(gpu.cacheLineBytes, db);
    const double q_bytes =
        d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.headDim) * d(db);
    const double kv_bytes =
        2.0 * d(a.batch) * d(a.heads) * d(a.seqKv) * d(a.headDim) *
        d(db);
    const double o_bytes = q_bytes;
    const double io_bytes = (q_bytes + kv_bytes) * waste + o_bytes;
    const double mem_eff =
        attentionMemEff(p, a.seqQ, a.seqKv, a.headDim, db);

    // CTA parallelism available to the fused kernels: one CTA per
    // (batch, head, query tile).
    const std::int64_t query_tiles = (a.seqQ + 127) / 128;
    const std::int64_t fused_ctas = bh * query_tiles;

    OpCost cost;
    if (backend == graph::AttentionBackend::Flash) {
        SubKernelCost k;
        k.klass = KernelClass::Gemm;
        k.label = "flash_fused";
        k.flops = matmul_flops + softmax_flops;
        if (a.causal)
            k.flops *= p.causalFlashFlopFraction;
        k.hbmBytes = io_bytes;
        k.launches = 1;
        k.computeEff = flashComputeEff(p, a.headDim, a.seqKv);
        k.memEff = mem_eff * attentionOccupancy(gpu, p, fused_ctas);
        cost.parts.push_back(std::move(k));
        return cost;
    }
    if (backend == graph::AttentionBackend::FlashDecode) {
        // Split the KV sequence so the kernel fills the device even
        // when batch * heads * query_tiles is small.
        const std::int64_t splits = flashDecodeSplits(gpu, a);
        const std::int64_t ctas = fused_ctas * splits;
        const double partial_bytes =
            splits > 1 ? 2.0 * d(splits) * d(bh) * d(a.seqQ) *
                             (d(a.headDim) + 2.0) * d(db)
                       : 0.0;
        SubKernelCost k;
        k.klass = KernelClass::Gemm;
        k.label = splits > 1 ? "flash_split_kv" : "flash_fused";
        k.flops = matmul_flops + softmax_flops;
        if (a.causal)
            k.flops *= p.causalFlashFlopFraction;
        k.hbmBytes = io_bytes + partial_bytes;
        k.launches = splits > 1 ? 2 : 1; // + reduction pass
        k.computeEff = flashComputeEff(p, a.headDim, a.seqKv);
        k.memEff = mem_eff * attentionOccupancy(gpu, p, ctas);
        cost.parts.push_back(std::move(k));
        return cost;
    }

    // Baseline: QK^T GEMM writes S; scale (+ mask) and softmax stream S;
    // AV GEMM re-reads S. Eager execution computes the full matrix even
    // under a causal mask. Its batched GEMMs see the same occupancy
    // limit as the fused kernels.
    const double occ = attentionOccupancy(gpu, p, fused_ctas);
    const double mem_eff_occ = mem_eff * occ;
    const double qk_gemm_eff =
        gemmComputeEff(gpu, p, bh, a.seqQ, a.seqKv, a.headDim);
    const double av_gemm_eff =
        gemmComputeEff(gpu, p, bh, a.seqQ, a.headDim, a.seqKv);

    {
        SubKernelCost k;
        k.klass = KernelClass::Gemm;
        k.label = "qk_gemm";
        k.flops = matmul_flops / 2.0;
        k.hbmBytes = (q_bytes + kv_bytes / 2.0) * waste + s_bytes;
        k.launches = 1;
        k.computeEff = qk_gemm_eff;
        k.memEff = mem_eff_occ;
        cost.parts.push_back(std::move(k));
    }
    {
        SubKernelCost k;
        k.klass = KernelClass::Elementwise;
        k.label = "scale";
        k.flops = d(bh) * d(a.seqQ) * d(a.seqKv);
        k.hbmBytes = 2.0 * s_bytes;
        k.launches = 1;
        k.computeEff = 1.0;
        k.memEff = mem_eff_occ;
        cost.parts.push_back(std::move(k));
    }
    if (a.causal) {
        SubKernelCost k;
        k.klass = KernelClass::Elementwise;
        k.label = "mask";
        k.flops = d(bh) * d(a.seqQ) * d(a.seqKv);
        k.hbmBytes = 2.0 * s_bytes;
        k.launches = 1;
        k.computeEff = 1.0;
        k.memEff = mem_eff_occ;
        cost.parts.push_back(std::move(k));
    }
    {
        SubKernelCost k;
        k.klass = KernelClass::Softmax;
        k.label = "softmax";
        k.flops = softmax_flops;
        k.hbmBytes = 2.0 * s_bytes;
        k.launches = 1;
        k.computeEff = 1.0;
        k.memEff = mem_eff_occ;
        cost.parts.push_back(std::move(k));
    }
    {
        SubKernelCost k;
        k.klass = KernelClass::Gemm;
        k.label = "av_gemm";
        k.flops = matmul_flops / 2.0;
        k.hbmBytes = s_bytes + (kv_bytes / 2.0) * waste + o_bytes;
        k.launches = 1;
        k.computeEff = av_gemm_eff;
        k.memEff = mem_eff_occ;
        cost.parts.push_back(std::move(k));
    }
    return cost;
}

} // namespace mmgen::kernels
